package dbp_test

import (
	"fmt"

	"dbp"
)

// The basic loop: build an instance, dispatch it online, inspect the
// objective.
func ExampleRun() {
	jobs := dbp.List{
		{ID: 1, Size: 0.5, Arrival: 0, Departure: 2},
		{ID: 2, Size: 0.6, Arrival: 1, Departure: 3},
		{ID: 3, Size: 0.4, Arrival: 1, Departure: 4},
	}
	res, err := dbp.Run(dbp.FirstFit(), jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("servers: %d, usage: %g\n", res.NumBins(), res.TotalUsage)
	// Output:
	// servers: 2, usage: 6
}

// Measuring a policy against the exact offline optimum and Theorem 1.
func ExampleMeasureRatio() {
	jobs := dbp.NextFitAdversary(16, 8) // the paper's Sec. VIII instance
	ratio, _, err := dbp.MeasureRatio(dbp.NextFit(), jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Next Fit ratio: %.3f (2*mu = %g)\n", ratio.Hi(), 16.0)
	ffRatio, _, _ := dbp.MeasureRatio(dbp.FirstFit(), jobs)
	fmt.Printf("First Fit ratio: %.3f (bound mu+4 = %g)\n", ffRatio.Hi(), dbp.Theorem1Bound(jobs.Mu()))
	// Output:
	// Next Fit ratio: 8.000 (2*mu = 16)
	// First Fit ratio: 1.000 (bound mu+4 = 12)
}

// Driving the dispatcher one job at a time, departures unknown at
// arrival — the cloud front-end integration surface.
func ExampleDispatcher() {
	d := dbp.NewDispatcher(dbp.FirstFit(), 0, 1)
	server, opened, _ := d.Arrive(1, 0.5, nil, 0.0)
	fmt.Printf("job 1 -> server %d (new: %v)\n", server, opened)
	server, opened, _ = d.Arrive(2, 0.5, nil, 1.0)
	fmt.Printf("job 2 -> server %d (new: %v)\n", server, opened)
	_, closed, _ := d.Depart(1, 2.0)
	fmt.Printf("job 1 departed (server closed: %v)\n", closed)
	_, closed, _ = d.Depart(2, 3.0)
	fmt.Printf("job 2 departed (server closed: %v)\n", closed)
	fmt.Printf("total usage: %g\n", d.AccumulatedUsage(3.0))
	// Output:
	// job 1 -> server 0 (new: true)
	// job 2 -> server 0 (new: false)
	// job 1 departed (server closed: false)
	// job 2 departed (server closed: true)
	// total usage: 3
}

// The paper's Propositions 1–2 bound OPT from below; the exact solver
// closes the gap.
func ExampleOptExact() {
	jobs := dbp.List{
		{ID: 1, Size: 0.6, Arrival: 0, Departure: 2},
		{ID: 2, Size: 0.6, Arrival: 1, Departure: 3},
	}
	opt, ok := dbp.OptExact(jobs)
	fmt.Printf("OPT_total = %g (exact: %v)\n", opt, ok)
	fmt.Printf("Prop 1 (demand) = %g, Prop 2 (span) = %g\n",
		dbp.DemandLowerBound(jobs), dbp.SpanLowerBound(jobs))
	// Output:
	// OPT_total = 4 (exact: true)
	// Prop 1 (demand) = 2.4, Prop 2 (span) = 3
}

// Pay-as-you-go pricing: the MinUsageTime objective is the continuous
// limit of hourly billing.
func ExampleCostOf() {
	jobs := dbp.List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 90}, // 90 minutes
	}
	res := dbp.MustRun(dbp.FirstFit(), jobs)
	hourly := dbp.CostOf(res, dbp.HourlyBilling(0.60, 60))
	fmt.Printf("usage %g min, billed %g min, cost $%.2f\n",
		hourly.UsageTime, hourly.BilledTime, hourly.Total)
	// Output:
	// usage 90 min, billed 120 min, cost $1.20
}

// Keep-alive: a lingering server absorbs a later job.
func ExampleRunKeepAlive() {
	jobs := dbp.List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 10},
		{ID: 2, Size: 1, Arrival: 15, Departure: 25},
	}
	plain := dbp.MustRun(dbp.FirstFit(), jobs)
	kept, _ := dbp.RunKeepAlive(dbp.FirstFit(), jobs, 10)
	fmt.Printf("no keep-alive: %d servers; keep-alive 10: %d servers\n",
		plain.NumBins(), kept.NumBins())
	// Output:
	// no keep-alive: 2 servers; keep-alive 10: 1 servers
}

package dbp

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	jobs := GenerateUniform(100, 2.0, 8.0, 1)
	if err := jobs.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(FirstFit(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	ratio, res2, err := MeasureRatio(FirstFit(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalUsage != res.TotalUsage {
		t.Fatal("measure and run disagree")
	}
	if ratio.Hi() > Theorem1Bound(jobs.Mu()) {
		t.Fatalf("ratio %g above Theorem 1 bound", ratio.Hi())
	}
	if ratio.Lo() < 1-1e-9 {
		t.Fatalf("ratio %g below 1", ratio.Lo())
	}
}

func TestPublicAlgorithms(t *testing.T) {
	jobs := GenerateUniform(60, 2, 4, 2)
	algos := []Algorithm{
		FirstFit(), BestFit(), WorstFit(), LastFit(), NextFit(),
		RandomFit(1), HybridFirstFit(2), HybridNextFit(2),
	}
	for _, a := range algos {
		res, err := Run(a, jobs)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
	if _, err := AlgorithmByName("firstfit"); err != nil {
		t.Fatal(err)
	}
	if len(AlgorithmNames()) < 8 {
		t.Fatal("missing registered algorithms")
	}
}

func TestPublicOptAndPropositions(t *testing.T) {
	jobs := GenerateUniform(50, 2, 4, 3)
	b := Opt(jobs)
	exact, ok := OptExact(jobs)
	if !ok {
		t.Skip("exact solve cut off")
	}
	if exact < b.Lower-1e-9 || exact > b.Upper+1e-9 {
		t.Fatalf("exact %g outside bracket %+v", exact, b)
	}
	if DemandLowerBound(jobs) > exact+1e-9 || SpanLowerBound(jobs) > exact+1e-9 {
		t.Fatal("propositions exceed OPT")
	}
}

func TestPublicBounds(t *testing.T) {
	if Theorem1Bound(6) != 10 || UniversalLowerBound(6) != 6 {
		t.Fatal("bounds wrong")
	}
	lo, hi := NextFitBounds(6)
	if lo != 12 || hi != 13 {
		t.Fatal("NF bounds wrong")
	}
}

func TestPublicAdversaries(t *testing.T) {
	nf := MustRun(NextFit(), NextFitAdversary(8, 4))
	if nf.TotalUsage != 32 {
		t.Fatalf("NF usage = %g, want 32", nf.TotalUsage)
	}
	ff := MustRun(FirstFit(), AnyFitTrap(8, 4))
	if math.Abs(ff.TotalUsage-32) > 1e-9 {
		t.Fatalf("FF trap usage = %g, want 32", ff.TotalUsage)
	}
	bf := MustRun(BestFit(), BestFitRelay(4, 2, 4))
	if bf.NumBins() != 4 {
		t.Fatalf("relay bins = %d, want 4", bf.NumBins())
	}
}

func TestPublicDispatcher(t *testing.T) {
	d := NewDispatcher(FirstFit(), 0, 1)
	srv, opened, err := d.Arrive(1, 0.5, nil, 0)
	if err != nil || !opened || srv != 0 {
		t.Fatalf("arrive: %d %v %v", srv, opened, err)
	}
	if _, _, err := d.Depart(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.AccumulatedUsage(2) != 2 {
		t.Fatal("usage wrong")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	jobs := GenerateGaming(100, 0.5, 4)
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteTraceCSV(&csvBuf, jobs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSON(&jsonBuf, jobs); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadTraceJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(jobs) || len(fromJSON) != len(jobs) {
		t.Fatal("round trip lost items")
	}
}

func TestPublicBilling(t *testing.T) {
	jobs := GenerateGaming(150, 0.5, 5)
	res := MustRun(FirstFit(), jobs)
	iv := CostOf(res, HourlyBilling(0.90, 60))
	if iv.Total <= 0 || iv.BilledTime < iv.UsageTime-1e-9 {
		t.Fatalf("invoice = %+v", iv)
	}
	cont := CostOf(res, BillingModel{Granularity: 0, Rate: 0.90 / 60})
	if cont.Total > iv.Total+1e-9 {
		t.Fatal("continuous billing cannot cost more than hourly")
	}
}

func TestPublicGamingWorkload(t *testing.T) {
	jobs := GenerateGaming(200, 1, 6)
	if len(jobs) != 200 {
		t.Fatal("wrong count")
	}
	if mu := jobs.Mu(); mu > 60+1e-9 {
		t.Fatalf("gaming mu %g exceeds catalog bound", mu)
	}
}

func TestPublicKeepAlive(t *testing.T) {
	jobs := List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 10},
		{ID: 2, Size: 1, Arrival: 15, Departure: 25},
	}
	res, err := RunKeepAlive(FirstFit(), jobs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1 (reuse through keep-alive)", res.NumBins())
	}
	if _, err := RunKeepAlive(FirstFit(), jobs, -1); err == nil {
		t.Fatal("negative keep-alive must error")
	}
}

func TestPublicClairvoyant(t *testing.T) {
	jobs := GenerateUniform(80, 2, 6, 9)
	for _, algo := range []Algorithm{AlignFit(), NoExtendFit()} {
		res, err := RunClairvoyant(algo, jobs)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
	}
}

func TestPublicNextKFitAndAWF(t *testing.T) {
	jobs := GenerateUniform(80, 2, 6, 9)
	for _, algo := range []Algorithm{NextKFit(1), NextKFit(4), AlmostWorstFit()} {
		res, err := Run(algo, jobs)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
	}
	nf := MustRun(NextFit(), jobs)
	nk1 := MustRun(NextKFit(1), jobs)
	if nf.TotalUsage != nk1.TotalUsage {
		t.Fatal("NextKFit(1) must equal NextFit")
	}
}

func TestPublicFleet(t *testing.T) {
	jobs := GenerateGaming(120, 0.5, 3)
	fleet := []ServerType{
		{Name: "small", Capacity: 0.25},
		{Name: "large", Capacity: 1.0},
	}
	res, err := RunFleet(FirstFit(), jobs, fleet, RightSizeChooser())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	iv := CostOfFleet(res, RatePlan{Granularity: 60, Tiers: []TierRate{
		{Capacity: 0.25, Rate: 0.35 / 60},
		{Capacity: 1.0, Rate: 1.0 / 60},
	}})
	if iv.Total <= 0 {
		t.Fatalf("invoice = %+v", iv)
	}
	large, err := RunFleet(FirstFit(), jobs, fleet, LargestTypeChooser())
	if err != nil {
		t.Fatal(err)
	}
	if large.NumBins() > res.NumBins() {
		t.Fatal("always-large cannot open more servers than right-size")
	}
}

func TestPublicBursty(t *testing.T) {
	jobs := GenerateBursty(300, 1, 8, 10, 4)
	if err := jobs.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(FirstFit(), jobs); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDispatcherKeepAliveAndExports(t *testing.T) {
	d := NewDispatcherKeepAlive(FirstFit(), 0, 1, 5)
	d.Arrive(1, 1.0, nil, 0)
	d.Depart(1, 2)
	if srv, opened, _ := d.Arrive(2, 1.0, nil, 4); opened || srv != 0 {
		t.Fatal("keep-alive dispatcher must reuse the lingering server")
	}
	d.Depart(2, 6)
	d.Shutdown()

	jobs := GenerateUniform(30, 2, 4, 8)
	res := MustRun(FirstFit(), jobs)
	if EventLog(res) == "" {
		t.Fatal("empty event log")
	}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty assignment export")
	}
	if RenderGantt(res, 60) == "" {
		t.Fatal("empty gantt")
	}
}

func TestPublicSnapshotAndErrorClasses(t *testing.T) {
	d := NewDispatcher(FirstFit(), 0, 1)
	d.Arrive(1, 0.5, nil, 0)
	if _, _, err := d.Arrive(1, 0.5, nil, 1); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate arrive: got %v", err)
	}
	if _, _, err := d.Depart(9, 1); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("ghost depart: got %v", err)
	}
	if _, _, err := d.Arrive(2, 1.5, nil, 1); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("oversized arrive: got %v", err)
	}
	if _, _, err := d.Arrive(2, 0.5, nil, 0.5); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("regressed arrive: got %v", err)
	}
	var snap DispatcherSnapshot = d.Snapshot()
	if snap.OpenServers != 1 || len(snap.Servers) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var st ServerState = snap.Servers[0]
	if st.Index != 0 || st.Level != 0.5 || st.Jobs != 1 {
		t.Fatalf("server state = %+v", st)
	}
	if d.UsageTime() != snap.UsageTime {
		t.Fatal("UsageTime accessor disagrees with snapshot")
	}
}

// Heterogeneous fleet: real clouds sell several instance sizes with
// sub-linear pricing (a double-size server costs less than double). The
// paper normalizes everything to unit servers; this example dispatches
// the same gaming workload onto a three-tier catalog under two opening
// strategies and prices the result, showing the consolidation-vs-
// right-sizing tension the unit model hides.
package main

import (
	"fmt"

	"dbp"
)

func main() {
	jobs := dbp.GenerateGaming(600, 0.5, 21) // minutes as time unit
	fmt.Printf("%d sessions, peak concurrent load %.2f GPUs\n\n", len(jobs), jobs.MaxConcurrentLoad())

	fleet := []dbp.ServerType{
		{Name: "small", Capacity: 0.25},
		{Name: "medium", Capacity: 0.5},
		{Name: "large", Capacity: 1.0},
	}
	// Sub-linear prices per hour: large is 4x the capacity of small but
	// less than 3x the price.
	plan := dbp.RatePlan{
		Granularity: 60,
		Tiers: []dbp.TierRate{
			{Capacity: 0.25, Rate: 0.35 / 60},
			{Capacity: 0.5, Rate: 0.60 / 60},
			{Capacity: 1.0, Rate: 1.00 / 60},
		},
	}

	fmt.Printf("%-10s %-14s %8s %12s %10s\n", "policy", "tier strategy", "servers", "usage (min)", "bill")
	for _, algo := range []dbp.Algorithm{dbp.FirstFit(), dbp.BestFit()} {
		for _, ch := range []struct {
			name    string
			chooser dbp.TypeChooser
		}{
			{"right-size", dbp.RightSizeChooser()},
			{"always-large", dbp.LargestTypeChooser()},
		} {
			res, err := dbp.RunFleet(algo, jobs, fleet, ch.chooser)
			if err != nil {
				panic(err)
			}
			iv := dbp.CostOfFleet(res, plan)
			fmt.Printf("%-10s %-14s %8d %12.0f $%9.2f\n",
				res.Algorithm, ch.name, res.NumBins(), res.TotalUsage, iv.Total)
		}
	}
	fmt.Println("\nalways-large is the paper's unit-capacity model; whether right-sizing")
	fmt.Println("wins depends on how sub-linear the price list is (experiment E14).")
}

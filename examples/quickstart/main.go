// Quickstart: generate a random cloud workload, dispatch it online with
// First Fit, and compare the resulting server usage to the offline
// optimum and to Theorem 1's (mu+4) guarantee.
package main

import (
	"fmt"

	"dbp"
)

func main() {
	// 200 jobs, Poisson arrivals at rate 2 per time unit, durations in
	// [1, 8] (so mu <= 8), sizes uniform in [0.05, 0.95].
	jobs := dbp.GenerateUniform(200, 2.0, 8.0, 42)
	fmt.Printf("instance: %d jobs, mu = %.3g, span = %.4g, time-space demand = %.4g\n",
		len(jobs), jobs.Mu(), jobs.Span(), jobs.TotalDemand())

	// Dispatch online with First Fit: each job goes to the earliest-
	// opened server with room; departures are unknown at placement time.
	res, err := dbp.Run(dbp.FirstFit(), jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("First Fit: %d servers opened, peak %d concurrent, total usage %.4g\n",
		res.NumBins(), res.MaxConcurrentOpen, res.TotalUsage)

	// How close is that to the offline optimum (which may repack
	// everything at every instant)?
	ratio, _, err := dbp.MeasureRatio(dbp.FirstFit(), jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("competitive ratio: %.4f (OPT_total in [%.4g, %.4g])\n",
		ratio.Hi(), ratio.Opt.Lower, ratio.Opt.Upper)
	fmt.Printf("Theorem 1 guarantee: ratio <= mu + 4 = %.4g\n", dbp.Theorem1Bound(jobs.Mu()))
	fmt.Printf("universal limit:   no online algorithm beats mu = %.4g\n", dbp.UniversalLowerBound(jobs.Mu()))

	// The paper's Propositions 1 and 2 explain the OPT lower bound.
	fmt.Printf("Prop 1 (demand): OPT >= %.4g   Prop 2 (span): OPT >= %.4g\n",
		dbp.DemandLowerBound(jobs), dbp.SpanLowerBound(jobs))

	// Compare a few other policies on the same instance.
	for _, algo := range []dbp.Algorithm{dbp.BestFit(), dbp.NextFit(), dbp.HybridFirstFit(2)} {
		r := dbp.MustRun(algo, jobs)
		fmt.Printf("%-18s usage %.4g (%d servers)\n", r.Algorithm+":", r.TotalUsage, r.NumBins())
	}
}

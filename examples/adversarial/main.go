// Adversarial walkthrough of the paper's Section VIII construction: n
// pairs (a 1/2-size job of duration 1, a sliver of duration mu) arrive at
// time 0. Next Fit opens a bin per pair and keeps all n bins alive for
// mu, paying n*mu; the optimum pairs the halves and parks the slivers in
// one bin, paying n/2 + mu. The ratio climbs to 2*mu with n — while
// First Fit on the very same instance stays near optimal, illustrating
// why the factor-1 multiplicative bound of Theorem 1 matters.
package main

import (
	"fmt"

	"dbp"
)

func main() {
	mu := 8.0
	fmt.Printf("Section VIII construction, mu = %g (2*mu = %g)\n\n", mu, 2*mu)
	fmt.Printf("%6s  %10s  %10s  %8s  %8s  %10s\n", "n", "NF usage", "OPT", "NF ratio", "FF ratio", "analytic")
	for _, n := range []int{4, 8, 16, 64, 256, 1024, 4096} {
		jobs := dbp.NextFitAdversary(n, mu)
		nf := dbp.MustRun(dbp.NextFit(), jobs)
		ff := dbp.MustRun(dbp.FirstFit(), jobs)
		opt := float64(n)/2 + mu // paper's closed form for this instance
		analytic := float64(n) * mu / (float64(n)/2 + mu)
		fmt.Printf("%6d  %10.0f  %10.1f  %8.3f  %8.3f  %10.3f\n",
			n, nf.TotalUsage, opt, nf.TotalUsage/opt, ff.TotalUsage/opt, analytic)
	}

	fmt.Println("\nGap-seal trap (pins First Fit and Best Fit near the universal bound mu):")
	fmt.Printf("%6s  %8s  %8s  %8s\n", "n", "FF", "BF", "limit")
	for _, n := range []int{8, 32, 128, 512} {
		jobs := dbp.AnyFitTrap(n, mu)
		ff := dbp.MustRun(dbp.FirstFit(), jobs)
		bf := dbp.MustRun(dbp.BestFit(), jobs)
		opt := float64(n) + mu - 1
		fmt.Printf("%6d  %8.3f  %8.3f  %8.3f\n",
			n, ff.TotalUsage/opt, bf.TotalUsage/opt, float64(n)*mu/(float64(n)+mu-1))
	}
	fmt.Printf("\nNo online algorithm can beat mu = %g; First Fit's guarantee is mu+4 = %g.\n",
		mu, dbp.Theorem1Bound(mu))
}

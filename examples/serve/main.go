// Serve: drive the allocation service end to end, in process. The
// example boots the same sharded dispatcher + HTTP handler that
// cmd/dbpserved runs and exercises both of its modes over real HTTP:
// first a deterministic explicit-time walkthrough (the curl session
// from the README, including the error responses), then a burst of
// concurrent clients dispatching on the service clock. It finishes by
// draining the service and printing the final usage-time bill exactly
// as the daemon would log it on SIGTERM.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"dbp"
	"dbp/internal/serve"
)

func main() {
	// The service half: 4 shards of First Fit with keep-alive.
	d, err := serve.New(serve.Config{Algorithm: "firstfit", Shards: 4, KeepAlive: 2})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(d)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("dbpserved (in-process) listening on %s, %d shards\n\n", base, d.NumShards())

	// 1. Explicit-time walkthrough: the tenant stamps every event, as a
	// simulator or a trace replayer would. Errors come back as typed
	// JSON with proper status codes.
	fmt.Println("-- explicit-time walkthrough --")
	for _, req := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/arrive", map[string]any{"id": 1, "size": 0.625, "time": 0.0}},
		{"/v1/arrive", map[string]any{"id": 2, "size": 0.625, "time": 1.0}},
		{"/v1/arrive", map[string]any{"id": 1, "size": 0.25, "time": 2.0}}, // 409: already running
		{"/v1/arrive", map[string]any{"id": 3, "size": 1.75, "time": 2.0}}, // 422: cannot fit
		{"/v1/depart", map[string]any{"id": 99, "time": 2.0}},              // 404: unknown
		{"/v1/depart", map[string]any{"id": 1, "time": 3.0}},
		{"/v1/depart", map[string]any{"id": 2, "time": 5.0}},
	} {
		status, reply := post(base+req.path, req.body)
		shown, _ := json.Marshal(req.body)
		fmt.Printf("%-7s %-38s -> %d %s\n", req.path[4:], shown, status, reply)
	}

	// 2. Concurrent load on the service clock: 8 clients dispatch
	// sessions without timestamps; the service stamps each event with
	// its monotonic clock, per-shard guarded against regression.
	fmt.Println("\n-- concurrent service-clock load --")
	jobs := dbp.GenerateGaming(400, 3.0, 7)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(jobs); i += 8 {
				post(base+"/v1/arrive", map[string]any{"id": jobs[i].ID, "size": jobs[i].Size})
			}
			for i := c; i < len(jobs); i += 8 {
				post(base+"/v1/depart", map[string]any{"id": jobs[i].ID})
			}
		}(c)
	}
	wg.Wait()

	var stats serve.Stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		panic(err)
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	fmt.Printf("served %d arrivals / %d departures (%.0f events/sec), rejections: %v\n",
		stats.Arrivals, stats.Departures, stats.EventsPerSecond, stats.Rejected)
	for _, sh := range stats.PerShard {
		fmt.Printf("  shard %d: %4d events, %3d servers used, peak %2d\n",
			sh.Shard, sh.Events, sh.ServersUsed, sh.PeakServers)
	}

	// 3. Graceful shutdown: stop the listener, drain, report the bill.
	srv.Close()
	final := d.Close()
	fmt.Printf("\nfinal totals: usage time %.6g, peak servers %d, %d servers used, %d still open\n",
		final.UsageTime, final.PeakServers, final.ServersUsed, final.OpenServers)
}

// post sends one JSON request and returns the status plus a one-line
// summary of the decoded reply.
func post(url string, body map[string]any) (int, string) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Code
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, fmt.Sprintf("shard %v server %v", m["shard"], m["server"])
}

// Cloud gaming dispatch — the paper's motivating application (Sec. I).
// A provider receives play requests whose session lengths are unknown in
// advance, assigns each to a GPU server with enough free capacity, and
// pays for servers by the hour. This example drives the streaming
// Dispatcher exactly as a provider's front end would (no future
// knowledge), then prices the fleet under hourly billing.
package main

import (
	"fmt"
	"sort"

	"dbp"
)

func main() {
	// Synthetic session stream: four game tiers (GPU shares 1/8 .. 3/4),
	// heavy-tailed session lengths of 5..300 minutes (mu = 60), one
	// request every 2 minutes on average.
	sessions := dbp.GenerateGaming(800, 0.5, 7)

	// Feed arrivals and departures through the online dispatcher in
	// timestamp order — this is the integration surface a real system
	// would use (Arrive returns the chosen server; Depart reports server
	// shutdowns).
	type ev struct {
		t      float64
		arrive bool
		id     dbp.ID
		size   float64
	}
	var evs []ev
	for _, s := range sessions {
		evs = append(evs,
			ev{t: s.Arrival, arrive: true, id: s.ID, size: s.Size},
			ev{t: s.Departure, arrive: false, id: s.ID})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return !evs[i].arrive && evs[j].arrive // departures first
	})

	d := dbp.NewDispatcher(dbp.FirstFit(), 0, 1)
	opened := 0
	for _, e := range evs {
		if e.arrive {
			_, isNew, err := d.Arrive(e.id, e.size, nil, e.t)
			if err != nil {
				panic(err)
			}
			if isNew {
				opened++
			}
		} else {
			if _, _, err := d.Depart(e.id, e.t); err != nil {
				panic(err)
			}
		}
	}
	end := evs[len(evs)-1].t
	fmt.Printf("dispatched %d sessions over %.0f minutes\n", len(sessions), end)
	fmt.Printf("servers opened: %d, peak concurrent: %d, GPU-server minutes: %.0f\n",
		d.ServersUsed(), d.PeakServers(), d.AccumulatedUsage(end))

	// Price the same workload under different policies: the MinUsageTime
	// objective is (proportional to) the renting bill.
	fmt.Println("\npolicy comparison ($0.90/hour GPU servers, hourly billing):")
	for _, algo := range []dbp.Algorithm{dbp.FirstFit(), dbp.BestFit(), dbp.WorstFit(), dbp.NextFit()} {
		res := dbp.MustRun(algo, sessions)
		iv := dbp.CostOf(res, dbp.HourlyBilling(0.90, 60))
		fmt.Printf("  %-10s %3d servers, usage %7.0f min, bill $%7.2f (overhead %.1f%%)\n",
			res.Algorithm, res.NumBins(), res.TotalUsage, iv.Total, 100*iv.Overhead())
	}
}

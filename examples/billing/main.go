// Billing granularity: the paper models renting cost as total server
// usage time because pay-as-you-go bills are proportional to running
// hours (Sec. I). This example quantifies the correspondence: the hourly
// bill converges to the MinUsageTime objective as sessions grow long
// relative to the billing quantum, and a better packing policy translates
// directly into a smaller bill at every granularity.
package main

import (
	"fmt"

	"dbp"
)

func main() {
	// Gaming sessions, time unit = minutes.
	jobs := dbp.GenerateGaming(600, 0.5, 3)
	res := dbp.MustRun(dbp.FirstFit(), jobs)
	fmt.Printf("First Fit fleet: %d servers, usage %.0f server-minutes\n\n", res.NumBins(), res.TotalUsage)

	fmt.Printf("%-18s  %12s  %10s\n", "billing quantum", "billed time", "overhead")
	for _, g := range []float64{240, 120, 60, 15, 5, 1, 0} {
		iv := dbp.CostOf(res, dbp.BillingModel{Granularity: g, Rate: 1})
		label := fmt.Sprintf("%g min", g)
		if g == 0 {
			label = "continuous"
		}
		fmt.Printf("%-18s  %12.0f  %9.2f%%\n", label, iv.BilledTime, 100*iv.Overhead())
	}

	fmt.Println("\nusage time vs money, hourly billing at $0.90/h:")
	for _, algo := range []dbp.Algorithm{dbp.FirstFit(), dbp.BestFit(), dbp.NextFit(), dbp.WorstFit()} {
		r := dbp.MustRun(algo, jobs)
		iv := dbp.CostOf(r, dbp.HourlyBilling(0.90, 60))
		fmt.Printf("  %-10s usage %7.0f min  ->  $%8.2f\n", r.Algorithm, r.TotalUsage, iv.Total)
	}
	fmt.Println("\nminimizing usage time == minimizing the bill: the MinUsageTime DBP objective.")
}

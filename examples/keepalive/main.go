// Keep-alive: real cloud dispatchers rarely kill a server the instant it
// empties — the started billing hour is already paid, so the server may
// as well linger and absorb the next job. This example sweeps the
// keep-alive duration on a gaming workload and shows the trade-off the
// MinUsageTime model abstracts away: raw usage time grows monotonically
// with keep-alive, yet the hourly bill can drop because lingering servers
// absorb later jobs that would otherwise start fresh (and fresh servers
// pay a full first hour).
package main

import (
	"fmt"

	"dbp"
)

func main() {
	jobs := dbp.GenerateGaming(700, 0.4, 11) // minutes as time unit
	fmt.Printf("%d gaming sessions over %.0f minutes, mu = %.3g\n\n",
		len(jobs), jobs.PackingPeriod().Length(), jobs.Mu())

	plan := dbp.HourlyBilling(0.90, 60)
	fmt.Printf("%-16s  %8s  %12s  %12s  %9s\n", "keep-alive", "servers", "usage (min)", "billed (min)", "bill")
	var base float64
	for _, ka := range []float64{0, 5, 15, 30, 60, 120} {
		res, err := dbp.RunKeepAlive(dbp.FirstFit(), jobs, ka)
		if err != nil {
			panic(err)
		}
		iv := dbp.CostOf(res, plan)
		marker := ""
		if ka == 0 {
			base = iv.Total
		} else if iv.Total < base {
			marker = "  << cheaper than no keep-alive"
		}
		fmt.Printf("%13.0f min  %8d  %12.0f  %12.0f  $%8.2f%s\n",
			ka, res.NumBins(), res.TotalUsage, iv.BilledTime, iv.Total, marker)
	}

	fmt.Println("\nThe MinUsageTime objective (usage at keep-alive 0) is the continuous")
	fmt.Println("idealization the paper analyzes; keep-alive trades usage for reuse under")
	fmt.Println("quantized billing. Compare experiment E12 (cmd/dbpexp -exp E12).")
}

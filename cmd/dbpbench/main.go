// Command dbpbench measures the per-event cost of the simulator's ledger
// hot paths on large fleets and writes a machine-readable BENCH_ledger.json
// so future PRs can track the performance trajectory.
//
// The workload scales its arrival rate with the job count, so the number
// of concurrently open servers B grows linearly with n. An engine whose
// per-event cost is O(log B) shows a near-flat ns/event column as n grows
// 10x; any O(B)-per-event path shows roughly 10x growth instead. The
// emitted "ns_per_event_scaling" map records exactly that ratio per
// engine and keep-alive setting — the repo's acceptance criterion is that
// the segment-tree engine's keep-alive ratio stays within ~2x.
//
// Examples:
//
//	dbpbench
//	dbpbench -sizes 10000,100000,1000000 -keepalive 0.5 -reps 5 -o BENCH_ledger.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dbp"
	"dbp/internal/packing"
)

// runRecord is one (engine, jobs, keep-alive) measurement: the minimum
// wall time over the configured repetitions, normalized per event.
type runRecord struct {
	Engine     string  `json:"engine"`
	Jobs       int     `json:"jobs"`
	KeepAlive  float64 `json:"keep_alive"`
	Events     int     `json:"events"`
	BinsOpened int     `json:"bins_opened"`
	PeakOpen   int     `json:"peak_open"`
	TotalNs    int64   `json:"total_ns"`
	NsPerEvent float64 `json:"ns_per_event"`
}

type report struct {
	GeneratedBy string      `json:"generated_by"`
	Mu          float64     `json:"mu"`
	Seed        int64       `json:"seed"`
	Reps        int         `json:"reps"`
	Runs        []runRecord `json:"runs"`
	// Scaling maps "engine/ka=<v>" to ns/event at the largest job count
	// divided by ns/event at the smallest. O(log B) engines stay near 1;
	// O(B)-per-event paths track the size ratio itself.
	Scaling map[string]float64 `json:"ns_per_event_scaling"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpbench: ")

	var (
		sizesFlag = flag.String("sizes", "10000,100000", "comma-separated job counts (fleet size scales with each)")
		keepAlive = flag.Float64("keepalive", 0.5, "keep-alive duration for the lingering-server runs")
		mu        = flag.Float64("mu", 8, "duration ratio bound of the generated workload")
		seed      = flag.Int64("seed", 1, "workload seed")
		reps      = flag.Int("reps", 3, "repetitions per configuration (minimum wall time is reported)")
		engines   = flag.String("engines", "firstfit,fastff", "engines to measure: firstfit (naive scan), fastff (segment tree)")
		out       = flag.String("o", "BENCH_ledger.json", "output path for the JSON report ('-' for stdout)")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}

	rep := report{
		GeneratedBy: "cmd/dbpbench",
		Mu:          *mu,
		Seed:        *seed,
		Reps:        *reps,
		Scaling:     map[string]float64{},
	}
	for _, engine := range strings.Split(*engines, ",") {
		engine = strings.TrimSpace(engine)
		for _, ka := range []float64{0, *keepAlive} {
			var recs []runRecord
			for _, n := range sizes {
				r, err := measure(engine, n, ka, *mu, *seed, *reps)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "%-9s n=%-8d ka=%-4g %8.1f ns/event  (%d bins, peak %d)\n",
					engine, n, ka, r.NsPerEvent, r.BinsOpened, r.PeakOpen)
				recs = append(recs, r)
			}
			rep.Runs = append(rep.Runs, recs...)
			if len(recs) > 1 {
				rep.Scaling[fmt.Sprintf("%s/ka=%g", engine, ka)] =
					recs[len(recs)-1].NsPerEvent / recs[0].NsPerEvent
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d runs)", *out, len(rep.Runs))
}

// measure runs one configuration reps times and keeps the fastest run
// (minimum wall time filters scheduler noise, the usual benchmark rule).
func measure(engine string, n int, keepAlive, mu float64, seed int64, reps int) (runRecord, error) {
	jobs := dbp.GenerateUniform(n, float64(n)/100, mu, seed)
	rec := runRecord{Engine: engine, Jobs: n, KeepAlive: keepAlive, Events: 2 * n}
	for i := 0; i < reps; i++ {
		algo, err := newEngine(engine)
		if err != nil {
			return rec, err
		}
		start := time.Now()
		res, err := packing.Run(algo, jobs, &packing.Options{KeepAlive: keepAlive})
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return rec, err
		}
		if rec.TotalNs == 0 || elapsed < rec.TotalNs {
			rec.TotalNs = elapsed
		}
		rec.BinsOpened = res.NumBins()
		rec.PeakOpen = res.MaxConcurrentOpen
	}
	rec.NsPerEvent = float64(rec.TotalNs) / float64(rec.Events)
	return rec, nil
}

func newEngine(name string) (dbp.Algorithm, error) {
	switch name {
	case "firstfit":
		return dbp.FirstFit(), nil
	case "fastff":
		return packing.NewFastFirstFit(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q (valid: firstfit, fastff)", name)
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}

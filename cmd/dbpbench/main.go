// Command dbpbench measures the per-event cost of the placement engine
// on large fleets and writes a machine-readable BENCH_ledger.json so
// future PRs can track the performance trajectory.
//
// The workload scales its arrival rate with the job count, so the number
// of concurrently open servers B grows linearly with n. An engine whose
// per-event cost is O(log B) shows a near-flat ns/event column as n grows
// 10x; any O(B)-per-event path shows roughly 10x growth instead. The
// emitted "ns_per_event_scaling" map records exactly that ratio per
// (policy, engine, keep-alive) setting — the repo's acceptance criterion
// is that the indexed engine's keep-alive ratios stay within ~2.5x for
// firstfit, bestfit, and worstfit, while the linear reference engine is
// expected to track the size ratio itself.
//
// With -compare, the fresh report is diffed against a baseline written
// by an earlier run: any matching (policy, engine, jobs, keep-alive)
// configuration whose ns/event regressed beyond -tolerance percent is a
// violation, and the process exits 2 (same contract as dbpload -compare).
//
// The -dims axis measures the same matrix on d-dimensional (DVBP)
// workloads: the indexed engine answers vector placements from the
// per-dimension gap trees and the dominant-resource treap, so its
// ns/event scaling ratio must stay materially below the linear engine's
// for every d.
//
// Examples:
//
//	dbpbench
//	dbpbench -policies firstfit,bestfit,worstfit -engines indexed,linear
//	dbpbench -sizes 10000,100000 -dims 1,2,4 -keepalive 0.5 -reps 5 -o BENCH_ledger.json
//	dbpbench -compare BENCH_ledger.json -tolerance 25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dbp"
	"dbp/internal/cliutil"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// schemaVersion identifies the report layout. Version 2 added the
// per-run "policy" field and the policy/engine scaling keys; version 3
// added the dimensionality axis ("dim" per run, d=<d> in all keys).
const schemaVersion = 3

// runRecord is one (policy, engine, dim, jobs, keep-alive) measurement:
// the minimum wall time over the configured repetitions, normalized per
// event.
type runRecord struct {
	Policy     string  `json:"policy"`
	Engine     string  `json:"engine"`
	Dim        int     `json:"dim"`
	Jobs       int     `json:"jobs"`
	KeepAlive  float64 `json:"keep_alive"`
	Events     int     `json:"events"`
	BinsOpened int     `json:"bins_opened"`
	PeakOpen   int     `json:"peak_open"`
	TotalNs    int64   `json:"total_ns"`
	NsPerEvent float64 `json:"ns_per_event"`
}

// key identifies the configuration of a run for baseline comparison.
func (r runRecord) key() string {
	return fmt.Sprintf("%s/%s/d=%d/n=%d/ka=%g", r.Policy, r.Engine, r.Dim, r.Jobs, r.KeepAlive)
}

type report struct {
	Schema      int         `json:"schema"`
	GeneratedBy string      `json:"generated_by"`
	Mu          float64     `json:"mu"`
	Seed        int64       `json:"seed"`
	Reps        int         `json:"reps"`
	Runs        []runRecord `json:"runs"`
	// Scaling maps "policy/engine/d=<d>/ka=<v>" to ns/event at the
	// largest job count divided by ns/event at the smallest. O(log B)
	// engines stay near 1; O(B)-per-event paths track the size ratio
	// itself.
	Scaling map[string]float64 `json:"ns_per_event_scaling"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpbench: ")

	var (
		sizesFlag = flag.String("sizes", "10000,100000", "comma-separated job counts (fleet size scales with each)")
		dimsFlag  = flag.String("dims", "1,2,4", "comma-separated resource dimensionalities (d > 1 draws vector demands)")
		keepAlive = flag.Float64("keepalive", 0.5, "keep-alive duration for the lingering-server runs")
		mu        = flag.Float64("mu", 8, "duration ratio bound of the generated workload")
		seed      = flag.Int64("seed", 1, "workload seed")
		reps      = flag.Int("reps", 3, "repetitions per configuration (minimum wall time is reported)")
		policies  = flag.String("policies", "firstfit,bestfit,worstfit,drworstfit", "comma-separated policies to measure (see dbpexp -list for names)")
		engines   = flag.String("engines", "indexed,linear", "engines to measure: indexed (BinIndex queries), linear (O(B) reference scans)")
		wl        = flag.String("workload", "uniform", "workload scenario spec: name or name:key=value,... (see -list-workloads)")
		listWl    = flag.Bool("list-workloads", false, "print every registered workload scenario with its parameter schema and exit")
		out       = flag.String("o", "BENCH_ledger.json", "output path for the JSON report ('-' for stdout)")
		compare   = flag.String("compare", "", "baseline report; exit 2 if any matching run's ns/event regresses past -tolerance")
		tol       = flag.Float64("tolerance", 25, "allowed ns/event regression percent for -compare")
	)
	flag.Parse()
	if *listWl {
		cliutil.ListScenarios(os.Stdout)
		return
	}

	inst, err := workload.Lookup(*wl)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	dims, err := parseSizes(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}

	rep := report{
		Schema:      schemaVersion,
		GeneratedBy: "cmd/dbpbench",
		Mu:          *mu,
		Seed:        *seed,
		Reps:        *reps,
		Scaling:     map[string]float64{},
	}
	for _, policy := range splitList(*policies) {
		if _, err := dbp.AlgorithmByName(policy); err != nil {
			log.Fatal(err)
		}
		for _, engine := range splitList(*engines) {
			for _, d := range dims {
				for _, ka := range []float64{0, *keepAlive} {
					var recs []runRecord
					for _, n := range sizes {
						r, err := measure(inst, policy, engine, d, n, ka, *mu, *seed, *reps)
						if err != nil {
							log.Fatal(err)
						}
						fmt.Fprintf(os.Stderr, "%-10s %-8s d=%d n=%-8d ka=%-4g %8.1f ns/event  (%d bins, peak %d)\n",
							policy, engine, d, n, ka, r.NsPerEvent, r.BinsOpened, r.PeakOpen)
						recs = append(recs, r)
					}
					rep.Runs = append(rep.Runs, recs...)
					if len(recs) > 1 {
						rep.Scaling[fmt.Sprintf("%s/%s/d=%d/ka=%g", policy, engine, d, ka)] =
							recs[len(recs)-1].NsPerEvent / recs[0].NsPerEvent
					}
				}
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	} else {
		log.Printf("wrote %s (%d runs)", *out, len(rep.Runs))
	}

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			log.Fatal(err)
		}
		if bad := compareReports(base, &rep, *tol); len(bad) > 0 {
			for _, b := range bad {
				log.Printf("REGRESSION vs %s: %s", *compare, b)
			}
			os.Exit(2)
		}
		log.Printf("no regression vs %s (tolerance %g%%)", *compare, *tol)
	}
}

// measure runs one configuration reps times and keeps the fastest run
// (minimum wall time filters scheduler noise, the usual benchmark rule).
// The workload comes from the scenario registry; its arrival rate scales
// with n so the open-server population grows with the job count.
func measure(inst workload.Instance, policy, engine string, dim, n int, keepAlive, mu float64, seed int64, reps int) (runRecord, error) {
	jobs, err := inst.Generate(n, float64(n)/100, mu, seed, dim)
	if err != nil {
		return runRecord{}, err
	}
	rec := runRecord{Policy: policy, Engine: engine, Dim: dim, Jobs: n, KeepAlive: keepAlive, Events: 2 * len(jobs)}
	for i := 0; i < reps; i++ {
		algo, err := dbp.AlgorithmByName(policy)
		if err != nil {
			return rec, err
		}
		opt := &packing.Options{KeepAlive: keepAlive, Engine: packing.EngineKind(engine)}
		start := time.Now()
		res, err := packing.Run(algo, jobs, opt)
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return rec, err
		}
		if rec.TotalNs == 0 || elapsed < rec.TotalNs {
			rec.TotalNs = elapsed
		}
		rec.BinsOpened = res.NumBins()
		rec.PeakOpen = res.MaxConcurrentOpen
	}
	rec.NsPerEvent = float64(rec.TotalNs) / float64(rec.Events)
	return rec, nil
}

// readReport loads a baseline written by an earlier dbpbench run.
func readReport(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schemaVersion {
		return nil, fmt.Errorf("%s: schema %d, want %d", path, r.Schema, schemaVersion)
	}
	return &r, nil
}

// compareReports diffs the fresh report against a baseline and returns
// one violation string per regression beyond tolPct percent: ns/event of
// every matching (policy, engine, jobs, keep-alive) run, and every
// matching scaling ratio. A baseline configuration missing from the new
// report is itself a violation. Improvements and sub-threshold noise
// return nil.
func compareReports(old, new *report, tolPct float64) []string {
	var bad []string
	regress := func(oldV, newV float64) (float64, bool) {
		if oldV <= 0 {
			return 0, false
		}
		pct := (newV - oldV) / oldV * 100
		return pct, pct > tolPct
	}
	fresh := make(map[string]runRecord, len(new.Runs))
	for _, r := range new.Runs {
		fresh[r.key()] = r
	}
	for _, o := range old.Runs {
		n, ok := fresh[o.key()]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no measurement in new report", o.key()))
			continue
		}
		if pct, r := regress(o.NsPerEvent, n.NsPerEvent); r {
			bad = append(bad, fmt.Sprintf("%s ns/event regressed %.1f%%: %.1f -> %.1f (tolerance %g%%)",
				o.key(), pct, o.NsPerEvent, n.NsPerEvent, tolPct))
		}
	}
	for key, o := range old.Scaling {
		n, ok := new.Scaling[key]
		if !ok {
			bad = append(bad, fmt.Sprintf("scaling %s: no ratio in new report", key))
			continue
		}
		if pct, r := regress(o, n); r {
			bad = append(bad, fmt.Sprintf("scaling %s regressed %.1f%%: %.2fx -> %.2fx (tolerance %g%%)",
				key, pct, o, n, tolPct))
		}
	}
	return bad
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return sizes, nil
}

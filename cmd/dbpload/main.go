// dbpload is the YCSB-style load generator and latency harness for the
// allocation service: it replays generated arrive/depart workloads
// through either a running dbpserved (HTTP/JSON) or an in-process
// dispatcher, in open-loop (fixed ops/s, coordinated-omission-free) or
// closed-loop (N users with think time) mode, and writes the
// BENCH_serve.json results file every serving-perf PR is judged
// against.
//
//	# benchmark a local daemon at 5000 ops/s
//	dbpserved -addr :8080 &
//	dbpload -target http -addr localhost:8080 -mode open -rate 5000
//
//	# drive the binary wire protocol (persistent conns + batched frames)
//	dbpserved -addr :8080 -wire-addr :9090 &
//	dbpload -target wire -wire-addr localhost:9090 -rate 100000 -conns 4 -batch 64
//
//	# HTTP-vs-wire transport curve against one daemon
//	dbpload -duel -addr localhost:8080 -wire-addr localhost:9090 -duel-rates 2000,10000,50000
//
//	# durability curve: what fsync=always costs over off at p99
//	dbpload -fsync-duel -rate 20000 -measure 5s -o BENCH_serve.json
//
//	# in-process smoke run (no daemon needed), then regression-check
//	dbpload -target inproc -measure 3s -o BENCH_serve.json
//	dbpload -target inproc -measure 3s -compare BENCH_serve.json
//
//	# find the max rate sustaining a 5ms p99
//	dbpload -target http -addr localhost:8080 -ramp -slo-p99 5ms
//
//	# multi-core scaling sweep: shards × GOMAXPROCS × rate over the
//	# in-process dispatcher → BENCH_scale.json, gated like the ledger
//	dbpload -sweep -sweep-shards 1,2,4 -sweep-procs 1,2,4 -sweep-rates 50000,400000
//	dbpload -sweep -compare BENCH_scale.json
//
// Exit codes: 0 success, 1 usage/run error, 2 regression detected by
// -compare.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dbp/internal/cliutil"
	"dbp/internal/load"
	"dbp/internal/serve"
	"dbp/internal/wire"
)

func main() {
	var (
		target  = flag.String("target", "inproc", "transport: inproc (own dispatcher), http, or wire (running dbpserved)")
		addr    = flag.String("addr", "localhost:8080", "dbpserved host:port for -target http")
		mode    = flag.String("mode", "open", "pacing: open (fixed rate) or closed (clients + think time)")
		rate    = flag.Float64("rate", 5000, "open-loop target ops/s (arrivals + departures)")
		clients = flag.Int("clients", 0, "concurrent load clients (0 = mode default)")
		think   = flag.Duration("think", 0, "closed-loop think time between a client's ops")
		warmup  = flag.Duration("warmup", 2*time.Second, "warmup phase (measured ops excluded)")
		measure = flag.Duration("measure", 10*time.Second, "measurement window")
		drain   = flag.Duration("drain", 30*time.Second, "max time to depart jobs still active at measure end")

		wl        = flag.String("workload", "uniform", "workload scenario spec: name or name:key=value,... (see -list-workloads)")
		listWl    = flag.Bool("list-workloads", false, "print every registered workload scenario with its parameter schema and exit")
		jobs      = flag.Int("jobs", 50000, "jobs per script epoch (the script loops under fresh IDs)")
		mu        = flag.Float64("mu", 10, "duration ratio of the workload")
		traceRate = flag.Float64("trace-rate", 50, "script arrival rate; with mean duration this sets the active-population level")
		seed      = flag.Int64("seed", 1, "workload seed")
		dim       = flag.Int("dim", 1, "demand dimensionality (>1 = vector jobs)")

		algo       = flag.String("algo", "firstfit", "inproc: packing policy")
		shards     = flag.Int("shards", 0, "inproc: dispatcher shards (0 = GOMAXPROCS)")
		keepAlive  = flag.Float64("keepalive", 0, "inproc: keep emptied servers open this many time units")
		queueDepth = flag.Int("queue-depth", 0, "inproc: per-shard request queue depth (0 = default)")

		dataDir       = flag.String("data-dir", "", "inproc: durable WAL directory (empty = in-memory only)")
		fsync         = flag.String("fsync", "off", "inproc: WAL durability policy for -data-dir: always, interval, or off")
		snapshotEvery = flag.Int("snapshot-every", 10000, "inproc: durable snapshot every N events per shard")

		fsyncDuel     = flag.Bool("fsync-duel", false, "drive the durability curve over the in-process dispatcher: the same rate under each -fsync-duel-policies WAL policy, journaling to a throwaway directory")
		fsyncPolicies = flag.String("fsync-duel-policies", "none,off,interval,always", "fsync-duel: comma-separated WAL policies (none = durability off)")

		out     = flag.String("o", "", "results file to write (default BENCH_serve.json, or BENCH_scale.json with -sweep)")
		compare = flag.String("compare", "", "baseline results file; exit 2 if p99/throughput regress past -tolerance")
		tol     = flag.Float64("tolerance", 25, "regression tolerance for -compare, percent")

		ramp      = flag.Bool("ramp", false, "run the max-sustainable-throughput search instead of a single rate")
		sloP99    = flag.Duration("slo-p99", 5*time.Millisecond, "ramp: p99 latency SLO")
		rampStart = flag.Float64("ramp-start", 500, "ramp: starting rate, ops/s")
		rampMax   = flag.Float64("ramp-max", 512000, "ramp: rate ceiling, ops/s")
		rampProbe = flag.Duration("ramp-probe", 3*time.Second, "ramp: measure window per probe")

		sweep       = flag.Bool("sweep", false, "run the shards × GOMAXPROCS × rate scaling sweep (in-process target)")
		sweepShards = flag.String("sweep-shards", "1,2,4", "sweep: comma-separated shard counts")
		sweepProcs  = flag.String("sweep-procs", "1,2,4", "sweep: comma-separated GOMAXPROCS values")
		sweepRates  = flag.String("sweep-rates", "50000,200000,800000", "sweep: comma-separated open-loop rates, ops/s")

		wireAddr = flag.String("wire-addr", "localhost:9090", "dbpserved wire address for -target wire and -duel")
		conns    = flag.Int("conns", 4, "wire: persistent connections in the client pool")
		window   = flag.Int("window", 32, "wire: pipelined batches in flight per connection")
		batch    = flag.Int("batch", 64, "wire: max ops coalesced into one batch frame")
		flush    = flag.Duration("flush", 0, "wire: max extra latency the writer waits to fill a batch (0 = send immediately)")

		duel      = flag.Bool("duel", false, "drive the HTTP-vs-wire transport curve against one daemon (-addr + -wire-addr); the report carries every point plus the final wire run")
		duelRates = flag.String("duel-rates", "2000,5000,10000,20000,50000,100000", "duel: comma-separated open-loop rates tried per transport")
	)
	flag.Parse()
	if *listWl {
		cliutil.ListScenarios(os.Stdout)
		return
	}
	if *out == "" {
		if *sweep {
			*out = "BENCH_scale.json"
		} else {
			*out = "BENCH_serve.json"
		}
	}

	script, err := load.GenerateScript(*wl, *jobs, *traceRate, *mu, *seed, *dim)
	if err != nil {
		log.Fatal(err)
	}
	workloadLabel := fmt.Sprintf("%s jobs=%d mu=%g trace-rate=%g seed=%d dim=%d",
		*wl, *jobs, *mu, *traceRate, *seed, *dim)

	if *sweep {
		if *target != "inproc" {
			log.Fatalf("dbpload: -sweep measures the in-process dispatcher; -target %q is not supported", *target)
		}
		shardsList, err := parseInts(*sweepShards)
		if err != nil {
			log.Fatalf("dbpload: -sweep-shards: %v", err)
		}
		procsList, err := parseInts(*sweepProcs)
		if err != nil {
			log.Fatalf("dbpload: -sweep-procs: %v", err)
		}
		ratesList, err := parseFloats(*sweepRates)
		if err != nil {
			log.Fatalf("dbpload: -sweep-rates: %v", err)
		}
		rep, err := load.RunSweep(load.SweepOptions{
			Shards:        shardsList,
			Procs:         procsList,
			Rates:         ratesList,
			Algorithm:     *algo,
			Dim:           *dim,
			KeepAlive:     *keepAlive,
			QueueDepth:    *queueDepth,
			Script:        script,
			Warmup:        *warmup,
			Measure:       *measure,
			Drain:         *drain,
			Clients:       *clients,
			WorkloadLabel: workloadLabel,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("dbpload: scaling (baseline %.0f ops/s at 1 shard / 1 proc, %d cpus):",
			rep.BaselineOpsPerSec, rep.Config.NumCPU)
		for _, p := range rep.Scaling {
			log.Printf("  shards=%-2d procs=%-2d best %8.0f ops/s  efficiency %.2f (over %d effective cores)",
				p.Shards, p.Procs, p.BestOpsPerSec, p.Efficiency, p.EffectiveCores)
		}
		if *out != "" {
			if err := rep.WriteFile(*out); err != nil {
				log.Fatal(err)
			}
			log.Printf("dbpload: wrote %s", *out)
		}
		if *compare != "" {
			base, err := load.ReadScaleReport(*compare)
			if err != nil {
				log.Fatal(err)
			}
			// A baseline from different hardware cannot gate this run:
			// scaling throughput tracks the core count, so warn and skip
			// rather than report a phantom regression (or pass).
			if why := load.ScaleComparable(base, rep); why != "" {
				log.Printf("dbpload: WARNING: skipping comparison vs %s: %s", *compare, why)
				return
			}
			if bad := load.CompareScale(base, rep, *tol); len(bad) > 0 {
				for _, b := range bad {
					log.Printf("dbpload: REGRESSION vs %s: %s", *compare, b)
				}
				os.Exit(2)
			}
			log.Printf("dbpload: no regression vs %s (tolerance %g%%)", *compare, *tol)
		}
		return
	}

	wireOpts := wire.Options{Conns: *conns, Window: *window, MaxBatch: *batch, Flush: *flush}

	inprocCfg := serve.Config{
		Algorithm: *algo, Shards: *shards, Dim: *dim, KeepAlive: *keepAlive, QueueDepth: *queueDepth,
		DataDir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapshotEvery,
	}

	if *fsyncDuel {
		runFsyncDuel(inprocCfg, *fsyncPolicies, script, workloadLabel,
			*rate, *clients, *warmup, *measure, *drain, *out, *compare, *tol)
		return
	}

	if *duel {
		runDuel(*addr, *wireAddr, *duelRates, wireOpts, script, workloadLabel,
			*clients, *warmup, *measure, *drain, *out, *compare, *tol)
		return
	}

	var tgt load.Target
	switch *target {
	case "inproc":
		d, err := serve.New(inprocCfg)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		tgt = &load.InProc{D: d}
	case "http":
		nc := *clients
		if nc <= 0 {
			nc = 128
		}
		tgt = load.NewHTTP("http://"+*addr, nc, 30*time.Second)
	case "wire":
		wt, err := load.NewWire(*wireAddr, wireOpts)
		if err != nil {
			log.Fatal(err)
		}
		defer wt.Close()
		tgt = wt
	default:
		log.Fatalf("dbpload: unknown -target %q (want inproc, http, or wire)", *target)
	}

	opts := load.Options{
		Target:        tgt,
		Script:        script,
		Mode:          load.Mode(*mode),
		Rate:          *rate,
		Clients:       *clients,
		Think:         *think,
		Warmup:        *warmup,
		Measure:       *measure,
		Drain:         *drain,
		WorkloadLabel: workloadLabel,
	}

	var rep *load.Report
	if *ramp {
		log.Printf("dbpload: ramp search on %s target, SLO p99 %s, %g..%g ops/s",
			tgt.Name(), *sloP99, *rampStart, *rampMax)
		rr, err := load.RampSearch(opts, load.RampOptions{
			Start: *rampStart, Max: *rampMax, SLOp99: *sloP99, Probe: *rampProbe,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range rr.Probes {
			status := "ok"
			if !p.OK {
				status = "FAIL: " + p.Why
			}
			log.Printf("  probe %7.0f ops/s: achieved %7.0f, worst p99 %8.0fus — %s",
				p.Rate, p.Achieved, p.P99US, status)
		}
		log.Printf("dbpload: max sustainable rate under %s p99 SLO: %.0f ops/s", *sloP99, rr.MaxSustainable)
		// The final report re-measures at the sustained rate so the
		// results file carries real percentiles, with the search
		// trajectory attached.
		if rr.MaxSustainable > 0 {
			opts.Rate = rr.MaxSustainable
			opts.Mode = load.ModeOpen
			opts.IDBase = int64(len(rr.Probes)+1) * 1_000_000_000_000
			rep, err = load.Run(opts)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			rep = &load.Report{Schema: load.Schema}
		}
		rep.Ramp = rr
	} else {
		log.Printf("dbpload: %s %s run, %s warmup + %s measure (workload %s)",
			*mode, tgt.Name(), *warmup, *measure, opts.WorkloadLabel)
		rep, err = load.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	summarize(rep)

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("dbpload: wrote %s", *out)
	}

	if *compare != "" {
		base, err := load.ReadReport(*compare)
		if err != nil {
			log.Fatal(err)
		}
		if bad := load.Compare(base, rep, *tol); len(bad) > 0 {
			for _, b := range bad {
				log.Printf("dbpload: REGRESSION vs %s: %s", *compare, b)
			}
			os.Exit(2)
		}
		log.Printf("dbpload: no regression vs %s (tolerance %g%%)", *compare, *tol)
	}
}

// runDuel drives both transports against one daemon at every rate in
// ratesCSV (open loop, shared workload shape, disjoint ID ranges) and
// writes a single report: the final wire run's full digest with the
// complete HTTP-vs-wire curve attached as Transports.
func runDuel(addr, wireAddr, ratesCSV string, wireOpts wire.Options, script *load.Script,
	workloadLabel string, clients int, warmup, measure, drain time.Duration,
	out, compare string, tol float64) {
	rates, err := parseFloats(ratesCSV)
	if err != nil {
		log.Fatalf("dbpload: -duel-rates: %v", err)
	}
	var points []load.TransportPoint
	var final *load.Report
	run := 0
	for _, transport := range []string{"http", "wire"} {
		for _, rate := range rates {
			var tgt load.Target
			var wt *load.WireTarget
			if transport == "http" {
				nc := clients
				if nc <= 0 {
					nc = 128
				}
				tgt = load.NewHTTP("http://"+addr, nc, 30*time.Second)
			} else {
				wt, err = load.NewWire(wireAddr, wireOpts)
				if err != nil {
					log.Fatalf("dbpload: dial wire %s: %v", wireAddr, err)
				}
				tgt = wt
			}
			run++
			rep, err := load.Run(load.Options{
				Target:        tgt,
				Script:        script,
				Mode:          load.ModeOpen,
				Rate:          rate,
				Clients:       clients,
				Warmup:        warmup,
				Measure:       measure,
				Drain:         drain,
				IDBase:        int64(run) * 1_000_000_000_000, // runs share one daemon; IDs must not collide
				WorkloadLabel: workloadLabel,
			})
			if wt != nil {
				wt.Close()
			}
			if err != nil {
				log.Fatal(err)
			}
			p := load.PointOf(rep)
			points = append(points, p)
			log.Printf("dbpload: duel %-4s @ %8.0f ops/s: achieved %8.0f, arrive p50=%.0fus p99=%.0fus",
				transport, rate, p.AchievedRate, p.ArriveP50US, p.ArriveP99US)
			if transport == "wire" {
				final = rep
			}
		}
	}
	final.Transports = points
	summarize(final)
	if out != "" {
		if err := final.WriteFile(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("dbpload: wrote %s", out)
	}
	if compare != "" {
		base, err := load.ReadReport(compare)
		if err != nil {
			log.Fatal(err)
		}
		if bad := load.Compare(base, final, tol); len(bad) > 0 {
			for _, b := range bad {
				log.Printf("dbpload: REGRESSION vs %s: %s", compare, b)
			}
			os.Exit(2)
		}
		log.Printf("dbpload: no regression vs %s (tolerance %g%%)", compare, tol)
	}
}

// runFsyncDuel drives the durability curve: the same workload and rate
// through a fresh in-process dispatcher per WAL policy ("none" runs
// without a data dir — the in-memory baseline), each journaling to a
// throwaway directory. The report is the final policy's full digest
// with the whole curve attached as Durability, so BENCH_serve.json
// records what fsync=always costs over fsync=off at p99.
func runFsyncDuel(baseCfg serve.Config, policiesCSV string, script *load.Script,
	workloadLabel string, rate float64, clients int, warmup, measure, drain time.Duration,
	out, compare string, tol float64) {
	policies := strings.Split(policiesCSV, ",")
	var points []load.DurabilityPoint
	var final *load.Report
	for run, policy := range policies {
		policy = strings.TrimSpace(policy)
		cfg := baseCfg
		cfg.DataDir, cfg.Fsync = "", ""
		if policy != "none" {
			dir, err := os.MkdirTemp("", "dbpload-fsync-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			cfg.DataDir, cfg.Fsync = dir, policy
		}
		d, err := serve.New(cfg)
		if err != nil {
			log.Fatalf("dbpload: fsync-duel %s: %v", policy, err)
		}
		rep, err := load.Run(load.Options{
			Target:        &load.InProc{D: d},
			Script:        script,
			Mode:          load.ModeOpen,
			Rate:          rate,
			Clients:       clients,
			Warmup:        warmup,
			Measure:       measure,
			Drain:         drain,
			IDBase:        int64(run+1) * 1_000_000_000_000, // policies must not share job IDs
			WorkloadLabel: workloadLabel,
		})
		if err != nil {
			d.Close()
			log.Fatal(err)
		}
		d.Close()
		if derr := d.DurabilityErr(); derr != nil {
			log.Fatalf("dbpload: fsync-duel %s: durability failure: %v", policy, derr)
		}
		p := load.DurabilityPointOf(rep, policy)
		points = append(points, p)
		log.Printf("dbpload: fsync-duel %-8s @ %8.0f ops/s: achieved %8.0f, arrive p50=%.0fus p99=%.0fus fsync p99=%.0fus",
			policy, rate, p.AchievedRate, p.ArriveP50US, p.ArriveP99US, p.FsyncP99US)
		final = rep
	}
	final.Durability = points
	summarize(final)
	if out != "" {
		if err := final.WriteFile(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("dbpload: wrote %s", out)
	}
	if compare != "" {
		base, err := load.ReadReport(compare)
		if err != nil {
			log.Fatal(err)
		}
		if bad := load.Compare(base, final, tol); len(bad) > 0 {
			for _, b := range bad {
				log.Printf("dbpload: REGRESSION vs %s: %s", compare, b)
			}
			os.Exit(2)
		}
		log.Printf("dbpload: no regression vs %s (tolerance %g%%)", compare, tol)
	}
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFloats parses a comma-separated list of rates.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// summarize prints the human-readable digest of a run.
func summarize(rep *load.Report) {
	if m, ok := rep.Phases["measure"]; ok {
		log.Printf("dbpload: measure: %d ops in %.1fs = %.0f ops/s (requested %.0f)",
			m.Ops, m.DurationSec, m.Throughput, rep.RequestedRate)
	}
	for _, op := range []string{"arrive", "depart"} {
		o, ok := rep.Ops[op]
		if !ok || o.Latency.Count == 0 {
			continue
		}
		l := o.Latency
		log.Printf("dbpload: %-6s n=%-8d p50=%.0fus p90=%.0fus p99=%.0fus p99.9=%.0fus max=%.0fus errors=%v",
			op, l.Count, l.P50US, l.P90US, l.P99US, l.P999US, l.MaxUS, o.Errors)
	}
	if d, ok := rep.Phases["drain"]; ok && (d.Ops > 0 || d.Leaked > 0) {
		log.Printf("dbpload: drain: %d departs in %.2fs, %d leaked", d.Ops, d.DurationSec, d.Leaked)
	}
	if sk := rep.ShardSkew; sk != nil {
		log.Printf("dbpload: shard skew: %d shards, events min/mean/max = %d/%.0f/%d, imbalance %.3f, cv %.3f",
			sk.Shards, sk.MinEvents, sk.MeanEvents, sk.MaxEvents, sk.Imbalance, sk.CV)
	}
	if srv := rep.Server; srv != nil {
		for _, op := range []string{"arrive", "depart"} {
			if l, ok := srv.Latency[op]; ok && l.Count > 0 {
				log.Printf("dbpload: server-side %-6s p50=%.1fus p99=%.1fus (n=%d)", op, l.P50US, l.P99US, l.Count)
			}
		}
	}
}

// Command adversary builds one of the paper's lower-bound instance
// families and shows how every registered policy fares on it — the
// fastest way to see the separations the paper proves: Next Fit losing
// 2*mu on its Section VIII construction while First Fit stays near 1,
// First Fit and Best Fit pinned at mu on the gap-seal trap, and Best Fit
// alone degrading on the adaptive relay.
//
// Examples:
//
//	adversary -family nextfit -n 64 -mu 8
//	adversary -family anyfittrap -n 128 -mu 16
//	adversary -family bestfitrelay -n 16 -rounds 8 -mu 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dbp"
	"dbp/internal/analysis"
	"dbp/internal/opt"
	"dbp/internal/packing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adversary: ")

	var (
		family = flag.String("family", "nextfit", "instance family: nextfit, anyfittrap, bestfitrelay")
		n      = flag.Int("n", 64, "size parameter (pairs / victims)")
		mu     = flag.Float64("mu", 8, "duration ratio")
		rounds = flag.Int("rounds", 6, "relay rounds (bestfitrelay)")
	)
	flag.Parse()

	var jobs dbp.List
	var analytic string
	switch *family {
	case "nextfit":
		jobs = dbp.NextFitAdversary(*n, *mu)
		analytic = fmt.Sprintf("Next Fit ratio -> 2*mu = %g as n grows (paper Sec. VIII)", 2**mu)
	case "anyfittrap":
		jobs = dbp.AnyFitTrap(*n, *mu)
		analytic = fmt.Sprintf("First/Best Fit ratio -> mu = %g as n grows (universal lower bound)", *mu)
	case "bestfitrelay":
		jobs = dbp.BestFitRelay(*n, *rounds, *mu)
		analytic = fmt.Sprintf("Best Fit ratio -> k(mu-1)/(k+mu-1) = %.3f", float64(*n)*(*mu-1)/(float64(*n)+*mu-1))
	default:
		log.Fatalf("unknown family %q", *family)
	}

	b := opt.Total(jobs, 32, 0)
	fmt.Printf("family %s: %d items, mu = %.4g, OPT in [%.6g, %.6g]\n", *family, len(jobs), jobs.Mu(), b.Lower, b.Upper)
	fmt.Println(analytic)
	fmt.Println()

	t := analysis.NewTable("per-policy results", "policy", "usage", "bins", "peak", "ratio>=", "ratio<=")
	type row struct {
		name  string
		usage float64
		bins  int
		peak  int
	}
	var rows []row
	for name, algo := range packing.Standard() {
		res, err := packing.Run(algo, jobs, nil)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rows = append(rows, row{name, res.TotalUsage, res.NumBins(), res.MaxConcurrentOpen})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].usage > rows[j].usage })
	for _, r := range rows {
		t.AddRow(r.name, r.usage, r.bins, r.peak, r.usage/b.Upper, r.usage/b.Lower)
	}
	t.AddNote("ratio>= vs OPT upper bracket (certified), ratio<= vs OPT lower bracket")
	fmt.Print(t.String())
}

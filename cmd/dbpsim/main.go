// Command dbpsim runs one online packing policy over a workload — read
// from a trace file or generated on the fly — and reports the objectives,
// the competitive ratio against a certified OPT bracket, and optionally
// the renting cost under pay-as-you-go billing.
//
// Examples:
//
//	dbpsim -gen uniform -n 200 -rate 2 -mu 8 -algo firstfit
//	dbpsim -gen gaming -n 500 -rate 0.5 -algo bestfit -hourly 0.90
//	dbpsim -trace jobs.csv -algo nextfit -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dbp"
	"dbp/internal/analysis"
	"dbp/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpsim: ")

	var (
		algoName  = flag.String("algo", "firstfit", "policy: "+strings.Join(dbp.AlgorithmNames(), ", "))
		tracePath = flag.String("trace", "", "trace file to replay (.csv or .json, .gz transparent)")
		gen       = flag.String("gen", "", "generate workload: scenario spec name or name:key=value,... (see -list-workloads)")
		listWl    = flag.Bool("list-workloads", false, "print every registered workload scenario with its parameter schema and exit")
		n         = flag.Int("n", 200, "number of jobs (with -gen)")
		rate      = flag.Float64("rate", 2, "arrival rate (with -gen)")
		mu        = flag.Float64("mu", 8, "duration ratio bound (uniform/pareto)")
		seed      = flag.Int64("seed", 1, "random seed (with -gen)")
		hourly    = flag.Float64("hourly", 0, "if > 0: price the run at this $/hour (time unit = minutes)")
		noRatio   = flag.Bool("noratio", false, "skip OPT computation (fast for big instances)")
		verbose   = flag.Bool("v", false, "print the bin-by-bin packing")
		gantt     = flag.Bool("gantt", false, "draw an ASCII timeline of the packing")
		assignOut = flag.String("assign", "", "write the per-job server assignment CSV to this file")
	)
	flag.Parse()
	if *listWl {
		cliutil.ListScenarios(os.Stdout)
		return
	}

	jobs, err := cliutil.LoadJobs(*tracePath, cliutil.GenSpec{Spec: *gen, N: *n, Rate: *rate, Mu: *mu, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	algo, err := dbp.AlgorithmByName(*algoName)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dbp.Run(algo, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())
	fmt.Printf("instance: n=%d mu=%.4g span=%.6g demand=%.6g\n",
		len(jobs), jobs.Mu(), jobs.Span(), jobs.TotalDemand())

	if !*noRatio {
		ratio, _, err := dbp.MeasureRatio(algo, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ratio.String())
		fmt.Printf("Theorem 1 reference: mu+4 = %.4g (First Fit bound); universal lower bound: mu = %.4g\n",
			dbp.Theorem1Bound(jobs.Mu()), dbp.UniversalLowerBound(jobs.Mu()))
	}
	if *hourly > 0 {
		iv := dbp.CostOf(res, dbp.HourlyBilling(*hourly, 60))
		fmt.Printf("billing: %s\n", iv.String())
	}
	if *verbose {
		fmt.Print(res.Describe())
	}
	if *gantt {
		fmt.Print(analysis.RenderTimeline(res, 100))
	}
	if *assignOut != "" {
		f, err := os.Create(*assignOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dbp.WriteAssignment(f, res); err != nil {
			log.Fatal(err)
		}
	}
}

// dbpserved is the allocation-service daemon: an HTTP/JSON front end
// over the sharded online dispatcher (internal/serve), turning the
// paper's MinUsageTime DBP policies into a network service a cloud
// provider's front end would call on every session arrival/departure.
//
//	dbpserved -addr :8080 -algo firstfit -shards 8 -keepalive 0
//
//	POST /v1/arrive  {"id":1,"size":0.4}          → placement
//	POST /v1/depart  {"id":1}                     → departure
//	POST /v1/batch   {"ops":[...]}                → per-op results
//	GET  /v1/stats                                → service statistics
//	GET  /healthz                                 → liveness
//	GET  /debug/vars                              → expvar (incl. "dbpserved")
//
// With -wire-addr the daemon also serves the binary batched wire
// protocol (internal/wire) on a second listener, against the same
// dispatcher — dbpload -target wire drives it:
//
//	dbpserved -addr :8080 -wire-addr :9090
//
// With -data-dir the daemon is durable: every accepted event is
// appended to a per-shard write-ahead log before its reply (-fsync
// selects when records reach stable storage), periodic snapshots bound
// replay length, and a restart on the same directory recovers the
// exact pre-crash state — the directory refuses to open under
// different -shards/-dim/-capacity/-keepalive/-algo flags:
//
//	dbpserved -data-dir /var/lib/dbp -fsync always -snapshot-every 10000
//
// On SIGINT/SIGTERM the daemon drains in order: the wire front end
// (in-flight batches answered, GoAway delivered), then the HTTP server,
// then the dispatcher (which rolls a final durable snapshot); it logs
// the final usage-time and peak-servers totals before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbp/internal/packing"
	"dbp/internal/serve"
	"dbp/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		wireAddr  = flag.String("wire-addr", "", "also serve the binary wire protocol on this address (empty = HTTP only)")
		algo      = flag.String("algo", "firstfit", "packing policy: "+strings.Join(packing.Names(), ", "))
		shards    = flag.Int("shards", 0, "dispatcher shards (0 = GOMAXPROCS)")
		capacity  = flag.Float64("capacity", 1, "per-dimension server capacity")
		dim       = flag.Int("dim", 1, "resource dimensionality")
		keepAlive = flag.Float64("keepalive", 0, "keep emptied servers open this many time units")
		queue     = flag.Int("queue-depth", 0, "per-shard request queue depth (0 = default); bounds memory under overload")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")

		// Durability: with -data-dir every accepted event is journaled to
		// a per-shard write-ahead log before its reply, and startup
		// recovers the exact pre-crash state from snapshot + tail replay.
		dataDir       = flag.String("data-dir", "", "durable WAL/snapshot directory (empty = in-memory only)")
		fsync         = flag.String("fsync", "off", "WAL durability policy: always, interval, or off")
		fsyncInterval = flag.Duration("fsync-interval", 50*time.Millisecond, "background sync period for -fsync interval")
		snapshotEvery = flag.Int("snapshot-every", 10000, "durable snapshot every N events per shard (0 = only on shutdown)")
		segmentBytes  = flag.Int64("segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 64MiB)")

		// Connection hygiene: without these a slow (or hostile) client
		// can hold a connection — and its goroutine — open forever.
		readTimeout    = flag.Duration("read-timeout", 15*time.Second, "max time to read a full request, headers + body")
		writeTimeout   = flag.Duration("write-timeout", 30*time.Second, "max time to write a response")
		idleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "max keep-alive idle time before the connection closes")
		maxHeaderBytes = flag.Int("max-header-bytes", 1<<20, "max request header size in bytes")
	)
	flag.Parse()

	// Fail fast on a bad policy name before any listener or shard comes
	// up; the error lists every valid name.
	if _, err := packing.ByName(*algo); err != nil {
		log.Fatalf("invalid -algo: %v", err)
	}

	d, err := serve.New(serve.Config{
		Algorithm:     *algo,
		Shards:        *shards,
		Capacity:      *capacity,
		Dim:           *dim,
		KeepAlive:     *keepAlive,
		QueueDepth:    *queue,
		DataDir:       *dataDir,
		Fsync:         *fsync,
		FsyncInterval: *fsyncInterval,
		SnapshotEvery: *snapshotEvery,
		SegmentBytes:  *segmentBytes,
	})
	if err != nil {
		// A configuration mismatch against an existing -data-dir (or a
		// corrupt sealed segment) is fatal by design: replaying a journal
		// under the wrong shard count or dimension would silently
		// misroute every event.
		log.Fatalf("dbpserved: %v", err)
	}
	if *dataDir != "" {
		var recovered int
		for _, sh := range d.Stats().PerShard {
			recovered += sh.Events
		}
		log.Printf("dbpserved: durable mode: data-dir %s, fsync %s, snapshot every %d events; recovered %d events",
			*dataDir, *fsync, *snapshotEvery, recovered)
	}
	expvar.Publish("dbpserved", d.ExpvarFunc())

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(d))
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dbpserved: %s policy, %d shards, capacity %g, dim %d, keep-alive %g; listening on %s",
			*algo, d.NumShards(), *capacity, *dim, *keepAlive, *addr)
		errc <- srv.ListenAndServe()
	}()

	var ws *wire.Server
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("dbpserved: wire listener: %v", err)
		}
		ws = wire.NewServer(d)
		go func() {
			log.Printf("dbpserved: wire protocol v%d listening on %s", wire.Version, *wireAddr)
			if err := ws.Serve(ln); err != nil {
				errc <- fmt.Errorf("wire: %w", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("dbpserved: %s — draining (grace %s)", sig, *grace)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain in dependency order: the wire front end first (in-flight
	// batches are answered and every connection gets its GoAway), then
	// the HTTP server, then the dispatcher itself.
	if ws != nil {
		ws.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dbpserved: shutdown: %v", err)
	}
	final := d.Close()
	if err := d.DurabilityErr(); err != nil {
		log.Printf("dbpserved: WARNING: durability failure during run: %v", err)
	}
	log.Printf("dbpserved: final totals — usage time %.6g, peak servers %d, servers used %d, %d still open, %d arrivals, %d departures",
		final.UsageTime, final.PeakServers, final.ServersUsed, final.OpenServers, final.Arrivals, final.Departures)
	for _, sh := range final.PerShard {
		fmt.Printf("shard %d: events %d, usage %.6g, peak %d, open %d\n",
			sh.Shard, sh.Events, sh.UsageTime, sh.PeakServers, sh.OpenServers)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// The crash-injection suite builds the real daemon, SIGKILLs it at a
// randomized point mid-barrage, restarts it on the same -data-dir, and
// holds recovery to the books:
//
//   - triple-entry accounting: every client-acknowledged op appears in
//     the recovered journal, the journal's surplus over acknowledged
//     ops is bounded by the number of in-flight clients (fsync=always:
//     a record can hit disk the instant before the ack is lost), and
//     the recovered streams' event counts equal the journal's row count;
//   - bit-identical replay: each shard's recovered snapshot equals a
//     fresh packing.Stream fed the journal, float for float;
//   - the restarted daemon accepts new traffic.

// buildDaemon compiles dbpserved once per test binary.
var buildDaemon = sync.OnceValues(func() (string, error) {
	bin := filepath.Join(os.TempDir(), fmt.Sprintf("dbpserved-crashtest-%d", os.Getpid()))
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

// freePort grabs an ephemeral loopback port (a benign race: the daemon
// rebinds it an instant later).
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// daemon is one running dbpserved subprocess.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
	logs *bytes.Buffer
}

func startDaemon(t *testing.T, bin, dataDir string, extra ...string) *daemon {
	t.Helper()
	port := freePort(t)
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-algo", "firstfit", "-shards", "3", "-keepalive", "0.2",
		"-data-dir", dataDir, "-fsync", "always",
	}, extra...)
	d := &daemon{
		cmd:  exec.Command(bin, args...),
		base: fmt.Sprintf("http://127.0.0.1:%d", port),
		logs: &bytes.Buffer{},
	}
	d.cmd.Stdout, d.cmd.Stderr = d.logs, d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(d.base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return d
			}
		}
		if d.cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	t.Fatalf("daemon never became healthy; logs:\n%s", d.logs)
	return nil
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGKILL)
	d.cmd.Wait()
}

func (d *daemon) drain(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon did not drain on SIGTERM; logs:\n%s", d.logs)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("GET %s: %d: %s", url, res.StatusCode, body)
	}
	if err := json.NewDecoder(res.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// ack is one client-acknowledged operation.
type ack struct {
	depart bool
	id     item.ID
	server int
}

// barrage hammers the daemon with nOps unique-ID arrives (each client
// departs some of its own accepted jobs) from C goroutines, and kills
// the daemon once killAfter ops have been acknowledged. Returns every
// acknowledged op. No op is ever rejectable (unique IDs, service-clock
// times, fitting sizes), so the journal holds no tick records and the
// accounting below is exact. dim > 1 sends vector demands ("sizes"),
// exercising WAL round-trips of per-dimension vectors.
func barrage(t *testing.T, d *daemon, nOps, killAfter int, seed int64, dim int) []ack {
	t.Helper()
	const clients = 8
	var (
		mu    sync.Mutex
		acks  []ack
		total int
	)
	killed := make(chan struct{})
	var killOnce sync.Once
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			var mine []item.ID
			for i := 0; i < nOps/clients; i++ {
				var (
					body []byte
					path string
					dep  bool
					id   item.ID
				)
				if len(mine) > 4 && rng.Float64() < 0.3 {
					dep = true
					id = mine[0]
					mine = mine[1:]
					body, _ = json.Marshal(map[string]any{"id": id})
					path = "/v1/depart"
				} else {
					id = item.ID(int64(c)*1_000_000 + int64(i) + 1)
					size := 0.05 + 0.4*rng.Float64()
					req := map[string]any{"id": id, "size": size}
					if dim > 1 {
						sizes := make([]float64, dim)
						sizes[0] = size
						for k := 1; k < dim; k++ {
							sizes[k] = size * rng.Float64()
						}
						req["sizes"] = sizes
					}
					body, _ = json.Marshal(req)
					path = "/v1/arrive"
				}
				res, err := http.Post(d.base+path, "application/json", bytes.NewReader(body))
				if err != nil {
					return // daemon killed mid-flight
				}
				var out struct {
					Server int `json:"server"`
				}
				ok := res.StatusCode == http.StatusOK && json.NewDecoder(res.Body).Decode(&out) == nil
				res.Body.Close()
				if !ok {
					return
				}
				if !dep {
					mine = append(mine, id)
				}
				mu.Lock()
				acks = append(acks, ack{depart: dep, id: id, server: out.Server})
				total++
				hit := total >= killAfter
				mu.Unlock()
				if hit {
					killOnce.Do(func() {
						d.kill(t)
						close(killed)
					})
					return
				}
				select {
				case <-killed:
					return
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	killOnce.Do(func() { d.kill(t); close(killed) })
	return acks
}

// fetchShardState pulls every shard's journal and snapshot from a
// running daemon.
func fetchShardState(t *testing.T, d *daemon, shards int) ([][]serve.Event, []packing.Snapshot) {
	t.Helper()
	journals := make([][]serve.Event, shards)
	snaps := make([]packing.Snapshot, shards)
	for i := 0; i < shards; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/journal?shard=%d", d.base, i), &journals[i])
		getJSON(t, fmt.Sprintf("%s/v1/snapshot?shard=%d", d.base, i), &snaps[i])
	}
	return journals, snaps
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-injection suite; skipped with -short")
	}
	bin, err := buildDaemon()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < 2; round++ {
		round := round
		// Round 0 is the scalar daemon; round 1 runs 2-dimensional,
		// covering WAL persistence and crash recovery of vector demands.
		dim := round + 1
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			dataDir := filepath.Join(t.TempDir(), "data")
			const nOps = 10000
			killAfter := 1000 + rng.Intn(8000) // randomized crash point
			t.Logf("killing daemon after %d acknowledged ops (dim %d)", killAfter, dim)

			// -snapshot-every 0: no mid-run snapshot, so the recovered
			// journal endpoint exposes every record ever written and the
			// accounting below can be exact. Round 1 below covers the
			// snapshotting path.
			dimArg := fmt.Sprintf("%d", dim)
			d1 := startDaemon(t, bin, dataDir, "-snapshot-every", "0", "-dim", dimArg)
			acks := barrage(t, d1, nOps, killAfter, int64(round)*7919+1, dim)
			if len(acks) == 0 {
				t.Fatal("barrage acknowledged nothing before the kill")
			}

			d2 := startDaemon(t, bin, dataDir, "-snapshot-every", "0", "-dim", dimArg)
			defer func() { d2.kill(t) }()
			journals, snaps := fetchShardState(t, d2, 3)

			// Triple entry, part 1: every acknowledged op is in the
			// recovered journal, with the acknowledged placement.
			type key struct {
				depart bool
				id     item.ID
			}
			journaled := make(map[key]int)
			var rows int
			for _, j := range journals {
				rows += len(j)
				for _, ev := range j {
					journaled[key{ev.Kind == "depart", ev.ID}] = ev.Server
				}
			}
			for _, a := range acks {
				srv, ok := journaled[key{a.depart, a.id}]
				if !ok {
					t.Fatalf("acknowledged op (depart=%v id=%d) missing from recovered journal", a.depart, a.id)
				}
				if srv != a.server {
					t.Fatalf("op id=%d acknowledged on server %d but journaled on %d", a.id, a.server, srv)
				}
			}
			// Part 2: the journal's surplus over acknowledgments is at
			// most the 8 clients' in-flight ops at the kill.
			if surplus := rows - len(acks); surplus < 0 || surplus > 8 {
				t.Fatalf("journal has %d rows for %d acks (surplus %d, want 0..8)", rows, len(acks), surplus)
			}
			// Part 3: recovered stream event counts equal journal rows
			// (no rejectable ops were sent, so there are no tick records).
			var events int
			for i, s := range snaps {
				if s.Events != len(journals[i]) {
					t.Fatalf("shard %d recovered %d events but journal has %d rows", i, s.Events, len(journals[i]))
				}
				events += s.Events
			}
			t.Logf("recovered %d events across shards for %d acks", events, len(acks))

			// Bit-identical replay: a fresh stream fed the journal must
			// reproduce the recovered snapshot exactly — same floats,
			// same servers, same open-server levels.
			for i, j := range journals {
				algo, err := packing.ByName("firstfit")
				if err != nil {
					t.Fatal(err)
				}
				ref := packing.NewStreamKeepAlive(algo, 1, dim, 0.2)
				for _, ev := range j {
					if ev.Kind == "depart" {
						if _, _, err := ref.Depart(ev.ID, ev.Time); err != nil {
							t.Fatalf("shard %d: journal replay depart id=%d: %v", i, ev.ID, err)
						}
					} else if srv, _, err := ref.Arrive(ev.ID, ev.Size, ev.Sizes, ev.Time); err != nil {
						t.Fatalf("shard %d: journal replay arrive id=%d: %v", i, ev.ID, err)
					} else if srv != ev.Server {
						t.Fatalf("shard %d: replay placed id=%d on server %d, journal says %d", i, ev.ID, srv, ev.Server)
					}
				}
				if want := ref.Snapshot(); !reflect.DeepEqual(snaps[i], want) {
					t.Errorf("shard %d: recovered snapshot is not bit-identical to journal replay:\n got  %+v\n want %+v", i, snaps[i], want)
				}
			}

			// The recovered daemon accepts new traffic.
			probe := map[string]any{"id": 99_000_000 + round, "size": 0.1}
			if dim > 1 {
				sizes := make([]float64, dim)
				for k := range sizes {
					sizes[k] = 0.1
				}
				probe["sizes"] = sizes
			}
			body, _ := json.Marshal(probe)
			res, err := http.Post(d2.base+"/v1/arrive", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				t.Fatalf("post-recovery arrive: status %d", res.StatusCode)
			}
		})
	}
}

// TestCrashRecoveryWithSnapshots crashes a daemon that has been rolling
// periodic snapshots (so recovery is snapshot + tail replay, not a full
// journal replay), then proves restart idempotence: draining the
// recovered daemon and starting a third must reproduce the identical
// shard snapshots — the drain-time snapshot captures the pre-shutdown
// state exactly.
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-injection suite; skipped with -short")
	}
	bin, err := buildDaemon()
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	killAfter := 2000 + rng.Intn(6000)
	t.Logf("killing daemon after %d acknowledged ops", killAfter)

	d1 := startDaemon(t, bin, dataDir, "-snapshot-every", "256")
	acks := barrage(t, d1, 10000, killAfter, 42, 1)

	d2 := startDaemon(t, bin, dataDir, "-snapshot-every", "256")
	var stats serve.Stats
	getJSON(t, d2.base+"/v1/stats", &stats)
	var events, acked int
	for _, ps := range stats.PerShard {
		events += ps.Events
		if ps.JournalSeq != uint64(ps.Events) {
			t.Fatalf("shard %d: journal seq %d != recovered events %d", ps.Shard, ps.JournalSeq, ps.Events)
		}
	}
	acked = len(acks)
	if events < acked || events > acked+8 {
		t.Fatalf("recovered %d events for %d acks (want within [acks, acks+8])", events, acked)
	}
	_, snaps2 := fetchShardState(t, d2, 3)
	d2.drain(t)

	d3 := startDaemon(t, bin, dataDir, "-snapshot-every", "256")
	defer d3.kill(t)
	_, snaps3 := fetchShardState(t, d3, 3)
	if !reflect.DeepEqual(snaps2, snaps3) {
		t.Fatalf("restart is not idempotent: snapshots diverged across a clean drain")
	}
}

// TestDataDirConfigGuard is the daemon-level regression test for the
// startup guard: a data directory written under one configuration must
// refuse to open under different flags, with a diagnostic naming the
// mismatched field.
func TestDataDirConfigGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess suite; skipped with -short")
	}
	bin, err := buildDaemon()
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	d := startDaemon(t, bin, dataDir)
	d.drain(t)

	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"shards", []string{"-shards", "5"}, "recorded shard count"},
		{"dim", []string{"-dim", "2"}, "recorded dimension"},
		{"algo", []string{"-algo", "bestfit"}, "recorded algorithm"},
	} {
		args := append([]string{
			"-addr", "127.0.0.1:0",
			"-algo", "firstfit", "-shards", "3", "-keepalive", "0.2",
			"-data-dir", dataDir,
		}, tc.args...)
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: daemon started despite config mismatch", tc.name)
			continue
		}
		if !bytes.Contains(out, []byte(tc.want)) {
			t.Errorf("%s: startup error does not name %q:\n%s", tc.name, tc.want, out)
		}
	}
}

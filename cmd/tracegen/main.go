// Command tracegen generates workload traces — any scenario registered
// in the workload registry (random cloud workloads, the skew families,
// the synthetic gaming catalog, or the paper's adversarial constructions)
// — and writes them as CSV or JSON for dbpsim and external tools. Output
// files named *.gz are gzip-compressed transparently.
//
// Examples:
//
//	tracegen -gen uniform -n 1000 -rate 4 -mu 16 -o jobs.csv
//	tracegen -gen zipfian:alpha=1.3 -n 2000 -rate 1 -o skewed.csv.gz
//	tracegen -gen gaming -n 2000 -rate 1 -format json -o sessions.json
//	tracegen -adv nextfit -advn 64 -mu 8 -o adversary.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dbp"
	"dbp/internal/cliutil"
	"dbp/internal/trace"
	"dbp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		gen    = flag.String("gen", "", "workload scenario spec: name or name:key=value,... (see -list-workloads)")
		adv    = flag.String("adv", "", "adversarial shorthand: nextfit, anyfittrap, bestfitrelay (aliases for the registry scenarios)")
		n      = flag.Int("n", 500, "number of jobs (with -gen)")
		rate   = flag.Float64("rate", 2, "arrival rate (with -gen)")
		mu     = flag.Float64("mu", 8, "duration ratio")
		seed   = flag.Int64("seed", 1, "random seed")
		advN   = flag.Int("advn", 64, "adversary size parameter (n pairs / victims)")
		rounds = flag.Int("rounds", 6, "relay rounds (bestfitrelay)")
		format = flag.String("format", "csv", "stdout format: csv or json (files are named by extension, .gz transparent)")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.Bool("stats", false, "print trace statistics to stderr")
		listWl = flag.Bool("list-workloads", false, "print every registered workload scenario with its parameter schema and exit")
	)
	flag.Parse()
	if *listWl {
		cliutil.ListScenarios(os.Stdout)
		return
	}

	// The legacy -adv shorthands are aliases for registry scenarios, with
	// -advn carried as the instance size.
	spec, jobCount := *gen, *n
	switch *adv {
	case "":
	case "nextfit":
		spec, jobCount = "nextfit-adv", *advN
	case "anyfittrap":
		spec, jobCount = "anyfit-trap", *advN
	case "bestfitrelay":
		spec, jobCount = fmt.Sprintf("bestfit-relay:victims=%d,rounds=%d", *advN, *rounds), *advN
	default:
		log.Fatalf("unknown -adv %q (nextfit, anyfittrap, bestfitrelay)", *adv)
	}
	if spec == "" {
		log.Fatalf("pass -gen SCENARIO or -adv {nextfit,anyfittrap,bestfitrelay}; registered scenarios:\n%s", workload.Describe())
	}
	jobs, err := workload.FromSpec(spec, jobCount, *rate, *mu, *seed, 1)
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		// File output picks the codec from the extension (.csv/.json,
		// .gz transparent) so the format travels with the name.
		if err := trace.WriteFile(*out, jobs); err != nil {
			log.Fatal(err)
		}
	} else {
		switch *format {
		case "csv":
			err = dbp.WriteTraceCSV(os.Stdout, jobs)
		case "json":
			err = dbp.WriteTraceJSON(os.Stdout, jobs)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, trace.Summarize(jobs).String())
	}
}

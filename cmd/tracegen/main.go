// Command tracegen generates workload traces — random cloud workloads,
// the synthetic gaming catalog, or the paper's adversarial constructions
// — and writes them as CSV or JSON for dbpsim and external tools.
//
// Examples:
//
//	tracegen -gen uniform -n 1000 -rate 4 -mu 16 -o jobs.csv
//	tracegen -gen gaming -n 2000 -rate 1 -format json -o sessions.json
//	tracegen -adv nextfit -advn 64 -mu 8 -o adversary.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dbp"
	"dbp/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		gen    = flag.String("gen", "", "random workload: uniform, pareto, gaming, bursty")
		adv    = flag.String("adv", "", "adversarial instance: nextfit, anyfittrap, bestfitrelay")
		n      = flag.Int("n", 500, "number of jobs (with -gen)")
		rate   = flag.Float64("rate", 2, "arrival rate (with -gen)")
		mu     = flag.Float64("mu", 8, "duration ratio")
		seed   = flag.Int64("seed", 1, "random seed")
		advN   = flag.Int("advn", 64, "adversary size parameter (n pairs / victims)")
		rounds = flag.Int("rounds", 6, "relay rounds (bestfitrelay)")
		format = flag.String("format", "csv", "output format: csv or json")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	var jobs dbp.List
	switch {
	case *gen == "uniform":
		jobs = dbp.GenerateUniform(*n, *rate, *mu, *seed)
	case *gen == "pareto":
		jobs = dbp.GeneratePareto(*n, *rate, *mu, *seed)
	case *gen == "gaming":
		jobs = dbp.GenerateGaming(*n, *rate, *seed)
	case *gen == "bursty":
		jobs = dbp.GenerateBursty(*n, *rate, *mu, 10, *seed)
	case *adv == "nextfit":
		jobs = dbp.NextFitAdversary(*advN, *mu)
	case *adv == "anyfittrap":
		jobs = dbp.AnyFitTrap(*advN, *mu)
	case *adv == "bestfitrelay":
		jobs = dbp.BestFitRelay(*advN, *rounds, *mu)
	default:
		log.Fatal("pass -gen {uniform,pareto,gaming} or -adv {nextfit,anyfittrap,bestfitrelay}")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = dbp.WriteTraceCSV(w, jobs)
	case "json":
		err = dbp.WriteTraceJSON(w, jobs)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, trace.Summarize(jobs).String())
	}
}

// Command dbpexp runs the experiment suite (E1–E10 from DESIGN.md), each
// regenerating a table corresponding to a quantitative claim of the paper
// "On First Fit Bin Packing for Online Cloud Server Allocation" (IPDPS
// 2016), and renders the results as plain text or markdown.
//
// Examples:
//
//	dbpexp                  # run everything, full size
//	dbpexp -exp E2,E6       # selected experiments
//	dbpexp -quick -md -o EXPERIMENTS-data.md
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"dbp/internal/analysis"
	"dbp/internal/experiments"
	"dbp/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpexp: ")

	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids (E1..E16) or 'all'")
		quick   = flag.Bool("quick", false, "small sweeps (seconds instead of minutes)")
		seed    = flag.Int64("seed", 1, "random seed")
		md      = flag.Bool("md", false, "render markdown instead of plain text")
		out     = flag.String("o", "", "output file (default stdout)")
		workers = flag.Int("workers", 0, "experiments run concurrently on this many workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	var selected []experiments.Experiment
	if *expFlag == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	// Experiments are independent; run them concurrently and render in
	// order (results are deterministic regardless of worker count).
	type outcome struct {
		tables  []*analysis.Table
		elapsed time.Duration
	}
	outcomes := parallel.Map(len(selected), *workers, func(i int) outcome {
		start := time.Now()
		return outcome{tables: selected[i].Run(cfg), elapsed: time.Since(start)}
	})
	for i, e := range selected {
		tables := outcomes[i].tables
		elapsed := outcomes[i].elapsed
		if *md {
			fmt.Fprintf(w, "## %s: %s\n\n", e.ID, e.Title)
			fmt.Fprintf(w, "*Claim:* %s\n\n", e.Claim)
			for _, tb := range tables {
				fmt.Fprintln(w, tb.Markdown())
			}
			fmt.Fprintf(w, "*(generated in %v)*\n\n", elapsed.Round(time.Millisecond))
		} else {
			fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Title)
			fmt.Fprintf(w, "    claim: %s\n\n", e.Claim)
			for _, tb := range tables {
				fmt.Fprintln(w, tb.String())
			}
			fmt.Fprintf(w, "    (%v)\n\n", elapsed.Round(time.Millisecond))
		}
	}
}

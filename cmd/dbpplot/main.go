// Command dbpplot regenerates the repository's figures as
// self-contained SVGs: the Section VIII Next Fit ratio curve (E2), the
// gap-seal trap convergence to mu (E3), the keep-alive vs hourly-bill
// trade-off (E12), the prediction-noise sweep (E13d), and a Gantt chart
// of a First Fit packing.
//
// Example:
//
//	dbpplot -dir figures
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbp"
	"dbp/internal/cloud"
	"dbp/internal/packing"
	"dbp/internal/svgplot"
	"dbp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpplot: ")
	dir := flag.String("dir", "figures", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(name, svg string) {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	// Figure 1: Sec. VIII — Next Fit ratio vs n, per mu, with First Fit flat at 1.
	{
		ns := []float64{4, 16, 64, 256, 1024, 4096}
		p := &svgplot.Plot{
			Title:  "Sec. VIII adversary: Next Fit ratio -> 2mu (First Fit stays at 1)",
			XLabel: "n (log scale)", YLabel: "ALG / OPT", LogX: true,
		}
		for _, mu := range []float64{2, 8, 32} {
			var ys []float64
			for _, n := range ns {
				ys = append(ys, workload.NextFitAdversaryRatioLimit(int(n), mu))
			}
			p.Series = append(p.Series, svgplot.Series{Name: fmt.Sprintf("NF mu=%g", mu), X: ns, Y: ys})
		}
		p.Series = append(p.Series, svgplot.Series{Name: "FF (any mu)", X: ns, Y: []float64{1, 1, 1, 1, 1, 1}})
		write("fig_e2_nextfit.svg", p.Render())
	}

	// Figure 2: E3 — trap ratio converging to mu.
	{
		ns := []float64{8, 32, 128, 512, 2048}
		p := &svgplot.Plot{
			Title:  "Gap-seal trap: First/Best Fit ratio -> mu",
			XLabel: "n (log scale)", YLabel: "measured ratio", LogX: true,
		}
		for _, mu := range []float64{2, 8, 32} {
			var ys []float64
			for _, n := range ns {
				ys = append(ys, workload.AnyFitTrapRatioLimit(int(n), mu))
			}
			p.Series = append(p.Series, svgplot.Series{Name: fmt.Sprintf("mu=%g", mu), X: ns, Y: ys})
		}
		write("fig_e3_trap.svg", p.Render())
	}

	// Figure 3: E12 — keep-alive vs bill (measured).
	{
		jobs := dbp.GenerateGaming(600, 0.5, *seed)
		plan := cloud.Hourly(0.90, 60)
		kas := []float64{0, 5, 15, 30, 60, 120}
		var bill, idealized []float64
		for _, ka := range kas {
			res, err := dbp.RunKeepAlive(dbp.FirstFit(), jobs, ka)
			if err != nil {
				log.Fatal(err)
			}
			bill = append(bill, cloud.Cost(res, plan).Total)
			// The continuous-billing cost of the same run, for contrast.
			idealized = append(idealized, res.TotalUsage*0.90/60)
		}
		p := &svgplot.Plot{
			Title:  "Keep-alive vs hourly bill (First Fit, gaming workload)",
			XLabel: "keep-alive (min)", YLabel: "cost ($)",
			Series: []svgplot.Series{
				{Name: "hourly bill", X: kas, Y: bill},
				{Name: "continuous (usage)", X: kas, Y: idealized},
			},
		}
		write("fig_e12_keepalive.svg", p.Render())
	}

	// Figure 4: E13d — prediction noise sweep (measured).
	{
		lb := dbp.GenerateUniform(300, 3, 10, *seed)
		ff := dbp.MustRun(dbp.FirstFit(), lb)
		sigmas := []float64{0, 0.25, 0.5, 1, 2, 4}
		var rel []float64
		for _, sg := range sigmas {
			res, err := dbp.RunClairvoyant(dbp.PredictiveFit(sg, *seed), lb)
			if err != nil {
				log.Fatal(err)
			}
			rel = append(rel, res.TotalUsage/ff.TotalUsage)
		}
		p := &svgplot.Plot{
			Title:  "Learning-augmented dispatch: usage vs prediction noise",
			XLabel: "lognormal noise sigma", YLabel: "usage / FirstFit",
			Series: []svgplot.Series{
				{Name: "PredictiveFit", X: sigmas, Y: rel},
				{Name: "online FF", X: sigmas, Y: []float64{1, 1, 1, 1, 1, 1}},
			},
		}
		write("fig_e13d_predictions.svg", p.Render())
	}

	// Figure 5: Gantt of a First Fit packing.
	{
		jobs := dbp.GenerateUniform(40, 2, 6, *seed)
		res := packing.MustRun(packing.NewFirstFit(), jobs, nil)
		write("fig_gantt_firstfit.svg", svgplot.Gantt(res, 900))
	}
}

// Command dbpverify runs the full validation stack over a packing of a
// workload: the physical re-check of the placement history
// (Result.Verify), the Section IV usage-period identities, the Section V
// subperiod propositions (First Fit runs), the supplier-period census,
// Theorem 1's bound against a certified OPT bracket, and the
// cross-engine consistency of the indexed and linear placement engines.
// It is the "trust but verify" tool for traces produced elsewhere.
//
// With -dim > 1 the workload carries vector demands and the run becomes
// a DVBP verification: the scalar-only analyses (Sec. IV/V identities,
// Theorem 1) do not apply and are skipped, and instead EVERY vector
// policy is checked for bit-identical agreement between the
// d-dimensional index and the linear reference engine.
//
// Examples:
//
//	dbpverify -gen uniform -n 300 -mu 8
//	dbpverify -gen uniform -n 300 -dim 2
//	dbpverify -trace jobs.csv -algo bestfit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dbp"
	"dbp/internal/analysis"
	"dbp/internal/cliutil"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbpverify: ")

	var (
		algoName  = flag.String("algo", "firstfit", "policy: "+strings.Join(dbp.AlgorithmNames(), ", "))
		tracePath = flag.String("trace", "", "trace file to verify (.csv or .json, .gz transparent)")
		gen       = flag.String("gen", "", "generate workload: scenario spec name or name:key=value,... (see -list-workloads)")
		listWl    = flag.Bool("list-workloads", false, "print every registered workload scenario with its parameter schema and exit")
		n         = flag.Int("n", 200, "number of jobs (with -gen)")
		rate      = flag.Float64("rate", 2, "arrival rate (with -gen)")
		mu        = flag.Float64("mu", 8, "duration ratio bound")
		seed      = flag.Int64("seed", 1, "random seed (with -gen)")
		dim       = flag.Int("dim", 1, "resource dimensionality (with -gen; > 1 runs the DVBP verification)")
		assignIn  = flag.String("assign", "", "verify an external assignment CSV (id,bin,size,arrival,departure) instead of running a policy")
	)
	flag.Parse()
	if *listWl {
		cliutil.ListScenarios(os.Stdout)
		return
	}

	if *assignIn != "" {
		verifyExternal(*assignIn)
		return
	}

	jobs, err := cliutil.LoadJobs(*tracePath, cliutil.GenSpec{Spec: *gen, N: *n, Rate: *rate, Mu: *mu, Seed: *seed, Dim: *dim})
	if err != nil {
		log.Fatal(err)
	}
	algo, err := dbp.AlgorithmByName(*algoName)
	if err != nil {
		log.Fatal(err)
	}

	failures := 0
	check := func(name string, err error) {
		if err != nil {
			failures++
			fmt.Printf("FAIL  %-34s %v\n", name, err)
			return
		}
		fmt.Printf("ok    %s\n", name)
	}

	check("instance validation", jobs.Validate())

	res, err := packing.Run(algo, jobs, &packing.Options{Validate: true})
	check("simulation (per-event invariants)", err)
	if err != nil {
		os.Exit(1)
	}
	check("physical re-verification", res.Verify())

	if *dim > 1 {
		// DVBP verification: the paper's Sec. IV/V identities and
		// Theorem 1 are scalar theory, so the d-dimensional run instead
		// pins what the vector engine guarantees — every vector policy
		// packs bit-identically on the d-dimensional index and the
		// linear reference engine.
		for name := range packing.Vector() {
			vAlgo, err := packing.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			vIdx, err := packing.Run(vAlgo, jobs, &packing.Options{Engine: packing.EngineIndexed, Validate: true})
			if err != nil {
				check("vector engine consistency: "+name, err)
				continue
			}
			vLin, err := packing.Run(vAlgo, jobs, &packing.Options{Engine: packing.EngineLinear})
			if err != nil {
				check("vector engine consistency: "+name, err)
				continue
			}
			check("vector engine consistency: "+name, sameResult(vIdx, vLin))
		}
	} else {
		dec := analysis.Decompose(res)
		check("Sec. IV identities (V/W, span)", dec.Verify())

		if res.Algorithm == "FirstFit" {
			sps := analysis.SubperiodsOf(res)
			check("Sec. V propositions 3-6", analysis.VerifySubperiods(res, sps))
			groups := analysis.BuildLGroups(sps, analysis.DefaultSupplierParams())
			census := analysis.CheckSupplierDisjointness(groups)
			fmt.Printf("info  supplier census: %s\n", census.String())
		}
	}

	// res ran on the default indexed engine; the linear reference engine
	// must produce the identical packing for every policy.
	lin, lerr := packing.Run(algo, jobs, &packing.Options{Engine: packing.EngineLinear})
	if lerr != nil {
		check("indexed/linear engine consistency", lerr)
	} else {
		check("indexed/linear engine consistency", sameResult(res, lin))
	}

	if *dim > 1 {
		fmt.Printf("info  %s; dim = %d\n", res.String(), *dim)
	} else {
		b := opt.TotalParallel(jobs, 0, 0, 0)
		bound := analysis.FirstFitUpperBound(jobs.Mu())
		if res.Algorithm == "FirstFit" && res.TotalUsage > bound*b.Upper+1e-6 {
			check("Theorem 1 bound", fmt.Errorf("usage %g > (mu+4)*OPT_upper %g", res.TotalUsage, bound*b.Upper))
		} else {
			check("Theorem 1 bound", nil)
		}
		fmt.Printf("info  %s; OPT in [%.6g, %.6g]; mu = %.4g\n", res.String(), b.Lower, b.Upper, jobs.Mu())
	}

	if failures > 0 {
		log.Fatalf("%d checks failed", failures)
	}
	fmt.Println("all checks passed")
}

// verifyExternal replays a third-party assignment, verifies its physical
// legality, and benchmarks it against First Fit and the OPT bracket.
func verifyExternal(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	jobs, assign, err := trace.ReadAssignment(f)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := packing.Replay(jobs, assign)
	if err != nil {
		log.Fatalf("assignment is not a legal packing: %v", err)
	}
	if err := rep.Verify(); err != nil {
		log.Fatalf("replay verification failed: %v", err)
	}
	ff := packing.MustRun(packing.NewFirstFit(), jobs, nil)
	b := opt.TotalParallel(jobs, 0, 0, 0)
	fmt.Printf("external packing is legal: %s\n", rep.String())
	fmt.Printf("First Fit on the same instance: usage %.6g (%d servers)\n", ff.TotalUsage, ff.NumBins())
	fmt.Printf("OPT_total in [%.6g, %.6g]; external ratio <= %.4f, FF ratio <= %.4f\n",
		b.Lower, b.Upper, rep.TotalUsage/b.Lower, ff.TotalUsage/b.Lower)
}

func sameResult(a, b *dbp.Result) error {
	if a.TotalUsage != b.TotalUsage || a.NumBins() != b.NumBins() {
		return fmt.Errorf("engines disagree: %g/%d vs %g/%d bins",
			a.TotalUsage, a.NumBins(), b.TotalUsage, b.NumBins())
	}
	for id, bin := range a.Assignment {
		if b.Assignment[id] != bin {
			return fmt.Errorf("engines assign item %d differently", id)
		}
	}
	return nil
}

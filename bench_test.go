package dbp

import (
	"fmt"
	"testing"

	"dbp/internal/binpack"
	"dbp/internal/experiments"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// One benchmark per experiment (E1–E10): each runs the harness that
// regenerates the corresponding table/series from the paper's claims (see
// DESIGN.md for the experiment index). Quick mode keeps iterations
// bounded; run cmd/dbpexp for the full sweeps and rendered tables.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1FirstFitBound(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2NextFitLowerBound(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3AnyFitLowerBound(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4BestFitUnbounded(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5UniversalLowerBound(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6BoundsTable(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7Decomposition(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8GamingCost(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9AlgorithmComparison(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10MultiDim(b *testing.B)           { benchExperiment(b, "E10") }

// Micro-benchmarks: the per-event cost of the simulator under each
// policy, the exact OPT solver, and the adversary generators.

func benchPolicy(b *testing.B, algo Algorithm, n int) {
	b.Helper()
	jobs := GenerateUniform(n, 4, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(algo, jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(2*n), "events/op")
}

func BenchmarkSimulateFirstFit1k(b *testing.B) { benchPolicy(b, FirstFit(), 1000) }
func BenchmarkSimulateBestFit1k(b *testing.B)  { benchPolicy(b, BestFit(), 1000) }
func BenchmarkSimulateNextFit1k(b *testing.B)  { benchPolicy(b, NextFit(), 1000) }
func BenchmarkSimulateHybridFF1k(b *testing.B) { benchPolicy(b, HybridFirstFit(2), 1000) }

func BenchmarkSimulateFirstFitBySize(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchPolicy(b, FirstFit(), n)
		})
	}
}

func BenchmarkOptExactSegment(b *testing.B) {
	jobs := GenerateUniform(60, 2, 4, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := opt.TotalExact(jobs, 0); !ok {
			b.Fatal("exact solve cut off")
		}
	}
}

func BenchmarkBinpackExact24(b *testing.B) {
	jobs := GenerateUniform(60, 8, 2, 3)
	sizes := jobs.ActiveSizesAt(jobs.PackingPeriod().Lo + jobs.PackingPeriod().Length()/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binpack.Exact(sizes, 1)
	}
	b.ReportMetric(float64(len(sizes)), "items")
}

func BenchmarkAdversaryGeneration(b *testing.B) {
	b.Run("NextFitAdversary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.NextFitAdversary(256, 8)
		}
	})
	b.Run("AnyFitTrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.AnyFitTrap(256, 8)
		}
	})
	b.Run("BestFitRelay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload.BestFitRelay(8, 4, 4)
		}
	})
}

func BenchmarkDispatcherArriveDepart(b *testing.B) {
	b.ReportAllocs()
	d := NewDispatcher(FirstFit(), 0, 1)
	t := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ID(i + 1)
		t += 0.001
		if _, _, err := d.Arrive(id, 0.3, nil, t); err != nil {
			b.Fatal(err)
		}
		if i >= 100 {
			t += 0.001
			if _, _, err := d.Depart(ID(i-99), t); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = packing.Algorithm(nil)
}

func BenchmarkE11SupplierSweep(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12KeepAlive(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Ablations(b *testing.B)     { benchExperiment(b, "E13") }

func BenchmarkSimulateKeepAlive1k(b *testing.B) {
	jobs := GenerateUniform(1000, 4, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunKeepAlive(FirstFit(), jobs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstFitEngines compares the linear O(B)-scan reference
// engine with the indexed (BinIndex) engine on a large instance
// (identical packings, asserted by the equivalence suite).
func BenchmarkFirstFitEngines(b *testing.B) {
	jobs := GenerateUniform(20000, 64, 64, 1) // heavy fleet: hundreds of concurrently open bins
	for _, kind := range []packing.EngineKind{packing.EngineLinear, packing.EngineIndexed} {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := packing.Run(FirstFit(), jobs, &packing.Options{Engine: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Large-fleet scenarios: the arrival rate scales with n, so the number of
// concurrently open servers B grows linearly with the job count — the
// regime where any O(B) per-event ledger cost turns the whole run
// quadratic (the paper's adversarial constructions and real VM-placement
// traces both live here). Quick mode (-short) shrinks each run 10x.
func benchLargeFleet(b *testing.B, mkAlgo func() Algorithm, kind packing.EngineKind, n int, keepAlive float64) {
	b.Helper()
	if testing.Short() {
		n /= 10
	}
	jobs := GenerateUniform(n, float64(n)/100, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := &packing.Options{KeepAlive: keepAlive, Engine: kind}
		if _, err := packing.Run(mkAlgo(), jobs, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*n), "events/op")
}

func BenchmarkLargeFleetFirstFitLinear100k(b *testing.B) {
	benchLargeFleet(b, FirstFit, packing.EngineLinear, 100_000, 0)
}
func BenchmarkLargeFleetFirstFitIndexed100k(b *testing.B) {
	benchLargeFleet(b, FirstFit, packing.EngineIndexed, 100_000, 0)
}
func BenchmarkLargeFleetFirstFitLinearKeepAlive100k(b *testing.B) {
	benchLargeFleet(b, FirstFit, packing.EngineLinear, 100_000, 0.5)
}
func BenchmarkLargeFleetFirstFitIndexedKeepAlive100k(b *testing.B) {
	benchLargeFleet(b, FirstFit, packing.EngineIndexed, 100_000, 0.5)
}
func BenchmarkLargeFleetFirstFitIndexedKeepAlive1M(b *testing.B) {
	benchLargeFleet(b, FirstFit, packing.EngineIndexed, 1_000_000, 0.5)
}

// The scaling shape behind the BENCH_ledger.json criterion: ns/event of a
// 100k-job keep-alive run must stay within ~2.5x of the 10k-job run for
// the indexed engine under firstfit, bestfit, and worstfit (cmd/dbpbench
// emits the machine-readable version).
func BenchmarkLargeFleetKeepAliveScaling(b *testing.B) {
	policies := []struct {
		name string
		mk   func() Algorithm
	}{{"firstfit", FirstFit}, {"bestfit", BestFit}, {"worstfit", WorstFit}}
	for _, p := range policies {
		for _, kind := range []packing.EngineKind{packing.EngineLinear, packing.EngineIndexed} {
			for _, n := range []int{10_000, 100_000} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", p.name, kind, n), func(b *testing.B) {
					benchLargeFleet(b, p.mk, kind, n, 0.5)
				})
			}
		}
	}
}

func BenchmarkE14Fleet(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15Bursty(b *testing.B) { benchExperiment(b, "E15") }

func BenchmarkE16Objectives(b *testing.B) { benchExperiment(b, "E16") }

GO ?= go

.PHONY: build test quick race vet fmt check serve bench-ledger bench-fleet figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## quick: the -short tier — soak tests skipped, large-fleet scenarios 10x smaller
quick:
	$(GO) test -short ./...

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

## check: the full local gate — formatting, vet, and the race-enabled suite
check: fmt vet race test

## serve: launch the allocation daemon with sensible defaults
serve:
	$(GO) run ./cmd/dbpserved -addr :8080 -algo firstfit

## bench-ledger: regenerate BENCH_ledger.json (per-event ledger cost vs fleet size)
bench-ledger:
	$(GO) run ./cmd/dbpbench -o BENCH_ledger.json

## bench-fleet: run the large-fleet Go benchmarks once each
bench-fleet:
	$(GO) test -run '^$$' -bench LargeFleet -benchtime 1x .

figures:
	$(GO) run ./cmd/dbpplot

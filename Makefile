GO ?= go

.PHONY: build test quick race vet fmt check serve equivalence scenarios-check bench-ledger bench-ledger-check bench-fleet figures loadtest loadtest-short loadtest-ramp sweep sweep-short fuzz-short bench-wire loadtest-wire duel recover-test durability bench-wal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## quick: the -short tier — soak tests skipped, large-fleet scenarios 10x smaller
quick:
	$(GO) test -short ./...

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

## check: the full local gate — formatting, vet, the race-enabled suite, and
## the wire codec's zero-allocation proof (bench-wire asserts 0 allocs/op)
check: fmt vet race test bench-wire

## serve: launch the allocation daemon with sensible defaults (HTTP on
## :8080, binary wire protocol on :9090)
serve:
	$(GO) run ./cmd/dbpserved -addr :8080 -wire-addr :9090 -algo firstfit

## loadtest: benchmark a running dbpserved (start one with `make serve`) over
## HTTP at a fixed open-loop rate; writes BENCH_serve.json
loadtest:
	$(GO) run ./cmd/dbpload -target http -addr localhost:8080 -mode open -rate 5000 -warmup 2s -measure 10s -o BENCH_serve.json

## loadtest-short: ~5s in-process smoke benchmark (no daemon needed) — the CI
## tier; writes BENCH_serve.json
loadtest-short:
	$(GO) run ./cmd/dbpload -target inproc -mode open -rate 2000 -warmup 1s -measure 3s -jobs 20000 -o BENCH_serve.json

## loadtest-ramp: find the max rate a running dbpserved sustains under a 5ms p99 SLO
loadtest-ramp:
	$(GO) run ./cmd/dbpload -target http -addr localhost:8080 -ramp -slo-p99 5ms -o BENCH_serve.json

## loadtest-wire: benchmark a running dbpserved (start one with `make serve`)
## over the binary wire protocol at a fixed open-loop rate
loadtest-wire:
	$(GO) run ./cmd/dbpload -target wire -wire-addr localhost:9090 -mode open -rate 100000 -warmup 2s -measure 10s -o BENCH_serve.json

## duel: regenerate the HTTP-vs-wire transport curve in BENCH_serve.json
## against a running `make serve` daemon
duel:
	$(GO) run ./cmd/dbpload -duel -addr localhost:8080 -wire-addr localhost:9090 \
		-duel-rates 2000,5000,10000,20000,50000,100000 -warmup 1s -measure 5s -o BENCH_serve.json

## sweep: regenerate BENCH_scale.json — the shards × GOMAXPROCS × rate
## scaling surface of the in-process dispatcher
sweep:
	$(GO) run ./cmd/dbpload -target inproc -sweep -sweep-shards 1,2,4 -sweep-procs 1,2,4 \
		-sweep-rates 50000,200000,800000 -warmup 1s -measure 3s -jobs 100000 -o BENCH_scale.json

## sweep-short: seconds-scale sweep diffed against the committed baseline;
## exits 2 on a per-configuration throughput regression. The grid covers the
## same shards × procs configurations as the baseline (CompareScale treats a
## missing configuration as a failure) with a trimmed rate axis; the wide
## tolerance absorbs CI machine noise while catching a contention-class slip.
sweep-short:
	$(GO) run ./cmd/dbpload -target inproc -sweep -sweep-shards 1,2,4 -sweep-procs 1,2,4 \
		-sweep-rates 20000,200000 -warmup 300ms -measure 1s -jobs 50000 \
		-o BENCH_scale.new.json -compare BENCH_scale.json -tolerance 60

## equivalence: the cross-engine oracle (indexed vs linear, every policy,
## Run and Stream paths) under the race detector
equivalence:
	$(GO) test -race -count=1 -run Equivalent ./internal/packing/

## scenarios-check: the workload-registry gate — the registry smoke and
## statistics tests (every scenario generates, seed determinism, zipf
## slope, hotspot share, diurnal modulation, equal-duration bound) plus
## the batch-path half of the cross-engine oracle, which packs every
## registered scenario bit-identically on both engines
scenarios-check:
	$(GO) test -count=1 ./internal/workload/
	$(GO) test -count=1 -run 'TestEnginesEquivalent' ./internal/packing/

## bench-ledger: regenerate BENCH_ledger.json (per-event engine cost vs
## fleet size, per policy, indexed and linear)
bench-ledger:
	$(GO) run ./cmd/dbpbench -o BENCH_ledger.json

## bench-ledger-check: one-rep regeneration diffed against the committed
## baseline; exits 2 on a ns/event or scaling-ratio regression. The wide
## tolerance absorbs machine differences while still catching a
## complexity-class slip (an O(B) path shows up as ~900% at 10x size).
bench-ledger-check:
	$(GO) run ./cmd/dbpbench -reps 1 -o BENCH_ledger.new.json -compare BENCH_ledger.json -tolerance 300

## bench-fleet: run the large-fleet Go benchmarks once each
bench-fleet:
	$(GO) test -run '^$$' -bench LargeFleet -benchtime 1x .

## bench-wire: the wire codec's perf ledger; the accompanying
## TestCodecZeroAlloc asserts 0 allocs/op on the encode and decode paths
bench-wire:
	$(GO) test -run 'CodecZeroAlloc' -bench Wire -benchmem ./internal/wire/

## fuzz-short: a CI-scale smoke run of the wire codec and WAL record fuzzers
## (go's native fuzzing allows one target per invocation)
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecodeOp -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeResult -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeBatch -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 5s ./internal/wal/

## recover-test: the crash-injection suite — builds a real dbpserved, SIGKILLs
## it mid-barrage at randomized points, and verifies recovery (triple-entry
## accounting, bit-identical journal replay, restart idempotence, meta guard)
recover-test:
	$(GO) test -run 'CrashRecovery|DataDirConfigGuard' -count=1 -v ./cmd/dbpserved/

## durability: regenerate the fsync-policy cost curve in BENCH_serve.json —
## the same in-process workload under -fsync none/off/interval/always
durability:
	$(GO) run ./cmd/dbpload -fsync-duel -mode open -rate 3000 -warmup 1s -measure 5s \
		-jobs 60000 -snapshot-every 10000 -o BENCH_serve.json

## bench-wal: the WAL append hot path; TestAppendZeroAlloc asserts 0 allocs/op
## with fsync off
bench-wal:
	$(GO) test -run 'AppendZeroAlloc' -bench Append -benchmem ./internal/wal/

figures:
	$(GO) run ./cmd/dbpplot

GO ?= go

.PHONY: build test quick race vet fmt check serve equivalence bench-ledger bench-ledger-check bench-fleet figures loadtest loadtest-short loadtest-ramp sweep sweep-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## quick: the -short tier — soak tests skipped, large-fleet scenarios 10x smaller
quick:
	$(GO) test -short ./...

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

## check: the full local gate — formatting, vet, and the race-enabled suite
check: fmt vet race test

## serve: launch the allocation daemon with sensible defaults
serve:
	$(GO) run ./cmd/dbpserved -addr :8080 -algo firstfit

## loadtest: benchmark a running dbpserved (start one with `make serve`) over
## HTTP at a fixed open-loop rate; writes BENCH_serve.json
loadtest:
	$(GO) run ./cmd/dbpload -target http -addr localhost:8080 -mode open -rate 5000 -warmup 2s -measure 10s -o BENCH_serve.json

## loadtest-short: ~5s in-process smoke benchmark (no daemon needed) — the CI
## tier; writes BENCH_serve.json
loadtest-short:
	$(GO) run ./cmd/dbpload -target inproc -mode open -rate 2000 -warmup 1s -measure 3s -jobs 20000 -o BENCH_serve.json

## loadtest-ramp: find the max rate a running dbpserved sustains under a 5ms p99 SLO
loadtest-ramp:
	$(GO) run ./cmd/dbpload -target http -addr localhost:8080 -ramp -slo-p99 5ms -o BENCH_serve.json

## sweep: regenerate BENCH_scale.json — the shards × GOMAXPROCS × rate
## scaling surface of the in-process dispatcher
sweep:
	$(GO) run ./cmd/dbpload -target inproc -sweep -sweep-shards 1,2,4 -sweep-procs 1,2,4 \
		-sweep-rates 50000,200000,800000 -warmup 1s -measure 3s -jobs 100000 -o BENCH_scale.json

## sweep-short: seconds-scale sweep diffed against the committed baseline;
## exits 2 on a per-configuration throughput regression. The grid covers the
## same shards × procs configurations as the baseline (CompareScale treats a
## missing configuration as a failure) with a trimmed rate axis; the wide
## tolerance absorbs CI machine noise while catching a contention-class slip.
sweep-short:
	$(GO) run ./cmd/dbpload -target inproc -sweep -sweep-shards 1,2,4 -sweep-procs 1,2,4 \
		-sweep-rates 20000,200000 -warmup 300ms -measure 1s -jobs 50000 \
		-o BENCH_scale.new.json -compare BENCH_scale.json -tolerance 60

## equivalence: the cross-engine oracle (indexed vs linear, every policy,
## Run and Stream paths) under the race detector
equivalence:
	$(GO) test -race -count=1 -run Equivalent ./internal/packing/

## bench-ledger: regenerate BENCH_ledger.json (per-event engine cost vs
## fleet size, per policy, indexed and linear)
bench-ledger:
	$(GO) run ./cmd/dbpbench -o BENCH_ledger.json

## bench-ledger-check: one-rep regeneration diffed against the committed
## baseline; exits 2 on a ns/event or scaling-ratio regression. The wide
## tolerance absorbs machine differences while still catching a
## complexity-class slip (an O(B) path shows up as ~900% at 10x size).
bench-ledger-check:
	$(GO) run ./cmd/dbpbench -reps 1 -o BENCH_ledger.new.json -compare BENCH_ledger.json -tolerance 300

## bench-fleet: run the large-fleet Go benchmarks once each
bench-fleet:
	$(GO) test -run '^$$' -bench LargeFleet -benchtime 1x .

figures:
	$(GO) run ./cmd/dbpplot

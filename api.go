package dbp

import (
	"io"

	"dbp/internal/analysis"
	"dbp/internal/cloud"
	"dbp/internal/gaming"
	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/trace"
	"dbp/internal/workload"
)

// Core model types.
type (
	// Item is one job: a size in (0, 1] (fraction of a unit-capacity
	// server) active on the half-open interval [Arrival, Departure).
	Item = item.Item
	// ID identifies an item within an instance.
	ID = item.ID
	// List is a problem instance (a multiset of items).
	List = item.List
	// Algorithm is an online packing policy; it sees arrivals without
	// departure times and the current open-bin states only.
	Algorithm = packing.Algorithm
	// Result is the outcome of one packing run, with full placement
	// history and both objectives (usage time, peak open servers).
	Result = packing.Result
	// Dispatcher drives a policy job-by-job in real time (departures
	// unknown at arrival), as a cloud provider's front end would.
	Dispatcher = packing.Stream
	// DispatcherSnapshot is a detached point-in-time view of a
	// Dispatcher: objective totals plus per-server utilization, as
	// returned by Dispatcher.Snapshot and published by the allocation
	// service (cmd/dbpserved) on its stats endpoint.
	DispatcherSnapshot = packing.Snapshot
	// ServerState describes one open server inside a
	// DispatcherSnapshot: scalar and per-dimension load, job count,
	// opening time, and keep-alive lingering status.
	ServerState = packing.ServerState
	// OptBounds is a certified bracket [Lower, Upper] on OPT_total.
	OptBounds = opt.Bounds
	// Ratio is a measured competitive ratio against an OPT bracket.
	Ratio = analysis.Ratio
	// BillingModel quantizes server runtime into billing quanta.
	BillingModel = cloud.BillingModel
	// Invoice is the renting cost of a run under a billing model.
	Invoice = cloud.Invoice
)

// Dispatcher failure classes. Every error returned by
// Dispatcher.Arrive and Dispatcher.Depart wraps exactly one of these
// sentinels, so callers classify failures with errors.Is instead of
// string matching (the dbpserved daemon maps them onto HTTP 409, 404,
// and 422 responses).
var (
	// ErrDuplicateJob: Arrive for a job ID that is already running.
	ErrDuplicateJob = packing.ErrDuplicateJob
	// ErrUnknownJob: Depart for a job ID that is not running.
	ErrUnknownJob = packing.ErrUnknownJob
	// ErrTimeRegression: an event timestamp before the previous
	// event's (or non-finite); the dispatcher clock only moves forward.
	ErrTimeRegression = packing.ErrTimeRegression
	// ErrBadDemand: a demand no server could ever satisfy
	// (non-positive, NaN, over capacity, or wrong dimensionality).
	ErrBadDemand = packing.ErrBadDemand
	// ErrPolicyMisplace: the policy returned an unusable server — an
	// implementation bug in the policy, not a caller error.
	ErrPolicyMisplace = packing.ErrPolicyMisplace
)

// Policies. Each call returns a fresh, reusable policy instance.

// FirstFit returns the First Fit policy analyzed by the paper: place each
// job in the earliest-opened server with room ((mu+4)-competitive,
// Theorem 1).
func FirstFit() Algorithm { return packing.NewFirstFit() }

// BestFit returns Best Fit (tightest fitting server; unbounded
// competitive ratio for this problem).
func BestFit() Algorithm { return packing.NewBestFit() }

// WorstFit returns Worst Fit (emptiest fitting server).
func WorstFit() Algorithm { return packing.NewWorstFit() }

// LastFit returns Last Fit (most recently opened fitting server).
func LastFit() Algorithm { return packing.NewLastFit() }

// NextFit returns Next Fit (single available server; at best
// 2mu-competitive, paper Sec. VIII).
func NextFit() Algorithm { return packing.NewNextFit() }

// RandomFit returns the seeded random Any Fit baseline.
func RandomFit(seed int64) Algorithm { return packing.NewRandomFit(seed) }

// HybridFirstFit returns the size-classifying First Fit with k >= 2
// harmonic classes (k = 2 splits at 1/2).
func HybridFirstFit(k int) Algorithm { return packing.NewHybridFirstFit(k) }

// HybridNextFit returns the size-classifying Next Fit with k >= 2 classes.
func HybridNextFit(k int) Algorithm { return packing.NewHybridNextFit(k) }

// AlgorithmByName returns a policy by its short name ("firstfit",
// "bestfit", "nextfit", ...); see AlgorithmNames.
func AlgorithmByName(name string) (Algorithm, error) { return packing.ByName(name) }

// AlgorithmNames lists the registered policy names.
func AlgorithmNames() []string { return packing.Names() }

// Run simulates the online packing of the instance under the policy and
// returns the complete, verified-able result.
func Run(algo Algorithm, l List) (*Result, error) { return packing.Run(algo, l, nil) }

// MustRun is Run for known-good inputs; it panics on error.
func MustRun(algo Algorithm, l List) *Result { return packing.MustRun(algo, l, nil) }

// NewDispatcher creates a streaming dispatcher with unit-capacity servers
// of the given dimensionality (use 1 for the scalar problem; capacity 0
// means 1.0). On error, Arrive and Depart return server index -1
// (packing.ErrServer) — never a valid index.
func NewDispatcher(algo Algorithm, capacity float64, dim int) *Dispatcher {
	return packing.NewStream(algo, capacity, dim)
}

// Offline optimum and lower bounds.

// OptExact computes OPT_total(R) exactly (branch and bound per timeline
// segment); ok is false if any segment's search hit the node budget.
func OptExact(l List) (total float64, ok bool) { return opt.TotalExact(l, 0) }

// Opt computes a certified bracket on OPT_total.
func Opt(l List) OptBounds { return opt.Total(l, 0, 0) }

// DemandLowerBound is the paper's Proposition 1: OPT_total >= total
// time-space demand.
func DemandLowerBound(l List) float64 { return opt.DemandLowerBound(l) }

// SpanLowerBound is the paper's Proposition 2: OPT_total >= span(R).
func SpanLowerBound(l List) float64 { return opt.SpanLowerBound(l) }

// MeasureRatio runs the policy and reports its competitive ratio against
// a certified OPT bracket.
func MeasureRatio(algo Algorithm, l List) (Ratio, *Result, error) {
	return analysis.Measure(algo, l, nil)
}

// Theoretical bounds (paper Secs. I, II, VIII; Theorem 1).

// Theorem1Bound returns mu + 4, the paper's upper bound on First Fit's
// competitive ratio.
func Theorem1Bound(mu float64) float64 { return analysis.FirstFitUpperBound(mu) }

// UniversalLowerBound returns mu, the lower bound no online algorithm
// beats.
func UniversalLowerBound(mu float64) float64 { return analysis.AnyOnlineLowerBound(mu) }

// NextFitBounds returns Next Fit's [2mu, 2mu+1] competitive-ratio window.
func NextFitBounds(mu float64) (lower, upper float64) {
	return analysis.NextFitLowerBound(mu), analysis.NextFitUpperBound(mu)
}

// Workload generation.

// GenerateUniform generates n jobs with Poisson(rate) arrivals, uniform
// sizes in [0.05, 0.95] and uniform durations in [1, mu].
func GenerateUniform(n int, rate, mu float64, seed int64) List {
	return workload.Generate(workload.UniformConfig(n, rate, mu, seed))
}

// GeneratePareto is GenerateUniform with heavy-tailed (bounded Pareto)
// durations on [1, mu].
func GeneratePareto(n int, rate, mu float64, seed int64) List {
	return workload.Generate(workload.ParetoConfig(n, rate, mu, seed))
}

// GenerateGaming synthesizes cloud-gaming sessions (the paper's
// motivating application): GPU-share sizes from a four-tier catalog,
// heavy-tailed session lengths with mu <= 60 (time unit: minutes).
func GenerateGaming(n int, rate float64, seed int64) List {
	l, _ := gaming.Sessions(gaming.Config{Catalog: gaming.DefaultCatalog(), Rate: rate, N: n, Seed: seed})
	return l
}

// Adversarial instances (the paper's lower-bound constructions).

// NextFitAdversary builds the Section VIII instance on which Next Fit
// pays n*mu against an optimum of n/2 + mu.
func NextFitAdversary(n int, mu float64) List { return workload.NextFitAdversary(n, mu) }

// AnyFitTrap builds the gap-seal instance pinning First Fit and Best Fit
// to a ratio approaching mu.
func AnyFitTrap(n int, mu float64) List { return workload.AnyFitTrap(n, mu) }

// BestFitRelay builds the adaptive instance on which Best Fit's ratio
// grows with k at fixed mu while First Fit resists.
func BestFitRelay(k, rounds int, mu float64) List { return workload.BestFitRelay(k, rounds, mu) }

// Trace I/O.

// ReadTraceCSV parses a CSV trace ("id,size,arrival,departure[,size2...]").
func ReadTraceCSV(r io.Reader) (List, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes the instance as CSV, sorted by arrival.
func WriteTraceCSV(w io.Writer, l List) error { return trace.WriteCSV(w, l) }

// ReadTraceJSON parses a JSON trace (array of item objects).
func ReadTraceJSON(r io.Reader) (List, error) { return trace.ReadJSON(r) }

// WriteTraceJSON writes the instance as JSON, sorted by arrival.
func WriteTraceJSON(w io.Writer, l List) error { return trace.WriteJSON(w, l) }

// Billing.

// HourlyBilling returns a per-hour pay-as-you-go plan for a workload
// whose time unit is unitsPerHour-th of an hour.
func HourlyBilling(ratePerHour, unitsPerHour float64) BillingModel {
	return cloud.Hourly(ratePerHour, unitsPerHour)
}

// CostOf prices a completed run under the billing model.
func CostOf(res *Result, m BillingModel) Invoice { return cloud.Cost(res, m) }

// Extended runtime modes.

// RunKeepAlive simulates the policy with emptied servers lingering
// (reusable) for keepAlive time units before shutting down — the cloud
// keep-alive model evaluated by experiment E12. Lingering time counts
// toward TotalUsage.
func RunKeepAlive(algo Algorithm, l List, keepAlive float64) (*Result, error) {
	return packing.Run(algo, l, &packing.Options{KeepAlive: keepAlive})
}

// RunClairvoyant simulates a departure-aware baseline policy (AlignFit,
// NoExtendFit): the policy sees each job's departure time at placement,
// leaving the paper's online model. Used to quantify the value of
// clairvoyance (experiment E13c).
func RunClairvoyant(algo Algorithm, l List) (*Result, error) {
	return packing.Run(algo, l, &packing.Options{Clairvoyant: true})
}

// AlignFit returns the clairvoyant baseline that aligns each job's
// departure with the closest-closing server (requires RunClairvoyant).
func AlignFit() Algorithm { return packing.NewAlignFit() }

// NoExtendFit returns the clairvoyant baseline that prefers placements
// that do not extend any server's closing horizon (requires
// RunClairvoyant).
func NoExtendFit() Algorithm { return packing.NewNoExtendFit() }

// NextKFit returns bounded-space Next-k Fit: Next Fit generalized to k
// simultaneously available servers (k = 1 is exactly Next Fit).
func NextKFit(k int) Algorithm { return packing.NewNextKFit(k) }

// AlmostWorstFit returns the classical second-emptiest-bin policy.
func AlmostWorstFit() Algorithm { return packing.NewAlmostWorstFit() }

// PredictiveFit returns the learning-augmented baseline: departure-aware
// placement driven by noisy duration predictions (lognormal noise sigma;
// sigma 0 = perfect clairvoyance). Requires RunClairvoyant.
func PredictiveFit(sigma float64, seed int64) Algorithm { return packing.NewPredictiveFit(sigma, seed) }

// RenderGantt draws an ASCII timeline of a packing run (one row per
// server; '#' occupied, '.' lingering under keep-alive).
func RenderGantt(res *Result, width int) string { return analysis.RenderTimeline(res, width) }

// Heterogeneous fleets (extension; the paper normalizes to unit servers).

type (
	// ServerType is one capacity tier of a heterogeneous fleet.
	ServerType = packing.ServerType
	// TypeChooser picks the tier to open for a job no open server takes.
	TypeChooser = packing.TypeChooser
	// RatePlan prices a heterogeneous fleet per capacity tier.
	RatePlan = cloud.RatePlan
	// TierRate prices one tier of a RatePlan.
	TierRate = cloud.TierRate
)

// RunFleet simulates online packing over a multi-tier server catalog;
// chooser (nil = RightSizeChooser) picks the tier whenever a new server
// opens.
func RunFleet(algo Algorithm, l List, fleet []ServerType, chooser TypeChooser) (*Result, error) {
	return packing.RunFleet(algo, l, fleet, chooser, nil)
}

// RightSizeChooser opens the smallest tier that fits the arriving job.
func RightSizeChooser() TypeChooser { return packing.RightSize() }

// LargestTypeChooser always opens the largest tier.
func LargestTypeChooser() TypeChooser { return packing.LargestType() }

// CostOfFleet prices a heterogeneous-fleet run under a tiered plan.
func CostOfFleet(res *Result, p RatePlan) Invoice { return cloud.CostFleet(res, p) }

// GenerateBursty generates n jobs under a two-state Markov-modulated
// Poisson process: calm rate `rate`, bursts at burstFactor times that.
func GenerateBursty(n int, rate, mu, burstFactor float64, seed int64) List {
	return workload.GenerateBursty(workload.BurstyConfig{
		Config:      workload.UniformConfig(n, rate, mu, seed),
		BurstFactor: burstFactor,
		MeanCalm:    30,
		MeanBurst:   3,
	})
}

// NewDispatcherKeepAlive is NewDispatcher with lingering servers: an
// emptied server stays open (reusable) for keepAlive time units.
func NewDispatcherKeepAlive(algo Algorithm, capacity float64, dim int, keepAlive float64) *Dispatcher {
	return packing.NewStreamKeepAlive(algo, capacity, dim, keepAlive)
}

// EventLog renders a chronological audit trail of a packing run.
func EventLog(res *Result) string { return analysis.EventLog(res) }

// WriteAssignment exports a run's per-job server assignment as CSV.
func WriteAssignment(w io.Writer, res *Result) error { return trace.WriteAssignment(w, res) }

//go:build !race

package wal

// raceEnabled reports whether the race detector is on; the
// zero-allocation assertions are skipped under -race, which disables
// the inlining those guarantees depend on.
const raceEnabled = false

package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Meta pins the service configuration a data directory was written
// under. Records are routed to shards by job-ID hash and replayed into
// streams of a specific dimension/policy, so reopening a directory
// under different flags would silently misroute or misplace every
// event — OpenStore refuses instead.
type Meta struct {
	Version   int     `json:"version"`
	Shards    int     `json:"shards"`
	Dim       int     `json:"dim"`
	Capacity  float64 `json:"capacity"`
	KeepAlive float64 `json:"keep_alive"`
	Algorithm string  `json:"algorithm"`
}

// metaVersion is the current data-directory layout version.
const metaVersion = 1

// metaFile is the config guard at the data-dir root.
const metaFile = "META.json"

// Store is a data directory holding one Log per shard plus the META
// config guard.
type Store struct {
	dir  string
	meta Meta
	logs []*Log
}

// OpenStore opens (or initializes) the data directory for the given
// configuration. A fresh directory is stamped with meta; an existing
// one must match it exactly, field for field. observe, when non-nil,
// receives per-shard fsync latencies.
func OpenStore(dir string, meta Meta, opts Options, observe func(shard int, d time.Duration)) (*Store, error) {
	if meta.Shards < 1 {
		return nil, fmt.Errorf("wal: store needs at least 1 shard")
	}
	meta.Version = metaVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, metaFile)
	if buf, err := os.ReadFile(path); err == nil {
		var got Meta
		if err := json.Unmarshal(buf, &got); err != nil {
			return nil, fmt.Errorf("wal: %s is unreadable: %v", path, err)
		}
		if err := matchMeta(got, meta); err != nil {
			return nil, fmt.Errorf("wal: data dir %s was written under a different configuration: %w", dir, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		buf, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	st := &Store{dir: dir, meta: meta, logs: make([]*Log, meta.Shards)}
	for i := range st.logs {
		o := opts
		if observe != nil {
			shard := i
			o.SyncObserver = func(d time.Duration) { observe(shard, d) }
		}
		l, err := Open(filepath.Join(dir, fmt.Sprintf("shard-%04d", i)), o)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		st.logs[i] = l
	}
	return st, nil
}

// matchMeta returns a descriptive error for the first differing field.
func matchMeta(got, want Meta) error {
	switch {
	case got.Version != want.Version:
		return fmt.Errorf("layout version %d, this binary writes %d", got.Version, want.Version)
	case got.Shards != want.Shards:
		return fmt.Errorf("recorded shard count %d, flags say %d", got.Shards, want.Shards)
	case got.Dim != want.Dim:
		return fmt.Errorf("recorded dimension %d, flags say %d", got.Dim, want.Dim)
	case got.Capacity != want.Capacity:
		return fmt.Errorf("recorded capacity %g, flags say %g", got.Capacity, want.Capacity)
	case got.KeepAlive != want.KeepAlive:
		return fmt.Errorf("recorded keep-alive %g, flags say %g", got.KeepAlive, want.KeepAlive)
	case got.Algorithm != want.Algorithm:
		return fmt.Errorf("recorded algorithm %q, flags say %q", got.Algorithm, want.Algorithm)
	}
	return nil
}

// Meta returns the configuration the store is pinned to.
func (s *Store) Meta() Meta { return s.meta }

// Shard returns shard i's log.
func (s *Store) Shard(i int) *Log { return s.logs[i] }

// Close closes every shard log, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, l := range s.logs {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it
// must never panic, and any frame it accepts must re-encode to exactly
// the bytes it consumed (so recovery's notion of a valid frame is
// closed under the codec).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range []Record{
		{Kind: KindArrive, ID: 1, Time: 0.5, Server: 0, Size: 0.25},
		{Kind: KindArrive, ID: -9, Time: 123.25, Server: 41, Size: 0.75, Sizes: []float64{0.75, 0.125}},
		{Kind: KindDepart, ID: 1, Time: 2, Server: 3},
		{Kind: KindTick, ID: 7, Time: 9, Server: -1},
	} {
		buf, err := appendRecord(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-3]) // torn tail seed
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		enc, err := appendRecord(nil, &rec)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", data[:n], enc)
		}
	})
}

//go:build race

package wal

// raceEnabled reports whether the race detector is on.
const raceEnabled = true

package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append, before the caller replies:
	// an acknowledged event is on disk. Highest latency, zero loss.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval flushes and syncs on a background timer: a crash
	// loses at most the last interval's acknowledged events (replay
	// still recovers a consistent prefix).
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff leaves durability to the kernel (flush on rotation and
	// close only): fastest, loses whatever the page cache held.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(strings.ToLower(s)) {
	case FsyncAlways:
		return FsyncAlways, nil
	case FsyncInterval:
		return FsyncInterval, nil
	case FsyncOff, "":
		return FsyncOff, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (valid: %s, %s, %s)", s, FsyncAlways, FsyncInterval, FsyncOff)
}

// Options configures one shard log.
type Options struct {
	// Fsync is the durability policy; empty means FsyncOff.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period for FsyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// SyncObserver, when set, receives the duration of every fsync on
	// the append path (the service feeds its fsync latency histogram).
	SyncObserver func(time.Duration)
}

const (
	segSuffix      = ".wal"
	snapSuffix     = ".snap"
	snapPrefix     = "snap-"
	defaultSegment = 64 << 20
	segMagic       = "DBPWAL01"
	snapMagic      = "DBPSNAP1"
	segHeaderLen   = len(segMagic) + 8 // magic + firstSeq u64
)

// segInfo is one closed (or active) segment on disk.
type segInfo struct {
	firstSeq uint64
	records  uint64
	bytes    int64 // including header
	path     string
}

// Stats is a point-in-time durability gauge for one shard log.
type Stats struct {
	// Segments and Bytes cover every live segment file (active included).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// NextSeq is the sequence number the next append will take — equal
	// to the owning stream's event count.
	NextSeq uint64 `json:"next_seq"`
	// SnapshotSeq is the event count the newest durable snapshot covers
	// (records with seq < SnapshotSeq are restorable without replay);
	// HasSnapshot distinguishes "no snapshot yet" from seq 0.
	SnapshotSeq  uint64 `json:"snapshot_seq"`
	HasSnapshot  bool   `json:"has_snapshot"`
	SnapshotTime int64  `json:"snapshot_unix_nano,omitempty"`
}

// Log is one shard's write-ahead log: an append-only sequence of
// records split across segment files, plus at most one durable snapshot
// covering a prefix of it. Appends are serialized by an internal mutex
// (the owner goroutine is the only appender; the background interval
// syncer shares the flush path).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	buf      []byte // append scratch: one encoded frame
	nextSeq  uint64
	segStart uint64 // firstSeq of the active segment
	segBytes int64
	sealed   []segInfo // older segments, ascending firstSeq
	snapSeq  uint64
	hasSnap  bool
	snapTime int64
	err      error // sticky: first write/sync failure fails the log

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// Open opens (or creates) the shard log in dir, recovering the segment
// chain: every sealed segment must decode cleanly end to end, while a
// torn frame at the tail of the last segment — the footprint of a crash
// mid-write — is truncated away.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncOff
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegment
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 50 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	if err := l.recoverSegments(segs); err != nil {
		return nil, err
	}
	if l.opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanDir inventories segment files (sorted by first sequence) and the
// newest valid snapshot.
func (l *Log) scanDir() ([]segInfo, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	var snaps []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, segSuffix):
			seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wal: alien segment file %s", name)
			}
			segs = append(segs, segInfo{firstSeq: seq, path: filepath.Join(l.dir, name)})
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			snaps = append(snaps, filepath.Join(l.dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	sort.Strings(snaps) // ascending seq: the zero-padded name sorts numerically
	// Adopt the newest structurally valid snapshot; drop the rest (a
	// crash between writing a new snapshot and pruning old ones leaves
	// extras behind).
	for i := len(snaps) - 1; i >= 0; i-- {
		seq, tm, _, err := readSnapshotFile(snaps[i], false)
		if err != nil {
			continue
		}
		l.snapSeq, l.snapTime, l.hasSnap = seq, tm, true
		for j := 0; j < i; j++ {
			os.Remove(snaps[j])
		}
		break
	}
	return segs, nil
}

// recoverSegments verifies the chain and opens the tail for append.
func (l *Log) recoverSegments(segs []segInfo) error {
	if len(segs) == 0 {
		first := uint64(0)
		if l.hasSnap {
			first = l.snapSeq
		}
		return l.createSegment(first)
	}
	for i := range segs {
		last := i == len(segs)-1
		n, bytes, err := checkSegment(&segs[i], last)
		if err != nil {
			return err
		}
		segs[i].records, segs[i].bytes = n, bytes
		if i > 0 {
			if want := segs[i-1].firstSeq + segs[i-1].records; segs[i].firstSeq != want {
				return fmt.Errorf("wal: segment chain gap: %s starts at seq %d, want %d",
					filepath.Base(segs[i].path), segs[i].firstSeq, want)
			}
		}
	}
	tail := segs[len(segs)-1]
	l.sealed = segs[:len(segs)-1]
	l.segStart = tail.firstSeq
	l.segBytes = tail.bytes
	l.nextSeq = tail.firstSeq + tail.records
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	// Truncate any torn tail found by checkSegment, then append after
	// the last valid frame.
	if err := f.Truncate(tail.bytes); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(tail.bytes, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// checkSegment validates a segment's header and decodes every record.
// For the last (active) segment a torn final frame is tolerated: the
// returned byte count stops at the last valid frame and the caller
// truncates there. Sealed segments must be whole.
func checkSegment(s *segInfo, last bool) (records uint64, validBytes int64, err error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("wal: %s: bad segment header", filepath.Base(s.path))
	}
	if seq := binary.LittleEndian.Uint64(data[len(segMagic):]); seq != s.firstSeq {
		return 0, 0, fmt.Errorf("wal: %s: header seq %d != name", filepath.Base(s.path), seq)
	}
	off := segHeaderLen
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			if last {
				// Torn write at the crash point: recovery keeps the
				// valid prefix and discards the partial frame.
				return records, int64(off), nil
			}
			return 0, 0, fmt.Errorf("wal: %s: record %d at offset %d: %w",
				filepath.Base(s.path), records, off, err)
		}
		off += n
		records++
	}
	return records, int64(off), nil
}

// createSegment starts a fresh active segment whose first record will
// carry firstSeq.
func (l *Log) createSegment(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if l.opts.Fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f = f
	if l.w == nil {
		l.w = bufio.NewWriter(f)
	} else {
		l.w.Reset(f)
	}
	l.segStart = firstSeq
	l.segBytes = int64(segHeaderLen)
	if firstSeq > l.nextSeq {
		l.nextSeq = firstSeq
	}
	return nil
}

// Append journals one record, assigning it the next sequence number.
// Under FsyncAlways it returns only once the record is on stable
// storage. A write or sync failure is sticky: the log refuses further
// appends, keeping the divergence between disk and memory bounded at
// the first failed record.
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	var err error
	l.buf, err = appendRecord(l.buf[:0], r)
	if err != nil {
		return err // encoding error: nothing written, log still healthy
	}
	if _, err := l.w.Write(l.buf); err != nil {
		return l.fail(err)
	}
	l.segBytes += int64(len(l.buf))
	l.nextSeq++
	if l.opts.Fsync == FsyncAlways {
		start := time.Now()
		if err := l.w.Flush(); err != nil {
			return l.fail(err)
		}
		if err := l.f.Sync(); err != nil {
			return l.fail(err)
		}
		if l.opts.SyncObserver != nil {
			l.opts.SyncObserver(time.Since(start))
		}
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return l.fail(err)
		}
	}
	return nil
}

// fail records the first hard failure and poisons the log.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: log failed: %w", err)
	}
	return l.err
}

// rotate seals the active segment and starts the next one.
func (l *Log) rotate() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil { // a sealed segment is always durable
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, segInfo{
		firstSeq: l.segStart,
		records:  l.nextSeq - l.segStart,
		bytes:    l.segBytes,
		path:     filepath.Join(l.dir, fmt.Sprintf("%020d%s", l.segStart, segSuffix)),
	})
	return l.createSegment(l.nextSeq)
}

// NextSeq returns the sequence number the next append will take.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Err returns the sticky failure, if the log has one.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns the current durability gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:     len(l.sealed) + 1,
		Bytes:        l.segBytes,
		NextSeq:      l.nextSeq,
		SnapshotSeq:  l.snapSeq,
		HasSnapshot:  l.hasSnap,
		SnapshotTime: l.snapTime,
	}
	for _, s := range l.sealed {
		st.Bytes += s.bytes
	}
	return st
}

// Replay streams every record with sequence >= from, in order, to fn.
// It flushes buffered appends first so the tail is visible. fn
// returning an error aborts the replay with that error.
func (l *Log) Replay(from uint64, fn func(seq uint64, r Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return l.fail(err)
		}
	}
	segs := append(append([]segInfo(nil), l.sealed...), segInfo{
		firstSeq: l.segStart,
		records:  l.nextSeq - l.segStart,
		path:     filepath.Join(l.dir, fmt.Sprintf("%020d%s", l.segStart, segSuffix)),
	})
	for _, s := range segs {
		if s.firstSeq+s.records <= from && s.records > 0 {
			continue // fully below the requested tail
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		if len(data) < segHeaderLen {
			return fmt.Errorf("wal: %s: bad segment header", filepath.Base(s.path))
		}
		off := segHeaderLen
		seq := s.firstSeq
		for off < len(data) {
			r, n, err := decodeRecord(data[off:])
			if err != nil {
				return fmt.Errorf("wal: %s: replay at offset %d: %w", filepath.Base(s.path), off, err)
			}
			if seq >= from {
				if err := fn(seq, r); err != nil {
					return err
				}
			}
			off += n
			seq++
		}
	}
	return nil
}

// SaveSnapshot durably stores payload as the state snapshot covering
// every record with sequence < seq, then prunes older snapshots and
// deletes sealed segments the snapshot fully covers. The write is
// atomic: tmp file, fsync, rename, directory fsync — a crash at any
// point leaves either the old snapshot or the new one, never a torn
// mix. takenUnixNano stamps the snapshot for the stats endpoint's
// snapshot-age gauge.
func (l *Log) SaveSnapshot(seq uint64, takenUnixNano int64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if seq > l.nextSeq {
		return fmt.Errorf("wal: snapshot seq %d beyond journal end %d", seq, l.nextSeq)
	}
	if l.hasSnap && seq < l.snapSeq {
		return fmt.Errorf("wal: snapshot seq %d regresses below %d", seq, l.snapSeq)
	}
	// The snapshot must not get ahead of durable records: sync the
	// journal up to seq first, so "snapshot covers seq" holds on disk.
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	final := filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	if err := writeSnapshotFile(tmp, seq, takenUnixNano, payload); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	prevSeq, hadPrev := l.snapSeq, l.hasSnap
	l.snapSeq, l.snapTime, l.hasSnap = seq, takenUnixNano, true
	if hadPrev && prevSeq != seq {
		os.Remove(filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", snapPrefix, prevSeq, snapSuffix)))
	}
	// Drop sealed segments whose every record is below the snapshot.
	kept := l.sealed[:0]
	for i, s := range l.sealed {
		if s.firstSeq+s.records <= seq {
			if err := os.Remove(s.path); err != nil {
				// Keep it on the books; a later snapshot retries.
				kept = append(kept, l.sealed[i])
				continue
			}
			continue
		}
		kept = append(kept, l.sealed[i])
	}
	l.sealed = append([]segInfo(nil), kept...)
	return nil
}

// LoadSnapshot returns the newest durable snapshot's payload and the
// sequence it covers, or ok=false when none exists.
func (l *Log) LoadSnapshot() (payload []byte, seq uint64, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.hasSnap {
		return nil, 0, false, nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", snapPrefix, l.snapSeq, snapSuffix))
	_, _, payload, err = readSnapshotFile(path, true)
	if err != nil {
		return nil, 0, false, err
	}
	return payload, l.snapSeq, true, nil
}

// Sync forces buffered appends to stable storage (used by the interval
// syncer and by Close).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	if l.opts.SyncObserver != nil {
		l.opts.SyncObserver(time.Since(start))
	}
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Close flushes, syncs, and closes the log. The log is unusable after.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	err := l.err
	if err == nil {
		if ferr := l.w.Flush(); ferr != nil {
			err = ferr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.f = nil
	if l.err == nil {
		l.err = errors.New("wal: log closed")
	}
	return err
}

// writeSnapshotFile writes magic, seq, timestamp, CRC-framed payload,
// and syncs the file.
func writeSnapshotFile(path string, seq uint64, takenUnixNano int64, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, len(snapMagic)+8+8+4+4)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic):], seq)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic)+8:], uint64(takenUnixNano))
	binary.LittleEndian.PutUint32(hdr[len(snapMagic)+16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(snapMagic)+20:], crc32.Checksum(payload, castagnoli))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSnapshotFile validates a snapshot file; withPayload selects
// whether the payload is returned or only verified.
func readSnapshotFile(path string, withPayload bool) (seq uint64, takenUnixNano int64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	hdrLen := len(snapMagic) + 24
	if len(data) < hdrLen || string(data[:len(snapMagic)]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad snapshot header", filepath.Base(path))
	}
	seq = binary.LittleEndian.Uint64(data[len(snapMagic):])
	takenUnixNano = int64(binary.LittleEndian.Uint64(data[len(snapMagic)+8:]))
	plen := int(binary.LittleEndian.Uint32(data[len(snapMagic)+16:]))
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+20:])
	if len(data) != hdrLen+plen {
		return 0, 0, nil, fmt.Errorf("wal: %s: snapshot length %d, want %d", filepath.Base(path), len(data), hdrLen+plen)
	}
	payload = data[hdrLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, 0, nil, fmt.Errorf("wal: %s: snapshot crc mismatch", filepath.Base(path))
	}
	if !withPayload {
		payload = nil
	}
	return seq, takenUnixNano, payload, nil
}

// syncDir fsyncs a directory, making renames and creations durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

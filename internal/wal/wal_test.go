package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sampleRecords covers every kind and both demand shapes.
func sampleRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; len(recs) < n; i++ {
		t := float64(i) * 0.25
		switch i % 4 {
		case 0:
			recs = append(recs, Record{Kind: KindArrive, ID: int64(i), Time: t, Server: int32(i % 7), Size: 0.25 + float64(i%3)*0.125})
		case 1:
			recs = append(recs, Record{Kind: KindArrive, ID: int64(i), Time: t, Server: 2, Size: 0.5, Sizes: []float64{0.5, 0.125, 0.0625}})
		case 2:
			recs = append(recs, Record{Kind: KindDepart, ID: int64(i - 2), Time: t, Server: int32(i % 5)})
		default:
			recs = append(recs, Record{Kind: KindTick, ID: int64(i), Time: t, Server: -1})
		}
	}
	return recs
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var got []Record
	next := from
	if err := l.Replay(from, func(seq uint64, r Record) error {
		if seq != next {
			t.Fatalf("replay seq %d, want %d", seq, next)
		}
		next++
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// TestAppendReplayRoundTrip pins the basic property: what goes in comes
// back, in order, with exact float bits, across a close/reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(100)
	appendAll(t, l, recs)
	if got := replayAll(t, l, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("live replay differs") //nolint
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 100 {
		t.Fatalf("reopened NextSeq = %d, want 100", l2.NextSeq())
	}
	if got := replayAll(t, l2, 0); !reflect.DeepEqual(got, recs) {
		t.Fatal("reopened replay differs")
	}
	if got := replayAll(t, l2, 60); !reflect.DeepEqual(got, recs[60:]) {
		t.Fatal("tail replay differs")
	}
}

// TestRotationAndChain forces tiny segments and checks the chain
// reopens contiguously.
func TestRotationAndChain(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(200)
	appendAll(t, l, recs)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("got %d segments, wanted rotation", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); !reflect.DeepEqual(got, recs) {
		t.Fatal("replay across segments differs")
	}
	appendAll(t, l2, recs[:10]) // the reopened tail must accept appends
	if l2.NextSeq() != 210 {
		t.Fatalf("NextSeq = %d, want 210", l2.NextSeq())
	}
}

// TestSnapshotCoversAndTruncates saves a snapshot mid-log and checks
// covered sealed segments are deleted while replay from the snapshot
// seq still works.
func TestSnapshotCoversAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := sampleRecords(200)
	appendAll(t, l, recs)
	before := l.Stats()
	seq := l.NextSeq()
	if err := l.SaveSnapshot(seq, 12345, []byte(`{"state":"s"}`)); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d -> %d: snapshot did not truncate", before.Segments, after.Segments)
	}
	if !after.HasSnapshot || after.SnapshotSeq != seq || after.SnapshotTime != 12345 {
		t.Fatalf("snapshot stats = %+v", after)
	}
	payload, gotSeq, ok, err := l.LoadSnapshot()
	if err != nil || !ok || gotSeq != seq || string(payload) != `{"state":"s"}` {
		t.Fatalf("LoadSnapshot = %q seq %d ok %v err %v", payload, gotSeq, ok, err)
	}
	appendAll(t, l, recs[:20])
	if got := replayAll(t, l, seq); !reflect.DeepEqual(got, recs[:20]) {
		t.Fatal("tail after snapshot differs")
	}
	// Snapshot regression is refused.
	if err := l.SaveSnapshot(seq-1, 1, nil); err == nil {
		t.Fatal("regressing snapshot accepted")
	}
	// Reopen adopts the snapshot and the remaining chain.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); !st.HasSnapshot || st.SnapshotSeq != seq {
		t.Fatalf("reopened snapshot stats = %+v", st)
	}
	if got := replayAll(t, l2, seq); !reflect.DeepEqual(got, recs[:20]) {
		t.Fatal("reopened tail differs")
	}
}

// TestTornWriteTruncated chops bytes off the final record and expects
// recovery to stop cleanly at the last whole frame — and to accept new
// appends from there.
func TestTornWriteTruncated(t *testing.T) {
	recs := sampleRecords(50)
	for _, cut := range []int64{1, 3, 7} {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, recs)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
		if len(segs) != 1 {
			t.Fatalf("got %d segments", len(segs))
		}
		fi, err := os.Stat(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0], fi.Size()-cut); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if l2.NextSeq() != uint64(len(recs)-1) {
			t.Fatalf("cut %d: NextSeq = %d, want %d", cut, l2.NextSeq(), len(recs)-1)
		}
		if got := replayAll(t, l2, 0); !reflect.DeepEqual(got, recs[:len(recs)-1]) {
			t.Fatalf("cut %d: torn replay differs", cut)
		}
		appendAll(t, l2, recs[len(recs)-1:])
		if got := replayAll(t, l2, 0); !reflect.DeepEqual(got, recs) {
			t.Fatalf("cut %d: append-after-truncate replay differs", cut)
		}
		l2.Close()
	}
}

// TestCorruptBitFlipTruncatesTail flips a byte inside the final record:
// the CRC must catch it and recovery discards that record.
func TestCorruptBitFlipTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(10)
	appendAll(t, l, recs)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.NextSeq() != 9 {
		t.Fatalf("NextSeq = %d, want 9", l2.NextSeq())
	}
}

// TestCorruptSealedSegmentIsFatal: damage in a non-final segment is not
// a torn tail and must refuse to open rather than silently drop data.
func TestCorruptSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, sampleRecords(200))
	if l.Stats().Segments < 2 {
		t.Fatal("wanted at least two segments")
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); err == nil {
		t.Fatal("corrupt sealed segment accepted")
	}
}

// TestIntervalAndObserver exercises the background syncer and the
// latency observer hook.
func TestIntervalAndObserver(t *testing.T) {
	var syncs int
	done := make(chan struct{})
	l, err := Open(t.TempDir(), Options{
		Fsync:         FsyncInterval,
		FsyncInterval: time.Millisecond,
		SyncObserver: func(time.Duration) {
			syncs++
			if syncs == 2 {
				close(done)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, sampleRecords(4))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("interval syncer never fired")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreMetaGuard pins the satellite bugfix: reopening a data dir
// under different shard count / dim / policy flags is refused with a
// descriptive error.
func TestStoreMetaGuard(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Shards: 4, Dim: 2, Capacity: 1, KeepAlive: 0.5, Algorithm: "firstfit"}
	st, err := OpenStore(dir, meta, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Meta().Version != metaVersion {
		t.Fatalf("meta version = %d", st.Meta().Version)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Matching flags reopen fine.
	st, err = OpenStore(dir, meta, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for _, tc := range []struct {
		mutate func(*Meta)
		want   string
	}{
		{func(m *Meta) { m.Shards = 8 }, "shard count"},
		{func(m *Meta) { m.Dim = 1 }, "dimension"},
		{func(m *Meta) { m.Capacity = 2 }, "capacity"},
		{func(m *Meta) { m.KeepAlive = 0 }, "keep-alive"},
		{func(m *Meta) { m.Algorithm = "bestfit" }, "algorithm"},
	} {
		bad := meta
		tc.mutate(&bad)
		if _, err := OpenStore(dir, bad, Options{}, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("mismatched %s: err = %v", tc.want, err)
		}
	}
}

// TestStoreObserverRoutesShards checks per-shard fsync observation.
func TestStoreObserverRoutesShards(t *testing.T) {
	saw := make(map[int]int)
	st, err := OpenStore(t.TempDir(), Meta{Shards: 2, Dim: 1, Capacity: 1, Algorithm: "firstfit"},
		Options{Fsync: FsyncAlways}, func(shard int, d time.Duration) { saw[shard]++ })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := Record{Kind: KindTick, ID: 1, Time: 1, Server: -1}
	if err := st.Shard(0).Append(&r); err != nil {
		t.Fatal(err)
	}
	if err := st.Shard(1).Append(&r); err != nil {
		t.Fatal(err)
	}
	if saw[0] != 1 || saw[1] != 1 {
		t.Fatalf("observer saw %v", saw)
	}
}

// TestAppendZeroAlloc is the acceptance pin: with fsync=off, appending
// a scalar or vector record from the shard owner hot path performs no
// allocations (mirrors wire's TestCodecZeroAlloc).
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	l, err := Open(t.TempDir(), Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	scalar := Record{Kind: KindArrive, ID: 42, Time: 1.5, Server: 3, Size: 0.375}
	vector := Record{Kind: KindArrive, ID: 43, Time: 1.75, Server: 4, Size: 0.5, Sizes: []float64{0.5, 0.25}}
	depart := Record{Kind: KindDepart, ID: 42, Time: 2, Server: 3}
	tick := Record{Kind: KindTick, ID: 0, Time: 2.5, Server: -1}
	// Warm up the scratch buffer and the bufio writer.
	for _, r := range []*Record{&scalar, &vector, &depart, &tick} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		l.Append(&scalar)
		l.Append(&vector)
		l.Append(&depart)
		l.Append(&tick)
	}); n != 0 {
		t.Fatalf("Append allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkAppend reports the per-record append cost per fsync policy.
func BenchmarkAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(string(pol), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			r := Record{Kind: KindArrive, ID: 1, Time: 1, Server: 0, Size: 0.5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.ID = int64(i)
				if err := l.Append(&r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParseFsyncPolicy covers the flag parser.
func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "off": FsyncOff, "": FsyncOff,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestFailStop pins the sticky-failure contract: once the underlying
// file is gone, the first failing sync poisons the log and every later
// append reports the same error.
func TestFailStop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Kind: KindTick, ID: 1, Time: 1, Server: -1}
	if err := l.Append(&r); err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the writer.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	var first error
	for i := 0; i < 3 && first == nil; i++ {
		first = l.Append(&r) // bufio may absorb one write before flushing
	}
	if first == nil {
		t.Fatal("append kept succeeding on a closed file")
	}
	if err := l.Append(&r); !errors.Is(err, first) && err.Error() != first.Error() {
		t.Fatalf("sticky error changed: %v then %v", first, err)
	}
	if l.Err() == nil {
		t.Fatal("Err() is nil after failure")
	}
}

// TestRecordEncodingStable pins the on-disk byte layout so format
// drift is caught (the durable format is a compatibility surface).
func TestRecordEncodingStable(t *testing.T) {
	buf, err := appendRecord(nil, &Record{Kind: KindDepart, ID: 0x0102030405060708, Time: 1.0, Server: 9})
	if err != nil {
		t.Fatal(err)
	}
	const wantHex = "16000000" // depart body = fixedLen = 22 = 0x16
	got := fmt.Sprintf("%x", buf[:4])
	if got != wantHex {
		t.Fatalf("length prefix %s, want %s", got, wantHex)
	}
	if buf[8] != byte(KindDepart) || buf[9] != 0 {
		t.Fatalf("kind/flags = %x %x", buf[8], buf[9])
	}
	// id little-endian
	if fmt.Sprintf("%x", buf[10:18]) != "0807060504030201" {
		t.Fatalf("id bytes = %x", buf[10:18])
	}
	// time 1.0 = 0x3ff0000000000000 LE
	if fmt.Sprintf("%x", buf[18:26]) != "000000000000f03f" {
		t.Fatalf("time bytes = %x", buf[18:26])
	}
	if fmt.Sprintf("%x", buf[26:30]) != "09000000" {
		t.Fatalf("server bytes = %x", buf[26:30])
	}
}

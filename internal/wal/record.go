// Package wal is the durable write-ahead journal behind the allocation
// service: one log per shard, segment files of CRC32C-framed records,
// periodic snapshot files of the shard's full stream state, and
// recovery that rebuilds a shard bit-identically by loading the newest
// snapshot and replaying the segment tail (DESIGN.md §12).
//
// The contract with the stream layer is one record per accepted clock
// advance: arrivals and departures journal their outcome, and events
// that advanced the clock but were then rejected (duplicate job,
// unknown job, bad demand) journal a bare tick — so record sequence
// numbers coincide exactly with packing.Stream event counts, and a
// snapshot taken at event E covers precisely the records with seq < E.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind discriminates the three record types.
type Kind uint8

const (
	// KindArrive journals an accepted arrival: the job, its demand, its
	// timestamp, and the server the policy assigned.
	KindArrive Kind = 1
	// KindDepart journals an accepted departure: the job, its
	// timestamp, and the server it left.
	KindDepart Kind = 2
	// KindTick journals a clock advance whose event was then rejected
	// (duplicate, unknown job, bad demand): the stream still moved its
	// clock and processed keep-alive expiries, so replay must too.
	KindTick Kind = 3
)

// MaxDim bounds the per-record demand dimensionality; it mirrors the
// wire protocol's limit (wire.MaxDim), which every record's demand has
// already passed through.
const MaxDim = 1024

const (
	// frameLen is the record frame: u32 LE body length + u32 LE CRC32C
	// (Castagnoli) of the body.
	frameLen = 8
	// fixedLen is the body shared by every kind: kind u8, flags u8
	// (reserved, zero), job id u64, time f64 bits, server u32.
	fixedLen = 22
	// arriveExtra is the arrival-only suffix: scalar size f64 plus a
	// u16 vector dimensionality (0 for scalar jobs).
	arriveExtra = 10
	maxBody     = fixedLen + arriveExtra + 8*MaxDim
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum etcd's and Kafka's logs frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame that is structurally invalid: implausible
// length, unknown kind, non-zero reserved flags, wrong body size for
// its kind, or a CRC mismatch.
var ErrCorrupt = errors.New("wal: corrupt record")

// errShortFrame reports a frame that runs past the end of the buffer —
// at the tail of the last segment this is a torn write, truncated away
// by recovery; anywhere else it is corruption.
var errShortFrame = errors.New("wal: short frame")

// Record is one journal entry. Server is the assigned/vacated server
// index for arrivals and departures, -1 for ticks. Size and Sizes carry
// an arrival's demand (Sizes nil for scalar jobs) and are zero
// otherwise.
type Record struct {
	Kind   Kind
	ID     int64
	Time   float64
	Server int32
	Size   float64
	Sizes  []float64
}

// appendRecord appends the framed encoding of r to dst and returns the
// extended slice. It writes into dst's spare capacity when possible, so
// a caller reusing one scratch buffer appends without allocating.
func appendRecord(dst []byte, r *Record) ([]byte, error) {
	body := fixedLen
	switch r.Kind {
	case KindArrive:
		if len(r.Sizes) > MaxDim {
			return dst, fmt.Errorf("wal: record dim %d exceeds %d", len(r.Sizes), MaxDim)
		}
		body += arriveExtra + 8*len(r.Sizes)
	case KindDepart, KindTick:
	default:
		return dst, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	start := len(dst)
	need := start + frameLen + body
	if cap(dst) < need {
		grown := make([]byte, start, need+need/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:], uint32(body))
	p := b[frameLen:]
	p[0] = byte(r.Kind)
	p[1] = 0 // flags, reserved
	binary.LittleEndian.PutUint64(p[2:], uint64(r.ID))
	binary.LittleEndian.PutUint64(p[10:], math.Float64bits(r.Time))
	binary.LittleEndian.PutUint32(p[18:], uint32(r.Server))
	if r.Kind == KindArrive {
		binary.LittleEndian.PutUint64(p[22:], math.Float64bits(r.Size))
		binary.LittleEndian.PutUint16(p[30:], uint16(len(r.Sizes)))
		for i, v := range r.Sizes {
			binary.LittleEndian.PutUint64(p[32+8*i:], math.Float64bits(v))
		}
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(p, castagnoli))
	return dst, nil
}

// decodeRecord parses one framed record from the front of buf,
// returning the record and the number of bytes consumed. It returns
// errShortFrame when buf ends mid-frame and ErrCorrupt for anything
// structurally invalid; a successful decode re-encodes to the exact
// consumed bytes (the fuzzer pins this round trip).
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < frameLen {
		return Record{}, 0, errShortFrame
	}
	body := int(binary.LittleEndian.Uint32(buf))
	if body < fixedLen || body > maxBody {
		return Record{}, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, body)
	}
	if len(buf) < frameLen+body {
		return Record{}, 0, errShortFrame
	}
	p := buf[frameLen : frameLen+body]
	if got, want := crc32.Checksum(p, castagnoli), binary.LittleEndian.Uint32(buf[4:]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc %08x != %08x", ErrCorrupt, got, want)
	}
	if p[1] != 0 {
		return Record{}, 0, fmt.Errorf("%w: reserved flags %02x", ErrCorrupt, p[1])
	}
	r := Record{
		Kind:   Kind(p[0]),
		ID:     int64(binary.LittleEndian.Uint64(p[2:])),
		Time:   math.Float64frombits(binary.LittleEndian.Uint64(p[10:])),
		Server: int32(binary.LittleEndian.Uint32(p[18:])),
	}
	switch r.Kind {
	case KindArrive:
		if body < fixedLen+arriveExtra {
			return Record{}, 0, fmt.Errorf("%w: arrive body %d", ErrCorrupt, body)
		}
		r.Size = math.Float64frombits(binary.LittleEndian.Uint64(p[22:]))
		ndim := int(binary.LittleEndian.Uint16(p[30:]))
		if body != fixedLen+arriveExtra+8*ndim {
			return Record{}, 0, fmt.Errorf("%w: arrive body %d for dim %d", ErrCorrupt, body, ndim)
		}
		if ndim > 0 {
			r.Sizes = make([]float64, ndim)
			for i := range r.Sizes {
				r.Sizes[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[32+8*i:]))
			}
		}
	case KindDepart, KindTick:
		if body != fixedLen {
			return Record{}, 0, fmt.Errorf("%w: %v body %d", ErrCorrupt, r.Kind, body)
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: kind %d", ErrCorrupt, p[0])
	}
	return r, frameLen + body, nil
}

// String renders the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindArrive:
		return "arrive"
	case KindDepart:
		return "depart"
	case KindTick:
		return "tick"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

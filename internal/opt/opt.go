// Package opt computes the offline optimum of the MinUsageTime DBP
// problem: OPT_total(R) = ∫ OPT(R, t) dt over the packing period, where
// OPT(R, t) is the minimum number of bins into which the items active at
// time t can be repacked (paper Sec. III-C). Because the active item set
// is piecewise-constant between arrival/departure events, the integral is
// a finite sum of (classical bin packing optimum) × (segment length) —
// computed exactly with the binpack solver, or bracketed with certified
// lower/upper bounds when the exact search would be too expensive.
//
// The package also exposes the paper's two easy lower bounds:
// Proposition 1 (total time–space demand) and Proposition 2 (span).
package opt

import (
	"math"

	"dbp/internal/binpack"
	"dbp/internal/item"
	"dbp/internal/parallel"
)

// Bounds is a certified bracket on OPT_total: Lower <= OPT_total <= Upper.
// Exact reports whether Lower == Upper was established by exact packing at
// every segment.
type Bounds struct {
	Lower float64
	Upper float64
	Exact bool
}

// Mid returns the midpoint of the bracket, a convenient point estimate.
func (b Bounds) Mid() float64 { return (b.Lower + b.Upper) / 2 }

// Width returns Upper - Lower.
func (b Bounds) Width() float64 { return b.Upper - b.Lower }

// DemandLowerBound is Proposition 1: OPT_total(R) >= sum of s(r)*|I(r)|
// (no bin capacity is ever wasted in the best case; unit capacity).
func DemandLowerBound(l item.List) float64 { return l.TotalDemand() }

// SpanLowerBound is Proposition 2: OPT_total(R) >= span(R) (at least one
// bin is in use whenever some item is active).
func SpanLowerBound(l item.List) float64 { return l.Span() }

// CombinedLowerBound is max(Prop 1, Prop 2), the denominator the paper's
// competitive analysis measures against when the true OPT is unknown.
func CombinedLowerBound(l item.List) float64 {
	return math.Max(DemandLowerBound(l), SpanLowerBound(l))
}

// segments walks the piecewise-constant active-set structure of the list:
// for each maximal interval [t0, t1) between consecutive event times, it
// yields the active items' sizes. Segments with no active items are
// skipped (OPT contributes zero there).
func segments(l item.List, visit func(length float64, sizes []float64)) {
	times := l.EventTimes()
	if len(times) < 2 {
		return
	}
	// Sweep with a size-change ledger rather than an O(n) scan per
	// segment: arrival adds, departure removes.
	type delta struct {
		t    float64
		size float64
		add  bool
	}
	deltas := make([]delta, 0, 2*len(l))
	for _, it := range l {
		deltas = append(deltas,
			delta{t: it.Arrival, size: it.Size, add: true},
			delta{t: it.Departure, size: it.Size, add: false})
	}
	// Bucket deltas by event index.
	index := make(map[float64]int, len(times))
	for i, t := range times {
		index[t] = i
	}
	adds := make([][]float64, len(times))
	rems := make([][]float64, len(times))
	for _, d := range deltas {
		i := index[d.t]
		if d.add {
			adds[i] = append(adds[i], d.size)
		} else {
			rems[i] = append(rems[i], d.size)
		}
	}
	// Multiset of active sizes, maintained as a slice (small N per segment).
	var active []float64
	for i := 0; i < len(times)-1; i++ {
		// Apply departures then arrivals at times[i] (half-open intervals).
		for _, s := range rems[i] {
			for k, v := range active {
				if v == s {
					active[k] = active[len(active)-1]
					active = active[:len(active)-1]
					break
				}
			}
		}
		active = append(active, adds[i]...)
		if len(active) == 0 {
			continue
		}
		length := times[i+1] - times[i]
		if length <= 0 {
			continue
		}
		visit(length, active)
	}
}

// TotalExact computes OPT_total(R) exactly by solving classical bin
// packing on every segment of the timeline. nodeLimit bounds each
// segment's branch-and-bound search (0 means binpack.DefaultNodeLimit).
// If any segment's search is cut off, ok is false and the returned value
// is an upper estimate.
func TotalExact(l item.List, nodeLimit int) (total float64, ok bool) {
	if nodeLimit == 0 {
		nodeLimit = binpack.DefaultNodeLimit
	}
	ok = true
	segments(l, func(length float64, sizes []float64) {
		n, complete := binpack.ExactWithLimit(sizes, 1, nodeLimit)
		if !complete {
			ok = false
		}
		total += float64(n) * length
	})
	return total, ok
}

// Total computes a certified bracket on OPT_total. Segments small enough
// are solved exactly (contributing equally to both sides); larger ones
// contribute the L2 lower bound and the best of FFD/BFD as upper bound.
// exactLimit is the maximum number of active items for which the exact
// solver is invoked (0 means 64); nodeLimit as in TotalExact.
func Total(l item.List, exactLimit, nodeLimit int) Bounds {
	if exactLimit == 0 {
		exactLimit = 64
	}
	if nodeLimit == 0 {
		nodeLimit = binpack.DefaultNodeLimit
	}
	b := Bounds{Exact: true}
	segments(l, func(length float64, sizes []float64) {
		if len(sizes) <= exactLimit {
			if n, complete := binpack.ExactWithLimit(sizes, 1, nodeLimit); complete {
				b.Lower += float64(n) * length
				b.Upper += float64(n) * length
				return
			}
		}
		b.Exact = false
		lo := binpack.L2(sizes, 1)
		hi := binpack.FirstFitDecreasing(sizes, 1)
		if bfd := binpack.BestFitDecreasing(sizes, 1); bfd < hi {
			hi = bfd
		}
		b.Lower += float64(lo) * length
		b.Upper += float64(hi) * length
	})
	return b
}

// OptAt returns OPT(R, t): the minimum number of bins for the items
// active at time t (exact; small active sets only).
func OptAt(l item.List, t float64) int {
	return binpack.Exact(l.ActiveSizesAt(t), 1)
}

// MaxConcurrentOpt returns max_t OPT(R, t), the classical DBP offline
// optimum with repacking — the denominator of the standard DBP
// competitive ratio the paper contrasts with (Sec. II).
func MaxConcurrentOpt(l item.List) int {
	best := 0
	segments(l, func(_ float64, sizes []float64) {
		if n := binpack.Exact(sizes, 1); n > best {
			best = n
		}
	})
	return best
}

// TotalVec computes a certified bracket on OPT_total for vector (multi-
// dimensional) instances: per-dimension continuous load as lower bound and
// vector First Fit (by decreasing max component) as upper bound. Exact
// vector packing is out of scope (the paper leaves multi-dimensional
// MinUsageTime DBP as future work; experiment E10 only needs brackets).
func TotalVec(l item.List) Bounds {
	times := l.EventTimes()
	b := Bounds{}
	for i := 0; i+1 < len(times); i++ {
		t := times[i]
		var sizes [][]float64
		for _, it := range l {
			if it.Interval().Contains(t) {
				sizes = append(sizes, it.SizeVec())
			}
		}
		if len(sizes) == 0 {
			continue
		}
		length := times[i+1] - times[i]
		lo := binpack.L1Vec(sizes, 1)
		if lo == 0 {
			lo = 1
		}
		b.Lower += float64(lo) * length
		b.Upper += float64(binpack.FirstFitVec(sizes, 1)) * length
	}
	b.Exact = b.Upper-b.Lower < 1e-12
	return b
}

// segmentData is one materialized timeline segment (for parallel
// solving): the active sizes are copied out of the sweep's mutable state.
type segmentData struct {
	length float64
	sizes  []float64
}

// materialize collects the non-empty timeline segments of the list.
func materialize(l item.List) []segmentData {
	var out []segmentData
	segments(l, func(length float64, sizes []float64) {
		out = append(out, segmentData{length: length, sizes: append([]float64(nil), sizes...)})
	})
	return out
}

// TotalParallel is Total with the per-segment bin packing solved on up
// to workers goroutines (workers <= 0 uses GOMAXPROCS). Segments are
// independent classical bin-packing instances, so this is an
// embarrassingly parallel integral; contributions are folded in timeline
// order, making the result bit-identical to the sequential Total.
func TotalParallel(l item.List, exactLimit, nodeLimit, workers int) Bounds {
	if exactLimit == 0 {
		exactLimit = 64
	}
	if nodeLimit == 0 {
		nodeLimit = binpack.DefaultNodeLimit
	}
	segs := materialize(l)
	type contrib struct {
		lower, upper float64
		exact        bool
	}
	parts := parallel.Map(len(segs), workers, func(i int) contrib {
		s := segs[i]
		if len(s.sizes) <= exactLimit {
			if n, complete := binpack.ExactWithLimit(s.sizes, 1, nodeLimit); complete {
				v := float64(n) * s.length
				return contrib{lower: v, upper: v, exact: true}
			}
		}
		lo := binpack.L2(s.sizes, 1)
		hi := binpack.FirstFitDecreasing(s.sizes, 1)
		if bfd := binpack.BestFitDecreasing(s.sizes, 1); bfd < hi {
			hi = bfd
		}
		return contrib{lower: float64(lo) * s.length, upper: float64(hi) * s.length}
	})
	b := Bounds{Exact: true}
	for _, p := range parts {
		b.Lower += p.lower
		b.Upper += p.upper
		if !p.exact {
			b.Exact = false
		}
	}
	return b
}

package opt

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
)

func mk(id item.ID, size, a, d float64) item.Item {
	return item.Item{ID: id, Size: size, Arrival: a, Departure: d}
}

func TestTotalExactSingleItem(t *testing.T) {
	l := item.List{mk(1, 1.0, 0, 5)}
	got, ok := TotalExact(l, 0)
	if !ok || got != 5 {
		t.Fatalf("OPT_total = %g (ok=%v), want 5", got, ok)
	}
}

func TestTotalExactOverlapPair(t *testing.T) {
	// Two half-size items overlapping: one bin suffices at all times.
	l := item.List{mk(1, 0.5, 0, 2), mk(2, 0.5, 1, 3)}
	got, ok := TotalExact(l, 0)
	if !ok || got != 3 {
		t.Fatalf("OPT_total = %g, want 3 (= span)", got)
	}
	// Two big items overlapping: two bins during [0,2)... item intervals
	// [0,2) and [1,3): segments [0,1):1 bin, [1,2):2 bins, [2,3):1 bin.
	l = item.List{mk(1, 0.6, 0, 2), mk(2, 0.6, 1, 3)}
	got, ok = TotalExact(l, 0)
	if !ok || got != 4 {
		t.Fatalf("OPT_total = %g, want 4", got)
	}
}

func TestTotalExactGapInTimeline(t *testing.T) {
	// Idle gap contributes nothing.
	l := item.List{mk(1, 0.5, 0, 1), mk(2, 0.5, 10, 12)}
	got, ok := TotalExact(l, 0)
	if !ok || got != 3 {
		t.Fatalf("OPT_total = %g, want 3", got)
	}
}

func TestTotalExactEmpty(t *testing.T) {
	got, ok := TotalExact(item.List{}, 0)
	if !ok || got != 0 {
		t.Fatalf("OPT_total(empty) = %g", got)
	}
}

func TestOptAt(t *testing.T) {
	l := item.List{mk(1, 0.6, 0, 2), mk(2, 0.6, 1, 3), mk(3, 0.4, 1, 3)}
	if got := OptAt(l, 0.5); got != 1 {
		t.Errorf("OPT at 0.5 = %d", got)
	}
	if got := OptAt(l, 1.5); got != 2 {
		t.Errorf("OPT at 1.5 = %d (0.6+0.6+0.4 needs 2 bins)", got)
	}
	if got := OptAt(l, 99); got != 0 {
		t.Errorf("OPT at idle time = %d", got)
	}
}

func TestMaxConcurrentOpt(t *testing.T) {
	l := item.List{mk(1, 0.6, 0, 2), mk(2, 0.6, 1, 3), mk(3, 0.6, 1, 3)}
	if got := MaxConcurrentOpt(l); got != 3 {
		t.Errorf("max concurrent OPT = %d, want 3", got)
	}
}

func TestPropositions(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 2), mk(2, 0.25, 1, 5)}
	if got := DemandLowerBound(l); got != 0.5*2+0.25*4 {
		t.Errorf("Prop 1 = %g", got)
	}
	if got := SpanLowerBound(l); got != 5 {
		t.Errorf("Prop 2 = %g", got)
	}
	if got := CombinedLowerBound(l); got != 5 {
		t.Errorf("combined = %g", got)
	}
}

func TestBoundsBracketAndExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		l := randomInstance(rng, 60, 8)
		b := Total(l, 0, 0)
		if b.Lower > b.Upper+1e-9 {
			t.Fatalf("bracket inverted: %+v", b)
		}
		exact, ok := TotalExact(l, 0)
		if !ok {
			t.Fatal("exact solve did not finish on a small instance")
		}
		if exact < b.Lower-1e-9 || exact > b.Upper+1e-9 {
			t.Fatalf("exact %g outside bracket [%g, %g]", exact, b.Lower, b.Upper)
		}
		if b.Exact && math.Abs(b.Width()) > 1e-9 {
			t.Fatalf("Exact bracket with width %g", b.Width())
		}
		// Propositions never exceed the true optimum.
		if lb := CombinedLowerBound(l); lb > exact+1e-9 {
			t.Fatalf("Prop bound %g exceeds OPT %g", lb, exact)
		}
	}
}

// The fundamental soundness check behind every experiment: no online
// algorithm beats the offline optimum.
func TestNoAlgorithmBeatsOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		l := randomInstance(rng, 50, 6)
		exact, ok := TotalExact(l, 0)
		if !ok {
			t.Skip("exact solve cut off")
		}
		for name, algo := range packing.Standard() {
			res, err := packing.Run(algo, l, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.TotalUsage < exact-1e-6 {
				t.Fatalf("%s used %g < OPT %g — impossible", name, res.TotalUsage, exact)
			}
		}
	}
}

func TestBoundsMidWidth(t *testing.T) {
	b := Bounds{Lower: 2, Upper: 4}
	if b.Mid() != 3 || b.Width() != 2 {
		t.Errorf("mid=%g width=%g", b.Mid(), b.Width())
	}
}

func TestTotalWithTinyExactLimitStillBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randomInstance(rng, 80, 5)
	// Force the heuristic path everywhere.
	b := Total(l, 1, 0)
	exact, ok := TotalExact(l, 0)
	if !ok {
		t.Skip("exact cut off")
	}
	if exact < b.Lower-1e-9 || exact > b.Upper+1e-9 {
		t.Fatalf("exact %g outside heuristic bracket [%g, %g]", exact, b.Lower, b.Upper)
	}
}

func TestTotalVec(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.8, Sizes: []float64{0.8, 0.1}, Arrival: 0, Departure: 2},
		{ID: 2, Size: 0.8, Sizes: []float64{0.1, 0.8}, Arrival: 0, Departure: 2},
	}
	b := TotalVec(l)
	// One bin fits both: lower = 1 bin * 2 (ceil of 0.9 load), upper = 2.
	if b.Lower != 2 || b.Upper != 2 {
		t.Fatalf("vec bracket = %+v, want [2, 2]", b)
	}
}

func randomInstance(rng *rand.Rand, n int, horizon float64) item.List {
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * horizon
		l[i] = mk(item.ID(i+1), 0.05+rng.Float64()*0.95, a, a+0.5+rng.Float64()*2)
	}
	return l
}

// TotalParallel must be bit-identical to Total for every worker count.
func TestTotalParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		l := randomInstance(rng, 120, 10)
		seq := Total(l, 0, 0)
		for _, w := range []int{1, 2, 8, 0} {
			par := TotalParallel(l, 0, 0, w)
			if par != seq {
				t.Fatalf("workers=%d: %+v != sequential %+v", w, par, seq)
			}
		}
	}
}

func TestTotalParallelEmpty(t *testing.T) {
	b := TotalParallel(item.List{}, 0, 0, 4)
	if b.Lower != 0 || b.Upper != 0 || !b.Exact {
		t.Fatalf("empty bracket = %+v", b)
	}
}

package bins

import "math"

// vecGapTree is the d-dimensional generalization of gapTree: a segment
// tree over bins in opening order whose nodes store the per-dimension
// maximum gap of their range, laid out with stride dim (node p's gap in
// dimension d lives at node[p*dim+d]). A subtree can be pruned from a
// vector-fit search as soon as ONE dimension's range maximum falls short
// of the demand: no bin inside can fit. The surviving leaves are then
// verified with the exact Bin.FitsDemand comparison, so the descent
// returns precisely the bins a linear scan of the open list would — the
// tree only prunes, it never decides.
//
// Pruning compares against demand minus a 2*Eps slack rather than the
// exact admission threshold: the leaf gaps are one float subtraction
// (Capacity - level) away from the level-based admission test, and the
// slack (1e-9, nine orders above the rounding error of O(1) operands)
// guarantees the rearrangement can never prune a bin the exact test
// would admit. A borderline subtree is visited and rejected at its
// leaves; answers are unaffected.
//
// Closed bins are tombstoned with -Inf in every dimension, which fails
// every pruning check, so they can never be visited.
type vecGapTree struct {
	dim  int
	n    int       // number of bins ever added (leaves in use)
	size int       // power-of-two leaf count
	node []float64 // stride-dim segment tree over cached gaps (max per dim)
}

// add appends leaf i (bins open in index order) with -Inf gaps; the
// caller follows up with update.
func (t *vecGapTree) add(i int) {
	if i != t.n {
		panic("bins: vector gap tree observed out-of-order bin open")
	}
	t.n++
	if t.n > t.size {
		t.grow()
	}
}

// grow doubles the leaf capacity, preserving existing leaf values.
func (t *vecGapTree) grow() {
	size := 1
	for size < t.n {
		size *= 2
	}
	old := t.node
	oldSize := t.size
	t.size = size
	t.node = make([]float64, 2*size*t.dim)
	for i := range t.node {
		t.node[i] = math.Inf(-1)
	}
	for i := 0; i < oldSize && i < t.n; i++ {
		copy(t.node[(size+i)*t.dim:(size+i+1)*t.dim], old[(oldSize+i)*t.dim:(oldSize+i+1)*t.dim])
	}
	for p := size - 1; p >= 1; p-- {
		t.pull(p)
	}
}

// pull recomputes node p's per-dimension maxima from its children.
func (t *vecGapTree) pull(p int) {
	l, r := 2*p*t.dim, (2*p+1)*t.dim
	for d := 0; d < t.dim; d++ {
		t.node[p*t.dim+d] = math.Max(t.node[l+d], t.node[r+d])
	}
}

// update refreshes leaf i from the bin's current per-dimension gaps.
func (t *vecGapTree) update(i int, b *Bin) {
	p := t.size + i
	for d := 0; d < t.dim; d++ {
		t.node[p*t.dim+d] = b.GapAt(d)
	}
	for p >>= 1; p >= 1; p >>= 1 {
		t.pull(p)
	}
}

// tombstone marks leaf i closed (-Inf in every dimension).
func (t *vecGapTree) tombstone(i int) {
	p := t.size + i
	for d := 0; d < t.dim; d++ {
		t.node[p*t.dim+d] = math.Inf(-1)
	}
	for p >>= 1; p >= 1; p >>= 1 {
		t.pull(p)
	}
}

// gap returns leaf i's cached gap in dimension d.
func (t *vecGapTree) gap(i, d int) float64 { return t.node[(t.size+i)*t.dim+d] }

// minGapAt returns the minimum over dimensions of leaf i's cached gaps —
// the key under which the bin is filed in the dominant-resource treap.
// Leaf gaps are written as Bin.GapAt values, so this reproduces the
// bin's MinGap at the time of the last update bit-for-bit.
func (t *vecGapTree) minGapAt(i int) float64 {
	base := (t.size + i) * t.dim
	min := t.node[base]
	for d := 1; d < t.dim; d++ {
		if g := t.node[base+d]; g < min {
			min = g
		}
	}
	return min
}

// mayFit reports whether node p's range could contain a bin fitting the
// pruned demand thresholds (need[d] = sizes[d] - 2*Eps).
func (t *vecGapTree) mayFit(p int, need []float64) bool {
	base := p * t.dim
	for d, nd := range need {
		if t.node[base+d] < nd {
			return false
		}
	}
	return true
}

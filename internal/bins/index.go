package bins

import (
	"fmt"
	"math"
)

// Index is the ledger-maintained policy index over the open bins: a
// max-gap segment tree in opening order (positional queries — First Fit,
// Last Fit) and a (gap, index)-ordered treap (level queries — Best Fit,
// Worst Fit, Almost Worst Fit). The owning Ledger keeps it coherent on
// every OpenNew/PlaceIn/Remove/CloseExpired, so every query below is
// O(log B) against the live fleet with no per-policy bookkeeping.
//
// The scalar structures cover first-dimension gaps, which is exact for
// 1-D demands; callers fold their tolerance into `need` (conventionally
// size - Eps), and all scalar comparisons are exact — no epsilon — so
// query answers are order-independent and reproducible.
//
// For d > 1 the index additionally maintains two vector structures:
//
//   - vtree, a stride-d segment tree of per-dimension range-maximum gaps,
//     which answers the positional vector queries (FirstFittingVec,
//     LastFittingVec, EachFitting) by pruned descent: a subtree is
//     skipped as soon as one dimension's maximum cannot accommodate the
//     demand, and each surviving leaf is verified with the exact
//     Bin.FitsDemand comparison — so the answers are bit-identical to a
//     linear scan of the open list, with the tree acting purely as an
//     accelerator (O(log B) when few bins fit, degrading gracefully to
//     the linear visit order when many do).
//   - dlvls, a treap keyed by (MinGap, index) — the dominant-resource
//     scalarization of the gap vector — which answers MaxMinGapFitting
//     (dominant-resource Worst Fit) by walking gap groups downward from
//     the emptiest, again verifying each candidate exactly.
type Index struct {
	bins []*Bin // by Index; closed bins stay (tombstoned)
	tree gapTree
	lvls levelTree

	dim   int
	vtree *vecGapTree // per-dimension max-gap tree; nil unless dim > 1
	dlvls levelTree   // (MinGap, index) treap; empty unless dim > 1

	// Reusable query scratch (the index is single-writer, like its ledger).
	need  []float64
	stack []int
}

// newIndex creates an index for a ledger of the given dimensionality.
func newIndex(dim int) *Index {
	ix := &Index{dim: dim}
	if dim > 1 {
		ix.vtree = &vecGapTree{dim: dim}
	}
	return ix
}

// observeOpen tracks a freshly opened bin (called by the ledger after the
// first item is placed).
func (ix *Index) observeOpen(b *Bin) {
	if b.Index != len(ix.bins) {
		panic(fmt.Sprintf("bins: index saw bin %d open out of order", b.Index))
	}
	ix.bins = append(ix.bins, b)
	ix.tree.add(b.Index)
	ix.tree.update(b.Index, b.Gap())
	ix.lvls.insert(b.Gap(), b.Index)
	if ix.vtree != nil {
		ix.vtree.add(b.Index)
		ix.vtree.update(b.Index, b)
		ix.dlvls.insert(ix.vtree.minGapAt(b.Index), b.Index)
	}
}

// restoreClosed occupies the next opening-order slot with an
// already-closed bin during ledger restore: present in the positional
// arrays (indices must line up), tombstoned in the gap trees, absent
// from the level trees — exactly the state remove leaves a closed bin in.
func (ix *Index) restoreClosed(b *Bin) {
	if b.Index != len(ix.bins) {
		panic(fmt.Sprintf("bins: index restore saw bin %d out of order", b.Index))
	}
	ix.bins = append(ix.bins, b)
	ix.tree.add(b.Index)
	ix.tree.update(b.Index, math.Inf(-1))
	if ix.vtree != nil {
		ix.vtree.add(b.Index)
		ix.vtree.tombstone(b.Index)
	}
}

// refresh re-reads an open bin's gaps after a level change. The treap
// keys to delete are read back from the tree leaves (the exact floats
// inserted last time), never recomputed from the bin.
func (ix *Index) refresh(b *Bin) {
	old := ix.tree.gap(b.Index)
	if g := b.Gap(); g != old {
		ix.tree.update(b.Index, g)
		ix.lvls.delete(old, b.Index)
		ix.lvls.insert(g, b.Index)
	}
	if ix.vtree != nil {
		oldMin := ix.vtree.minGapAt(b.Index)
		ix.vtree.update(b.Index, b)
		if newMin := ix.vtree.minGapAt(b.Index); newMin != oldMin {
			ix.dlvls.delete(oldMin, b.Index)
			ix.dlvls.insert(newMin, b.Index)
		}
	}
}

// remove untracks a bin that closed.
func (ix *Index) remove(b *Bin) {
	old := ix.tree.gap(b.Index)
	ix.tree.update(b.Index, math.Inf(-1))
	ix.lvls.delete(old, b.Index)
	if ix.vtree != nil {
		oldMin := ix.vtree.minGapAt(b.Index)
		ix.vtree.tombstone(b.Index)
		ix.dlvls.delete(oldMin, b.Index)
	}
}

// FirstFitting returns the earliest-opened bin with gap >= need, or nil
// (the First Fit query).
func (ix *Index) FirstFitting(need float64) *Bin {
	i := ix.tree.firstAtLeast(need)
	if i < 0 {
		return nil
	}
	return ix.bins[i]
}

// LastFitting returns the latest-opened bin with gap >= need, or nil
// (the Last Fit query).
func (ix *Index) LastFitting(need float64) *Bin {
	i := ix.tree.lastAtLeast(need)
	if i < 0 {
		return nil
	}
	return ix.bins[i]
}

// TightestFitting returns the bin with the smallest gap >= need, ties
// toward the earliest opened, or nil (the Best Fit query).
func (ix *Index) TightestFitting(need float64) *Bin {
	n := ix.lvls.ceil(need, 0)
	if n == nil {
		return nil
	}
	return ix.bins[n.idx]
}

// EmptiestFitting returns the bin with the largest gap, ties toward the
// earliest opened, or nil if even that gap is below need (the Worst Fit
// query).
func (ix *Index) EmptiestFitting(need float64) *Bin {
	m := ix.lvls.max()
	if m == nil || m.gap < need {
		return nil
	}
	// Lowest index within the maximal-gap group.
	n := ix.lvls.ceil(m.gap, 0)
	return ix.bins[n.idx]
}

// SecondEmptiestFitting returns the runner-up of EmptiestFitting under
// the (descending gap, ascending index) order, restricted to gaps >=
// need, or nil when fewer than two bins qualify (the Almost Worst Fit
// query).
func (ix *Index) SecondEmptiestFitting(need float64) *Bin {
	first := ix.EmptiestFitting(need)
	if first == nil {
		return nil
	}
	g := ix.tree.gap(first.Index)
	// Next bin in the same gap group, if any.
	if n := ix.lvls.ceil(g, first.Index+1); n != nil && n.gap == g {
		return ix.bins[n.idx]
	}
	// Otherwise the head of the next-lower gap group, if it still fits.
	p := ix.lvls.floorBelowGap(g)
	if p == nil || p.gap < need {
		return nil
	}
	return ix.bins[ix.lvls.ceil(p.gap, 0).idx]
}

// EachFitting calls visit for every open bin that can accommodate the
// raw demand vector (Bin.FitsDemand, Eps applied internally), in
// ascending opening order, stopping early when visit returns false. It
// is the enumeration primitive score-minimizing vector policies (Best
// Fit variants, dot-product, norm-based) are built from: the tree
// descent prunes whole ranges of bins that cannot fit, and the visit
// order matches a linear scan of the open list exactly.
func (ix *Index) EachFitting(sizes []float64, visit func(*Bin) bool) {
	ix.eachFitting(sizes, false, visit)
}

// FirstFittingVec returns the earliest-opened bin fitting the demand
// vector, or nil — the vector First Fit query.
func (ix *Index) FirstFittingVec(sizes []float64) *Bin {
	var out *Bin
	ix.eachFitting(sizes, false, func(b *Bin) bool { out = b; return false })
	return out
}

// LastFittingVec returns the latest-opened bin fitting the demand
// vector, or nil — the vector Last Fit query.
func (ix *Index) LastFittingVec(sizes []float64) *Bin {
	var out *Bin
	ix.eachFitting(sizes, true, func(b *Bin) bool { out = b; return false })
	return out
}

// eachFitting is the pruned depth-first descent behind the positional
// vector queries; desc flips the child order for highest-index-first
// enumeration. For 1-D fleets the scalar gap tree plays the role of the
// vector tree (same pruning rule, stride 1); the leaf test is always the
// exact FitsDemand the linear reference applies, so the enumeration is
// bit-identical to scanning the open list.
func (ix *Index) eachFitting(sizes []float64, desc bool, visit func(*Bin) bool) {
	need := ix.need[:0]
	for _, s := range sizes {
		need = append(need, s-2*Eps)
	}
	ix.need = need
	var (
		size int
		nLvs int
	)
	if ix.dim > 1 {
		if ix.vtree == nil || ix.vtree.size == 0 {
			return
		}
		size, nLvs = ix.vtree.size, ix.vtree.n
	} else {
		if ix.tree.size == 0 {
			return
		}
		size, nLvs = ix.tree.size, ix.tree.n
	}
	mayFit := func(p int) bool {
		if ix.dim > 1 {
			return ix.vtree.mayFit(p, need)
		}
		// Scalar pruning uses only the first dimension's threshold; any
		// extra components of an ill-dimensioned demand are rejected by
		// FitsDemand at the leaves.
		return ix.tree.node[p] >= need[0]
	}
	stack := append(ix.stack[:0], 1)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !mayFit(p) {
			continue
		}
		if p >= size {
			if i := p - size; i < nLvs {
				if b := ix.bins[i]; b.FitsDemand(sizes) && !visit(b) {
					ix.stack = stack[:0]
					return
				}
			}
			continue
		}
		if desc {
			stack = append(stack, 2*p, 2*p+1)
		} else {
			stack = append(stack, 2*p+1, 2*p)
		}
	}
	ix.stack = stack[:0]
}

// MaxMinGapFitting returns the fitting bin with the largest MinGap —
// the emptiest dominant resource — ties toward the earliest opened, or
// nil if no open bin fits (the dominant-resource Worst Fit query). It
// walks (MinGap, index) groups downward from the emptiest, verifying
// each candidate with the exact FitsDemand test, and stops once a
// group's MinGap cannot accommodate even the demand's smallest
// component (below that, no bin can fit: the dimension attaining MinGap
// would already overflow).
func (ix *Index) MaxMinGapFitting(sizes []float64) *Bin {
	t := &ix.lvls
	if ix.dim > 1 {
		t = &ix.dlvls
	}
	minNeed := math.Inf(1)
	for _, s := range sizes {
		if s < minNeed {
			minNeed = s
		}
	}
	minNeed -= 2 * Eps
	for m := t.max(); m != nil; m = t.floorBelowGap(m.gap) {
		g := m.gap
		if g < minNeed {
			return nil
		}
		for n := t.ceil(g, 0); n != nil && n.gap == g; n = t.ceil(g, n.idx+1) {
			if b := ix.bins[n.idx]; b.FitsDemand(sizes) {
				return b
			}
		}
	}
	return nil
}

// checkCoherent verifies the index against the ledger's open list; the
// ledger's CheckInvariants calls it when the index is enabled.
func (ix *Index) checkCoherent(open []*Bin) error {
	inOpen := make(map[int]bool, len(open))
	for _, b := range open {
		inOpen[b.Index] = true
		if b.Index >= len(ix.bins) || ix.bins[b.Index] != b {
			return fmt.Errorf("index does not track open bin %d", b.Index)
		}
		if g := ix.tree.gap(b.Index); g != b.Gap() {
			return fmt.Errorf("index gap for bin %d is %g, want %g", b.Index, g, b.Gap())
		}
		if !ix.lvls.contains(b.Gap(), b.Index) {
			return fmt.Errorf("level tree missing open bin %d (gap %g)", b.Index, b.Gap())
		}
		if ix.vtree != nil {
			for d := 0; d < ix.dim; d++ {
				if g := ix.vtree.gap(b.Index, d); g != b.GapAt(d) {
					return fmt.Errorf("vector index gap for bin %d dim %d is %g, want %g", b.Index, d, g, b.GapAt(d))
				}
			}
			if key := ix.vtree.minGapAt(b.Index); !ix.dlvls.contains(key, b.Index) {
				return fmt.Errorf("dominant-resource tree missing open bin %d (min gap %g)", b.Index, key)
			}
		}
	}
	for i := range ix.bins {
		if inOpen[i] {
			continue
		}
		if !math.IsInf(ix.tree.gap(i), -1) {
			return fmt.Errorf("closed bin %d not tombstoned in gap tree (gap %g)", i, ix.tree.gap(i))
		}
		if ix.vtree != nil && !math.IsInf(ix.vtree.minGapAt(i), -1) {
			return fmt.Errorf("closed bin %d not tombstoned in vector gap tree", i)
		}
	}
	if n := ix.lvls.count(); n != len(open) {
		return fmt.Errorf("level tree holds %d keys, want %d open bins", n, len(open))
	}
	if ix.vtree != nil {
		if n := ix.dlvls.count(); n != len(open) {
			return fmt.Errorf("dominant-resource tree holds %d keys, want %d open bins", n, len(open))
		}
	}
	return nil
}

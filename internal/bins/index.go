package bins

import (
	"fmt"
	"math"
)

// Index is the ledger-maintained policy index over the open bins: a
// max-gap segment tree in opening order (positional queries — First Fit,
// Last Fit) and a (gap, index)-ordered treap (level queries — Best Fit,
// Worst Fit, Almost Worst Fit). The owning Ledger keeps it coherent on
// every OpenNew/PlaceIn/Remove/CloseExpired, so every query below is
// O(log B) against the live fleet with no per-policy bookkeeping.
//
// Gaps are scalar (first dimension); the queries are meaningful for 1-D
// demands only, which is why vector placements stay on the linear path
// (see internal/packing). All comparisons are exact — no epsilon — so
// query answers are order-independent and reproducible; callers fold
// their tolerance into `need` (conventionally size - Eps).
type Index struct {
	bins []*Bin // by Index; closed bins stay (tombstoned)
	tree gapTree
	lvls levelTree
}

// observeOpen tracks a freshly opened bin (called by the ledger after the
// first item is placed).
func (ix *Index) observeOpen(b *Bin) {
	if b.Index != len(ix.bins) {
		panic(fmt.Sprintf("bins: index saw bin %d open out of order", b.Index))
	}
	ix.bins = append(ix.bins, b)
	ix.tree.add(b.Index)
	ix.tree.update(b.Index, b.Gap())
	ix.lvls.insert(b.Gap(), b.Index)
}

// restoreClosed occupies the next opening-order slot with an
// already-closed bin during ledger restore: present in the positional
// arrays (indices must line up), tombstoned in the gap tree, absent
// from the level tree — exactly the state remove leaves a closed bin in.
func (ix *Index) restoreClosed(b *Bin) {
	if b.Index != len(ix.bins) {
		panic(fmt.Sprintf("bins: index restore saw bin %d out of order", b.Index))
	}
	ix.bins = append(ix.bins, b)
	ix.tree.add(b.Index)
	ix.tree.update(b.Index, math.Inf(-1))
}

// refresh re-reads an open bin's gap after a level change.
func (ix *Index) refresh(b *Bin) {
	old := ix.tree.gap(b.Index)
	g := b.Gap()
	if g == old {
		return
	}
	ix.tree.update(b.Index, g)
	ix.lvls.delete(old, b.Index)
	ix.lvls.insert(g, b.Index)
}

// remove untracks a bin that closed.
func (ix *Index) remove(b *Bin) {
	old := ix.tree.gap(b.Index)
	ix.tree.update(b.Index, math.Inf(-1))
	ix.lvls.delete(old, b.Index)
}

// FirstFitting returns the earliest-opened bin with gap >= need, or nil
// (the First Fit query).
func (ix *Index) FirstFitting(need float64) *Bin {
	i := ix.tree.firstAtLeast(need)
	if i < 0 {
		return nil
	}
	return ix.bins[i]
}

// LastFitting returns the latest-opened bin with gap >= need, or nil
// (the Last Fit query).
func (ix *Index) LastFitting(need float64) *Bin {
	i := ix.tree.lastAtLeast(need)
	if i < 0 {
		return nil
	}
	return ix.bins[i]
}

// TightestFitting returns the bin with the smallest gap >= need, ties
// toward the earliest opened, or nil (the Best Fit query).
func (ix *Index) TightestFitting(need float64) *Bin {
	n := ix.lvls.ceil(need, 0)
	if n == nil {
		return nil
	}
	return ix.bins[n.idx]
}

// EmptiestFitting returns the bin with the largest gap, ties toward the
// earliest opened, or nil if even that gap is below need (the Worst Fit
// query).
func (ix *Index) EmptiestFitting(need float64) *Bin {
	m := ix.lvls.max()
	if m == nil || m.gap < need {
		return nil
	}
	// Lowest index within the maximal-gap group.
	n := ix.lvls.ceil(m.gap, 0)
	return ix.bins[n.idx]
}

// SecondEmptiestFitting returns the runner-up of EmptiestFitting under
// the (descending gap, ascending index) order, restricted to gaps >=
// need, or nil when fewer than two bins qualify (the Almost Worst Fit
// query).
func (ix *Index) SecondEmptiestFitting(need float64) *Bin {
	first := ix.EmptiestFitting(need)
	if first == nil {
		return nil
	}
	g := ix.tree.gap(first.Index)
	// Next bin in the same gap group, if any.
	if n := ix.lvls.ceil(g, first.Index+1); n != nil && n.gap == g {
		return ix.bins[n.idx]
	}
	// Otherwise the head of the next-lower gap group, if it still fits.
	p := ix.lvls.floorBelowGap(g)
	if p == nil || p.gap < need {
		return nil
	}
	return ix.bins[ix.lvls.ceil(p.gap, 0).idx]
}

// checkCoherent verifies the index against the ledger's open list; the
// ledger's CheckInvariants calls it when the index is enabled.
func (ix *Index) checkCoherent(open []*Bin) error {
	inOpen := make(map[int]bool, len(open))
	for _, b := range open {
		inOpen[b.Index] = true
		if b.Index >= len(ix.bins) || ix.bins[b.Index] != b {
			return fmt.Errorf("index does not track open bin %d", b.Index)
		}
		if g := ix.tree.gap(b.Index); g != b.Gap() {
			return fmt.Errorf("index gap for bin %d is %g, want %g", b.Index, g, b.Gap())
		}
		if !ix.lvls.contains(b.Gap(), b.Index) {
			return fmt.Errorf("level tree missing open bin %d (gap %g)", b.Index, b.Gap())
		}
	}
	for i, b := range ix.bins {
		if !inOpen[i] && !math.IsInf(ix.tree.gap(i), -1) {
			return fmt.Errorf("closed bin %d not tombstoned in gap tree (gap %g)", i, ix.tree.gap(i))
		}
		_ = b
	}
	if n := ix.lvls.count(); n != len(open) {
		return fmt.Errorf("level tree holds %d keys, want %d open bins", n, len(open))
	}
	return nil
}

package bins

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
)

// linearFirst/linearLast/linearTightest/linearEmptiest/linearSecond are
// the O(B) reference semantics the index must reproduce exactly.
func linearFirst(open []*Bin, need float64) *Bin {
	for _, b := range open {
		if b.Gap() >= need {
			return b
		}
	}
	return nil
}

func linearLast(open []*Bin, need float64) *Bin {
	for i := len(open) - 1; i >= 0; i-- {
		if open[i].Gap() >= need {
			return open[i]
		}
	}
	return nil
}

func linearTightest(open []*Bin, need float64) *Bin {
	var best *Bin
	for _, b := range open {
		if b.Gap() < need {
			continue
		}
		if best == nil || b.Gap() < best.Gap() {
			best = b
		}
	}
	return best
}

func linearEmptiest(open []*Bin, need float64) *Bin {
	var best *Bin
	for _, b := range open {
		if b.Gap() < need {
			continue
		}
		if best == nil || b.Gap() > best.Gap() {
			best = b
		}
	}
	return best
}

func linearSecond(open []*Bin, need float64) *Bin {
	var first, second *Bin
	for _, b := range open {
		if b.Gap() < need {
			continue
		}
		switch {
		case first == nil:
			first = b
		case b.Gap() > first.Gap():
			second = first
			first = b
		case second == nil || b.Gap() > second.Gap():
			second = b
		}
	}
	return second
}

func checkQueries(t *testing.T, g *Ledger, need float64) {
	t.Helper()
	ix := g.Index()
	open := g.OpenBins()
	type q struct {
		name     string
		got, ref *Bin
	}
	for _, c := range []q{
		{"FirstFitting", ix.FirstFitting(need), linearFirst(open, need)},
		{"LastFitting", ix.LastFitting(need), linearLast(open, need)},
		{"TightestFitting", ix.TightestFitting(need), linearTightest(open, need)},
		{"EmptiestFitting", ix.EmptiestFitting(need), linearEmptiest(open, need)},
		{"SecondEmptiestFitting", ix.SecondEmptiestFitting(need), linearSecond(open, need)},
	} {
		if c.got != c.ref {
			t.Fatalf("%s(%g): index %v, linear %v (open %v)", c.name, need, binIdx(c.got), binIdx(c.ref), open)
		}
	}
}

func binIdx(b *Bin) int {
	if b == nil {
		return -1
	}
	return b.Index
}

// TestIndexMatchesLinearScans drives a ledger through a random arrive/
// depart mix (with and without keep-alive) and checks after every event
// that each indexed query agrees with its linear reference and that the
// index is structurally coherent.
func TestIndexMatchesLinearScans(t *testing.T) {
	for _, keepAlive := range []float64{0, 1.5} {
		rng := rand.New(rand.NewSource(7))
		g := NewLedgerKeepAlive(1, 1, keepAlive)
		g.EnableIndex()
		var live []item.Item
		now := 0.0
		nextID := item.ID(1)
		for step := 0; step < 3000; step++ {
			now += rng.Float64() * 0.2
			g.CloseExpired(now)
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				g.Remove(live[i].ID, now)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				size := 0.05 + 0.9*rng.Float64()
				it := item.Item{ID: nextID, Size: size, Arrival: now, Departure: math.Inf(1)}
				nextID++
				need := size - Eps
				if b := g.Index().FirstFitting(need); b != nil {
					g.PlaceIn(b, it, now)
				} else {
					g.OpenNew(it, now)
				}
				live = append(live, it)
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			checkQueries(t, g, rng.Float64())
		}
	}
}

// TestIndexQueriesHandExample pins the query semantics on a small fixed
// fleet: gaps 0.5, 0.2, 0.5, 0.8 for bins 0..3.
func TestIndexQueriesHandExample(t *testing.T) {
	g := NewLedger(1, 1)
	g.EnableIndex()
	for i, size := range []float64{0.5, 0.8, 0.5, 0.2} {
		g.OpenNew(item.Item{ID: item.ID(i + 1), Size: size, Arrival: 0, Departure: math.Inf(1)}, 0)
	}
	ix := g.Index()
	cases := []struct {
		name string
		got  *Bin
		want int
	}{
		{"FirstFitting(0.3)", ix.FirstFitting(0.3), 0},
		{"FirstFitting(0.6)", ix.FirstFitting(0.6), 3},
		{"LastFitting(0.3)", ix.LastFitting(0.3), 3},
		{"LastFitting(0.5)", ix.LastFitting(0.5), 3},
		{"TightestFitting(0.1)", ix.TightestFitting(0.1), 1},
		{"TightestFitting(0.4)", ix.TightestFitting(0.4), 0},
		{"EmptiestFitting(0.1)", ix.EmptiestFitting(0.1), 3},
		{"SecondEmptiestFitting(0.1)", ix.SecondEmptiestFitting(0.1), 0},
		{"SecondEmptiestFitting(0.6)", ix.SecondEmptiestFitting(0.6), -1},
	}
	for _, c := range cases {
		if binIdx(c.got) != c.want {
			t.Errorf("%s = bin %d, want %d", c.name, binIdx(c.got), c.want)
		}
	}
	// Equal-gap group: with bin 3 emptiest, the runner-up is the lowest-
	// indexed member of the gap-0.5 group {0, 2}.
	if b := ix.SecondEmptiestFitting(0.45); binIdx(b) != 0 {
		t.Errorf("SecondEmptiestFitting(0.45) = bin %d, want 0", binIdx(b))
	}
}

func TestEnableIndexLatePanics(t *testing.T) {
	g := NewLedger(1, 1)
	g.OpenNew(item.Item{ID: 1, Size: 0.5, Arrival: 0, Departure: math.Inf(1)}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("EnableIndex after opening bins must panic")
		}
	}()
	g.EnableIndex()
}

package bins

import (
	"fmt"
	"math"

	"dbp/internal/item"
)

// RestoredJob is one active job inside a BinRestore: everything the
// ledger retains about a resident item whose departure is still unknown
// (the streaming model — Departure is restored as +Inf). The Sizes
// slice is ADOPTED by RestoreLedger — the restored item references it
// directly — so callers whose source data outlives the call must pass a
// copy (packing.RestoreStream does).
type RestoredJob struct {
	ID      item.ID
	Size    float64
	Sizes   []float64
	Arrival float64
}

// BinRestore describes one open bin for RestoreLedger: its identity,
// timing, and — critically — its exact accumulated level vector. The
// level is NOT recomputed from the jobs: a live bin's level is a running
// float sum over its full placement/removal history, so only the
// verbatim accumulator makes a restored ledger place future jobs on
// bit-identical levels. Levels (like each job's Sizes) is ADOPTED by
// RestoreLedger as the bin's live accumulator; callers pass a copy if
// their source data outlives the call.
type BinRestore struct {
	Index      int
	OpenedAt   float64
	Lingering  bool    // open but empty, awaiting keep-alive expiry
	EmptySince float64 // valid iff Lingering
	Levels     []float64
	Jobs       []RestoredJob
}

// RestoreLedger rebuilds a ledger from durable snapshot state: the open
// fleet (ascending by Index), the total number of bins ever opened, the
// peak concurrency, and the exact closed-usage accumulator. Closed bins
// are restored as zero-footprint tombstones — their usage lives in
// closedUsage — occupying their opening-order slots so indices, the
// positional gap tree, and MaxConcurrentOpen all match the uninterrupted
// ledger. The result passes CheckInvariants before being returned.
func RestoreLedger(capacity float64, dim int, keepAlive float64, indexed bool,
	opened, peak int, closedUsage float64, open []BinRestore) (*Ledger, error) {
	if dim < 1 {
		return nil, fmt.Errorf("bins: restore with dim %d", dim)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("bins: restore with capacity %g", capacity)
	}
	if keepAlive < 0 {
		return nil, fmt.Errorf("bins: restore with negative keep-alive %g", keepAlive)
	}
	if len(open) > opened {
		return nil, fmt.Errorf("bins: restore lists %d open bins but only %d ever opened", len(open), opened)
	}
	if peak < len(open) {
		return nil, fmt.Errorf("bins: restore peak %d below %d open bins", peak, len(open))
	}
	g := NewLedgerKeepAlive(capacity, dim, keepAlive)
	if indexed {
		g.EnableIndex()
	}
	next := 0 // cursor into open (which must be ascending by Index)
	for i := 0; i < opened; i++ {
		if next < len(open) && open[next].Index < i {
			return nil, fmt.Errorf("bins: restore open list out of order at bin %d", open[next].Index)
		}
		if next < len(open) && open[next].Index == i {
			b, err := restoreOpenBin(&open[next], capacity, dim, keepAlive > 0)
			if err != nil {
				return nil, err
			}
			g.all = append(g.all, b)
			g.open = append(g.open, b)
			for _, it := range b.active {
				if g.location[it.ID] != nil {
					return nil, fmt.Errorf("bins: restore places job %d in two bins", it.ID)
				}
				g.location[it.ID] = b
			}
			if b.Lingering() {
				g.expiries.push(expiryEntry{emptySince: b.emptySince, bin: b})
			}
			if g.index != nil {
				g.index.observeOpen(b)
			}
			next++
			continue
		}
		// Tombstone: a bin that opened and closed before the snapshot. Its
		// usage is inside closedUsage; the placeholder only holds the
		// opening-order slot (Index == position, closed, never queried).
		b := &Bin{Index: i, Capacity: capacity, level: make([]float64, dim)}
		g.all = append(g.all, b)
		if g.index != nil {
			g.index.restoreClosed(b)
		}
	}
	if next != len(open) {
		return nil, fmt.Errorf("bins: restore open bin %d beyond %d ever opened", open[next].Index, opened)
	}
	g.maxConcurrentOpen = peak
	g.closedUsage = closedUsage
	if err := g.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("bins: restored ledger is incoherent: %w", err)
	}
	return g, nil
}

// restoreOpenBin reconstructs one open bin verbatim from its snapshot.
func restoreOpenBin(r *BinRestore, capacity float64, dim int, linger bool) (*Bin, error) {
	if len(r.Levels) != dim {
		return nil, fmt.Errorf("bins: restore bin %d has %d level dims, want %d", r.Index, len(r.Levels), dim)
	}
	if r.Lingering != (len(r.Jobs) == 0) {
		return nil, fmt.Errorf("bins: restore bin %d lingering=%v with %d jobs", r.Index, r.Lingering, len(r.Jobs))
	}
	b := &Bin{
		Index:           r.Index,
		Capacity:        capacity,
		LingerWhenEmpty: linger,
		openedAt:        r.OpenedAt,
		closedAt:        math.NaN(),
		emptySince:      math.NaN(),
		level:           r.Levels, // adopted; see BinRestore
		active:          make(map[item.ID]item.Item, len(r.Jobs)),
	}
	if r.Lingering {
		if !linger {
			return nil, fmt.Errorf("bins: restore bin %d lingers but keep-alive is off", r.Index)
		}
		if math.IsNaN(r.EmptySince) || r.EmptySince < r.OpenedAt {
			return nil, fmt.Errorf("bins: restore bin %d empty since %g, opened at %g", r.Index, r.EmptySince, r.OpenedAt)
		}
		b.emptySince = r.EmptySince
	}
	for _, jb := range r.Jobs {
		if _, dup := b.active[jb.ID]; dup {
			return nil, fmt.Errorf("bins: restore bin %d holds job %d twice", r.Index, jb.ID)
		}
		it := item.Item{
			ID:        jb.ID,
			Size:      jb.Size,
			Sizes:     jb.Sizes, // adopted; see RestoredJob
			Arrival:   jb.Arrival,
			Departure: math.Inf(1), // streaming model: unknown until Depart
		}
		if len(jb.Sizes) == 0 {
			it.Sizes = nil
		}
		b.active[it.ID] = it
		// Placement history carries the active jobs only; the departed
		// ones' history is not needed for any forward operation (Remove
		// back-annotates by ID, levels are restored verbatim above).
		b.placements = append(b.placements, Placement{Item: it, At: jb.Arrival})
	}
	return b, nil
}

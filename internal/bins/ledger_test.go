package bins

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func TestLedgerOpenPlaceRemove(t *testing.T) {
	g := NewLedger(1.0, 1)
	i1 := mkItem(1, 0.5, 0, 2)
	i2 := mkItem(2, 0.5, 0, 3)
	b0 := g.OpenNew(i1, 0)
	g.PlaceIn(b0, i2, 0)
	if g.NumOpen() != 1 || g.NumOpened() != 1 {
		t.Fatalf("open=%d opened=%d", g.NumOpen(), g.NumOpened())
	}
	if g.Locate(1) != b0 || g.Locate(2) != b0 {
		t.Fatal("Locate wrong")
	}
	if _, closed := g.Remove(1, 2); closed {
		t.Fatal("bin must stay open while item 2 remains")
	}
	b, closed := g.Remove(2, 3)
	if !closed || b != b0 {
		t.Fatal("bin must close when last item departs")
	}
	if g.TotalUsage(99) != 3 {
		t.Fatalf("usage = %g, want 3", g.TotalUsage(99))
	}
	if g.Locate(1) != nil {
		t.Fatal("departed item still located")
	}
}

func TestLedgerMaxConcurrentOpen(t *testing.T) {
	g := NewLedger(1.0, 1)
	a := mkItem(1, 0.9, 0, 10)
	b := mkItem(2, 0.9, 1, 3)
	g.OpenNew(a, 0)
	g.OpenNew(b, 1)
	if g.MaxConcurrentOpen() != 2 {
		t.Fatalf("max open = %d", g.MaxConcurrentOpen())
	}
	g.Remove(2, 3)
	g.OpenNew(mkItem(3, 0.9, 4, 5), 4)
	if g.MaxConcurrentOpen() != 2 {
		t.Fatal("peak must not grow when reopening after a close")
	}
}

func TestLedgerTotalUsageWithOpenBins(t *testing.T) {
	g := NewLedger(1.0, 1)
	g.OpenNew(mkItem(1, 0.5, 0, 10), 0)
	g.OpenNew(mkItem(2, 0.5, 2, 10), 2)
	// At time 5: bin0 ran 5, bin1 ran 3.
	if got := g.TotalUsage(5); got != 8 {
		t.Fatalf("usage at 5 = %g, want 8", got)
	}
}

func TestLedgerRemoveUnknownPanics(t *testing.T) {
	g := NewLedger(1.0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Remove(42, 0)
}

func TestLedgerOpenListOrder(t *testing.T) {
	g := NewLedger(1.0, 1)
	for i := 0; i < 5; i++ {
		g.OpenNew(mkItem(item.ID(i), 0.9, 0, 10), 0)
	}
	// Close the middle bin and confirm order is preserved.
	g.Remove(2, 1)
	idx := []int{}
	for _, b := range g.OpenBins() {
		idx = append(idx, b.Index)
	}
	want := []int{0, 1, 3, 4}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("open order = %v", idx)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Removing the first, middle, and last bin of the open list exercises
// every branch of the binary-search deletion.
func TestLedgerRemoveFirstMiddleLast(t *testing.T) {
	openOrder := func(g *Ledger) []int {
		idx := []int{}
		for _, b := range g.OpenBins() {
			idx = append(idx, b.Index)
		}
		return idx
	}
	g := NewLedger(1.0, 1)
	for i := 0; i < 5; i++ {
		g.OpenNew(mkItem(item.ID(i), 0.9, 0, 10), 0)
	}
	steps := []struct {
		remove item.ID
		want   []int
	}{
		{0, []int{1, 2, 3, 4}}, // first
		{4, []int{1, 2, 3}},    // last
		{2, []int{1, 3}},       // middle
		{1, []int{3}},
		{3, []int{}},
	}
	for _, s := range steps {
		if _, closed := g.Remove(s.remove, 1); !closed {
			t.Fatalf("removing sole item %d must close its bin", s.remove)
		}
		got := openOrder(g)
		if len(got) != len(s.want) {
			t.Fatalf("after removing %d: open = %v, want %v", s.remove, got, s.want)
		}
		for i := range s.want {
			if got[i] != s.want[i] {
				t.Fatalf("after removing %d: open = %v, want %v", s.remove, got, s.want)
			}
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// Randomized keep-alive churn: placements, removals, expiries and reuse of
// lingering bins, with the full invariant check (including the expiry
// heap) after every step and a usage recomputation at the end.
func TestLedgerKeepAliveInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		keepAlive := 0.1 + rng.Float64()*3
		g := NewLedgerKeepAlive(1.0, 1, keepAlive)
		live := []item.ID{}
		next := item.ID(0)
		now := 0.0
		for step := 0; step < 400; step++ {
			now += rng.Float64() * 0.5
			g.CloseExpired(now)
			if len(live) == 0 || rng.Float64() < 0.55 {
				it := mkItem(next, 0.05+rng.Float64()*0.9, now, now+1000)
				next++
				placed := false
				for _, b := range g.OpenBins() {
					if b.Fits(it) {
						g.PlaceIn(b, it, now)
						placed = true
						break
					}
				}
				if !placed {
					g.OpenNew(it, now)
				}
				live = append(live, it.ID)
			} else {
				k := rng.Intn(len(live))
				g.Remove(live[k], now)
				live = append(live[:k], live[k+1:]...)
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		for _, id := range live {
			now += rng.Float64() * 0.5
			g.Remove(id, now)
		}
		g.CloseExpired(now + 2*keepAlive + 1)
		g.CloseAllLingering()
		if g.NumOpen() != 0 {
			t.Fatalf("trial %d: %d bins open after drain", trial, g.NumOpen())
		}
		var want float64
		for _, b := range g.AllBins() {
			want += b.Usage()
		}
		if got := g.TotalUsage(0); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: usage %g, recomputed %g", trial, got, want)
		}
	}
}

func TestLedgerInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := NewLedger(1.0, 1)
		live := []item.ID{}
		next := item.ID(0)
		now := 0.0
		for step := 0; step < 300; step++ {
			now += rng.Float64()
			if len(live) == 0 || rng.Float64() < 0.55 {
				it := mkItem(next, 0.05+rng.Float64()*0.9, now, now+1000)
				next++
				placed := false
				for _, b := range g.OpenBins() {
					if b.Fits(it) {
						g.PlaceIn(b, it, now)
						placed = true
						break
					}
				}
				if !placed {
					g.OpenNew(it, now)
				}
				live = append(live, it.ID)
			} else {
				k := rng.Intn(len(live))
				g.Remove(live[k], now)
				live = append(live[:k], live[k+1:]...)
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

func TestNewLedgerPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedger(1, 0)
}

package bins

// expiryEntry schedules the closure of one lingering spell of a bin: the
// bin emptied at emptySince and, unless revived first, must close at
// emptySince + keepAlive. Entries are invalidated lazily — reviving a bin
// leaves its old entry in the heap, and CloseExpired discards any popped
// entry whose bin is no longer lingering since the recorded emptySince
// (a revived-and-re-emptied bin has a fresh entry with the later time).
type expiryEntry struct {
	emptySince float64
	bin        *Bin
}

// expiryHeap is a min-heap of pending keep-alive closures ordered by
// emptySince. The ledger applies a single keepAlive duration to every
// bin, so expiry times emptySince + keepAlive share the ordering of the
// emptySince values themselves. The heap is hand-rolled rather than
// wrapping container/heap so pushes stay allocation-free on the per-event
// hot path (container/heap boxes every element into an interface).
type expiryHeap []expiryEntry

// push adds an entry in O(log n).
func (h *expiryHeap) push(e expiryEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].emptySince <= s[i].emptySince {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// pop removes and returns the entry with the earliest expiry in O(log n).
// Callers must check len first.
func (h *expiryHeap) pop() expiryEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = expiryEntry{} // drop the *Bin reference so closed bins can be collected
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && s[l].emptySince < s[min].emptySince {
			min = l
		}
		if r < n && s[r].emptySince < s[min].emptySince {
			min = r
		}
		if min == i {
			return top
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

package bins

// levelTree is a treap over the open bins ordered by (gap, index): an
// ordered-set view of bin fill levels answering the level-directed Any
// Fit queries — tightest fit (min gap >= need), emptiest fit (max gap),
// and second-emptiest fit — in O(log B) expected per operation.
//
// Keys are exact: two bins compare by gap first and opening index second,
// with no epsilon fuzz, so every query has a unique, order-independent
// answer — the property the cross-engine equivalence suite relies on.
// Priorities are a deterministic hash of the bin index, making tree
// shape (and therefore run cost) reproducible across runs.
type levelTree struct {
	root *levelNode
}

type levelNode struct {
	gap  float64
	idx  int
	prio uint64
	l, r *levelNode
}

// splitmix64 is the standard 64-bit finalizer; good avalanche makes the
// treap priorities effectively random while staying deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyLess orders keys lexicographically by (gap, index).
func keyLess(g1 float64, i1 int, g2 float64, i2 int) bool {
	return g1 < g2 || (g1 == g2 && i1 < i2)
}

// insert adds the key (gap, idx); the key must not already be present.
func (t *levelTree) insert(gap float64, idx int) {
	t.root = levelInsert(t.root, &levelNode{gap: gap, idx: idx, prio: splitmix64(uint64(idx))})
}

func levelInsert(n, x *levelNode) *levelNode {
	if n == nil {
		return x
	}
	if keyLess(x.gap, x.idx, n.gap, n.idx) {
		n.l = levelInsert(n.l, x)
		if n.l.prio > n.prio {
			n = rotateRight(n)
		}
	} else {
		n.r = levelInsert(n.r, x)
		if n.r.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	return n
}

// delete removes the key (gap, idx); missing keys are a coherence bug.
func (t *levelTree) delete(gap float64, idx int) {
	t.root = levelDelete(t.root, gap, idx)
}

func levelDelete(n *levelNode, gap float64, idx int) *levelNode {
	if n == nil {
		panic("bins: level tree missing a key it should hold")
	}
	switch {
	case keyLess(gap, idx, n.gap, n.idx):
		n.l = levelDelete(n.l, gap, idx)
	case keyLess(n.gap, n.idx, gap, idx):
		n.r = levelDelete(n.r, gap, idx)
	default:
		// Rotate the node down until it has at most one child.
		switch {
		case n.l == nil:
			return n.r
		case n.r == nil:
			return n.l
		case n.l.prio > n.r.prio:
			n = rotateRight(n)
			n.r = levelDelete(n.r, gap, idx)
		default:
			n = rotateLeft(n)
			n.l = levelDelete(n.l, gap, idx)
		}
	}
	return n
}

func rotateRight(n *levelNode) *levelNode {
	l := n.l
	n.l = l.r
	l.r = n
	return l
}

func rotateLeft(n *levelNode) *levelNode {
	r := n.r
	n.r = r.l
	r.l = n
	return r
}

// ceil returns the smallest key >= (gap, idx), or nil.
func (t *levelTree) ceil(gap float64, idx int) *levelNode {
	var best *levelNode
	for n := t.root; n != nil; {
		if keyLess(n.gap, n.idx, gap, idx) {
			n = n.r
		} else {
			best = n
			n = n.l
		}
	}
	return best
}

// max returns the largest key, or nil.
func (t *levelTree) max() *levelNode {
	n := t.root
	if n == nil {
		return nil
	}
	for n.r != nil {
		n = n.r
	}
	return n
}

// floorBelowGap returns the largest key whose gap is strictly below the
// given gap, or nil — the head of the next-lower gap group.
func (t *levelTree) floorBelowGap(gap float64) *levelNode {
	var best *levelNode
	for n := t.root; n != nil; {
		if n.gap < gap {
			best = n
			n = n.r
		} else {
			n = n.l
		}
	}
	return best
}

// contains reports whether the exact key is present (invariant checks).
func (t *levelTree) contains(gap float64, idx int) bool {
	for n := t.root; n != nil; {
		switch {
		case keyLess(gap, idx, n.gap, n.idx):
			n = n.l
		case keyLess(n.gap, n.idx, gap, idx):
			n = n.r
		default:
			return true
		}
	}
	return false
}

// count returns the number of keys (invariant checks; O(B)).
func (t *levelTree) count() int {
	var walk func(*levelNode) int
	walk = func(n *levelNode) int {
		if n == nil {
			return 0
		}
		return 1 + walk(n.l) + walk(n.r)
	}
	return walk(t.root)
}

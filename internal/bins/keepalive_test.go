package bins

import (
	"math"
	"testing"

	"dbp/internal/item"
)

func TestBinLingeringLifecycle(t *testing.T) {
	b := Open(0, 1, 1, 0)
	b.LingerWhenEmpty = true
	b.Place(mkItem(1, 0.5, 0, 2), 0)
	if b.Lingering() {
		t.Fatal("occupied bin must not linger")
	}
	b.Remove(1, 2)
	if !b.IsOpen() || !b.Lingering() {
		t.Fatal("bin must linger open when empty")
	}
	if b.EmptySince() != 2 {
		t.Fatalf("emptySince = %g", b.EmptySince())
	}
	// Reuse cancels lingering.
	b.Place(mkItem(2, 0.5, 3, 5), 3)
	if b.Lingering() {
		t.Fatal("reused bin must not linger")
	}
	b.Remove(2, 5)
	b.Close(6)
	if b.IsOpen() || b.ClosedAt() != 6 || b.Usage() != 6 {
		t.Fatalf("closed at %g, usage %g", b.ClosedAt(), b.Usage())
	}
}

func TestBinClosePanics(t *testing.T) {
	cases := []func(){
		func() { // occupied
			b := Open(0, 1, 1, 0)
			b.LingerWhenEmpty = true
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			b.Close(1)
		},
		func() { // before emptySince
			b := Open(0, 1, 1, 0)
			b.LingerWhenEmpty = true
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			b.Remove(1, 2)
			b.Close(1)
		},
		func() { // EmptySince on occupied bin
			b := Open(0, 1, 1, 0)
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			_ = b.EmptySince()
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBinPlacePanicsAfterOpenTime(t *testing.T) {
	b := Open(0, 1, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic placing before open time")
		}
	}()
	b.Place(mkItem(1, 0.5, 0, 10), 4)
}

func TestLedgerKeepAliveCloseExpired(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 2)
	g.OpenNew(mkItem(1, 0.5, 0, 1), 0)
	g.OpenNew(mkItem(2, 0.9, 0, 3), 0)
	if _, closed := g.Remove(1, 1); closed {
		t.Fatal("keep-alive bin must not close on empty")
	}
	if g.NumOpen() != 2 {
		t.Fatal("lingering bin must remain open")
	}
	// Before expiry: nothing closes.
	if n := g.CloseExpired(2.5); n != 0 {
		t.Fatalf("closed %d before expiry", n)
	}
	// At expiry (1 + 2 = 3): closes, at exactly t=3.
	if n := g.CloseExpired(3); n != 1 {
		t.Fatalf("closed %d at expiry", n)
	}
	b := g.AllBins()[0]
	if b.IsOpen() || b.ClosedAt() != 3 {
		t.Fatalf("bin 0 closed at %v", b)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain the other bin, then CloseAllLingering.
	g.Remove(2, 3)
	g.CloseAllLingering()
	if g.NumOpen() != 0 {
		t.Fatal("all bins must be closed")
	}
	if g.TotalUsage(0) != 3+5 {
		t.Fatalf("usage = %g, want 8 ([0,3) + [0,5))", g.TotalUsage(0))
	}
	if g.KeepAlive() != 2 {
		t.Fatal("keep-alive accessor")
	}
}

// Bins must expire in order of emptying time, not opening order, and a
// single CloseExpired call must close every bin whose expiry has passed —
// including ties (two bins emptying at the same instant).
func TestCloseExpiredOrderAndTies(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 2)
	g.OpenNew(mkItem(1, 0.9, 0, 3), 0) // bin 0, empties last
	g.OpenNew(mkItem(2, 0.9, 0, 1), 0) // bin 1, empties at 1
	g.OpenNew(mkItem(3, 0.9, 0, 1), 0) // bin 2, empties at 1 (tie with bin 1)
	g.Remove(2, 1)
	g.Remove(3, 1)
	g.Remove(1, 3)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Expiries: bins 1 and 2 at 3 (= 1 + 2), bin 0 at 5. At now = 3 the
	// tied pair closes (half-open: exactly-at-now expires); bin 0 stays.
	if n := g.CloseExpired(3); n != 2 {
		t.Fatalf("closed %d at t=3, want 2", n)
	}
	for _, idx := range []int{1, 2} {
		if b := g.AllBins()[idx]; b.IsOpen() || b.ClosedAt() != 3 {
			t.Fatalf("bin %d: %v, want closed at 3", idx, b)
		}
	}
	if g.NumOpen() != 1 || g.OpenBins()[0].Index != 0 {
		t.Fatalf("open after t=3: %v", g.OpenBins())
	}
	if n := g.CloseExpired(5); n != 1 {
		t.Fatalf("closed %d at t=5, want 1", n)
	}
	if b := g.AllBins()[0]; b.ClosedAt() != 5 {
		t.Fatalf("bin 0 closed at %g, want 5", b.ClosedAt())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A bin that empties, is revived, and empties again must expire from its
// SECOND emptying time: the stale heap entry from the first spell must be
// discarded, not close the bin early.
func TestCloseExpiredSkipsRevivedEntry(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 5)
	b := g.OpenNew(mkItem(1, 0.5, 0, 1), 0)
	g.Remove(1, 1) // lingers, would expire at 6
	g.PlaceIn(b, mkItem(2, 0.5, 2, 4), 2)
	g.Remove(2, 4) // lingers again, expires at 9
	if n := g.CloseExpired(6); n != 0 {
		t.Fatalf("stale entry closed %d bins at t=6", n)
	}
	if !b.Lingering() {
		t.Fatal("bin must still be lingering at t=6")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := g.CloseExpired(9); n != 1 {
		t.Fatalf("closed %d at t=9, want 1", n)
	}
	if b.ClosedAt() != 9 {
		t.Fatalf("closed at %g, want 9 (4 + keep-alive 5)", b.ClosedAt())
	}
}

func TestLedgerKeepAliveReuseCancelsShutdown(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 10)
	b := g.OpenNew(mkItem(1, 0.5, 0, 1), 0)
	g.Remove(1, 1)
	g.PlaceIn(b, mkItem(2, 0.5, 2, 4), 2)
	if n := g.CloseExpired(100); n != 0 {
		t.Fatal("occupied bin must not expire")
	}
	g.Remove(2, 4)
	g.CloseAllLingering()
	if b.ClosedAt() != 14 {
		t.Fatalf("closed at %g, want 14 (4 + keep-alive 10)", b.ClosedAt())
	}
}

func TestNewLedgerKeepAlivePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedgerKeepAlive(1, 1, -1)
}

func TestOpenNewCapSetsPerBinCapacity(t *testing.T) {
	g := NewLedger(1, 1)
	b := g.OpenNewCap(mkItem(1, 0.2, 0, 1), 0, 0.25)
	if b.Capacity != 0.25 {
		t.Fatalf("capacity = %g", b.Capacity)
	}
	if b.Fits(mkItem(2, 0.1, 0, 1)) != (b.Level()+0.1 <= 0.25+Eps) {
		t.Fatal("fits must respect the per-bin capacity")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUsagePeriodOfLingeringBin(t *testing.T) {
	b := Open(0, 1, 1, 1)
	b.LingerWhenEmpty = true
	b.Place(mkItem(1, 0.5, 1, 2), 1)
	b.Remove(1, 2)
	if !math.IsNaN(func() (v float64) {
		defer func() { recover(); v = math.NaN() }()
		v = b.ClosedAt()
		return v
	}()) {
		t.Fatal("ClosedAt must panic while lingering")
	}
	b.Close(5)
	if got := b.UsagePeriod(); got.Lo != 1 || got.Hi != 5 {
		t.Fatalf("usage period = %v", got)
	}
}

func TestItemsAtDuringLinger(t *testing.T) {
	b := Open(0, 1, 1, 0)
	b.LingerWhenEmpty = true
	it := item.Item{ID: 1, Size: 0.5, Arrival: 0, Departure: 2}
	b.Place(it, 0)
	b.Remove(1, 2)
	if n := len(b.ItemsAt(3)); n != 0 {
		t.Fatalf("%d items during linger, want 0", n)
	}
	if lv := b.LevelAt(3); lv != 0 {
		t.Fatalf("level %g during linger", lv)
	}
}

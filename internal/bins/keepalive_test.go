package bins

import (
	"math"
	"testing"

	"dbp/internal/item"
)

func TestBinLingeringLifecycle(t *testing.T) {
	b := Open(0, 1, 1, 0)
	b.LingerWhenEmpty = true
	b.Place(mkItem(1, 0.5, 0, 2), 0)
	if b.Lingering() {
		t.Fatal("occupied bin must not linger")
	}
	b.Remove(1, 2)
	if !b.IsOpen() || !b.Lingering() {
		t.Fatal("bin must linger open when empty")
	}
	if b.EmptySince() != 2 {
		t.Fatalf("emptySince = %g", b.EmptySince())
	}
	// Reuse cancels lingering.
	b.Place(mkItem(2, 0.5, 3, 5), 3)
	if b.Lingering() {
		t.Fatal("reused bin must not linger")
	}
	b.Remove(2, 5)
	b.Close(6)
	if b.IsOpen() || b.ClosedAt() != 6 || b.Usage() != 6 {
		t.Fatalf("closed at %g, usage %g", b.ClosedAt(), b.Usage())
	}
}

func TestBinClosePanics(t *testing.T) {
	cases := []func(){
		func() { // occupied
			b := Open(0, 1, 1, 0)
			b.LingerWhenEmpty = true
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			b.Close(1)
		},
		func() { // before emptySince
			b := Open(0, 1, 1, 0)
			b.LingerWhenEmpty = true
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			b.Remove(1, 2)
			b.Close(1)
		},
		func() { // EmptySince on occupied bin
			b := Open(0, 1, 1, 0)
			b.Place(mkItem(1, 0.5, 0, 2), 0)
			_ = b.EmptySince()
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBinPlacePanicsAfterOpenTime(t *testing.T) {
	b := Open(0, 1, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic placing before open time")
		}
	}()
	b.Place(mkItem(1, 0.5, 0, 10), 4)
}

func TestLedgerKeepAliveCloseExpired(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 2)
	g.OpenNew(mkItem(1, 0.5, 0, 1), 0)
	g.OpenNew(mkItem(2, 0.9, 0, 3), 0)
	if _, closed := g.Remove(1, 1); closed {
		t.Fatal("keep-alive bin must not close on empty")
	}
	if g.NumOpen() != 2 {
		t.Fatal("lingering bin must remain open")
	}
	// Before expiry: nothing closes.
	if n := g.CloseExpired(2.5); n != 0 {
		t.Fatalf("closed %d before expiry", n)
	}
	// At expiry (1 + 2 = 3): closes, at exactly t=3.
	if n := g.CloseExpired(3); n != 1 {
		t.Fatalf("closed %d at expiry", n)
	}
	b := g.AllBins()[0]
	if b.IsOpen() || b.ClosedAt() != 3 {
		t.Fatalf("bin 0 closed at %v", b)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain the other bin, then CloseAllLingering.
	g.Remove(2, 3)
	g.CloseAllLingering()
	if g.NumOpen() != 0 {
		t.Fatal("all bins must be closed")
	}
	if g.TotalUsage(0) != 3+5 {
		t.Fatalf("usage = %g, want 8 ([0,3) + [0,5))", g.TotalUsage(0))
	}
	if g.KeepAlive() != 2 {
		t.Fatal("keep-alive accessor")
	}
}

func TestLedgerKeepAliveReuseCancelsShutdown(t *testing.T) {
	g := NewLedgerKeepAlive(1, 1, 10)
	b := g.OpenNew(mkItem(1, 0.5, 0, 1), 0)
	g.Remove(1, 1)
	g.PlaceIn(b, mkItem(2, 0.5, 2, 4), 2)
	if n := g.CloseExpired(100); n != 0 {
		t.Fatal("occupied bin must not expire")
	}
	g.Remove(2, 4)
	g.CloseAllLingering()
	if b.ClosedAt() != 14 {
		t.Fatalf("closed at %g, want 14 (4 + keep-alive 10)", b.ClosedAt())
	}
}

func TestNewLedgerKeepAlivePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedgerKeepAlive(1, 1, -1)
}

func TestOpenNewCapSetsPerBinCapacity(t *testing.T) {
	g := NewLedger(1, 1)
	b := g.OpenNewCap(mkItem(1, 0.2, 0, 1), 0, 0.25)
	if b.Capacity != 0.25 {
		t.Fatalf("capacity = %g", b.Capacity)
	}
	if b.Fits(mkItem(2, 0.1, 0, 1)) != (b.Level()+0.1 <= 0.25+Eps) {
		t.Fatal("fits must respect the per-bin capacity")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUsagePeriodOfLingeringBin(t *testing.T) {
	b := Open(0, 1, 1, 1)
	b.LingerWhenEmpty = true
	b.Place(mkItem(1, 0.5, 1, 2), 1)
	b.Remove(1, 2)
	if !math.IsNaN(func() (v float64) {
		defer func() { recover(); v = math.NaN() }()
		v = b.ClosedAt()
		return v
	}()) {
		t.Fatal("ClosedAt must panic while lingering")
	}
	b.Close(5)
	if got := b.UsagePeriod(); got.Lo != 1 || got.Hi != 5 {
		t.Fatalf("usage period = %v", got)
	}
}

func TestItemsAtDuringLinger(t *testing.T) {
	b := Open(0, 1, 1, 0)
	b.LingerWhenEmpty = true
	it := item.Item{ID: 1, Size: 0.5, Arrival: 0, Departure: 2}
	b.Place(it, 0)
	b.Remove(1, 2)
	if n := len(b.ItemsAt(3)); n != 0 {
		t.Fatalf("%d items during linger, want 0", n)
	}
	if lv := b.LevelAt(3); lv != 0 {
		t.Fatalf("level %g during linger", lv)
	}
}

package bins

import "math"

// gapTree is a segment tree over bins in opening order (by Index) storing
// the maximum gap in each range. It answers the positional Any Fit
// queries — "lowest-/highest-indexed open bin with gap >= s" and
// "lowest-indexed bin attaining the maximum gap" — in O(log B) each.
// Closed bins are tombstoned with -Inf so they can never win a query.
//
// It generalizes the structure that used to live inside the FastFirstFit
// policy; the Index now maintains it ledger-side for every policy.
type gapTree struct {
	n    int       // number of bins ever added (leaves in use)
	node []float64 // segment tree over cached gaps (max)
	size int       // power-of-two leaf count
}

// add appends leaf i (bins open in index order) with gap -Inf; the caller
// follows up with update.
func (t *gapTree) add(i int) {
	if i != t.n {
		panic("bins: gap tree observed out-of-order bin open")
	}
	t.n++
	if t.n > t.size {
		t.grow()
	}
}

// grow doubles the leaf capacity, preserving existing leaf values.
func (t *gapTree) grow() {
	size := 1
	for size < t.n {
		size *= 2
	}
	old := t.node
	oldSize := t.size
	t.size = size
	t.node = make([]float64, 2*size)
	for i := range t.node {
		t.node[i] = math.Inf(-1)
	}
	for i := 0; i < oldSize && i < t.n; i++ {
		t.node[size+i] = old[oldSize+i]
	}
	for i := size - 1; i >= 1; i-- {
		t.node[i] = math.Max(t.node[2*i], t.node[2*i+1])
	}
}

// update sets leaf i's gap (use -Inf to tombstone a closed bin).
func (t *gapTree) update(i int, gap float64) {
	p := t.size + i
	t.node[p] = gap
	for p >>= 1; p >= 1; p >>= 1 {
		t.node[p] = math.Max(t.node[2*p], t.node[2*p+1])
	}
}

// gap returns leaf i's current value.
func (t *gapTree) gap(i int) float64 { return t.node[t.size+i] }

// firstAtLeast returns the smallest index whose gap >= s, or -1.
func (t *gapTree) firstAtLeast(s float64) int {
	if t.size == 0 || t.node[1] < s {
		return -1
	}
	p := 1
	for p < t.size {
		if t.node[2*p] >= s {
			p = 2 * p
		} else {
			p = 2*p + 1
		}
	}
	idx := p - t.size
	if idx >= t.n {
		return -1
	}
	return idx
}

// lastAtLeast returns the largest index whose gap >= s, or -1. The
// right-first descent mirrors firstAtLeast.
func (t *gapTree) lastAtLeast(s float64) int {
	if t.size == 0 || t.node[1] < s {
		return -1
	}
	p := 1
	for p < t.size {
		if t.node[2*p+1] >= s {
			p = 2*p + 1
		} else {
			p = 2 * p
		}
	}
	idx := p - t.size
	if idx >= t.n {
		return -1
	}
	return idx
}

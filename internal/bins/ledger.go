package bins

import (
	"fmt"
	"math"
	"sort"

	"dbp/internal/item"
)

// Ledger tracks every bin ever opened during a packing run, the currently
// open subset, which bin each item lives in, and the running objective
// statistics (total usage time, maximum number of concurrently open bins —
// the classical DBP objective the paper contrasts with, Sec. II).
//
// Every per-event operation is O(log B) in the number of open bins B:
// placements and openings are O(1), Remove locates the bin's open-list
// slot by binary search, and keep-alive expiries are driven by a min-heap
// of pending closures instead of a scan of the fleet (DESIGN.md §8).
type Ledger struct {
	capacity  float64
	dim       int
	keepAlive float64 // 0: close bins the moment they empty

	all      []*Bin
	open     []*Bin // sorted by Index ascending (== opening order)
	location map[item.ID]*Bin
	// expiries holds the pending keep-alive closures (min by emptySince),
	// lazily invalidated: entries for revived bins are discarded when
	// popped rather than being searched for and deleted.
	expiries expiryHeap

	maxConcurrentOpen int
	closedUsage       float64

	// due is CloseExpired's reusable scratch for the entries expiring in
	// one call, so batching closures for canonical ordering stays
	// allocation-free on the steady-state path.
	due []expiryEntry

	// index, when enabled, is the policy-query index kept coherent by
	// every mutation below (see Index). Nil for owners that never issue
	// indexed queries (replay, the linear reference engine).
	index *Index
}

// NewLedger creates a ledger for bins of the given capacity and dimension.
func NewLedger(capacity float64, dim int) *Ledger {
	if dim < 1 {
		panic("bins: dim must be >= 1")
	}
	return &Ledger{
		capacity: capacity,
		dim:      dim,
		location: make(map[item.ID]*Bin),
	}
}

// NewLedgerKeepAlive creates a ledger whose bins linger open for
// keepAlive time units after emptying (the cloud keep-alive model: a
// server whose billed hour is already paid may as well stay up). The
// owner must call CloseExpired as simulation time advances and
// CloseAllLingering at the end.
func NewLedgerKeepAlive(capacity float64, dim int, keepAlive float64) *Ledger {
	if keepAlive < 0 {
		panic("bins: negative keep-alive")
	}
	g := NewLedger(capacity, dim)
	g.keepAlive = keepAlive
	return g
}

// KeepAlive returns the configured keep-alive duration (0 = none).
func (g *Ledger) KeepAlive() float64 { return g.keepAlive }

// EnableIndex turns on the policy-query index, which every subsequent
// mutation keeps coherent. It must be called before any bin is opened.
func (g *Ledger) EnableIndex() {
	if len(g.all) > 0 {
		panic("bins: EnableIndex on a ledger that already opened bins")
	}
	g.index = newIndex(g.dim)
}

// Index returns the policy-query index, or nil when not enabled.
func (g *Ledger) Index() *Index { return g.index }

// CloseExpired closes every lingering bin whose keep-alive budget has run
// out by time now (expiry at emptySince + keepAlive, half-open: a bin
// expiring exactly at now is closed and cannot serve an arrival at now).
// It returns the number of bins closed.
//
// The heap makes the no-expiry case — the overwhelmingly common one, as
// the simulator and the streaming dispatcher call CloseExpired on every
// event — a single peek, and each actual closure O(log B).
func (g *Ledger) CloseExpired(now float64) int {
	if len(g.expiries) == 0 || g.expiries[0].emptySince+g.keepAlive > now {
		return 0
	}
	// Collect every due closure first and process them in canonical
	// (emptySince, Index) order. The heap's order among equal emptySince
	// values depends on insertion history — including stale entries for
	// revived bins — and the closed-usage accumulator's float bits depend
	// on summation order, so closing in heap-pop order would make a
	// ledger restored from a snapshot (whose heap holds only the live
	// entries) drift from an uninterrupted run by a few ULPs. The
	// canonical order is history-free.
	due := g.due[:0]
	for len(g.expiries) > 0 && g.expiries[0].emptySince+g.keepAlive <= now {
		e := g.expiries.pop()
		if !e.bin.Lingering() || e.bin.EmptySince() != e.emptySince {
			continue // stale: the bin was revived after this entry was pushed
		}
		due = append(due, e)
	}
	// Insertion sort: the batch is almost always tiny (usually one), and
	// sort.Slice would allocate on the per-event hot path.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && (due[j].emptySince < due[j-1].emptySince ||
			(due[j].emptySince == due[j-1].emptySince && due[j].bin.Index < due[j-1].bin.Index)); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	closed := 0
	for _, e := range due {
		b := e.bin
		// Re-check liveness: a bin that emptied, revived, and emptied
		// again at the same timestamp has two indistinguishable heap
		// entries, and the first closure must invalidate the second.
		if !b.Lingering() || b.EmptySince() != e.emptySince {
			continue
		}
		b.Close(e.emptySince + g.keepAlive)
		g.closedUsage += b.Usage()
		g.removeOpen(b)
		if g.index != nil {
			g.index.remove(b)
		}
		closed++
	}
	for i := range due {
		due[i] = expiryEntry{} // release *Bin references
	}
	g.due = due[:0]
	return closed
}

// CloseAllLingering closes every remaining lingering bin at its natural
// expiry (emptySince + keepAlive); called when the workload drains.
func (g *Ledger) CloseAllLingering() {
	kept := g.open[:0]
	for _, b := range g.open {
		if b.Lingering() {
			b.Close(b.EmptySince() + g.keepAlive)
			g.closedUsage += b.Usage()
			if g.index != nil {
				g.index.remove(b)
			}
		} else {
			kept = append(kept, b)
		}
	}
	g.open = kept
	g.expiries = nil
}

// Capacity returns the per-dimension bin capacity.
func (g *Ledger) Capacity() float64 { return g.capacity }

// Dim returns the resource dimensionality.
func (g *Ledger) Dim() int { return g.dim }

// OpenBins returns the currently open bins in opening order (ascending
// Index). The slice is shared; callers must not modify it.
func (g *Ledger) OpenBins() []*Bin { return g.open }

// AllBins returns every bin ever opened, in opening order. Shared slice.
func (g *Ledger) AllBins() []*Bin { return g.all }

// NumOpen returns the number of currently open bins.
func (g *Ledger) NumOpen() int { return len(g.open) }

// NumOpened returns the total number of bins ever opened.
func (g *Ledger) NumOpened() int { return len(g.all) }

// MaxConcurrentOpen returns the peak number of simultaneously open bins
// observed so far (the classical DBP objective).
func (g *Ledger) MaxConcurrentOpen() int { return g.maxConcurrentOpen }

// ClosedUsage returns the exact usage accumulated by closed bins — the
// running float sum durable snapshots serialize verbatim, because
// recomputing it from closure history would re-order the additions and
// drift from the live accumulator by ULPs.
func (g *Ledger) ClosedUsage() float64 { return g.closedUsage }

// OpenNew opens a fresh bin at time t, places the item in it, and returns
// the bin.
func (g *Ledger) OpenNew(it item.Item, t float64) *Bin {
	return g.OpenNewCap(it, t, g.capacity)
}

// OpenNewCap opens a fresh bin with an explicit capacity (heterogeneous
// fleets open different tiers; homogeneous runs use OpenNew).
func (g *Ledger) OpenNewCap(it item.Item, t, capacity float64) *Bin {
	b := Open(len(g.all), capacity, g.dim, t)
	b.LingerWhenEmpty = g.keepAlive > 0
	g.all = append(g.all, b)
	g.open = append(g.open, b)
	if len(g.open) > g.maxConcurrentOpen {
		g.maxConcurrentOpen = len(g.open)
	}
	b.Place(it, t)
	g.location[it.ID] = b
	if g.index != nil {
		g.index.observeOpen(b)
	}
	return b
}

// PlaceIn places the item into an existing open bin at time t.
func (g *Ledger) PlaceIn(b *Bin, it item.Item, t float64) {
	b.Place(it, t)
	g.location[it.ID] = b
	if g.index != nil {
		g.index.refresh(b)
	}
}

// Remove removes the item from whichever bin holds it, closing the bin if
// it empties. It returns the bin the item was in and whether the bin
// closed. Removing an unknown item panics (simulator bug).
func (g *Ledger) Remove(id item.ID, t float64) (b *Bin, closed bool) {
	b, ok := g.location[id]
	if !ok {
		panic(fmt.Sprintf("bins: item %d is in no bin", id))
	}
	delete(g.location, id)
	b.Remove(id, t)
	if b.IsOpen() {
		if b.Lingering() {
			// The bin just emptied into keep-alive; schedule its closure.
			g.expiries.push(expiryEntry{emptySince: b.EmptySince(), bin: b})
		}
		if g.index != nil {
			g.index.refresh(b)
		}
		return b, false
	}
	g.closedUsage += b.Usage()
	g.removeOpen(b)
	if g.index != nil {
		g.index.remove(b)
	}
	return b, true
}

// removeOpen deletes the bin from the Index-sorted open list: an O(log B)
// binary search for the slot, then a contiguous copy of the tail (a
// single memmove of pointers, far below the cost of the former
// pointer-equality scan on large fleets).
func (g *Ledger) removeOpen(b *Bin) {
	i := sort.Search(len(g.open), func(i int) bool { return g.open[i].Index >= b.Index })
	if i == len(g.open) || g.open[i] != b {
		panic(fmt.Sprintf("bins: bin %d not on the open list", b.Index))
	}
	copy(g.open[i:], g.open[i+1:])
	g.open[len(g.open)-1] = nil // release the tail slot's *Bin
	g.open = g.open[:len(g.open)-1]
}

// Locate returns the bin currently holding the item, or nil.
func (g *Ledger) Locate(id item.ID) *Bin { return g.location[id] }

// TotalUsage returns the accumulated usage time of all bins, counting open
// bins up to time now. After the simulation drains (all items departed),
// every bin is closed and now is ignored.
func (g *Ledger) TotalUsage(now float64) float64 {
	u := g.closedUsage
	for _, b := range g.open {
		u += now - b.OpenedAt()
	}
	return u
}

// CheckInvariants verifies structural invariants of the ledger and its
// bins; tests call it after every event. It returns an error describing
// the first violation found.
func (g *Ledger) CheckInvariants() error {
	openSet := make(map[*Bin]bool, len(g.open))
	prev := -1
	for _, b := range g.open {
		if !b.IsOpen() {
			return fmt.Errorf("closed bin %d on open list", b.Index)
		}
		if b.Index <= prev {
			return fmt.Errorf("open list out of order at bin %d", b.Index)
		}
		prev = b.Index
		openSet[b] = true
		for d, lv := range b.LevelVec() {
			if lv > b.Capacity+Eps {
				return fmt.Errorf("bin %d over capacity in dim %d: %g", b.Index, d, lv)
			}
			if lv < -Eps {
				return fmt.Errorf("bin %d negative level in dim %d: %g", b.Index, d, lv)
			}
		}
		if b.NumActive() == 0 && !b.Lingering() {
			return fmt.Errorf("open bin %d has no items and is not lingering", b.Index)
		}
	}
	for id, b := range g.location {
		if !openSet[b] {
			return fmt.Errorf("item %d located in non-open bin %d", id, b.Index)
		}
	}
	for i, b := range g.all {
		if b.Index != i {
			return fmt.Errorf("bin at position %d has index %d", i, b.Index)
		}
		if !b.IsOpen() && math.IsNaN(b.ClosedAt()) {
			return fmt.Errorf("bin %d closed at NaN", b.Index)
		}
	}
	for i, e := range g.expiries {
		if e.bin == nil {
			return fmt.Errorf("nil bin in expiry heap at %d", i)
		}
		if i > 0 && g.expiries[(i-1)/2].emptySince > e.emptySince {
			return fmt.Errorf("expiry heap order violated at %d", i)
		}
	}
	// Every lingering bin must have a live closure scheduled; stale heap
	// entries for revived bins are legal (lazy invalidation).
	for _, b := range g.open {
		if !b.Lingering() {
			continue
		}
		scheduled := false
		for _, e := range g.expiries {
			if e.bin == b && e.emptySince == b.EmptySince() {
				scheduled = true
				break
			}
		}
		if !scheduled {
			return fmt.Errorf("lingering bin %d has no pending expiry entry", b.Index)
		}
	}
	if g.index != nil {
		if err := g.index.checkCoherent(g.open); err != nil {
			return err
		}
	}
	return nil
}

// Package bins models the bins (cloud servers) of the MinUsageTime DBP
// problem. A bin opens when it receives its first item and closes when its
// last item departs (paper Sec. III-B); its usage period is the half-open
// interval from opening to closing, and the objective of the problem is the
// total length of all usage periods.
//
// Bins record every placement, so analyses can reconstruct the level of a
// bin at any time after the fact (items are never migrated, so an item's
// residence interval in its bin equals its active interval).
package bins

import (
	"fmt"
	"math"

	"dbp/internal/interval"
	"dbp/internal/item"
)

// Eps is the tolerance used for capacity admission checks: an item fits if
// level + size <= capacity + Eps. It absorbs float64 accumulation error on
// instances whose sizes are not exactly representable; it is far below the
// size granularity of every workload in this repository.
const Eps = 1e-9

// Placement records one item being placed into a bin at a given time.
// Because items are never reassigned, the item resides in the bin for its
// entire active interval.
type Placement struct {
	Item item.Item
	At   float64
}

// Bin is a single server of given capacity (1.0 per dimension in the
// paper's normalization). Create bins with Open.
type Bin struct {
	// Index is the bin's position in the temporal order of openings,
	// starting at 0. First Fit's "earliest opened" rule is "lowest Index".
	Index int
	// Capacity is the per-dimension capacity; the paper uses 1.
	Capacity float64
	// LingerWhenEmpty keeps the bin open (empty, "lingering") when its
	// last item departs instead of closing it — the keep-alive server
	// model. The owner (bins.Ledger) is then responsible for closing the
	// bin via Close once the keep-alive budget expires.
	LingerWhenEmpty bool

	openedAt   float64
	closedAt   float64 // NaN while open
	emptySince float64 // NaN while occupied; set when the bin empties but lingers (keep-alive)
	level      []float64
	active     map[item.ID]item.Item
	placements []Placement
}

// Open creates a new open bin with the given index and capacity at time t,
// supporting dim resource dimensions (1 for the paper's scalar problem).
func Open(index int, capacity float64, dim int, t float64) *Bin {
	if dim < 1 {
		panic("bins: dim must be >= 1")
	}
	if capacity <= 0 {
		panic("bins: capacity must be positive")
	}
	return &Bin{
		Index:      index,
		Capacity:   capacity,
		openedAt:   t,
		closedAt:   math.NaN(),
		emptySince: math.NaN(),
		level:      make([]float64, dim),
		active:     make(map[item.ID]item.Item),
	}
}

// IsOpen reports whether the bin still holds at least one item (or was just
// opened and has not yet closed).
func (b *Bin) IsOpen() bool { return math.IsNaN(b.closedAt) }

// OpenedAt returns the opening time of the bin.
func (b *Bin) OpenedAt() float64 { return b.openedAt }

// ClosedAt returns the closing time, panicking if the bin is still open.
func (b *Bin) ClosedAt() float64 {
	if b.IsOpen() {
		panic(fmt.Sprintf("bins: bin %d still open", b.Index))
	}
	return b.closedAt
}

// UsagePeriod returns U_k = [opening, closing) for a closed bin.
func (b *Bin) UsagePeriod() interval.Interval {
	return interval.Interval{Lo: b.openedAt, Hi: b.ClosedAt()}
}

// Usage returns |U_k|, the bin's contribution to the objective, for a
// closed bin.
func (b *Bin) Usage() float64 { return b.ClosedAt() - b.openedAt }

// Level returns the current scalar level of the bin: the total size of
// active items (first dimension for vector bins, which is the max-component
// convention used by size-classifying algorithms).
func (b *Bin) Level() float64 {
	if len(b.level) == 0 {
		return 0
	}
	return b.level[0]
}

// LevelVec returns the current level in every dimension. The returned
// slice is a copy.
func (b *Bin) LevelVec() []float64 {
	out := make([]float64, len(b.level))
	copy(out, b.level)
	return out
}

// Gap returns the remaining scalar capacity, Capacity - Level.
func (b *Bin) Gap() float64 { return b.Capacity - b.Level() }

// GapAt returns the remaining capacity in dimension d, Capacity -
// level[d]. GapAt(0) == Gap().
func (b *Bin) GapAt(d int) float64 { return b.Capacity - b.level[d] }

// MinGap returns the smallest per-dimension gap — the remaining capacity
// of the bin's dominant (most loaded) resource, the scalarization the
// dominant-resource Worst Fit family maximizes. For 1-D bins it equals
// Gap().
func (b *Bin) MinGap() float64 {
	min := b.Capacity - b.level[0]
	for _, lv := range b.level[1:] {
		if g := b.Capacity - lv; g < min {
			min = g
		}
	}
	return min
}

// NumActive returns the number of items currently in the bin.
func (b *Bin) NumActive() int { return len(b.active) }

// Dim returns the number of resource dimensions of the bin.
func (b *Bin) Dim() int { return len(b.level) }

// Fits reports whether the item can be placed without exceeding capacity in
// any dimension (with Eps tolerance).
func (b *Bin) Fits(it item.Item) bool {
	return b.IsOpen() && b.FitsDemand(it.SizeVec())
}

// FitsDemand reports whether a raw demand vector can be placed without
// exceeding capacity in any dimension (with Eps tolerance). It is the
// single admission comparison every vector placement path shares — the
// linear reference scans, the indexed engine's pruned tree descent, and
// Fits above — so the engines cannot disagree on a borderline demand.
func (b *Bin) FitsDemand(v []float64) bool {
	if len(v) != len(b.level) {
		return false
	}
	for d := range v {
		if b.level[d]+v[d] > b.Capacity+Eps {
			return false
		}
	}
	return true
}

// Place adds the item to the bin at time t. It panics if the item does not
// fit, if the bin is closed, or if t precedes the opening time: all of
// these indicate simulator bugs, not recoverable conditions.
func (b *Bin) Place(it item.Item, t float64) {
	if !b.Fits(it) {
		panic(fmt.Sprintf("bins: item %v does not fit in bin %d (level %g)", it, b.Index, b.Level()))
	}
	if t < b.openedAt {
		panic(fmt.Sprintf("bins: placement at %g before bin %d opened at %g", t, b.Index, b.openedAt))
	}
	if _, dup := b.active[it.ID]; dup {
		panic(fmt.Sprintf("bins: item %d already in bin %d", it.ID, b.Index))
	}
	v := it.SizeVec()
	for d := range v {
		b.level[d] += v[d]
	}
	b.active[it.ID] = it
	b.emptySince = math.NaN() // a lingering bin is back in service
	b.placements = append(b.placements, Placement{Item: it, At: t})
}

// Remove takes the item out of the bin at time t. If the bin becomes
// empty it closes at t. Removing an absent item panics.
func (b *Bin) Remove(id item.ID, t float64) {
	it, ok := b.active[id]
	if !ok {
		panic(fmt.Sprintf("bins: item %d not in bin %d", id, b.Index))
	}
	// Back-annotate the actual departure time into the placement history,
	// so post-hoc reconstruction (LevelAt, ItemsAt) works even for items
	// whose departure was unknown at placement time (streaming callers).
	for i := range b.placements {
		if b.placements[i].Item.ID == id {
			b.placements[i].Item.Departure = t
			break
		}
	}
	v := it.SizeVec()
	for d := range v {
		b.level[d] -= v[d]
		if b.level[d] < 0 {
			// Clamp accumulated float error; a materially negative level
			// would have been caught by the capacity invariant tests.
			b.level[d] = 0
		}
	}
	delete(b.active, id)
	if len(b.active) == 0 {
		if b.LingerWhenEmpty {
			b.emptySince = t
		} else {
			b.closedAt = t
		}
	}
}

// Lingering reports whether the bin is open but empty (keep-alive mode).
func (b *Bin) Lingering() bool { return b.IsOpen() && !math.IsNaN(b.emptySince) }

// EmptySince returns the time the bin last became empty; it panics if the
// bin is not lingering.
func (b *Bin) EmptySince() float64 {
	if !b.Lingering() {
		panic(fmt.Sprintf("bins: bin %d is not lingering", b.Index))
	}
	return b.emptySince
}

// Close shuts a lingering bin at time t (>= the time it emptied). It
// panics if the bin is occupied or already closed.
func (b *Bin) Close(t float64) {
	if !b.Lingering() {
		panic(fmt.Sprintf("bins: Close on non-lingering bin %d", b.Index))
	}
	if t < b.emptySince {
		panic(fmt.Sprintf("bins: Close(%g) before bin %d emptied at %g", t, b.Index, b.emptySince))
	}
	b.closedAt = t
	b.emptySince = math.NaN()
}

// Active returns the IDs of items currently in the bin (unordered).
func (b *Bin) Active() []item.ID {
	out := make([]item.ID, 0, len(b.active))
	for id := range b.active {
		out = append(out, id)
	}
	return out
}

// ActiveItems returns the items currently in the bin (unordered).
func (b *Bin) ActiveItems() item.List {
	out := make(item.List, 0, len(b.active))
	for _, it := range b.active {
		out = append(out, it)
	}
	return out
}

// Placements returns every item ever placed in this bin, in placement
// order. The returned slice is shared; callers must not modify it.
func (b *Bin) Placements() []Placement { return b.placements }

// Items returns the items ever placed in the bin, in placement order.
func (b *Bin) Items() item.List {
	out := make(item.List, len(b.placements))
	for i, p := range b.placements {
		out[i] = p.Item
	}
	return out
}

// LevelAt reconstructs the scalar level of the bin at time t from its
// placement history (valid once the simulation has run past t).
func (b *Bin) LevelAt(t float64) float64 {
	var lv float64
	for _, p := range b.placements {
		if p.Item.Interval().Contains(t) {
			lv += p.Item.Size
		}
	}
	return lv
}

// ItemsAt reconstructs the set of items resident in the bin at time t.
func (b *Bin) ItemsAt(t float64) item.List {
	var out item.List
	for _, p := range b.placements {
		if p.Item.Interval().Contains(t) {
			out = append(out, p.Item)
		}
	}
	return out
}

// String renders the bin for diagnostics.
func (b *Bin) String() string {
	state := "open"
	if !b.IsOpen() {
		state = fmt.Sprintf("closed@%g", b.closedAt)
	}
	return fmt.Sprintf("bin{#%d level=%g n=%d opened@%g %s}", b.Index, b.Level(), len(b.active), b.openedAt, state)
}

package bins

import (
	"math"
	"testing"

	"dbp/internal/item"
)

func mkItem(id item.ID, size, a, d float64) item.Item {
	return item.Item{ID: id, Size: size, Arrival: a, Departure: d}
}

func TestOpenPlaceRemoveLifecycle(t *testing.T) {
	b := Open(0, 1.0, 1, 5)
	if !b.IsOpen() || b.OpenedAt() != 5 {
		t.Fatal("bin must open at given time")
	}
	it := mkItem(1, 0.6, 5, 9)
	if !b.Fits(it) {
		t.Fatal("item must fit empty bin")
	}
	b.Place(it, 5)
	if b.Level() != 0.6 || b.NumActive() != 1 {
		t.Fatalf("level = %g, n = %d", b.Level(), b.NumActive())
	}
	b.Remove(1, 9)
	if b.IsOpen() {
		t.Fatal("bin must close when emptied")
	}
	if b.ClosedAt() != 9 || b.Usage() != 4 {
		t.Fatalf("closedAt = %g, usage = %g", b.ClosedAt(), b.Usage())
	}
	up := b.UsagePeriod()
	if up.Lo != 5 || up.Hi != 9 {
		t.Fatalf("usage period = %v", up)
	}
}

func TestFitsCapacity(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	b.Place(mkItem(1, 0.5, 0, 10), 0)
	if !b.Fits(mkItem(2, 0.5, 0, 10)) {
		t.Error("exact fill must fit (0.5+0.5 == 1)")
	}
	if b.Fits(mkItem(3, 0.51, 0, 10)) {
		t.Error("overflow must not fit")
	}
}

func TestFitsEpsilonTolerance(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	// Three thirds do not sum to exactly 1 in float64; Eps must absorb it.
	third := 1.0 / 3.0
	for i := 0; i < 3; i++ {
		it := mkItem(item.ID(i), third, 0, 1)
		if !b.Fits(it) {
			t.Fatalf("third #%d must fit, level %v", i, b.Level())
		}
		b.Place(it, 0)
	}
}

func TestPlacePanicsWhenFull(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	b.Place(mkItem(1, 0.9, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic placing into full bin")
		}
	}()
	b.Place(mkItem(2, 0.5, 0, 1), 0)
}

func TestPlacePanicsOnDuplicate(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	b.Place(mkItem(1, 0.1, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate placement")
		}
	}()
	b.Place(mkItem(1, 0.1, 0, 1), 0)
}

func TestRemovePanicsOnAbsent(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	b.Place(mkItem(1, 0.1, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic removing absent item")
		}
	}()
	b.Remove(99, 1)
}

func TestClosedAtPanicsWhileOpen(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading ClosedAt of open bin")
		}
	}()
	_ = b.ClosedAt()
}

func TestLevelAtAndItemsAtReconstruction(t *testing.T) {
	b := Open(0, 1.0, 1, 0)
	i1 := mkItem(1, 0.3, 0, 4)
	i2 := mkItem(2, 0.4, 2, 6)
	b.Place(i1, 0)
	b.Place(i2, 2)
	b.Remove(1, 4)
	b.Remove(2, 6)

	cases := []struct {
		t     float64
		level float64
		n     int
	}{
		{0, 0.3, 1}, {1.9, 0.3, 1}, {2, 0.7, 2}, {3.9, 0.7, 2},
		{4, 0.4, 1}, {5.9, 0.4, 1}, {6, 0, 0},
	}
	for _, c := range cases {
		if got := b.LevelAt(c.t); math.Abs(got-c.level) > 1e-12 {
			t.Errorf("LevelAt(%g) = %g, want %g", c.t, got, c.level)
		}
		if got := len(b.ItemsAt(c.t)); got != c.n {
			t.Errorf("ItemsAt(%g) has %d items, want %d", c.t, got, c.n)
		}
	}
	if len(b.Placements()) != 2 || b.Placements()[0].Item.ID != 1 {
		t.Error("placements must record history in order")
	}
	if items := b.Items(); len(items) != 2 || items[1].ID != 2 {
		t.Error("Items must list placement order")
	}
}

func TestVectorBin(t *testing.T) {
	b := Open(0, 1.0, 2, 0)
	it := item.Item{ID: 1, Size: 0.8, Sizes: []float64{0.8, 0.2}, Arrival: 0, Departure: 1}
	if !b.Fits(it) {
		t.Fatal("vector item must fit empty 2-D bin")
	}
	b.Place(it, 0)
	lv := b.LevelVec()
	if lv[0] != 0.8 || lv[1] != 0.2 {
		t.Fatalf("level vec = %v", lv)
	}
	// Second item fits in dim 0? 0.8+0.1 <= 1 but dim 1: 0.2+0.9 > 1.
	it2 := item.Item{ID: 2, Size: 0.9, Sizes: []float64{0.1, 0.9}, Arrival: 0, Departure: 1}
	if b.Fits(it2) {
		t.Error("vector admission must check every dimension")
	}
	// Dimension mismatch never fits.
	if b.Fits(mkItem(3, 0.1, 0, 1)) {
		t.Error("1-D item must not fit a 2-D bin")
	}
}

func TestOpenPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Open(0, 1, 0, 0) },  // dim 0
		func() { Open(0, 0, 1, 0) },  // zero capacity
		func() { Open(0, -1, 1, 0) }, // negative capacity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGapAndString(t *testing.T) {
	b := Open(3, 1.0, 1, 0)
	b.Place(mkItem(1, 0.25, 0, 1), 0)
	if b.Gap() != 0.75 {
		t.Errorf("gap = %g", b.Gap())
	}
	if b.String() == "" {
		t.Error("String must render")
	}
	b.Remove(1, 1)
	if b.String() == "" {
		t.Error("String must render closed bins")
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndOne(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("must not be called") })
	called := 0
	ForEach(1, 4, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("called %d times", called)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// Determinism: Sum must be bit-identical across worker counts (results
// are accumulated in index order).
func TestSumDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%500) + 500
		fn := func(i int) float64 { return 1.0 / float64(i+1) }
		a := Sum(n, 1, fn)
		b := Sum(n, 4, fn)
		c := Sum(n, 13, fn)
		return a == b && b == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(-1) < 1 || Workers(0) < 1 {
		t.Fatal("Workers must default to at least 1")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker count must pass through")
	}
}

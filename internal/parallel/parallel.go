// Package parallel provides the small, deterministic fan-out primitives
// the compute-heavy parts of this repository share: the exact-OPT
// integrator solves thousands of independent bin-packing segments, and
// the experiment suite runs independent sweeps. Results are always
// written to caller-owned, index-addressed storage, so parallel runs are
// bit-identical to sequential ones.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (sequentially when workers == 1 or n <= 1). fn must be safe to call
// concurrently for distinct i and must confine its writes to
// index-distinct storage. ForEach returns when all calls finish.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index and collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Sum applies fn to every index and returns the sum of the results,
// accumulated in index order so the floating-point result is identical
// regardless of worker count.
func Sum(n, workers int, fn func(i int) float64) float64 {
	parts := Map(n, workers, fn)
	var s float64
	for _, p := range parts {
		s += p
	}
	return s
}

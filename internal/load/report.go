package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"dbp/internal/load/hist"
	"dbp/internal/serve"
)

// Schema identifies the BENCH_serve.json layout; bump on breaking
// changes so -compare refuses to diff incompatible files.
const Schema = "dbp-load/v1"

// ReportConfig echoes the run configuration into the results file.
type ReportConfig struct {
	Target     string  `json:"target"`
	Mode       string  `json:"mode"`
	Rate       float64 `json:"rate,omitempty"` // requested, open loop only
	Clients    int     `json:"clients"`
	ThinkMS    float64 `json:"think_ms,omitempty"`
	WarmupSec  float64 `json:"warmup_sec"`
	MeasureSec float64 `json:"measure_sec"`
	DrainSec   float64 `json:"drain_sec"`
	Workload   string  `json:"workload"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// Transport carries transport-level tuning (the wire client's pool
	// shape) when the target has any; nil for inproc and http.
	Transport *TransportConfig `json:"transport,omitempty"`
}

// TransportConfig is the wire client's pool tuning, echoed into the
// results file so a benchmark number is reproducible from its report.
type TransportConfig struct {
	Conns    int     `json:"conns,omitempty"`
	Window   int     `json:"window,omitempty"`
	MaxBatch int     `json:"max_batch,omitempty"`
	FlushMS  float64 `json:"flush_ms,omitempty"`
}

// TransportPoint is one point of the HTTP-vs-wire transport curve
// written by dbpload -duel: both transports driven at the same
// requested rate against one daemon, digested to the numbers the
// comparison turns on.
type TransportPoint struct {
	Transport     string  `json:"transport"`
	RequestedRate float64 `json:"requested_rate"`
	AchievedRate  float64 `json:"achieved_rate"`
	ArriveP50US   float64 `json:"arrive_p50_us"`
	ArriveP99US   float64 `json:"arrive_p99_us"`
	DepartP99US   float64 `json:"depart_p99_us"`
}

// PointOf digests a finished run into its transport-curve point.
func PointOf(rep *Report) TransportPoint {
	return TransportPoint{
		Transport:     rep.Config.Target,
		RequestedRate: rep.RequestedRate,
		AchievedRate:  rep.AchievedRate,
		ArriveP50US:   rep.Ops["arrive"].Latency.P50US,
		ArriveP99US:   rep.Ops["arrive"].Latency.P99US,
		DepartP99US:   rep.Ops["depart"].Latency.P99US,
	}
}

// DurabilityPoint is one fsync-policy probe of the durability curve
// written by dbpload -fsync-duel: the same workload and rate driven
// through an in-process dispatcher journaling to disk under each WAL
// policy ("none" = durability off, the in-memory baseline), digested
// to what the durable-ack premium turns on.
type DurabilityPoint struct {
	Fsync         string  `json:"fsync"`
	RequestedRate float64 `json:"requested_rate"`
	AchievedRate  float64 `json:"achieved_rate"`
	ArriveP50US   float64 `json:"arrive_p50_us"`
	ArriveP99US   float64 `json:"arrive_p99_us"`
	DepartP99US   float64 `json:"depart_p99_us"`
	// FsyncP99US is the server-side fsync latency digest (zero when the
	// policy never syncs on the append path); WalBytes the journal
	// footprint at run end.
	FsyncP99US float64 `json:"fsync_p99_us,omitempty"`
	WalBytes   int64   `json:"wal_bytes,omitempty"`
}

// DurabilityPointOf digests a finished run into its durability-curve
// point. fsync names the policy the run's dispatcher journaled under.
func DurabilityPointOf(rep *Report, fsync string) DurabilityPoint {
	p := DurabilityPoint{
		Fsync:         fsync,
		RequestedRate: rep.RequestedRate,
		AchievedRate:  rep.AchievedRate,
		ArriveP50US:   rep.Ops["arrive"].Latency.P50US,
		ArriveP99US:   rep.Ops["arrive"].Latency.P99US,
		DepartP99US:   rep.Ops["depart"].Latency.P99US,
	}
	if rep.Server != nil && rep.Server.Durability != nil {
		p.FsyncP99US = rep.Server.Durability.FsyncLatency.P99US
		p.WalBytes = rep.Server.Durability.WalBytes
	}
	return p
}

// PhaseReport is the throughput accounting of one run phase.
type PhaseReport struct {
	DurationSec float64 `json:"duration_sec"`
	Ops         uint64  `json:"ops"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	// Leaked is the number of jobs still active at the end of the
	// drain phase — their depart failed or the drain deadline hit
	// (drain phase only; nonzero means the service kept state between
	// runs).
	Leaked int `json:"leaked,omitempty"`
}

// OpReport is the measure-phase digest for one op type.
type OpReport struct {
	Latency hist.Summary      `json:"latency"`
	Errors  map[string]uint64 `json:"errors,omitempty"`
}

// ShardSkew summarizes how evenly the splitmix64 routing spread events
// over shards, from the service's per-shard counters.
type ShardSkew struct {
	Shards     int     `json:"shards"`
	MinEvents  int     `json:"min_events"`
	MaxEvents  int     `json:"max_events"`
	MeanEvents float64 `json:"mean_events"`
	// Imbalance is max/mean (1.0 = perfectly even); CV is the
	// coefficient of variation of per-shard event counts.
	Imbalance float64 `json:"imbalance"`
	CV        float64 `json:"cv"`
}

// Report is the BENCH_serve.json document: everything a later PR
// needs to decide whether it regressed the service.
type Report struct {
	Schema string       `json:"schema"`
	Config ReportConfig `json:"config"`

	Phases map[string]PhaseReport `json:"phases"`
	// Ops holds measure-phase latency and errors per op type
	// ("arrive", "depart").
	Ops map[string]OpReport `json:"ops"`

	// RequestedRate / AchievedRate are measure-phase ops/s. Achieved is
	// computed over the real wall-clock measure window — which extends
	// past the nominal one when the target cannot keep the open-loop
	// schedule — so achieved well below requested is the saturation
	// ceiling, not an echo of the schedule.
	RequestedRate float64 `json:"requested_rate,omitempty"`
	AchievedRate  float64 `json:"achieved_rate"`

	ShardSkew *ShardSkew   `json:"shard_skew,omitempty"`
	Server    *serve.Stats `json:"server,omitempty"`
	Ramp      *RampResult  `json:"ramp,omitempty"`
	// Transports is the HTTP-vs-wire curve from a -duel run: every
	// (transport, rate) probe, in run order.
	Transports []TransportPoint `json:"transports,omitempty"`
	// Durability is the fsync-policy curve from a -fsync-duel run: the
	// same rate driven under each WAL policy, in run order.
	Durability []DurabilityPoint `json:"durability,omitempty"`
	Notes      []string          `json:"notes,omitempty"`
}

// report assembles the Report from per-client results.
func (r *runner) report(results []*clientResult) *Report {
	merged := [numOpKinds]*hist.Hist{hist.New(), hist.New()}
	errs := [numOpKinds]map[string]uint64{{}, {}}
	var warmOps, measOps, drainOps uint64
	var leaked int
	// The drain phase's duration is the wall-clock window from the
	// first client entering its drain to the last finishing — not a
	// per-client maximum, which under-reports the window (and inflates
	// throughput) whenever clients enter the drain at different times.
	// A client's drainStart is also the instant it finished its measure
	// ops: when the target cannot keep schedule, open-loop clients run
	// past the nominal window issuing overdue ops, and the measure
	// phase must be billed over the real window or the reported
	// throughput is just the requested rate echoed back.
	var drainFrom, drainTo, measTo time.Time
	for _, res := range results {
		for k := 0; k < int(numOpKinds); k++ {
			merged[k].Merge(res.meas[k])
			for code, n := range res.errs[k] {
				errs[k][code] += n
			}
		}
		warmOps += res.warmOps
		measOps += res.measOps
		drainOps += res.drainOps
		leaked += res.leaked
		if !res.drainStart.IsZero() && (drainFrom.IsZero() || res.drainStart.Before(drainFrom)) {
			drainFrom = res.drainStart
		}
		if res.drainStart.After(measTo) {
			measTo = res.drainStart
		}
		if res.drainEnd.After(drainTo) {
			drainTo = res.drainEnd
		}
	}
	var drainDur time.Duration
	if !drainFrom.IsZero() {
		drainDur = drainTo.Sub(drainFrom)
	}
	o := r.o
	// The measure window runs to the last client's measure exit (== its
	// drainStart), extended past the nominal window only by genuine
	// overrun.
	measSec := o.Measure.Seconds()
	if over := measTo.Sub(r.measureEnd); over > 0 {
		measSec += over.Seconds()
	}
	rep := &Report{
		Schema: Schema,
		Config: ReportConfig{
			Target:     o.Target.Name(),
			Mode:       string(o.Mode),
			Rate:       o.Rate,
			Clients:    o.Clients,
			ThinkMS:    float64(o.Think) / float64(time.Millisecond),
			WarmupSec:  o.Warmup.Seconds(),
			MeasureSec: o.Measure.Seconds(),
			DrainSec:   o.Drain.Seconds(),
			Workload:   o.WorkloadLabel,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Phases: map[string]PhaseReport{},
		Ops:    map[string]OpReport{},
	}
	// Targets with transport-level tuning (the wire pool) echo it.
	if tc, ok := o.Target.(interface{ Config() *TransportConfig }); ok {
		rep.Config.Transport = tc.Config()
	}
	if o.Warmup > 0 {
		rep.Phases["warmup"] = PhaseReport{
			DurationSec: o.Warmup.Seconds(),
			Ops:         warmOps,
			Throughput:  float64(warmOps) / o.Warmup.Seconds(),
		}
	}
	rep.Phases["measure"] = PhaseReport{
		DurationSec: measSec,
		Ops:         measOps,
		Throughput:  float64(measOps) / measSec,
	}
	rep.Phases["drain"] = PhaseReport{
		DurationSec: drainDur.Seconds(),
		Ops:         drainOps,
		Throughput:  safeDiv(float64(drainOps), drainDur.Seconds()),
		Leaked:      leaked,
	}
	for k := 0; k < int(numOpKinds); k++ {
		op := OpReport{Latency: merged[k].Summary()}
		if len(errs[k]) > 0 {
			op.Errors = errs[k]
		}
		rep.Ops[OpKind(k).String()] = op
	}
	if o.Mode == ModeOpen {
		rep.RequestedRate = o.Rate
	}
	rep.AchievedRate = float64(measOps) / measSec
	return rep
}

// skewOf computes shard skew from the service's per-shard counters.
func skewOf(s serve.Stats) *ShardSkew {
	if len(s.PerShard) == 0 {
		return nil
	}
	sk := &ShardSkew{Shards: len(s.PerShard), MinEvents: math.MaxInt}
	var sum, sumSq float64
	for _, sh := range s.PerShard {
		if sh.Events < sk.MinEvents {
			sk.MinEvents = sh.Events
		}
		if sh.Events > sk.MaxEvents {
			sk.MaxEvents = sh.Events
		}
		sum += float64(sh.Events)
		sumSq += float64(sh.Events) * float64(sh.Events)
	}
	n := float64(len(s.PerShard))
	sk.MeanEvents = sum / n
	if sk.MeanEvents > 0 {
		sk.Imbalance = float64(sk.MaxEvents) / sk.MeanEvents
		variance := sumSq/n - sk.MeanEvents*sk.MeanEvents
		if variance > 0 {
			sk.CV = math.Sqrt(variance) / sk.MeanEvents
		}
	}
	return sk
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteFile writes the report as indented JSON (struct field order is
// fixed and map keys are marshaled sorted, so the output is
// byte-deterministic for identical results).
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadReport loads a results file written by WriteFile.
func ReadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("load: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Compare diffs a new report against an old baseline and returns one
// violation string per regression beyond tolPct percent: per-op-type
// p99 latency, and measure-phase throughput. Improvements and
// sub-threshold noise return nil.
func Compare(old, new *Report, tolPct float64) []string {
	var bad []string
	regress := func(oldV, newV float64, higherWorse bool) (float64, bool) {
		if oldV <= 0 {
			return 0, false
		}
		var pct float64
		if higherWorse {
			pct = (newV - oldV) / oldV * 100
		} else {
			pct = (oldV - newV) / oldV * 100
		}
		return pct, pct > tolPct
	}
	for op, o := range old.Ops {
		n, ok := new.Ops[op]
		if !ok || n.Latency.Count == 0 {
			bad = append(bad, fmt.Sprintf("%s: no measurements in new report", op))
			continue
		}
		if pct, r := regress(o.Latency.P99US, n.Latency.P99US, true); r {
			bad = append(bad, fmt.Sprintf("%s p99 regressed %.1f%%: %.1fus -> %.1fus (tolerance %g%%)",
				op, pct, o.Latency.P99US, n.Latency.P99US, tolPct))
		}
	}
	oldThr := old.Phases["measure"].Throughput
	newThr := new.Phases["measure"].Throughput
	if pct, r := regress(oldThr, newThr, false); r {
		bad = append(bad, fmt.Sprintf("measure throughput regressed %.1f%%: %.0f -> %.0f ops/s (tolerance %g%%)",
			pct, oldThr, newThr, tolPct))
	}
	return bad
}

package load

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
)

func testScript(t *testing.T, n int) *Script {
	t.Helper()
	s, err := GenerateScript("uniform", n, 50, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newInProc(t *testing.T) *InProc {
	t.Helper()
	d, err := serve.New(serve.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return &InProc{D: d}
}

// TestScriptInvariants: a generated script contains each job's arrive
// strictly before its depart, exactly once each, and partitioning
// preserves that per client while covering every op.
func TestScriptInvariants(t *testing.T) {
	s := testScript(t, 500)
	if len(s.Ops) != 1000 {
		t.Fatalf("script has %d ops, want 1000", len(s.Ops))
	}
	checkOrder := func(ops []Op) int {
		seen := make(map[item.ID]int) // 1 = arrived, 2 = departed
		for _, op := range ops {
			switch op.Kind {
			case OpArrive:
				if seen[op.ID] != 0 {
					t.Fatalf("job %d arrives twice or after depart", op.ID)
				}
				seen[op.ID] = 1
			case OpDepart:
				if seen[op.ID] != 1 {
					t.Fatalf("job %d departs without arriving", op.ID)
				}
				seen[op.ID] = 2
			}
		}
		for id, st := range seen {
			if st != 2 {
				t.Fatalf("job %d never departs", id)
			}
		}
		return len(seen)
	}
	if jobs := checkOrder(s.Ops); jobs != 500 {
		t.Fatalf("script covers %d jobs, want 500", jobs)
	}
	parts := s.Partition(7)
	total := 0
	for _, p := range parts {
		checkOrder(p.Ops)
		total += len(p.Ops)
	}
	if total != len(s.Ops) {
		t.Fatalf("partitions cover %d ops, want %d", total, len(s.Ops))
	}
}

// TestScriptFromListCopiesSizes pins the script's ownership of its
// demand vectors: the source item.List stays live at the call site
// (rescaled, re-keyed, reused across epochs), so a script op aliasing a
// list item's Sizes would replay whatever the caller last wrote there
// instead of the trace's demand.
func TestScriptFromListCopiesSizes(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.6, Sizes: []float64{0.6, 0.2}, Arrival: 0, Departure: 2},
		{ID: 2, Size: 0.7, Sizes: []float64{0.3, 0.7}, Arrival: 1, Departure: 3},
	}
	s := ScriptFromList(l)
	for i := range l {
		for d := range l[i].Sizes {
			l[i].Sizes[d] = 55.5 // caller reuses its instance
		}
	}
	want := map[item.ID][]float64{1: {0.6, 0.2}, 2: {0.3, 0.7}}
	for _, op := range s.Ops {
		if op.Kind != OpArrive {
			continue
		}
		w := want[op.ID]
		if len(op.Sizes) != len(w) || op.Sizes[0] != w[0] || op.Sizes[1] != w[1] {
			t.Errorf("op for job %d sizes = %v, want %v (caller scribble leaked in)", op.ID, op.Sizes, w)
		}
	}
}

// TestOpenLoopAchievedRate is the pacer acceptance check: at a rate
// the in-process service trivially sustains, the achieved measure-
// phase rate stays within 2% of requested.
func TestOpenLoopAchievedRate(t *testing.T) {
	rep, err := Run(Options{
		Target:  newInProc(t),
		Script:  testScript(t, 2000),
		Mode:    ModeOpen,
		Rate:    1000,
		Clients: 4,
		Warmup:  200 * time.Millisecond,
		Measure: 1500 * time.Millisecond,
		Drain:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev := math.Abs(rep.AchievedRate-1000) / 1000; dev > 0.02 {
		t.Errorf("achieved rate %.1f ops/s deviates %.1f%% from requested 1000 (allowed 2%%)",
			rep.AchievedRate, dev*100)
	}
	for _, op := range []string{"arrive", "depart"} {
		l := rep.Ops[op].Latency
		if l.Count == 0 || l.P50US <= 0 || l.P99US < l.P50US {
			t.Errorf("%s latency summary implausible: %+v", op, l)
		}
	}
	if d := rep.Phases["drain"]; d.Leaked != 0 {
		t.Errorf("drain leaked %d jobs", d.Leaked)
	}
	// After a full drain the service holds no jobs.
	if srv := rep.Server; srv == nil || srv.Arrivals != srv.Departures {
		t.Errorf("server not drained: %+v", rep.Server)
	}
	if rep.ShardSkew == nil || rep.ShardSkew.Shards != 4 || rep.ShardSkew.Imbalance < 1 {
		t.Errorf("shard skew missing or implausible: %+v", rep.ShardSkew)
	}
}

// TestClosedLoop drives the think-time model and checks the same
// consistency properties (no pacing target to verify).
func TestClosedLoop(t *testing.T) {
	rep, err := Run(Options{
		Target:  newInProc(t),
		Script:  testScript(t, 2000),
		Mode:    ModeClosed,
		Clients: 4,
		Think:   2 * time.Millisecond,
		Measure: 800 * time.Millisecond,
		Drain:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AchievedRate <= 0 {
		t.Fatal("closed loop achieved no throughput")
	}
	if rep.RequestedRate != 0 {
		t.Errorf("closed loop reports a requested rate: %g", rep.RequestedRate)
	}
	if srv := rep.Server; srv == nil || srv.Arrivals != srv.Departures {
		t.Errorf("server not drained: %+v", rep.Server)
	}
	// With 2ms think per op and 4 clients the rate is bounded near
	// 4/2ms = 2000 ops/s; far exceeding it would mean think time is
	// being skipped.
	if rep.AchievedRate > 2500 {
		t.Errorf("closed loop rate %.0f exceeds the think-time bound", rep.AchievedRate)
	}
}

// TestHTTPTargetRun exercises the wire transport end to end against
// an httptest server, including error classification.
func TestHTTPTargetRun(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(d))
	t.Cleanup(func() { ts.Close(); d.Close() })

	tgt := NewHTTP(ts.URL, 8, 10*time.Second)
	if err := tgt.Depart(999999, nil); Classify(err) != "unknown_job" {
		t.Fatalf("unknown depart classified %q (err %v)", Classify(err), err)
	}

	rep, err := Run(Options{
		Target:  tgt,
		Script:  testScript(t, 1000),
		Mode:    ModeOpen,
		Rate:    400,
		Clients: 4,
		Measure: 800 * time.Millisecond,
		Drain:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops["arrive"].Latency.Count == 0 {
		t.Fatal("no arrivals measured over HTTP")
	}
	if len(rep.Ops["arrive"].Errors) > 0 || len(rep.Ops["depart"].Errors) > 0 {
		t.Errorf("unexpected errors: %+v %+v", rep.Ops["arrive"].Errors, rep.Ops["depart"].Errors)
	}
	// The probe depart above is the only rejection the server saw.
	if srv := rep.Server; srv == nil || srv.Arrivals != srv.Departures || srv.Rejected["unknown_job"] != 1 {
		t.Errorf("server state after HTTP run: %+v", rep.Server)
	}
	// Server-side latency (the serve satellite) is populated too.
	if srv := rep.Server; srv != nil {
		if l := srv.Latency["arrive"]; l.Count == 0 || l.P99US <= 0 {
			t.Errorf("server-side arrive latency missing: %+v", l)
		}
	}
}

// TestTransportErrorClass: a dead endpoint classifies as "transport",
// not as a service rejection.
func TestTransportErrorClass(t *testing.T) {
	tgt := NewHTTP("http://127.0.0.1:1", 1, 200*time.Millisecond)
	err := tgt.Arrive(1, 0.5, nil, nil)
	if err == nil || Classify(err) != "transport" {
		t.Fatalf("dead endpoint: err=%v class=%q", err, Classify(err))
	}
}

// TestEpochRekeying: a script shorter than the run wraps under fresh
// IDs — no duplicate_job rejections even though op.IDs repeat.
func TestEpochRekeying(t *testing.T) {
	rep, err := Run(Options{
		Target:  newInProc(t),
		Script:  testScript(t, 20), // 40 ops per epoch; run needs hundreds
		Mode:    ModeOpen,
		Rate:    500,
		Clients: 2,
		Measure: 1 * time.Second,
		Drain:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"arrive", "depart"} {
		if n := rep.Ops[op].Errors["duplicate_job"] + rep.Ops[op].Errors["unknown_job"]; n > 0 {
			t.Errorf("%s: %d ID-collision errors across epochs: %+v", op, n, rep.Ops[op].Errors)
		}
	}
	if srv := rep.Server; srv == nil || srv.Arrivals != srv.Departures {
		t.Errorf("server not drained: %+v", rep.Server)
	}
}

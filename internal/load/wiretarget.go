package load

import (
	"errors"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
	"dbp/internal/wire"
)

// WireTarget drives a running dbpserved over the binary batched wire
// protocol (internal/wire): a pool of persistent connections whose
// writers coalesce concurrent ops into batch frames. Op-level
// rejections surface as APIError with the same stable codes as the
// HTTP transport, so the two produce identical error taxonomies in
// the results file.
type WireTarget struct {
	c   *wire.Client
	cfg TransportConfig
}

// NewWire dials the wire endpoint ("host:port") with the given client
// tuning. The caller should Close the target when the run is over.
func NewWire(addr string, opts wire.Options) (*WireTarget, error) {
	c, err := wire.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &WireTarget{c: c, cfg: TransportConfig{
		Conns:    opts.Conns,
		Window:   opts.Window,
		MaxBatch: opts.MaxBatch,
		FlushMS:  float64(opts.Flush) / float64(time.Millisecond),
	}}, nil
}

func (w *WireTarget) Name() string { return "wire" }

// Config reports the effective client tuning for the results file.
func (w *WireTarget) Config() *TransportConfig { cfg := w.cfg; return &cfg }

func (w *WireTarget) Arrive(id item.ID, size float64, sizes []float64, t *float64) error {
	_, err := w.c.Arrive(id, size, sizes, t)
	return wireErr(err)
}

func (w *WireTarget) Depart(id item.ID, t *float64) error {
	_, err := w.c.Depart(id, t)
	return wireErr(err)
}

func (w *WireTarget) Stats() (serve.Stats, error) { return w.c.Stats() }

// Close retires the connection pool.
func (w *WireTarget) Close() error { return w.c.Close() }

// wireErr folds a wire client error into the harness's APIError
// taxonomy: op rejections keep the service's stable code (and the HTTP
// status the JSON API would have used), transport-level failures
// (goaway, dead connections) become code "transport".
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	var oe *wire.OpError
	if errors.As(err, &oe) {
		return &APIError{Status: wire.HTTPStatusOf(oe.Status), Code: wire.CodeOf(oe.Status), Msg: oe.Error()}
	}
	return &APIError{Code: "transport", Msg: err.Error()}
}

package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
)

// Target is the transport a load run drives ops through. Arrive and
// Depart must be safe for concurrent use; Stats is polled once per
// phase boundary. The nil time pointer convention matches
// serve.Dispatcher: nil means "stamp with the service clock".
type Target interface {
	Arrive(id item.ID, size float64, sizes []float64, t *float64) error
	Depart(id item.ID, t *float64) error
	Stats() (serve.Stats, error)
	// Name reports the transport kind for the results file.
	Name() string
}

// APIError is a request the target's service refused: the stable code
// the HTTP layer (or serve.StatusOf) classified it under, plus the
// HTTP status for wire transports. Transport-level failures (refused
// connections, timeouts) use code "transport" and status 0.
type APIError struct {
	Status int
	Code   string
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("load: %s (%d): %s", e.Code, e.Status, e.Msg)
}

// Classify buckets a target error by its stable code: API rejections
// keep the code the server assigned, in-process dispatcher errors get
// the code serve.StatusOf would put on the wire, so both transports
// produce identical error taxonomies in the results file.
func Classify(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	_, code := serve.StatusOf(err)
	return code
}

// InProc drives a serve.Dispatcher directly — no sockets, no JSON.
// This measures the allocation core itself (shard routing, locking,
// stream work) and is the CI smoke target.
type InProc struct {
	D *serve.Dispatcher
}

func (p *InProc) Name() string { return "inproc" }

func (p *InProc) Arrive(id item.ID, size float64, sizes []float64, t *float64) error {
	_, err := p.D.Arrive(id, size, sizes, t)
	return err
}

func (p *InProc) Depart(id item.ID, t *float64) error {
	_, err := p.D.Depart(id, t)
	return err
}

func (p *InProc) Stats() (serve.Stats, error) { return p.D.Stats(), nil }

// HTTPTarget drives a running dbpserved over its JSON API, one
// keep-alive connection per concurrent client.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// NewHTTP builds an HTTP target for the given base URL
// ("http://host:port", no trailing slash). maxConns caps idle
// keep-alive connections and should be >= the number of load clients,
// or connection churn dominates the measurement.
func NewHTTP(base string, maxConns int, timeout time.Duration) *HTTPTarget {
	if maxConns < 1 {
		maxConns = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPTarget{
		base:   base,
		client: &http.Client{Transport: tr, Timeout: timeout},
	}
}

func (h *HTTPTarget) Name() string { return "http" }

// post issues one JSON POST and folds any non-2xx reply into APIError.
func (h *HTTPTarget) post(path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return &APIError{Code: "transport", Msg: err.Error()}
	}
	resp, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return &APIError{Code: "transport", Msg: err.Error()}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) // drain so the connection is reused
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	var er serve.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err != nil || er.Code == "" {
		er.Code = fmt.Sprintf("http_%d", resp.StatusCode)
	}
	return &APIError{Status: resp.StatusCode, Code: er.Code, Msg: er.Error}
}

func (h *HTTPTarget) Arrive(id item.ID, size float64, sizes []float64, t *float64) error {
	return h.post("/v1/arrive", serve.ArriveRequest{ID: id, Size: size, Sizes: sizes, Time: t})
}

func (h *HTTPTarget) Depart(id item.ID, t *float64) error {
	return h.post("/v1/depart", serve.DepartRequest{ID: id, Time: t})
}

func (h *HTTPTarget) Stats() (serve.Stats, error) {
	resp, err := h.client.Get(h.base + "/v1/stats")
	if err != nil {
		return serve.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.Stats{}, fmt.Errorf("load: GET /v1/stats: %s", resp.Status)
	}
	var s serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return serve.Stats{}, fmt.Errorf("load: GET /v1/stats: %w", err)
	}
	return s, nil
}

package load

import (
	"errors"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
)

// nullTarget accepts every op instantly — an infinitely fast service,
// so a ramp over it is limited only by the searched range.
type nullTarget struct{}

func (nullTarget) Arrive(item.ID, float64, []float64, *float64) error { return nil }
func (nullTarget) Depart(item.ID, *float64) error                     { return nil }
func (nullTarget) Stats() (serve.Stats, error)                        { return serve.Stats{}, nil }
func (nullTarget) Name() string                                       { return "null" }

// TestRampProbesMax is the regression test for the doubling-phase gap:
// when Max is not Start times a power of two, the last doubling step
// must clamp to Max so the top of the range is actually probed
// (pre-fix the search stopped at 2000 and reported it as the maximum,
// silently never measuring 3000).
func TestRampProbesMax(t *testing.T) {
	res, err := RampSearch(Options{
		Target: nullTarget{},
		Script: testScript(t, 2000),
		Drain:  time.Second,
	}, RampOptions{
		Start:           1000,
		Max:             3000, // not 1000 * 2^k
		SLOp99:          10 * time.Second,
		MinAchievedFrac: 0.5,
		Probe:           200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawMax bool
	for _, p := range res.Probes {
		if p.Rate > 3000 {
			t.Errorf("probe rate %g exceeds Max 3000", p.Rate)
		}
		if p.Rate == 3000 {
			sawMax = true
		}
	}
	if !sawMax {
		t.Errorf("ramp never probed Max=3000; probes: %+v", res.Probes)
	}
	if res.MaxSustainable != 3000 {
		t.Errorf("MaxSustainable = %g, want 3000 (every rate passes against the null target)",
			res.MaxSustainable)
	}
}

// slowTarget serves every op after a fixed stall — a service with a
// hard capacity of roughly 1/delay ops/s per client.
type slowTarget struct{ delay time.Duration }

func (s slowTarget) Arrive(item.ID, float64, []float64, *float64) error {
	time.Sleep(s.delay)
	return nil
}
func (s slowTarget) Depart(item.ID, *float64) error { time.Sleep(s.delay); return nil }
func (slowTarget) Stats() (serve.Stats, error)      { return serve.Stats{}, nil }
func (slowTarget) Name() string                     { return "slow" }

// TestAchievedRateReflectsSaturation: when the target cannot keep the
// open-loop schedule, the measure window must extend to the real
// wall-clock exit and the achieved rate must report the target's
// ceiling — not echo the requested rate (which is what dividing by the
// nominal window does, since open-loop clients issue every overdue op).
func TestAchievedRateReflectsSaturation(t *testing.T) {
	rep, err := Run(Options{
		Target:  slowTarget{delay: time.Millisecond},
		Script:  testScript(t, 2000),
		Mode:    ModeOpen,
		Rate:    20000, // ~20x what 4 clients at 1ms/op can serve
		Clients: 4,
		Measure: 300 * time.Millisecond,
		Drain:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AchievedRate > 0.5*rep.RequestedRate {
		t.Errorf("achieved %.0f ops/s echoes the requested 20000 against a ~4000 ops/s target",
			rep.AchievedRate)
	}
	if d := rep.Phases["measure"].DurationSec; d <= 0.3 {
		t.Errorf("measure window %.3fs not extended past the nominal 0.3s despite overrun", d)
	}
}

// failDepartTarget accepts arrivals but refuses every departure, so
// each accepted job is permanently stuck on the service.
type failDepartTarget struct{}

var errStuck = errors.New("depart refused")

func (failDepartTarget) Arrive(item.ID, float64, []float64, *float64) error { return nil }
func (failDepartTarget) Depart(item.ID, *float64) error                     { return errStuck }
func (failDepartTarget) Stats() (serve.Stats, error)                        { return serve.Stats{}, nil }
func (failDepartTarget) Name() string                                       { return "faildepart" }

// TestDrainCountsFailedDeparts is the regression test for the drain
// accounting bug: a job whose Depart fails must stay in the active set
// and be reported as leaked, not silently dropped (pre-fix the drain
// loop deleted it regardless, so Leaked was 0 and drain Ops counted
// failures as successes).
func TestDrainCountsFailedDeparts(t *testing.T) {
	rep, err := Run(Options{
		Target:  failDepartTarget{},
		Script:  testScript(t, 2000),
		Mode:    ModeOpen,
		Rate:    2000,
		Clients: 2,
		Measure: 300 * time.Millisecond,
		Drain:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Phases["drain"]
	if d.Leaked == 0 {
		t.Error("drain reports 0 leaked jobs although every depart failed")
	}
	if d.Ops != 0 {
		t.Errorf("drain reports %d successful departs against a target that refuses all", d.Ops)
	}
	if d.Throughput != 0 {
		t.Errorf("drain throughput %g ops/s with zero successful ops", d.Throughput)
	}
	// The window is wall-clock bounded by the drain budget (plus
	// scheduling slack), not a per-client figure that can exceed it.
	if d.DurationSec > 2*0.5 {
		t.Errorf("drain duration %.3fs far exceeds the 0.5s budget", d.DurationSec)
	}
}

package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dbp/internal/serve"
)

// ScaleSchema identifies the BENCH_scale.json layout; bump on breaking
// changes so CompareScale refuses to diff incompatible files.
const ScaleSchema = "dbp-scale/v1"

// SweepOptions configures a multi-core scaling sweep: every
// shards × procs × rate cell runs one open-loop load.Run against a
// fresh in-process dispatcher, so cells are independent measurements.
type SweepOptions struct {
	// Shards, Procs, Rates span the grid. Procs values set GOMAXPROCS
	// for their cells (restored after the sweep); Rates are open-loop
	// targets in ops/s — include one well above the expected ceiling so
	// the sweep finds each configuration's saturation throughput.
	Shards []int
	Procs  []int
	Rates  []float64

	// Dispatcher configuration for every cell.
	Algorithm  string
	Dim        int
	KeepAlive  float64
	QueueDepth int

	// Script and the per-cell phase windows, as in Options.
	Script                 *Script
	Warmup, Measure, Drain time.Duration
	// Clients is the per-cell client count; 0 means the open-loop
	// default (4×GOMAXPROCS, which tracks the cell's procs value).
	Clients int

	WorkloadLabel string
	// Logf, when non-nil, receives one progress line per cell.
	Logf func(format string, args ...any)
}

// ScaleConfig echoes the sweep configuration into the results file.
type ScaleConfig struct {
	Workload   string  `json:"workload"`
	Algorithm  string  `json:"algorithm"`
	WarmupSec  float64 `json:"warmup_sec"`
	MeasureSec float64 `json:"measure_sec"`
	QueueDepth int     `json:"queue_depth"`
	// NumCPU is the machine's usable core count at sweep time; scaling
	// efficiency is normalized by min(procs, NumCPU) — a machine
	// cannot scale past its cores, so the metric isolates dispatcher
	// contention from hardware limits.
	NumCPU int `json:"num_cpu"`
}

// ScaleCell is one grid cell's measurement.
type ScaleCell struct {
	Shards int     `json:"shards"`
	Procs  int     `json:"procs"`
	Rate   float64 `json:"rate"`
	// Achieved is the measure-phase throughput in ops/s; well below
	// Rate means the cell ran saturated and Achieved is the ceiling.
	Achieved    float64           `json:"achieved_ops_per_sec"`
	P99ArriveUS float64           `json:"p99_arrive_us"`
	P99DepartUS float64           `json:"p99_depart_us"`
	Leaked      int               `json:"leaked,omitempty"`
	Errors      map[string]uint64 `json:"errors,omitempty"`
}

// ScalePoint is the scaling summary of one shards × procs
// configuration: its best throughput across the swept rates and the
// derived scaling efficiency.
type ScalePoint struct {
	Shards        int     `json:"shards"`
	Procs         int     `json:"procs"`
	BestOpsPerSec float64 `json:"best_ops_per_sec"`
	// EffectiveCores is min(procs, NumCPU): the parallelism the
	// hardware can actually grant this configuration.
	EffectiveCores int `json:"effective_cores"`
	// Efficiency is BestOpsPerSec / (EffectiveCores × baseline), the
	// fraction of ideal linear scaling the dispatcher delivers; 1.0 is
	// perfect, and values are meaningful even when procs exceeds the
	// machine's cores (the denominator stops growing with them).
	Efficiency float64 `json:"efficiency"`
}

// ScaleReport is the BENCH_scale.json document.
type ScaleReport struct {
	Schema  string       `json:"schema"`
	Config  ScaleConfig  `json:"config"`
	Cells   []ScaleCell  `json:"cells"`
	Scaling []ScalePoint `json:"scaling"`
	// BaselineOpsPerSec is the best throughput of the 1-shard,
	// 1-proc configuration — the single-core sequential reference all
	// efficiencies are computed against.
	BaselineOpsPerSec float64  `json:"baseline_ops_per_sec"`
	Notes             []string `json:"notes,omitempty"`
}

// RunSweep measures the dispatcher's scaling surface: for every
// shards × procs × rate cell it builds a fresh in-process dispatcher,
// drives one open-loop run, and records throughput and p99 latency;
// the per-configuration bests are then folded into scaling-efficiency
// points. GOMAXPROCS is mutated per cell (it is process-global — do
// not run concurrent sweeps) and restored before returning.
func RunSweep(o SweepOptions) (*ScaleReport, error) {
	if len(o.Shards) == 0 || len(o.Procs) == 0 || len(o.Rates) == 0 {
		return nil, fmt.Errorf("load: sweep needs non-empty Shards, Procs, and Rates")
	}
	for _, s := range o.Shards {
		if s < 1 {
			return nil, fmt.Errorf("load: sweep shard count %d < 1", s)
		}
	}
	for _, p := range o.Procs {
		if p < 1 {
			return nil, fmt.Errorf("load: sweep procs %d < 1", p)
		}
	}
	for _, r := range o.Rates {
		if r <= 0 {
			return nil, fmt.Errorf("load: sweep rate %g <= 0", r)
		}
	}
	if o.Script == nil || len(o.Script.Ops) == 0 {
		return nil, fmt.Errorf("load: sweep Options.Script is empty")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := &ScaleReport{
		Schema: ScaleSchema,
		Config: ScaleConfig{
			Workload:   o.WorkloadLabel,
			Algorithm:  o.Algorithm,
			WarmupSec:  o.Warmup.Seconds(),
			MeasureSec: o.Measure.Seconds(),
			QueueDepth: o.QueueDepth,
			NumCPU:     runtime.NumCPU(),
		},
	}
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		for _, shards := range o.Shards {
			for _, rate := range o.Rates {
				cell, err := runCell(o, shards, procs, rate)
				if err != nil {
					return nil, fmt.Errorf("load: sweep cell shards=%d procs=%d rate=%g: %w",
						shards, procs, rate, err)
				}
				rep.Cells = append(rep.Cells, cell)
				if o.Logf != nil {
					o.Logf("sweep: shards=%d procs=%d rate=%.0f: achieved %.0f ops/s, p99 arrive %.0fus depart %.0fus",
						shards, procs, rate, cell.Achieved, cell.P99ArriveUS, cell.P99DepartUS)
				}
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	rep.fold()
	return rep, nil
}

// runCell executes one grid cell against a fresh dispatcher.
func runCell(o SweepOptions, shards, procs int, rate float64) (ScaleCell, error) {
	d, err := serve.New(serve.Config{
		Algorithm:  o.Algorithm,
		Shards:     shards,
		Dim:        o.Dim,
		KeepAlive:  o.KeepAlive,
		QueueDepth: o.QueueDepth,
	})
	if err != nil {
		return ScaleCell{}, err
	}
	defer d.Close()
	run, err := Run(Options{
		Target:        &InProc{D: d},
		Script:        o.Script,
		Mode:          ModeOpen,
		Rate:          rate,
		Clients:       o.Clients,
		Warmup:        o.Warmup,
		Measure:       o.Measure,
		Drain:         o.Drain,
		WorkloadLabel: o.WorkloadLabel,
	})
	if err != nil {
		return ScaleCell{}, err
	}
	cell := ScaleCell{
		Shards:      shards,
		Procs:       procs,
		Rate:        rate,
		Achieved:    run.AchievedRate,
		P99ArriveUS: run.Ops[OpArrive.String()].Latency.P99US,
		P99DepartUS: run.Ops[OpDepart.String()].Latency.P99US,
		Leaked:      run.Phases["drain"].Leaked,
	}
	for _, op := range run.Ops {
		for code, n := range op.Errors {
			if cell.Errors == nil {
				cell.Errors = make(map[string]uint64)
			}
			cell.Errors[code] += n
		}
	}
	return cell, nil
}

// fold condenses the cell grid into per-configuration scaling points
// and computes efficiencies against the 1-shard/1-proc baseline (or,
// when the grid does not include it, the smallest configuration swept,
// with a note).
func (r *ScaleReport) fold() {
	type key struct{ shards, procs int }
	best := make(map[key]float64)
	for _, c := range r.Cells {
		k := key{c.Shards, c.Procs}
		if c.Achieved > best[k] {
			best[k] = c.Achieved
		}
	}
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].procs != keys[j].procs {
			return keys[i].procs < keys[j].procs
		}
		return keys[i].shards < keys[j].shards
	})

	base, ok := best[key{1, 1}]
	if !ok {
		k := keys[0]
		base = best[k]
		r.Notes = append(r.Notes, fmt.Sprintf(
			"grid has no shards=1/procs=1 cell; efficiencies are relative to shards=%d/procs=%d", k.shards, k.procs))
	}
	r.BaselineOpsPerSec = base
	for _, k := range keys {
		eff := 0.0
		cores := k.procs
		if n := r.Config.NumCPU; cores > n {
			cores = n
		}
		if base > 0 && cores > 0 {
			eff = best[k] / (float64(cores) * base)
		}
		r.Scaling = append(r.Scaling, ScalePoint{
			Shards:         k.shards,
			Procs:          k.procs,
			BestOpsPerSec:  best[k],
			EffectiveCores: cores,
			Efficiency:     eff,
		})
	}
}

// WriteFile writes the scale report as indented JSON (deterministic
// for identical results, like Report.WriteFile).
func (r *ScaleReport) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadScaleReport loads a results file written by ScaleReport.WriteFile.
func ReadScaleReport(path string) (*ScaleReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ScaleReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if r.Schema != ScaleSchema {
		return nil, fmt.Errorf("load: %s: schema %q, want %q", path, r.Schema, ScaleSchema)
	}
	return &r, nil
}

// ScaleComparable reports whether a baseline scale report can be
// meaningfully regression-diffed against one produced on this run. It
// returns "" when they are comparable, or a human-readable reason to
// skip the comparison: scaling throughput is a function of the
// machine's core count, so a baseline recorded on different hardware
// would fail (or pass) the gate for reasons that have nothing to do
// with the code under test. Callers should warn and skip (exit 0), not
// fail, on a non-empty reason.
func ScaleComparable(old, new *ScaleReport) string {
	if old.Config.NumCPU == 0 {
		return "baseline records no num_cpu (written before the field existed); re-baseline on this machine"
	}
	if old.Config.NumCPU != new.Config.NumCPU {
		return fmt.Sprintf("baseline was measured on %d CPUs, this machine has %d; re-baseline instead of comparing",
			old.Config.NumCPU, new.Config.NumCPU)
	}
	return ""
}

// CompareScale diffs a new scale report against a baseline and returns
// one violation string per scaling point whose best throughput
// regressed beyond tolPct percent (points only the baseline has are
// flagged too — a shrunken grid must be deliberate). Efficiency is
// derived from the same numbers, so throughput is the gated quantity;
// absolute values vary across machines, which is what the tolerance
// absorbs.
func CompareScale(old, new *ScaleReport, tolPct float64) []string {
	var bad []string
	find := func(r *ScaleReport, shards, procs int) *ScalePoint {
		for i := range r.Scaling {
			if r.Scaling[i].Shards == shards && r.Scaling[i].Procs == procs {
				return &r.Scaling[i]
			}
		}
		return nil
	}
	for _, o := range old.Scaling {
		n := find(new, o.Shards, o.Procs)
		if n == nil {
			bad = append(bad, fmt.Sprintf("shards=%d/procs=%d: missing from new report", o.Shards, o.Procs))
			continue
		}
		if o.BestOpsPerSec <= 0 {
			continue
		}
		pct := (o.BestOpsPerSec - n.BestOpsPerSec) / o.BestOpsPerSec * 100
		if pct > tolPct {
			bad = append(bad, fmt.Sprintf("shards=%d/procs=%d throughput regressed %.1f%%: %.0f -> %.0f ops/s (tolerance %g%%)",
				o.Shards, o.Procs, pct, o.BestOpsPerSec, n.BestOpsPerSec, tolPct))
		}
	}
	return bad
}

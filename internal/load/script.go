package load

import (
	"fmt"
	"sort"

	"dbp/internal/item"
	"dbp/internal/workload"
)

// Op is one load-generator operation. Scripts carry the *structure* of
// a workload — which job arrives or departs next, with what demand —
// while the pacer decides *when* each op is issued on the wall clock.
// Replaying a trace's event order at a different speed preserves its
// concurrency profile (the active-population trajectory), which is
// what stresses the allocator; the trace's own timestamps are not
// replayed.
type Op struct {
	Kind  OpKind
	ID    item.ID
	Size  float64
	Sizes []float64
}

// OpKind distinguishes arrivals from departures.
type OpKind uint8

const (
	OpArrive OpKind = iota
	OpDepart
	numOpKinds
)

// String names the op kind as it appears in results ("arrive"/"depart").
func (k OpKind) String() string {
	if k == OpArrive {
		return "arrive"
	}
	return "depart"
}

// Script is a self-contained op sequence: every job that arrives in it
// also departs in it, in trace-event order. maxID bounds the job IDs
// used, so replays can re-key subsequent epochs without collisions.
type Script struct {
	Ops   []Op
	maxID item.ID
}

// ScriptFromList flattens an instance into its arrive/depart event
// sequence, ordered by event time (ties: departures first, matching
// the half-open [arrival, departure) interval convention, then by ID).
func ScriptFromList(l item.List) *Script {
	type ev struct {
		t      float64
		depart bool
		it     item.Item
	}
	evs := make([]ev, 0, 2*len(l))
	var maxID item.ID
	for _, it := range l {
		evs = append(evs,
			ev{t: it.Arrival, it: it},
			ev{t: it.Departure, depart: true, it: it})
		if it.ID > maxID {
			maxID = it.ID
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		if evs[i].depart != evs[j].depart {
			return evs[i].depart
		}
		return evs[i].it.ID < evs[j].it.ID
	})
	s := &Script{Ops: make([]Op, len(evs)), maxID: maxID}
	for i, e := range evs {
		if e.depart {
			s.Ops[i] = Op{Kind: OpDepart, ID: e.it.ID}
		} else {
			// Copy the demand vector so the script owns its ops: the
			// caller's item.List stays live (rescaling, re-keying, reuse
			// across epochs), and an op aliasing it would replay whatever
			// the caller last wrote there instead of the trace's demand.
			s.Ops[i] = Op{Kind: OpArrive, ID: e.it.ID, Size: e.it.Size,
				Sizes: append([]float64(nil), e.it.Sizes...)}
		}
	}
	return s
}

// Partition splits the script into n per-client scripts by job ID
// (a job's arrive and depart always land on the same client, in
// order), preserving the global relative order within each client.
// Each client then needs no cross-client coordination to keep every
// depart after its arrive.
func (s *Script) Partition(n int) []*Script {
	parts := make([]*Script, n)
	for i := range parts {
		parts[i] = &Script{maxID: s.maxID}
	}
	for _, op := range s.Ops {
		c := int(uint64(op.ID) % uint64(n))
		parts[c].Ops = append(parts[c].Ops, op)
	}
	return parts
}

// GenerateScript builds a script from any registered workload scenario
// (spec "name" or "name:key=value,..." — see workload.Describe): n jobs
// with duration ratio mu, arrival rate rate (which, together with mean
// duration, fixes the steady-state active population — the trace's
// concurrency profile), seeded for reproducibility. dim > 1 draws
// vector demands. An empty spec defaults to "uniform".
func GenerateScript(spec string, n int, rate, mu float64, seed int64, dim int) (*Script, error) {
	if spec == "" {
		spec = "uniform"
	}
	l, err := workload.FromSpec(spec, n, rate, mu, seed, dim)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	return ScriptFromList(l), nil
}

package load

import (
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRunSweepGrid runs a tiny grid through the real dispatcher and
// checks the report's structure: full cell coverage, per-configuration
// scaling points with the effective-core normalization, and the
// 1-shard/1-proc baseline.
func TestRunSweepGrid(t *testing.T) {
	rep, err := RunSweep(SweepOptions{
		Shards:        []int{1, 2},
		Procs:         []int{1},
		Rates:         []float64{500, 1500},
		Algorithm:     "firstfit",
		Script:        testScript(t, 2000),
		Warmup:        50 * time.Millisecond,
		Measure:       250 * time.Millisecond,
		Drain:         2 * time.Second,
		Clients:       2,
		WorkloadLabel: "uniform-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ScaleSchema {
		t.Errorf("schema %q, want %q", rep.Schema, ScaleSchema)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("swept %d cells, want 2 shards × 1 procs × 2 rates = 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Achieved <= 0 {
			t.Errorf("cell shards=%d rate=%g achieved nothing", c.Shards, c.Rate)
		}
		if c.Leaked != 0 {
			t.Errorf("cell shards=%d rate=%g leaked %d jobs", c.Shards, c.Rate, c.Leaked)
		}
	}
	if len(rep.Scaling) != 2 {
		t.Fatalf("%d scaling points, want one per (shards, procs) = 2", len(rep.Scaling))
	}
	if rep.BaselineOpsPerSec <= 0 {
		t.Fatal("missing 1-shard/1-proc baseline")
	}
	for _, p := range rep.Scaling {
		if p.EffectiveCores < 1 || p.EffectiveCores > rep.Config.NumCPU {
			t.Errorf("point %+v: effective cores outside [1, NumCPU=%d]", p, rep.Config.NumCPU)
		}
		want := p.BestOpsPerSec / (float64(p.EffectiveCores) * rep.BaselineOpsPerSec)
		if diff := p.Efficiency - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("point shards=%d/procs=%d efficiency %g, want %g", p.Shards, p.Procs, p.Efficiency, want)
		}
	}
	if base := rep.Scaling[0]; base.Shards != 1 || base.Procs != 1 || base.Efficiency != 1 {
		t.Errorf("first point should be the baseline at efficiency 1.0, got %+v", base)
	}

	// Roundtrip through the results file.
	path := filepath.Join(t.TempDir(), "scale.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.BaselineOpsPerSec != rep.BaselineOpsPerSec {
		t.Errorf("roundtrip mismatch: %+v vs %+v", back, rep)
	}

	// CompareScale: identical reports pass, an injected throughput
	// collapse and a missing point are both flagged.
	if bad := CompareScale(rep, back, 10); len(bad) != 0 {
		t.Errorf("self-compare flagged: %v", bad)
	}
	worse := *back
	worse.Scaling = append([]ScalePoint(nil), back.Scaling...)
	worse.Scaling[1].BestOpsPerSec = rep.Scaling[1].BestOpsPerSec / 10
	bad := CompareScale(rep, &worse, 10)
	if len(bad) != 1 {
		t.Errorf("regressed point flagged %d times, want 1: %v", len(bad), bad)
	}
	shrunk := *back
	shrunk.Scaling = back.Scaling[:1]
	bad = CompareScale(rep, &shrunk, 10)
	if len(bad) != 1 {
		t.Errorf("missing point flagged %d times, want 1: %v", len(bad), bad)
	}
}

// TestRunSweepValidation: malformed grids are refused up front.
func TestRunSweepValidation(t *testing.T) {
	script := testScript(t, 10)
	base := SweepOptions{
		Shards: []int{1}, Procs: []int{1}, Rates: []float64{100},
		Script: script, Measure: 10 * time.Millisecond,
	}
	for name, mut := range map[string]func(*SweepOptions){
		"no shards":  func(o *SweepOptions) { o.Shards = nil },
		"no procs":   func(o *SweepOptions) { o.Procs = nil },
		"no rates":   func(o *SweepOptions) { o.Rates = nil },
		"zero shard": func(o *SweepOptions) { o.Shards = []int{0} },
		"zero proc":  func(o *SweepOptions) { o.Procs = []int{0} },
		"zero rate":  func(o *SweepOptions) { o.Rates = []float64{0} },
		"no script":  func(o *SweepOptions) { o.Script = nil },
	} {
		o := base
		mut(&o)
		if _, err := RunSweep(o); err == nil {
			t.Errorf("%s: sweep accepted a malformed grid", name)
		}
	}
}

// TestScaleComparable is the regression test for the cross-machine
// sweep-compare bug: a baseline recorded on a machine with a different
// core count used to flow straight into CompareScale and exit 2 with
// phantom "regressions". The gate must flag such baselines (including
// pre-num_cpu ones) for a warn-and-skip, and stay silent for a
// same-machine baseline.
func TestScaleComparable(t *testing.T) {
	mk := func(numCPU int, ops float64) *ScaleReport {
		return &ScaleReport{
			Schema: ScaleSchema,
			Config: ScaleConfig{NumCPU: numCPU},
			Scaling: []ScalePoint{
				{Shards: 1, Procs: 1, BestOpsPerSec: ops, EffectiveCores: 1, Efficiency: 1},
			},
		}
	}
	cur := mk(runtime.NumCPU(), 1000)

	if why := ScaleComparable(mk(runtime.NumCPU(), 4000), cur); why != "" {
		t.Fatalf("same-machine baseline flagged incomparable: %q", why)
	}

	// Doctored baseline: a much faster machine with a different core
	// count. Without the gate, CompareScale would report a phantom
	// regression; with it, the caller warns and skips.
	doctored := mk(runtime.NumCPU()+7, 1_000_000)
	why := ScaleComparable(doctored, cur)
	if why == "" {
		t.Fatal("cross-machine baseline not flagged")
	}
	if !strings.Contains(why, strconv.Itoa(runtime.NumCPU()+7)) || !strings.Contains(why, strconv.Itoa(runtime.NumCPU())) {
		t.Fatalf("reason %q does not name both core counts", why)
	}
	if bad := CompareScale(doctored, cur, 25); len(bad) == 0 {
		t.Fatal("test premise broken: the doctored baseline no longer trips CompareScale")
	}

	// A pre-num_cpu baseline (field absent => 0) is also incomparable.
	if why := ScaleComparable(mk(0, 4000), cur); why == "" {
		t.Fatal("num_cpu-less baseline not flagged")
	}

	// The gate survives the file round trip the CLI actually performs.
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := doctored.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if why := ScaleComparable(back, cur); why == "" {
		t.Fatal("round-tripped cross-machine baseline not flagged")
	}
}

// Package hist provides a log-bucketed latency histogram in the style
// of HDR histograms: fixed memory, constant-time recording, bounded
// relative error, and lossless merging. It is the measurement core
// shared by the load-generation driver (internal/load), which merges
// one histogram per client goroutine, and by the allocation service
// (internal/serve), which records into one shared histogram per op
// type on the request path.
//
// Values are latencies in nanoseconds. Buckets [0, nSub) hold exact
// values; above that each power of two is split into nSub log-spaced
// sub-buckets, so any quantile estimate is within a relative error of
// 1/nSub (3.2% for nSub = 32) of the true recorded value. The exact
// minimum, maximum, count, and sum are tracked separately.
//
// All methods are safe for concurrent use: recording is atomic adds
// plus CAS loops for min/max, and readers observe a (possibly slightly
// stale) consistent-enough view without locking writers out.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits fixes the resolution: 2^subBits sub-buckets per octave.
	subBits = 5
	nSub    = 1 << subBits
	// maxExp is the largest exponent a nanosecond latency can carry in
	// an int64 (2^62 ns ≈ 146 years); values at or above the last
	// bucket's range are clamped into it rather than dropped.
	maxExp   = 62
	nBuckets = nSub + (maxExp-subBits+1)*nSub
)

// Hist is a mergeable log-bucketed latency histogram. The zero value
// is NOT ready to use; call New.
type Hist struct {
	counts [nBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // exact; math.MaxInt64 when empty
	max    atomic.Int64 // exact; -1 when empty
}

// New returns an empty histogram.
func New() *Hist {
	h := &Hist{}
	h.min.Store(math.MaxInt64)
	h.max.Store(-1)
	return h
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < nSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= subBits
	if exp > maxExp {
		exp = maxExp
	}
	shift := exp - subBits
	sub := int((uint64(v) >> shift) & (nSub - 1))
	return nSub + (exp-subBits)*nSub + sub
}

// bucketMid returns the representative (midpoint) value of bucket b.
func bucketMid(b int) int64 {
	if b < nSub {
		return int64(b) // exact bucket
	}
	g := (b - nSub) / nSub // exponent group: exp = subBits + g
	sub := (b - nSub) % nSub
	shift := g // = exp - subBits
	lo := int64(nSub+sub) << shift
	return lo + (int64(1)<<shift)/2
}

// RecordNS records one latency in nanoseconds. Negative values clamp
// to zero (a clock hiccup, not data).
func (h *Hist) RecordNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.min.Load()
		if ns >= m || h.min.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Record records one latency as a time.Duration.
func (h *Hist) Record(d time.Duration) { h.RecordNS(d.Nanoseconds()) }

// Merge adds o's recorded values into h. Both histograms may be
// concurrently written during the merge; h then reflects some
// interleaving-consistent superset of o's state at call time.
func (h *Hist) Merge(o *Hist) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if om := o.min.Load(); om != math.MaxInt64 {
		for {
			m := h.min.Load()
			if om >= m || h.min.CompareAndSwap(m, om) {
				break
			}
		}
	}
	if om := o.max.Load(); om >= 0 {
		for {
			m := h.max.Load()
			if om <= m || h.max.CompareAndSwap(m, om) {
				break
			}
		}
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count.Load() }

// MinNS returns the exact minimum recorded value, or 0 when empty.
func (h *Hist) MinNS() int64 {
	if m := h.min.Load(); m != math.MaxInt64 {
		return m
	}
	return 0
}

// MaxNS returns the exact maximum recorded value, or 0 when empty.
func (h *Hist) MaxNS() int64 {
	if m := h.max.Load(); m >= 0 {
		return m
	}
	return 0
}

// MeanNS returns the exact mean of recorded values, or 0 when empty.
func (h *Hist) MeanNS() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the latency (ns) at quantile q in [0, 1]: the
// smallest bucket value v such that at least ceil(q*count) recorded
// values are <= its bucket. q <= 0 returns the exact minimum, q >= 1
// the exact maximum; interior quantiles carry the bucket's relative
// error (<= 1/32). Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.MinNS()
	}
	if q >= 1 {
		return h.MaxNS()
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			mid := bucketMid(i)
			// Clamp to the exact extrema: the first/last occupied
			// bucket's midpoint can overshoot them.
			if mx := h.MaxNS(); mid > mx {
				mid = mx
			}
			if mn := h.MinNS(); mid < mn {
				mid = mn
			}
			return mid
		}
	}
	return h.MaxNS() // racing writers; fall back to the exact max
}

// Summary is the standard percentile digest of a histogram, in
// microseconds (floats, so sub-microsecond latencies stay visible).
// It is the unit both BENCH_serve.json and GET /v1/stats report.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summary digests the histogram into its reporting form.
func (h *Hist) Summary() Summary {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return Summary{
		Count:  h.Count(),
		MeanUS: h.MeanNS() / 1e3,
		P50US:  us(h.Quantile(0.50)),
		P90US:  us(h.Quantile(0.90)),
		P99US:  us(h.Quantile(0.99)),
		P999US: us(h.Quantile(0.999)),
		MaxUS:  us(h.MaxNS()),
	}
}

package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the value at rank ceil(q*n) of the sorted
// sample — the definition Hist.Quantile approximates.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles records the sample and asserts every interior
// quantile is within the histogram's design error (1/32 relative,
// with one extra bucket of slack for rank-vs-boundary effects).
func checkQuantiles(t *testing.T, name string, sample []int64) {
	t.Helper()
	h := New()
	for _, v := range sample {
		h.RecordNS(v)
	}
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		relErr := math.Abs(float64(got-want)) / math.Max(float64(want), 1)
		if relErr > 2.0/nSub {
			t.Errorf("%s: q=%g: hist %d vs exact %d (rel err %.4f > %.4f)",
				name, q, got, want, relErr, 2.0/nSub)
		}
	}
	if h.Quantile(0) != sorted[0] || h.Quantile(1) != sorted[len(sorted)-1] {
		t.Errorf("%s: extreme quantiles %d/%d, want exact %d/%d",
			name, h.Quantile(0), h.Quantile(1), sorted[0], sorted[len(sorted)-1])
	}
	if h.Count() != uint64(len(sample)) {
		t.Errorf("%s: count %d, want %d", name, h.Count(), len(sample))
	}
	var sum float64
	for _, v := range sample {
		sum += float64(v)
	}
	if mean := h.MeanNS(); math.Abs(mean-sum/float64(len(sample))) > 1e-6*sum {
		t.Errorf("%s: mean %g, want %g", name, mean, sum/float64(len(sample)))
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]int64, 20000)
	for i := range sample {
		sample[i] = rng.Int63n(5_000_000) // up to 5ms in ns
	}
	checkQuantiles(t, "uniform", sample)
}

func TestQuantileLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]int64, 20000)
	for i := range sample {
		// exp(N(12, 1)) ns: median ~163us, heavy right tail.
		sample[i] = int64(math.Exp(12 + rng.NormFloat64()))
	}
	checkQuantiles(t, "lognormal", sample)
}

// TestMergeAssociativity: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) must agree
// bucket for bucket, and match recording everything into one histogram.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([][]int64, 3)
	var all []int64
	for p := range parts {
		parts[p] = make([]int64, 5000)
		for i := range parts[p] {
			parts[p][i] = int64(math.Exp(8 + 3*rng.Float64()))
			all = append(all, parts[p][i])
		}
	}
	fill := func(vals []int64) *Hist {
		h := New()
		for _, v := range vals {
			h.RecordNS(v)
		}
		return h
	}
	left := fill(parts[0]) // (a ⊕ b) ⊕ c
	left.Merge(fill(parts[1]))
	left.Merge(fill(parts[2]))
	bc := fill(parts[1]) // a ⊕ (b ⊕ c)
	bc.Merge(fill(parts[2]))
	right := fill(parts[0])
	right.Merge(bc)
	direct := fill(all)

	for _, pair := range [][2]*Hist{{left, right}, {left, direct}} {
		x, y := pair[0], pair[1]
		for i := range x.counts {
			if x.counts[i].Load() != y.counts[i].Load() {
				t.Fatalf("bucket %d differs: %d vs %d", i, x.counts[i].Load(), y.counts[i].Load())
			}
		}
		if x.Count() != y.Count() || x.MinNS() != y.MinNS() || x.MaxNS() != y.MaxNS() || x.MeanNS() != y.MeanNS() {
			t.Fatalf("digests differ: %+v vs %+v", x.Summary(), y.Summary())
		}
	}
}

// TestEdges exercises zero, negative (clamped), and overflow values.
func TestEdges(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.MaxNS() != 0 || h.MinNS() != 0 || h.MeanNS() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
	if s := h.Summary(); s.Count != 0 || s.P99US != 0 {
		t.Fatalf("empty summary = %+v", s)
	}

	h.RecordNS(0)
	if h.Count() != 1 || h.Quantile(0.5) != 0 || h.MaxNS() != 0 {
		t.Fatalf("after zero: count=%d q50=%d max=%d", h.Count(), h.Quantile(0.5), h.MaxNS())
	}

	h.RecordNS(-5) // clamps to 0
	if h.Count() != 2 || h.MinNS() != 0 || h.Quantile(1) != 0 {
		t.Fatal("negative value must clamp to zero")
	}

	// The largest int64 lands in the top bucket rather than panicking,
	// and the exact max is preserved.
	h2 := New()
	h2.RecordNS(math.MaxInt64)
	h2.RecordNS(math.MaxInt64 - 1)
	if h2.Count() != 2 || h2.MaxNS() != math.MaxInt64 {
		t.Fatalf("overflow: count=%d max=%d", h2.Count(), h2.MaxNS())
	}
	if q := h2.Quantile(0.5); q <= 0 {
		t.Fatalf("overflow quantile = %d, want positive", q)
	}

	// Exact sub-nSub buckets: small integers quantile exactly.
	h3 := New()
	for v := int64(1); v <= 10; v++ {
		h3.RecordNS(v)
	}
	if q := h3.Quantile(0.5); q != 5 {
		t.Fatalf("exact-bucket median = %d, want 5", q)
	}
}

func TestBucketMonotone(t *testing.T) {
	// bucketOf must be monotone and bucketMid must land inside the
	// bucket's value range across octave boundaries.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 127, 128, 1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if v < nSub {
			if bucketMid(b) != v {
				t.Fatalf("exact bucket %d has mid %d", v, bucketMid(b))
			}
		} else if mid := bucketMid(b); mid <= 0 {
			t.Fatalf("bucketMid(%d) = %d", b, mid)
		}
	}
}

package load

import (
	"net"
	"testing"
	"time"

	"dbp/internal/serve"
	"dbp/internal/wire"
)

// TestWireTargetRun exercises the binary transport end to end through
// the full harness: a real dispatcher behind a wire.Server on
// loopback, driven open-loop by the pooled pipelining client, with the
// error taxonomy and report config echo checked along the way.
func TestWireTargetRun(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.NewServer(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ws.Serve(ln) }()
	t.Cleanup(func() {
		ws.Close()
		if err := <-done; err != nil {
			t.Errorf("wire serve: %v", err)
		}
		d.Close()
	})

	tgt, err := NewWire(ln.Addr().String(), wire.Options{Conns: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() })

	// Rejections carry the same stable codes as the HTTP transport.
	if err := tgt.Depart(999999, nil); Classify(err) != "unknown_job" {
		t.Fatalf("unknown depart classified %q (err %v)", Classify(err), err)
	}

	rep, err := Run(Options{
		Target:  tgt,
		Script:  testScript(t, 1000),
		Mode:    ModeOpen,
		Rate:    400,
		Clients: 4,
		Measure: 800 * time.Millisecond,
		Drain:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Target != "wire" {
		t.Fatalf("report target %q", rep.Config.Target)
	}
	if rep.Config.Transport == nil || rep.Config.Transport.Conns != 2 || rep.Config.Transport.MaxBatch != 16 {
		t.Fatalf("transport tuning not echoed: %+v", rep.Config.Transport)
	}
	if rep.Ops["arrive"].Latency.Count == 0 {
		t.Fatal("no arrivals measured over the wire")
	}
	if len(rep.Ops["arrive"].Errors) > 0 || len(rep.Ops["depart"].Errors) > 0 {
		t.Errorf("unexpected errors: %+v %+v", rep.Ops["arrive"].Errors, rep.Ops["depart"].Errors)
	}
	// The Stats frame feeds the same server digest as /v1/stats, and
	// the run went through the batch path.
	if srv := rep.Server; srv == nil || srv.Arrivals != srv.Departures || srv.Rejected["unknown_job"] != 1 {
		t.Errorf("server state after wire run: %+v", rep.Server)
	} else if srv.Batches == 0 || srv.BatchOps == 0 {
		t.Errorf("wire run did not use the batch path: %+v", srv)
	}
}

// TestWireTransportErrorClass: a dead endpoint is a dial error; a
// retired client classifies as "transport", never a service code.
func TestWireTransportErrorClass(t *testing.T) {
	if _, err := NewWire("127.0.0.1:1", wire.Options{Conns: 1, DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial of a dead endpoint succeeded")
	}

	d, err := serve.New(serve.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ws := wire.NewServer(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	defer ws.Close()
	tgt, err := NewWire(ln.Addr().String(), wire.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	tgt.Close()
	err = tgt.Arrive(1, 0.5, nil, nil)
	if err == nil || Classify(err) != "transport" {
		t.Fatalf("closed client: err=%v class=%q", err, Classify(err))
	}
}

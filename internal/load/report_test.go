package load

import (
	"path/filepath"
	"strings"
	"testing"

	"dbp/internal/serve"
)

// statsWithEvents fabricates per-shard stats with the given event
// counts.
func statsWithEvents(events ...int) serve.Stats {
	s := serve.Stats{Shards: len(events)}
	for i, n := range events {
		s.PerShard = append(s.PerShard, serve.ShardStats{Shard: i, Events: n})
	}
	return s
}

// baseReport builds a plausible baseline for Compare tests.
func baseReport() *Report {
	r := &Report{
		Schema: Schema,
		Phases: map[string]PhaseReport{
			"measure": {DurationSec: 10, Ops: 50000, Throughput: 5000},
		},
		Ops: map[string]OpReport{
			"arrive": {},
			"depart": {},
		},
	}
	a := r.Ops["arrive"]
	a.Latency.Count = 25000
	a.Latency.P50US = 100
	a.Latency.P99US = 1000
	r.Ops["arrive"] = a
	d := r.Ops["depart"]
	d.Latency.Count = 25000
	d.Latency.P50US = 80
	d.Latency.P99US = 800
	r.Ops["depart"] = d
	return r
}

func TestCompareDetectsP99Regression(t *testing.T) {
	old, new := baseReport(), baseReport()
	a := new.Ops["arrive"]
	a.Latency.P99US = 1500 // injected 50% p99 regression
	new.Ops["arrive"] = a

	bad := Compare(old, new, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "arrive p99 regressed 50.0%") {
		t.Fatalf("violations = %v, want one arrive p99 regression", bad)
	}
	// 50% is inside a 60% tolerance.
	if bad := Compare(old, new, 60); len(bad) != 0 {
		t.Fatalf("violations at 60%% tolerance = %v, want none", bad)
	}
}

func TestCompareDetectsThroughputRegression(t *testing.T) {
	old, new := baseReport(), baseReport()
	m := new.Phases["measure"]
	m.Throughput = 3000 // -40%
	new.Phases["measure"] = m
	bad := Compare(old, new, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "throughput regressed 40.0%") {
		t.Fatalf("violations = %v, want one throughput regression", bad)
	}
}

func TestCompareIgnoresImprovementAndNoise(t *testing.T) {
	old, new := baseReport(), baseReport()
	a := new.Ops["arrive"]
	a.Latency.P99US = 500 // 2x faster
	new.Ops["arrive"] = a
	d := new.Ops["depart"]
	d.Latency.P99US = 850 // +6%, under tolerance
	new.Ops["depart"] = d
	m := new.Phases["measure"]
	m.Throughput = 5100
	new.Phases["measure"] = m
	if bad := Compare(old, new, 25); len(bad) != 0 {
		t.Fatalf("violations = %v, want none", bad)
	}
}

func TestCompareMissingOp(t *testing.T) {
	old, new := baseReport(), baseReport()
	delete(new.Ops, "depart")
	bad := Compare(old, new, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "depart") {
		t.Fatalf("violations = %v, want missing-depart", bad)
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	r := baseReport()
	r.Config.Target = "inproc"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.Target != "inproc" || got.Ops["arrive"].Latency.P99US != 1000 {
		t.Fatalf("round trip mangled report: %+v", got)
	}

	// A foreign schema is refused, not misdiffed.
	r.Schema = "dbp-load/v999"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("schema mismatch not detected")
	}
}

// TestSkewOf checks the shard-skew arithmetic on a hand-built Stats.
func TestSkewOf(t *testing.T) {
	s := statsWithEvents(100, 200, 300)
	sk := skewOf(s)
	if sk.Shards != 3 || sk.MinEvents != 100 || sk.MaxEvents != 300 || sk.MeanEvents != 200 {
		t.Fatalf("skew = %+v", sk)
	}
	if sk.Imbalance != 1.5 {
		t.Fatalf("imbalance = %g, want 1.5", sk.Imbalance)
	}
	if sk.CV <= 0.40 || sk.CV >= 0.41 { // stddev sqrt(20000/3)/200 ≈ 0.408
		t.Fatalf("cv = %g", sk.CV)
	}
	if skewOf(statsWithEvents()) != nil {
		t.Fatal("empty stats must yield nil skew")
	}
}

package load

import (
	"runtime"
	"time"
)

// pacer decides when a client's k-th op is due. Implementations are
// used from a single client goroutine each.
type pacer interface {
	// due returns the wall-clock deadline of op k, or the zero Time
	// for "now" (no pacing).
	due(k int) time.Time
}

// openPacer is the open-loop schedule: with C clients at a global
// target rate R, client c's k-th op is due at start + (k*C + c)/R.
// This is a token bucket in disguise — a client that falls behind
// finds its next deadlines in the past and issues back-to-back until
// it has drained its backlog — and it is the coordinated-omission
// fix: latency is measured from the *scheduled* time, so an op the
// service made us queue behind a slow response is charged its full
// queueing delay instead of silently shifting the schedule.
type openPacer struct {
	start   time.Time
	client  int
	clients int
	perOp   time.Duration // C/R, the stride between one client's ops
}

func newOpenPacer(start time.Time, client, clients int, rate float64) *openPacer {
	return &openPacer{
		start:   start,
		client:  client,
		clients: clients,
		perOp:   time.Duration(float64(clients) / rate * float64(time.Second)),
	}
}

func (p *openPacer) due(k int) time.Time {
	offset := time.Duration(float64(p.client) / float64(p.clients) * float64(p.perOp))
	return p.start.Add(offset + time.Duration(k)*p.perOp)
}

// closedPacer models N users with think time: the next op is due
// think-time after the previous one *completed* (the caller sleeps;
// due only reports "now"). Closed loops are subject to coordinated
// omission by construction — that is the point of having both modes.
type closedPacer struct {
	think time.Duration
}

func (p *closedPacer) due(k int) time.Time {
	if p.think > 0 && k > 0 {
		return time.Now().Add(p.think)
	}
	return time.Time{}
}

// spinSlack is how early sleepUntil wakes from time.Sleep to finish
// the wait in a yield loop: timer overshoot (50us-1ms depending on
// the kernel) would otherwise leak into every open-loop latency,
// since those are measured from the scheduled time. The yield loop
// cedes the processor each iteration, so a busy service still runs.
const spinSlack = 100 * time.Microsecond

// sleepUntil sleeps until the deadline if it is in the future.
func sleepUntil(t time.Time) {
	if t.IsZero() {
		return
	}
	if d := time.Until(t) - spinSlack; d > 0 {
		time.Sleep(d)
	}
	for time.Now().Before(t) {
		runtime.Gosched()
	}
}

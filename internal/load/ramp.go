package load

import (
	"fmt"
	"time"
)

// RampOptions configures the max-sustainable-throughput search.
type RampOptions struct {
	// Start and Max bound the searched rate range (ops/s).
	Start, Max float64
	// SLOp99 is the per-op-type p99 latency ceiling a rate must stay
	// under to count as sustained.
	SLOp99 time.Duration
	// MinAchievedFrac is the fraction of the requested rate the run
	// must actually achieve (default 0.98): an open-loop run that
	// falls behind its own schedule is saturated even if latencies of
	// the ops it did issue look fine.
	MinAchievedFrac float64
	// Probe is the measure window per probe run (default 3s); each
	// probe gets a warmup of half that.
	Probe time.Duration
	// Refine is the number of binary-search refinement probes after
	// the doubling phase brackets the limit (default 3).
	Refine int
}

// RampProbe is one probe run's verdict.
type RampProbe struct {
	Rate     float64 `json:"rate"`
	Achieved float64 `json:"achieved"`
	P99US    float64 `json:"p99_us"` // worst op type
	OK       bool    `json:"ok"`
	Why      string  `json:"why,omitempty"`
}

// RampResult is the outcome of a ramp search.
type RampResult struct {
	SLOp99US       float64     `json:"slo_p99_us"`
	Probes         []RampProbe `json:"probes"`
	MaxSustainable float64     `json:"max_sustainable_ops_per_sec"`
}

// RampSearch finds the highest open-loop rate the target sustains
// under the p99 SLO: geometric doubling from Start until a probe
// fails (or Max passes), then binary-search refinement between the
// last good and first bad rate. base supplies everything but Mode,
// Rate, and IDBase, which the search owns.
func RampSearch(base Options, ro RampOptions) (*RampResult, error) {
	if ro.Start <= 0 || ro.Max < ro.Start {
		return nil, fmt.Errorf("load: ramp needs 0 < Start <= Max (got %g, %g)", ro.Start, ro.Max)
	}
	if ro.SLOp99 <= 0 {
		return nil, fmt.Errorf("load: ramp needs a positive p99 SLO")
	}
	if ro.MinAchievedFrac == 0 {
		ro.MinAchievedFrac = 0.98
	}
	if ro.Probe <= 0 {
		ro.Probe = 3 * time.Second
	}
	if ro.Refine == 0 {
		ro.Refine = 3
	}

	res := &RampResult{SLOp99US: float64(ro.SLOp99) / 1e3}
	probeN := 0
	probe := func(rate float64) (RampProbe, error) {
		o := base
		o.Mode = ModeOpen
		o.Rate = rate
		o.Warmup = ro.Probe / 2
		o.Measure = ro.Probe
		// A generous stride keeps every probe's job IDs disjoint from
		// every other probe against the same long-lived service.
		o.IDBase = base.IDBase + int64(probeN+1)*1_000_000_000_000
		probeN++
		rep, err := Run(o)
		if err != nil {
			return RampProbe{}, err
		}
		p := RampProbe{Rate: rate, Achieved: rep.AchievedRate, OK: true}
		for op, or := range rep.Ops {
			if or.Latency.P99US > p.P99US {
				p.P99US = or.Latency.P99US
			}
			if or.Latency.P99US > res.SLOp99US {
				p.OK = false
				p.Why = fmt.Sprintf("%s p99 %.0fus > SLO %.0fus", op, or.Latency.P99US, res.SLOp99US)
			}
		}
		if p.Achieved < ro.MinAchievedFrac*rate {
			p.OK = false
			p.Why = fmt.Sprintf("achieved %.0f < %.0f%% of requested %.0f",
				p.Achieved, ro.MinAchievedFrac*100, rate)
		}
		res.Probes = append(res.Probes, p)
		return p, nil
	}

	// Doubling phase. The last doubling step is clamped to Max, so Max
	// itself is always probed when every smaller rate passed (Start=1000,
	// Max=3000 probes 1000, 2000, 3000 — not 1000, 2000, stop).
	var good, bad float64
	for rate := ro.Start; ; {
		p, err := probe(rate)
		if err != nil {
			return nil, err
		}
		if !p.OK {
			bad = rate
			break
		}
		good = rate
		if rate >= ro.Max {
			break
		}
		if rate *= 2; rate > ro.Max {
			rate = ro.Max
		}
	}
	if good == 0 {
		res.MaxSustainable = 0 // even Start failed
		return res, nil
	}
	if bad == 0 {
		// Sustained everything up to Max (capped by the range, not
		// the service).
		res.MaxSustainable = good
		return res, nil
	}

	// Refinement phase: bisect (good, bad).
	for i := 0; i < ro.Refine; i++ {
		mid := (good + bad) / 2
		p, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if p.OK {
			good = mid
		} else {
			bad = mid
		}
	}
	res.MaxSustainable = good
	return res, nil
}

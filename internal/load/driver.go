// Package load is the YCSB-style benchmark harness for the allocation
// service: it replays arrive/depart scripts from the workload
// generators through a pluggable Target transport (in-process
// dispatcher or HTTP against a running dbpserved), paces them in open
// or closed loop, measures per-op-type latency into mergeable
// log-bucketed histograms (internal/load/hist), and writes a
// deterministic JSON results file (BENCH_serve.json) that later PRs
// are regression-checked against.
package load

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dbp/internal/item"
	"dbp/internal/load/hist"
)

// Mode selects the pacing model.
type Mode string

const (
	// ModeOpen is the open-loop model: ops are issued on a fixed
	// schedule at Rate ops/s regardless of response times, and each
	// op's latency is measured from its *scheduled* time — the
	// coordinated-omission-free measurement.
	ModeOpen Mode = "open"
	// ModeClosed is the closed-loop model: Clients concurrent users,
	// each issuing its next op Think after the previous completed.
	ModeClosed Mode = "closed"
)

// Options configures one load run.
type Options struct {
	Target Target
	Script *Script
	Mode   Mode

	// Rate is the open-loop target in ops/s (arrivals + departures).
	Rate float64
	// Clients is the number of concurrent load goroutines; 0 means
	// 4*GOMAXPROCS (open) or 16 (closed).
	Clients int
	// Think is the closed-loop think time between a client's ops.
	Think time.Duration

	// Warmup ops are issued and counted but excluded from latency
	// percentiles; Measure is the timed window; Drain bounds how long
	// clients may spend departing jobs still active at measure end.
	Warmup, Measure, Drain time.Duration

	// IDBase offsets every job ID, so successive runs against one
	// long-lived service (ramp probes) never collide.
	IDBase int64

	// WorkloadLabel annotates the results file ("uniform n=50000
	// mu=10 seed=1"); purely descriptive.
	WorkloadLabel string
}

func (o *Options) setDefaults() error {
	if o.Target == nil {
		return fmt.Errorf("load: Options.Target is required")
	}
	if o.Script == nil || len(o.Script.Ops) == 0 {
		return fmt.Errorf("load: Options.Script is empty")
	}
	switch o.Mode {
	case ModeOpen:
		if o.Rate <= 0 {
			return fmt.Errorf("load: open-loop mode needs Rate > 0")
		}
		if o.Clients <= 0 {
			o.Clients = 4 * runtime.GOMAXPROCS(0)
		}
	case ModeClosed:
		if o.Clients <= 0 {
			o.Clients = 16
		}
	default:
		return fmt.Errorf("load: unknown mode %q (want open or closed)", o.Mode)
	}
	if o.Measure <= 0 {
		return fmt.Errorf("load: Measure window must be positive")
	}
	if o.Drain <= 0 {
		o.Drain = 30 * time.Second
	}
	return nil
}

// clientResult is one goroutine's private measurement state; no locks
// on the hot path, merged after the run.
type clientResult struct {
	warm, meas [numOpKinds]*hist.Hist
	errs       [numOpKinds]map[string]uint64 // measure-phase, by Classify code
	warmOps    uint64
	measOps    uint64
	drainOps   uint64
	leaked     int // jobs not drained: depart failed or the deadline hit
	// drainStart/drainEnd bound this client's drain activity; the
	// report derives the drain phase's wall-clock window from the
	// earliest start and latest end across clients.
	drainStart, drainEnd time.Time
}

func newClientResult() *clientResult {
	r := &clientResult{}
	for k := range r.warm {
		r.warm[k] = hist.New()
		r.meas[k] = hist.New()
		r.errs[k] = make(map[string]uint64)
	}
	return r
}

type runner struct {
	o          Options
	parts      []*Script
	start      time.Time
	warmupEnd  time.Time
	measureEnd time.Time
}

// Run executes one warmup → measure → drain load run and returns its
// report. It blocks until every client has drained or hit the drain
// deadline.
func Run(o Options) (*Report, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	r := &runner{o: o, parts: o.Script.Partition(o.Clients)}
	r.start = time.Now()
	r.warmupEnd = r.start.Add(o.Warmup)
	r.measureEnd = r.warmupEnd.Add(o.Measure)

	results := make([]*clientResult, o.Clients)
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		results[c] = newClientResult()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r.client(c, results[c])
		}(c)
	}
	wg.Wait()

	stats, statsErr := o.Target.Stats()
	rep := r.report(results)
	if statsErr == nil {
		rep.Server = &stats
		rep.ShardSkew = skewOf(stats)
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf("stats unavailable: %v", statsErr))
	}
	return rep, nil
}

// epochOffset re-keys job IDs when a client wraps its script: epoch e
// shifts IDs by e*(maxID+1), so jobs from different epochs (and, via
// IDBase, different runs) never collide.
func (r *runner) epochOffset(epoch int) item.ID {
	return item.ID(int64(epoch)*(int64(r.o.Script.maxID)+1) + r.o.IDBase)
}

func (r *runner) client(c int, res *clientResult) {
	script := r.parts[c].Ops
	if len(script) == 0 {
		return
	}
	var pc pacer
	open := r.o.Mode == ModeOpen
	if open {
		pc = newOpenPacer(r.start, c, r.o.Clients, r.o.Rate)
	} else {
		pc = &closedPacer{think: r.o.Think}
	}

	// active tracks this client's in-flight jobs (for the drain);
	// failed marks jobs whose arrive was rejected, so the matching
	// scripted depart is skipped instead of producing a guaranteed
	// unknown_job error.
	active := make(map[item.ID]struct{})
	failed := make(map[item.ID]struct{})
	epoch, i, k := 0, 0, 0

	for {
		due := pc.due(k)
		if !due.IsZero() {
			if due.After(r.measureEnd) {
				break
			}
			sleepUntil(due)
		}
		issueAt := time.Now()
		sched := issueAt // closed loop: latency from issue time
		if open {
			sched = due // open loop: latency from the schedule
		}
		if sched.After(r.measureEnd) {
			break
		}

		op := script[i]
		id := op.ID + r.epochOffset(epoch)
		skip := false
		if op.Kind == OpDepart {
			if _, ok := failed[id]; ok {
				delete(failed, id)
				skip = true
			}
		}
		if !skip {
			var err error
			if op.Kind == OpArrive {
				err = r.o.Target.Arrive(id, op.Size, op.Sizes, nil)
			} else {
				err = r.o.Target.Depart(id, nil)
			}
			lat := time.Since(sched)
			if sched.Before(r.warmupEnd) {
				res.warm[op.Kind].Record(lat)
				res.warmOps++
			} else {
				res.meas[op.Kind].Record(lat)
				res.measOps++
				if err != nil {
					res.errs[op.Kind][Classify(err)]++
				}
			}
			switch {
			case op.Kind == OpArrive && err == nil:
				active[id] = struct{}{}
			case op.Kind == OpArrive:
				failed[id] = struct{}{}
			default:
				delete(active, id)
			}
		}
		i++
		k++
		if i == len(script) {
			// The script is self-contained, so all jobs have departed;
			// start over under fresh IDs.
			i = 0
			epoch++
			clear(active)
			clear(failed)
		}
	}

	// Drain: depart everything this client still holds, so the
	// service ends the run empty and a follow-up run (ramp probe)
	// starts from a clean fleet. A failed depart stays in active and
	// counts as leaked — the job really is still occupying a server.
	res.drainStart = time.Now()
	deadline := res.drainStart.Add(r.o.Drain)
	for id := range active {
		if time.Now().After(deadline) {
			break
		}
		if err := r.o.Target.Depart(id, nil); err == nil {
			res.drainOps++
			delete(active, id)
		}
	}
	res.leaked = len(active)
	res.drainEnd = time.Now()
}

// Package event provides the deterministic event queue that drives the
// online packing simulation. Events are ordered by time; at equal times,
// departures are processed before arrivals (intervals are half-open, so an
// item departing at t is already gone when another arrives at t), and ties
// within a kind preserve submission order. This ordering is exactly what
// the paper's adversarial constructions assume ("at time 0, let n pairs of
// items arrive in sequence", Sec. VIII).
package event

import (
	"container/heap"

	"dbp/internal/item"
)

// Kind distinguishes arrivals from departures.
type Kind uint8

const (
	// Depart events fire when an item leaves its bin. They sort before
	// Arrive events at the same timestamp.
	Depart Kind = iota
	// Arrive events fire when an item must be placed.
	Arrive
)

// String returns "arrive" or "depart".
func (k Kind) String() string {
	if k == Arrive {
		return "arrive"
	}
	return "depart"
}

// Event is a timed arrival or departure of an item.
type Event struct {
	Time float64
	Kind Kind
	Item item.Item
	seq  int64 // submission order, breaks remaining ties deterministically
	// arrivalsFirst inverts the Kind tie rule (set by the owning queue).
	arrivalsFirst bool
}

// Queue is a priority queue of events ordered by (Time, Kind, seq).
// The zero value is ready to use (departures before arrivals at ties).
type Queue struct {
	h             eventHeap
	seq           int64
	arrivalsFirst bool
}

// NewFromList builds a queue holding the arrival and departure events of
// every item in the list. Arrival events are submitted in the order items
// appear after a stable sort by (Arrival, ID), so generators control
// same-instant sequencing via IDs.
func NewFromList(l item.List) *Queue {
	return NewFromListOrder(l, false)
}

// NewFromListOrder is NewFromList with a configurable same-timestamp tie
// rule: arrivalsFirst false (the model's default, matching half-open
// intervals) processes departures before arrivals at equal times;
// arrivalsFirst true flips that — an ablation (DESIGN.md §6) under which
// capacity freed at time t is NOT reusable by an arrival at t.
func NewFromListOrder(l item.List, arrivalsFirst bool) *Queue {
	q := &Queue{arrivalsFirst: arrivalsFirst}
	for _, it := range l.SortedByArrival() {
		q.Push(Event{Time: it.Arrival, Kind: Arrive, Item: it})
		q.Push(Event{Time: it.Departure, Kind: Depart, Item: it})
	}
	return q
}

// Push adds an event to the queue.
func (q *Queue) Push(e Event) {
	e.seq = q.seq
	e.arrivalsFirst = q.arrivalsFirst
	q.seq++
	heap.Push(&q.h, e)
}

// Pop removes and returns the next event. It panics if the queue is empty;
// callers must check Len first.
func (q *Queue) Pop() Event {
	return heap.Pop(&q.h).(Event)
}

// Peek returns the next event without removing it. It panics on empty.
func (q *Queue) Peek() Event { return q.h[0] }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Kind != h[j].Kind {
		if h[i].arrivalsFirst {
			return h[i].Kind > h[j].Kind // ablation: Arrive before Depart
		}
		return h[i].Kind < h[j].Kind // default: Depart (0) before Arrive (1)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

package event

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 2, Kind: Arrive})
	q.Push(Event{Time: 1, Kind: Arrive})
	q.Push(Event{Time: 1, Kind: Depart})
	q.Push(Event{Time: 0, Kind: Depart})

	want := []struct {
		time float64
		kind Kind
	}{{0, Depart}, {1, Depart}, {1, Arrive}, {2, Arrive}}
	for i, w := range want {
		e := q.Pop()
		if e.Time != w.time || e.Kind != w.kind {
			t.Fatalf("event %d = (%g, %v), want (%g, %v)", i, e.Time, e.Kind, w.time, w.kind)
		}
	}
	if q.Len() != 0 {
		t.Error("queue not drained")
	}
}

func TestQueueFIFOWithinTies(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Event{Time: 5, Kind: Arrive, Item: item.Item{ID: item.ID(i)}})
	}
	for i := 0; i < 10; i++ {
		e := q.Pop()
		if e.Item.ID != item.ID(i) {
			t.Fatalf("tie order broken: got %d at position %d", e.Item.ID, i)
		}
	}
}

func TestNewFromList(t *testing.T) {
	l := item.List{
		{ID: 2, Size: 0.5, Arrival: 0, Departure: 2},
		{ID: 1, Size: 0.5, Arrival: 0, Departure: 1},
	}
	q := NewFromList(l)
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
	// At time 0 both arrive; ID 1 (lower) must arrive first per the stable
	// sort by (Arrival, ID).
	e := q.Pop()
	if e.Kind != Arrive || e.Item.ID != 1 {
		t.Fatalf("first event = %+v", e)
	}
	e = q.Pop()
	if e.Kind != Arrive || e.Item.ID != 2 {
		t.Fatalf("second event = %+v", e)
	}
	// At time 1, item 1 departs before anything else happens.
	e = q.Pop()
	if e.Kind != Depart || e.Item.ID != 1 || e.Time != 1 {
		t.Fatalf("third event = %+v", e)
	}
}

func TestDepartBeforeArriveAtSameTime(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 1},
		{ID: 2, Size: 1, Arrival: 1, Departure: 2},
	}
	q := NewFromList(l)
	q.Pop() // arrive 1 at t=0
	e := q.Pop()
	if e.Kind != Depart || e.Item.ID != 1 {
		t.Fatalf("expected departure of 1 before arrival of 2 at t=1, got %+v", e)
	}
	e = q.Pop()
	if e.Kind != Arrive || e.Item.ID != 2 {
		t.Fatalf("expected arrival of 2, got %+v", e)
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 3, Kind: Arrive})
	if q.Peek().Time != 3 {
		t.Error("peek wrong")
	}
	if q.Len() != 1 {
		t.Error("peek must not remove")
	}
}

func TestKindString(t *testing.T) {
	if Arrive.String() != "arrive" || Depart.String() != "depart" {
		t.Error("Kind.String mismatch")
	}
}

func TestQueueRandomizedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			q.Push(Event{Time: float64(rng.Intn(50)), Kind: Kind(rng.Intn(2))})
		}
		prev := Event{Time: -1}
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < prev.Time {
				t.Fatal("time went backwards")
			}
			if e.Time == prev.Time && e.Kind < prev.Kind {
				t.Fatal("arrive popped before depart at same time")
			}
			prev = e
		}
	}
}

func TestArrivalsFirstOrder(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 1},
		{ID: 2, Size: 1, Arrival: 1, Departure: 2},
	}
	q := NewFromListOrder(l, true)
	q.Pop() // arrive 1 at t=0
	e := q.Pop()
	if e.Kind != Arrive || e.Item.ID != 2 {
		t.Fatalf("arrivals-first: expected arrival of 2 before departure of 1, got %v of %d", e.Kind, e.Item.ID)
	}
	e = q.Pop()
	if e.Kind != Depart || e.Item.ID != 1 {
		t.Fatalf("expected departure of 1, got %v of %d", e.Kind, e.Item.ID)
	}
}

package serve_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// TestDispatcherStressReconciles hammers a sharded dispatcher from many
// goroutines (run under -race via `make check`) and then proves the
// concurrent run was equivalent to a sequential one: each shard's
// journal, replayed event-for-event into a fresh packing.Stream, must
// reproduce the exact same server assignments and the exact same
// usage-time / servers-used / peak totals — float-equal, not
// approximately, since the event order per shard is the order the shard
// actually applied.
func TestDispatcherStressReconciles(t *testing.T) {
	const (
		workers = 10 // concurrent clients (acceptance floor: >= 8)
		shards  = 6  // acceptance floor: >= 4
		nOps    = 400
	)
	for _, tc := range []struct {
		name      string
		keepAlive float64
	}{
		{"no-keepalive", 0},
		{"keepalive", 0.002},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := serve.New(serve.Config{
				Algorithm:    "firstfit",
				Shards:       shards,
				KeepAlive:    tc.keepAlive,
				RecordEvents: true,
			})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
					var running []item.ID
					for i := 0; i < nOps; i++ {
						if len(running) == 0 || rng.Float64() < 0.55 {
							id := item.ID(w*1_000_000 + i)
							size := 0.05 + 0.9*rng.Float64()
							if _, err := d.Arrive(id, size, nil, nil); err != nil {
								t.Errorf("worker %d: arrive %d: %v", w, id, err)
								return
							}
							running = append(running, id)
						} else {
							k := rng.Intn(len(running))
							id := running[k]
							running = append(running[:k], running[k+1:]...)
							if _, err := d.Depart(id, nil); err != nil {
								t.Errorf("worker %d: depart %d: %v", w, id, err)
								return
							}
						}
						// Inject protocol errors to exercise the rejection
						// paths concurrently: a duplicate arrive of a job
						// this worker still runs, and a departure of an ID
						// nobody ever submitted.
						if len(running) > 0 && rng.Float64() < 0.05 {
							if _, err := d.Arrive(running[0], 0.5, nil, nil); !errors.Is(err, packing.ErrDuplicateJob) {
								t.Errorf("worker %d: duplicate arrive: got %v", w, err)
							}
						}
						if rng.Float64() < 0.05 {
							ghost := item.ID(-(1 + w*1_000_000 + i))
							if _, err := d.Depart(ghost, nil); !errors.Is(err, packing.ErrUnknownJob) {
								t.Errorf("worker %d: ghost depart: got %v", w, err)
							}
						}
					}
					for _, id := range running {
						if _, err := d.Depart(id, nil); err != nil {
							t.Errorf("worker %d: final depart %d: %v", w, id, err)
						}
					}
				}(w)
			}
			wg.Wait()

			stats := d.Stats()
			if stats.Arrivals != stats.Departures {
				t.Fatalf("arrivals %d != departures %d after full drain", stats.Arrivals, stats.Departures)
			}
			if stats.Engine != "indexed" {
				t.Fatalf("service engine = %q, want indexed", stats.Engine)
			}
			for _, sh := range stats.PerShard {
				if sh.Policy != "FirstFit" || sh.Engine != "indexed" {
					t.Fatalf("shard %d reports policy %q engine %q, want FirstFit/indexed",
						sh.Shard, sh.Policy, sh.Engine)
				}
			}
			if stats.Rejected["duplicate_job"] == 0 || stats.Rejected["unknown_job"] == 0 {
				t.Errorf("error injection not observed in metrics: %v", stats.Rejected)
			}
			var journaled int
			for i := 0; i < d.NumShards(); i++ {
				journaled += len(d.ShardEvents(i))
			}
			if uint64(journaled) != stats.Arrivals+stats.Departures {
				t.Fatalf("journal has %d events, metrics count %d", journaled, stats.Arrivals+stats.Departures)
			}

			final := d.Close()
			if final.OpenServers != 0 {
				t.Fatalf("%d servers still open after drain", final.OpenServers)
			}

			// Sequential replay: per shard, a fresh single-goroutine
			// stream fed the shard's journal must agree exactly.
			var replayUsage float64
			for i := 0; i < d.NumShards(); i++ {
				algo, _ := packing.ByName("firstfit")
				replay := packing.NewStreamKeepAlive(algo, 0, 0, tc.keepAlive)
				for k, ev := range d.ShardEvents(i) {
					var server int
					var err error
					switch ev.Kind {
					case "arrive":
						server, _, err = replay.Arrive(ev.ID, ev.Size, ev.Sizes, ev.Time)
					case "depart":
						server, _, err = replay.Depart(ev.ID, ev.Time)
					}
					if err != nil {
						t.Fatalf("shard %d replay event %d: %v", i, k, err)
					}
					if server != ev.Server {
						t.Fatalf("shard %d event %d: live run used server %d, replay used %d", i, k, ev.Server, server)
					}
				}
				replay.Shutdown()
				snap := replay.Snapshot()
				live := final.PerShard[i]
				if snap.UsageTime != live.UsageTime {
					t.Errorf("shard %d usage: live %v != replay %v", i, live.UsageTime, snap.UsageTime)
				}
				if snap.ServersUsed != live.ServersUsed || snap.PeakServers != live.PeakServers {
					t.Errorf("shard %d servers: live used/peak %d/%d != replay %d/%d",
						i, live.ServersUsed, live.PeakServers, snap.ServersUsed, snap.PeakServers)
				}
				if snap.OpenServers != 0 {
					t.Errorf("shard %d replay left %d servers open", i, snap.OpenServers)
				}
				replayUsage += snap.UsageTime
			}
			if replayUsage != final.UsageTime {
				t.Errorf("total usage: live %v != replay %v", final.UsageTime, replayUsage)
			}
		})
	}
}

// TestDispatcherRouting checks that routing is a pure function of the
// job ID, covers every shard on a modest ID range, and that arrivals
// land on the shard ShardFor promises.
func TestDispatcherRouting(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 4, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[int]int)
	for id := item.ID(0); id < 256; id++ {
		si := d.ShardFor(id)
		if si != d.ShardFor(id) {
			t.Fatal("routing is not deterministic")
		}
		hit[si]++
		p, err := d.Arrive(id, 0.5, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shard != si {
			t.Fatalf("job %d placed on shard %d, ShardFor says %d", id, p.Shard, si)
		}
	}
	for si := 0; si < 4; si++ {
		if hit[si] == 0 {
			t.Errorf("shard %d received no jobs out of 256 IDs", si)
		}
	}
}

// TestDispatcherCloseConcurrent closes the dispatcher while clients are
// mid-flight: every request must either succeed fully or fail with
// ErrClosed, Close must be idempotent, and the final totals must not
// change once reported.
func TestDispatcherCloseConcurrent(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				id := item.ID(w*1_000_000 + i)
				if _, err := d.Arrive(id, 0.25, nil, nil); err != nil {
					if !errors.Is(err, serve.ErrClosed) {
						t.Errorf("worker %d: %v", w, err)
					}
					return
				}
				if _, err := d.Depart(id, nil); err != nil {
					if !errors.Is(err, serve.ErrClosed) {
						t.Errorf("worker %d: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	close(start)
	final := d.Close()
	wg.Wait()
	if !d.Draining() {
		t.Error("Draining() false after Close")
	}
	again := d.Close()
	if again.UsageTime != final.UsageTime || again.Arrivals != final.Arrivals {
		t.Errorf("Close not idempotent: %+v then %+v", final, again)
	}
}

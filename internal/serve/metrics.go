package serve

import (
	"errors"
	"expvar"
	"sync/atomic"
	"time"

	"dbp/internal/load/hist"
	"dbp/internal/packing"
)

// metrics is the dispatcher's lock-free counter core. Counters are
// plain atomics bumped by the shard owners; gauges derived from stream
// state (usage time, open servers) are published by each owner as an
// atomic per-shard snapshot, so Stats never touches a shard's stream.
// Latency histograms (one per op type, log-bucketed, shared across
// shards) are recorded with atomics on the request path — see
// internal/load/hist.
type metrics struct {
	arrivals      atomic.Uint64
	departures    atomic.Uint64
	serversOpened atomic.Uint64
	serversClosed atomic.Uint64

	// batches/batchOps count ApplyBatch calls and the ops they carried
	// (accepted and rejected alike); batchOps/batches is the realized
	// mean batch size — the transport's channel-hop amortization factor.
	batches  atomic.Uint64
	batchOps atomic.Uint64

	rejectDuplicate  atomic.Uint64
	rejectUnknown    atomic.Uint64
	rejectBadDemand  atomic.Uint64
	rejectRegression atomic.Uint64
	rejectPolicy     atomic.Uint64
	rejectClosed     atomic.Uint64
	rejectDurability atomic.Uint64
	rejectOther      atomic.Uint64

	latArrive *hist.Hist
	latDepart *hist.Hist
	// latFsync digests every fsync on the WAL append path, across
	// shards: the price of fsync=always (or each interval flush) that
	// the durability benchmarks compare against fsync=off.
	latFsync *hist.Hist
}

// init allocates the latency histograms (called once by New).
func (m *metrics) init() {
	m.latArrive = hist.New()
	m.latDepart = hist.New()
	m.latFsync = hist.New()
}

// observeFsync records one WAL fsync's duration (fed by the store's
// per-shard SyncObserver).
func (m *metrics) observeFsync(d time.Duration) { m.latFsync.Record(d) }

// observeArrive/observeDepart record one request's service time —
// dispatch, shard queue wait, and stream work included; rejected
// requests count too (they occupied the shard owner just the same).
func (m *metrics) observeArrive(start time.Time) { m.latArrive.Record(time.Since(start)) }
func (m *metrics) observeDepart(start time.Time) { m.latDepart.Record(time.Since(start)) }

// reject classifies a request error into its rejection counter.
func (m *metrics) reject(err error) {
	switch {
	case errors.Is(err, packing.ErrDuplicateJob):
		m.rejectDuplicate.Add(1)
	case errors.Is(err, packing.ErrUnknownJob):
		m.rejectUnknown.Add(1)
	case errors.Is(err, packing.ErrBadDemand):
		m.rejectBadDemand.Add(1)
	case errors.Is(err, packing.ErrTimeRegression):
		m.rejectRegression.Add(1)
	case errors.Is(err, packing.ErrPolicyMisplace):
		m.rejectPolicy.Add(1)
	case errors.Is(err, ErrClosed):
		m.rejectClosed.Add(1)
	case errors.Is(err, ErrDurability):
		m.rejectDurability.Add(1)
	default:
		m.rejectOther.Add(1)
	}
}

// Stats is the service-wide view published on GET /v1/stats and via
// expvar. Aggregates are sums over shards; note PeakServers sums each
// shard's own peak, an upper bound on the true instantaneous global
// peak (shards do not peak simultaneously in general).
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	Algorithm     string  `json:"algorithm"`
	// Engine is the placement engine kind every shard runs ("indexed"
	// or "linear"); the service always uses the default indexed engine.
	Engine string `json:"engine"`

	Arrivals   uint64 `json:"arrivals"`
	Departures uint64 `json:"departures"`
	// EventsPerSecond is lifetime throughput: accepted events / uptime.
	EventsPerSecond float64 `json:"events_per_second"`

	// Batches counts ApplyBatch calls (the wire transport's batch
	// frames and /v1/batch requests land here); BatchOps the ops they
	// carried. BatchOps/Batches is the realized mean batch size.
	Batches  uint64 `json:"batches,omitempty"`
	BatchOps uint64 `json:"batch_ops,omitempty"`

	Rejected map[string]uint64 `json:"rejected,omitempty"`

	// Latency holds the server-side service-time digest per op type
	// ("arrive", "depart"): time from dispatch to stream return,
	// shard queue wait included, measured on every request (rejections
	// too). Microseconds; percentiles carry the histogram's <= 3.2%
	// relative error.
	Latency map[string]hist.Summary `json:"latency,omitempty"`

	OpenServers int     `json:"open_servers"`
	ServersUsed int     `json:"servers_used"`
	PeakServers int     `json:"peak_servers"`
	UsageTime   float64 `json:"usage_time"`

	// Durability is present only when the dispatcher runs with a
	// write-ahead log (Config.DataDir set).
	Durability *DurabilityStats `json:"durability,omitempty"`

	PerShard []ShardStats `json:"per_shard"`
}

// DurabilityStats is the service-wide durability gauge block.
type DurabilityStats struct {
	DataDir       string `json:"data_dir"`
	Fsync         string `json:"fsync"`
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
	// WalSegments/WalBytes sum the live journal footprint over shards
	// (snapshots truncate covered segments, so this is the replay debt,
	// not lifetime traffic).
	WalSegments int   `json:"wal_segments"`
	WalBytes    int64 `json:"wal_bytes"`
	// FsyncLatency digests every fsync on the append path, all shards
	// (microseconds) — the durable-ack premium of fsync=always.
	FsyncLatency hist.Summary `json:"fsync_latency"`
	// Error surfaces the first shard journal failure; the affected
	// shards are refusing writes (fail-stop).
	Error string `json:"error,omitempty"`
}

// ShardStats is one shard's contribution to Stats.
type ShardStats struct {
	Shard int `json:"shard"`
	// Policy is the shard's policy display name (packing.Algorithm.Name),
	// and Engine the placement engine kind it runs ("indexed"/"linear").
	Policy      string  `json:"policy"`
	Engine      string  `json:"engine"`
	Clock       float64 `json:"clock"` // last event time fed to the shard
	Events      int     `json:"events"`
	OpenServers int     `json:"open_servers"`
	ServersUsed int     `json:"servers_used"`
	PeakServers int     `json:"peak_servers"`
	UsageTime   float64 `json:"usage_time"`

	// Durability gauges, present only when the shard has a WAL: live
	// journal footprint, the next journal sequence (== Events), the
	// event count the newest durable snapshot covers, and that
	// snapshot's age. Read live from the log, not from the gauge.
	WalSegments        int     `json:"wal_segments,omitempty"`
	WalBytes           int64   `json:"wal_bytes,omitempty"`
	JournalSeq         uint64  `json:"journal_seq,omitempty"`
	SnapshotSeq        uint64  `json:"snapshot_seq,omitempty"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
}

// Stats assembles the current service-wide statistics from the gauges
// each shard owner publishes atomically — no shard is locked, queued
// behind, or otherwise disturbed by a stats read. Each gauge is a
// consistent view of its shard as of that owner's last publish: exact
// whenever the shard's queue has run empty, and at most publishEvery
// events stale under sustained load.
func (d *Dispatcher) Stats() Stats {
	s := Stats{
		UptimeSeconds: d.clock(),
		Shards:        len(d.shards),
		Algorithm:     d.cfg.Algorithm,
		Arrivals:      d.metrics.arrivals.Load(),
		Departures:    d.metrics.departures.Load(),
		Batches:       d.metrics.batches.Load(),
		BatchOps:      d.metrics.batchOps.Load(),
		PerShard:      make([]ShardStats, len(d.shards)),
	}
	rejected := map[string]uint64{
		"duplicate_job":     d.metrics.rejectDuplicate.Load(),
		"unknown_job":       d.metrics.rejectUnknown.Load(),
		"bad_demand":        d.metrics.rejectBadDemand.Load(),
		"time_regression":   d.metrics.rejectRegression.Load(),
		"policy":            d.metrics.rejectPolicy.Load(),
		"shutting_down":     d.metrics.rejectClosed.Load(),
		"durability_failed": d.metrics.rejectDurability.Load(),
		"other":             d.metrics.rejectOther.Load(),
	}
	s.Rejected = make(map[string]uint64)
	for k, v := range rejected {
		if v > 0 {
			s.Rejected[k] = v
		}
	}
	s.Latency = map[string]hist.Summary{
		"arrive": d.metrics.latArrive.Summary(),
		"depart": d.metrics.latDepart.Summary(),
	}
	if d.store != nil {
		s.Durability = &DurabilityStats{
			DataDir:       d.cfg.DataDir,
			Fsync:         d.cfg.Fsync,
			SnapshotEvery: d.cfg.SnapshotEvery,
			FsyncLatency:  d.metrics.latFsync.Summary(),
		}
		if err := d.DurabilityErr(); err != nil {
			s.Durability.Error = err.Error()
		}
	}
	now := time.Now().UnixNano()
	for i, sh := range d.shards {
		g := sh.gauge.Load()
		s.PerShard[i] = *g
		s.OpenServers += g.OpenServers
		s.ServersUsed += g.ServersUsed
		s.PeakServers += g.PeakServers
		s.UsageTime += g.UsageTime
		s.Engine = g.Engine
		if sh.wal != nil {
			w := sh.wal.Stats()
			ps := &s.PerShard[i]
			ps.WalSegments = w.Segments
			ps.WalBytes = w.Bytes
			ps.JournalSeq = w.NextSeq
			ps.SnapshotSeq = w.SnapshotSeq
			if w.HasSnapshot && w.SnapshotTime > 0 {
				ps.SnapshotAgeSeconds = float64(now-w.SnapshotTime) / 1e9
			}
			s.Durability.WalSegments += w.Segments
			s.Durability.WalBytes += w.Bytes
		}
	}
	if s.UptimeSeconds > 0 {
		s.EventsPerSecond = float64(s.Arrivals+s.Departures) / s.UptimeSeconds
	}
	return s
}

// ExpvarFunc returns an expvar.Func publishing the dispatcher's Stats.
// The caller owns naming and registration (expvar.Publish is global and
// once-only per name, so the daemon — not the package — registers it):
//
//	expvar.Publish("dbpserved", d.ExpvarFunc())
func (d *Dispatcher) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return d.Stats() })
}

package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"dbp/internal/serve"
)

// postBatch posts a raw /v1/batch body and decodes the BatchResponse
// (when the HTTP status is 200).
func postBatch(t *testing.T, url, body string) (*http.Response, serve.BatchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br serve.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("bad batch response JSON: %v", err)
		}
	}
	return resp, br
}

// TestHTTPBatchGolden is the golden suite for POST /v1/batch: a mixed
// batch where successes, a 409 duplicate, a 404 unknown-job, a 422
// oversized demand, and a per-op 400 unknown kind all ride in one
// request, each answered positionally with the exact status and code
// the single-op endpoints would have used — without aborting the
// valid ops around them.
func TestHTTPBatchGolden(t *testing.T) {
	_, ts := newTestServer(t)

	resp, br := postBatch(t, ts.URL, `{"ops":[
		{"op":"arrive","id":1,"size":0.6,"time":0},
		{"op":"arrive","id":2,"size":0.6,"time":0},
		{"op":"arrive","id":1,"size":0.2,"time":1},
		{"op":"depart","id":42,"time":1},
		{"op":"arrive","id":3,"size":1.5,"time":1},
		{"op":"resize","id":3},
		{"op":"arrive","id":4,"size":0.3,"time":2},
		{"op":"depart","id":2,"time":3}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d, want 200", resp.StatusCode)
	}
	if len(br.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(br.Results))
	}

	type golden struct {
		status int
		code   string
		server int
		opened bool
		closed bool
	}
	want := []golden{
		{status: 200, server: 0, opened: true},  // arrive 1 opens server 0
		{status: 200, server: 1, opened: true},  // arrive 2 opens server 1
		{status: 409, code: "duplicate_job"},    // arrive 1 again
		{status: 404, code: "unknown_job"},      // depart 42
		{status: 422, code: "bad_demand"},       // size 1.5
		{status: 400, code: "bad_request"},      // op "resize"
		{status: 200, server: 0, opened: false}, // arrive 4 first-fits onto 0
		{status: 200, server: 1, closed: true},  // depart 2 empties server 1
	}
	for i, w := range want {
		g := br.Results[i]
		if g.Status != w.status || g.Code != w.code {
			t.Errorf("result %d = %d %q, want %d %q (error: %s)", i, g.Status, g.Code, w.status, w.code, g.Error)
		}
		if w.status == 200 && (g.Server != w.server || g.Opened != w.opened || g.Closed != w.closed) {
			t.Errorf("result %d placement = %+v, want server %d opened %v closed %v", i, g, w.server, w.opened, w.closed)
		}
		if w.status != 200 && g.Error == "" {
			t.Errorf("result %d: failed op carries no diagnostic", i)
		}
	}
}

// TestHTTPBatchOrderWithinJob: an arrive and its depart in the same
// batch keep their order (same shard ⇒ sequential application).
func TestHTTPBatchOrderWithinJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, br := postBatch(t, ts.URL, `{"ops":[
		{"op":"arrive","id":10,"size":0.4,"time":0},
		{"op":"depart","id":10,"time":1}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if br.Results[0].Status != 200 || br.Results[1].Status != 200 {
		t.Fatalf("same-job pair = %+v", br.Results)
	}
	if !br.Results[0].Opened || !br.Results[1].Closed {
		t.Fatalf("open/close flags = %+v", br.Results)
	}
}

// TestHTTPBatchRejectsDegenerate: empty and oversized batches are
// request-level 400s, not empty 200s.
func TestHTTPBatchRejectsDegenerate(t *testing.T) {
	_, ts := newTestServer(t)

	resp, _ := postBatch(t, ts.URL, `{"ops":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}

	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i := 0; i <= serve.MaxHTTPBatchOps; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"op":"depart","id":%d}`, i+1)
	}
	sb.WriteString(`]}`)
	resp, _ = postBatch(t, ts.URL, sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPBatchMatchesStats: batch traffic lands in the same counters
// as single-op traffic, plus the batch-shape counters.
func TestHTTPBatchMatchesStats(t *testing.T) {
	d, ts := newTestServer(t)
	resp, _ := postBatch(t, ts.URL, `{"ops":[
		{"op":"arrive","id":1,"size":0.1,"time":0},
		{"op":"arrive","id":2,"size":0.1,"time":0},
		{"op":"depart","id":1,"time":1}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	st := d.Stats()
	if st.Arrivals != 2 || st.Departures != 1 || st.Batches != 1 || st.BatchOps != 3 {
		t.Fatalf("stats after batch: %+v", st)
	}
}

package serve_test

import (
	"reflect"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// ts returns a pointer to an explicit event timestamp, so these tests
// are clock-independent.
func ts(v float64) *float64 { return &v }

// vecBarrage drives one deterministic vector workload against d: three
// arrivals with distinct demand vectors, then (optionally) departs for
// all of them. Times are explicit so two dispatchers given the same
// calls are bit-identical.
func vecBarrage(t *testing.T, d *serve.Dispatcher, depart bool) {
	t.Helper()
	arrive := func(id item.ID, at float64, v []float64) {
		max := v[0]
		for _, x := range v[1:] {
			if x > max {
				max = x
			}
		}
		if _, err := d.Arrive(id, max, v, ts(at)); err != nil {
			t.Fatalf("arrive %d: %v", id, err)
		}
	}
	arrive(1, 0, []float64{0.6, 0.2})
	arrive(2, 1, []float64{0.3, 0.7})
	arrive(3, 2, []float64{0.5, 0.4})
	if !depart {
		return
	}
	for id := item.ID(1); id <= 3; id++ {
		if _, err := d.Depart(id, ts(float64(id)+2)); err != nil {
			t.Fatalf("depart %d: %v", id, err)
		}
	}
}

// scribble overwrites every demand vector in a ShardEvents result, as a
// misbehaving (or buffer-recycling) consumer would.
func scribble(events []serve.Event) {
	for i := range events {
		for d := range events[i].Sizes {
			events[i].Sizes[d] = 99.5
		}
	}
}

// TestShardEventsOwnershipInMemory is the regression test for the
// in-memory journal's shared-slice bug: the journal entry's demand
// vector used to alias the very slice the stream's ledger retains for
// the live job, so a consumer writing through a ShardEvents result
// corrupted the levels the job's eventual depart subtracts — and every
// later read of the journal. Both the journal append and the read-out
// must hand over copies.
func TestShardEventsOwnershipInMemory(t *testing.T) {
	mk := func() *serve.Dispatcher {
		d, err := serve.New(serve.Config{Shards: 1, Dim: 2, RecordEvents: true})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d, control := mk(), mk()

	vecBarrage(t, d, false)
	vecBarrage(t, control, false)

	first := d.ShardEvents(0)
	scribble(first)

	// A second read must see the journal as applied, untouched by the
	// first reader's writes.
	second := d.ShardEvents(0)
	want := [][]float64{{0.6, 0.2}, {0.3, 0.7}, {0.5, 0.4}}
	if len(second) != len(want) {
		t.Fatalf("journal has %d events, want %d", len(second), len(want))
	}
	for i, w := range want {
		if !reflect.DeepEqual(second[i].Sizes, w) {
			t.Errorf("journal event %d sizes = %v, want %v (reader scribble leaked in)", i, second[i].Sizes, w)
		}
	}

	// The live fleet must be untouched too: departs subtract each job's
	// retained demand vector from its server's levels, so the drained
	// state must match a control dispatcher that never exposed its
	// journal.
	for id := item.ID(1); id <= 3; id++ {
		at := float64(id) + 2
		if _, err := d.Depart(id, ts(at)); err != nil {
			t.Fatalf("depart %d after scribble: %v", id, err)
		}
		if _, err := control.Depart(id, ts(at)); err != nil {
			t.Fatalf("control depart %d: %v", id, err)
		}
	}
	d.Close()
	control.Close()
	if got, wantSnap := d.Snapshot(0), control.Snapshot(0); !reflect.DeepEqual(got, wantSnap) {
		t.Fatalf("scribbled dispatcher diverged from control:\n got  %+v\n want %+v", got, wantSnap)
	}
}

// TestShardEventsOwnershipWAL pins the same ownership contract on the
// durable path: ShardEvents reads the WAL tail, whose decoder allocates
// a fresh vector per record, so consecutive reads are independent even
// if a consumer scribbles on one.
func TestShardEventsOwnershipWAL(t *testing.T) {
	d, err := serve.New(serve.Config{
		Shards: 1, Dim: 2, RecordEvents: true, DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	vecBarrage(t, d, true)

	first := d.ShardEvents(0)
	if len(first) != 6 {
		t.Fatalf("WAL journal has %d events, want 6", len(first))
	}
	scribble(first)

	second := d.ShardEvents(0)
	want := [][]float64{{0.6, 0.2}, {0.3, 0.7}, {0.5, 0.4}}
	for i, w := range want {
		if !reflect.DeepEqual(second[i].Sizes, w) {
			t.Errorf("WAL event %d sizes = %v, want %v (reader scribble leaked in)", i, second[i].Sizes, w)
		}
	}
}

// TestApplyBatchBufferReuseReplay extends TestApplyBatchCopiesSizes
// through the jobs' full lifetime: after the transport's decode buffer
// is scribbled, the departs must still subtract the original demands
// (the ledger owns its copies), and the journal must replay into the
// same server assignments as the live run.
func TestApplyBatchBufferReuseReplay(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 1, Dim: 2, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}

	buf := []float64{0.6, 0.2} // one decode buffer, reused across batches
	results := make([]serve.BatchResult, 1)
	at := 0.0
	d.ApplyBatch([]serve.BatchOp{{ID: 1, Size: 0.6, Sizes: buf, Time: at, HasTime: true}}, results)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	buf[0], buf[1] = 0.3, 0.7 // transport reuses its buffer
	d.ApplyBatch([]serve.BatchOp{{ID: 2, Size: 0.7, Sizes: buf, Time: 1, HasTime: true}}, results)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	buf[0], buf[1] = 42, 42 // and scribbles it once more before the departs
	for id := item.ID(1); id <= 2; id++ {
		d.ApplyBatch([]serve.BatchOp{{ID: id, Depart: true, Time: float64(id) + 1, HasTime: true}}, results)
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
	}
	d.Close()

	events := d.ShardEvents(0)
	if len(events) != 4 {
		t.Fatalf("journal has %d events, want 4", len(events))
	}
	wantSizes := [][]float64{{0.6, 0.2}, {0.3, 0.7}}
	for i, want := range wantSizes {
		if !reflect.DeepEqual(events[i].Sizes, want) {
			t.Errorf("journal event %d sizes = %v, want %v (batch buffer reuse leaked in)", i, events[i].Sizes, want)
		}
	}

	// Replay certificate: the journal must reproduce the live run.
	algo, _ := packing.ByName("firstfit")
	replay := packing.NewStream(algo, 0, 2)
	for k, ev := range events {
		var server int
		var err error
		switch ev.Kind {
		case "arrive":
			server, _, err = replay.Arrive(ev.ID, ev.Size, ev.Sizes, ev.Time)
		case "depart":
			server, _, err = replay.Depart(ev.ID, ev.Time)
		}
		if err != nil {
			t.Fatalf("replay event %d: %v", k, err)
		}
		if server != ev.Server {
			t.Fatalf("replay event %d: live run used server %d, replay used %d", k, ev.Server, server)
		}
	}
}

// Package serve is the allocation-service layer: a thread-safe, sharded
// dispatcher over packing.Stream plus the JSON/HTTP front end that
// cmd/dbpserved mounts. Tenants (job IDs) are partitioned across N
// independent shards by a fixed hash, each shard owning one stream
// guarded by a mutex, so throughput scales with cores while every shard
// keeps the paper's strictly sequential online semantics. Jobs never
// interact across servers, so sharding the fleet preserves each
// policy's per-shard behavior exactly; the global usage-time objective
// is the sum over shards.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
)

// ErrClosed is returned for requests arriving after Close has begun
// draining the dispatcher; the HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: dispatcher is shutting down")

// Config configures a Dispatcher.
type Config struct {
	// Algorithm is the packing policy short name ("firstfit", ...);
	// each shard gets its own fresh instance. Empty means "firstfit".
	Algorithm string
	// Shards is the number of independent streams; <= 0 means
	// GOMAXPROCS.
	Shards int
	// Capacity is the per-dimension server capacity (0 means 1.0).
	Capacity float64
	// Dim is the resource dimensionality (0 means 1).
	Dim int
	// KeepAlive keeps emptied servers open (reusable) for this many
	// time units, as in packing.NewStreamKeepAlive.
	KeepAlive float64
	// RecordEvents journals every accepted event per shard (as actually
	// applied, post clock guard) for audit and replay reconciliation.
	RecordEvents bool
	// Clock overrides the service clock (seconds since some epoch,
	// non-decreasing). Nil means a monotonic wall clock starting at 0
	// when the dispatcher is created. Tests inject deterministic time.
	Clock func() float64
}

// Event is one journaled shard event, recorded exactly as fed to the
// shard's stream (time is post-guard), so a sequential replay of a
// shard's journal reproduces its stream state bit for bit.
type Event struct {
	Kind   string    `json:"kind"` // "arrive" or "depart"
	ID     item.ID   `json:"id"`
	Size   float64   `json:"size,omitempty"`
	Sizes  []float64 `json:"sizes,omitempty"`
	Time   float64   `json:"time"`
	Server int       `json:"server"`
}

// Placement is the outcome of a successful Arrive.
type Placement struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"` // index within the shard's fleet
	Opened bool    `json:"opened"` // a new server was started for this job
	Time   float64 `json:"time"`   // the time the event was applied at
}

// Departure is the outcome of a successful Depart.
type Departure struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"`
	Closed bool    `json:"closed"` // the server shut down as a result
	Time   float64 `json:"time"`
}

type shard struct {
	mu     sync.Mutex
	stream *packing.Stream
	closed bool
	log    []Event
}

// guard clamps a service-assigned timestamp so it never regresses the
// shard's stream clock: two requests can read the service clock in one
// order and win the shard lock in the other, and a rejected event (a
// duplicate arrive, say) still advances the stream clock before being
// refused. Explicit caller timestamps are never rewritten.
func (sh *shard) guard(at float64, assigned bool) float64 {
	if assigned && sh.stream.Events() > 0 && at < sh.stream.Now() {
		return sh.stream.Now()
	}
	return at
}

// Dispatcher routes jobs to shards and serializes each shard's events.
// All methods are safe for concurrent use.
type Dispatcher struct {
	cfg     Config
	shards  []*shard
	metrics metrics
	start   time.Time
	clock   func() float64

	closing  sync.Once
	draining atomic.Bool
	final    atomic.Pointer[Stats] // set once by Close
}

// New creates a sharded dispatcher. It fails only on an unknown policy
// name or invalid configuration.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "firstfit"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.KeepAlive < 0 {
		return nil, fmt.Errorf("serve: negative keep-alive %g", cfg.KeepAlive)
	}
	d := &Dispatcher{cfg: cfg, shards: make([]*shard, cfg.Shards), start: time.Now()}
	d.metrics.init()
	for i := range d.shards {
		algo, err := packing.ByName(cfg.Algorithm)
		if err != nil {
			return nil, err
		}
		d.shards[i] = &shard{stream: packing.NewStreamKeepAlive(algo, cfg.Capacity, cfg.Dim, cfg.KeepAlive)}
	}
	d.clock = cfg.Clock
	if d.clock == nil {
		// time.Since reads Go's monotonic clock, immune to wall-clock
		// steps; the per-shard guard below still clamps the residual
		// race between reading the clock and winning the shard lock.
		d.clock = func() float64 { return time.Since(d.start).Seconds() }
	}
	return d, nil
}

// NumShards returns the number of shards.
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// splitmix64 is the SplitMix64 finalizer: a fixed, well-mixing hash so
// that job-ID → shard routing is consistent across restarts and spreads
// sequential tenant IDs evenly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardFor returns the shard index the job ID routes to.
func (d *Dispatcher) ShardFor(id item.ID) int {
	return int(splitmix64(uint64(id)) % uint64(len(d.shards)))
}

// resolveTime picks the event time: the caller's explicit timestamp if
// t is non-nil, else the service clock. assigned reports the latter, in
// which case the shard guard may clamp it forward (service-clock reads
// racing for the shard lock may arrive out of order); explicit caller
// timestamps are never silently rewritten — a regression there is the
// caller's error and surfaces as packing.ErrTimeRegression.
func (d *Dispatcher) resolveTime(t *float64) (float64, bool) {
	if t != nil {
		return *t, false
	}
	return d.clock(), true
}

// Arrive dispatches a job to its shard. A nil t means "now" (service
// clock). On error the returned Placement is zero-valued.
func (d *Dispatcher) Arrive(id item.ID, size float64, sizes []float64, t *float64) (Placement, error) {
	defer d.metrics.observeArrive(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	sh := d.shards[si]

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		d.metrics.reject(ErrClosed)
		return Placement{}, ErrClosed
	}
	at = sh.guard(at, assigned)
	server, opened, err := sh.stream.Arrive(id, size, sizes, at)
	if err != nil {
		d.metrics.reject(err)
		return Placement{}, err
	}
	d.metrics.arrivals.Add(1)
	if opened {
		d.metrics.serversOpened.Add(1)
	}
	if d.cfg.RecordEvents {
		sh.log = append(sh.log, Event{Kind: "arrive", ID: id, Size: size, Sizes: sizes, Time: at, Server: server})
	}
	return Placement{ID: id, Shard: si, Server: server, Opened: opened, Time: at}, nil
}

// Depart reports a job departure to its shard. A nil t means "now".
func (d *Dispatcher) Depart(id item.ID, t *float64) (Departure, error) {
	defer d.metrics.observeDepart(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	sh := d.shards[si]

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		d.metrics.reject(ErrClosed)
		return Departure{}, ErrClosed
	}
	at = sh.guard(at, assigned)
	server, closed, err := sh.stream.Depart(id, at)
	if err != nil {
		d.metrics.reject(err)
		return Departure{}, err
	}
	d.metrics.departures.Add(1)
	if closed {
		d.metrics.serversClosed.Add(1)
	}
	if d.cfg.RecordEvents {
		sh.log = append(sh.log, Event{Kind: "depart", ID: id, Time: at, Server: server})
	}
	return Departure{ID: id, Shard: si, Server: server, Closed: closed, Time: at}, nil
}

// ShardEvents returns a copy of shard i's journal (Config.RecordEvents
// must be on). The journal lists events in the exact order the shard
// applied them.
func (d *Dispatcher) ShardEvents(i int) []Event {
	sh := d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]Event, len(sh.log))
	copy(out, sh.log)
	return out
}

// Snapshot returns shard i's stream snapshot (totals + open servers).
func (d *Dispatcher) Snapshot(i int) packing.Snapshot {
	sh := d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stream.Snapshot()
}

// Close drains the dispatcher: every request that already holds a shard
// is allowed to finish, later requests get ErrClosed, lingering
// keep-alive servers are shut down at their natural expiry, and the
// final totals are computed. Close is idempotent; every call returns
// the same final Stats.
func (d *Dispatcher) Close() Stats {
	d.closing.Do(func() {
		d.draining.Store(true)
		for _, sh := range d.shards {
			sh.mu.Lock()
			sh.closed = true
			sh.stream.Shutdown()
			sh.mu.Unlock()
		}
		s := d.Stats()
		d.final.Store(&s)
	})
	return *d.final.Load()
}

// Draining reports whether Close has begun; the health endpoint flips
// to 503 the moment this is true.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

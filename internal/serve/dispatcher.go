// Package serve is the allocation-service layer: a thread-safe, sharded
// dispatcher over packing.Stream plus the JSON/HTTP front end that
// cmd/dbpserved mounts. Tenants (job IDs) are partitioned across N
// independent shards by a fixed hash; each shard's stream is owned by a
// single writer goroutine fed request envelopes over a bounded channel,
// so throughput scales with cores without any lock on the event path
// while every shard keeps the paper's strictly sequential online
// semantics. Jobs never interact across servers, so sharding the fleet
// preserves each policy's per-shard behavior exactly; the global
// usage-time objective is the sum over shards.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/wal"
)

// ErrClosed is returned for requests arriving after Close has begun
// draining the dispatcher; the HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: dispatcher is shutting down")

// ErrDurability is returned once a shard's write-ahead log has failed:
// the shard fails stop — its in-memory stream stays consistent with
// what was acknowledged, but no further writes are accepted, keeping
// the divergence between memory and disk bounded at the first failed
// record. The HTTP layer maps it to 503.
var ErrDurability = errors.New("serve: shard journal failed; shard refuses writes")

// Config configures a Dispatcher.
type Config struct {
	// Algorithm is the packing policy short name ("firstfit", ...);
	// each shard gets its own fresh instance. Empty means "firstfit".
	Algorithm string
	// Shards is the number of independent streams; <= 0 means
	// GOMAXPROCS.
	Shards int
	// Capacity is the per-dimension server capacity (0 means 1.0).
	Capacity float64
	// Dim is the resource dimensionality (0 means 1).
	Dim int
	// KeepAlive keeps emptied servers open (reusable) for this many
	// time units, as in packing.NewStreamKeepAlive.
	KeepAlive float64
	// RecordEvents journals every accepted event per shard (as actually
	// applied, post clock guard) for audit and replay reconciliation.
	// With DataDir set, the write-ahead log itself is the journal —
	// ShardEvents reads the WAL tail and no unbounded in-memory copy is
	// kept.
	RecordEvents bool
	// QueueDepth bounds each shard's request channel (<= 0 means 1024).
	// A full queue applies backpressure: submitters block until the
	// shard owner catches up, so memory stays bounded under overload.
	QueueDepth int
	// Clock overrides the service clock (seconds since some epoch,
	// non-decreasing). Nil means a monotonic wall clock starting at 0
	// when the dispatcher is created (resuming from the recovered
	// stream clock when a WAL is recovered). Tests inject deterministic
	// time.
	Clock func() float64

	// DataDir enables the durable write-ahead journal (internal/wal):
	// every accepted event is appended to a per-shard segmented log
	// before its reply is sent, periodic snapshots bound replay length,
	// and New recovers each shard bit-identically from snapshot + tail.
	// Empty disables durability (the pre-existing in-memory behavior).
	DataDir string
	// Fsync is the WAL durability policy: "always", "interval", or
	// "off" (the default).
	Fsync string
	// FsyncInterval is the background sync period for Fsync="interval".
	FsyncInterval time.Duration
	// SnapshotEvery writes a durable shard snapshot every this many
	// shard events (and truncates covered segments). <= 0 means only
	// the drain-time snapshot on Close.
	SnapshotEvery int
	// SegmentBytes overrides the WAL segment rotation size (testing).
	SegmentBytes int64
}

// Event is one journaled shard event, recorded exactly as fed to the
// shard's stream (time is post-guard), so a sequential replay of a
// shard's journal reproduces its stream state bit for bit.
type Event struct {
	Kind   string    `json:"kind"` // "arrive" or "depart"
	ID     item.ID   `json:"id"`
	Size   float64   `json:"size,omitempty"`
	Sizes  []float64 `json:"sizes,omitempty"`
	Time   float64   `json:"time"`
	Server int       `json:"server"`
}

// Placement is the outcome of a successful Arrive.
type Placement struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"` // index within the shard's fleet
	Opened bool    `json:"opened"` // a new server was started for this job
	Time   float64 `json:"time"`   // the time the event was applied at
}

// Departure is the outcome of a successful Depart.
type Departure struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"`
	Closed bool    `json:"closed"` // the server shut down as a result
	Time   float64 `json:"time"`
}

// opKind tags a request envelope.
type opKind uint8

const (
	opArrive opKind = iota
	opDepart
	opBatch    // a shard's slice of one ApplyBatch call
	opSnapshot // control: deep-copy the shard's stream state
)

// request is one envelope on a shard's queue. The reply channel has
// capacity 1, so the owner never blocks answering; envelopes (and
// their reply channels) are pooled.
type request struct {
	kind     opKind
	id       item.ID
	size     float64
	sizes    []float64 // dispatcher-owned copy, safe to retain
	at       float64
	assigned bool // at came from the service clock (guard may clamp)
	reply    chan response

	// Batch envelopes (kind opBatch): the shard's slice of one
	// ApplyBatch call. bops is applied in order; each entry's result
	// lands at out[entry.pos] — shards of one batch write disjoint
	// positions, so the scatter needs no lock.
	bops []batchEntry
	out  []BatchResult
}

// response is the owner's answer to one envelope.
type response struct {
	server int
	flag   bool // opened (arrive) / closed (depart)
	at     float64
	err    error
	snap   packing.Snapshot // opSnapshot only
}

var reqPool = sync.Pool{
	New: func() any { return &request{reply: make(chan response, 1)} },
}

// publishEvery bounds gauge staleness under sustained load: the shard
// owner republishes its stats snapshot at least every publishEvery
// applied envelopes, and immediately whenever its queue runs empty.
const publishEvery = 256

// shard is one single-writer partition: exactly one goroutine (run)
// ever touches stream, log appends, and gauge stores after New
// returns; everyone else communicates through reqs or reads the
// atomically published gauge. The closed flag plus the inflight count
// form the submission gate that makes closing reqs race-free.
type shard struct {
	reqs     chan *request
	inflight atomic.Int64  // submitters currently between gate entry and channel send
	closed   atomic.Bool   // no new submissions may enter the queue
	done     chan struct{} // closed when the owner goroutine has exited

	stream *packing.Stream // owned by run(); read directly only after done
	policy string
	engine string

	gauge atomic.Pointer[ShardStats] // last published stats snapshot

	logMu sync.Mutex // guards log: owner appends, ShardEvents copies
	log   []Event

	// Durability (nil wal means the shard runs in-memory only). The
	// owner is the only appender; walErr is the shard-level fail-stop
	// latch (atomic so DurabilityErr can read it from any goroutine).
	wal            *wal.Log
	walErr         atomic.Pointer[walFailure]
	lastSnapEvents int // stream event count the last snapshot covered
}

// walFailure boxes the first durability error of a poisoned shard.
type walFailure struct{ err error }

// poison latches the shard's first durability failure; the shard
// refuses all subsequent writes with ErrDurability.
func (sh *shard) poison(err error) {
	sh.walErr.CompareAndSwap(nil, &walFailure{err: err})
}

// guard clamps a service-assigned timestamp so it never regresses the
// shard's stream clock: two requests can read the service clock in one
// order and enter the shard queue in the other, and a rejected event
// (a duplicate arrive, say) still advances the stream clock before
// being refused. Explicit caller timestamps are never rewritten.
func (sh *shard) guard(at float64, assigned bool) float64 {
	if assigned && sh.stream.Events() > 0 && at < sh.stream.Now() {
		return sh.stream.Now()
	}
	return at
}

// Dispatcher routes jobs to shards and serializes each shard's events
// through its owner goroutine. All methods are safe for concurrent use.
type Dispatcher struct {
	cfg     Config
	shards  []*shard
	metrics metrics
	start   time.Time
	clock   func() float64

	closing  sync.Once
	draining atomic.Bool
	final    atomic.Pointer[Stats] // set once by Close

	store *wal.Store // nil unless Config.DataDir enabled durability
}

// New creates a sharded dispatcher and starts one owner goroutine per
// shard. It fails only on an unknown policy name or invalid
// configuration; Close stops the owners.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "firstfit"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.KeepAlive < 0 {
		return nil, fmt.Errorf("serve: negative keep-alive %g", cfg.KeepAlive)
	}
	if _, err := packing.ByName(cfg.Algorithm); err != nil {
		return nil, err
	}
	d := &Dispatcher{cfg: cfg, shards: make([]*shard, cfg.Shards), start: time.Now()}
	d.metrics.init()
	if cfg.DataDir != "" {
		pol, err := wal.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		d.cfg.Fsync = string(pol) // normalized ("" means off) for the stats block
		// Record the effective configuration (after defaulting) so the
		// META guard compares what the streams actually run with.
		meta := wal.Meta{
			Shards:    cfg.Shards,
			Dim:       max(cfg.Dim, 1),
			Capacity:  cfg.Capacity,
			KeepAlive: cfg.KeepAlive,
			Algorithm: cfg.Algorithm,
		}
		if meta.Capacity <= 0 {
			meta.Capacity = 1
		}
		d.store, err = wal.OpenStore(cfg.DataDir, meta, wal.Options{
			Fsync:         pol,
			FsyncInterval: cfg.FsyncInterval,
			SegmentBytes:  cfg.SegmentBytes,
		}, func(_ int, dur time.Duration) { d.metrics.observeFsync(dur) })
		if err != nil {
			return nil, err
		}
	}
	clockBase := 0.0
	for i := range d.shards {
		algo, _ := packing.ByName(cfg.Algorithm)
		sh := &shard{
			reqs: make(chan *request, cfg.QueueDepth),
			done: make(chan struct{}),
		}
		if d.store != nil {
			sh.wal = d.store.Shard(i)
			stream, err := recoverShard(cfg, algo, sh.wal)
			if err != nil {
				d.store.Close()
				return nil, fmt.Errorf("serve: recovering shard %d: %w", i, err)
			}
			sh.stream = stream
			sh.lastSnapEvents = int(sh.wal.Stats().SnapshotSeq)
			if stream.Events() > 0 && stream.Now() > clockBase {
				clockBase = stream.Now()
			}
		} else {
			sh.stream = packing.NewStreamKeepAlive(algo, cfg.Capacity, cfg.Dim, cfg.KeepAlive)
		}
		sh.policy, sh.engine = sh.stream.Policy(), sh.stream.Engine()
		sh.publish(i)
		d.shards[i] = sh
	}
	d.clock = cfg.Clock
	if d.clock == nil {
		// time.Since reads Go's monotonic clock, immune to wall-clock
		// steps; the per-shard guard below still clamps the residual
		// race between reading the clock and entering the shard queue.
		// After recovery the clock resumes from the furthest recovered
		// stream time, so service-assigned timestamps keep advancing
		// instead of all clamping to the recovered clock.
		base := clockBase
		d.clock = func() float64 { return base + time.Since(d.start).Seconds() }
	}
	for i, sh := range d.shards {
		go d.run(i, sh)
	}
	return d, nil
}

// NumShards returns the number of shards.
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// recoverShard rebuilds one shard's stream from its durable log: load
// the newest snapshot (if any) and restore it bit-identically, then
// replay the journal tail through the exact entry points the live path
// uses. Every record's sequence number must equal the stream's event
// count at the moment it is applied (one record per clock advance, by
// construction of applyOne), and a replayed arrive/depart must land on
// the journaled server — any divergence means the directory does not
// belong to this configuration and recovery refuses to guess.
func recoverShard(cfg Config, algo packing.Algorithm, log *wal.Log) (*packing.Stream, error) {
	var s *packing.Stream
	payload, seq, ok, err := log.LoadSnapshot()
	if err != nil {
		return nil, err
	}
	if ok {
		var snap packing.Snapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("decoding snapshot: %w", err)
		}
		if uint64(snap.Events) != seq {
			return nil, fmt.Errorf("snapshot claims event count %d but covers journal seq %d", snap.Events, seq)
		}
		if s, err = packing.RestoreStream(algo, snap); err != nil {
			return nil, err
		}
	} else {
		s = packing.NewStreamKeepAlive(algo, cfg.Capacity, cfg.Dim, cfg.KeepAlive)
	}
	err = log.Replay(uint64(s.Events()), func(seq uint64, r wal.Record) error {
		if seq != uint64(s.Events()) {
			return fmt.Errorf("journal gap: record %d applied at stream event %d", seq, s.Events())
		}
		switch r.Kind {
		case wal.KindArrive:
			srv, _, err := s.Arrive(item.ID(r.ID), r.Size, r.Sizes, r.Time)
			if err != nil {
				return fmt.Errorf("replaying arrive seq %d: %w", seq, err)
			}
			if srv != int(r.Server) {
				return fmt.Errorf("replay divergence at seq %d: arrive placed on server %d, journal says %d", seq, srv, r.Server)
			}
		case wal.KindDepart:
			srv, _, err := s.Depart(item.ID(r.ID), r.Time)
			if err != nil {
				return fmt.Errorf("replaying depart seq %d: %w", seq, err)
			}
			if srv != int(r.Server) {
				return fmt.Errorf("replay divergence at seq %d: depart from server %d, journal says %d", seq, srv, r.Server)
			}
		case wal.KindTick:
			if err := s.Advance(r.Time); err != nil {
				return fmt.Errorf("replaying tick seq %d: %w", seq, err)
			}
		default:
			return fmt.Errorf("unknown record kind %d at seq %d", r.Kind, seq)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// walAppend journals one record and, when due, rolls a durable
// snapshot. A failed append poisons the shard (fail-stop): the record
// was not acknowledged on disk, so no further writes are accepted.
// Owner-only.
func (d *Dispatcher) walAppend(sh *shard, rec *wal.Record) error {
	if err := sh.wal.Append(rec); err != nil {
		sh.poison(err)
		return err
	}
	if d.cfg.SnapshotEvery > 0 && sh.stream.Events()-sh.lastSnapEvents >= d.cfg.SnapshotEvery {
		// The snapshot is an optimization (it bounds replay length); a
		// failure here still poisons the shard because SaveSnapshot
		// syncs the journal and a sync failure means lost writes.
		d.saveShardSnapshot(sh)
	}
	return nil
}

// saveShardSnapshot rolls a durable snapshot of the shard's full stream
// state and lets the log truncate covered segments. Owner-only.
func (d *Dispatcher) saveShardSnapshot(sh *shard) {
	snap := sh.stream.Snapshot()
	if uint64(snap.Events) != sh.wal.NextSeq() {
		sh.poison(fmt.Errorf("serve: shard journal out of step: stream at event %d, journal at seq %d", snap.Events, sh.wal.NextSeq()))
		return
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		sh.poison(fmt.Errorf("serve: encoding shard snapshot: %w", err))
		return
	}
	if err := sh.wal.SaveSnapshot(uint64(snap.Events), time.Now().UnixNano(), payload); err != nil {
		sh.poison(err)
		return
	}
	sh.lastSnapEvents = snap.Events
}

// DurabilityErr reports the first durability failure of any shard, or
// nil while every journal is healthy (or durability is off). A non-nil
// value means the affected shards are refusing writes with
// ErrDurability.
func (d *Dispatcher) DurabilityErr() error {
	for _, sh := range d.shards {
		if f := sh.walErr.Load(); f != nil {
			return f.err
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer: a fixed, well-mixing hash so
// that job-ID → shard routing is consistent across restarts and spreads
// sequential tenant IDs evenly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardFor returns the shard index the job ID routes to.
func (d *Dispatcher) ShardFor(id item.ID) int {
	return int(splitmix64(uint64(id)) % uint64(len(d.shards)))
}

// resolveTime picks the event time: the caller's explicit timestamp if
// t is non-nil, else the service clock. assigned reports the latter, in
// which case the shard guard may clamp it forward (service-clock reads
// racing into the shard queue may arrive out of order); explicit caller
// timestamps are never silently rewritten — a regression there is the
// caller's error and surfaces as packing.ErrTimeRegression.
func (d *Dispatcher) resolveTime(t *float64) (float64, bool) {
	if t != nil {
		return *t, false
	}
	return d.clock(), true
}

// submit enqueues an envelope on the shard and waits for the owner's
// reply. The inflight/closed pair is the drain gate: Close first flips
// closed (new submissions bounce with ErrClosed), then waits for the
// inflight count to hit zero before closing the channel — so a
// submitter that passed the gate always has a live receiver and every
// envelope that entered the queue is answered. ok=false means the
// envelope never entered the queue.
func (sh *shard) submit(req *request) (response, bool) {
	sh.inflight.Add(1)
	if sh.closed.Load() {
		sh.inflight.Add(-1)
		putRequest(req)
		return response{}, false
	}
	sh.reqs <- req
	sh.inflight.Add(-1)
	resp := <-req.reply
	putRequest(req)
	return resp, true
}

func putRequest(req *request) {
	req.sizes = nil // the journal/stream own the copied slice now
	clear(req.bops) // drop size-slice references; journal/stream own them
	req.bops = req.bops[:0]
	req.out = nil
	reqPool.Put(req)
}

// Arrive dispatches a job to its shard. A nil t means "now" (service
// clock). On error the returned Placement is zero-valued.
func (d *Dispatcher) Arrive(id item.ID, size float64, sizes []float64, t *float64) (Placement, error) {
	defer d.metrics.observeArrive(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	if len(sizes) > 0 {
		// Copy once at the API boundary: the stream's ledger and the
		// journal both retain the demand vector beyond this call, and
		// callers are free to reuse their slice.
		sizes = append([]float64(nil), sizes...)
	}
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opArrive, id, size, sizes, at, assigned
	resp, ok := d.shards[si].submit(req)
	if !ok {
		d.metrics.reject(ErrClosed)
		return Placement{}, ErrClosed
	}
	if resp.err != nil {
		return Placement{}, resp.err
	}
	return Placement{ID: id, Shard: si, Server: resp.server, Opened: resp.flag, Time: resp.at}, nil
}

// Depart reports a job departure to its shard. A nil t means "now".
func (d *Dispatcher) Depart(id item.ID, t *float64) (Departure, error) {
	defer d.metrics.observeDepart(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opDepart, id, 0, nil, at, assigned
	resp, ok := d.shards[si].submit(req)
	if !ok {
		d.metrics.reject(ErrClosed)
		return Departure{}, ErrClosed
	}
	if resp.err != nil {
		return Departure{}, resp.err
	}
	return Departure{ID: id, Shard: si, Server: resp.server, Closed: resp.flag, Time: resp.at}, nil
}

// run is shard si's owner goroutine: the only writer of the shard's
// stream and journal. It applies envelopes strictly in queue order,
// republishing the shard's stats gauge whenever the queue runs empty
// (and at least every publishEvery envelopes under sustained load).
// When Close shuts the queue, it finishes the backlog — everything
// that entered the queue is applied, nothing is dropped — then shuts
// lingering keep-alive servers and publishes the final gauge.
func (d *Dispatcher) run(si int, sh *shard) {
	defer close(sh.done)
	sincePublish := 0
	for {
		var req *request
		var ok bool
		select {
		case req, ok = <-sh.reqs:
		default:
			// Queue empty: publish a fresh gauge, then block.
			sh.publish(si)
			sincePublish = 0
			req, ok = <-sh.reqs
		}
		if !ok {
			break
		}
		sincePublish += d.apply(si, sh, req)
		if sincePublish >= publishEvery {
			sh.publish(si)
			sincePublish = 0
		}
	}
	if sh.wal != nil && sh.walErr.Load() == nil && sh.stream.Events() > sh.lastSnapEvents {
		// Final snapshot of the pre-shutdown state, taken BEFORE
		// Shutdown closes lingering keep-alive servers: Shutdown is an
		// accounting finalization for the exit stats, not a journaled
		// event, so recovery resumes exactly where live traffic stopped.
		d.saveShardSnapshot(sh)
	}
	sh.stream.Shutdown()
	sh.publish(si)
}

// apply executes one envelope against the shard's stream: clamp the
// timestamp, run the event, bump the metrics, journal the applied
// event (so ShardEvents reflects every answered request), then reply.
// It returns the number of stream events the envelope carried, which
// paces the owner's gauge republishing. The envelope still belongs to
// the submitter — apply must not touch it after sending the reply.
func (d *Dispatcher) apply(si int, sh *shard, req *request) int {
	switch req.kind {
	case opSnapshot:
		req.reply <- response{snap: sh.stream.Snapshot()}
		return 1
	case opBatch:
		n := len(req.bops)
		for i := range req.bops {
			e := &req.bops[i]
			server, flag, at, err := d.applyOne(sh, e.depart, e.id, e.size, e.sizes, e.at, e.assigned)
			req.out[e.pos] = BatchResult{Server: server, Flag: flag, Time: at, Err: err}
		}
		req.reply <- response{}
		return n
	}
	depart := req.kind == opDepart
	server, flag, at, err := d.applyOne(sh, depart, req.id, req.size, req.sizes, req.at, req.assigned)
	req.reply <- response{server: server, flag: flag, at: at, err: err}
	return 1
}

// applyOne runs one event against the shard's stream and does its
// metrics and journal accounting; shared by the single-op and batch
// envelope paths so both have identical semantics. Owner-only.
func (d *Dispatcher) applyOne(sh *shard, depart bool, id item.ID, size float64, sizes []float64, at float64, assigned bool) (server int, flag bool, applied float64, err error) {
	at = sh.guard(at, assigned)
	if sh.wal != nil && sh.walErr.Load() != nil {
		d.metrics.reject(ErrDurability)
		return 0, false, at, ErrDurability
	}
	if depart {
		server, flag, err = sh.stream.Depart(id, at)
	} else {
		server, flag, err = sh.stream.Arrive(id, size, sizes, at)
	}
	if err != nil {
		// Every rejection except a time regression already advanced the
		// shard clock (and may have expired keep-alive servers), so the
		// journal records a tick for it — replay must reproduce the
		// advance. A time regression mutated nothing and records nothing.
		if sh.wal != nil && !errors.Is(err, packing.ErrTimeRegression) {
			rec := wal.Record{Kind: wal.KindTick, ID: int64(id), Time: at, Server: -1}
			d.walAppend(sh, &rec) // a failure poisons the shard; this op still reports its rejection
		}
		d.metrics.reject(err)
		return 0, false, at, err
	}
	if sh.wal != nil {
		// Append before reply: the caller's acknowledgment implies the
		// event is journaled (and, under fsync=always, on disk). If the
		// journal refuses, the in-memory stream has applied an event the
		// disk never saw — fail stop and report the write as refused.
		kind := wal.KindArrive
		if depart {
			kind = wal.KindDepart
		}
		rec := wal.Record{Kind: kind, ID: int64(id), Time: at, Server: int32(server), Size: size, Sizes: sizes}
		if werr := d.walAppend(sh, &rec); werr != nil {
			err = fmt.Errorf("%w: %v", ErrDurability, werr)
			d.metrics.reject(err)
			return 0, false, at, err
		}
	}
	if depart {
		d.metrics.departures.Add(1)
		if flag {
			d.metrics.serversClosed.Add(1)
		}
		if d.cfg.RecordEvents && sh.wal == nil {
			sh.append(Event{Kind: "depart", ID: id, Time: at, Server: server})
		}
	} else {
		d.metrics.arrivals.Add(1)
		if flag {
			d.metrics.serversOpened.Add(1)
		}
		if d.cfg.RecordEvents && sh.wal == nil {
			// Copy the demand vector: sizes is the same slice the stream's
			// ledger retained for this job (Stream.Arrive keeps the caller
			// slice), so a journal entry aliasing it would let anyone
			// scribbling on a ShardEvents result corrupt the live levels
			// the job's eventual depart subtracts from.
			sh.append(Event{Kind: "arrive", ID: id, Size: size,
				Sizes: append([]float64(nil), sizes...), Time: at, Server: server})
		}
	}
	return server, flag, at, nil
}

// append journals one applied event. Only the owner goroutine appends;
// the mutex exists so ShardEvents can copy concurrently — it is never
// contended on the event path.
func (sh *shard) append(ev Event) {
	sh.logMu.Lock()
	sh.log = append(sh.log, ev)
	sh.logMu.Unlock()
}

// publish stores a fresh stats gauge for lock-free readers (Stats,
// the /v1/stats endpoint). Owner-only.
func (sh *shard) publish(si int) {
	st := sh.stream
	sh.gauge.Store(&ShardStats{
		Shard:       si,
		Policy:      sh.policy,
		Engine:      sh.engine,
		Clock:       st.Now(),
		Events:      st.Events(),
		OpenServers: st.OpenServers(),
		ServersUsed: st.ServersUsed(),
		PeakServers: st.PeakServers(),
		UsageTime:   st.UsageTime(),
	})
}

// ShardEvents returns shard i's journal in the exact order the shard
// owner applied the events. With durability on, it is read back from
// the write-ahead log's tail — the records since the last snapshot —
// so memory stays bounded no matter how long the service runs; clock
// ticks journaled for rejected events are filtered out. Without a WAL
// it copies the in-memory journal (Config.RecordEvents must be on).
func (d *Dispatcher) ShardEvents(i int) []Event {
	sh := d.shards[i]
	if sh.wal != nil {
		var out []Event
		sh.wal.Replay(sh.wal.Stats().SnapshotSeq, func(_ uint64, r wal.Record) error {
			switch r.Kind {
			case wal.KindArrive:
				out = append(out, Event{Kind: "arrive", ID: item.ID(r.ID), Size: r.Size, Sizes: r.Sizes, Time: r.Time, Server: int(r.Server)})
			case wal.KindDepart:
				out = append(out, Event{Kind: "depart", ID: item.ID(r.ID), Time: r.Time, Server: int(r.Server)})
			}
			return nil
		})
		return out
	}
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	out := make([]Event, len(sh.log))
	copy(out, sh.log)
	// Deep-copy the demand vectors so the caller owns its result
	// outright: a struct copy alone would hand every caller (and every
	// subsequent ShardEvents call) views of the same journal-owned
	// slices.
	for i := range out {
		if len(out[i].Sizes) > 0 {
			out[i].Sizes = append([]float64(nil), out[i].Sizes...)
		}
	}
	return out
}

// Snapshot returns shard i's stream snapshot (totals + open servers).
// It is served by the shard owner, serialized with the event stream;
// once the dispatcher has closed, the quiesced stream is read directly.
func (d *Dispatcher) Snapshot(i int) packing.Snapshot {
	sh := d.shards[i]
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opSnapshot, 0, 0, nil, 0, false
	resp, ok := sh.submit(req)
	if !ok {
		<-sh.done // owner gone; its exit happens-before this read
		return sh.stream.Snapshot()
	}
	return resp.snap
}

// Close drains the dispatcher: envelopes already queued are applied
// (an accepted request is never dropped), later submissions get
// ErrClosed, lingering keep-alive servers are shut down at their
// natural expiry, and the final totals are computed after every shard
// owner has exited. Close is idempotent; every call returns the same
// final Stats.
func (d *Dispatcher) Close() Stats {
	d.closing.Do(func() {
		d.draining.Store(true)
		// Flip every gate first so no new envelope enters any queue...
		for _, sh := range d.shards {
			sh.closed.Store(true)
		}
		// ...then wait out submitters already past a gate (they hold a
		// nonzero inflight count only between the gate check and the
		// channel send) and shut each queue; the owner finishes the
		// backlog and exits.
		for _, sh := range d.shards {
			for sh.inflight.Load() != 0 {
				runtime.Gosched()
			}
			close(sh.reqs)
		}
		for _, sh := range d.shards {
			<-sh.done
		}
		s := d.Stats()
		d.final.Store(&s)
		if d.store != nil {
			// Owners have exited (final snapshots rolled); releasing the
			// logs after Stats keeps the durability gauges in the final
			// snapshot meaningful.
			if err := d.store.Close(); err != nil {
				for _, sh := range d.shards {
					sh.poison(err)
				}
			}
		}
	})
	return *d.final.Load()
}

// Draining reports whether Close has begun; the health endpoint flips
// to 503 the moment this is true.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

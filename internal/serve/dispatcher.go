// Package serve is the allocation-service layer: a thread-safe, sharded
// dispatcher over packing.Stream plus the JSON/HTTP front end that
// cmd/dbpserved mounts. Tenants (job IDs) are partitioned across N
// independent shards by a fixed hash; each shard's stream is owned by a
// single writer goroutine fed request envelopes over a bounded channel,
// so throughput scales with cores without any lock on the event path
// while every shard keeps the paper's strictly sequential online
// semantics. Jobs never interact across servers, so sharding the fleet
// preserves each policy's per-shard behavior exactly; the global
// usage-time objective is the sum over shards.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
)

// ErrClosed is returned for requests arriving after Close has begun
// draining the dispatcher; the HTTP layer maps it to 503.
var ErrClosed = errors.New("serve: dispatcher is shutting down")

// Config configures a Dispatcher.
type Config struct {
	// Algorithm is the packing policy short name ("firstfit", ...);
	// each shard gets its own fresh instance. Empty means "firstfit".
	Algorithm string
	// Shards is the number of independent streams; <= 0 means
	// GOMAXPROCS.
	Shards int
	// Capacity is the per-dimension server capacity (0 means 1.0).
	Capacity float64
	// Dim is the resource dimensionality (0 means 1).
	Dim int
	// KeepAlive keeps emptied servers open (reusable) for this many
	// time units, as in packing.NewStreamKeepAlive.
	KeepAlive float64
	// RecordEvents journals every accepted event per shard (as actually
	// applied, post clock guard) for audit and replay reconciliation.
	RecordEvents bool
	// QueueDepth bounds each shard's request channel (<= 0 means 1024).
	// A full queue applies backpressure: submitters block until the
	// shard owner catches up, so memory stays bounded under overload.
	QueueDepth int
	// Clock overrides the service clock (seconds since some epoch,
	// non-decreasing). Nil means a monotonic wall clock starting at 0
	// when the dispatcher is created. Tests inject deterministic time.
	Clock func() float64
}

// Event is one journaled shard event, recorded exactly as fed to the
// shard's stream (time is post-guard), so a sequential replay of a
// shard's journal reproduces its stream state bit for bit.
type Event struct {
	Kind   string    `json:"kind"` // "arrive" or "depart"
	ID     item.ID   `json:"id"`
	Size   float64   `json:"size,omitempty"`
	Sizes  []float64 `json:"sizes,omitempty"`
	Time   float64   `json:"time"`
	Server int       `json:"server"`
}

// Placement is the outcome of a successful Arrive.
type Placement struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"` // index within the shard's fleet
	Opened bool    `json:"opened"` // a new server was started for this job
	Time   float64 `json:"time"`   // the time the event was applied at
}

// Departure is the outcome of a successful Depart.
type Departure struct {
	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server"`
	Closed bool    `json:"closed"` // the server shut down as a result
	Time   float64 `json:"time"`
}

// opKind tags a request envelope.
type opKind uint8

const (
	opArrive opKind = iota
	opDepart
	opBatch    // a shard's slice of one ApplyBatch call
	opSnapshot // control: deep-copy the shard's stream state
)

// request is one envelope on a shard's queue. The reply channel has
// capacity 1, so the owner never blocks answering; envelopes (and
// their reply channels) are pooled.
type request struct {
	kind     opKind
	id       item.ID
	size     float64
	sizes    []float64 // dispatcher-owned copy, safe to retain
	at       float64
	assigned bool // at came from the service clock (guard may clamp)
	reply    chan response

	// Batch envelopes (kind opBatch): the shard's slice of one
	// ApplyBatch call. bops is applied in order; each entry's result
	// lands at out[entry.pos] — shards of one batch write disjoint
	// positions, so the scatter needs no lock.
	bops []batchEntry
	out  []BatchResult
}

// response is the owner's answer to one envelope.
type response struct {
	server int
	flag   bool // opened (arrive) / closed (depart)
	at     float64
	err    error
	snap   packing.Snapshot // opSnapshot only
}

var reqPool = sync.Pool{
	New: func() any { return &request{reply: make(chan response, 1)} },
}

// publishEvery bounds gauge staleness under sustained load: the shard
// owner republishes its stats snapshot at least every publishEvery
// applied envelopes, and immediately whenever its queue runs empty.
const publishEvery = 256

// shard is one single-writer partition: exactly one goroutine (run)
// ever touches stream, log appends, and gauge stores after New
// returns; everyone else communicates through reqs or reads the
// atomically published gauge. The closed flag plus the inflight count
// form the submission gate that makes closing reqs race-free.
type shard struct {
	reqs     chan *request
	inflight atomic.Int64  // submitters currently between gate entry and channel send
	closed   atomic.Bool   // no new submissions may enter the queue
	done     chan struct{} // closed when the owner goroutine has exited

	stream *packing.Stream // owned by run(); read directly only after done
	policy string
	engine string

	gauge atomic.Pointer[ShardStats] // last published stats snapshot

	logMu sync.Mutex // guards log: owner appends, ShardEvents copies
	log   []Event
}

// guard clamps a service-assigned timestamp so it never regresses the
// shard's stream clock: two requests can read the service clock in one
// order and enter the shard queue in the other, and a rejected event
// (a duplicate arrive, say) still advances the stream clock before
// being refused. Explicit caller timestamps are never rewritten.
func (sh *shard) guard(at float64, assigned bool) float64 {
	if assigned && sh.stream.Events() > 0 && at < sh.stream.Now() {
		return sh.stream.Now()
	}
	return at
}

// Dispatcher routes jobs to shards and serializes each shard's events
// through its owner goroutine. All methods are safe for concurrent use.
type Dispatcher struct {
	cfg     Config
	shards  []*shard
	metrics metrics
	start   time.Time
	clock   func() float64

	closing  sync.Once
	draining atomic.Bool
	final    atomic.Pointer[Stats] // set once by Close
}

// New creates a sharded dispatcher and starts one owner goroutine per
// shard. It fails only on an unknown policy name or invalid
// configuration; Close stops the owners.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "firstfit"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.KeepAlive < 0 {
		return nil, fmt.Errorf("serve: negative keep-alive %g", cfg.KeepAlive)
	}
	d := &Dispatcher{cfg: cfg, shards: make([]*shard, cfg.Shards), start: time.Now()}
	d.metrics.init()
	for i := range d.shards {
		algo, err := packing.ByName(cfg.Algorithm)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			reqs:   make(chan *request, cfg.QueueDepth),
			done:   make(chan struct{}),
			stream: packing.NewStreamKeepAlive(algo, cfg.Capacity, cfg.Dim, cfg.KeepAlive),
		}
		sh.policy, sh.engine = sh.stream.Policy(), sh.stream.Engine()
		sh.publish(i)
		d.shards[i] = sh
	}
	d.clock = cfg.Clock
	if d.clock == nil {
		// time.Since reads Go's monotonic clock, immune to wall-clock
		// steps; the per-shard guard below still clamps the residual
		// race between reading the clock and entering the shard queue.
		d.clock = func() float64 { return time.Since(d.start).Seconds() }
	}
	for i, sh := range d.shards {
		go d.run(i, sh)
	}
	return d, nil
}

// NumShards returns the number of shards.
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// splitmix64 is the SplitMix64 finalizer: a fixed, well-mixing hash so
// that job-ID → shard routing is consistent across restarts and spreads
// sequential tenant IDs evenly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardFor returns the shard index the job ID routes to.
func (d *Dispatcher) ShardFor(id item.ID) int {
	return int(splitmix64(uint64(id)) % uint64(len(d.shards)))
}

// resolveTime picks the event time: the caller's explicit timestamp if
// t is non-nil, else the service clock. assigned reports the latter, in
// which case the shard guard may clamp it forward (service-clock reads
// racing into the shard queue may arrive out of order); explicit caller
// timestamps are never silently rewritten — a regression there is the
// caller's error and surfaces as packing.ErrTimeRegression.
func (d *Dispatcher) resolveTime(t *float64) (float64, bool) {
	if t != nil {
		return *t, false
	}
	return d.clock(), true
}

// submit enqueues an envelope on the shard and waits for the owner's
// reply. The inflight/closed pair is the drain gate: Close first flips
// closed (new submissions bounce with ErrClosed), then waits for the
// inflight count to hit zero before closing the channel — so a
// submitter that passed the gate always has a live receiver and every
// envelope that entered the queue is answered. ok=false means the
// envelope never entered the queue.
func (sh *shard) submit(req *request) (response, bool) {
	sh.inflight.Add(1)
	if sh.closed.Load() {
		sh.inflight.Add(-1)
		putRequest(req)
		return response{}, false
	}
	sh.reqs <- req
	sh.inflight.Add(-1)
	resp := <-req.reply
	putRequest(req)
	return resp, true
}

func putRequest(req *request) {
	req.sizes = nil // the journal/stream own the copied slice now
	clear(req.bops) // drop size-slice references; journal/stream own them
	req.bops = req.bops[:0]
	req.out = nil
	reqPool.Put(req)
}

// Arrive dispatches a job to its shard. A nil t means "now" (service
// clock). On error the returned Placement is zero-valued.
func (d *Dispatcher) Arrive(id item.ID, size float64, sizes []float64, t *float64) (Placement, error) {
	defer d.metrics.observeArrive(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	if len(sizes) > 0 {
		// Copy once at the API boundary: the stream's ledger and the
		// journal both retain the demand vector beyond this call, and
		// callers are free to reuse their slice.
		sizes = append([]float64(nil), sizes...)
	}
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opArrive, id, size, sizes, at, assigned
	resp, ok := d.shards[si].submit(req)
	if !ok {
		d.metrics.reject(ErrClosed)
		return Placement{}, ErrClosed
	}
	if resp.err != nil {
		return Placement{}, resp.err
	}
	return Placement{ID: id, Shard: si, Server: resp.server, Opened: resp.flag, Time: resp.at}, nil
}

// Depart reports a job departure to its shard. A nil t means "now".
func (d *Dispatcher) Depart(id item.ID, t *float64) (Departure, error) {
	defer d.metrics.observeDepart(time.Now())
	at, assigned := d.resolveTime(t)
	si := d.ShardFor(id)
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opDepart, id, 0, nil, at, assigned
	resp, ok := d.shards[si].submit(req)
	if !ok {
		d.metrics.reject(ErrClosed)
		return Departure{}, ErrClosed
	}
	if resp.err != nil {
		return Departure{}, resp.err
	}
	return Departure{ID: id, Shard: si, Server: resp.server, Closed: resp.flag, Time: resp.at}, nil
}

// run is shard si's owner goroutine: the only writer of the shard's
// stream and journal. It applies envelopes strictly in queue order,
// republishing the shard's stats gauge whenever the queue runs empty
// (and at least every publishEvery envelopes under sustained load).
// When Close shuts the queue, it finishes the backlog — everything
// that entered the queue is applied, nothing is dropped — then shuts
// lingering keep-alive servers and publishes the final gauge.
func (d *Dispatcher) run(si int, sh *shard) {
	defer close(sh.done)
	sincePublish := 0
	for {
		var req *request
		var ok bool
		select {
		case req, ok = <-sh.reqs:
		default:
			// Queue empty: publish a fresh gauge, then block.
			sh.publish(si)
			sincePublish = 0
			req, ok = <-sh.reqs
		}
		if !ok {
			break
		}
		sincePublish += d.apply(si, sh, req)
		if sincePublish >= publishEvery {
			sh.publish(si)
			sincePublish = 0
		}
	}
	sh.stream.Shutdown()
	sh.publish(si)
}

// apply executes one envelope against the shard's stream: clamp the
// timestamp, run the event, bump the metrics, journal the applied
// event (so ShardEvents reflects every answered request), then reply.
// It returns the number of stream events the envelope carried, which
// paces the owner's gauge republishing. The envelope still belongs to
// the submitter — apply must not touch it after sending the reply.
func (d *Dispatcher) apply(si int, sh *shard, req *request) int {
	switch req.kind {
	case opSnapshot:
		req.reply <- response{snap: sh.stream.Snapshot()}
		return 1
	case opBatch:
		n := len(req.bops)
		for i := range req.bops {
			e := &req.bops[i]
			server, flag, at, err := d.applyOne(sh, e.depart, e.id, e.size, e.sizes, e.at, e.assigned)
			req.out[e.pos] = BatchResult{Server: server, Flag: flag, Time: at, Err: err}
		}
		req.reply <- response{}
		return n
	}
	depart := req.kind == opDepart
	server, flag, at, err := d.applyOne(sh, depart, req.id, req.size, req.sizes, req.at, req.assigned)
	req.reply <- response{server: server, flag: flag, at: at, err: err}
	return 1
}

// applyOne runs one event against the shard's stream and does its
// metrics and journal accounting; shared by the single-op and batch
// envelope paths so both have identical semantics. Owner-only.
func (d *Dispatcher) applyOne(sh *shard, depart bool, id item.ID, size float64, sizes []float64, at float64, assigned bool) (server int, flag bool, applied float64, err error) {
	at = sh.guard(at, assigned)
	if depart {
		server, flag, err = sh.stream.Depart(id, at)
	} else {
		server, flag, err = sh.stream.Arrive(id, size, sizes, at)
	}
	if err != nil {
		d.metrics.reject(err)
		return 0, false, at, err
	}
	if depart {
		d.metrics.departures.Add(1)
		if flag {
			d.metrics.serversClosed.Add(1)
		}
		if d.cfg.RecordEvents {
			sh.append(Event{Kind: "depart", ID: id, Time: at, Server: server})
		}
	} else {
		d.metrics.arrivals.Add(1)
		if flag {
			d.metrics.serversOpened.Add(1)
		}
		if d.cfg.RecordEvents {
			sh.append(Event{Kind: "arrive", ID: id, Size: size, Sizes: sizes, Time: at, Server: server})
		}
	}
	return server, flag, at, nil
}

// append journals one applied event. Only the owner goroutine appends;
// the mutex exists so ShardEvents can copy concurrently — it is never
// contended on the event path.
func (sh *shard) append(ev Event) {
	sh.logMu.Lock()
	sh.log = append(sh.log, ev)
	sh.logMu.Unlock()
}

// publish stores a fresh stats gauge for lock-free readers (Stats,
// the /v1/stats endpoint). Owner-only.
func (sh *shard) publish(si int) {
	st := sh.stream
	sh.gauge.Store(&ShardStats{
		Shard:       si,
		Policy:      sh.policy,
		Engine:      sh.engine,
		Clock:       st.Now(),
		Events:      st.Events(),
		OpenServers: st.OpenServers(),
		ServersUsed: st.ServersUsed(),
		PeakServers: st.PeakServers(),
		UsageTime:   st.UsageTime(),
	})
}

// ShardEvents returns a copy of shard i's journal (Config.RecordEvents
// must be on). The journal lists events in the exact order the shard
// owner applied them; every request that has been answered is present.
func (d *Dispatcher) ShardEvents(i int) []Event {
	sh := d.shards[i]
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	out := make([]Event, len(sh.log))
	copy(out, sh.log)
	return out
}

// Snapshot returns shard i's stream snapshot (totals + open servers).
// It is served by the shard owner, serialized with the event stream;
// once the dispatcher has closed, the quiesced stream is read directly.
func (d *Dispatcher) Snapshot(i int) packing.Snapshot {
	sh := d.shards[i]
	req := reqPool.Get().(*request)
	req.kind, req.id, req.size, req.sizes, req.at, req.assigned = opSnapshot, 0, 0, nil, 0, false
	resp, ok := sh.submit(req)
	if !ok {
		<-sh.done // owner gone; its exit happens-before this read
		return sh.stream.Snapshot()
	}
	return resp.snap
}

// Close drains the dispatcher: envelopes already queued are applied
// (an accepted request is never dropped), later submissions get
// ErrClosed, lingering keep-alive servers are shut down at their
// natural expiry, and the final totals are computed after every shard
// owner has exited. Close is idempotent; every call returns the same
// final Stats.
func (d *Dispatcher) Close() Stats {
	d.closing.Do(func() {
		d.draining.Store(true)
		// Flip every gate first so no new envelope enters any queue...
		for _, sh := range d.shards {
			sh.closed.Store(true)
		}
		// ...then wait out submitters already past a gate (they hold a
		// nonzero inflight count only between the gate check and the
		// channel send) and shut each queue; the owner finishes the
		// backlog and exits.
		for _, sh := range d.shards {
			for sh.inflight.Load() != 0 {
				runtime.Gosched()
			}
			close(sh.reqs)
		}
		for _, sh := range d.shards {
			<-sh.done
		}
		s := d.Stats()
		d.final.Store(&s)
	})
	return *d.final.Load()
}

// Draining reports whether Close has begun; the health endpoint flips
// to 503 the moment this is true.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

package serve_test

import (
	"errors"
	"reflect"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

func newBatchDispatcher(t *testing.T, shards int) *serve.Dispatcher {
	t.Helper()
	d, err := serve.New(serve.Config{
		Shards: shards, RecordEvents: true,
		Clock: func() float64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestApplyBatchMatchesSingles is the batch path's equivalence
// certificate: the same op sequence produces identical per-op outcomes
// and identical shard journals whether it goes through ApplyBatch or
// through one Arrive/Depart call per op.
func TestApplyBatchMatchesSingles(t *testing.T) {
	ops := []serve.BatchOp{
		{ID: 1, Size: 0.6, HasTime: true, Time: 0},
		{ID: 2, Size: 0.6, HasTime: true, Time: 0},
		{ID: 3, Size: 0.3, HasTime: true, Time: 1},
		{ID: 1, Size: 0.5, HasTime: true, Time: 1},    // duplicate
		{Depart: true, ID: 7, HasTime: true, Time: 1}, // unknown
		{ID: 4, Size: 1.7, HasTime: true, Time: 2},    // oversized
		{Depart: true, ID: 1, HasTime: true, Time: 2},
		{ID: 5, Size: 0.2, HasTime: true, Time: 3},
		{Depart: true, ID: 5, HasTime: true, Time: 3}, // same-batch arrive+depart
	}

	batched := newBatchDispatcher(t, 3)
	results := make([]serve.BatchResult, len(ops))
	batched.ApplyBatch(ops, results)

	// sameErr: the batch and single paths wrap the same sentinel with
	// the same diagnostic, but the wrapped values are distinct; compare
	// by message.
	sameErr := func(a, b error) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || a.Error() == b.Error()
	}
	single := newBatchDispatcher(t, 3)
	for i, op := range ops {
		tm := op.Time
		want := results[i]
		if op.Depart {
			dep, err := single.Depart(op.ID, &tm)
			if !sameErr(err, want.Err) || (err == nil && (dep.Server != want.Server || dep.Closed != want.Flag || dep.Time != want.Time)) {
				t.Fatalf("op %d: single depart (%+v, %v) != batch %+v", i, dep, err, want)
			}
		} else {
			pl, err := single.Arrive(op.ID, op.Size, op.Sizes, &tm)
			if !sameErr(err, want.Err) || (err == nil && (pl.Server != want.Server || pl.Opened != want.Flag || pl.Time != want.Time)) {
				t.Fatalf("op %d: single arrive (%+v, %v) != batch %+v", i, pl, err, want)
			}
		}
	}
	for si := 0; si < batched.NumShards(); si++ {
		if b, s := batched.ShardEvents(si), single.ShardEvents(si); !reflect.DeepEqual(b, s) {
			t.Fatalf("shard %d journals diverge:\nbatch:  %+v\nsingle: %+v", si, b, s)
		}
	}

	// The same-batch arrive+depart pair (job 5) must have kept its
	// order: the depart succeeded.
	if results[8].Err != nil {
		t.Fatalf("same-batch depart after arrive failed: %v", results[8].Err)
	}
	// And every error class surfaced as the right sentinel.
	for i, want := range map[int]error{
		3: packing.ErrDuplicateJob,
		4: packing.ErrUnknownJob,
		5: packing.ErrBadDemand,
	} {
		if !errors.Is(results[i].Err, want) {
			t.Errorf("op %d err = %v, want %v", i, results[i].Err, want)
		}
	}
}

// TestApplyBatchCopiesSizes: the dispatcher must own the demand
// vectors it journals; a transport reusing its decode buffer between
// batches cannot scribble on history.
func TestApplyBatchCopiesSizes(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 1, Dim: 2, RecordEvents: true,
		Clock: func() float64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := []float64{0.6, 0.2}
	results := make([]serve.BatchResult, 1)
	d.ApplyBatch([]serve.BatchOp{{ID: 1, Size: 0.6, Sizes: buf}}, results)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	buf[0], buf[1] = 0.9, 0.9
	ev := d.ShardEvents(0)
	if len(ev) != 1 || ev[0].Sizes[0] != 0.6 || ev[0].Sizes[1] != 0.2 {
		t.Fatalf("caller scribble leaked into the journal: %+v", ev)
	}
}

// TestBatchCounters: every ApplyBatch bumps the batch-shape counters
// and the per-op arrival/departure counters identically to singles.
func TestBatchCounters(t *testing.T) {
	d := newBatchDispatcher(t, 2)
	results := make([]serve.BatchResult, 4)
	d.ApplyBatch([]serve.BatchOp{
		{ID: 1, Size: 0.1}, {ID: 2, Size: 0.1}, {ID: 3, Size: 0.1},
		{Depart: true, ID: 1},
	}, results)
	d.ApplyBatch([]serve.BatchOp{{ID: 4, Size: 0.1}}, results[:1])
	st := d.Stats()
	if st.Batches != 2 || st.BatchOps != 5 {
		t.Fatalf("batches=%d batch_ops=%d, want 2 and 5", st.Batches, st.BatchOps)
	}
	if st.Arrivals != 4 || st.Departures != 1 {
		t.Fatalf("arrivals=%d departures=%d, want 4 and 1", st.Arrivals, st.Departures)
	}
}

// TestApplyBatchAfterClose: a batch against a draining dispatcher gets
// ErrClosed on every op — counted once each in the rejection metrics —
// and never hangs.
func TestApplyBatchAfterClose(t *testing.T) {
	d := newBatchDispatcher(t, 2)
	d.Close()
	ops := []serve.BatchOp{
		{ID: 1, Size: 0.5}, {ID: 2, Size: 0.5}, {Depart: true, ID: 1},
	}
	results := make([]serve.BatchResult, len(ops))
	d.ApplyBatch(ops, results)
	for i, r := range results {
		if !errors.Is(r.Err, serve.ErrClosed) {
			t.Fatalf("op %d err = %v, want ErrClosed", i, r.Err)
		}
	}
	if got := d.Stats().Rejected["shutting_down"]; got != uint64(len(ops)) {
		t.Fatalf("shutting_down rejections = %d, want %d", got, len(ops))
	}
}

// TestArriveDepartBatchWrappers exercises the typed wrappers end to
// end: positional results, explicit times honored, servers reused.
func TestArriveDepartBatchWrappers(t *testing.T) {
	d := newBatchDispatcher(t, 1)
	t0, t1 := 0.0, 1.0
	res := d.ArriveBatch([]serve.ArriveRequest{
		{ID: 1, Size: 0.6, Time: &t0},
		{ID: 2, Size: 0.6, Time: &t0},
		{ID: 3, Size: 0.3, Time: &t1},
	})
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	want := []struct {
		server int
		opened bool
	}{{0, true}, {1, true}, {0, false}}
	for i, w := range want {
		if res[i].Err != nil || res[i].Server != w.server || res[i].Flag != w.opened {
			t.Fatalf("arrive %d = %+v, want server %d opened %v", i, res[i], w.server, w.opened)
		}
	}
	t2 := 2.0
	dres := d.DepartBatch([]serve.DepartRequest{
		{ID: 2, Time: &t2}, // empties server 1
		{ID: 9, Time: &t2}, // unknown
	})
	if dres[0].Err != nil || dres[0].Server != 1 || !dres[0].Flag {
		t.Fatalf("depart 2 = %+v, want closed server 1", dres[0])
	}
	if !errors.Is(dres[1].Err, packing.ErrUnknownJob) {
		t.Fatalf("depart 9 err = %v, want ErrUnknownJob", dres[1].Err)
	}
	if res[0].Time != 0 || dres[0].Time != 2 {
		t.Fatalf("explicit times not honored: %+v %+v", res[0], dres[0])
	}
}

// TestApplyBatchEmpty: a zero-op batch is a no-op, not a counter bump.
func TestApplyBatchEmpty(t *testing.T) {
	d := newBatchDispatcher(t, 2)
	d.ApplyBatch(nil, nil)
	if st := d.Stats(); st.Batches != 0 || st.BatchOps != 0 {
		t.Fatalf("empty batch counted: %+v", st)
	}
}

// TestApplyBatchConcurrent hammers ApplyBatch from several goroutines
// with overlapping shard sets; totals must balance. Run under -race.
func TestApplyBatchConcurrent(t *testing.T) {
	d := newBatchDispatcher(t, 4)
	const workers = 8
	const batches = 50
	const per = 16
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results := make([]serve.BatchResult, per)
			ops := make([]serve.BatchOp, per)
			for b := 0; b < batches; b++ {
				for i := range ops {
					ops[i] = serve.BatchOp{ID: item.ID(w*batches*per + b*per + i + 1), Size: 0.01}
				}
				d.ApplyBatch(ops, results)
				for i := range results {
					if results[i].Err != nil {
						done <- results[i].Err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Arrivals != workers*batches*per || st.BatchOps != workers*batches*per || st.Batches != workers*batches {
		t.Fatalf("stats %+v, want %d arrivals over %d batches", st, workers*batches*per, workers*batches)
	}
}

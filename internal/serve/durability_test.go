package serve_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// durOp is one scripted event with an explicit timestamp, so a run is
// fully deterministic and a durable run can be compared float-for-float
// against an in-memory reference fed the same script.
type durOp struct {
	depart bool
	id     item.ID
	size   float64
	t      float64
}

// genDurOps scripts a workload of arrives, departs, and duplicate
// arrives (rejected events that still advance the shard clock and must
// journal as ticks), with enough time spread to expire keep-alive
// servers mid-run.
func genDurOps(n int, seed int64) []durOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]durOp, 0, n)
	var live []item.ID
	now, next := 0.0, item.ID(1)
	for i := 0; i < n; i++ {
		now += rng.Float64() * 0.4
		switch {
		case len(live) > 3 && rng.Float64() < 0.35:
			j := rng.Intn(len(live))
			ops = append(ops, durOp{depart: true, id: live[j], t: now})
			live = append(live[:j], live[j+1:]...)
		case len(live) > 0 && rng.Float64() < 0.10:
			// Duplicate arrive: rejected after advancing the clock.
			ops = append(ops, durOp{id: live[rng.Intn(len(live))], size: 0.3, t: now})
		default:
			ops = append(ops, durOp{id: next, size: 0.05 + 0.5*rng.Float64(), t: now})
			live = append(live, next)
			next++
		}
	}
	return ops
}

// outcome is one op's observable result, compared across runs.
type outcome struct {
	server int
	flag   bool
	failed bool
}

func applyDurOps(t *testing.T, d *serve.Dispatcher, ops []durOp) []outcome {
	t.Helper()
	out := make([]outcome, len(ops))
	for i, o := range ops {
		at := o.t
		if o.depart {
			dep, err := d.Depart(o.id, &at)
			out[i] = outcome{server: dep.Server, flag: dep.Closed, failed: err != nil}
		} else {
			p, err := d.Arrive(o.id, o.size, nil, &at)
			out[i] = outcome{server: p.Server, flag: p.Opened, failed: err != nil}
		}
	}
	return out
}

func compareShards(t *testing.T, label string, got, want *serve.Dispatcher) {
	t.Helper()
	if got.NumShards() != want.NumShards() {
		t.Fatalf("%s: shard count %d != %d", label, got.NumShards(), want.NumShards())
	}
	for i := 0; i < got.NumShards(); i++ {
		g, w := got.Snapshot(i), want.Snapshot(i)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: shard %d snapshot diverged:\n got  %+v\n want %+v", label, i, g, w)
		}
	}
}

// TestDurableRecoveryAfterClose proves the clean-restart path: a durable
// dispatcher's state equals an in-memory reference's at every
// checkpoint, survives Close (which rolls a final snapshot before
// shutting lingering servers) and reopen bit-identically, and continues
// producing identical placements on the post-restart suffix.
func TestDurableRecoveryAfterClose(t *testing.T) {
	dir := t.TempDir()
	ops := genDurOps(800, 1)
	prefix, suffix := ops[:600], ops[600:]

	cfg := serve.Config{Algorithm: "firstfit", Shards: 4, KeepAlive: 0.5}
	ref, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	dcfg := cfg
	dcfg.DataDir, dcfg.Fsync, dcfg.SnapshotEvery = dir, "off", 64
	d, err := serve.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	refOut := applyDurOps(t, ref, prefix)
	durOut := applyDurOps(t, d, prefix)
	if !reflect.DeepEqual(refOut, durOut) {
		t.Fatalf("durable run diverged from in-memory reference on the prefix")
	}
	compareShards(t, "pre-close", d, ref)
	d.Close()

	d2, err := serve.New(dcfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	compareShards(t, "recovered", d2, ref)
	if err := d2.DurabilityErr(); err != nil {
		t.Fatalf("recovered dispatcher reports durability error: %v", err)
	}

	refOut = applyDurOps(t, ref, suffix)
	durOut = applyDurOps(t, d2, suffix)
	if !reflect.DeepEqual(refOut, durOut) {
		t.Fatalf("recovered dispatcher diverged from reference on the suffix")
	}
	compareShards(t, "post-suffix", d2, ref)
}

// TestDurableRecoveryWithoutClose proves the crash path inside one
// process: with fsync=always every acknowledged event is on disk, so
// abandoning the dispatcher without Close (no final snapshot — the
// whole journal replays) and reopening the directory must rebuild every
// shard bit-identically.
func TestDurableRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	ops := genDurOps(300, 2)

	cfg := serve.Config{Algorithm: "bestfit", Shards: 3, KeepAlive: 0.4}
	ref, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	dcfg := cfg
	dcfg.DataDir, dcfg.Fsync = dir, "always"
	d, err := serve.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	applyDurOps(t, ref, ops)
	applyDurOps(t, d, ops)
	// Crash: no Close, no final snapshot. The abandoned owner goroutines
	// idle on their queues; fsync=always already put every record on disk.
	d2, err := serve.New(dcfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer d2.Close()
	compareShards(t, "crash-recovered", d2, ref)
}

// TestDurableTornTailDiscarded cuts bytes off the active segment's last
// record — the footprint of a crash mid-write — and checks recovery
// keeps exactly the valid prefix and accepts new traffic.
func TestDurableTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Algorithm: "firstfit", Shards: 1, DataDir: dir, Fsync: "always"}
	d, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		at := float64(i)
		if _, err := d.Arrive(item.ID(i), 0.01, nil, &at); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close, then tear the tail record.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0000", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	tail := segs[len(segs)-1]
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	d2, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer d2.Close()
	snap := d2.Snapshot(0)
	if snap.Events != n-1 {
		t.Fatalf("recovered %d events, want %d (torn final record discarded)", snap.Events, n-1)
	}
	at := float64(n + 1)
	if _, err := d2.Arrive(item.ID(n+1), 0.01, nil, &at); err != nil {
		t.Fatalf("arrive after torn-tail recovery: %v", err)
	}
}

// TestDurableMetaGuard proves a data directory refuses to open under a
// different configuration, naming the offending field.
func TestDurableMetaGuard(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Algorithm: "firstfit", Shards: 2, KeepAlive: 0.25, DataDir: dir}
	d, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	for _, tc := range []struct {
		name   string
		mutate func(*serve.Config)
		want   string
	}{
		{"shards", func(c *serve.Config) { c.Shards = 3 }, "recorded shard count"},
		{"dim", func(c *serve.Config) { c.Dim = 2 }, "recorded dimension"},
		{"algorithm", func(c *serve.Config) { c.Algorithm = "bestfit" }, "recorded algorithm"},
		{"keepalive", func(c *serve.Config) { c.KeepAlive = 1 }, "recorded keep-alive"},
		{"capacity", func(c *serve.Config) { c.Capacity = 2 }, "recorded capacity"},
	} {
		bad := cfg
		tc.mutate(&bad)
		if _, err := serve.New(bad); err == nil {
			t.Errorf("%s: mismatched config opened the data dir", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	// The matching config still opens.
	d2, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("matching config refused: %v", err)
	}
	d2.Close()
}

// TestDurableShardEventsFromWAL proves the journal endpoint reads back
// from the WAL with durability on: identical to the in-memory journal
// of a reference dispatcher (ticks for rejected events filtered out),
// and bounded to the records since the last snapshot.
func TestDurableShardEventsFromWAL(t *testing.T) {
	ops := genDurOps(400, 3)
	cfg := serve.Config{Algorithm: "firstfit", Shards: 2, KeepAlive: 0.3, RecordEvents: true}
	ref, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	dcfg := cfg
	dcfg.DataDir, dcfg.Fsync = t.TempDir(), "off"
	d, err := serve.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyDurOps(t, ref, ops)
	applyDurOps(t, d, ops)
	for i := 0; i < cfg.Shards; i++ {
		got, want := d.ShardEvents(i), ref.ShardEvents(i)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d: WAL-backed journal differs from in-memory journal (%d vs %d events)", i, len(got), len(want))
		}
	}

	// With periodic snapshots, the readable journal is the tail — a
	// suffix of the full journal, bounded by the snapshot cadence.
	scfg := dcfg
	scfg.DataDir, scfg.SnapshotEvery = t.TempDir(), 32
	ds, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	applyDurOps(t, ds, ops)
	for i := 0; i < cfg.Shards; i++ {
		tailEvs, full := ds.ShardEvents(i), ref.ShardEvents(i)
		if len(tailEvs) >= len(full) {
			t.Fatalf("shard %d: snapshots did not bound the journal tail (%d >= %d)", i, len(tailEvs), len(full))
		}
		if !reflect.DeepEqual(tailEvs, full[len(full)-len(tailEvs):]) {
			t.Fatalf("shard %d: journal tail is not a suffix of the full journal", i)
		}
	}
}

// TestDurableStatsAndClock checks the durability gauge block and that
// the service clock resumes from the recovered stream time, so
// nil-time requests keep advancing instead of clamping.
func TestDurableStatsAndClock(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Algorithm: "firstfit", Shards: 2, DataDir: dir, Fsync: "always", SnapshotEvery: 16}
	d, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 100.0
	for i := 1; i <= 64; i++ {
		at := horizon * float64(i) / 64
		if _, err := d.Arrive(item.ID(i), 0.01, nil, &at); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Durability == nil {
		t.Fatal("stats missing durability block")
	}
	if st.Durability.Fsync != "always" || st.Durability.DataDir != dir {
		t.Fatalf("durability block misconfigured: %+v", st.Durability)
	}
	if st.Durability.WalBytes == 0 || st.Durability.WalSegments == 0 {
		t.Fatalf("durability gauges empty: %+v", st.Durability)
	}
	if st.Durability.FsyncLatency.Count == 0 {
		t.Fatal("fsync=always recorded no fsync latencies")
	}
	var journaled uint64
	for _, ps := range st.PerShard {
		if ps.JournalSeq != uint64(ps.Events) {
			t.Fatalf("shard %d: journal seq %d != events %d", ps.Shard, ps.JournalSeq, ps.Events)
		}
		journaled += ps.JournalSeq
	}
	if journaled != 64 {
		t.Fatalf("journaled %d records, want 64", journaled)
	}
	d.Close()

	d2, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	p, err := d2.Arrive(item.ID(1000), 0.01, nil, nil) // service clock
	if err != nil {
		t.Fatal(err)
	}
	if p.Time < horizon {
		t.Fatalf("service clock did not resume: nil-time arrive applied at %g, want >= %g", p.Time, horizon)
	}
}

// TestDurableHTTPEndpoints exercises GET /v1/snapshot and /v1/journal.
func TestDurableHTTPEndpoints(t *testing.T) {
	cfg := serve.Config{Algorithm: "firstfit", Shards: 2, DataDir: t.TempDir()}
	d, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyDurOps(t, d, genDurOps(100, 4))
	srv := httptest.NewServer(serve.NewHandler(d))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/v1/snapshot?shard=0")
	if err != nil {
		t.Fatal(err)
	}
	var snap packing.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || snap.Events == 0 {
		t.Fatalf("snapshot endpoint: status %d, events %d", res.StatusCode, snap.Events)
	}
	if want := d.Snapshot(0); !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot endpoint returned a different snapshot than the Go API")
	}

	res, err = http.Get(srv.URL + "/v1/journal?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	var evs []serve.Event
	if err := json.NewDecoder(res.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || len(evs) == 0 {
		t.Fatalf("journal endpoint: status %d, %d events", res.StatusCode, len(evs))
	}

	for _, bad := range []string{"/v1/snapshot", "/v1/snapshot?shard=9", "/v1/journal?shard=x"} {
		res, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, res.StatusCode)
		}
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dbp/internal/item"
	"dbp/internal/packing"
)

// ArriveRequest is the POST /v1/arrive body. Time is optional: absent
// means "now" on the service clock; explicit times must be non-
// decreasing per shard (422 on regression).
type ArriveRequest struct {
	ID    item.ID   `json:"id"`
	Size  float64   `json:"size"`
	Sizes []float64 `json:"sizes,omitempty"`
	Time  *float64  `json:"time,omitempty"`
}

// DepartRequest is the POST /v1/depart body.
type DepartRequest struct {
	ID   item.ID  `json:"id"`
	Time *float64 `json:"time,omitempty"`
}

// BatchRequest is the POST /v1/batch body: an ordered list of ops
// applied via the dispatcher's batch path (grouped by shard, one
// envelope per shard), each answered individually in BatchResponse.
type BatchRequest struct {
	Ops []BatchOpRequest `json:"ops"`
}

// BatchOpRequest is one op in a BatchRequest. Op selects the kind
// ("arrive" or "depart"); the remaining fields mirror ArriveRequest /
// DepartRequest.
type BatchOpRequest struct {
	Op    string    `json:"op"`
	ID    item.ID   `json:"id"`
	Size  float64   `json:"size,omitempty"`
	Sizes []float64 `json:"sizes,omitempty"`
	Time  *float64  `json:"time,omitempty"`
}

// BatchOpResult is one op's outcome in a BatchResponse: the HTTP
// status and stable code the single-op endpoint would have answered
// with, plus the placement/departure fields on success.
type BatchOpResult struct {
	Status int    `json:"status"`
	Code   string `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`

	ID     item.ID `json:"id"`
	Shard  int     `json:"shard"`
	Server int     `json:"server,omitempty"`
	Opened bool    `json:"opened,omitempty"`
	Closed bool    `json:"closed,omitempty"`
	Time   float64 `json:"time,omitempty"`
}

// BatchResponse answers POST /v1/batch: results[i] answers ops[i].
type BatchResponse struct {
	Results []BatchOpResult `json:"results"`
}

// MaxHTTPBatchOps caps the ops of one /v1/batch request; larger
// batches gain nothing (the wire transport exists for that regime)
// and would let one request monopolize the shards.
const MaxHTTPBatchOps = 4096

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	// Code is a stable machine-readable class; Error is the diagnostic.
	Code  string `json:"code"`
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; arrive/depart payloads are tiny,
// so anything larger is malformed or hostile.
const maxBodyBytes = 1 << 20

// StatusOf maps a dispatcher error onto its HTTP status and stable
// machine-readable error code. Unknown errors are internal (500). It
// is exported so out-of-process callers of the Go API — the load
// driver in internal/load above all — classify rejections by the same
// codes the HTTP layer puts on the wire.
func StatusOf(err error) (int, string) {
	switch {
	case errors.Is(err, packing.ErrDuplicateJob):
		return http.StatusConflict, "duplicate_job" // 409
	case errors.Is(err, packing.ErrUnknownJob):
		return http.StatusNotFound, "unknown_job" // 404
	case errors.Is(err, packing.ErrBadDemand):
		return http.StatusUnprocessableEntity, "bad_demand" // 422
	case errors.Is(err, packing.ErrTimeRegression):
		return http.StatusUnprocessableEntity, "time_regression" // 422
	case errors.Is(err, packing.ErrPolicyMisplace):
		return http.StatusInternalServerError, "policy_misplace" // 500
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "shutting_down" // 503
	case errors.Is(err, ErrDurability):
		return http.StatusServiceUnavailable, "durability_failed" // 503
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// NewHandler mounts the allocation-service API onto a fresh mux:
//
//	POST /v1/arrive  — place a job; body ArriveRequest, reply Placement
//	POST /v1/depart  — report a departure; body DepartRequest, reply Departure
//	POST /v1/batch   — apply an ordered op batch; body BatchRequest,
//	                   reply BatchResponse with one per-op status each
//	GET  /v1/stats   — service-wide Stats
//	GET  /v1/snapshot?shard=N — shard N's full stream snapshot
//	                   (packing.Snapshot), served by the shard owner
//	GET  /v1/journal?shard=N  — shard N's applied-event journal
//	                   (ShardEvents: the WAL tail with durability on,
//	                   the in-memory journal with RecordEvents)
//	GET  /healthz    — liveness ("ok", or 503 once draining)
//
// Responses are JSON; failures carry an ErrorResponse with a stable
// code (409 duplicate_job, 404 unknown_job, 422 bad_demand /
// time_regression, 503 shutting_down, 400 bad_request, 413
// request_too_large).
func NewHandler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/arrive", func(w http.ResponseWriter, r *http.Request) {
		var req ArriveRequest
		if !decode(w, r, &req) {
			return
		}
		p, err := d.Arrive(req.ID, req.Size, req.Sizes, req.Time)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("POST /v1/depart", func(w http.ResponseWriter, r *http.Request) {
		var req DepartRequest
		if !decode(w, r, &req) {
			return
		}
		dep, err := d.Depart(req.ID, req.Time)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, dep)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Ops) == 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: "bad_request", Error: "batch has no ops"})
			return
		}
		if len(req.Ops) > MaxHTTPBatchOps {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Code: "bad_request", Error: fmt.Sprintf("batch has %d ops, limit %d", len(req.Ops), MaxHTTPBatchOps)})
			return
		}
		// Ops with an unknown kind are answered per-op (400) without
		// aborting the batch; the valid ops still apply, in order.
		ops := make([]BatchOp, 0, len(req.Ops))
		opIdx := make([]int, 0, len(req.Ops)) // batch index -> request index
		resp := BatchResponse{Results: make([]BatchOpResult, len(req.Ops))}
		for i, o := range req.Ops {
			resp.Results[i].ID = o.ID
			resp.Results[i].Shard = d.ShardFor(o.ID)
			switch o.Op {
			case "arrive":
				op := BatchOp{ID: o.ID, Size: o.Size, Sizes: o.Sizes}
				if o.Time != nil {
					op.HasTime, op.Time = true, *o.Time
				}
				ops = append(ops, op)
				opIdx = append(opIdx, i)
			case "depart":
				op := BatchOp{Depart: true, ID: o.ID}
				if o.Time != nil {
					op.HasTime, op.Time = true, *o.Time
				}
				ops = append(ops, op)
				opIdx = append(opIdx, i)
			default:
				resp.Results[i].Status = http.StatusBadRequest
				resp.Results[i].Code = "bad_request"
				resp.Results[i].Error = fmt.Sprintf("unknown op %q (want arrive or depart)", o.Op)
			}
		}
		results := make([]BatchResult, len(ops))
		d.ApplyBatch(ops, results)
		for bi, ri := range opIdx {
			out := &resp.Results[ri]
			res := results[bi]
			if res.Err != nil {
				out.Status, out.Code = StatusOf(res.Err)
				out.Error = res.Err.Error()
				continue
			}
			out.Status = http.StatusOK
			out.Server = res.Server
			out.Time = res.Time
			if ops[bi].Depart {
				out.Closed = res.Flag
			} else {
				out.Opened = res.Flag
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		i, ok := shardParam(w, r, d)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, d.Snapshot(i))
	})
	mux.HandleFunc("GET /v1/journal", func(w http.ResponseWriter, r *http.Request) {
		i, ok := shardParam(w, r, d)
		if !ok {
			return
		}
		evs := d.ShardEvents(i)
		if evs == nil {
			evs = []Event{} // an empty journal is [], not null
		}
		writeJSON(w, http.StatusOK, evs)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Code: "shutting_down", Error: ErrClosed.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// shardParam parses and bounds-checks the required ?shard=N query
// parameter, writing the 400 itself on failure.
func shardParam(w http.ResponseWriter, r *http.Request, d *Dispatcher) (int, bool) {
	q := r.URL.Query().Get("shard")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: "bad_request", Error: "missing shard query parameter"})
		return 0, false
	}
	i, err := strconv.Atoi(q)
	if err != nil || i < 0 || i >= d.NumShards() {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Code: "bad_request", Error: fmt.Sprintf("shard %q out of range [0, %d)", q, d.NumShards())})
		return 0, false
	}
	return i, true
}

// decode parses a JSON request body strictly (unknown fields and
// trailing garbage are 400s, an oversized body is a 413) and writes
// the error response itself on failure.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Code: "request_too_large", Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: "bad_request", Error: "bad JSON body: " + err.Error()})
		return false
	}
	if dec.More() {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: "bad_request", Error: "trailing data after JSON body"})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	status, code := StatusOf(err)
	writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

package serve_test

import (
	"sync"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// TestJournalCopiesSizes is the regression test for the shared-slice
// journal bug: an in-process caller that reuses its sizes slice across
// Arrive calls must not corrupt the replay journal (or the stream's
// own level accounting, which also retains the demand vector). The
// dispatcher copies the slice once at the API boundary.
func TestJournalCopiesSizes(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 1, Dim: 2, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}

	// One reusable buffer, as a batching caller would hold: scribbled
	// between ops.
	buf := []float64{0.6, 0.2}
	if _, err := d.Arrive(1, 0.6, buf, nil); err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1] = 0.9, 0.9 // caller reuses its buffer
	if _, err := d.Arrive(2, 0.9, buf, nil); err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1] = 0.1, 0.1 // and again, before the departs
	if _, err := d.Depart(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Depart(2, nil); err != nil {
		t.Fatal(err)
	}
	d.Close()

	events := d.ShardEvents(0)
	if len(events) != 4 {
		t.Fatalf("journal has %d events, want 4", len(events))
	}
	wantSizes := [][]float64{{0.6, 0.2}, {0.9, 0.9}}
	for i, want := range wantSizes {
		got := events[i].Sizes
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("journal event %d sizes = %v, want %v (caller scribble leaked in)", i, got, want)
		}
	}

	// The journal must replay cleanly into a fresh stream with the
	// same server assignments — the serialization certificate.
	algo, _ := packing.ByName("firstfit")
	replay := packing.NewStream(algo, 0, 2)
	for k, ev := range events {
		var server int
		var err error
		switch ev.Kind {
		case "arrive":
			server, _, err = replay.Arrive(ev.ID, ev.Size, ev.Sizes, ev.Time)
		case "depart":
			server, _, err = replay.Depart(ev.ID, ev.Time)
		}
		if err != nil {
			t.Fatalf("replay event %d: %v", k, err)
		}
		if server != ev.Server {
			t.Fatalf("replay event %d: live run used server %d, replay used %d", k, ev.Server, server)
		}
	}
	if replay.OpenServers() != 0 {
		t.Errorf("replay left %d servers open after full drain", replay.OpenServers())
	}
}

// TestCloseWithFullQueue closes the dispatcher while its single shard's
// depth-1 request queue is saturated by many concurrent submitters:
// Close must neither deadlock nor drop an accepted event — every
// attempt resolves exactly once, the accepted count agrees between
// clients, metrics, and the journal, and the journal's order equals
// the application order (replay reproduces every server assignment).
// Run under -race via `make check`.
func TestCloseWithFullQueue(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 1, QueueDepth: 1, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 300
	var mu sync.Mutex
	accepted := make(map[item.ID]int) // id -> server
	var rejected int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := item.ID(c*perClient + i + 1)
				p, err := d.Arrive(id, 0.01, nil, nil)
				mu.Lock()
				if err == nil {
					accepted[id] = p.Server
				} else {
					rejected++
				}
				mu.Unlock()
			}
		}(c)
	}
	// Fire Close mid-barrage, with the queue necessarily full or
	// filling: depth 1 with 8 writers keeps submitters parked on the
	// channel send the whole time.
	time.Sleep(2 * time.Millisecond)
	done := make(chan serve.Stats, 1)
	go func() { done <- d.Close() }()
	var final serve.Stats
	select {
	case final = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against a full request queue")
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted)+rejected != clients*perClient {
		t.Fatalf("outcomes %d != attempts %d (an op was lost or double-resolved)",
			len(accepted)+rejected, clients*perClient)
	}
	if rejected == 0 {
		t.Fatal("no submission raced the drain; the close trigger is broken")
	}
	if final.Arrivals != uint64(len(accepted)) {
		t.Errorf("metrics arrivals %d != client-accepted %d", final.Arrivals, len(accepted))
	}

	// Journal order equals application order: replaying it must
	// reproduce exactly the server each accepted request was told, and
	// cover every accepted request exactly once.
	events := d.ShardEvents(0)
	if len(events) != len(accepted) {
		t.Fatalf("journal has %d events, client-accepted %d", len(events), len(accepted))
	}
	algo, _ := packing.ByName("firstfit")
	replay := packing.NewStream(algo, 0, 0)
	seen := make(map[item.ID]bool)
	for k, ev := range events {
		if ev.Kind != "arrive" {
			t.Fatalf("journal event %d kind %q, want arrive", k, ev.Kind)
		}
		if seen[ev.ID] {
			t.Fatalf("journal records job %d twice", ev.ID)
		}
		seen[ev.ID] = true
		server, _, err := replay.Arrive(ev.ID, ev.Size, ev.Sizes, ev.Time)
		if err != nil {
			t.Fatalf("replay event %d: %v", k, err)
		}
		if server != ev.Server {
			t.Fatalf("journal event %d out of application order: journal says server %d, replay assigns %d",
				k, ev.Server, server)
		}
		if want, ok := accepted[ev.ID]; !ok || want != server {
			t.Fatalf("journal event %d: client was told server %d, journal/replay say %d", k, want, server)
		}
	}
}

package serve

import (
	"sync"
	"time"

	"dbp/internal/item"
)

// BatchOp is one operation inside an ApplyBatch call. A batch is the
// transport-level amortization unit: the dispatcher groups a batch's
// ops by shard and enqueues one envelope per shard, so B ops cost
// O(shards) channel round trips instead of B.
type BatchOp struct {
	Depart bool
	ID     item.ID
	Size   float64
	Sizes  []float64
	// HasTime marks an explicit event time; otherwise the op is
	// stamped with the service clock, read once per batch.
	HasTime bool
	Time    float64
}

// BatchResult is one op's outcome. Err is nil on success; on failure
// it is the same typed sentinel the single-op API returns (mapped to
// status codes by the transports), and Server/Flag are zero.
type BatchResult struct {
	Server int
	Flag   bool // opened (arrive) / closed (depart)
	Time   float64
	Err    error
}

// batchEntry is one op routed into a shard's batch envelope, with its
// position in the caller's results slice.
type batchEntry struct {
	depart   bool
	id       item.ID
	size     float64
	sizes    []float64
	at       float64
	assigned bool
	pos      int
}

// batchPlan is the reusable scratch of one ApplyBatch call: the
// per-shard envelope table and the order shards were first touched in.
type batchPlan struct {
	envs  []*request
	order []int
}

var planPool = sync.Pool{New: func() any { return &batchPlan{} }}

// ApplyBatch applies ops against the dispatcher and scatters each op's
// outcome into results (len(results) must be >= len(ops); results[i]
// answers ops[i]). Ops are grouped by shard preserving their relative
// order, one envelope is enqueued per involved shard, and each shard
// owner applies its sub-batch sequentially — so two ops on the same
// job in one batch keep their order, and per-shard semantics are
// exactly those of the equivalent single-op calls. Unstamped ops share
// one service-clock read. Safe for concurrent use.
func (d *Dispatcher) ApplyBatch(ops []BatchOp, results []BatchResult) {
	if len(ops) == 0 {
		return
	}
	start := time.Now()
	now := d.clock()

	plan := planPool.Get().(*batchPlan)
	if cap(plan.envs) < len(d.shards) {
		plan.envs = make([]*request, len(d.shards))
	}
	envs := plan.envs[:len(d.shards)]
	order := plan.order[:0]

	for i := range ops {
		op := &ops[i]
		si := d.ShardFor(op.ID)
		req := envs[si]
		if req == nil {
			req = reqPool.Get().(*request)
			req.kind = opBatch
			req.out = results
			envs[si] = req
			order = append(order, si)
		}
		at, assigned := op.Time, false
		if !op.HasTime {
			at, assigned = now, true
		}
		sizes := op.Sizes
		if len(sizes) > 0 {
			// Copy at the API boundary, exactly like Arrive: the ledger
			// and journal retain the vector, and transports reuse their
			// decode buffers.
			sizes = append([]float64(nil), sizes...)
		}
		req.bops = append(req.bops, batchEntry{
			depart: op.Depart, id: op.ID, size: op.Size, sizes: sizes,
			at: at, assigned: assigned, pos: i,
		})
	}

	// Enqueue every shard's envelope first, then collect replies: the
	// shards run their sub-batches concurrently, and a full queue only
	// delays its own shard's hand-off.
	for _, si := range order {
		req, sh := envs[si], d.shards[si]
		sh.inflight.Add(1)
		if sh.closed.Load() {
			sh.inflight.Add(-1)
			for _, e := range req.bops {
				results[e.pos] = BatchResult{Err: ErrClosed}
				d.metrics.reject(ErrClosed)
			}
			putRequest(req)
			envs[si] = nil // answered here; skip the reply wait
			continue
		}
		sh.reqs <- req
		sh.inflight.Add(-1)
	}
	for _, si := range order {
		req := envs[si]
		if req == nil {
			continue
		}
		<-req.reply
		putRequest(req)
		envs[si] = nil
	}

	// Per-op service-time accounting, so batched and single-op
	// traffic share one latency ledger; plus the batch-shape counters.
	for i := range ops {
		if ops[i].Depart {
			d.metrics.observeDepart(start)
		} else {
			d.metrics.observeArrive(start)
		}
	}
	d.metrics.batches.Add(1)
	d.metrics.batchOps.Add(uint64(len(ops)))

	plan.order = order[:0]
	planPool.Put(plan)
}

// ArriveBatch places a batch of arrivals (grouped by shard, one
// envelope per shard) and returns one result per request, positionally.
// It is the batch analogue of Arrive; mixed arrive/depart batches use
// ApplyBatch directly.
func (d *Dispatcher) ArriveBatch(reqs []ArriveRequest) []BatchResult {
	ops := make([]BatchOp, len(reqs))
	for i, r := range reqs {
		ops[i] = BatchOp{ID: r.ID, Size: r.Size, Sizes: r.Sizes}
		if r.Time != nil {
			ops[i].HasTime, ops[i].Time = true, *r.Time
		}
	}
	results := make([]BatchResult, len(ops))
	d.ApplyBatch(ops, results)
	return results
}

// DepartBatch reports a batch of departures; see ArriveBatch.
func (d *Dispatcher) DepartBatch(reqs []DepartRequest) []BatchResult {
	ops := make([]BatchOp, len(reqs))
	for i, r := range reqs {
		ops[i] = BatchOp{Depart: true, ID: r.ID}
		if r.Time != nil {
			ops[i].HasTime, ops[i].Time = true, *r.Time
		}
	}
	results := make([]BatchResult, len(ops))
	d.ApplyBatch(ops, results)
	return results
}

package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
)

// TestDrainUnderLoad races arrivals against Dispatcher.Close and
// proves the drain path's accounting: every attempted op gets exactly
// one outcome (accepted or rejected, never both, never lost), the
// accepted count agrees between client-side observation, the metrics
// core, and the per-shard journals — i.e. nothing is double-counted —
// and once Close has run, /v1/arrive answers 503 immediately instead
// of hanging. Run under -race via `make check`.
func TestDrainUnderLoad(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 4, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 400
	const closeAfter = 500 // accepted ops before Close fires, mid-barrage
	var accepted, rejectedClosed, rejectedOther atomic.Uint64
	var closeOnce sync.Once
	var final serve.Stats
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := item.ID(c*perClient + i + 1)
				_, err := d.Arrive(id, 0.3, nil, nil)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, serve.ErrClosed):
					rejectedClosed.Add(1)
				default:
					rejectedOther.Add(1)
				}
				// Once enough ops landed, one client triggers Close
				// concurrently with everyone else's remaining arrivals;
				// its remaining ops (and most of the others') then race
				// the flipped shards.
				if accepted.Load() >= closeAfter {
					closeOnce.Do(func() { final = d.Close() })
				}
			}
		}(c)
	}
	wg.Wait()
	closeOnce.Do(func() { final = d.Close() }) // all accepted before threshold

	total := accepted.Load() + rejectedClosed.Load() + rejectedOther.Load()
	if total != clients*perClient {
		t.Fatalf("outcomes %d != attempts %d (an op was lost or double-resolved)", total, clients*perClient)
	}
	if rejectedOther.Load() != 0 {
		t.Fatalf("%d unexpected non-drain rejections", rejectedOther.Load())
	}
	if rejectedClosed.Load() == 0 {
		t.Fatal("no arrival raced the drain; the close trigger is broken")
	}

	// No double counting: the client-observed accept count, the
	// metrics counter, and the journal row count must agree exactly.
	stats := d.Stats()
	if stats.Arrivals != accepted.Load() {
		t.Errorf("metrics arrivals %d != client-accepted %d", stats.Arrivals, accepted.Load())
	}
	if stats.Rejected["shutting_down"] != rejectedClosed.Load() {
		t.Errorf("metrics shutting_down %d != client-rejected %d", stats.Rejected["shutting_down"], rejectedClosed.Load())
	}
	var journaled uint64
	for i := 0; i < d.NumShards(); i++ {
		for _, ev := range d.ShardEvents(i) {
			if ev.Kind == "arrive" {
				journaled++
			}
		}
	}
	if journaled != accepted.Load() {
		t.Errorf("journaled arrivals %d != client-accepted %d", journaled, accepted.Load())
	}
	// Close flips every shard before computing its final snapshot, and
	// accepted ops bump the counter while still holding their shard —
	// so the Close-time count already equals the all-time count; any
	// difference means an op was counted outside its critical section.
	if final.Arrivals != stats.Arrivals {
		t.Errorf("Close-time arrivals %d != final %d", final.Arrivals, stats.Arrivals)
	}

	// After shutdown the HTTP surface answers — promptly — with 503,
	// not a hung connection.
	h := serve.NewHandler(d)
	body, _ := json.Marshal(serve.ArriveRequest{ID: 999999, Size: 0.5})
	req := httptest.NewRequest("POST", "/v1/arrive", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("/v1/arrive hung after shutdown")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("arrive after shutdown = %d, want 503", rec.Code)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "shutting_down" {
		t.Fatalf("arrive after shutdown body = %q (err %v)", rec.Body.String(), err)
	}
}

package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dbp/internal/serve"
)

// newTestServer builds a single-shard service (so server indices are
// deterministic) with a frozen service clock; requests carry explicit
// times, making every response golden-comparable.
func newTestServer(t *testing.T) (*serve.Dispatcher, *httptest.Server) {
	t.Helper()
	d, err := serve.New(serve.Config{
		Algorithm: "firstfit",
		Shards:    1,
		Clock:     func() float64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(d))
	t.Cleanup(ts.Close)
	return d, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return nil // healthz is text
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("bad JSON response: %v", err)
	}
	return m
}

// want asserts a golden subset of a decoded JSON object (numbers are
// float64 after decoding).
func want(t *testing.T, got map[string]any, golden map[string]any) {
	t.Helper()
	for k, v := range golden {
		if got[k] != v {
			t.Errorf("field %q = %v (%T), want %v", k, got[k], got[k], v)
		}
	}
}

func TestHTTPGolden(t *testing.T) {
	d, ts := newTestServer(t)

	// Liveness first.
	resp, _ := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Two arrivals that cannot share a server: indices 0 and 1.
	resp, body := post(t, ts, "/v1/arrive", `{"id":1,"size":0.6,"time":0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrive 1 = %d (%v)", resp.StatusCode, body)
	}
	want(t, body, map[string]any{"id": 1.0, "shard": 0.0, "server": 0.0, "opened": true, "time": 0.0})

	resp, body = post(t, ts, "/v1/arrive", `{"id":2,"size":0.6,"time":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrive 2 = %d", resp.StatusCode)
	}
	want(t, body, map[string]any{"id": 2.0, "server": 1.0, "opened": true, "time": 1.0})

	// A third small job first-fits onto server 0, opening nothing.
	resp, body = post(t, ts, "/v1/arrive", `{"id":3,"size":0.3,"time":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrive 3 = %d", resp.StatusCode)
	}
	want(t, body, map[string]any{"server": 0.0, "opened": false})

	// Each failure class maps to its status and stable code. The
	// oversized body is valid JSON padded past the 1 MiB request cap:
	// it must be refused as 413 request_too_large, not a generic 400
	// (the decoder distinguishes *http.MaxBytesError from bad syntax).
	oversized := `{"id":9,"size":0.2,"time":2,"pad":"` + strings.Repeat("x", 1<<20) + `"}`
	for _, tc := range []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"duplicate arrive", "/v1/arrive", `{"id":1,"size":0.2,"time":2}`, http.StatusConflict, "duplicate_job"},
		{"unknown depart", "/v1/depart", `{"id":42,"time":2}`, http.StatusNotFound, "unknown_job"},
		{"oversized demand", "/v1/arrive", `{"id":9,"size":1.5,"time":2}`, http.StatusUnprocessableEntity, "bad_demand"},
		{"time regression", "/v1/arrive", `{"id":9,"size":0.2,"time":0.5}`, http.StatusUnprocessableEntity, "time_regression"},
		{"malformed JSON", "/v1/arrive", `{"id":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/v1/arrive", `{"id":9,"sz":0.5}`, http.StatusBadRequest, "bad_request"},
		{"oversized body", "/v1/arrive", oversized, http.StatusRequestEntityTooLarge, "request_too_large"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%v)", resp.StatusCode, tc.status, body)
			}
			want(t, body, map[string]any{"code": tc.code})
			if body["error"] == "" {
				t.Error("missing error diagnostic")
			}
		})
	}

	// Wrong method on an API route.
	resp, err := http.Get(ts.URL + "/v1/arrive")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/arrive = %d, want 405", resp.StatusCode)
	}

	// Departures: job 1 leaves at t=3 (server 0 stays up for job 3),
	// then 3 and 2 leave, closing both servers.
	resp, body = post(t, ts, "/v1/depart", `{"id":1,"time":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("depart 1 = %d", resp.StatusCode)
	}
	want(t, body, map[string]any{"server": 0.0, "closed": false, "time": 3.0})

	resp, body = post(t, ts, "/v1/depart", `{"id":3,"time":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("depart 3 failed")
	}
	want(t, body, map[string]any{"server": 0.0, "closed": true})

	resp, body = post(t, ts, "/v1/depart", `{"id":2,"time":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("depart 2 failed")
	}
	want(t, body, map[string]any{"server": 1.0, "closed": true})

	// Stats reflect the traffic: 3 arrivals, 3 departures, usage time
	// = server 0 open [0,3) plus server 1 open [1,4) = 6.
	resp, body = get(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	want(t, body, map[string]any{
		"arrivals":     3.0,
		"departures":   3.0,
		"open_servers": 0.0,
		"servers_used": 2.0,
		"peak_servers": 2.0,
		"usage_time":   6.0,
		"shards":       1.0,
		"algorithm":    "firstfit",
	})
	rejected, ok := body["rejected"].(map[string]any)
	if !ok {
		t.Fatalf("rejected = %v", body["rejected"])
	}
	for _, code := range []string{"duplicate_job", "unknown_job", "bad_demand", "time_regression"} {
		if rejected[code] != 1.0 {
			t.Errorf("rejected[%s] = %v, want 1", code, rejected[code])
		}
	}

	// Graceful drain: health flips to 503, mutating requests are
	// refused with shutting_down, stats stay served, and the final
	// totals match the pre-drain state.
	final := d.Close()
	if final.UsageTime != 6 || final.PeakServers != 2 || final.OpenServers != 0 {
		t.Fatalf("final totals = %+v", final)
	}

	resp, _ = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain = %d, want 503", resp.StatusCode)
	}
	resp, body = post(t, ts, "/v1/arrive", `{"id":7,"size":0.1,"time":9}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("arrive after drain = %d, want 503", resp.StatusCode)
	}
	want(t, body, map[string]any{"code": "shutting_down"})

	resp, body = get(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats after drain = %d", resp.StatusCode)
	}
	want(t, body, map[string]any{"usage_time": 6.0, "arrivals": 3.0})
}

// TestHTTPServerClock exercises the "time omitted" path: the service
// stamps events with its own clock and the stamped time is returned to
// the caller, non-decreasing per shard.
func TestHTTPServerClock(t *testing.T) {
	now := 10.0
	d, err := serve.New(serve.Config{Shards: 1, Clock: func() float64 { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(d))
	defer ts.Close()

	_, body := post(t, ts, "/v1/arrive", `{"id":1,"size":0.5}`)
	want(t, body, map[string]any{"time": 10.0, "server": 0.0})

	// The clock source regresses (wall-clock step); the shard guard
	// clamps the event forward instead of failing.
	now = 5
	resp, body := post(t, ts, "/v1/depart", `{"id":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("depart with regressed clock = %d (%v)", resp.StatusCode, body)
	}
	want(t, body, map[string]any{"time": 10.0, "closed": true})
}

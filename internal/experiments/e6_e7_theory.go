package experiments

import (
	"fmt"
	"math/rand"

	"dbp/internal/analysis"
	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// runE6 tabulates the analytic bounds landscape of Secs. I, II and VIII:
// for each mu, the prior upper bounds, Theorem 1's new bound, and the
// lower bounds — making the paper's contribution visible as the shrinking
// of the upper/lower gap to the constant 4.
func runE6(cfg Config) []*analysis.Table {
	mus := []float64{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		mus = []float64{1, 8, 64}
	}
	t := analysis.NewTable("E6: bounds landscape for MinUsageTime DBP",
		"mu", "any online LB", "AnyFit LB", "NF LB (SecVIII)", "NF UB", "FF UB old", "FF UB (Thm 1)", "HFF UB", "gap Thm1-LB")
	for _, mu := range mus {
		t.AddRow(mu,
			analysis.AnyOnlineLowerBound(mu),
			analysis.AnyFitLowerBound(mu),
			analysis.NextFitLowerBound(mu),
			analysis.NextFitUpperBound(mu),
			analysis.FirstFitUpperBoundOld(mu),
			analysis.FirstFitUpperBound(mu),
			analysis.HybridFirstFitUpperBound(mu),
			analysis.FirstFitUpperBound(mu)-analysis.AnyOnlineLowerBound(mu))
	}
	t.AddNote("Best Fit: unbounded for every mu (Sec. I). HFF bound shows the multiplicative term 8/7*mu only; it is semi-online (needs mu a priori)")
	t.AddNote("Theorem 1 closes the gap to the universal lower bound to the constant 4, independent of mu")
	return []*analysis.Table{t}
}

// runE7 exercises the proof machinery of Sections IV-V on concrete First
// Fit runs: it reports, per workload, the decomposition mass balance
// (sum|V|, span, usage) and the subperiod census, and re-verifies the
// Section IV identities and Propositions 3-6 on every run.
func runE7(cfg Config) []*analysis.Table {
	trials := 20
	if cfg.Quick {
		trials = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	t := analysis.NewTable("E7: Section IV-V machinery on First Fit packings",
		"workload", "bins", "sum|V|", "span", "usage", "l-subp", "h-subp", "suppliers", "verified")

	runOne := func(name string, l item.List) {
		res := packing.MustRun(packing.NewFirstFit(), l, nil)
		dec := analysis.Decompose(res)
		sps := analysis.SubperiodsOf(res)
		verified := dec.Verify() == nil && analysis.VerifySubperiods(res, sps) == nil
		var nL, nH, nSup int
		for _, bs := range sps {
			for _, sp := range bs.Subperiods {
				if sp.High {
					nH++
				} else {
					nL++
					if sp.SupplierIndex >= 0 {
						nSup++
					}
				}
			}
		}
		t.AddRow(name, res.NumBins(), dec.SumV(), res.Items.Span(), res.TotalUsage, nL, nH, nSup, fmtBool(verified))
	}

	for i := 0; i < trials; i++ {
		mu := 1.5 + rng.Float64()*6
		runOne(fmt.Sprintf("random mu=%.2g", mu), randomSmallMix(rng, 100, 12, mu))
	}
	runOne("ff-stress", workload.FirstFitSmallItemStress(8, 6, 3))
	runOne("anyfit-trap", workload.AnyFitTrap(16, 4))
	runOne("nextfit-adv", workload.NextFitAdversary(16, 4))
	t.AddNote("'verified' = Section IV identities + Propositions 3-6 + supplier-bin facts all hold on the run")
	return []*analysis.Table{t}
}

func randomSmallMix(rng *rand.Rand, n int, horizon, mu float64) item.List {
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * horizon
		l[i] = item.Item{
			ID:        item.ID(i + 1),
			Size:      0.05 + rng.Float64()*0.9,
			Arrival:   a,
			Departure: a + 1 + rng.Float64()*(mu-1),
		}
	}
	return l
}

package experiments

import (
	"fmt"

	"dbp/internal/analysis"
	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// runE1 measures First Fit against the exact (or certified-bracketed)
// offline optimum across workload regimes and mu values, checking
// Theorem 1's bound FF <= (mu+4)*OPT on every row. This regenerates the
// paper's headline claim as a table: who is FF competing against, what
// ratio it achieves, and how much slack remains to the proven bound.
func runE1(cfg Config) []*analysis.Table {
	mus := []float64{1, 2, 4, 8, 16}
	seeds := []int64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2}
	n := 120
	if cfg.Quick {
		mus = []float64{2, 8}
		seeds = seeds[:1]
		n = 60
	}

	t := analysis.NewTable("E1: Theorem 1 bound check — FF vs exact OPT",
		"workload", "mu", "FF usage", "OPT(lo)", "OPT(hi)", "ratio<=", "bound mu+4", "holds")
	check := func(name string, l item.List) {
		r, _, err := analysis.Measure(packing.NewFirstFit(), l, nil)
		if err != nil {
			panic(fmt.Sprintf("E1: %v", err))
		}
		mu := l.Mu()
		bound := analysis.FirstFitUpperBound(mu)
		// The bound provably holds against true OPT; test the strongest
		// verifiable direction: usage vs (mu+4)*OPT_upper-bracket would
		// be too lax, so compare the conservative ratio estimate.
		holds := r.Usage <= bound*r.Opt.Upper+1e-6
		t.AddRow(name, mu, r.Usage, r.Opt.Lower, r.Opt.Upper, r.Hi(), bound, fmtBool(holds))
	}

	for _, mu := range mus {
		for _, seed := range seeds {
			check("uniform", workload.Generate(workload.UniformConfig(n, 2, mu, seed)))
			check("small-items", workload.Generate(workload.SmallItemConfig(n, 3, mu, seed)))
			if mu > 1 {
				check("bimodal", workload.Generate(workload.BimodalConfig(n, 2, mu, seed)))
			}
		}
		if mu >= 2 {
			check("anyfit-trap", workload.AnyFitTrap(24, mu))
			check("nextfit-adv", workload.NextFitAdversary(12, mu))
		}
	}
	t.AddNote("ratio<= is usage/OPT_lower (conservative over-estimate); 'holds' compares usage against (mu+4)*OPT_upper")
	return []*analysis.Table{t}
}

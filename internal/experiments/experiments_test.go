package experiments

import (
	"strings"
	"testing"

	"dbp/internal/analysis"
)

type analysisTable = analysis.Table

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("got %d experiments, want 16", len(exps))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
	if _, err := ByID("E7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

// Every experiment runs in Quick mode, produces non-empty tables, and
// renders.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Fatalf("empty table %q", tb.Title)
				}
				out := tb.String()
				if out == "" || !strings.Contains(out, "---") {
					t.Fatalf("table did not render:\n%s", out)
				}
				if tb.Markdown() == "" {
					t.Fatal("markdown did not render")
				}
			}
		})
	}
}

// E1's verdict column must be "yes" on every row: Theorem 1 holds.
func TestE1AllRowsHold(t *testing.T) {
	tables := runE1(Config{Quick: true, Seed: 3})
	out := tables[0].String()
	if strings.Contains(out, "NO") {
		t.Fatalf("Theorem 1 violated somewhere:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Fatalf("no verdicts rendered:\n%s", out)
	}
}

// E7's verified column must be "yes" on every row.
func TestE7AllRowsVerified(t *testing.T) {
	tables := runE7(Config{Quick: true, Seed: 3})
	out := tables[0].String()
	if strings.Contains(out, "NO") {
		t.Fatalf("proof machinery verification failed:\n%s", out)
	}
}

// Determinism: same config, same rendered output.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E6", "E9"} {
		e, _ := ByID(id)
		a := render(e.Run(Config{Quick: true, Seed: 11}))
		b := render(e.Run(Config{Quick: true, Seed: 11}))
		if a != b {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func render(tables []*analysisTable) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
	}
	return sb.String()
}

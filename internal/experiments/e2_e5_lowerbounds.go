package experiments

import (
	"fmt"
	"sort"

	"dbp/internal/analysis"
	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// runE2 reproduces the Section VIII construction: Next Fit pays n*mu
// while the optimum pays n/2 + mu, so the ratio climbs to 2*mu with n.
// First Fit on the same instances stays near 1, showing the separation.
func runE2(cfg Config) []*analysis.Table {
	ns := []int{4, 16, 64, 256, 1024}
	mus := []float64{2, 8, 32}
	if cfg.Quick {
		ns = []int{4, 64}
		mus = []float64{8}
	}
	t := analysis.NewTable("E2: Next Fit on the Section VIII adversary",
		"n", "mu", "NF usage", "OPT", "NF ratio", "analytic", "2*mu", "FF ratio")
	for _, mu := range mus {
		for _, n := range ns {
			l := workload.NextFitAdversary(n, mu)
			nf := packing.MustRun(packing.NewNextFit(), l, nil)
			ff := packing.MustRun(packing.NewFirstFit(), l, nil)
			optTotal := float64(n)/2 + mu // exact (verified in tests)
			t.AddRow(n, mu, nf.TotalUsage, optTotal,
				nf.TotalUsage/optTotal,
				workload.NextFitAdversaryRatioLimit(n, mu),
				2*mu,
				ff.TotalUsage/optTotal)
		}
	}
	t.AddNote("NF usage = n*mu exactly; OPT = n/2 + mu (paper Sec. VIII); the ratio approaches 2*mu as n grows")
	return []*analysis.Table{t}
}

// runE3 runs the gap-seal trap, which pins First Fit and Best Fit to n
// bins for the long tinies' entire lifetime: measured ratios approach mu,
// the universal lower bound, and sit below the Any Fit lower bound mu+1.
func runE3(cfg Config) []*analysis.Table {
	ns := []int{8, 32, 128, 512}
	mus := []float64{2, 8, 32}
	if cfg.Quick {
		ns = []int{8, 64}
		mus = []float64{8}
	}
	t := analysis.NewTable("E3: gap-seal trap — conservative algorithms pinned near mu",
		"n", "mu", "FF ratio", "BF ratio", "analytic n*mu/(n+mu-1)", "mu", "AnyFit LB mu+1")
	for _, mu := range mus {
		for _, n := range ns {
			l := workload.AnyFitTrap(n, mu)
			optTotal := float64(n) + mu - 1 // exact (verified in tests)
			ff := packing.MustRun(packing.NewFirstFit(), l, nil)
			bf := packing.MustRun(packing.NewBestFit(), l, nil)
			t.AddRow(n, mu, ff.TotalUsage/optTotal, bf.TotalUsage/optTotal,
				workload.AnyFitTrapRatioLimit(n, mu),
				analysis.AnyOnlineLowerBound(mu),
				analysis.AnyFitLowerBound(mu))
		}
	}
	t.AddNote("the formal Any Fit bound mu+1 uses an adaptive adversary; this fixed family realizes mu in the limit")
	return []*analysis.Table{t}
}

// runE4 runs the adaptive Best Fit relay: Best Fit's measured ratio grows
// with the number of victim bins k at fixed mu, while First Fit on the
// identical instance stays low — the qualitative content of "Best Fit is
// not bounded for any given mu" (Sec. I).
func runE4(cfg Config) []*analysis.Table {
	ks := []int{4, 8, 16, 32}
	rounds := 8
	mu := 4.0
	if cfg.Quick {
		ks = []int{4, 16}
		rounds = 4
	}
	t := analysis.NewTable(fmt.Sprintf("E4: adaptive relay vs Best Fit (mu=%g, rounds=%d)", mu, rounds),
		"k", "BF usage", "FF usage", "OPT(hi)", "BF ratio>=", "FF ratio<=", "analytic k(mu-1)/(k+mu-1)")
	for _, k := range ks {
		l := workload.BestFitRelay(k, rounds, mu)
		bf := packing.MustRun(packing.NewBestFit(), l, nil)
		ff := packing.MustRun(packing.NewFirstFit(), l, nil)
		b := opt.Total(l, 1, 1) // heuristic bracket; exact packing is slow on spike segments
		t.AddRow(k, bf.TotalUsage, ff.TotalUsage, b.Upper,
			bf.TotalUsage/b.Upper, ff.TotalUsage/b.Lower,
			workload.BestFitRelayRatioLimit(k, mu))
	}
	t.AddNote("BF ratio>= uses OPT's upper bracket (certified underestimate of the true ratio)")
	return []*analysis.Table{t}
}

// runE5 measures every standard policy against both adversary families
// and reports the worst ratio each policy suffered — an empirical view of
// the universal lower bound mu (every policy loses at least mu somewhere;
// escaping one trap does not beat the adaptive bound).
func runE5(cfg Config) []*analysis.Table {
	mu := 8.0
	n := 200
	if cfg.Quick {
		n = 50
	}
	families := map[string]item.List{
		"anyfit-trap": workload.AnyFitTrap(n, mu),
		"nextfit-adv": workload.NextFitAdversary(n, mu),
	}
	if !cfg.Quick {
		families["bestfit-relay"] = workload.BestFitRelay(16, 8, mu)
	}
	t := analysis.NewTable(fmt.Sprintf("E5: worst measured ratio per policy (mu=%g)", mu),
		"policy", "worst ratio>=", "on family", "universal LB mu")
	type worst struct {
		ratio  float64
		family string
	}
	results := map[string]worst{}
	for fam, l := range families {
		b := opt.Total(l, 1, 1)
		for name, algo := range packing.Standard() {
			res, err := packing.Run(algo, l, nil)
			if err != nil {
				panic(fmt.Sprintf("E5 %s/%s: %v", fam, name, err))
			}
			r := res.TotalUsage / b.Upper
			if r > results[name].ratio {
				results[name] = worst{ratio: r, family: fam}
			}
		}
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, results[name].ratio, results[name].family, mu)
	}
	t.AddNote("ratios are certified underestimates (vs OPT upper bracket); the adaptive adversary of [12] forces >= mu for every policy")
	return []*analysis.Table{t}
}

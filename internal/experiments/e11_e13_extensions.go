package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"dbp/internal/analysis"
	"dbp/internal/cloud"
	"dbp/internal/gaming"
	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// runE11 sweeps the reconstructed Sections VI-VII supplier-period
// parameterization (see analysis.SupplierParams): for each candidate, it
// reports how often supplier periods of distinct l-groups intersect (the
// quantity Lemma 2 proves to be zero under the paper's exact constants)
// and the measured amortized utilization over l-subperiods plus supplier
// periods (the quantity Sec. VII lower-bounds on the way to Theorem 1).
func runE11(cfg Config) []*analysis.Table {
	trials := 25
	if cfg.Quick {
		trials = 5
	}
	params := []struct {
		name string
		p    analysis.SupplierParams
	}{
		{"L=R=1/2, slack=1 (default)", analysis.DefaultSupplierParams()},
		{"L=R=1/2, slack=1/2", analysis.SupplierParams{LeftFrac: 0.5, RightFrac: 0.5, PairSlack: 0.5}},
		{"L=R=1, slack=1", analysis.SupplierParams{LeftFrac: 1, RightFrac: 1, PairSlack: 1}},
		{"L=1/4, R=1/4, slack=1", analysis.SupplierParams{LeftFrac: 0.25, RightFrac: 0.25, PairSlack: 1}},
	}
	t := analysis.NewTable("E11: supplier-period reconstruction sweep (Secs. VI-VII)",
		"parameterization", "groups", "pairs", "intersections", "overlap", "amortized level", "paper-shaped bound")
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := make([]*packing.Result, 0, trials+1)
	for i := 0; i < trials; i++ {
		mu := 1.5 + rng.Float64()*6
		corpus = append(corpus, packing.MustRun(packing.NewFirstFit(), randomSmallMix(rng, 100, 12, mu), nil))
	}
	corpus = append(corpus, packing.MustRun(packing.NewFirstFit(), workload.FirstFitSmallItemStress(8, 6, 3), nil))
	for _, pc := range params {
		var census analysis.IntersectionReport
		var amort analysis.AmortizedReport
		for _, res := range corpus {
			sps := analysis.SubperiodsOf(res)
			groups := analysis.BuildLGroups(sps, pc.p)
			r := analysis.CheckSupplierDisjointness(groups)
			census.Groups += r.Groups
			census.Pairs += r.Pairs
			census.Intersections += r.Intersections
			census.OverlapTime += r.OverlapTime
			a := analysis.MeasureAmortizedLevel(res, sps, groups)
			amort.Length += a.Length
			amort.Demand += a.Demand
			if a.Window > amort.Window {
				amort.Window = a.Window
			}
		}
		t.AddRow(pc.name, census.Groups, census.Pairs, census.Intersections,
			census.OverlapTime, amort.Level(), amort.PaperBound())
	}
	t.AddNote("Lemma 2 claims zero intersections under the paper's exact constants; the sweep shows which reconstruction approaches that")
	t.AddNote("the measured amortized level sits far above the 1/(2(mu+3)) bound shape: the proof's slack is what the +4 constant absorbs")
	return []*analysis.Table{t}
}

// runE12 evaluates server keep-alive: emptied servers linger (reusable)
// for a while before shutting down. Under per-hour billing a server's
// started hour is already paid, so lingering up to the billing quantum is
// often free — the measured bill dips at moderate keep-alive values even
// though raw usage time grows monotonically.
func runE12(cfg Config) []*analysis.Table {
	n := 600
	if cfg.Quick {
		n = 150
	}
	l, _ := gaming.Sessions(gaming.Config{Catalog: gaming.DefaultCatalog(), Rate: 0.5, N: n, Seed: cfg.Seed})
	plan := cloud.Hourly(0.90, 60) // $0.90/hour, minutes as time unit
	t := analysis.NewTable("E12: keep-alive vs hourly bill (First Fit, gaming workload)",
		"keep-alive (min)", "servers", "usage (min)", "billed (min)", "bill $", "vs no keep-alive")
	var base float64
	for _, ka := range []float64{0, 5, 15, 30, 60, 120} {
		res, err := packing.Run(packing.NewFirstFit(), l, &packing.Options{KeepAlive: ka})
		if err != nil {
			panic(fmt.Sprintf("E12: %v", err))
		}
		iv := cloud.Cost(res, plan)
		if ka == 0 {
			base = iv.Total
		}
		t.AddRow(ka, res.NumBins(), res.TotalUsage, iv.BilledTime, iv.Total,
			fmt.Sprintf("%+.1f%%", 100*(iv.Total-base)/base))
	}
	t.AddNote("usage time grows with keep-alive, but reuse collapses servers: the hourly bill can drop below the no-keep-alive baseline")
	return []*analysis.Table{t}
}

// runE13 runs the ablations DESIGN.md §6 calls out, plus the bounded-
// space interpolation between Next Fit and First Fit:
//
//	(a) same-instant event order (departures-first, the model's default,
//	    vs arrivals-first) on the Sec. VIII construction and random load;
//	(b) Next-k Fit on the Sec. VIII adversary: how many available bins
//	    does Next Fit need before the 2*mu penalty dissolves;
//	(c) the clairvoyant baselines: how much knowing departures helps.
func runE13(cfg Config) []*analysis.Table {
	var tables []*analysis.Table

	// (a) tie-order ablation.
	ta := analysis.NewTable("E13a: same-instant event order ablation (First Fit)",
		"workload", "usage (def)", "usage (abl)", "delta%", "bins (def)", "bins (abl)")
	for _, w := range []struct {
		name string
		l    item.List
	}{
		{"nextfit-adv n=64", workload.NextFitAdversary(64, 8)},
		{"uniform n=200", workload.Generate(workload.UniformConfig(200, 4, 8, cfg.Seed))},
		{"back-to-back chain", chainInstance(40)},
	} {
		d := packing.MustRun(packing.NewFirstFit(), w.l, nil)
		a := packing.MustRun(packing.NewFirstFit(), w.l, &packing.Options{ArrivalsFirst: true})
		ta.AddRow(w.name, d.TotalUsage, a.TotalUsage,
			fmt.Sprintf("%+.2f%%", 100*(a.TotalUsage-d.TotalUsage)/d.TotalUsage),
			d.NumBins(), a.NumBins())
	}
	ta.AddNote("the back-to-back chain collapses to one bin under arrivals-first: the new job overlaps the departing one for an instant")
	ta.AddNote("arrivals-first forbids reusing capacity freed at the same instant (half-open intervals reversed)")
	tables = append(tables, ta)

	// (b) Next-k Fit sweep on the Sec. VIII adversary.
	tb := analysis.NewTable("E13b: bounded-space Next-k Fit on the Sec. VIII adversary (n=64, mu=8)",
		"k", "usage", "ratio", "reference")
	l := workload.NextFitAdversary(64, 8)
	optTotal := 64.0/2 + 8
	for _, k := range []int{1, 2, 4, 8, 16} {
		res := packing.MustRun(packing.NewNextKFit(k), l, nil)
		ref := ""
		if k == 1 {
			ref = "== Next Fit (2mu limit)"
		}
		tb.AddRow(k, res.TotalUsage, res.TotalUsage/optTotal, ref)
	}
	ff := packing.MustRun(packing.NewFirstFit(), l, nil)
	tb.AddRow("FF", ff.TotalUsage, ff.TotalUsage/optTotal, "unbounded space")
	tables = append(tables, tb)

	// (c) clairvoyant baselines on a small-item bimodal mix — the regime
	// where placement choice matters (several jobs per server, a mix of
	// short jobs and 10x stragglers that keep wrong servers alive).
	tc := analysis.NewTable("E13c: value of knowing departures (small-item bimodal workload)",
		"policy", "usage", "vs FirstFit")
	lb := smallBimodal(300, cfg.Seed)
	ffRes := packing.MustRun(packing.NewFirstFit(), lb, nil)
	tc.AddRow("FirstFit (online)", ffRes.TotalUsage, "1.000")
	clair := packing.Clairvoyant()
	names := make([]string, 0, len(clair))
	for name := range clair {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, err := packing.Run(clair[name], lb, &packing.Options{Clairvoyant: true})
		if err != nil {
			panic(fmt.Sprintf("E13c %s: %v", name, err))
		}
		tc.AddRow(res.Algorithm, res.TotalUsage, fmt.Sprintf("%.3f", res.TotalUsage/ffRes.TotalUsage))
	}
	tc.AddNote("clairvoyant policies see departures at placement: the paper's online model forbids this (cf. interval scheduling, Sec. II)")
	tables = append(tables, tc)

	// (d) prediction-noise sweep: how accurate must a duration predictor
	// be before a departure-aware rule beats plain (online) First Fit?
	td := analysis.NewTable("E13d: learning-augmented dispatch — prediction noise sweep",
		"sigma (lognormal)", "usage", "vs FirstFit")
	td.AddRow("online FF (no predictions)", ffRes.TotalUsage, "1.000")
	for _, sigma := range []float64{0, 0.25, 0.5, 1, 2, 4} {
		res, err := packing.Run(packing.NewPredictiveFit(sigma, cfg.Seed), lb, &packing.Options{Clairvoyant: true})
		if err != nil {
			panic(fmt.Sprintf("E13d: %v", err))
		}
		td.AddRow(sigma, res.TotalUsage, fmt.Sprintf("%.3f", res.TotalUsage/ffRes.TotalUsage))
	}
	td.AddNote("sigma = 0 is perfect clairvoyance; predictions degrade lognormally with sigma")
	tables = append(tables, td)
	return tables
}

// smallBimodal builds the clairvoyance-sensitive workload: small items
// (several share a server) with bimodal durations (short 1 vs straggler
// 10), moderate load.
func smallBimodal(n int, seed int64) item.List {
	rng := rand.New(rand.NewSource(seed))
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * 40
		dur := 1.0
		if rng.Float64() < 0.3 {
			dur = 10
		}
		l[i] = item.Item{ID: item.ID(i + 1), Size: 0.05 + rng.Float64()*0.45, Arrival: a, Departure: a + dur}
	}
	return l
}

// chainInstance builds back-to-back items: each departs exactly when the
// next arrives, maximizing sensitivity to the same-instant tie rule.
func chainInstance(n int) item.List {
	l := make(item.List, n)
	for i := range l {
		t := float64(i)
		l[i] = item.Item{ID: item.ID(i + 1), Size: 0.45, Arrival: t, Departure: t + 1}
	}
	return l
}

package experiments

import (
	"fmt"
	"sort"

	"dbp/internal/analysis"
	"dbp/internal/cloud"
	_ "dbp/internal/gaming" // registers the "gaming" scenario
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/parallel"
	"dbp/internal/workload"
)

// runE8 dispatches synthetic cloud-gaming sessions (the paper's
// motivating application) and prices the resulting server fleet under
// pay-as-you-go billing at several granularities, showing that minimizing
// usage time minimizes renting cost and that the hourly-billing overhead
// vanishes as sessions grow long relative to the billing quantum.
func runE8(cfg Config) []*analysis.Table {
	n := 600
	if cfg.Quick {
		n = 150
	}
	rates := []float64{0.2, 0.5, 1.0}
	if cfg.Quick {
		rates = []float64{0.5}
	}

	t1 := analysis.NewTable("E8a: cloud gaming dispatch (GPU sessions, mu<=60)",
		"arrival rate", "policy", "servers", "peak", "usage (min)", "$/continuous", "$/hourly", "overhead%")
	for _, rate := range rates {
		l, err := workload.FromSpec("gaming", n, rate, 0, cfg.Seed, 1)
		if err != nil {
			panic(err)
		}
		for _, algo := range []packing.Algorithm{packing.NewFirstFit(), packing.NewBestFit(), packing.NewNextFit()} {
			res := packing.MustRun(algo, l, nil)
			// Time unit is minutes; $0.90/hour GPU server.
			hourly := cloud.Cost(res, cloud.Hourly(0.90, 60))
			continuous := cloud.Cost(res, cloud.BillingModel{Granularity: 0, Rate: 0.90 / 60})
			t1.AddRow(rate, res.Algorithm, res.NumBins(), res.MaxConcurrentOpen,
				res.TotalUsage, continuous.Total, hourly.Total, 100*hourly.Overhead())
		}
	}

	t2 := analysis.NewTable("E8b: billing granularity vs idealized objective (First Fit)",
		"granularity (min)", "billed time", "usage time", "overhead%")
	l, err := workload.FromSpec("gaming", n, 0.5, 0, cfg.Seed, 1)
	if err != nil {
		panic(err)
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	for _, g := range []float64{120, 60, 15, 1, 0} {
		iv := cloud.Cost(res, cloud.BillingModel{Granularity: g, Rate: 1})
		t2.AddRow(g, iv.BilledTime, iv.UsageTime, 100*iv.Overhead())
	}
	t2.AddNote("granularity 0 = continuous billing = the MinUsageTime objective exactly")
	return []*analysis.Table{t1, t2}
}

// runE9 compares every policy on every registered statistical scenario
// across load levels, reporting mean conservative ratios — the practical
// counterpart of the theory: First Fit tracks the optimum closely while
// Next Fit and Last Fit trail. A scenario added to the workload registry
// appears here with no experiment change. The equal-duration rows are
// additionally checked against the Masoori et al. constant (First Fit's
// ratio collapses to ~2 when mu = 1).
func runE9(cfg Config) []*analysis.Table {
	mus := []float64{2, 8}
	rates := []float64{0.5, 2, 8}
	seeds := []int64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2}
	n := 150
	if cfg.Quick {
		mus = []float64{4}
		rates = []float64{2}
		seeds = seeds[:1]
		n = 60
	}

	scens := workload.Statistical()

	t := analysis.NewTable("E9: mean conservative ratio (usage/OPT_lower) on registered statistical scenarios",
		"scenario", "mu", "rate", "FF", "BF", "WF", "LF", "NF", "HFF", "bins FF")
	// Build the (scenario, mu, rate) grid, then evaluate cells in parallel
	// — each cell is independent and the exact-OPT integrals dominate.
	type cell struct {
		scIdx int
		mu    float64
		rate  float64
	}
	var grid []cell
	for si := range scens {
		for _, mu := range mus {
			for _, rate := range rates {
				grid = append(grid, cell{si, mu, rate})
			}
		}
	}
	type cellResult struct {
		means  map[string]float64
		binsFF int
	}
	results := parallel.Map(len(grid), 0, func(gi int) cellResult {
		c := grid[gi]
		inst := workload.MustLookup(scens[c.scIdx].Name())
		ratios := map[string][]float64{}
		binsFF := 0
		for _, seed := range seeds {
			l, err := inst.Generate(n, c.rate, c.mu, seed, 1)
			if err != nil {
				panic(err)
			}
			b := opt.Total(l, 48, 0)
			for name, algo := range map[string]packing.Algorithm{
				"FF": packing.NewFirstFit(), "BF": packing.NewBestFit(),
				"WF": packing.NewWorstFit(), "LF": packing.NewLastFit(),
				"NF": packing.NewNextFit(), "HFF": packing.NewHybridFirstFit(2),
			} {
				res := packing.MustRun(algo, l, nil)
				ratios[name] = append(ratios[name], res.TotalUsage/b.Lower)
				if name == "FF" {
					binsFF = res.NumBins()
				}
			}
		}
		means := make(map[string]float64, len(ratios))
		for name, xs := range ratios {
			means[name] = analysis.Summarize(xs).Mean
		}
		return cellResult{means: means, binsFF: binsFF}
	})
	eqBound, eqWorst := analysis.EqualDurationFirstFitBound(), 0.0
	for gi, c := range grid {
		m := results[gi].means
		t.AddRow(scens[c.scIdx].Name(), c.mu, c.rate, m["FF"], m["BF"], m["WF"], m["LF"], m["NF"], m["HFF"], results[gi].binsFF)
		if scens[c.scIdx].Name() == "equalduration" && m["FF"] > eqWorst {
			eqWorst = m["FF"]
		}
	}
	t.AddNote("ratios vs OPT lower bracket: over-estimates of the true competitive ratio; relative ordering is the signal")
	t.AddNote(fmt.Sprintf("scenarios swept from the workload registry: %d statistical families", len(scens)))
	if eqWorst > eqBound {
		t.AddNote(fmt.Sprintf("VIOLATION: equalduration FF ratio %.4f exceeds the Masoori et al. reference %.4g", eqWorst, eqBound))
	} else {
		t.AddNote(fmt.Sprintf("equalduration check: worst FF ratio %.4f <= %.4g (Masoori et al. equal-duration reference; cf. Theorem 1's mu+4 = 5)", eqWorst, eqBound))
	}
	return []*analysis.Table{t}
}

// runE10 exercises the multi-dimensional extension the paper names as
// future work (Sec. IX): items demand CPU and memory independently and a
// server is saturated when either dimension fills. The vector OPT
// bracket (per-dimension load lower bound, vector-FFD upper bound) frames
// the measured usage of each policy.
func runE10(cfg Config) []*analysis.Table {
	dims := []int{1, 2, 4}
	n := 150
	seeds := []int64{cfg.Seed, cfg.Seed + 1}
	if cfg.Quick {
		dims = []int{2}
		seeds = seeds[:1]
		n = 60
	}
	t := analysis.NewTable("E10: multi-dimensional dispatch (independent per-dimension demands)",
		"d", "policy", "usage", "OPT(lo)", "OPT(hi)", "ratio<=")
	for _, d := range dims {
		type agg struct{ usage, lo, hi float64 }
		sums := map[string]*agg{}
		for _, seed := range seeds {
			l, err := workload.FromSpec("uniform", n, 2, 4, seed, d)
			if err != nil {
				panic(err)
			}
			var b opt.Bounds
			if d > 1 {
				b = opt.TotalVec(l)
			} else {
				b = opt.Total(l, 48, 0)
			}
			for _, algo := range []packing.Algorithm{packing.NewFirstFit(), packing.NewBestFit(), packing.NewWorstFit()} {
				res := packing.MustRun(algo, l, nil)
				a := sums[algo.Name()]
				if a == nil {
					a = &agg{}
					sums[algo.Name()] = a
				}
				a.usage += res.TotalUsage
				a.lo += b.Lower
				a.hi += b.Upper
			}
		}
		names := make([]string, 0, len(sums))
		for name := range sums {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := sums[name]
			t.AddRow(d, name, a.usage, a.lo, a.hi, a.usage/a.lo)
		}
	}
	t.AddNote(fmt.Sprintf("sizes per dimension uniform in [0.05, 0.95]; %d seeds aggregated", len(seeds)))
	return []*analysis.Table{t}
}

package experiments

import (
	"fmt"

	"dbp/internal/analysis"
	"dbp/internal/cloud"
	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// optBracket computes the OPT bracket used by comparison experiments.
func optBracket(l item.List) opt.Bounds {
	return opt.TotalParallel(l, 48, 0, 0)
}

// e14Fleet is the three-tier catalog used by E14, with sub-linear
// pricing (doubling capacity costs less than double) — the shape of real
// cloud price lists, and the reason "right-size everything" is not
// automatically cheapest.
func e14Fleet() ([]packing.ServerType, cloud.RatePlan) {
	fleet := []packing.ServerType{
		{Name: "small", Capacity: 0.25},
		{Name: "medium", Capacity: 0.5},
		{Name: "large", Capacity: 1.0},
	}
	plan := cloud.RatePlan{
		Granularity: 60, // hourly, minutes as time unit
		Tiers: []cloud.TierRate{
			{Capacity: 0.25, Rate: 0.35 / 60},
			{Capacity: 0.5, Rate: 0.60 / 60},
			{Capacity: 1.0, Rate: 1.00 / 60},
		},
	}
	return fleet, plan
}

// runE14 evaluates heterogeneous fleets: the same gaming workload
// dispatched onto a three-tier catalog under two opening strategies
// (right-size vs always-large) and two packing policies, priced with the
// sub-linear tier plan. The paper's unit-capacity model is the
// always-large column; the experiment quantifies what tier choice adds.
func runE14(cfg Config) []*analysis.Table {
	n := 600
	if cfg.Quick {
		n = 150
	}
	l, err := workload.FromSpec("gaming", n, 0.5, 0, cfg.Seed, 1)
	if err != nil {
		panic(fmt.Sprintf("E14: %v", err))
	}
	fleet, plan := e14Fleet()

	t := analysis.NewTable("E14: heterogeneous fleet (3 tiers, sub-linear pricing, hourly billing)",
		"policy", "tier strategy", "servers", "usage (min)", "bill $")
	for _, algo := range []func() packing.Algorithm{
		func() packing.Algorithm { return packing.NewFirstFit() },
		func() packing.Algorithm { return packing.NewBestFit() },
	} {
		for _, ch := range []struct {
			name    string
			chooser packing.TypeChooser
		}{
			{"right-size", packing.RightSize()},
			{"always-large", packing.LargestType()},
		} {
			a := algo()
			res, err := packing.RunFleet(a, l, fleet, ch.chooser, nil)
			if err != nil {
				panic(fmt.Sprintf("E14: %v", err))
			}
			iv := cloud.CostFleet(res, plan)
			t.AddRow(a.Name(), ch.name, res.NumBins(), res.TotalUsage, iv.Total)
		}
	}
	t.AddNote("always-large reproduces the paper's unit-capacity model; right-size pays less per server but opens more of them")
	return []*analysis.Table{t}
}

// runE15 stresses the policies with non-smooth arrival curves: bursty
// (Markov-modulated Poisson) flash crowds open many servers at once,
// whose stragglers then keep them alive, and diurnal sinusoid modulation
// alternates packed days with idle nights — the regimes where the spread
// between policies widens compared with smooth Poisson arrivals of the
// same average rate. The arrival shapes are registry scenarios, selected
// by spec.
func runE15(cfg Config) []*analysis.Table {
	n := 400
	if cfg.Quick {
		n = 120
	}
	mu := 8.0
	t := analysis.NewTable("E15: arrival shape (smooth vs bursty vs diurnal) — conservative ratio",
		"arrivals", "FF", "BF", "NF", "HFF", "peak open (FF)")
	for _, mode := range []struct{ label, spec string }{
		{"smooth", "uniform"},
		{"bursty x10", "bursty:factor=10,calm=30,burst=3"},
		{"diurnal", "diurnal:amp=0.8"},
	} {
		l, err := workload.FromSpec(mode.spec, n, 1, mu, cfg.Seed, 1)
		if err != nil {
			panic(fmt.Sprintf("E15: %v", err))
		}
		b := optBracket(l)
		row := []any{mode.label}
		var peak int
		for _, mk := range []func() packing.Algorithm{
			func() packing.Algorithm { return packing.NewFirstFit() },
			func() packing.Algorithm { return packing.NewBestFit() },
			func() packing.Algorithm { return packing.NewNextFit() },
			func() packing.Algorithm { return packing.NewHybridFirstFit(2) },
		} {
			a := mk()
			res := packing.MustRun(a, l, nil)
			row = append(row, res.TotalUsage/b.Lower)
			if a.Name() == "FirstFit" {
				peak = res.MaxConcurrentOpen
			}
		}
		row = append(row, peak)
		t.AddRow(row...)
	}
	t.AddNote("same n, duration and size distributions; bursts concentrate arrivals 10x for short spells, diurnal modulates the rate 9x peak/trough")
	return []*analysis.Table{t}
}

// Package experiments contains one runnable harness per experiment in
// DESIGN.md (E1–E10), each regenerating a table/series corresponding to a
// quantitative claim of the paper. Every experiment is deterministic
// given Config.Seed and supports a Quick mode (smaller sweeps) used by
// tests; cmd/dbpexp runs the full versions and renders EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"dbp/internal/analysis"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks sweeps so the whole suite runs in seconds (used by
	// tests and benchmarks).
	Quick bool
	// Seed drives all random workloads.
	Seed int64
}

// Experiment is one registered harness.
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper artifact the experiment reproduces.
	Claim string
	Run   func(cfg Config) []*analysis.Table
}

// All returns the experiments in ID order.
func All() []Experiment {
	exps := []Experiment{
		{
			ID:    "E1",
			Title: "Theorem 1: First Fit is (mu+4)-competitive",
			Claim: "FF_total(R) <= (mu+4) * OPT_total(R) on every instance",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "Section VIII: Next Fit lower bound 2*mu",
			Claim: "NF ratio n*mu/(n/2+mu) -> 2*mu on the paper's construction",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "Any Fit trap: First Fit and Best Fit pinned near mu",
			Claim: "conservative algorithms cannot beat mu (Sec. I, [12]/[6])",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Best Fit degradation on the adaptive relay",
			Claim: "Best Fit's ratio grows with victim count at fixed mu; First Fit resists",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Universal lower bound mu across all policies",
			Claim: "per-policy worst measured ratio over the adversary families",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Bounds landscape (analytic)",
			Claim: "prior bounds vs Theorem 1's mu+4; gap to the lower bound is the constant 4",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "Proof machinery: usage-period decomposition and subperiods",
			Claim: "Section IV identities and Propositions 3-6 hold on real packings",
			Run:   runE7,
		},
		{
			ID:    "E8",
			Title: "Cloud gaming dispatch and pay-as-you-go billing",
			Claim: "usage time is the continuous limit of per-hour renting cost (Sec. I motivation)",
			Run:   runE8,
		},
		{
			ID:    "E9",
			Title: "Algorithm comparison on random workloads",
			Claim: "First Fit is near-optimal in practice across loads and distributions",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Multi-dimensional extension (future work, Sec. IX)",
			Claim: "vector-demand dispatch with per-dimension capacity",
			Run:   runE10,
		},
		{
			ID:    "E11",
			Title: "Supplier-period reconstruction sweep (Secs. VI-VII)",
			Claim: "Lemma 2 disjointness census and amortized utilization under candidate constants",
			Run:   runE11,
		},
		{
			ID:    "E12",
			Title: "Server keep-alive under hourly billing",
			Claim: "lingering within the paid billing quantum can lower the bill despite higher usage",
			Run:   runE12,
		},
		{
			ID:    "E13",
			Title: "Ablations: event-order ties, bounded-space Next-k Fit, clairvoyance",
			Claim: "design choices called out in DESIGN.md §6 quantified",
			Run:   runE13,
		},
		{
			ID:    "E14",
			Title: "Heterogeneous fleet with sub-linear tier pricing",
			Claim: "tier choice interacts with packing policy; always-large reproduces the unit model",
			Run:   runE14,
		},
		{
			ID:    "E15",
			Title: "Bursty (MMPP) arrivals vs smooth Poisson",
			Claim: "flash crowds widen the spread between policies at equal average load",
			Run:   runE15,
		},
		{
			ID:    "E16",
			Title: "Objective contrast: classical DBP (peak bins) vs MinUsageTime",
			Claim: "the classical peak-bins objective understates the renting cost by an order of magnitude on the Sec. VIII instance (peak ratio < 2 vs usage ratio 12.8)",
			Run:   runE16,
		},
	}
	sort.Slice(exps, func(i, j int) bool {
		return len(exps[i].ID) < len(exps[j].ID) || (len(exps[i].ID) == len(exps[j].ID) && exps[i].ID < exps[j].ID)
	})
	return exps
}

// ByID returns the experiment with the given ID (case-sensitive).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (E1..E16)", id)
}

// fmtBool renders a pass/fail cell.
func fmtBool(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

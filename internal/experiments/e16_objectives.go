package experiments

import (
	"sort"

	"dbp/internal/analysis"
	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// runE16 contrasts the two objectives the paper distinguishes (Sec. II):
// classical Dynamic Bin Packing minimizes the *maximum number of
// concurrently open* bins, MinUsageTime minimizes *accumulated usage
// time*. The experiment measures every policy under both objectives on
// the same instances — including the Section VIII construction, where
// the two objectives diverge dramatically: Next Fit is catastrophic in
// usage time (ratio -> 2mu = 12.8 here) while its peak-bin ratio stays
// below 2 — the classical objective understates the renting-cost damage
// by an order of magnitude, which is exactly why the paper formalizes
// MinUsageTime as a separate problem.
func runE16(cfg Config) []*analysis.Table {
	n := 150
	if cfg.Quick {
		n = 60
	}
	instances := []struct {
		name string
		l    func() item.List
	}{
		{"uniform mu=8", func() item.List { return workload.Generate(workload.UniformConfig(n, 2, 8, cfg.Seed)) }},
		{"nextfit-adv n=64 mu=8", func() item.List { return workload.NextFitAdversary(64, 8) }},
		{"anyfit-trap n=32 mu=8", func() item.List { return workload.AnyFitTrap(32, 8) }},
	}
	var tables []*analysis.Table
	for _, inst := range instances {
		l := inst.l()
		usageBr := opt.TotalParallel(l, 48, 0, 0)
		peakOpt := opt.MaxConcurrentOpt(l)
		t := analysis.NewTable("E16: objective contrast — "+inst.name,
			"policy", "usage", "usage ratio<=", "peak open", "peak ratio", "rank(usage)", "rank(peak)")
		type row struct {
			name  string
			usage float64
			peak  int
		}
		var rows []row
		for name, algo := range packing.Standard() {
			res := packing.MustRun(algo, l, nil)
			rows = append(rows, row{name, res.TotalUsage, res.MaxConcurrentOpen})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		usageRank := rankBy(rows, func(r row) float64 { return r.usage })
		peakRank := rankBy(rows, func(r row) float64 { return float64(r.peak) })
		for i, r := range rows {
			t.AddRow(r.name, r.usage, r.usage/usageBr.Lower,
				r.peak, float64(r.peak)/float64(peakOpt),
				usageRank[i], peakRank[i])
		}
		t.AddNote("peak ratio is vs the classical DBP optimum max_t OPT(R,t); rank 1 = best under that objective")
		tables = append(tables, t)
	}
	return tables
}

// rankBy returns each row's 1-based rank under the key (ties share the
// better rank).
func rankBy[T any](rows []T, key func(T) float64) []int {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return key(rows[idx[a]]) < key(rows[idx[b]]) })
	ranks := make([]int, len(rows))
	for pos, i := range idx {
		ranks[i] = pos + 1
		if pos > 0 && key(rows[i]) == key(rows[idx[pos-1]]) {
			ranks[i] = ranks[idx[pos-1]]
		}
	}
	return ranks
}

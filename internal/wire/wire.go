// Package wire is the allocation service's binary transport: a
// length-prefixed, versioned framing protocol over persistent TCP
// connections, designed so the network path can deliver events at the
// rate the packing engine absorbs them (BENCH_serve.json: the engine
// applies an arrival in ~5µs while one JSON op per HTTP round trip
// costs ~500µs client-observed — the transport, not the engine, was
// the ceiling).
//
// Layout. Every frame is
//
//	+------+----------------+===========+
//	| type |  length (u32)  |  payload  |
//	| u8   |  little-endian |  bytes    |
//	+------+----------------+===========+
//
// A connection opens with a Hello exchange (magic "DBPW" + u16
// version, both directions); after that the client sends Batch frames
// — u32 op count followed by fixed-width little-endian ops — and the
// server answers each with a Results frame carrying one fixed-width
// result per op, in op order. Because TCP preserves order and the
// server answers batches in arrival order, correlation is positional:
// the n-th Results frame on a connection answers the n-th Batch frame,
// which is what makes pipelining (multiple batches in flight) free.
// Stats and Ping are control frames for monitoring; GoAway is the
// server's drain signal — in-flight batches are still answered and
// flushed, then the connection closes.
//
// The op and result codecs are allocation-free in both directions:
// fixed-width fields appended to caller-owned (pooled) buffers, no
// reflection, no varints, and decode reuses the caller's Op buffers
// (including the demand-vector slice for d-dimensional jobs).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic opens every Hello payload; a peer that does not present it is
// not speaking this protocol and the connection is refused.
const Magic = "DBPW"

// Version is the protocol version this package speaks. The server
// echoes its own version in the Hello reply; a client refuses a
// mismatch, so incompatible revisions fail fast at the handshake.
const Version uint16 = 1

// Frame types. Values are part of the wire format — append only.
const (
	// FrameHello carries the handshake payload (magic + u16 version),
	// client → server first, then the server's reply.
	FrameHello uint8 = 1
	// FrameBatch (client → server) carries u32 count + count ops.
	FrameBatch uint8 = 2
	// FrameResults (server → client) answers one Batch frame: u32
	// count + count results, positionally matching the batch's ops.
	FrameResults uint8 = 3
	// FrameStats (client → server) requests service stats; empty
	// payload.
	FrameStats uint8 = 4
	// FrameStatsReply (server → client) carries the JSON-encoded
	// serve.Stats. Stats is off the hot path; JSON keeps it debuggable.
	FrameStatsReply uint8 = 5
	// FramePing (client → server) requests an echo of its payload.
	FramePing uint8 = 6
	// FramePong (server → client) echoes a Ping's payload.
	FramePong uint8 = 7
	// FrameGoAway (server → client) announces a drain: every batch
	// already answered has been flushed, nothing further will be read,
	// and the server closes the connection after sending it.
	FrameGoAway uint8 = 8
	// FrameError (server → client) reports a connection-fatal protocol
	// violation (UTF-8 diagnostic payload) before the server closes.
	FrameError uint8 = 9
)

// FrameHeaderLen is the fixed frame prefix: type byte + u32 length.
const FrameHeaderLen = 5

// MaxFrameLen caps a frame's payload so a corrupt or hostile length
// prefix cannot make a peer allocate unbounded memory.
const MaxFrameLen = 1 << 24 // 16 MiB

// MaxBatchOps caps the op count of one batch frame; combined with the
// ops' minimum width it keeps a decoded batch's memory proportional to
// the bytes actually received.
const MaxBatchOps = 65536

// MaxDim caps the demand-vector dimensionality a decoder accepts.
// Real placements use a handful of resource dimensions; anything
// larger is a corrupt or hostile frame.
const MaxDim = 1024

// Op kinds on the wire.
const (
	OpArrive uint8 = 0
	OpDepart uint8 = 1
)

// Op flag bits.
const (
	flagHasTime uint8 = 1 << 0 // explicit f64 timestamp follows
	flagVector  uint8 = 1 << 1 // u16 dim + dim f64 demands follow (arrive only)
)

// Op is one decoded operation. The scalar fast path (Sizes empty, no
// explicit time) encodes an arrive in 18 bytes and a depart in 10.
type Op struct {
	Kind    uint8 // OpArrive or OpDepart
	ID      int64
	Size    float64   // scalar demand (arrive)
	Sizes   []float64 // vector demand (arrive, d > 1); nil for scalar
	Time    float64   // explicit event time, valid when HasTime
	HasTime bool
}

// Result statuses. Values are part of the wire format — append only.
// They mirror the service's stable error codes one to one, so both
// transports expose the identical error taxonomy.
const (
	StatusOK             uint8 = 0
	StatusDuplicateJob   uint8 = 1
	StatusUnknownJob     uint8 = 2
	StatusBadDemand      uint8 = 3
	StatusTimeRegression uint8 = 4
	StatusPolicyMisplace uint8 = 5
	StatusShuttingDown   uint8 = 6
	StatusInternal       uint8 = 7
)

// Result is one op's outcome: 14 bytes fixed width on the wire.
type Result struct {
	Status uint8
	Flag   bool // opened (arrive) / closed (depart)
	Server int32
	Time   float64 // the time the event was applied at
}

// resultLen is Result's fixed encoded width.
const resultLen = 1 + 1 + 4 + 8

// Errors the decoders return; all mean "malformed input", never a
// panic or an over-read past the supplied buffer.
var (
	ErrShortBuffer = errors.New("wire: truncated input")
	ErrBadKind     = errors.New("wire: unknown op kind")
	ErrBadDim      = errors.New("wire: demand dimensionality out of range")
	ErrBadFlags    = errors.New("wire: undefined op flag bits set")
	ErrFrameSize   = errors.New("wire: frame exceeds size limit")
	ErrBatchSize   = errors.New("wire: batch op count out of range")
	ErrBadMagic    = errors.New("wire: bad handshake magic")
	ErrVersion     = errors.New("wire: protocol version mismatch")
)

// AppendOp encodes op and appends the bytes to b, returning the
// extended slice. It never allocates beyond b's growth.
func AppendOp(b []byte, op *Op) []byte {
	var flags uint8
	if op.HasTime {
		flags |= flagHasTime
	}
	vector := op.Kind == OpArrive && len(op.Sizes) > 0
	if vector {
		flags |= flagVector
	}
	b = append(b, op.Kind, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(op.ID))
	if op.Kind == OpArrive {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Size))
		if vector {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Sizes)))
			for _, s := range op.Sizes {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s))
			}
		}
	}
	if op.HasTime {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Time))
	}
	return b
}

// DecodeOp decodes one op from the front of b into *op, reusing
// op.Sizes' capacity for vector demands, and returns the number of
// bytes consumed. It never reads past len(b): malformed or truncated
// input yields an error, not a panic.
func DecodeOp(b []byte, op *Op) (int, error) {
	if len(b) < 2 {
		return 0, ErrShortBuffer
	}
	kind, flags := b[0], b[1]
	if kind != OpArrive && kind != OpDepart {
		return 0, ErrBadKind
	}
	// Undefined flag bits are an error, not ignored: silently dropping
	// them would make decode(encode(x)) lossy and forecloses ever
	// assigning those bits a meaning peers can rely on being rejected
	// by older decoders.
	if flags&^(flagHasTime|flagVector) != 0 {
		return 0, ErrBadFlags
	}
	if kind == OpDepart && flags&flagVector != 0 {
		return 0, ErrBadFlags
	}
	n := 2
	if len(b) < n+8 {
		return 0, ErrShortBuffer
	}
	op.Kind = kind
	op.ID = int64(binary.LittleEndian.Uint64(b[n:]))
	n += 8
	op.Size = 0
	op.Sizes = op.Sizes[:0]
	if kind == OpArrive {
		if len(b) < n+8 {
			return 0, ErrShortBuffer
		}
		op.Size = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		n += 8
		if flags&flagVector != 0 {
			if len(b) < n+2 {
				return 0, ErrShortBuffer
			}
			dim := int(binary.LittleEndian.Uint16(b[n:]))
			n += 2
			if dim == 0 || dim > MaxDim {
				return 0, ErrBadDim
			}
			if len(b) < n+8*dim {
				return 0, ErrShortBuffer
			}
			for i := 0; i < dim; i++ {
				op.Sizes = append(op.Sizes, math.Float64frombits(binary.LittleEndian.Uint64(b[n:])))
				n += 8
			}
		}
	}
	op.HasTime = flags&flagHasTime != 0
	op.Time = 0
	if op.HasTime {
		if len(b) < n+8 {
			return 0, ErrShortBuffer
		}
		op.Time = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		n += 8
	}
	return n, nil
}

// AppendResult encodes r and appends the bytes to b.
func AppendResult(b []byte, r *Result) []byte {
	var flag uint8
	if r.Flag {
		flag = 1
	}
	b = append(b, r.Status, flag)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Server))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Time))
	return b
}

// DecodeResult decodes one result from the front of b into *r and
// returns the bytes consumed.
func DecodeResult(b []byte, r *Result) (int, error) {
	if len(b) < resultLen {
		return 0, ErrShortBuffer
	}
	r.Status = b[0]
	r.Flag = b[1] != 0
	r.Server = int32(binary.LittleEndian.Uint32(b[2:]))
	r.Time = math.Float64frombits(binary.LittleEndian.Uint64(b[6:]))
	return resultLen, nil
}

// BeginFrame appends a frame header for typ with a zero length to b
// and returns the extended slice plus the header's offset; once the
// payload has been appended, EndFrame patches the length in. The
// pattern lets a writer build header and payload in one buffer with no
// copies:
//
//	buf, off := BeginFrame(buf[:0], FrameBatch)
//	... append payload ...
//	buf = EndFrame(buf, off)
func BeginFrame(b []byte, typ uint8) ([]byte, int) {
	off := len(b)
	b = append(b, typ, 0, 0, 0, 0)
	return b, off
}

// EndFrame patches the length of the frame opened at off to cover
// everything appended since BeginFrame.
func EndFrame(b []byte, off int) []byte {
	binary.LittleEndian.PutUint32(b[off+1:], uint32(len(b)-off-FrameHeaderLen))
	return b
}

// AppendFrame appends a complete frame (header + payload) to b.
func AppendFrame(b []byte, typ uint8, payload []byte) []byte {
	b = append(b, typ, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b[len(b)-4:], uint32(len(payload)))
	return append(b, payload...)
}

// ParseFrameHeader decodes a frame header, validating the length
// against MaxFrameLen.
func ParseFrameHeader(h []byte) (typ uint8, length int, err error) {
	if len(h) < FrameHeaderLen {
		return 0, 0, ErrShortBuffer
	}
	n := binary.LittleEndian.Uint32(h[1:])
	if n > MaxFrameLen {
		return 0, 0, ErrFrameSize
	}
	return h[0], int(n), nil
}

// AppendHello appends the handshake payload (magic + version).
func AppendHello(b []byte, version uint16) []byte {
	b = append(b, Magic...)
	return binary.LittleEndian.AppendUint16(b, version)
}

// ParseHello validates a Hello payload and returns the peer's version.
func ParseHello(p []byte) (uint16, error) {
	if len(p) != len(Magic)+2 {
		return 0, ErrShortBuffer
	}
	if string(p[:len(Magic)]) != Magic {
		return 0, ErrBadMagic
	}
	return binary.LittleEndian.Uint16(p[len(Magic):]), nil
}

// CodeOf maps a result status to the service's stable machine-readable
// error code — the same strings the HTTP layer puts in ErrorResponse —
// so results classify identically across transports. StatusOK maps to
// the empty string.
func CodeOf(status uint8) string {
	switch status {
	case StatusOK:
		return ""
	case StatusDuplicateJob:
		return "duplicate_job"
	case StatusUnknownJob:
		return "unknown_job"
	case StatusBadDemand:
		return "bad_demand"
	case StatusTimeRegression:
		return "time_regression"
	case StatusPolicyMisplace:
		return "policy_misplace"
	case StatusShuttingDown:
		return "shutting_down"
	default:
		return "internal"
	}
}

// HTTPStatusOf maps a result status to the HTTP status the JSON
// transport would answer with, keeping error accounting comparable
// across transports.
func HTTPStatusOf(status uint8) int {
	switch status {
	case StatusOK:
		return 200
	case StatusDuplicateJob:
		return 409
	case StatusUnknownJob:
		return 404
	case StatusBadDemand, StatusTimeRegression:
		return 422
	case StatusShuttingDown:
		return 503
	default:
		return 500
	}
}

// OpError is a non-OK result surfaced as an error. Instances are
// shared singletons (one per status), so the error path allocates
// nothing.
type OpError struct {
	Status uint8
}

func (e *OpError) Error() string {
	return fmt.Sprintf("wire: op rejected: %s (status %d)", CodeOf(e.Status), e.Status)
}

// opErrors holds the singleton per-status errors ErrorOf hands out.
var opErrors = [...]*OpError{
	{StatusOK}, {StatusDuplicateJob}, {StatusUnknownJob}, {StatusBadDemand},
	{StatusTimeRegression}, {StatusPolicyMisplace}, {StatusShuttingDown}, {StatusInternal},
}

// ErrorOf returns the shared error for a non-OK status (nil for OK).
func ErrorOf(status uint8) error {
	if status == StatusOK {
		return nil
	}
	if int(status) < len(opErrors) {
		return opErrors[status]
	}
	return opErrors[StatusInternal]
}

package wire

import (
	"math"
	"reflect"
	"testing"
)

// opCases spans the op shapes: scalar/vector, with/without explicit
// time, arrive/depart, plus edge values (negative IDs, NaN-free
// extremes — NaN demands are the service's to reject, the codec moves
// bits faithfully).
func opCases() []Op {
	return []Op{
		{Kind: OpArrive, ID: 1, Size: 0.5},
		{Kind: OpArrive, ID: -9_000_000_000, Size: math.MaxFloat64},
		{Kind: OpArrive, ID: 42, Size: 0.25, HasTime: true, Time: 1234.5},
		{Kind: OpArrive, ID: 7, Size: 0, Sizes: []float64{0.1, 0.2, 0.3, 0.4}},
		{Kind: OpArrive, ID: 8, Size: 0.9, Sizes: []float64{0.5}, HasTime: true, Time: 0.001},
		{Kind: OpDepart, ID: 99},
		{Kind: OpDepart, ID: 3, HasTime: true, Time: 17},
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, want := range opCases() {
		buf := AppendOp(nil, &want)
		var got Op
		n, err := DecodeOp(buf, &got)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %+v consumed %d of %d bytes", want, n, len(buf))
		}
		// Decode normalizes Sizes to the empty slice; compare contents.
		if got.Kind != want.Kind || got.ID != want.ID || got.Size != want.Size ||
			got.HasTime != want.HasTime || got.Time != want.Time {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if len(got.Sizes) != len(want.Sizes) {
			t.Fatalf("round trip sizes: got %v, want %v", got.Sizes, want.Sizes)
		}
		for i := range want.Sizes {
			if got.Sizes[i] != want.Sizes[i] {
				t.Fatalf("round trip sizes: got %v, want %v", got.Sizes, want.Sizes)
			}
		}
	}
}

func TestOpDecodeReusesSizes(t *testing.T) {
	src := Op{Kind: OpArrive, ID: 5, Sizes: []float64{1, 2, 3}}
	buf := AppendOp(nil, &src)
	op := Op{Sizes: make([]float64, 0, 8)}
	backing := op.Sizes[:cap(op.Sizes)]
	if _, err := DecodeOp(buf, &op); err != nil {
		t.Fatal(err)
	}
	if &backing[0] != &op.Sizes[0] {
		t.Fatal("decode reallocated the sizes slice despite sufficient capacity")
	}
}

func TestResultRoundTrip(t *testing.T) {
	for _, want := range []Result{
		{Status: StatusOK, Flag: true, Server: 0, Time: 0},
		{Status: StatusOK, Flag: false, Server: 1 << 20, Time: 99.25},
		{Status: StatusUnknownJob, Server: -1},
		{Status: StatusShuttingDown, Time: math.Inf(1)},
	} {
		buf := AppendResult(nil, &want)
		if len(buf) != resultLen {
			t.Fatalf("encoded result is %d bytes, want %d", len(buf), resultLen)
		}
		var got Result
		n, err := DecodeResult(buf, &got)
		if err != nil || n != resultLen {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeOpTruncation(t *testing.T) {
	for _, op := range opCases() {
		full := AppendOp(nil, &op)
		for cut := 0; cut < len(full); cut++ {
			var dst Op
			if _, err := DecodeOp(full[:cut], &dst); err == nil {
				t.Fatalf("decode of %d/%d bytes of %+v succeeded", cut, len(full), op)
			}
		}
	}
}

func TestDecodeOpRejectsBadInput(t *testing.T) {
	var dst Op
	if _, err := DecodeOp([]byte{7, 0, 0, 0, 0, 0, 0, 0, 0, 0}, &dst); err != ErrBadKind {
		t.Fatalf("bad kind: %v", err)
	}
	// Vector arrive claiming a dimensionality past MaxDim.
	buf := []byte{OpArrive, flagVector}
	buf = append(buf, make([]byte, 16)...) // id + size
	buf = append(buf, 0xFF, 0xFF)          // dim = 65535
	if _, err := DecodeOp(buf, &dst); err != ErrBadDim {
		t.Fatalf("oversized dim: %v", err)
	}
	buf[len(buf)-2], buf[len(buf)-1] = 0, 0 // dim = 0
	if _, err := DecodeOp(buf, &dst); err != ErrBadDim {
		t.Fatalf("zero dim: %v", err)
	}
	// Undefined flag bits must be rejected, not silently dropped —
	// otherwise decode(encode(x)) is lossy (the fuzzer found this).
	bad := append([]byte{OpDepart, 0x30}, make([]byte, 8)...)
	if _, err := DecodeOp(bad, &dst); err != ErrBadFlags {
		t.Fatalf("undefined flags: %v", err)
	}
	// flagVector is arrive-only; a depart carrying it is malformed.
	vecDepart := append([]byte{OpDepart, flagVector}, make([]byte, 8)...)
	if _, err := DecodeOp(vecDepart, &dst); err != ErrBadFlags {
		t.Fatalf("vector depart: %v", err)
	}
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	payload := []byte("hello, shard")
	frame := AppendFrame(nil, FrameBatch, payload)
	typ, n, err := ParseFrameHeader(frame)
	if err != nil || typ != FrameBatch || n != len(payload) {
		t.Fatalf("typ=%d n=%d err=%v", typ, n, err)
	}
	if string(frame[FrameHeaderLen:]) != string(payload) {
		t.Fatal("payload corrupted")
	}
	// Begin/End produce the identical frame.
	b, off := BeginFrame(nil, FrameBatch)
	b = append(b, payload...)
	b = EndFrame(b, off)
	if !reflect.DeepEqual(b, frame) {
		t.Fatalf("BeginFrame/EndFrame = %x, want %x", b, frame)
	}
	// A hostile length is refused before any allocation.
	oversize := AppendFrame(nil, FrameBatch, nil)
	oversize[1], oversize[2], oversize[3], oversize[4] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ParseFrameHeader(oversize); err != ErrFrameSize {
		t.Fatalf("oversized frame length: %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	p := AppendHello(nil, Version)
	v, err := ParseHello(p)
	if err != nil || v != Version {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if _, err := ParseHello([]byte("XXXX\x01\x00")); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ParseHello([]byte("DBP")); err != ErrShortBuffer {
		t.Fatalf("short hello: %v", err)
	}
}

func TestStatusMappingsAreTotal(t *testing.T) {
	codes := map[string]bool{}
	for s := uint8(0); s < 8; s++ {
		code := CodeOf(s)
		if s == StatusOK {
			if code != "" {
				t.Fatalf("StatusOK code = %q", code)
			}
			if ErrorOf(s) != nil {
				t.Fatal("ErrorOf(StatusOK) != nil")
			}
			continue
		}
		if code == "" {
			t.Fatalf("status %d has no code", s)
		}
		if codes[code] {
			t.Fatalf("code %q assigned to two statuses", code)
		}
		codes[code] = true
		err := ErrorOf(s)
		if err == nil {
			t.Fatalf("ErrorOf(%d) = nil", s)
		}
		if err != ErrorOf(s) {
			t.Fatalf("ErrorOf(%d) is not a singleton", s)
		}
		if HTTPStatusOf(s) < 400 {
			t.Fatalf("HTTPStatusOf(%d) = %d, not an error status", s, HTTPStatusOf(s))
		}
	}
	// Out-of-range statuses degrade to internal, never panic.
	if CodeOf(200) != "internal" || ErrorOf(200) == nil {
		t.Fatal("unknown status must map to internal")
	}
}

// TestCodecZeroAlloc is the zero-allocation proof for the hot path:
// encoding and decoding scalar and vector ops and results into reused
// buffers must not allocate. (Skipped under -race, which disables the
// inlining the guarantee rides on; the companion benchmarks report
// allocs/op in every build.)
func TestCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is unreliable under -race")
	}
	scalar := Op{Kind: OpArrive, ID: 123456, Size: 0.375, HasTime: true, Time: 42.5}
	vector := Op{Kind: OpArrive, ID: 7, Sizes: []float64{0.1, 0.2, 0.3, 0.4}}
	res := Result{Status: StatusOK, Flag: true, Server: 17, Time: 42.5}
	buf := make([]byte, 0, 256)
	dst := Op{Sizes: make([]float64, 0, 8)}
	var dr Result

	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendOp(buf[:0], &scalar)
		buf = AppendOp(buf, &vector)
		buf = AppendResult(buf, &res)
	}); n != 0 {
		t.Fatalf("encode allocates %v allocs/op, want 0", n)
	}
	enc := AppendOp(nil, &scalar)
	encVec := AppendOp(nil, &vector)
	encRes := AppendResult(nil, &res)
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := DecodeOp(enc, &dst); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeOp(encVec, &dst); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeResult(encRes, &dr); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkWireEncode and BenchmarkWireDecode are the codec's
// perf-and-allocs ledger: `go test -bench Wire -benchmem
// ./internal/wire` must report 0 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	op := Op{Kind: OpArrive, ID: 123456, Size: 0.375, HasTime: true, Time: 42.5}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendOp(buf[:0], &op)
	}
	if len(buf) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkWireEncodeVector(b *testing.B) {
	op := Op{Kind: OpArrive, ID: 123456, Sizes: []float64{0.1, 0.2, 0.3, 0.4}}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendOp(buf[:0], &op)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	op := Op{Kind: OpArrive, ID: 123456, Size: 0.375, HasTime: true, Time: 42.5}
	enc := AppendOp(nil, &op)
	var dst Op
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeOp(enc, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeVector(b *testing.B) {
	op := Op{Kind: OpArrive, ID: 123456, Sizes: []float64{0.1, 0.2, 0.3, 0.4}}
	enc := AppendOp(nil, &op)
	dst := Op{Sizes: make([]float64, 0, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeOp(enc, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

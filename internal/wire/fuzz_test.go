package wire

import (
	"bytes"
	"testing"

	"dbp/internal/serve"
)

// FuzzDecodeOp throws arbitrary bytes at the op decoder: it must never
// panic, never report consuming more bytes than it was given, and
// anything it accepts must re-encode to the exact bytes it consumed
// (the codec is canonical: one byte string per op).
func FuzzDecodeOp(f *testing.F) {
	for _, op := range opCases() {
		f.Add(AppendOp(nil, &op))
	}
	f.Add([]byte{})
	f.Add([]byte{OpArrive, flagVector})
	f.Add([]byte{OpDepart, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var op Op
		n, err := DecodeOp(data, &op)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		re := AppendOp(nil, &op)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: got %x, consumed %x", re, data[:n])
		}
	})
}

// FuzzDecodeResult is the result-side mirror of FuzzDecodeOp.
func FuzzDecodeResult(f *testing.F) {
	f.Add(AppendResult(nil, &Result{Status: StatusOK, Flag: true, Server: 3, Time: 1.5}))
	f.Add([]byte{})
	f.Add(make([]byte, resultLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Result
		n, err := DecodeResult(data, &r)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		re := AppendResult(nil, &r)
		// Flag is the one non-canonical byte (any nonzero encodes back
		// as 1); compare around it.
		if re[0] != data[0] || !bytes.Equal(re[2:n], data[2:n]) {
			t.Fatalf("re-encode mismatch: got %x, consumed %x", re, data[:n])
		}
	})
}

// FuzzDecodeBatch drives the server's batch-payload decoder (count +
// ops, the exact bytes a connection delivers) with arbitrary payloads:
// no panics, no over-reads, and accepted batches must contain exactly
// the advertised op count.
func FuzzDecodeBatch(f *testing.F) {
	good := appendU32(nil, 2)
	good = AppendOp(good, &Op{Kind: OpArrive, ID: 1, Size: 0.5})
	good = AppendOp(good, &Op{Kind: OpDepart, ID: 1})
	f.Add(good)
	f.Add([]byte{})
	f.Add(appendU32(nil, 0))
	f.Add(appendU32(nil, 1<<31))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []serve.BatchOp
		n, err := decodeBatch(data, &ops)
		if err != nil {
			return
		}
		if n == 0 || n > MaxBatchOps {
			t.Fatalf("accepted batch of %d ops", n)
		}
		if len(data) < 4 || int(u32(data)) != n {
			t.Fatalf("decoded %d ops but payload advertised %d", n, u32(data))
		}
	})
}

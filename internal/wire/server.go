package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/serve"
)

// handshakeTimeout bounds how long a fresh connection may take to
// present its Hello; a peer that is not speaking the protocol is cut
// loose instead of holding a goroutine.
const handshakeTimeout = 5 * time.Second

// connIOSize sizes the per-connection buffered reader/writer: large
// enough that a full default batch (64 scalar ops, ~1.2 KiB) plus the
// pipeline window's worth of frames moves in few syscalls.
const connIOSize = 64 << 10

// goawayGrace bounds how long a draining handler waits for the peer to
// close after the GoAway frame; a peer that never reacts cannot hold
// Server.Close hostage past this.
const goawayGrace = 2 * time.Second

// Server serves the wire protocol over a TCP listener, applying batch
// frames against a shared serve.Dispatcher — the same dispatcher the
// HTTP front end mounts, so both transports hit identical shards,
// metrics, and journals. One goroutine per connection reads frames,
// applies them, and writes the results back in order.
type Server struct {
	d *serve.Dispatcher

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*srvConn]struct{}
	closed bool

	handlers sync.WaitGroup
}

// srvConn is one accepted connection's server-side state.
type srvConn struct {
	nc    net.Conn
	drain atomic.Bool // Close has asked this connection to go away
}

// NewServer builds a wire server over the dispatcher. Serve must be
// called with a listener to start accepting.
func NewServer(d *serve.Dispatcher) *Server {
	return &Server{d: d, conns: make(map[*srvConn]struct{})}
}

// Serve accepts connections on ln until Close; it returns nil after a
// Close-initiated shutdown and the accept error otherwise. One call
// per server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &srvConn{nc: nc}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Close drains the wire front end: the listener stops accepting, every
// connection finishes the batch it is applying (its results are
// written and flushed), receives a GoAway frame, and is closed. Close
// returns once every handler has exited; the dispatcher itself is not
// closed — that is the caller's next step, so the shared HTTP front
// end can drain on its own schedule.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.handlers.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain.Store(true)
		// Wake a handler blocked reading its next frame; one mid-batch
		// notices the flag after answering the batch it holds.
		c.nc.SetReadDeadline(time.Now())
	}
	s.handlers.Wait()
	return nil
}

// forget drops a finished connection from the registry.
func (s *Server) forget(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handle runs one connection: handshake, then a read→apply→write loop.
// Responses go out in frame order, which is the protocol's correlation
// rule. Per-connection buffers (ops, results, payload, write buffer)
// are reused across batches, so a steady-state scalar batch allocates
// nothing on this path beyond the dispatcher's own pooled envelopes.
func (s *Server) handle(c *srvConn) {
	defer s.handlers.Done()
	defer s.forget(c)
	defer c.nc.Close()

	br := bufio.NewReaderSize(c.nc, connIOSize)
	bw := bufio.NewWriterSize(c.nc, connIOSize)
	if err := s.handshake(c.nc, br, bw); err != nil {
		return
	}

	var (
		payload []byte // frame payload, reused
		out     []byte // outgoing frame build buffer, reused
		ops     []serve.BatchOp
		results []serve.BatchResult
	)
	goaway := func() {
		out, _ = BeginFrame(out[:0], FrameGoAway)
		out = EndFrame(out, 0)
		bw.Write(out)
		bw.Flush()
		// The frame must actually reach the peer: a pipelining client
		// may still have batches in flight, and closing the socket while
		// unread data sits in our receive buffer turns the close into a
		// RST, which discards the peer's receive buffer — GoAway
		// included. Half-close the write side and swallow the peer's
		// in-flight frames until it reacts to the GoAway and closes
		// (bounded by goawayGrace).
		if tc, ok := c.nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		c.nc.SetReadDeadline(time.Now().Add(goawayGrace))
		io.Copy(io.Discard, br)
	}
	for {
		if c.drain.Load() {
			goaway()
			return
		}
		typ, p, err := readFrame(br, &payload)
		if err != nil {
			// A deadline-abort from Close still owes the peer its
			// GoAway; anything else is a dead or misbehaving peer.
			if c.drain.Load() && errors.Is(err, os.ErrDeadlineExceeded) {
				c.nc.SetReadDeadline(time.Time{})
				goaway()
			}
			return
		}
		switch typ {
		case FrameBatch:
			n, err := decodeBatch(p, &ops)
			if err != nil {
				writeErrorFrame(bw, err)
				return
			}
			if cap(results) < n {
				results = make([]serve.BatchResult, n)
			}
			results = results[:n]
			s.d.ApplyBatch(ops[:n], results)
			out, _ = BeginFrame(out[:0], FrameResults)
			out = appendU32(out, uint32(n))
			var r Result
			for i := range results[:n] {
				res := &results[i]
				r = Result{
					Status: statusOfErr(res.Err),
					Flag:   res.Flag,
					Server: int32(res.Server),
					Time:   res.Time,
				}
				out = AppendResult(out, &r)
			}
			out = EndFrame(out, 0)
			if _, err := bw.Write(out); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case FrameStats:
			buf, err := json.Marshal(s.d.Stats())
			if err != nil {
				writeErrorFrame(bw, err)
				return
			}
			out = AppendFrame(out[:0], FrameStatsReply, buf)
			bw.Write(out)
			if err := bw.Flush(); err != nil {
				return
			}
		case FramePing:
			out = AppendFrame(out[:0], FramePong, p)
			bw.Write(out)
			if err := bw.Flush(); err != nil {
				return
			}
		case FrameGoAway:
			// The client is done with this connection.
			return
		default:
			writeErrorFrame(bw, fmt.Errorf("wire: unexpected frame type %d", typ))
			return
		}
	}
}

// handshake validates the client Hello and answers with the server's
// version, under a deadline so garbage connections cannot linger.
func (s *Server) handshake(nc net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	defer nc.SetDeadline(time.Time{})
	var payload []byte
	typ, p, err := readFrame(br, &payload)
	if err != nil {
		return err
	}
	if typ != FrameHello {
		writeErrorFrame(bw, fmt.Errorf("wire: expected Hello, got frame type %d", typ))
		return ErrBadMagic
	}
	v, err := ParseHello(p)
	if err != nil {
		writeErrorFrame(bw, err)
		return err
	}
	if v != Version {
		writeErrorFrame(bw, fmt.Errorf("%w: client v%d, server v%d", ErrVersion, v, Version))
		return ErrVersion
	}
	hello := AppendFrame(nil, FrameHello, AppendHello(nil, Version))
	if _, err := bw.Write(hello); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame reads one frame, growing *payload as needed and reusing it
// across calls; the returned slice aliases *payload and is valid until
// the next call.
func readFrame(br *bufio.Reader, payload *[]byte) (uint8, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ, n, err := ParseFrameHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if cap(*payload) < n {
		*payload = make([]byte, n)
	}
	p := (*payload)[:n]
	if _, err := io.ReadFull(br, p); err != nil {
		return 0, nil, err
	}
	return typ, p, nil
}

// decodeBatch decodes a Batch frame payload into *ops, reusing the
// slice and each element's demand-vector capacity. It returns the op
// count.
func decodeBatch(p []byte, ops *[]serve.BatchOp) (int, error) {
	if len(p) < 4 {
		return 0, ErrShortBuffer
	}
	count := int(u32(p))
	p = p[4:]
	if count == 0 || count > MaxBatchOps {
		return 0, ErrBatchSize
	}
	if cap(*ops) < count {
		grown := make([]serve.BatchOp, count)
		copy(grown, (*ops)[:cap(*ops)])
		*ops = grown
	}
	*ops = (*ops)[:count]
	var op Op
	for i := 0; i < count; i++ {
		dst := &(*ops)[i]
		// Decode reusing this element's vector capacity.
		op.Sizes = dst.Sizes
		n, err := DecodeOp(p, &op)
		if err != nil {
			return 0, err
		}
		p = p[n:]
		dst.Depart = op.Kind == OpDepart
		dst.ID = item.ID(op.ID)
		dst.Size = op.Size
		dst.Sizes = op.Sizes
		if len(op.Sizes) == 0 {
			dst.Sizes = nil
		}
		dst.HasTime = op.HasTime
		dst.Time = op.Time
	}
	if len(p) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after batch ops", len(p))
	}
	return count, nil
}

// statusOfErr maps a dispatcher error to its wire status, the inverse
// of ErrorOf on the client side.
func statusOfErr(err error) uint8 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, packing.ErrDuplicateJob):
		return StatusDuplicateJob
	case errors.Is(err, packing.ErrUnknownJob):
		return StatusUnknownJob
	case errors.Is(err, packing.ErrBadDemand):
		return StatusBadDemand
	case errors.Is(err, packing.ErrTimeRegression):
		return StatusTimeRegression
	case errors.Is(err, packing.ErrPolicyMisplace):
		return StatusPolicyMisplace
	case errors.Is(err, serve.ErrClosed):
		return StatusShuttingDown
	default:
		return StatusInternal
	}
}

// writeErrorFrame sends a connection-fatal protocol diagnostic; the
// caller closes the connection right after.
func writeErrorFrame(bw *bufio.Writer, err error) {
	bw.Write(AppendFrame(nil, FrameError, []byte(err.Error())))
	bw.Flush()
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

package wire_test

import (
	"errors"
	"net"
	"testing"

	"dbp/internal/item"
	"dbp/internal/serve"
	"dbp/internal/wire"
)

// startServer brings up a dispatcher and a wire server on a loopback
// listener, returning the dial address. The dispatcher clock is frozen
// at 0 so explicit-time requests are golden-comparable.
func startServer(t *testing.T, cfg serve.Config) (*serve.Dispatcher, *wire.Server, string) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = func() float64 { return 0 }
	}
	d, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := wire.NewServer(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		d.Close()
	})
	return d, s, ln.Addr().String()
}

func dial(t *testing.T, addr string, opts wire.Options) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func tp(v float64) *float64 { return &v }

// TestWireGolden mirrors the HTTP golden suite over the binary
// transport: placements, departure flags, and every error class come
// back with the same stable codes the JSON API uses.
func TestWireGolden(t *testing.T) {
	_, _, addr := startServer(t, serve.Config{Algorithm: "firstfit", Shards: 1})
	c := dial(t, addr, wire.Options{Conns: 1})

	// Two arrivals that cannot share a server, then a small job that
	// first-fits onto server 0.
	res, err := c.Arrive(1, 0.6, nil, tp(0))
	if err != nil || res.Server != 0 || !res.Flag || res.Time != 0 {
		t.Fatalf("arrive 1: res=%+v err=%v", res, err)
	}
	res, err = c.Arrive(2, 0.6, nil, tp(1))
	if err != nil || res.Server != 1 || !res.Flag {
		t.Fatalf("arrive 2: res=%+v err=%v", res, err)
	}
	res, err = c.Arrive(3, 0.3, nil, tp(1))
	if err != nil || res.Server != 0 || res.Flag {
		t.Fatalf("arrive 3: res=%+v err=%v", res, err)
	}

	for _, tc := range []struct {
		name   string
		do     func() error
		status uint8
		code   string
	}{
		{"duplicate arrive", func() error { _, err := c.Arrive(1, 0.2, nil, tp(2)); return err }, wire.StatusDuplicateJob, "duplicate_job"},
		{"unknown depart", func() error { _, err := c.Depart(42, tp(2)); return err }, wire.StatusUnknownJob, "unknown_job"},
		{"oversized demand", func() error { _, err := c.Arrive(9, 1.5, nil, tp(2)); return err }, wire.StatusBadDemand, "bad_demand"},
		{"time regression", func() error { _, err := c.Arrive(9, 0.2, nil, tp(0.5)); return err }, wire.StatusTimeRegression, "time_regression"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.do()
			var oe *wire.OpError
			if !errors.As(err, &oe) {
				t.Fatalf("err = %v, want *OpError", err)
			}
			if oe.Status != tc.status || wire.CodeOf(oe.Status) != tc.code {
				t.Fatalf("status %d (%s), want %d (%s)", oe.Status, wire.CodeOf(oe.Status), tc.status, tc.code)
			}
		})
	}

	// Departing job 3 leaves server 0 occupied by job 1: not closed.
	res, err = c.Depart(3, tp(3))
	if err != nil || res.Server != 0 || res.Flag {
		t.Fatalf("depart 3: res=%+v err=%v", res, err)
	}
	// Departing job 2 empties server 1: closed.
	res, err = c.Depart(2, tp(3))
	if err != nil || res.Server != 1 || !res.Flag {
		t.Fatalf("depart 2: res=%+v err=%v", res, err)
	}
}

// TestWireVectorDemand round-trips d-dimensional jobs end to end.
func TestWireVectorDemand(t *testing.T) {
	d, _, addr := startServer(t, serve.Config{Algorithm: "firstfit", Shards: 1, Dim: 2, RecordEvents: true})
	c := dial(t, addr, wire.Options{Conns: 1})

	if _, err := c.Arrive(1, 0.7, []float64{0.5, 0.7}, tp(0)); err != nil {
		t.Fatalf("vector arrive: %v", err)
	}
	// Doesn't fit dimension 2 on server 0 → opens server 1.
	res, err := c.Arrive(2, 0.5, []float64{0.1, 0.5}, tp(1))
	if err != nil || res.Server != 1 || !res.Flag {
		t.Fatalf("vector arrive 2: res=%+v err=%v", res, err)
	}
	// Wrong dimensionality is refused by the service, not the codec.
	_, err = c.Arrive(3, 0.5, nil, tp(2))
	var oe *wire.OpError
	if !errors.As(err, &oe) || oe.Status != wire.StatusBadDemand {
		t.Fatalf("scalar into dim-2 service: %v", err)
	}
	// The journaled demand vector must match what went over the wire.
	evs := d.ShardEvents(0)
	if len(evs) != 2 || len(evs[0].Sizes) != 2 || evs[0].Sizes[0] != 0.5 || evs[0].Sizes[1] != 0.7 {
		t.Fatalf("journal = %+v", evs)
	}
}

// TestWireStatsAndPing exercises the control frames and confirms the
// dispatcher's batch counters advance — i.e. the transport really does
// feed the batch path.
func TestWireStatsAndPing(t *testing.T) {
	_, _, addr := startServer(t, serve.Config{Algorithm: "firstfit", Shards: 2})
	c := dial(t, addr, wire.Options{Conns: 1})

	if err := c.Ping([]byte("are you there")); err != nil {
		t.Fatalf("ping: %v", err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := c.Arrive(item.ID(i), 0.01, nil, tp(float64(i))); err != nil {
			t.Fatalf("arrive %d: %v", i, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Arrivals != n {
		t.Fatalf("stats arrivals = %d, want %d", st.Arrivals, n)
	}
	if st.Batches == 0 || st.BatchOps != n {
		t.Fatalf("batches=%d batch_ops=%d, want >0 and %d", st.Batches, st.BatchOps, n)
	}
}

// TestWirePipelinedConcurrency hammers one small pool from many
// goroutines: every op resolves exactly once with a sensible outcome,
// and the server sees every accepted op.
func TestWirePipelinedConcurrency(t *testing.T) {
	d, _, addr := startServer(t, serve.Config{Shards: 4, RecordEvents: true})
	c := dial(t, addr, wire.Options{Conns: 2, MaxBatch: 32, Window: 8})

	const clients = 8
	const perClient = 200
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			for i := 0; i < perClient; i++ {
				id := item.ID(g*perClient + i + 1)
				if _, err := c.Arrive(id, 0.25, nil, nil); err != nil {
					errc <- err
					return
				}
				if _, err := c.Depart(id, nil); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Arrivals != clients*perClient || st.Departures != clients*perClient {
		t.Fatalf("server saw %d/%d ops, want %d/%d",
			st.Arrivals, st.Departures, clients*perClient, clients*perClient)
	}
	if st.Batches == 0 {
		t.Fatal("no batch frames were applied")
	}
	var journaled int
	for i := 0; i < d.NumShards(); i++ {
		journaled += len(d.ShardEvents(i))
	}
	if journaled != 2*clients*perClient {
		t.Fatalf("journaled %d events, want %d", journaled, 2*clients*perClient)
	}
}

// TestWireHandshakeRejectsStrangers: a peer with the wrong magic or
// version is refused at the handshake.
func TestWireHandshakeRejects(t *testing.T) {
	_, _, addr := startServer(t, serve.Config{})
	// Wrong magic.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write(wire.AppendFrame(nil, wire.FrameHello, []byte("HTTP/1.1\r\n")))
	buf := make([]byte, 256)
	n, _ := nc.Read(buf)
	if n == 0 || buf[0] != wire.FrameError {
		t.Fatalf("expected FrameError for bad magic, got %v", buf[:n])
	}
	// Wrong version.
	if _, err := wire.Dial(addr, wire.Options{Conns: 1}); err != nil {
		t.Fatalf("good handshake refused: %v", err)
	}
}

package wire_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
	"dbp/internal/wire"
)

// TestWireDrainUnderLoad is the wire-transport mirror of the serve
// package's TestDrainUnderLoad: concurrent batched arrivals race
// Server.Close, and the drain must (a) resolve every attempted op
// exactly once — accepted, refused by the service, or failed by the
// announced goaway — with no hang, (b) deliver the goaway to in-flight
// work rather than silently dropping the connection, and (c) keep the
// triple-entry books balanced: client-observed accepts == metrics
// arrivals == journal rows. Ops the server applied are always answered
// before the goaway (the handler finishes and flushes the batch it
// holds), so "accepted" is well defined even mid-drain. Run under
// -race via `make check`.
func TestWireDrainUnderLoad(t *testing.T) {
	d, err := serve.New(serve.Config{Shards: 4, RecordEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	_, s, addr := startWireServer(t, d)

	c, err := wire.Dial(addr, wire.Options{Conns: 2, MaxBatch: 32, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const clients = 8
	const perClient = 600
	const closeAfter = 500 // accepted ops before Close fires, mid-barrage
	var accepted, rejectedDrain, rejectedOther atomic.Uint64
	var sampleOther atomic.Pointer[error]
	var closeOnce sync.Once
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := item.ID(g*perClient + i + 1)
				_, err := c.Arrive(id, 0.01, nil, nil)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, wire.ErrGoAway),
					errors.Is(err, wire.ErrClientClosed),
					errors.Is(err, wire.ErrorOf(wire.StatusShuttingDown)):
					rejectedDrain.Add(1)
				default:
					rejectedOther.Add(1)
					sampleOther.CompareAndSwap(nil, &err)
				}
				// Once enough ops landed, one client starts the wire
				// drain concurrently with everyone else's remaining
				// arrivals; their queued and future ops race the goaway.
				if accepted.Load() >= closeAfter {
					closeOnce.Do(func() { s.Close() })
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("drain hung: some op never resolved")
	}
	closeOnce.Do(func() { s.Close() })

	total := accepted.Load() + rejectedDrain.Load() + rejectedOther.Load()
	if total != clients*perClient {
		t.Fatalf("outcomes %d != attempts %d (an op was lost or double-resolved)", total, clients*perClient)
	}
	if rejectedOther.Load() != 0 {
		t.Fatalf("%d rejections outside the drain vocabulary, e.g. %v", rejectedOther.Load(), *sampleOther.Load())
	}
	if rejectedDrain.Load() == 0 {
		t.Fatal("no op raced the drain; the close trigger is broken")
	}

	// Server.Close left the dispatcher open (the HTTP front end drains
	// separately); close it now and check the books.
	final := d.Close()
	if final.Arrivals != accepted.Load() {
		t.Errorf("metrics arrivals %d != client-accepted %d", final.Arrivals, accepted.Load())
	}
	var journaled uint64
	for i := 0; i < d.NumShards(); i++ {
		for _, ev := range d.ShardEvents(i) {
			if ev.Kind == "arrive" {
				journaled++
			}
		}
	}
	if journaled != accepted.Load() {
		t.Errorf("journaled arrivals %d != client-accepted %d", journaled, accepted.Load())
	}

	// The drained listener refuses new wire sessions promptly.
	if _, err := wire.Dial(addr, wire.Options{Conns: 1, DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("dial succeeded after Server.Close")
	}
}

// startWireServer starts a wire server over an existing dispatcher; the
// caller owns both lifetimes (this test exercises Close paths itself).
func startWireServer(t *testing.T, d *serve.Dispatcher) (*serve.Dispatcher, *wire.Server, string) {
	t.Helper()
	s := wire.NewServer(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return d, s, ln.Addr().String()
}

package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbp/internal/item"
	"dbp/internal/serve"
)

// Errors the client surfaces for transport-level conditions.
var (
	// ErrGoAway means the server announced a drain: ops already
	// answered are fine, everything still queued or in flight on that
	// connection fails with this error.
	ErrGoAway = errors.New("wire: server sent goaway (draining)")
	// ErrClientClosed means Close was called on this client.
	ErrClientClosed = errors.New("wire: client is closed")
)

// Options tunes a Client. The zero value gets sensible defaults.
type Options struct {
	// Conns is the size of the persistent-connection pool; calls are
	// spread round-robin. Default 2.
	Conns int
	// Window caps the batches in flight (sent, not yet answered) per
	// connection — the pipelining depth. A full window blocks the
	// writer, which backpressures callers. Default 32.
	Window int
	// MaxBatch caps the ops coalesced into one batch frame. Default 64.
	MaxBatch int
	// Flush bounds how long the writer waits for more ops to fill a
	// batch once it holds at least one. Zero means "send what is
	// queued right now" — under load, batches fill on their own; at low
	// rates every op departs immediately. Nonzero trades that much
	// latency for fuller batches.
	Flush time.Duration
	// DialTimeout bounds connect + handshake. Default 5s.
	DialTimeout time.Duration
}

func (o *Options) setDefaults() {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// call is one op's journey through a connection: filled by the caller,
// encoded by the writer, completed by the reader (or failed by
// whichever side hit the error). done has capacity 1, so completion
// never blocks; calls are pooled.
type call struct {
	op   Op
	res  Result
	err  error
	done chan struct{}
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

func (c *call) complete(err error) {
	c.err = err
	c.done <- struct{}{}
}

// Client is a pool of persistent wire connections with pipelining:
// each connection has a writer goroutine that coalesces queued ops
// into batch frames (up to MaxBatch, or whatever is queued when it
// gets to run) and a reader goroutine that matches Results frames to
// their batches positionally. Arrive/Depart are safe for concurrent
// use from any number of goroutines and block until their op's result
// arrives.
type Client struct {
	addr string
	opts Options

	conns []*clientConn
	next  atomic.Uint64

	closeOnce sync.Once
	closed    atomic.Bool
}

// clientConn is one persistent connection.
type clientConn struct {
	nc net.Conn

	// sendq feeds the writer; closing it (under mu's write lock) is
	// how Close retires the connection without racing senders.
	mu     sync.RWMutex
	sendqC bool // sendq closed
	sendq  chan *call

	// inflight carries each written batch's calls to the reader, in
	// write order; its capacity is the pipelining window.
	inflight chan []*call

	dead       atomic.Pointer[error] // first transport error; nil while healthy
	writerDone chan struct{}
}

// batchPool recycles the []*call slices that ride the inflight queue.
var batchPool = sync.Pool{New: func() any { s := make([]*call, 0, 256); return &s }}

// Dial connects the pool and performs the handshake on every
// connection; it fails fast if any connect or handshake fails.
func Dial(addr string, opts Options) (*Client, error) {
	opts.setDefaults()
	c := &Client{addr: addr, opts: opts}
	for i := 0; i < opts.Conns; i++ {
		cc, err := c.dialConn()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

func (c *Client) dialConn() (*clientConn, error) {
	nc, err := dialAndHandshake(c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		nc:         nc,
		sendq:      make(chan *call, 4*c.opts.MaxBatch),
		inflight:   make(chan []*call, c.opts.Window),
		writerDone: make(chan struct{}),
	}
	go cc.writer(&c.opts)
	go cc.reader()
	return cc, nil
}

// dialAndHandshake opens one raw connection and runs the Hello
// exchange; shared by the pool and the per-request control path
// (Stats/Ping).
func dialAndHandshake(addr string, timeout time.Duration) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // batching is ours, not Nagle's
	}
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(AppendFrame(nil, FrameHello, AppendHello(nil, Version))); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReader(nc)
	var payload []byte
	typ, p, err := readFrame(br, &payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if typ == FrameError {
		nc.Close()
		return nil, fmt.Errorf("wire: server refused handshake: %s", p)
	}
	if typ != FrameHello {
		nc.Close()
		return nil, fmt.Errorf("wire: expected Hello reply, got frame type %d", typ)
	}
	v, err := ParseHello(p)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if v != Version {
		nc.Close()
		return nil, fmt.Errorf("%w: server v%d, client v%d", ErrVersion, v, Version)
	}
	nc.SetDeadline(time.Time{})
	// The buffered reader may hold bytes past the handshake only if the
	// server pushed frames unprompted, which it never does before the
	// first request; hand the raw conn to the connection's own reader.
	if br.Buffered() != 0 {
		nc.Close()
		return nil, errors.New("wire: unexpected data after handshake")
	}
	return nc, nil
}

// deadErr returns the connection's terminal error, if any.
func (cc *clientConn) deadErr() error {
	if p := cc.dead.Load(); p != nil {
		return *p
	}
	return nil
}

// setDead records the first terminal error and forces both goroutines
// off the socket.
func (cc *clientConn) setDead(err error) {
	e := err
	if cc.dead.CompareAndSwap(nil, &e) {
		cc.nc.Close()
	}
}

// writer coalesces queued calls into batch frames. For each batch it
// first reserves a window slot (inflight <- calls) and only then
// writes, so the reader can never see a response for a batch it does
// not know about. It exits when sendq is closed and drained; on a dead
// connection it keeps consuming sendq, failing calls, so no caller is
// ever stranded.
func (cc *clientConn) writer(o *Options) {
	defer close(cc.writerDone)
	buf := make([]byte, 0, 64<<10)
	var timer *time.Timer
	for first := range cc.sendq {
		calls := (*batchPool.Get().(*[]*call))[:0]
		calls = append(calls, first)
		// Greedy coalesce: take everything already queued, up to the
		// batch cap.
	fill:
		for len(calls) < o.MaxBatch {
			select {
			case c, ok := <-cc.sendq:
				if !ok {
					break fill
				}
				calls = append(calls, c)
			default:
				break fill
			}
		}
		// Optional flush window: wait a bounded moment for stragglers.
		if o.Flush > 0 && len(calls) < o.MaxBatch {
			if timer == nil {
				timer = time.NewTimer(o.Flush)
			} else {
				timer.Reset(o.Flush)
			}
		wait:
			for len(calls) < o.MaxBatch {
				select {
				case c, ok := <-cc.sendq:
					if !ok {
						break wait
					}
					calls = append(calls, c)
				case <-timer.C:
					break wait
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if err := cc.deadErr(); err != nil {
			failBatch(calls, err)
			continue
		}
		buf, _ = BeginFrame(buf[:0], FrameBatch)
		buf = appendU32(buf, uint32(len(calls)))
		for _, c := range calls {
			buf = AppendOp(buf, &c.op)
		}
		buf = EndFrame(buf, 0)
		// Reserve the window slot before writing (order matters; see
		// above). If the connection died in between, the reader's
		// cleanup loop fails this batch.
		cc.inflight <- calls
		if _, err := cc.nc.Write(buf); err != nil {
			cc.setDead(err)
		}
	}
}

// reader completes batches in write order from Results frames. On any
// terminal condition (goaway, read error, peer close) it fails every
// in-flight batch, cooperating with the writer so each call is
// completed exactly once.
func (cc *clientConn) reader() {
	br := bufio.NewReaderSize(cc.nc, connIOSize)
	var payload []byte
	var res Result
	for {
		typ, p, err := readFrame(br, &payload)
		if err != nil {
			cc.setDead(err)
			break
		}
		switch typ {
		case FrameResults:
			if len(p) < 4 {
				cc.setDead(ErrShortBuffer)
				break
			}
			calls := <-cc.inflight
			n := int(u32(p))
			p = p[4:]
			if n != len(calls) {
				failBatch(calls, fmt.Errorf("wire: results count %d for batch of %d", n, len(calls)))
				cc.setDead(fmt.Errorf("wire: desynchronized results frame"))
				break
			}
			bad := false
			for _, c := range calls {
				m, err := DecodeResult(p, &res)
				if err != nil {
					c.complete(err)
					bad = true
					continue
				}
				p = p[m:]
				c.res = res
				c.complete(ErrorOf(res.Status))
			}
			putBatch(calls)
			if bad {
				cc.setDead(fmt.Errorf("wire: malformed results frame"))
			}
		case FrameGoAway:
			cc.setDead(ErrGoAway)
		case FrameError:
			cc.setDead(fmt.Errorf("wire: server error: %s", p))
		case FramePong:
			// Unsolicited on this path; ignore.
		default:
			cc.setDead(fmt.Errorf("wire: unexpected frame type %d", typ))
		}
		if cc.deadErr() != nil {
			break
		}
	}
	// Cleanup: fail everything in flight, including batches the writer
	// pushes while we are tearing down, until the writer has exited.
	err := cc.deadErr()
	for {
		select {
		case calls := <-cc.inflight:
			failBatch(calls, err)
		case <-cc.writerDone:
			for {
				select {
				case calls := <-cc.inflight:
					failBatch(calls, err)
				default:
					return
				}
			}
		}
	}
}

func failBatch(calls []*call, err error) {
	for _, c := range calls {
		c.complete(err)
	}
	putBatch(calls)
}

func putBatch(calls []*call) {
	clear(calls)
	calls = calls[:0]
	batchPool.Put(&calls)
}

// enqueue hands a call to the connection, failing fast if the
// connection is retired or dead.
func (cc *clientConn) enqueue(c *call) error {
	cc.mu.RLock()
	if cc.sendqC {
		cc.mu.RUnlock()
		return ErrClientClosed
	}
	if err := cc.deadErr(); err != nil {
		cc.mu.RUnlock()
		return err
	}
	cc.sendq <- c
	cc.mu.RUnlock()
	return nil
}

// retire closes the send queue (the writer drains it and exits) and
// the socket, then waits for the writer so every queued call has been
// resolved.
func (cc *clientConn) retire() {
	cc.mu.Lock()
	if !cc.sendqC {
		cc.sendqC = true
		close(cc.sendq)
	}
	cc.mu.Unlock()
	cc.setDead(ErrClientClosed)
	<-cc.writerDone
}

// do runs one op through the pool and blocks for its result.
func (c *Client) do(op *Op) (Result, error) {
	if c.closed.Load() {
		return Result{}, ErrClientClosed
	}
	cc := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	ca := callPool.Get().(*call)
	ca.op = *op
	if err := cc.enqueue(ca); err != nil {
		ca.op.Sizes = nil
		callPool.Put(ca)
		return Result{}, err
	}
	<-ca.done
	res, err := ca.res, ca.err
	ca.op.Sizes = nil
	ca.res = Result{}
	ca.err = nil
	callPool.Put(ca)
	return res, err
}

// Arrive places a job over the wire. A nil t means "now" on the
// server's service clock. The returned Result carries the server
// index, opened flag, and applied time on success; a non-OK status
// surfaces as an *OpError carrying the service's stable error code.
func (c *Client) Arrive(id item.ID, size float64, sizes []float64, t *float64) (Result, error) {
	op := Op{Kind: OpArrive, ID: int64(id), Size: size, Sizes: sizes}
	if t != nil {
		op.HasTime, op.Time = true, *t
	}
	// The call blocks until its result is in, so borrowing the
	// caller's sizes slice for encoding is safe.
	return c.do(&op)
}

// Depart reports a departure over the wire; see Arrive.
func (c *Client) Depart(id item.ID, t *float64) (Result, error) {
	op := Op{Kind: OpDepart, ID: int64(id)}
	if t != nil {
		op.HasTime, op.Time = true, *t
	}
	return c.do(&op)
}

// Stats fetches service statistics over a short-lived control
// connection, keeping the persistent pool's response ordering purely
// positional. It is called at phase boundaries, not on the hot path.
func (c *Client) Stats() (serve.Stats, error) {
	var s serve.Stats
	p, err := c.control(FrameStats, nil, FrameStatsReply)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(p, &s); err != nil {
		return s, fmt.Errorf("wire: stats payload: %w", err)
	}
	return s, nil
}

// Ping round-trips a payload through the server (echo), for liveness
// checks and tests.
func (c *Client) Ping(payload []byte) error {
	echo, err := c.control(FramePing, payload, FramePong)
	if err != nil {
		return err
	}
	if string(echo) != string(payload) {
		return fmt.Errorf("wire: ping echo mismatch")
	}
	return nil
}

// control runs one request/reply exchange on a fresh connection.
func (c *Client) control(reqType uint8, payload []byte, wantType uint8) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	nc, err := dialAndHandshake(c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := nc.Write(AppendFrame(nil, reqType, payload)); err != nil {
		return nil, err
	}
	br := bufio.NewReader(nc)
	var buf []byte
	typ, p, err := readFrame(br, &buf)
	if err != nil {
		return nil, err
	}
	if typ == FrameError {
		return nil, fmt.Errorf("wire: server error: %s", p)
	}
	if typ != wantType {
		return nil, fmt.Errorf("wire: expected frame type %d, got %d", wantType, typ)
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

// Close retires every connection: queued and in-flight ops fail with
// ErrClientClosed (or the connection's earlier terminal error), and
// Close returns once every writer has resolved its queue — no caller
// is left blocked.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		for _, cc := range c.conns {
			cc.retire()
		}
	})
	return nil
}

//go:build race

package wire

// raceEnabled reports whether the race detector is on.
const raceEnabled = true

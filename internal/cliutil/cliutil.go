// Package cliutil holds the small helpers shared by the command-line
// tools: loading a workload from a trace file or a named generator.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"dbp/internal/gaming"
	"dbp/internal/item"
	"dbp/internal/trace"
	"dbp/internal/workload"
)

// GenSpec selects a generated workload.
type GenSpec struct {
	Kind string // uniform, pareto, gaming, bursty
	N    int
	Rate float64
	Mu   float64
	Seed int64
}

// LoadJobs loads a workload from tracePath (CSV or JSON by extension) if
// non-empty, else generates one from spec.
func LoadJobs(tracePath string, spec GenSpec) (item.List, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(tracePath, ".json") {
			return trace.ReadJSON(f)
		}
		return trace.ReadCSV(f)
	}
	switch spec.Kind {
	case "uniform":
		return workload.Generate(workload.UniformConfig(spec.N, spec.Rate, spec.Mu, spec.Seed)), nil
	case "pareto":
		return workload.Generate(workload.ParetoConfig(spec.N, spec.Rate, spec.Mu, spec.Seed)), nil
	case "gaming":
		l, _ := gaming.Sessions(gaming.Config{
			Catalog: gaming.DefaultCatalog(), Rate: spec.Rate, N: spec.N, Seed: spec.Seed,
		})
		return l, nil
	case "bursty":
		return workload.GenerateBursty(workload.BurstyConfig{
			Config:      workload.UniformConfig(spec.N, spec.Rate, spec.Mu, spec.Seed),
			BurstFactor: 10, MeanCalm: 30, MeanBurst: 3,
		}), nil
	case "":
		return nil, fmt.Errorf("pass -trace FILE or -gen {uniform,pareto,gaming,bursty}")
	default:
		return nil, fmt.Errorf("unknown generator %q (uniform, pareto, gaming, bursty)", spec.Kind)
	}
}

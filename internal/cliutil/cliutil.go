// Package cliutil holds the small helpers shared by the command-line
// tools: loading a workload from a trace file or a registered scenario,
// and printing the scenario registry.
package cliutil

import (
	"fmt"
	"io"

	_ "dbp/internal/gaming" // registers the "gaming" scenario
	"dbp/internal/item"
	"dbp/internal/trace"
	"dbp/internal/workload"
)

// GenSpec selects a generated workload by registry spec ("uniform",
// "zipfian:alpha=1.3", "trace:jobs.csv.gz", ... — see ListScenarios).
// Dim > 1 draws vector demands on the scenarios that support them.
type GenSpec struct {
	Spec string
	N    int
	Rate float64
	Mu   float64
	Seed int64
	Dim  int
}

// LoadJobs loads a workload from tracePath (CSV or JSON by extension,
// .gz transparent) if non-empty, else generates one from the registry
// spec. Unknown scenario names error with the full registry listing.
func LoadJobs(tracePath string, spec GenSpec) (item.List, error) {
	if tracePath != "" {
		return trace.ReadFile(tracePath)
	}
	if spec.Spec == "" {
		return nil, fmt.Errorf("pass -trace FILE or -gen SCENARIO; registered scenarios:\n%s", workload.Describe())
	}
	return workload.FromSpec(spec.Spec, spec.N, spec.Rate, spec.Mu, spec.Seed, spec.Dim)
}

// ListScenarios prints the scenario registry — every registered
// workload with its description and parameter schema — the body of the
// -list-workloads flag every CLI carries.
func ListScenarios(w io.Writer) {
	fmt.Fprintf(w, "registered workload scenarios (spec: name or name:key=value,...):\n%s", workload.Describe())
}

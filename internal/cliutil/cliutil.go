// Package cliutil holds the small helpers shared by the command-line
// tools: loading a workload from a trace file or a named generator.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"dbp/internal/gaming"
	"dbp/internal/item"
	"dbp/internal/trace"
	"dbp/internal/workload"
)

// GenSpec selects a generated workload. Dim > 1 draws vector demands
// (uniform and pareto shapes only; each job's Size is its largest
// component).
type GenSpec struct {
	Kind string // uniform, pareto, gaming, bursty
	N    int
	Rate float64
	Mu   float64
	Seed int64
	Dim  int
}

// LoadJobs loads a workload from tracePath (CSV or JSON by extension) if
// non-empty, else generates one from spec.
func LoadJobs(tracePath string, spec GenSpec) (item.List, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(tracePath, ".json") {
			return trace.ReadJSON(f)
		}
		return trace.ReadCSV(f)
	}
	switch spec.Kind {
	case "uniform":
		if spec.Dim > 1 {
			return workload.GenerateVec(workload.UniformConfig(spec.N, spec.Rate, spec.Mu, spec.Seed), spec.Dim), nil
		}
		return workload.Generate(workload.UniformConfig(spec.N, spec.Rate, spec.Mu, spec.Seed)), nil
	case "pareto":
		if spec.Dim > 1 {
			return workload.GenerateVec(workload.ParetoConfig(spec.N, spec.Rate, spec.Mu, spec.Seed), spec.Dim), nil
		}
		return workload.Generate(workload.ParetoConfig(spec.N, spec.Rate, spec.Mu, spec.Seed)), nil
	case "gaming":
		if spec.Dim > 1 {
			return nil, fmt.Errorf("generator %q has no vector-demand form (use uniform or pareto with -dim)", spec.Kind)
		}
		l, _ := gaming.Sessions(gaming.Config{
			Catalog: gaming.DefaultCatalog(), Rate: spec.Rate, N: spec.N, Seed: spec.Seed,
		})
		return l, nil
	case "bursty":
		if spec.Dim > 1 {
			return nil, fmt.Errorf("generator %q has no vector-demand form (use uniform or pareto with -dim)", spec.Kind)
		}
		return workload.GenerateBursty(workload.BurstyConfig{
			Config:      workload.UniformConfig(spec.N, spec.Rate, spec.Mu, spec.Seed),
			BurstFactor: 10, MeanCalm: 30, MeanBurst: 3,
		}), nil
	case "":
		return nil, fmt.Errorf("pass -trace FILE or -gen {uniform,pareto,gaming,bursty}")
	default:
		return nil, fmt.Errorf("unknown generator %q (uniform, pareto, gaming, bursty)", spec.Kind)
	}
}

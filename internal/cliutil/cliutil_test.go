package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"dbp/internal/trace"
	"dbp/internal/workload"
)

func TestLoadJobsGenerators(t *testing.T) {
	for _, kind := range []string{"uniform", "pareto", "gaming", "bursty"} {
		l, err := LoadJobs("", GenSpec{Kind: kind, N: 50, Rate: 1, Mu: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(l) != 50 {
			t.Fatalf("%s: %d items", kind, len(l))
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestLoadJobsErrors(t *testing.T) {
	if _, err := LoadJobs("", GenSpec{}); err == nil {
		t.Fatal("empty spec must error")
	}
	if _, err := LoadJobs("", GenSpec{Kind: "nope"}); err == nil {
		t.Fatal("unknown generator must error")
	}
	if _, err := LoadJobs("/does/not/exist.csv", GenSpec{}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadJobsTraceFiles(t *testing.T) {
	dir := t.TempDir()
	l := workload.Generate(workload.UniformConfig(30, 2, 4, 9))

	csvPath := filepath.Join(dir, "jobs.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, l); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadJobs(csvPath, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("csv load: %d items", len(got))
	}

	jsonPath := filepath.Join(dir, "jobs.json")
	f, err = os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f, l); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = LoadJobs(jsonPath, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("json load: %d items", len(got))
	}
}

package cliutil

import (
	"path/filepath"
	"strings"
	"testing"

	"dbp/internal/trace"
	"dbp/internal/workload"
)

func TestLoadJobsGenerators(t *testing.T) {
	for _, spec := range []string{"uniform", "pareto", "gaming", "bursty", "zipfian", "hotspot:tenants=20", "diurnal", "equalduration"} {
		l, err := LoadJobs("", GenSpec{Spec: spec, N: 50, Rate: 1, Mu: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(l) != 50 {
			t.Fatalf("%s: %d items", spec, len(l))
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestLoadJobsErrors(t *testing.T) {
	if _, err := LoadJobs("", GenSpec{}); err == nil {
		t.Fatal("empty spec must error")
	}
	// An unknown scenario error enumerates the registry (the stale-CLI
	// self-correction path).
	_, err := LoadJobs("", GenSpec{Spec: "nope"})
	if err == nil {
		t.Fatal("unknown generator must error")
	}
	if !strings.Contains(err.Error(), "zipfian") || !strings.Contains(err.Error(), "gaming") {
		t.Fatalf("unknown-scenario error does not enumerate registry: %v", err)
	}
	if _, err := LoadJobs("/does/not/exist.csv", GenSpec{}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadJobsTraceFiles(t *testing.T) {
	dir := t.TempDir()
	l := workload.Generate(workload.UniformConfig(30, 2, 4, 9))

	for _, name := range []string{"jobs.csv", "jobs.json", "jobs.csv.gz", "jobs.json.gz"} {
		path := filepath.Join(dir, name)
		if err := trace.WriteFile(path, l); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadJobs(path, GenSpec{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 30 {
			t.Fatalf("%s load: %d items", name, len(got))
		}
		// The trace scenario spec must load the same file.
		viaSpec, err := LoadJobs("", GenSpec{Spec: "trace:" + path})
		if err != nil {
			t.Fatalf("trace:%s: %v", name, err)
		}
		if len(viaSpec) != 30 {
			t.Fatalf("trace:%s load: %d items", name, len(viaSpec))
		}
	}
}

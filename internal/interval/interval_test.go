package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	New(2, 1)
}

func TestNewPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN bound")
		}
	}()
	New(math.NaN(), 1)
}

func TestLengthAndEmpty(t *testing.T) {
	cases := []struct {
		iv    Interval
		len   float64
		empty bool
	}{
		{New(0, 0), 0, true},
		{New(1, 1), 0, true},
		{New(0, 1), 1, false},
		{New(-2, 3), 5, false},
		{New(0.5, 0.75), 0.25, false},
	}
	for _, c := range cases {
		if got := c.iv.Length(); got != c.len {
			t.Errorf("%v.Length() = %g, want %g", c.iv, got, c.len)
		}
		if got := c.iv.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.iv, got, c.empty)
		}
	}
}

func TestContainsHalfOpen(t *testing.T) {
	iv := New(1, 2)
	if !iv.Contains(1) {
		t.Error("left endpoint must be contained")
	}
	if iv.Contains(2) {
		t.Error("right endpoint must not be contained (half-open)")
	}
	if !iv.Contains(1.5) {
		t.Error("interior point must be contained")
	}
	if iv.Contains(0.999) || iv.Contains(2.001) {
		t.Error("points outside must not be contained")
	}
}

func TestOverlapsTouchingIsDisjoint(t *testing.T) {
	a, b := New(0, 1), New(1, 2)
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Error("touching half-open intervals must not overlap")
	}
	c := New(0.5, 1.5)
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("genuinely overlapping intervals must overlap")
	}
	empty := Interval{}
	if a.Overlaps(empty) || empty.Overlaps(a) {
		t.Error("empty interval overlaps nothing")
	}
}

func TestIntersect(t *testing.T) {
	a, b := New(0, 10), New(5, 15)
	got := a.Intersect(b)
	if got != New(5, 10) {
		t.Errorf("intersect = %v, want [5, 10)", got)
	}
	if !New(0, 1).Intersect(New(2, 3)).Empty() {
		t.Error("disjoint intervals must intersect to empty")
	}
	if !New(0, 1).Intersect(New(1, 2)).Empty() {
		t.Error("touching intervals must intersect to empty")
	}
}

func TestHull(t *testing.T) {
	a, b := New(0, 1), New(3, 4)
	if got := a.Hull(b); got != New(0, 4) {
		t.Errorf("hull = %v, want [0, 4)", got)
	}
	if got := (Interval{}).Hull(b); got != b {
		t.Errorf("hull with empty = %v, want %v", got, b)
	}
	if got := a.Hull(Interval{}); got != a {
		t.Errorf("hull with empty = %v, want %v", got, a)
	}
}

func TestShift(t *testing.T) {
	if got := New(1, 2).Shift(3); got != New(4, 5) {
		t.Errorf("shift = %v, want [4, 5)", got)
	}
}

func TestContainsInterval(t *testing.T) {
	outer := New(0, 10)
	if !outer.ContainsInterval(New(2, 5)) {
		t.Error("subset must be contained")
	}
	if !outer.ContainsInterval(Interval{}) {
		t.Error("empty interval is a subset of everything")
	}
	if outer.ContainsInterval(New(5, 11)) {
		t.Error("overhanging interval is not contained")
	}
}

func TestString(t *testing.T) {
	if got := New(0, 1.5).String(); got != "[0, 1.5)" {
		t.Errorf("String = %q", got)
	}
}

// Property: intersection measure is symmetric and bounded by each length.
func TestIntersectProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := normalize(a0, a1)
		b := normalize(b0, b1)
		x, y := a.Intersect(b), b.Intersect(a)
		if x != y {
			return false
		}
		return x.Length() <= a.Length()+1e-12 && x.Length() <= b.Length()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func normalize(a, b float64) Interval {
	a, b = clampFinite(a), clampFinite(b)
	if b < a {
		a, b = b, a
	}
	return New(a, b)
}

func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

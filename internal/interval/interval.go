// Package interval provides half-open time intervals [Lo, Hi) and sets of
// intervals, the basic temporal vocabulary of the MinUsageTime Dynamic Bin
// Packing problem. Following the paper (Tang et al., IPDPS 2016, Sec. III-A),
// all intervals are half-open: an item departing at time t is no longer
// active at t.
package interval

import (
	"fmt"
	"math"
)

// Interval is a half-open time interval [Lo, Hi). The zero value is the
// empty interval [0, 0).
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi). It panics if hi < lo or either bound
// is NaN, because an ill-formed interval almost always indicates a logic
// error upstream and silently clamping would mask it.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("interval: NaN bound")
	}
	if hi < lo {
		panic(fmt.Sprintf("interval: inverted bounds [%g, %g)", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Length returns Hi-Lo, the measure of the interval. The paper writes |I|.
func (iv Interval) Length() float64 { return iv.Hi - iv.Lo }

// Empty reports whether the interval has zero length.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether t lies in [Lo, Hi).
func (iv Interval) Contains(t float64) bool { return iv.Lo <= t && t < iv.Hi }

// ContainsInterval reports whether other is a subset of iv. The empty
// interval is a subset of everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether the two half-open intervals share any point.
// Touching endpoints ([0,1) and [1,2)) do not overlap.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Intersect returns the intersection of the two intervals, which may be
// empty. An empty result is normalized to the zero Interval.
func (iv Interval) Intersect(other Interval) Interval {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if hi <= lo {
		return Interval{}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Hull returns the smallest interval containing both iv and other.
// If one is empty, the other is returned.
func (iv Interval) Hull(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Shift returns the interval translated by dt.
func (iv Interval) Shift(dt float64) Interval {
	return Interval{Lo: iv.Lo + dt, Hi: iv.Hi + dt}
}

// String renders the interval in the paper's [lo, hi) notation.
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g)", iv.Lo, iv.Hi) }

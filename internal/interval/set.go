package interval

import (
	"sort"
	"strings"
)

// Set is a union of half-open intervals maintained in canonical form:
// sorted by Lo, pairwise disjoint, non-empty, and non-touching (adjacent
// intervals are merged). The zero value is the empty set, ready to use.
type Set struct {
	ivs []Interval
}

// NewSet builds a canonical set from arbitrary intervals; empty intervals
// are dropped and overlapping or touching ones are merged.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts the interval into the set, merging as needed.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all existing intervals that overlap or touch iv.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	j := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Lo > iv.Hi })
	if i < j {
		if s.ivs[i].Lo < iv.Lo {
			iv.Lo = s.ivs[i].Lo
		}
		if s.ivs[j-1].Hi > iv.Hi {
			iv.Hi = s.ivs[j-1].Hi
		}
	}
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, iv)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// AddSet inserts every interval of other into s.
func (s *Set) AddSet(other *Set) {
	for _, iv := range other.ivs {
		s.Add(iv)
	}
}

// Measure returns the total length of the set (Lebesgue measure).
func (s *Set) Measure() float64 {
	var m float64
	for _, iv := range s.ivs {
		m += iv.Length()
	}
	return m
}

// Len returns the number of disjoint maximal intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Intervals returns a copy of the canonical intervals, sorted by Lo.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Contains reports whether t is in the union.
func (s *Set) Contains(t float64) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// Hull returns the smallest single interval covering the set.
func (s *Set) Hull() Interval {
	if len(s.ivs) == 0 {
		return Interval{}
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}
}

// IntersectInterval returns the measure of the intersection of the set with iv.
func (s *Set) IntersectInterval(iv Interval) float64 {
	var m float64
	for _, x := range s.ivs {
		m += x.Intersect(iv).Length()
	}
	return m
}

// Overlaps reports whether the set has positive-measure intersection with iv.
func (s *Set) Overlaps(iv Interval) bool {
	for _, x := range s.ivs {
		if x.Overlaps(iv) {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{ivs: s.Intervals()}
}

// String renders the set as a union of intervals.
func (s *Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// Span returns the measure of the union of the given intervals: the paper's
// span(R) when applied to item active intervals (Sec. III-A, Figure 1).
func Span(ivs []Interval) float64 {
	s := NewSet(ivs...)
	return s.Measure()
}

package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetZeroValue(t *testing.T) {
	var s Set
	if s.Measure() != 0 || s.Len() != 0 {
		t.Error("zero Set must be empty")
	}
	s.Add(New(0, 1))
	if s.Measure() != 1 {
		t.Error("zero Set must be usable after Add")
	}
}

func TestSetMergeOverlapping(t *testing.T) {
	s := NewSet(New(0, 2), New(1, 3))
	if s.Len() != 1 || s.Measure() != 3 {
		t.Errorf("got %v (measure %g), want single [0,3)", s, s.Measure())
	}
}

func TestSetMergeTouching(t *testing.T) {
	s := NewSet(New(0, 1), New(1, 2))
	if s.Len() != 1 || s.Measure() != 2 {
		t.Errorf("touching intervals must merge: %v", s)
	}
}

func TestSetDisjointStayDisjoint(t *testing.T) {
	s := NewSet(New(0, 1), New(2, 3), New(4, 5))
	if s.Len() != 3 || s.Measure() != 3 {
		t.Errorf("got %v", s)
	}
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2.5) || s.Contains(3.7) {
		t.Error("Contains misbehaves on disjoint set")
	}
}

func TestSetBridgingAdd(t *testing.T) {
	s := NewSet(New(0, 1), New(2, 3))
	s.Add(New(0.5, 2.5))
	if s.Len() != 1 || s.Measure() != 3 {
		t.Errorf("bridging add must merge all: %v", s)
	}
}

func TestSetAddEmptyIsNoop(t *testing.T) {
	s := NewSet(New(0, 1))
	s.Add(Interval{})
	if s.Len() != 1 || s.Measure() != 1 {
		t.Errorf("empty add changed set: %v", s)
	}
}

func TestSetHull(t *testing.T) {
	s := NewSet(New(5, 6), New(0, 1))
	if got := s.Hull(); got != New(0, 6) {
		t.Errorf("hull = %v", got)
	}
	if got := NewSet().Hull(); !got.Empty() {
		t.Errorf("empty set hull = %v", got)
	}
}

func TestSetIntersectInterval(t *testing.T) {
	s := NewSet(New(0, 1), New(2, 3))
	if got := s.IntersectInterval(New(0.5, 2.5)); got != 1.0 {
		t.Errorf("intersect measure = %g, want 1", got)
	}
	if s.Overlaps(New(1, 2)) {
		t.Error("gap must not overlap")
	}
	if !s.Overlaps(New(0.9, 1.1)) {
		t.Error("must overlap first interval")
	}
}

func TestSetAddSetAndClone(t *testing.T) {
	a := NewSet(New(0, 1))
	b := NewSet(New(0.5, 2))
	c := a.Clone()
	a.AddSet(b)
	if a.Measure() != 2 {
		t.Errorf("AddSet measure = %g", a.Measure())
	}
	if c.Measure() != 1 {
		t.Error("Clone must be independent")
	}
}

func TestSpan(t *testing.T) {
	// Figure 1 style example: three overlapping items plus one detached.
	got := Span([]Interval{New(0, 2), New(1, 3), New(2.5, 4), New(10, 11)})
	if got != 5 {
		t.Errorf("span = %g, want 5", got)
	}
	if Span(nil) != 0 {
		t.Error("span of nothing is 0")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet().String(); got != "{}" {
		t.Errorf("empty set String = %q", got)
	}
	if got := NewSet(New(0, 1), New(2, 3)).String(); got != "[0, 1) ∪ [2, 3)" {
		t.Errorf("set String = %q", got)
	}
}

// Property: the canonical form invariants hold after random adds, and the
// measure equals a brute-force grid estimate within tolerance.
func TestSetCanonicalInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewSet()
		var raw []Interval
		for k := 0; k < 30; k++ {
			lo := math.Floor(rng.Float64()*64) / 4
			length := math.Floor(rng.Float64()*16) / 4
			iv := New(lo, lo+length)
			raw = append(raw, iv)
			s.Add(iv)
		}
		ivs := s.Intervals()
		for i := range ivs {
			if ivs[i].Empty() {
				t.Fatalf("canonical set holds empty interval: %v", s)
			}
			if i > 0 && ivs[i-1].Hi >= ivs[i].Lo {
				t.Fatalf("canonical set not sorted/disjoint/merged: %v", s)
			}
		}
		// Brute-force measure on a fine grid (all endpoints are multiples of 1/4).
		var brute float64
		for x := 0.0; x < 100; x += 0.25 {
			mid := x + 0.125
			covered := false
			for _, iv := range raw {
				if iv.Contains(mid) {
					covered = true
					break
				}
			}
			if covered {
				brute += 0.25
			}
		}
		if math.Abs(brute-s.Measure()) > 1e-9 {
			t.Fatalf("measure %g != brute force %g for %v", s.Measure(), brute, s)
		}
	}
}

// Property: adding intervals in any order yields the same canonical set.
func TestSetOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Float64() * 100
			ivs[i] = New(lo, lo+rng.Float64()*10)
		}
		a := NewSet(ivs...)
		// Reverse order.
		b := NewSet()
		for i := n - 1; i >= 0; i-- {
			b.Add(ivs[i])
		}
		ai, bi := a.Intervals(), b.Intervals()
		if len(ai) != len(bi) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package analysis

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// Theorem 1 (the paper's main result): FF_total(R) <= (mu+4) * OPT_total(R).
// This is the repository's most important property test: it checks the
// bound against the exact offline optimum on hundreds of instances across
// regimes (random mixes, small items, adversarial constructions).
func TestTheorem1BoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 60; trial++ {
		mu := 1 + rng.Float64()*10
		var l item.List
		switch trial % 3 {
		case 0:
			l = smallItemInstance(rng, 80, 10, mu)
		case 1:
			l = workload.Generate(workload.UniformConfig(80, 2, mu, rng.Int63()))
		default:
			l = workload.Generate(workload.SmallItemConfig(80, 3, mu, rng.Int63()))
		}
		checkTheorem1(t, l)
	}
}

func TestTheorem1BoundOnAdversarialInstances(t *testing.T) {
	for _, l := range []item.List{
		workload.NextFitAdversary(12, 6),
		workload.AnyFitTrap(12, 6),
		workload.FirstFitSmallItemStress(8, 5, 4),
		workload.AnyFitTrap(40, 16),
	} {
		checkTheorem1(t, l)
	}
}

func checkTheorem1(t *testing.T, l item.List) {
	t.Helper()
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	optTotal, ok := opt.TotalExact(l, 0)
	if !ok {
		// Fall back to the certified upper bracket: FF <= (mu+4)*OPT and
		// OPT <= Upper, so violating FF <= (mu+4)*Upper would still be a
		// genuine counterexample... it would not. Use lower bound check
		// direction instead: the bound must hold against the true OPT,
		// which lies in [Lower, Upper]; testing against Upper is sound
		// (FF <= (mu+4)*OPT <= (mu+4)*Upper).
		b := opt.Total(l, 0, 0)
		optTotal = b.Upper
	}
	mu := l.Mu()
	bound := FirstFitUpperBound(mu) * optTotal
	if res.TotalUsage > bound+1e-6 {
		t.Fatalf("THEOREM 1 VIOLATED: FF = %g > (mu+4)*OPT = %g (mu = %g, n = %d)",
			res.TotalUsage, bound, mu, len(l))
	}
}

// The universal lower bound mu: the trap family's measured FF ratio must
// stay within [something approaching mu, mu+4].
func TestFirstFitRatioBetweenBounds(t *testing.T) {
	for _, mu := range []float64{2, 4, 8} {
		l := workload.AnyFitTrap(100, mu)
		r, _, err := Measure(packing.NewFirstFit(), l, &MeasureOptions{ExactLimit: 1, NodeLimit: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Conservative ratio must not exceed Theorem 1's bound.
		if r.Hi() > FirstFitUpperBound(mu)+1e-6 {
			t.Fatalf("mu=%g: measured ratio upper estimate %g exceeds mu+4", mu, r.Hi())
		}
		// And the optimistic estimate should be near mu on the trap.
		if r.Lo() < mu*0.8 {
			t.Fatalf("mu=%g: trap only achieved ratio %g", mu, r.Lo())
		}
	}
}

func TestMeasureReturnsSaneBracket(t *testing.T) {
	l := workload.Generate(workload.UniformConfig(60, 2, 4, 5))
	r, res, err := Measure(packing.NewFirstFit(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Usage != res.TotalUsage {
		t.Fatal("usage mismatch")
	}
	if r.Lo() > r.Hi() {
		t.Fatalf("ratio bracket inverted: [%g, %g]", r.Lo(), r.Hi())
	}
	if r.Lo() < 1-1e-9 && r.Opt.Exact {
		t.Fatalf("exact ratio below 1: %g", r.Lo())
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMeasureVectorInstance(t *testing.T) {
	l := workload.GenerateVec(workload.UniformConfig(40, 2, 4, 5), 2)
	r, _, err := Measure(packing.NewFirstFit(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hi() < 1-1e-9 {
		t.Fatalf("vector ratio upper estimate %g below 1", r.Hi())
	}
}

func TestBoundFunctions(t *testing.T) {
	mu := 6.0
	if FirstFitUpperBound(mu) != 10 {
		t.Error("Theorem 1 bound wrong")
	}
	if FirstFitUpperBoundOld(mu) != 19 {
		t.Error("old FF bound wrong")
	}
	if NextFitUpperBound(mu) != 13 || NextFitLowerBound(mu) != 12 {
		t.Error("NF bounds wrong")
	}
	if AnyOnlineLowerBound(mu) != 6 || AnyFitLowerBound(mu) != 7 {
		t.Error("lower bounds wrong")
	}
	if GapTheorem1() != 4 {
		t.Error("Theorem 1 gap must be the constant 4")
	}
	if BestFitBounded() {
		t.Error("Best Fit is not bounded")
	}
	// The new bound beats the old one for every mu >= 0 and the
	// size-restricted one for large beta.
	for _, m := range []float64{1, 2, 4, 8, 32} {
		if FirstFitUpperBound(m) >= FirstFitUpperBoundOld(m) {
			t.Errorf("mu=%g: new bound not better than old", m)
		}
		if HybridFirstFitUpperBound(m) >= FirstFitUpperBound(m)+4 {
			t.Errorf("mu=%g: HFF bound sanity", m)
		}
	}
	if b := FirstFitUpperBoundSizeRestricted(6, 2); b <= 0 {
		t.Error("size-restricted bound must be positive")
	}
}

package analysis

// Theoretical bounds for MinUsageTime DBP as functions of the duration
// ratio mu, collected from the paper (Secs. I, II, VIII and Theorem 1).
// These are the rows of the bounds-landscape table (experiment E6) and
// the reference lines every measured ratio is compared against.

// FirstFitUpperBound is Theorem 1 of the paper: First Fit is
// (mu+4)-competitive — the best known upper bound for MinUsageTime DBP,
// and the first with multiplicative factor 1 on mu.
func FirstFitUpperBound(mu float64) float64 { return mu + 4 }

// FirstFitUpperBoundOld is the authors' earlier general bound 2*mu + 7
// for First Fit ([5], [6]; cited in Sec. I), superseded by Theorem 1.
func FirstFitUpperBoundOld(mu float64) float64 { return 2*mu + 7 }

// FirstFitUpperBoundSizeRestricted is the earlier bound for instances
// whose item sizes are at most 1/beta of the capacity (beta > 1):
// (beta/(beta-1)) * mu + O(1) (Sec. I; the additive constant in the
// source is 3*beta/(beta-1) + 1, reported here as stated there).
func FirstFitUpperBoundSizeRestricted(mu, beta float64) float64 {
	return beta/(beta-1)*mu + 3*beta/(beta-1) + 1
}

// NextFitUpperBound is Kamali & López-Ortiz's 2*mu + 1 upper bound for
// Next Fit (Sec. II).
func NextFitUpperBound(mu float64) float64 { return 2*mu + 1 }

// NextFitLowerBound is the Section VIII construction's 2*mu lower bound
// for Next Fit, showing the factor 2 is inherent.
func NextFitLowerBound(mu float64) float64 { return 2 * mu }

// HybridFirstFitUpperBound is the semi-online Hybrid First Fit bound
// (8/7) * mu + O(1) from [6] (Sec. I); the additive constant is not
// restated in this paper, so the multiplicative term is what E6 tabulates.
func HybridFirstFitUpperBound(mu float64) float64 { return 8.0 / 7.0 * mu }

// AnyOnlineLowerBound is the universal lower bound: no online algorithm
// for MinUsageTime DBP is better than mu-competitive (Sec. I; proved
// formally in [12]).
func AnyOnlineLowerBound(mu float64) float64 { return mu }

// AnyFitLowerBound is the lower bound mu + 1 for every Any Fit algorithm
// (Sec. I, from [5], [6]).
func AnyFitLowerBound(mu float64) float64 { return mu + 1 }

// BestFitBounded reports whether Best Fit's competitive ratio is bounded
// for a given mu — it is not, for any mu (Sec. I): included for table
// completeness.
func BestFitBounded() bool { return false }

// Equal-duration bounds. Masoori, Narayanan & Pankratov ("Renting
// Servers in the Cloud: The Case of Equal Duration Jobs",
// arXiv:2108.12486) study the setting where every job runs for the same
// time — mu collapses to 1 — and prove constant competitive ratios far
// below the general-instance guarantees: Next Fit is exactly
// 2-competitive there, and First Fit's ratio also drops to a small
// constant near 2 instead of Theorem 1's mu+4 = 5. The registry's
// "equalduration" scenario is checked against these reference lines.

// EqualDurationNextFitBound is Next Fit's tight competitive ratio for
// equal-duration instances (Masoori et al.).
func EqualDurationNextFitBound() float64 { return 2 }

// EqualDurationFirstFitBound is the reference line the E-series checks
// hold First Fit's measured conservative ratio under on equal-duration
// instances: the constant 2 of the Masoori et al. regime, far below the
// general Theorem 1 value FirstFitUpperBound(1) = 5.
func EqualDurationFirstFitBound() float64 { return 2 }

// GapTheorem1 returns the gap between Theorem 1's upper bound and the
// universal lower bound: a constant 4, independent of mu — the paper's
// headline "near-optimality of First Fit".
func GapTheorem1() float64 { return FirstFitUpperBound(0) - AnyOnlineLowerBound(0) }

package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %g", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary must be zero")
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 || one.P99 != 7 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 0.5); got != 5 {
		t.Fatalf("P50 = %g", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("P0 = %g", got)
	}
	if got := Percentile(sorted, 1); got != 10 {
		t.Fatalf("P100 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile must be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "algo", "ratio", "bins")
	tb.AddRow("FirstFit", 1.2345678, 12)
	tb.AddRow("NextFit", 2.0, 25)
	tb.AddNote("seed %d", 42)
	out := tb.String()
	for _, want := range []string{"E0: demo", "algo", "FirstFit", "1.235", "NextFit", "note: seed 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| FirstFit |") || !strings.Contains(md, "**E0: demo**") {
		t.Fatalf("markdown:\n%s", md)
	}
}

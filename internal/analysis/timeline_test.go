package analysis

import (
	"math"
	"strings"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
)

func TestRenderTimelineBasic(t *testing.T) {
	l := item.List{
		mk(1, 0.9, 0, 4),
		mk(2, 0.9, 2, 6),
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	out := RenderTimeline(res, 40)
	if !strings.Contains(out, "bin   0") || !strings.Contains(out, "bin   1") {
		t.Fatalf("missing bin rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no occupancy marks:\n%s", out)
	}
	if !strings.Contains(out, "usage 8") {
		t.Fatalf("missing usage summary:\n%s", out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	res := packing.MustRun(packing.NewFirstFit(), item.List{}, nil)
	if out := RenderTimeline(res, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty rendering: %q", out)
	}
}

func TestRenderTimelineShowsLingering(t *testing.T) {
	l := item.List{mk(1, 0.9, 0, 2)}
	res := packing.MustRun(packing.NewFirstFit(), l, &packing.Options{KeepAlive: 2})
	out := RenderTimeline(res, 40)
	if !strings.Contains(out, ".") {
		t.Fatalf("lingering tail not rendered:\n%s", out)
	}
}

func TestRenderTimelineMinWidth(t *testing.T) {
	l := item.List{mk(1, 0.9, 0, 1)}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	if out := RenderTimeline(res, 1); out == "" {
		t.Fatal("min width rendering failed")
	}
}

func TestLevelHistogramMassAndPlacement(t *testing.T) {
	// One bin at level 0.75 for its whole life: all mass in bucket 7 of 10.
	l := item.List{mk(1, 0.75, 0, 4)}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	hist := LevelHistogram(res, 10)
	var total float64
	for i, h := range hist {
		total += h
		if i != 7 && h != 0 {
			t.Fatalf("unexpected mass %g in bucket %d", h, i)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("histogram mass %g != 1", total)
	}
	if hist[7] != 1 {
		t.Fatalf("bucket 7 = %g, want 1", hist[7])
	}
}

func TestLevelHistogramSteps(t *testing.T) {
	// Level 0.3 on [0,2), 0.8 on [2,4) -> half the mass in each bucket.
	l := item.List{
		mk(1, 0.3, 0, 4),
		mk(2, 0.5, 2, 4),
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	hist := LevelHistogram(res, 10)
	if math.Abs(hist[3]-0.5) > 1e-9 || math.Abs(hist[8]-0.5) > 1e-9 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestHighUtilizationFraction(t *testing.T) {
	high := item.List{mk(1, 0.9, 0, 4)}
	res := packing.MustRun(packing.NewFirstFit(), high, nil)
	if got := HighUtilizationFraction(res); got != 1 {
		t.Fatalf("high fraction = %g, want 1", got)
	}
	low := item.List{mk(1, 0.1, 0, 4)}
	res = packing.MustRun(packing.NewFirstFit(), low, nil)
	if got := HighUtilizationFraction(res); got != 0 {
		t.Fatalf("high fraction = %g, want 0", got)
	}
}

func TestEventLog(t *testing.T) {
	l := item.List{
		mk(1, 0.5, 0, 2),
		mk(2, 0.5, 1, 3),
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	out := EventLog(res)
	for _, want := range []string{"open   bin 0", "place  item 1", "place  item 2", "depart item 1", "close  bin 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Chronology: open before place before depart before close.
	if strings.Index(out, "open   bin 0") > strings.Index(out, "place  item 1") {
		t.Fatal("open must precede first placement")
	}
	if strings.Index(out, "depart item 2") > strings.Index(out, "close  bin 0") {
		t.Fatal("last departure must precede close")
	}
}

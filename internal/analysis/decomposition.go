// Package analysis turns the paper's competitive analysis into executable,
// checkable artifacts: the usage-period decomposition of Section IV, the
// subperiod machinery of Section V (item selection, l/h-subperiods,
// supplier bins, Propositions 3–6), the theoretical bounds landscape, and
// the competitive-ratio measurement used by every experiment.
//
// A note on fidelity: Sections IV–V are reproduced exactly as stated and
// verified on real packings (experiment E7). The supplier-period interval
// arithmetic of Sections VI–VII (Definition 1/2, Lemmas 1–4) is proof-
// internal bookkeeping whose numeric constants did not survive the source
// text of the paper available to us; rather than guess them, this package
// verifies their consequences — Theorem 1's (mu+4) bound itself (E1) and
// the propositions — and exposes the measured amortized utilization that
// the lemmas exist to bound.
package analysis

import (
	"fmt"
	"math"

	"dbp/internal/bins"
	"dbp/internal/interval"
	"dbp/internal/packing"
)

// BinPeriods is the Section IV decomposition of one bin's usage period
// U_k into V_k and W_k: E_k is the latest closing time of all bins opened
// before b_k (E_1 = U_1^-); V_k = [U_k^-, min(U_k^+, E_k)) is the part of
// the usage period overlapped by earlier bins' horizon, and W_k = U_k \
// V_k is the rest. The W_k are pairwise disjoint and together cover
// exactly span(R), giving FF_total = sum |V_k| + span(R) (eq. (1)).
type BinPeriods struct {
	Bin *bins.Bin
	E   float64
	V   interval.Interval // possibly empty
	W   interval.Interval // possibly empty
}

// Decompose computes the Section IV decomposition for every bin of a
// packing result. Bins must be in opening order (as packing.Result
// guarantees).
type Decomposition struct {
	Result  *packing.Result
	Periods []BinPeriods
}

// Decompose builds the usage-period decomposition of the given run. It
// panics on keep-alive runs: the Section IV identities (sum |W_k| =
// span) assume bins close the instant they empty, which lingering
// servers deliberately violate.
func Decompose(res *packing.Result) *Decomposition {
	if res.KeepAlive > 0 {
		panic("analysis: Decompose requires a close-on-empty run (KeepAlive = 0)")
	}
	d := &Decomposition{Result: res, Periods: make([]BinPeriods, len(res.Bins))}
	latestClose := math.Inf(-1)
	for k, b := range res.Bins {
		u := b.UsagePeriod()
		e := u.Lo // E_1 = U_1^- for the first bin
		if k > 0 {
			e = latestClose
		}
		var v, w interval.Interval
		if e <= u.Lo {
			v = interval.Interval{}
			w = u
		} else if e >= u.Hi {
			v = u
			w = interval.Interval{}
		} else {
			v = interval.Interval{Lo: u.Lo, Hi: e}
			w = interval.Interval{Lo: e, Hi: u.Hi}
		}
		d.Periods[k] = BinPeriods{Bin: b, E: e, V: v, W: w}
		if u.Hi > latestClose {
			latestClose = u.Hi
		}
	}
	return d
}

// SumV returns sum over bins of |V_k|.
func (d *Decomposition) SumV() float64 {
	var s float64
	for _, p := range d.Periods {
		s += p.V.Length()
	}
	return s
}

// SumW returns sum over bins of |W_k|.
func (d *Decomposition) SumW() float64 {
	var s float64
	for _, p := range d.Periods {
		s += p.W.Length()
	}
	return s
}

// Verify checks the structural identities of Section IV on this
// decomposition:
//
//  1. V_k and W_k partition U_k (lengths add up; V precedes W).
//  2. The W_k are pairwise disjoint.
//  3. sum |W_k| = span(R).
//  4. FF_total = sum |V_k| + span(R)  (equation (1)).
//
// It returns an error describing the first violated identity.
func (d *Decomposition) Verify() error {
	const tol = 1e-9
	span := d.Result.Items.Span()
	var wset *interval.Set = interval.NewSet()
	for k, p := range d.Periods {
		u := p.Bin.UsagePeriod()
		if math.Abs(p.V.Length()+p.W.Length()-u.Length()) > tol {
			return fmt.Errorf("bin %d: |V|+|W| = %g != |U| = %g", k, p.V.Length()+p.W.Length(), u.Length())
		}
		if !p.V.Empty() && p.V.Lo != u.Lo {
			return fmt.Errorf("bin %d: V must be a prefix of U", k)
		}
		if !p.W.Empty() && p.W.Hi != u.Hi {
			return fmt.Errorf("bin %d: W must be a suffix of U", k)
		}
		if !p.W.Empty() {
			if wset.Overlaps(p.W) {
				return fmt.Errorf("bin %d: W_k overlaps an earlier W", k)
			}
			wset.Add(p.W)
		}
	}
	if math.Abs(wset.Measure()-span) > tol*(1+span) {
		return fmt.Errorf("sum |W_k| = %g != span = %g", wset.Measure(), span)
	}
	if got := d.SumV() + span; math.Abs(got-d.Result.TotalUsage) > tol*(1+got) {
		return fmt.Errorf("sum|V| + span = %g != total usage = %g", got, d.Result.TotalUsage)
	}
	return nil
}

package analysis

import (
	"fmt"
	"math"
	"strings"

	"dbp/internal/packing"
)

// RenderTimeline draws an ASCII Gantt chart of a packing run: one row per
// bin, time on the horizontal axis, '#' where the bin holds items, '.'
// where it lingers empty (keep-alive), and spaces where it is closed.
// width is the number of character columns for the time axis (minimum
// 10). It is the visualization behind cmd/dbpsim's -gantt flag and makes
// the usage-period structure of Sections IV–V visible at a glance.
func RenderTimeline(res *packing.Result, width int) string {
	if width < 10 {
		width = 10
	}
	if len(res.Bins) == 0 {
		return "(empty packing)\n"
	}
	period := res.Items.PackingPeriod()
	lo := period.Lo
	hi := period.Hi + res.KeepAlive
	if hi <= lo {
		hi = lo + 1
	}
	scale := float64(width) / (hi - lo)
	col := func(t float64) int {
		c := int((t - lo) * scale)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time %-*s\n", width, fmt.Sprintf("[%.4g .. %.4g)", lo, hi))
	for _, b := range res.Bins {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		u := b.UsagePeriod()
		for c := col(u.Lo); c <= col(u.Hi-1e-12); c++ {
			row[c] = '.'
		}
		// Overlay occupied stretches from the items.
		for _, it := range b.Items() {
			for c := col(it.Arrival); c <= col(it.Departure-1e-12); c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(&sb, "bin %3d |%s| %.4g\n", b.Index, row, b.Usage())
	}
	fmt.Fprintf(&sb, "usage %.6g over %d bins; '#' occupied, '.' lingering\n", res.TotalUsage, res.NumBins())
	return sb.String()
}

// LevelHistogram returns the distribution of instantaneous bin levels
// over all open-bin time: fraction of bin-time spent at level in
// [i/buckets, (i+1)/buckets). It quantifies utilization — the paper's
// h-subperiods are the mass at level >= 1/2.
func LevelHistogram(res *packing.Result, buckets int) []float64 {
	if buckets < 1 {
		buckets = 10
	}
	hist := make([]float64, buckets)
	var total float64
	for _, b := range res.Bins {
		// Walk the bin's level as a step function over its event times.
		type ev struct {
			t  float64
			dl float64
		}
		var evs []ev
		for _, it := range b.Items() {
			evs = append(evs, ev{it.Arrival, it.Size}, ev{it.Departure, -it.Size})
		}
		// Simple insertion sort by time (bins are small).
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && evs[j].t < evs[j-1].t; j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
		level := 0.0
		for i := 0; i < len(evs); i++ {
			level += evs[i].dl
			if i+1 < len(evs) {
				dt := evs[i+1].t - evs[i].t
				if dt <= 0 || level <= 1e-12 {
					continue
				}
				k := int(level * float64(buckets))
				if k >= buckets {
					k = buckets - 1
				}
				hist[k] += dt
				total += dt
			}
		}
	}
	if total > 0 {
		for i := range hist {
			hist[i] /= total
		}
	}
	return hist
}

// HighUtilizationFraction returns the fraction of occupied bin-time spent
// at level >= 1/2 — Proposition 6 guarantees h-subperiods contribute to
// this mass.
func HighUtilizationFraction(res *packing.Result) float64 {
	hist := LevelHistogram(res, 100)
	var high float64
	for i := 50; i < 100; i++ {
		high += hist[i]
	}
	if math.IsNaN(high) {
		return 0
	}
	return high
}

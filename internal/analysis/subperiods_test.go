package analysis

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/bins"
	"dbp/internal/interval"
	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// smallItemInstance builds instances rich in small items (size < 1/2) so
// the Section V machinery has material to work on.
func smallItemInstance(rng *rand.Rand, n int, horizon, mu float64) item.List {
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * horizon
		size := 0.05 + rng.Float64()*0.9
		l[i] = mk(item.ID(i+1), size, a, a+1+rng.Float64()*(mu-1))
	}
	return l
}

func TestSelectSmallItemsWindowing(t *testing.T) {
	// Bin with small items at t = 0, 1, 1.5, 5, 9 and mu = 2.
	// Selection: start 0; window (0,2] -> last is 1.5; window (1.5,3.5] ->
	// none -> first after = 5; window (5,7] -> none -> first after = 9.
	// V = [0, 12): 9 is within mu of V end? 12-9=3 > 2, and 9 is the last
	// candidate -> terminate by (ii).
	// A large holder keeps the bin open for the whole window so every
	// small item lands in bin 0 (large items are never selection
	// candidates).
	l := item.List{
		mk(9, 0.6, 0, 12),
		mk(1, 0.1, 0, 2),
		mk(2, 0.1, 1, 3),
		mk(3, 0.1, 1.5, 3.5),
		mk(4, 0.1, 5, 7),
		mk(5, 0.1, 9, 11),
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	b := res.Bins[0]
	if res.NumBins() != 1 {
		t.Fatalf("want all items in one bin, got %d bins", res.NumBins())
	}
	sel := SelectSmallItems(b, interval.New(0, 12), 2)
	want := []float64{0, 1.5, 5, 9}
	if len(sel) != len(want) {
		t.Fatalf("selected %d items, want %d", len(sel), len(want))
	}
	for i, w := range want {
		if sel[i].At != w {
			t.Fatalf("selected[%d] at %g, want %g", i, sel[i].At, w)
		}
	}
}

func TestSelectSmallItemsTerminationNearVEnd(t *testing.T) {
	// With V = [0, 3) and mu = 2, an item selected at t >= 1 stops the
	// process even though later candidates exist.
	l := item.List{
		mk(1, 0.2, 0, 2),
		mk(2, 0.2, 1.5, 3.5), // within window of item 1 -> selected (last in window)
		mk(3, 0.2, 2.9, 4.9), // must NOT be selected: 1.5 is within mu of V end
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	sel := SelectSmallItems(res.Bins[0], interval.New(0, 3), 2)
	if len(sel) != 2 || sel[1].At != 1.5 {
		t.Fatalf("selected = %v", sel)
	}
}

func TestSelectSmallItemsIgnoresLargeAndOutsideV(t *testing.T) {
	l := item.List{
		mk(1, 0.7, 0, 2),  // large: never selected
		mk(2, 0.2, 1, 3),  // small, inside V
		mk(3, 0.2, 8, 10), // small, outside V
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	sel := SelectSmallItems(res.Bins[0], interval.New(0, 4), 2)
	if len(sel) != 1 || sel[0].Item.ID != 2 {
		t.Fatalf("selected = %v", sel)
	}
}

func TestSplitSubperiodsNoSmallItems(t *testing.T) {
	v := interval.New(0, 5)
	sps := SplitSubperiods(v, nil, 2)
	if len(sps) != 1 || !sps[0].High || sps[0].Interval != v {
		t.Fatalf("subperiods = %v", sps)
	}
}

func TestSplitSubperiodsShapes(t *testing.T) {
	// V = [0, 10), mu = 2, selected at 1, 2.5, 7.
	// x_h,0 = [0,1); x_1 = [1,2.5) -> l only; x_2 = [2.5,7) -> l [2.5,4.5),
	// h [4.5,7); x_3 = [7,10) -> l [7,9), h [9,10).
	sel := []bins.Placement{
		{Item: mk(1, 0.2, 1, 3), At: 1},
		{Item: mk(2, 0.2, 2.5, 4.5), At: 2.5},
		{Item: mk(3, 0.2, 7, 9), At: 7},
	}
	sps := SplitSubperiods(interval.New(0, 10), sel, 2)
	type want struct {
		lo, hi float64
		high   bool
	}
	wants := []want{
		{0, 1, true},
		{1, 2.5, false},
		{2.5, 4.5, false},
		{4.5, 7, true},
		{7, 9, false},
		{9, 10, true},
	}
	if len(sps) != len(wants) {
		t.Fatalf("got %d subperiods, want %d: %v", len(sps), len(wants), sps)
	}
	for i, w := range wants {
		sp := sps[i]
		if sp.Interval.Lo != w.lo || sp.Interval.Hi != w.hi || sp.High != w.high {
			t.Fatalf("subperiod %d = %v (high=%v), want [%g,%g) high=%v",
				i, sp.Interval, sp.High, w.lo, w.hi, w.high)
		}
	}
}

// E7 core: Propositions 3-6 hold on First Fit packings of random
// small-item-rich workloads and of the paper-aligned stress instances.
func TestVerifySubperiodsOnRandomFirstFitRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		mu := 1.5 + rng.Float64()*6
		l := smallItemInstance(rng, 120, 12, mu)
		res := packing.MustRun(packing.NewFirstFit(), l, nil)
		sps := SubperiodsOf(res)
		if err := VerifySubperiods(res, sps); err != nil {
			t.Fatalf("trial %d (mu=%g): %v", trial, mu, err)
		}
	}
}

func TestVerifySubperiodsOnStressWorkloads(t *testing.T) {
	instances := []item.List{
		workload.FirstFitSmallItemStress(6, 6, 3),
		workload.FirstFitSmallItemStress(10, 4, 8),
		workload.AnyFitTrap(10, 4),
		workload.NextFitAdversary(10, 4),
	}
	for i, l := range instances {
		res := packing.MustRun(packing.NewFirstFit(), l, nil)
		sps := SubperiodsOf(res)
		if err := VerifySubperiods(res, sps); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

// The stress workload is designed to actually produce l-subperiods and
// supplier bins — make sure the machinery is exercised, not vacuous.
func TestSubperiodsNotVacuous(t *testing.T) {
	l := workload.FirstFitSmallItemStress(8, 6, 3)
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	sps := SubperiodsOf(res)
	var nL, nH, nSuppliers int
	for _, bs := range sps {
		for _, sp := range bs.Subperiods {
			if sp.High {
				nH++
			} else {
				nL++
				if sp.SupplierIndex >= 0 {
					nSuppliers++
				}
			}
		}
	}
	if nL == 0 {
		t.Fatal("stress workload produced no l-subperiods")
	}
	if nSuppliers != nL {
		t.Fatalf("%d of %d l-subperiods have suppliers", nSuppliers, nL)
	}
}

// Amortized-utilization telemetry: over every l-subperiod, the paper
// guarantees the selected small item alone contributes demand; measure
// the aggregate demand-to-length ratio that Sections VI-VII bound.
func TestAmortizedLevelOverLSubperiodsPositive(t *testing.T) {
	l := workload.FirstFitSmallItemStress(8, 6, 3)
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	var lenL, demand float64
	for _, bs := range SubperiodsOf(res) {
		for _, sp := range bs.Subperiods {
			if sp.High {
				continue
			}
			lenL += sp.Interval.Length()
			// Demand of the bin over the l-subperiod.
			mid := (sp.Interval.Lo + sp.Interval.Hi) / 2
			demand += bs.Bin.LevelAt(mid) * sp.Interval.Length()
		}
	}
	if lenL > 0 && demand <= 0 {
		t.Fatal("zero demand over non-empty l-subperiods")
	}
	_ = math.Inf // keep math import if edits drop other uses
}

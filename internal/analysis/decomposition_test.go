package analysis

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

func mk(id item.ID, size, a, d float64) item.Item {
	return item.Item{ID: id, Size: size, Arrival: a, Departure: d}
}

func randomInstance(rng *rand.Rand, n int, horizon float64) item.List {
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * horizon
		l[i] = mk(item.ID(i+1), 0.05+rng.Float64()*0.95, a, a+0.5+rng.Float64()*2)
	}
	return l
}

func TestDecomposeHandExample(t *testing.T) {
	// Figure 2 style: bin0 [0,4); bin1 [1,3); bin2 [2,6); bin3 [5,7).
	// E: bin0 -> 0; bin1 -> 4; bin2 -> 4; bin3 -> 6.
	// V: bin0 empty; bin1 [1,3) all; bin2 [2,4); bin3 [5,6).
	// W: bin0 [0,4); bin1 empty; bin2 [4,6); bin3 [6,7).
	l := item.List{
		mk(1, 0.9, 0, 4),
		mk(2, 0.9, 1, 3),
		mk(3, 0.9, 2, 6),
		mk(4, 0.9, 5, 7),
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	if res.NumBins() != 4 {
		t.Fatalf("bins = %d, want 4", res.NumBins())
	}
	d := Decompose(res)
	wantE := []float64{0, 4, 4, 6}
	wantV := []float64{0, 2, 2, 1}
	wantW := []float64{4, 0, 2, 1}
	for k, p := range d.Periods {
		if p.E != wantE[k] {
			t.Errorf("E_%d = %g, want %g", k, p.E, wantE[k])
		}
		if math.Abs(p.V.Length()-wantV[k]) > 1e-12 {
			t.Errorf("|V_%d| = %g, want %g", k, p.V.Length(), wantV[k])
		}
		if math.Abs(p.W.Length()-wantW[k]) > 1e-12 {
			t.Errorf("|W_%d| = %g, want %g", k, p.W.Length(), wantW[k])
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := d.SumW(); got != l.Span() {
		t.Errorf("sum W = %g, span = %g", got, l.Span())
	}
	if got := d.SumV() + l.Span(); math.Abs(got-res.TotalUsage) > 1e-12 {
		t.Errorf("eq (1) broken: %g vs %g", got, res.TotalUsage)
	}
}

// Section IV is algorithm-independent: the identities hold for every
// policy's packing.
func TestDecomposeIdentitiesAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		l := randomInstance(rng, 150, 10)
		for name, algo := range packing.Standard() {
			res, err := packing.Run(algo, l, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := Decompose(res).Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestDecomposeAdversarialInstances(t *testing.T) {
	instances := []item.List{
		workload.NextFitAdversary(8, 4),
		workload.AnyFitTrap(8, 4),
		workload.FirstFitSmallItemStress(6, 4, 3),
		workload.BestFitRelay(4, 3, 4),
	}
	for i, l := range instances {
		for _, algo := range []packing.Algorithm{packing.NewFirstFit(), packing.NewNextFit(), packing.NewBestFit()} {
			res := packing.MustRun(algo, l, nil)
			if err := Decompose(res).Verify(); err != nil {
				t.Fatalf("instance %d, %s: %v", i, algo.Name(), err)
			}
		}
	}
}

func TestDecomposeSingleBin(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 5)}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	d := Decompose(res)
	if !d.Periods[0].V.Empty() {
		t.Error("single bin must have empty V (E_1 = U_1^-)")
	}
	if d.Periods[0].W.Length() != 5 {
		t.Error("single bin W must be its whole usage period")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeEmptyRun(t *testing.T) {
	res := packing.MustRun(packing.NewFirstFit(), item.List{}, nil)
	d := Decompose(res)
	if len(d.Periods) != 0 {
		t.Fatal("no periods expected")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeRejectsKeepAliveRuns(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1)}
	res := packing.MustRun(packing.NewFirstFit(), l, &packing.Options{KeepAlive: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Decompose must panic on keep-alive runs")
		}
	}()
	Decompose(res)
}

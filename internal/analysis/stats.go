package analysis

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes descriptive statistics; it returns the zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - s.Mean) * (x - s.Mean)
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sorted sample
// using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

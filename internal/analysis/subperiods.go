package analysis

import (
	"fmt"
	"math"
	"sort"

	"dbp/internal/bins"
	"dbp/internal/interval"
	"dbp/internal/packing"
)

// SmallThreshold is the size boundary of Section V: items of size below
// 1/2 are "small", items of size at least 1/2 are "large". During an
// h-subperiod no small item resides in the bin, so every resident is
// large and the bin level is at least 1/2 (Proposition 6).
const SmallThreshold = 0.5

// Subperiod is one l- or h-subperiod produced from a bin's V_k period.
type Subperiod struct {
	Interval interval.Interval
	// High marks an h-subperiod (bin level provably >= 1/2); false means
	// an l-subperiod (potentially low utilization, compensated by a
	// supplier bin in the paper's analysis).
	High bool
	// Index is the i of x_{l,i}/x_{h,i} in the paper's numbering: the
	// 0-based position of the selected-item gap this subperiod came from.
	Index int
	// SelectedID is the small item whose arrival starts the period (the
	// paper's p_i), valid for l-subperiods with Index >= 1.
	SelectedID int64
	// SupplierIndex is the index of the supplier bin (the last-opened bin
	// with a lower index that is open at the subperiod's left endpoint),
	// or -1 when not applicable (h-subperiods).
	SupplierIndex int
}

// BinSubperiods is the full Section V output for one bin.
type BinSubperiods struct {
	Bin *bins.Bin
	V   interval.Interval
	// Window is the selection window: the maximum item duration of the
	// instance. The paper normalizes the minimum duration to 1, making
	// this equal to mu; for unnormalized instances the maximum duration
	// is the correct window (it is what bounds how long a small item can
	// linger in a bin).
	Window     float64
	Selected   []bins.Placement // the selected small items, in arrival order
	Subperiods []Subperiod      // x_h,0, x_l,1, x_h,1, x_l,2, ... (empty ones omitted)
}

// SelectSmallItems runs the Section V item-selection process on the small
// items placed into the bin during its V period, with selection window mu
// (the maximum item duration):
//
//   - start with the first small item placed in the bin during V;
//   - from the current selected item r, if other small items are placed
//     in the bin within duration mu (inclusive) after r's arrival, select
//     the last of them; otherwise select the first small item placed
//     after that window;
//   - stop once a selected item arrives within mu (inclusive) of V's end,
//     or the last small item of V has been selected.
func SelectSmallItems(b *bins.Bin, v interval.Interval, mu float64) []bins.Placement {
	var cands []bins.Placement
	for _, p := range b.Placements() {
		if p.Item.Size < SmallThreshold && v.Contains(p.At) {
			cands = append(cands, p)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].At < cands[j].At })
	if len(cands) == 0 {
		return nil
	}
	selected := []bins.Placement{cands[0]}
	for {
		cur := selected[len(selected)-1]
		// Termination (i): selected item within mu (inclusive) of V's end.
		if v.Hi-cur.At <= mu {
			break
		}
		// Find small items placed in (cur.At, cur.At+mu].
		lastInWindow := -1
		firstAfter := -1
		for i, c := range cands {
			if c.At <= cur.At {
				continue
			}
			if c.At-cur.At <= mu {
				lastInWindow = i
			} else if firstAfter < 0 {
				firstAfter = i
				break
			}
		}
		switch {
		case lastInWindow >= 0:
			selected = append(selected, cands[lastInWindow])
		case firstAfter >= 0:
			selected = append(selected, cands[firstAfter])
		default:
			// Termination (ii): last small item of V already selected.
			return selected
		}
	}
	return selected
}

// SplitSubperiods builds the ordered list x_h,0, x_l,1, x_h,1, ... for a
// bin from its selected items: x_0 (before the first selected arrival) is
// entirely an h-subperiod; each x_i between consecutive selected arrivals
// (and after the last one, to V's end) contributes an l-subperiod of
// length at most mu and, if longer than mu, a trailing h-subperiod.
// Empty subperiods are omitted.
func SplitSubperiods(v interval.Interval, selected []bins.Placement, mu float64) []Subperiod {
	var out []Subperiod
	if len(selected) == 0 {
		if !v.Empty() {
			out = append(out, Subperiod{Interval: v, High: true, Index: 0, SupplierIndex: -1})
		}
		return out
	}
	// x_h,0
	if x0 := (interval.Interval{Lo: v.Lo, Hi: selected[0].At}); !x0.Empty() {
		out = append(out, Subperiod{Interval: x0, High: true, Index: 0, SupplierIndex: -1})
	}
	for i := range selected {
		lo := selected[i].At
		hi := v.Hi
		if i+1 < len(selected) {
			hi = selected[i+1].At
		}
		x := interval.Interval{Lo: lo, Hi: hi}
		if x.Empty() {
			continue
		}
		l := x
		var h interval.Interval
		if x.Length() > mu {
			l = interval.Interval{Lo: lo, Hi: lo + mu}
			h = interval.Interval{Lo: lo + mu, Hi: hi}
		}
		out = append(out, Subperiod{
			Interval:      l,
			High:          false,
			Index:         i + 1,
			SelectedID:    int64(selected[i].Item.ID),
			SupplierIndex: -1,
		})
		if !h.Empty() {
			out = append(out, Subperiod{Interval: h, High: true, Index: i + 1, SupplierIndex: -1})
		}
	}
	return out
}

// SubperiodsOf computes the complete Section V structure for every bin of
// a First Fit run: the V/W decomposition, the selected small items, the
// l/h-subperiods, and each l-subperiod's supplier bin (the last-opened
// lower-indexed bin open at the subperiod's left endpoint).
func SubperiodsOf(res *packing.Result) []BinSubperiods {
	mu := res.Items.MaxDuration()
	dec := Decompose(res)
	out := make([]BinSubperiods, 0, len(res.Bins))
	for k, p := range dec.Periods {
		bs := BinSubperiods{Bin: p.Bin, V: p.V, Window: mu}
		if !p.V.Empty() {
			bs.Selected = SelectSmallItems(p.Bin, p.V, mu)
			bs.Subperiods = SplitSubperiods(p.V, bs.Selected, mu)
			for i := range bs.Subperiods {
				sp := &bs.Subperiods[i]
				if sp.High {
					continue
				}
				sp.SupplierIndex = supplierAt(res, k, sp.Interval.Lo)
			}
		}
		out = append(out, bs)
	}
	return out
}

// supplierAt returns the index of the supplier bin for an l-subperiod of
// bin k starting at time t: the highest-indexed bin with index < k whose
// usage period contains t, or -1 if none exists (which for l-subperiods
// inside V_k would contradict the definition of V — see VerifySubperiods).
func supplierAt(res *packing.Result, k int, t float64) int {
	for j := k - 1; j >= 0; j-- {
		if res.Bins[j].UsagePeriod().Contains(t) {
			return j
		}
	}
	return -1
}

// VerifySubperiods checks Propositions 3–6 and the supplier-bin facts on
// a First Fit run:
//
//   - P3: every l-subperiod has length <= mu;
//   - P4: a new small item is placed in the bin at the left endpoint of
//     every l-subperiod (with index >= 1);
//   - P5: consecutive l-subperiods of one bin have combined length > mu;
//   - P6: the bin level is at least 1/2 throughout every h-subperiod;
//   - every l-subperiod has a supplier bin, and at the subperiod's start
//     the supplier could not fit the selected item: s(R_i) + s(p_i) > 1.
//
// The subperiods of each bin must also tile V_k exactly.
func VerifySubperiods(res *packing.Result, all []BinSubperiods) error {
	const tol = 1e-9
	for _, bs := range all {
		// Tiling.
		var covered float64
		prevHi := bs.V.Lo
		for _, sp := range bs.Subperiods {
			if math.Abs(sp.Interval.Lo-prevHi) > tol {
				return fmt.Errorf("bin %d: subperiod gap at %g", bs.Bin.Index, prevHi)
			}
			prevHi = sp.Interval.Hi
			covered += sp.Interval.Length()
		}
		if math.Abs(covered-bs.V.Length()) > tol {
			return fmt.Errorf("bin %d: subperiods cover %g of |V| = %g", bs.Bin.Index, covered, bs.V.Length())
		}
		if len(bs.Subperiods) > 0 && math.Abs(prevHi-bs.V.Hi) > tol {
			return fmt.Errorf("bin %d: subperiods end at %g, V ends at %g", bs.Bin.Index, prevHi, bs.V.Hi)
		}

		var prevL *Subperiod
		for i := range bs.Subperiods {
			sp := &bs.Subperiods[i]
			if sp.High {
				if err := verifyHighLevel(bs.Bin, sp.Interval); err != nil {
					return fmt.Errorf("bin %d (P6): %w", bs.Bin.Index, err)
				}
				continue
			}
			// P3.
			if sp.Interval.Length() > bs.Window+tol {
				return fmt.Errorf("bin %d (P3): l-subperiod %v longer than mu %g", bs.Bin.Index, sp.Interval, bs.Window)
			}
			// P4: a small item arrives at the left endpoint.
			if !placedSmallAt(bs.Bin, sp.Interval.Lo) {
				return fmt.Errorf("bin %d (P4): no small item placed at %g", bs.Bin.Index, sp.Interval.Lo)
			}
			// P5 for consecutive l-subperiods.
			if prevL != nil && prevL.Index+1 == sp.Index {
				if prevL.Interval.Length()+sp.Interval.Length() <= bs.Window-tol {
					return fmt.Errorf("bin %d (P5): |x_l,%d|+|x_l,%d| = %g <= mu %g",
						bs.Bin.Index, prevL.Index, sp.Index,
						prevL.Interval.Length()+sp.Interval.Length(), bs.Window)
				}
			}
			prevL = sp
			// Supplier bin facts (First Fit runs only).
			if res.Algorithm == "FirstFit" {
				if sp.SupplierIndex < 0 {
					return fmt.Errorf("bin %d: l-subperiod at %g has no supplier bin", bs.Bin.Index, sp.Interval.Lo)
				}
				sup := res.Bins[sp.SupplierIndex]
				pi := itemSizeAt(bs.Bin, sp.Interval.Lo)
				ri := levelJustBefore(sup, sp.Interval.Lo, sp.SelectedID)
				if ri+pi <= 1+tol {
					// First Fit would have placed p_i in the supplier.
					return fmt.Errorf("bin %d: supplier %d had room (%g + %g <= 1) at %g",
						bs.Bin.Index, sp.SupplierIndex, ri, pi, sp.Interval.Lo)
				}
			}
		}
	}
	return nil
}

// verifyHighLevel checks the bin level stays >= 1/2 across an h-subperiod
// by sampling at the subperiod start and every resident-set change inside.
func verifyHighLevel(b *bins.Bin, h interval.Interval) error {
	pts := []float64{h.Lo}
	for _, p := range b.Placements() {
		if h.Contains(p.Item.Arrival) {
			pts = append(pts, p.Item.Arrival)
		}
		if h.Contains(p.Item.Departure) {
			pts = append(pts, p.Item.Departure)
		}
	}
	for _, t := range pts {
		if lv := b.LevelAt(t); lv < SmallThreshold-1e-9 {
			return fmt.Errorf("level %g < 1/2 at t=%g in h-subperiod %v", lv, t, h)
		}
	}
	return nil
}

func placedSmallAt(b *bins.Bin, t float64) bool {
	for _, p := range b.Placements() {
		if p.At == t && p.Item.Size < SmallThreshold {
			return true
		}
	}
	return false
}

// itemSizeAt returns the size of the selected small item placed in b at t.
func itemSizeAt(b *bins.Bin, t float64) float64 {
	for _, p := range b.Placements() {
		if p.At == t && p.Item.Size < SmallThreshold {
			return p.Item.Size
		}
	}
	return 0
}

// levelJustBefore reconstructs the supplier bin's level at time t counting
// only items that arrived before the selected item (the paper's R_i: the
// items in the supplier bin at the moment p_i was placed).
func levelJustBefore(b *bins.Bin, t float64, selectedID int64) float64 {
	var lv float64
	for _, p := range b.Placements() {
		if !p.Item.Interval().Contains(t) {
			continue
		}
		if p.At < t || (p.At == t && int64(p.Item.ID) < selectedID) {
			lv += p.Item.Size
		}
	}
	return lv
}

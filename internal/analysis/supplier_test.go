package analysis

import (
	"math/rand"
	"testing"

	"dbp/internal/interval"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

func groupsFor(t *testing.T, res *packing.Result, p SupplierParams) ([]BinSubperiods, []LGroup) {
	t.Helper()
	sps := SubperiodsOf(res)
	if err := VerifySubperiods(res, sps); err != nil {
		t.Fatal(err)
	}
	return sps, BuildLGroups(sps, p)
}

func TestBuildLGroupsOnTrap(t *testing.T) {
	// The gap-seal trap produces one l-subperiod per victim bin (the
	// sealing tiny), each with the previous bin as supplier — n-1 groups
	// (bin 0 has no supplier... bin 0's V is empty so no l-subperiods;
	// bins 1..n-1 each produce one).
	res := packing.MustRun(packing.NewFirstFit(), workload.AnyFitTrap(10, 4), nil)
	_, groups := groupsFor(t, res, DefaultSupplierParams())
	if len(groups) == 0 {
		t.Fatal("trap must produce l-groups")
	}
	for _, g := range groups {
		if g.SupplierIndex >= g.BinIndex {
			t.Fatalf("supplier %d not earlier than bin %d", g.SupplierIndex, g.BinIndex)
		}
		if len(g.Members) < 1 {
			t.Fatal("empty group")
		}
		if g.Supplier.Length() <= 0 {
			t.Fatalf("degenerate supplier period %v", g.Supplier)
		}
	}
}

func TestLGroupsCoverAllSuppliedLSubperiods(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		l := smallItemInstance(rng, 120, 12, 2+rng.Float64()*5)
		res := packing.MustRun(packing.NewFirstFit(), l, nil)
		sps, groups := groupsFor(t, res, DefaultSupplierParams())
		want := 0
		for _, bs := range sps {
			for _, sp := range bs.Subperiods {
				if !sp.High && sp.SupplierIndex >= 0 {
					want++
				}
			}
		}
		got := 0
		for _, g := range groups {
			got += len(g.Members)
		}
		if got != want {
			t.Fatalf("groups cover %d l-subperiods, want %d", got, want)
		}
	}
}

func TestPairedRequiresAdjacentIndexAndCommonSupplier(t *testing.T) {
	w := 4.0
	p := DefaultSupplierParams()
	a := Subperiod{Index: 1, SupplierIndex: 0, Interval: ivl(0, 3)}
	b := Subperiod{Index: 2, SupplierIndex: 0, Interval: ivl(3, 6)}
	if !paired(a, b, w, p) {
		t.Fatal("long adjacent same-supplier subperiods must pair (3 > 4-3)")
	}
	bFar := b
	bFar.Index = 3
	if paired(a, bFar, w, p) {
		t.Fatal("non-adjacent indices must not pair")
	}
	bOther := b
	bOther.SupplierIndex = 1
	if paired(a, bOther, w, p) {
		t.Fatal("different suppliers must not pair")
	}
	short := Subperiod{Index: 2, SupplierIndex: 0, Interval: ivl(3, 3.5)}
	if paired(a, short, w, p) {
		t.Fatal("0.5 > 4-3 is false; must not pair")
	}
}

func TestCheckSupplierDisjointnessCensus(t *testing.T) {
	gs := []LGroup{
		{SupplierIndex: 0, Supplier: ivl(0, 2), Members: make([]Subperiod, 1)},
		{SupplierIndex: 0, Supplier: ivl(1, 3), Members: make([]Subperiod, 2)}, // overlaps previous
		{SupplierIndex: 1, Supplier: ivl(0, 10), Members: make([]Subperiod, 1)},
	}
	r := CheckSupplierDisjointness(gs)
	if r.Groups != 3 || r.Pairs != 1 || r.Intersections != 1 || r.OverlapTime != 1 {
		t.Fatalf("census = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

// The Lemma 2 reconstruction: with the default parameterization, measure
// the intersection census on a corpus of runs and require that overlap is
// rare-to-absent (the lemma claims zero under the paper's exact
// constants; our reconstruction tracks how close the default gets — E11
// sweeps alternatives).
func TestSupplierDisjointnessOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var total IntersectionReport
	for trial := 0; trial < 20; trial++ {
		l := smallItemInstance(rng, 120, 12, 2+rng.Float64()*6)
		res := packing.MustRun(packing.NewFirstFit(), l, nil)
		_, groups := groupsFor(t, res, DefaultSupplierParams())
		r := CheckSupplierDisjointness(groups)
		total.Groups += r.Groups
		total.Intersections += r.Intersections
		total.OverlapTime += r.OverlapTime
	}
	if total.Groups == 0 {
		t.Fatal("corpus produced no l-groups; machinery vacuous")
	}
	// The measured census is reported; a high intersection rate would
	// signal the reconstruction diverges badly from the paper's lemma.
	if frac := float64(total.Intersections) / float64(total.Groups); frac > 0.25 {
		t.Fatalf("supplier periods intersect too often under default params: %d/%d (%.2f)",
			total.Intersections, total.Groups, frac)
	}
}

func TestMeasureAmortizedLevelPositiveAndAboveBound(t *testing.T) {
	l := workload.FirstFitSmallItemStress(8, 6, 3)
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	sps, groups := groupsFor(t, res, DefaultSupplierParams())
	rep := MeasureAmortizedLevel(res, sps, groups)
	if rep.Length <= 0 {
		t.Fatal("no measured length")
	}
	if rep.Level() <= 0 {
		t.Fatal("no measured demand")
	}
	if rep.Level() < rep.PaperBound() {
		t.Fatalf("measured amortized level %.4f below the paper-shaped bound %.4f",
			rep.Level(), rep.PaperBound())
	}
}

func TestLGroupSpan(t *testing.T) {
	g := LGroup{Members: []Subperiod{
		{Interval: ivl(0, 1)},
		{Interval: ivl(2, 4)},
	}}
	if g.Span() != 3 {
		t.Fatalf("span = %g", g.Span())
	}
}

func ivl(lo, hi float64) interval.Interval {
	return interval.Interval{Lo: lo, Hi: hi}
}

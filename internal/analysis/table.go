package analysis

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment reports — the
// rows/series the paper's evaluation would print. It is deliberately
// dependency-free (stdlib only) and deterministic.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown (used when
// regenerating EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

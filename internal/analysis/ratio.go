package analysis

import (
	"fmt"
	"math"

	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
)

// Ratio is a measured competitive ratio for one run: the algorithm's
// usage against a certified bracket on OPT_total. RatioHi = Usage/OptLower
// overestimates the true ratio, RatioLo = Usage/OptUpper underestimates
// it; when the bracket is exact both coincide.
type Ratio struct {
	Algorithm string
	Mu        float64
	Usage     float64
	Opt       opt.Bounds
}

// Hi returns the conservative (over-)estimate Usage/Opt.Lower.
func (r Ratio) Hi() float64 {
	if r.Opt.Lower == 0 {
		return math.NaN()
	}
	return r.Usage / r.Opt.Lower
}

// Lo returns the optimistic (under-)estimate Usage/Opt.Upper.
func (r Ratio) Lo() float64 {
	if r.Opt.Upper == 0 {
		return math.NaN()
	}
	return r.Usage / r.Opt.Upper
}

// Value returns the exact ratio when the OPT bracket is exact, else the
// bracket midpoint estimate.
func (r Ratio) Value() float64 {
	if r.Opt.Mid() == 0 {
		return math.NaN()
	}
	return r.Usage / r.Opt.Mid()
}

// String renders the measurement.
func (r Ratio) String() string {
	if r.Opt.Exact {
		return fmt.Sprintf("%s: usage %.6g / OPT %.6g = %.4f (mu=%.3g)", r.Algorithm, r.Usage, r.Opt.Lower, r.Value(), r.Mu)
	}
	return fmt.Sprintf("%s: usage %.6g / OPT in [%.6g, %.6g] -> ratio in [%.4f, %.4f] (mu=%.3g)",
		r.Algorithm, r.Usage, r.Opt.Lower, r.Opt.Upper, r.Lo(), r.Hi(), r.Mu)
}

// MeasureOptions tunes OPT computation; zero values pick exact solving on
// segments of at most 64 active items with the default node budget.
type MeasureOptions struct {
	ExactLimit int
	NodeLimit  int
}

// Measure runs the algorithm on the instance and returns the measured
// competitive ratio against a certified OPT bracket. Multi-dimensional
// instances use the vector bracket.
func Measure(algo packing.Algorithm, l item.List, mo *MeasureOptions) (Ratio, *packing.Result, error) {
	res, err := packing.Run(algo, l, nil)
	if err != nil {
		return Ratio{}, nil, err
	}
	var b opt.Bounds
	if dim(l) > 1 {
		b = opt.TotalVec(l)
	} else if mo == nil {
		b = opt.TotalParallel(l, 0, 0, 0)
	} else {
		b = opt.TotalParallel(l, mo.ExactLimit, mo.NodeLimit, 0)
	}
	return Ratio{Algorithm: res.Algorithm, Mu: l.Mu(), Usage: res.TotalUsage, Opt: b}, res, nil
}

func dim(l item.List) int {
	d := 1
	for _, it := range l {
		if it.Dim() > d {
			d = it.Dim()
		}
	}
	return d
}

package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dbp/internal/packing"
)

// EventLog renders a chronological, human-readable audit trail of a
// packing run: every server opening, placement, departure and closing,
// with the bin level after each event. It is the debugging companion to
// RenderTimeline — what the Gantt chart shows spatially, the log shows
// causally.
func EventLog(res *packing.Result) string {
	type ev struct {
		t    float64
		kind int // 0 depart, 1 close, 2 open, 3 place — renders in a stable, causal order
		bin  int
		id   int64
		size float64
	}
	var evs []ev
	for _, b := range res.Bins {
		u := b.UsagePeriod()
		evs = append(evs, ev{t: u.Lo, kind: 2, bin: b.Index})
		evs = append(evs, ev{t: u.Hi, kind: 1, bin: b.Index})
		for _, p := range b.Placements() {
			evs = append(evs, ev{t: p.At, kind: 3, bin: b.Index, id: int64(p.Item.ID), size: p.Item.Size})
			evs = append(evs, ev{t: p.Item.Departure, kind: 0, bin: b.Index, id: int64(p.Item.ID), size: p.Item.Size})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		if evs[i].kind != evs[j].kind {
			return evs[i].kind < evs[j].kind
		}
		return evs[i].id < evs[j].id
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "event log: %s\n", res.String())
	for _, e := range evs {
		switch e.kind {
		case 2:
			fmt.Fprintf(&sb, "t=%-10.4g open   bin %d\n", e.t, e.bin)
		case 3:
			b := res.Bins[e.bin]
			fmt.Fprintf(&sb, "t=%-10.4g place  item %d (%.3g) -> bin %d (level %.3g)\n",
				e.t, e.id, e.size, e.bin, b.LevelAt(e.t))
		case 0:
			fmt.Fprintf(&sb, "t=%-10.4g depart item %d (%.3g) <- bin %d\n", e.t, e.id, e.size, e.bin)
		case 1:
			fmt.Fprintf(&sb, "t=%-10.4g close  bin %d\n", e.t, e.bin)
		}
	}
	return sb.String()
}

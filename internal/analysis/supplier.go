package analysis

import (
	"fmt"
	"math"

	"dbp/internal/bins"
	"dbp/internal/interval"
	"dbp/internal/packing"
)

// This file implements the supplier-period machinery of Sections VI–VII:
// pairing of consecutive l-subperiods (Definition 1), consolidation
// (Definition 2), supplier periods, the intersection census behind Lemma
// 2, and the amortized-utilization measurement that powers inequality
// chains (10)/(13) and ultimately Theorem 1.
//
// Reconstruction note (see the package comment): the numeric constants in
// the source text of Definitions 1–2 and the supplier-period interval
// arithmetic did not survive to us intact, so they are PARAMETERS here
// (SupplierParams) with defaults chosen to be self-consistent with the
// surviving propositions. VerifySupplierDisjointness and
// MeasureAmortizedLevel report what actually holds on concrete packings;
// experiment E11 sweeps the parameterization. Theorem 1 itself is
// verified independently of any of this (experiment E1).

// SupplierParams parameterizes the reconstructed Sections VI–VII
// machinery.
type SupplierParams struct {
	// LeftFrac and RightFrac size a single l-subperiod's supplier period
	// as u(x) = [x.Lo - LeftFrac*|x|, x.Lo + RightFrac*|x|).
	LeftFrac, RightFrac float64
	// PairSlack is the fraction c in Definition 1's pairing condition
	// |x_{l,i+1}| > c*(window - |x_{l,i}|): two consecutive l-subperiods
	// with a common supplier form a pair when the second is long relative
	// to the window remainder of the first.
	PairSlack float64
}

// DefaultSupplierParams is the self-consistent reconstruction used by
// default: symmetric half-length extensions and Definition 1 as printed.
func DefaultSupplierParams() SupplierParams {
	return SupplierParams{LeftFrac: 0.5, RightFrac: 0.5, PairSlack: 1}
}

// LGroup is a single l-subperiod or a maximal consolidated run of paired
// l-subperiods from one bin (Definition 2), together with its supplier
// period.
type LGroup struct {
	BinIndex      int
	SupplierIndex int
	// Members are the l-subperiods in the group, in order (length 1 for a
	// single l-subperiod).
	Members []Subperiod
	// Supplier is the supplier period u(x) on the supplier bin's
	// timeline.
	Supplier interval.Interval
}

// Span returns the union of the group's member intervals (they are
// disjoint and ordered).
func (g LGroup) Span() float64 {
	var s float64
	for _, m := range g.Members {
		s += m.Interval.Length()
	}
	return s
}

// BuildLGroups runs pairing and consolidation over the l-subperiods of
// every bin and attaches supplier periods. Subperiods without a supplier
// (possible only on non-First-Fit runs) are skipped.
func BuildLGroups(all []BinSubperiods, p SupplierParams) []LGroup {
	var groups []LGroup
	for _, bs := range all {
		var ls []Subperiod
		for _, sp := range bs.Subperiods {
			if !sp.High && sp.SupplierIndex >= 0 {
				ls = append(ls, sp)
			}
		}
		if len(ls) == 0 {
			continue
		}
		// Walk maximal paired runs.
		start := 0
		for i := 1; i <= len(ls); i++ {
			if i < len(ls) && paired(ls[i-1], ls[i], bs.Window, p) {
				continue
			}
			groups = append(groups, makeGroup(bs.Bin.Index, ls[start:i], p))
			start = i
		}
	}
	return groups
}

// paired implements Definition 1 (parameterized): consecutive
// l-subperiods (adjacent selection indices) with the same supplier bin
// form a pair when |x_{l,i+1}| > PairSlack * (window - |x_{l,i}|).
func paired(a, b Subperiod, window float64, p SupplierParams) bool {
	if a.Index+1 != b.Index {
		return false
	}
	if a.SupplierIndex != b.SupplierIndex {
		return false
	}
	return b.Interval.Length() > p.PairSlack*(window-a.Interval.Length())
}

// makeGroup attaches the supplier period. For a single l-subperiod x:
// [x.Lo - L*|x|, x.Lo + R*|x|). For a consolidated run x_i..x_j
// (mirroring the paper's Definition 2 shape): the left end extends from
// the second member's start by the larger of the first two members'
// half-extents, and the right end is the last member's start plus
// R*|x_j|.
func makeGroup(binIndex int, members []Subperiod, p SupplierParams) LGroup {
	g := LGroup{BinIndex: binIndex, SupplierIndex: members[0].SupplierIndex, Members: members}
	first := members[0].Interval
	last := members[len(members)-1].Interval
	if len(members) == 1 {
		g.Supplier = interval.Interval{
			Lo: first.Lo - p.LeftFrac*first.Length(),
			Hi: first.Lo + p.RightFrac*first.Length(),
		}
		return g
	}
	second := members[1].Interval
	leftExtent := math.Max(p.LeftFrac*first.Length(), p.LeftFrac*second.Length())
	g.Supplier = interval.Interval{
		Lo: second.Lo - leftExtent,
		Hi: last.Lo + p.RightFrac*last.Length(),
	}
	if g.Supplier.Hi < g.Supplier.Lo {
		// Degenerate parameterization; clamp to empty at the left end.
		g.Supplier = interval.Interval{Lo: g.Supplier.Lo, Hi: g.Supplier.Lo}
	}
	return g
}

// IntersectionReport is the census behind Lemma 2: how many supplier
// periods sharing a supplier bin overlap, and the total overlap measure.
type IntersectionReport struct {
	Groups        int
	Pairs         int // groups whose Members length > 1
	Intersections int
	OverlapTime   float64
}

// CheckSupplierDisjointness measures whether the supplier periods of all
// groups are pairwise disjoint when they share a supplier bin (the
// content of Lemma 2). It returns the census; Intersections == 0 means
// the lemma's conclusion holds for this parameterization on this run.
func CheckSupplierDisjointness(groups []LGroup) IntersectionReport {
	r := IntersectionReport{Groups: len(groups)}
	for _, g := range groups {
		if len(g.Members) > 1 {
			r.Pairs++
		}
	}
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if groups[i].SupplierIndex != groups[j].SupplierIndex {
				continue
			}
			ov := groups[i].Supplier.Intersect(groups[j].Supplier)
			if !ov.Empty() {
				r.Intersections++
				r.OverlapTime += ov.Length()
			}
		}
	}
	return r
}

// AmortizedReport measures the utilization statement of Section VII: the
// aggregate time-space demand accumulated over all l-subperiods and
// their supplier periods, against the aggregate length — the quantity
// the paper lower-bounds by 1/(mu+3) on the way to Theorem 1.
type AmortizedReport struct {
	Length float64 // sum of |u(x)| + |x| over groups
	Demand float64 // time-space demand of supplier bins over u(x) plus selected items over x
	Window float64
}

// Level returns Demand/Length, the measured amortized bin level.
func (a AmortizedReport) Level() float64 {
	if a.Length == 0 {
		return 0
	}
	return a.Demand / a.Length
}

// PaperBound returns the reconstruction of the paper's per-group lower
// bound 1/(2*(window+3)) on the amortized level (Sec. VII derives
// constants of this shape; the measured level should sit well above it).
func (a AmortizedReport) PaperBound() float64 { return 1 / (2 * (a.Window + 3)) }

// MeasureAmortizedLevel computes the demand/length ratio over all groups
// of a First Fit run. Demand over an l-subperiod counts only the
// selected small item (as the proof does); demand over a supplier period
// counts the supplier bin's items resident during it.
func MeasureAmortizedLevel(res *packing.Result, all []BinSubperiods, groups []LGroup) AmortizedReport {
	var rep AmortizedReport
	if len(all) > 0 {
		rep.Window = all[0].Window
	}
	for _, g := range groups {
		sup := res.Bins[g.SupplierIndex]
		rep.Length += g.Supplier.Length()
		rep.Demand += demandOver(sup, g.Supplier)
		for _, m := range g.Members {
			rep.Length += m.Interval.Length()
			// Selected item's demand over the l-subperiod.
			bin := res.Bins[g.BinIndex]
			for _, pl := range bin.Placements() {
				if pl.At == m.Interval.Lo && pl.Item.Size < SmallThreshold {
					ov := pl.Item.Interval().Intersect(m.Interval)
					rep.Demand += pl.Item.Size * ov.Length()
					break
				}
			}
		}
	}
	return rep
}

// demandOver integrates a bin's level over the window from its placement
// history.
func demandOver(b *bins.Bin, w interval.Interval) float64 {
	var d float64
	for _, p := range b.Placements() {
		ov := p.Item.Interval().Intersect(w)
		d += p.Item.Size * ov.Length()
	}
	return d
}

// String renders the census for experiment tables.
func (r IntersectionReport) String() string {
	return fmt.Sprintf("groups=%d pairs=%d intersections=%d overlap=%.4g",
		r.Groups, r.Pairs, r.Intersections, r.OverlapTime)
}

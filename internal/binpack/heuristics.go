// Package binpack solves the classical (static) bin packing problem: pack
// a multiset of sizes into the fewest unit-capacity bins. The MinUsageTime
// DBP optimum OPT_total(R) = ∫ OPT(R,t) dt (paper Sec. III-C) needs the
// classical optimum OPT(R,t) at every instant, because the offline
// adversary may repack everything at any time. This package provides an
// exact branch-and-bound solver with the Martello–Toth L2 lower bound,
// plus First Fit Decreasing / Best Fit Decreasing heuristics used as upper
// bounds and as initial incumbents.
package binpack

import (
	"math"
	"sort"
)

// eps tolerates float64 accumulation error in capacity checks, matching
// the online simulator's admission tolerance.
const eps = 1e-9

// FirstFit packs the sizes in the given order with the First Fit rule and
// returns the number of bins used. Sizes must lie in (0, capacity].
func FirstFit(sizes []float64, capacity float64) int {
	var levels []float64
	for _, s := range sizes {
		placed := false
		for i, lv := range levels {
			if lv+s <= capacity+eps {
				levels[i] += s
				placed = true
				break
			}
		}
		if !placed {
			levels = append(levels, s)
		}
	}
	return len(levels)
}

// FirstFitDecreasing sorts sizes in non-increasing order and applies First
// Fit. FFD uses at most 11/9*OPT + 6/9 bins (Dósa), making it a tight
// upper bound for the exact solver's initial incumbent.
func FirstFitDecreasing(sizes []float64, capacity float64) int {
	s := append([]float64(nil), sizes...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return FirstFit(s, capacity)
}

// BestFitDecreasing sorts sizes in non-increasing order and places each
// into the fullest bin with room.
func BestFitDecreasing(sizes []float64, capacity float64) int {
	s := append([]float64(nil), sizes...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	var levels []float64
	for _, x := range s {
		best := -1
		for i, lv := range levels {
			if lv+x <= capacity+eps && (best < 0 || lv > levels[best]) {
				best = i
			}
		}
		if best < 0 {
			levels = append(levels, x)
		} else {
			levels[best] += x
		}
	}
	return len(levels)
}

// L1 returns the continuous lower bound ceil(sum/capacity).
func L1(sizes []float64, capacity float64) int {
	var sum float64
	for _, s := range sizes {
		sum += s
	}
	if sum <= eps {
		return 0
	}
	return int(math.Ceil(sum/capacity - 1e-12))
}

// L2 returns the Martello–Toth lower bound: for each threshold alpha in
// (0, capacity/2], items larger than capacity-alpha each need their own
// bin, items in (capacity/2, capacity-alpha] need distinct bins too, and
// the mid-range mass in [alpha, capacity/2] must fit in the slack those
// bins leave. L2 dominates L1 and is exact on many instances.
func L2(sizes []float64, capacity float64) int {
	if len(sizes) == 0 {
		return 0
	}
	best := L1(sizes, capacity)
	// Candidate alphas: distinct sizes <= capacity/2, plus the residuals
	// capacity-s of large items (alpha = 0 is handled by L1). Only values
	// in (0, capacity/2] are valid thresholds.
	var alphas []float64
	for _, s := range sizes {
		if s <= capacity/2+eps {
			alphas = append(alphas, s)
		} else if r := capacity - s; r > eps && r <= capacity/2+eps {
			alphas = append(alphas, r)
		}
	}
	sort.Float64s(alphas)
	alphas = dedup(alphas)
	for _, alpha := range alphas {
		var n1, n2 int
		var sum2, sum3 float64
		for _, s := range sizes {
			switch {
			case s > capacity-alpha+eps:
				n1++
			case s > capacity/2+eps:
				n2++
				sum2 += s
			case s >= alpha-eps:
				sum3 += s
			}
		}
		slack := float64(n2)*capacity - sum2
		extra := 0
		if sum3 > slack+eps {
			extra = int(math.Ceil((sum3-slack)/capacity - 1e-12))
		}
		if lb := n1 + n2 + extra; lb > best {
			best = lb
		}
	}
	return best
}

func dedup(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// FirstFitVec packs vector sizes (each a point in [0, capacity]^d) with
// the First Fit rule under per-dimension capacity, returning the bin
// count. It is the heuristic upper bound used for the multi-dimensional
// extension experiments (paper Sec. IX future work).
func FirstFitVec(sizes [][]float64, capacity float64) int {
	var levels [][]float64
	for _, v := range sizes {
		placed := false
		for _, lv := range levels {
			ok := len(lv) == len(v)
			for d := 0; ok && d < len(v); d++ {
				if lv[d]+v[d] > capacity+eps {
					ok = false
				}
			}
			if ok {
				for d := range v {
					lv[d] += v[d]
				}
				placed = true
				break
			}
		}
		if !placed {
			levels = append(levels, append([]float64(nil), v...))
		}
	}
	return len(levels)
}

// L1Vec returns the per-dimension continuous lower bound for vector sizes:
// the max over dimensions of ceil(load_d / capacity).
func L1Vec(sizes [][]float64, capacity float64) int {
	if len(sizes) == 0 {
		return 0
	}
	d := len(sizes[0])
	best := 0
	for k := 0; k < d; k++ {
		var sum float64
		for _, v := range sizes {
			sum += v[k]
		}
		if sum > eps {
			if lb := int(math.Ceil(sum/capacity - 1e-12)); lb > best {
				best = lb
			}
		}
	}
	return best
}

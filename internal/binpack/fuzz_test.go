package binpack

import "testing"

// FuzzBoundSandwich feeds arbitrary byte strings as size vectors and
// checks the solver invariants L1 <= L2 <= Exact <= FFD on whatever
// decodes to a valid instance.
func FuzzBoundSandwich(f *testing.F) {
	f.Add([]byte{128, 64, 32, 200, 10})
	f.Add([]byte{255, 255, 255})
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 18 {
			raw = raw[:18] // keep exact solving fast
		}
		sizes := make([]float64, 0, len(raw))
		for _, b := range raw {
			s := (float64(b) + 1) / 256 // (0, 1]
			sizes = append(sizes, s)
		}
		l1, l2 := L1(sizes, 1), L2(sizes, 1)
		ex, ok := ExactWithLimit(sizes, 1, DefaultNodeLimit)
		if !ok {
			t.Skip("node budget hit")
		}
		ffd := FirstFitDecreasing(sizes, 1)
		if !(l1 <= l2 && l2 <= ex && ex <= ffd) {
			t.Fatalf("sandwich violated: L1=%d L2=%d OPT=%d FFD=%d sizes=%v", l1, l2, ex, ffd, sizes)
		}
		if len(sizes) > 0 && (ex < 1 || ex > len(sizes)) {
			t.Fatalf("exact out of range: %d for %d items", ex, len(sizes))
		}
	})
}

package binpack

import "sort"

// DefaultNodeLimit bounds the branch-and-bound search; it is generous
// enough to solve every instance arising in this repository's experiments
// (a few dozen concurrently active items) in microseconds-to-milliseconds.
const DefaultNodeLimit = 2_000_000

// Exact returns the minimum number of unit bins for the sizes, solving to
// optimality with branch and bound. It panics only on sizes outside
// (0, capacity] (caller bug). For adversarially hard instances the search
// may be large; use ExactWithLimit to bound it.
func Exact(sizes []float64, capacity float64) int {
	n, ok := ExactWithLimit(sizes, capacity, DefaultNodeLimit)
	if !ok {
		// Fall back to the FFD upper bound; on pathological instances this
		// is still within 11/9 of optimal. Callers needing certainty use
		// ExactWithLimit directly.
		return FirstFitDecreasing(sizes, capacity)
	}
	return n
}

// ExactWithLimit solves bin packing to optimality with at most maxNodes
// search nodes. It returns (count, true) when the search completed and
// (best incumbent, false) when the node budget ran out.
func ExactWithLimit(sizes []float64, capacity float64, maxNodes int) (int, bool) {
	if len(sizes) == 0 {
		return 0, true
	}
	s := append([]float64(nil), sizes...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	if s[len(s)-1] <= 0 || s[0] > capacity+eps {
		panic("binpack: size outside (0, capacity]")
	}

	lb := L2(s, capacity)
	ub := FirstFitDecreasing(s, capacity)
	if bfd := BestFitDecreasing(s, capacity); bfd < ub {
		ub = bfd
	}
	if lb >= ub {
		return ub, true
	}

	b := &bnb{
		sizes:    s,
		capacity: capacity,
		best:     ub,
		nodeCap:  maxNodes,
	}
	b.levels = make([]float64, 0, ub)
	b.suffix = make([]float64, len(s)+1)
	for i := len(s) - 1; i >= 0; i-- {
		b.suffix[i] = b.suffix[i+1] + s[i]
	}
	b.search(0)
	if b.nodes >= b.nodeCap {
		return b.best, false
	}
	return b.best, true
}

type bnb struct {
	sizes    []float64
	capacity float64
	levels   []float64 // open bin levels in creation order
	best     int
	nodes    int
	nodeCap  int
	suffix   []float64 // suffix[i] = total size of items i..n-1
}

func (b *bnb) search(i int) {
	if b.nodes >= b.nodeCap {
		return
	}
	b.nodes++
	if i == len(b.sizes) {
		if len(b.levels) < b.best {
			b.best = len(b.levels)
		}
		return
	}
	// Prune: current bins + continuous bound on what the remaining items
	// need beyond current free space.
	free := 0.0
	for _, lv := range b.levels {
		free += b.capacity - lv
	}
	need := b.suffix[i] - free
	extra := 0
	if need > eps {
		extra = int((need - eps) / b.capacity)
		extra++ // ceil
	}
	if len(b.levels)+extra >= b.best {
		return
	}

	s := b.sizes[i]
	// Try existing bins, skipping duplicates: two bins at the same level
	// are interchangeable, so branch only on the first.
	tried := make(map[int64]bool, len(b.levels))
	for k := range b.levels {
		if b.levels[k]+s > b.capacity+eps {
			continue
		}
		key := int64(b.levels[k] * 1e12)
		if tried[key] {
			continue
		}
		tried[key] = true
		b.levels[k] += s
		b.search(i + 1)
		b.levels[k] -= s
		if b.nodes >= b.nodeCap {
			return
		}
		// Dominance: if the item fills the bin exactly, that placement is
		// optimal — no need to try other bins or a new bin.
		if b.levels[k]+s >= b.capacity-eps {
			return
		}
	}
	// Try a new bin (only if it can possibly improve on the incumbent).
	if len(b.levels)+1 < b.best {
		b.levels = append(b.levels, s)
		b.search(i + 1)
		b.levels = b.levels[:len(b.levels)-1]
	}
}

package binpack

import (
	"math/rand"
	"testing"
)

func TestFirstFitKnown(t *testing.T) {
	cases := []struct {
		sizes []float64
		want  int
	}{
		{nil, 0},
		{[]float64{1}, 1},
		{[]float64{0.5, 0.5}, 1},
		{[]float64{0.6, 0.5, 0.4}, 2}, // FF: {0.6,0.4}? 0.6; 0.5 fits (1.1 no) -> new; 0.4 joins 0.6
		{[]float64{0.5, 0.5, 0.5}, 2},
		{[]float64{0.9, 0.9, 0.9}, 3},
	}
	for _, c := range cases {
		if got := FirstFit(c.sizes, 1); got != c.want {
			t.Errorf("FirstFit(%v) = %d, want %d", c.sizes, got, c.want)
		}
	}
}

func TestFFDBeatsFFOnClassicInstance(t *testing.T) {
	// FF in this order wastes bins; FFD fixes it.
	sizes := []float64{0.4, 0.4, 0.4, 0.6, 0.6, 0.6}
	ff := FirstFit(sizes, 1)
	ffd := FirstFitDecreasing(sizes, 1)
	if ffd != 3 {
		t.Errorf("FFD = %d, want 3", ffd)
	}
	if ff < ffd {
		t.Errorf("FF (%d) beat FFD (%d)?", ff, ffd)
	}
}

func TestExactKnownInstances(t *testing.T) {
	cases := []struct {
		sizes []float64
		want  int
	}{
		{nil, 0},
		{[]float64{0.5}, 1},
		{[]float64{0.5, 0.5, 0.5, 0.5}, 2},
		{[]float64{0.6, 0.6, 0.4, 0.4}, 2},      // pairs 0.6+0.4
		{[]float64{0.7, 0.7, 0.3, 0.3, 0.3}, 3}, // 0.7+0.3, 0.7+0.3, 0.3
		{[]float64{0.51, 0.51, 0.51}, 3},        // all conflict
		{[]float64{0.25, 0.25, 0.25, 0.25}, 1},  // quarters
		{[]float64{1, 1, 1}, 3},                 // full items
		{[]float64{0.35, 0.35, 0.35, 0.95}, 3},  // FFD would do 0.95 | 0.35+0.35 | 0.35? FFD=3 too; exact: 0.35*3=1.05 > 1 so 3
	}
	for _, c := range cases {
		if got := Exact(c.sizes, 1); got != c.want {
			t.Errorf("Exact(%v) = %d, want %d", c.sizes, got, c.want)
		}
	}
}

func TestExactBeatsFFDWhenPossible(t *testing.T) {
	// Classic FFD-suboptimal instance: FFD gives 3 bins, optimum is 2? Use
	// sizes where FFD is provably suboptimal: {0.45,0.45,0.35,0.35,0.2,0.2}
	// FFD: 0.45+0.45 (0.9) +0.2? no (1.1): bins {0.45,0.45},{0.35,0.35,0.2},{0.2}
	// Wait 0.45+0.45=0.9, then 0.35 -> new? 0.9+0.35>1 so bin2: 0.35+0.35=0.7,
	// +0.2=0.9, second 0.2 -> bin1? 0.9+0.2 > 1, bin2 0.9+0.2 > 1 -> bin3. FFD=3.
	// Optimal: {0.45,0.35,0.2} twice = 2.
	sizes := []float64{0.45, 0.45, 0.35, 0.35, 0.2, 0.2}
	if ffd := FirstFitDecreasing(sizes, 1); ffd != 3 {
		t.Fatalf("FFD = %d, want 3 (test construction broken)", ffd)
	}
	if got := Exact(sizes, 1); got != 2 {
		t.Errorf("Exact = %d, want 2", Exact(sizes, 1))
	}
}

func TestL1L2(t *testing.T) {
	if L1(nil, 1) != 0 || L2(nil, 1) != 0 {
		t.Error("empty bounds must be 0")
	}
	sizes := []float64{0.6, 0.6, 0.6}
	if got := L1(sizes, 1); got != 2 {
		t.Errorf("L1 = %d, want 2", got)
	}
	if got := L2(sizes, 1); got != 3 {
		t.Errorf("L2 = %d, want 3 (each >1/2 item needs its own bin)", got)
	}
	// L2 with mid-range mass: two 0.7s leave 0.6 slack; 0.9 of mid mass
	// needs an extra bin.
	sizes = []float64{0.7, 0.7, 0.3, 0.3, 0.3}
	if got := L2(sizes, 1); got != 3 {
		t.Errorf("L2 = %d, want 3", got)
	}
}

func TestExactWithLimitReportsIncompleteness(t *testing.T) {
	// An instance where the L2 lower bound (2) is strictly below the FFD
	// incumbent (3), so branch and bound must actually search; with one
	// node it cannot finish.
	sizes := []float64{0.45, 0.45, 0.35, 0.35, 0.2, 0.2}
	if _, ok := ExactWithLimit(sizes, 1, 1); ok {
		t.Error("node limit 1 cannot complete a search with lb < ub")
	}
	n, ok := ExactWithLimit([]float64{0.5, 0.5}, 1, DefaultNodeLimit)
	if !ok || n != 1 {
		t.Errorf("trivial instance: (%d, %v)", n, ok)
	}
}

// brute solves bin packing by trying all assignments (exponential; tiny n
// only) as an independent oracle.
func brute(sizes []float64, capacity float64) int {
	n := len(sizes)
	if n == 0 {
		return 0
	}
	best := n
	assign := make([]int, n)
	var rec func(i, used int)
	rec = func(i, used int) {
		if used >= best {
			return
		}
		if i == n {
			best = used
			return
		}
		levels := make([]float64, used+1)
		for j := 0; j < i; j++ {
			levels[assign[j]] += sizes[j]
		}
		for b := 0; b <= used && b < n; b++ {
			nu := used
			if b == used {
				nu = used + 1
			}
			lv := 0.0
			if b < used {
				lv = levels[b]
			}
			if lv+sizes[i] <= capacity+eps {
				assign[i] = b
				rec(i+1, nu)
			}
		}
	}
	rec(0, 0)
	return best
}

func TestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(9)
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = float64(1+rng.Intn(20)) / 20
		}
		want := brute(sizes, 1)
		if got := Exact(sizes, 1); got != want {
			t.Fatalf("Exact(%v) = %d, brute = %d", sizes, got, want)
		}
	}
}

func TestBoundSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(25)
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = 0.01 + rng.Float64()*0.99
		}
		l1, l2 := L1(sizes, 1), L2(sizes, 1)
		ex := Exact(sizes, 1)
		ffd := FirstFitDecreasing(sizes, 1)
		bfd := BestFitDecreasing(sizes, 1)
		ff := FirstFit(sizes, 1)
		if !(l1 <= l2 && l2 <= ex && ex <= ffd && ex <= bfd && ex <= ff) {
			t.Fatalf("bound sandwich violated: L1=%d L2=%d OPT=%d FFD=%d BFD=%d FF=%d (sizes %v)",
				l1, l2, ex, ffd, bfd, ff, sizes)
		}
	}
}

func TestPerfectPacking(t *testing.T) {
	// 3 bins of {0.5, 0.3, 0.2}: exact must find the perfect packing.
	var sizes []float64
	for i := 0; i < 3; i++ {
		sizes = append(sizes, 0.5, 0.3, 0.2)
	}
	if got := Exact(sizes, 1); got != 3 {
		t.Errorf("Exact = %d, want 3", got)
	}
}

func TestExactCustomCapacity(t *testing.T) {
	sizes := []float64{1.5, 1.5, 1.0}
	if got := Exact(sizes, 2); got != 3 {
		// 1.5+1.0 > 2? 2.5 > 2 yes. 1.5 alone each; 1.0 shares? 1.5+1.0 no.
		// So 1.5|1.5|1.0 -> can 1.0 join? no. 3 bins? Wait capacity 2:
		// 1.5 and 1.0 -> 2.5 > 2. So 3 bins... but two 1.5s can't pair
		// either. Exactly 3? Actually {1.5},{1.5},{1.0}: yes 3.
		t.Errorf("Exact = %d, want 3", got)
	}
	if got := Exact([]float64{1.5, 0.5, 2.0}, 2); got != 2 {
		t.Errorf("Exact = %d, want 2", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	sizes := [][]float64{{0.8, 0.1}, {0.1, 0.8}, {0.8, 0.8}}
	if got := FirstFitVec(sizes, 1); got != 2 {
		t.Errorf("FirstFitVec = %d, want 2", got)
	}
	if got := L1Vec(sizes, 1); got != 2 {
		t.Errorf("L1Vec = %d, want 2 (1.7 load per dim)", got)
	}
	if L1Vec(nil, 1) != 0 {
		t.Error("empty L1Vec must be 0")
	}
}

// Falkenauer-style triplets: items grouped in threes summing exactly to
// 1 admit a perfect packing of n/3 bins — a classic stressor for
// branch-and-bound completeness.
func TestExactOnTriplets(t *testing.T) {
	rng := rand.New(rand.NewSource(2001))
	for trial := 0; trial < 20; trial++ {
		groups := 3 + rng.Intn(4)
		var sizes []float64
		for g := 0; g < groups; g++ {
			a := 0.25 + rng.Float64()*0.25 // [0.25, 0.5)
			b := 0.2 + rng.Float64()*(0.5-a)
			c := 1 - a - b
			sizes = append(sizes, a, b, c)
		}
		got, ok := ExactWithLimit(sizes, 1, DefaultNodeLimit)
		if !ok {
			t.Fatalf("trial %d: node budget hit on %d items", trial, len(sizes))
		}
		if got != groups {
			t.Fatalf("trial %d: Exact = %d, want %d (perfect triplets)", trial, got, groups)
		}
	}
}

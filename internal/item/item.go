// Package item defines the items (jobs) of the MinUsageTime Dynamic Bin
// Packing problem: each item has a size — its resource demand as a fraction
// of unit server capacity — and an active interval [Arrival, Departure).
//
// Online algorithms must not look at an item's departure time when placing
// it (the departure is unknown at arrival in the problem model); the
// packing simulator enforces this by only exposing arrival views to
// algorithms. The full Item carries the departure so the simulator can
// schedule it.
package item

import (
	"fmt"
	"math"
	"sort"

	"dbp/internal/interval"
)

// ID identifies an item within a list. IDs are assigned by generators and
// must be unique within a List.
type ID int64

// Item is a job to be dispatched: it demands Size resources (of a unit
// capacity bin) throughout its active interval [Arrival, Departure).
//
// For the multi-dimensional extension (paper Sec. IX, future work), an item
// may carry a vector demand in Sizes; scalar Size is then the max component
// (used by size-classifying algorithms). When Sizes is nil the item is the
// ordinary one-dimensional item of the paper.
type Item struct {
	ID        ID
	Size      float64
	Sizes     []float64 // optional vector demand; nil for 1-D items
	Arrival   float64
	Departure float64
}

// Interval returns the item's active interval I(r) = [Arrival, Departure).
func (it Item) Interval() interval.Interval {
	return interval.Interval{Lo: it.Arrival, Hi: it.Departure}
}

// Duration returns |I(r)|, the item's active duration.
func (it Item) Duration() float64 { return it.Departure - it.Arrival }

// Demand returns the item's time–space demand s(r)*|I(r)| (paper Prop. 1).
func (it Item) Demand() float64 { return it.Size * it.Duration() }

// Dim returns the dimensionality of the item's demand (1 for scalar items).
func (it Item) Dim() int {
	if len(it.Sizes) == 0 {
		return 1
	}
	return len(it.Sizes)
}

// SizeVec returns the demand vector of the item. For 1-D items it is the
// one-element slice {Size}. The returned slice must not be modified.
func (it Item) SizeVec() []float64 {
	if len(it.Sizes) == 0 {
		return []float64{it.Size}
	}
	return it.Sizes
}

// Validate checks the structural invariants an item must satisfy to take
// part in a packing: positive duration, size in (0, 1] (it must fit in an
// empty unit bin), and consistent vector demand if present.
func (it Item) Validate() error {
	if math.IsNaN(it.Arrival) || math.IsNaN(it.Departure) ||
		math.IsInf(it.Arrival, 0) || math.IsInf(it.Departure, 0) {
		return fmt.Errorf("item %d: non-finite interval [%g, %g)", it.ID, it.Arrival, it.Departure)
	}
	if it.Departure <= it.Arrival {
		return fmt.Errorf("item %d: non-positive duration [%g, %g)", it.ID, it.Arrival, it.Departure)
	}
	if !(it.Size > 0) || it.Size > 1 {
		return fmt.Errorf("item %d: size %g outside (0, 1]", it.ID, it.Size)
	}
	for d, s := range it.Sizes {
		if !(s >= 0) || s > 1 {
			return fmt.Errorf("item %d: sizes[%d] = %g outside [0, 1]", it.ID, d, s)
		}
	}
	if len(it.Sizes) > 0 {
		maxc := 0.0
		for _, s := range it.Sizes {
			maxc = math.Max(maxc, s)
		}
		if math.Abs(maxc-it.Size) > 1e-12 {
			return fmt.Errorf("item %d: Size %g != max(Sizes) %g", it.ID, it.Size, maxc)
		}
	}
	return nil
}

// String renders the item compactly for diagnostics.
func (it Item) String() string {
	return fmt.Sprintf("item{%d size=%g %s}", it.ID, it.Size, it.Interval())
}

// List is an instance of the MinUsageTime DBP problem: a multiset of items.
// Order is not significant (the simulator orders events by time), but
// generators emit items sorted by arrival for readability.
type List []Item

// Validate checks every item and the uniqueness of IDs.
func (l List) Validate() error {
	seen := make(map[ID]struct{}, len(l))
	for _, it := range l {
		if err := it.Validate(); err != nil {
			return err
		}
		if _, dup := seen[it.ID]; dup {
			return fmt.Errorf("duplicate item ID %d", it.ID)
		}
		seen[it.ID] = struct{}{}
	}
	return nil
}

// Span returns span(l): the measure of time during which at least one item
// is active (paper Sec. III-A, Figure 1).
func (l List) Span() float64 {
	ivs := make([]interval.Interval, len(l))
	for i, it := range l {
		ivs[i] = it.Interval()
	}
	return interval.Span(ivs)
}

// TotalSize returns s(l), the total size of all items (paper notation).
func (l List) TotalSize() float64 {
	var s float64
	for _, it := range l {
		s += it.Size
	}
	return s
}

// TotalDemand returns the total time–space demand, sum of s(r)*|I(r)|.
// By Proposition 1 of the paper this lower-bounds OPT_total for unit bins.
func (l List) TotalDemand() float64 {
	var d float64
	for _, it := range l {
		d += it.Demand()
	}
	return d
}

// PackingPeriod returns the hull interval from first arrival to last
// departure (the paper's packing period), or the empty interval for an
// empty list.
func (l List) PackingPeriod() interval.Interval {
	if len(l) == 0 {
		return interval.Interval{}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, it := range l {
		lo = math.Min(lo, it.Arrival)
		hi = math.Max(hi, it.Departure)
	}
	return interval.Interval{Lo: lo, Hi: hi}
}

// MinDuration returns the minimum item duration; 0 for an empty list.
func (l List) MinDuration() float64 {
	if len(l) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, it := range l {
		m = math.Min(m, it.Duration())
	}
	return m
}

// MaxDuration returns the maximum item duration; 0 for an empty list.
func (l List) MaxDuration() float64 {
	var m float64
	for _, it := range l {
		m = math.Max(m, it.Duration())
	}
	return m
}

// Mu returns the duration ratio mu = max duration / min duration, the
// central parameter of the paper's bounds. It returns 1 for lists with at
// most one item and NaN if any item has non-positive duration.
func (l List) Mu() float64 {
	if len(l) <= 1 {
		return 1
	}
	minD, maxD := l.MinDuration(), l.MaxDuration()
	if minD <= 0 {
		return math.NaN()
	}
	return maxD / minD
}

// ActiveAt returns the items active at time t (those whose half-open
// interval contains t), in ID order for determinism.
func (l List) ActiveAt(t float64) List {
	var out List
	for _, it := range l {
		if it.Interval().Contains(t) {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveSizesAt returns the sizes of items active at time t.
func (l List) ActiveSizesAt(t float64) []float64 {
	var out []float64
	for _, it := range l {
		if it.Interval().Contains(t) {
			out = append(out, it.Size)
		}
	}
	return out
}

// SortedByArrival returns a copy sorted by (Arrival, ID). The simulator
// uses submission order for equal arrival times, so keeping IDs monotone in
// generation order preserves each construction's intended sequence.
func (l List) SortedByArrival() List {
	out := make(List, len(l))
	copy(out, l)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Scale returns a copy of the list with all times multiplied by timeFactor
// (> 0). Sizes are unchanged. Scaling time leaves competitive ratios
// invariant, which tests exploit.
func (l List) Scale(timeFactor float64) List {
	out := make(List, len(l))
	for i, it := range l {
		it.Arrival *= timeFactor
		it.Departure *= timeFactor
		out[i] = it
	}
	return out
}

// EventTimes returns the sorted distinct arrival/departure times of the list.
func (l List) EventTimes() []float64 {
	ts := make([]float64, 0, 2*len(l))
	for _, it := range l {
		ts = append(ts, it.Arrival, it.Departure)
	}
	sort.Float64s(ts)
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// MaxConcurrentLoad returns the maximum over time of the total active size,
// a convenient load statistic for workload reports.
func (l List) MaxConcurrentLoad() float64 {
	var peak float64
	for _, t := range l.EventTimes() {
		var load float64
		for _, it := range l {
			if it.Interval().Contains(t) {
				load += it.Size
			}
		}
		peak = math.Max(peak, load)
	}
	return peak
}

package item

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(id ID, size, a, d float64) Item {
	return Item{ID: id, Size: size, Arrival: a, Departure: d}
}

func TestItemBasics(t *testing.T) {
	it := mk(1, 0.5, 2, 5)
	if it.Duration() != 3 {
		t.Errorf("duration = %g", it.Duration())
	}
	if it.Demand() != 1.5 {
		t.Errorf("demand = %g", it.Demand())
	}
	if it.Interval().Lo != 2 || it.Interval().Hi != 5 {
		t.Errorf("interval = %v", it.Interval())
	}
	if it.Dim() != 1 || len(it.SizeVec()) != 1 || it.SizeVec()[0] != 0.5 {
		t.Error("scalar item must present a 1-D size vector")
	}
}

func TestItemValidate(t *testing.T) {
	good := mk(1, 0.5, 0, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid item rejected: %v", err)
	}
	bad := []Item{
		mk(2, 0.5, 1, 1),             // zero duration
		mk(3, 0.5, 2, 1),             // negative duration
		mk(4, 0, 0, 1),               // zero size
		mk(5, 1.5, 0, 1),             // oversize
		mk(6, -0.1, 0, 1),            // negative size
		mk(7, math.NaN(), 0, 1),      // NaN size
		mk(8, 0.5, math.NaN(), 1),    // NaN time
		mk(9, 0.5, 0, math.Inf(1)),   // infinite departure
		mk(10, 0.5, math.Inf(-1), 1), // infinite arrival
	}
	for _, it := range bad {
		if err := it.Validate(); err == nil {
			t.Errorf("invalid item accepted: %v", it)
		}
	}
}

func TestItemValidateVector(t *testing.T) {
	ok := Item{ID: 1, Size: 0.7, Sizes: []float64{0.7, 0.3}, Arrival: 0, Departure: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid vector item rejected: %v", err)
	}
	if ok.Dim() != 2 {
		t.Errorf("dim = %d", ok.Dim())
	}
	badMax := Item{ID: 2, Size: 0.5, Sizes: []float64{0.7, 0.3}, Arrival: 0, Departure: 1}
	if err := badMax.Validate(); err == nil {
		t.Error("Size != max(Sizes) must be rejected")
	}
	badComp := Item{ID: 3, Size: 1, Sizes: []float64{1, 1.2}, Arrival: 0, Departure: 1}
	if err := badComp.Validate(); err == nil {
		t.Error("component > 1 must be rejected")
	}
}

func TestListValidateDuplicateIDs(t *testing.T) {
	l := List{mk(1, 0.5, 0, 1), mk(1, 0.5, 2, 3)}
	if err := l.Validate(); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
}

func TestSpanFigure1(t *testing.T) {
	// Figure 1: overlapping items whose union is shorter than the sum.
	l := List{
		mk(1, 0.3, 0, 4),
		mk(2, 0.3, 2, 6),
		mk(3, 0.3, 8, 10),
	}
	if got := l.Span(); got != 8 {
		t.Errorf("span = %g, want 8", got)
	}
}

func TestTotals(t *testing.T) {
	l := List{mk(1, 0.25, 0, 2), mk(2, 0.5, 1, 3)}
	if got := l.TotalSize(); got != 0.75 {
		t.Errorf("total size = %g", got)
	}
	if got := l.TotalDemand(); got != 0.25*2+0.5*2 {
		t.Errorf("total demand = %g", got)
	}
}

func TestPackingPeriod(t *testing.T) {
	l := List{mk(1, 0.5, 3, 5), mk(2, 0.5, 1, 2)}
	pp := l.PackingPeriod()
	if pp.Lo != 1 || pp.Hi != 5 {
		t.Errorf("packing period = %v", pp)
	}
	if !(List{}).PackingPeriod().Empty() {
		t.Error("empty list packing period must be empty")
	}
}

func TestMu(t *testing.T) {
	l := List{mk(1, 0.5, 0, 1), mk(2, 0.5, 0, 4)}
	if got := l.Mu(); got != 4 {
		t.Errorf("mu = %g, want 4", got)
	}
	if got := (List{mk(1, 0.5, 0, 7)}).Mu(); got != 1 {
		t.Errorf("single-item mu = %g, want 1", got)
	}
	if got := (List{}).Mu(); got != 1 {
		t.Errorf("empty mu = %g, want 1", got)
	}
}

func TestActiveAt(t *testing.T) {
	l := List{mk(2, 0.5, 0, 2), mk(1, 0.5, 1, 3)}
	act := l.ActiveAt(1)
	if len(act) != 2 || act[0].ID != 1 || act[1].ID != 2 {
		t.Errorf("active at 1 = %v", act)
	}
	// Half-open: departing item is inactive at its departure time.
	act = l.ActiveAt(2)
	if len(act) != 1 || act[0].ID != 1 {
		t.Errorf("active at 2 = %v", act)
	}
	sizes := l.ActiveSizesAt(0.5)
	if len(sizes) != 1 || sizes[0] != 0.5 {
		t.Errorf("active sizes = %v", sizes)
	}
}

func TestSortedByArrivalStable(t *testing.T) {
	l := List{mk(3, 0.1, 5, 6), mk(2, 0.1, 0, 1), mk(1, 0.1, 0, 2)}
	s := l.SortedByArrival()
	if s[0].ID != 1 || s[1].ID != 2 || s[2].ID != 3 {
		t.Errorf("sorted = %v", s)
	}
	if l[0].ID != 3 {
		t.Error("SortedByArrival must not mutate the receiver")
	}
}

func TestScale(t *testing.T) {
	l := List{mk(1, 0.5, 1, 2)}
	s := l.Scale(3)
	if s[0].Arrival != 3 || s[0].Departure != 6 || s[0].Size != 0.5 {
		t.Errorf("scaled = %v", s[0])
	}
	if l[0].Arrival != 1 {
		t.Error("Scale must not mutate the receiver")
	}
}

func TestEventTimes(t *testing.T) {
	l := List{mk(1, 0.5, 0, 2), mk(2, 0.5, 2, 3)}
	ts := l.EventTimes()
	want := []float64{0, 2, 3}
	if len(ts) != len(want) {
		t.Fatalf("event times = %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("event times = %v, want %v", ts, want)
		}
	}
}

func TestMaxConcurrentLoad(t *testing.T) {
	l := List{mk(1, 0.5, 0, 2), mk(2, 0.75, 1, 3)}
	if got := l.MaxConcurrentLoad(); got != 1.25 {
		t.Errorf("peak load = %g", got)
	}
}

// Property: span <= total duration, span <= packing period length,
// demand <= totalSize * maxDuration.
func TestListInequalities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		l := make(List, n)
		var totalDur float64
		for i := range l {
			a := rng.Float64() * 100
			d := 0.1 + rng.Float64()*10
			l[i] = mk(ID(i), 0.01+rng.Float64()*0.99, a, a+d)
			totalDur += d
		}
		span := l.Span()
		if span > totalDur+1e-9 {
			return false
		}
		if span > l.PackingPeriod().Length()+1e-9 {
			return false
		}
		return l.TotalDemand() <= l.TotalSize()*l.MaxDuration()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Mu is invariant under time scaling.
func TestMuScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		l := make(List, n)
		for i := range l {
			a := rng.Float64() * 10
			l[i] = mk(ID(i), 0.5, a, a+0.5+rng.Float64()*5)
		}
		mu := l.Mu()
		scaled := l.Scale(1 + rng.Float64()*9)
		return math.Abs(mu-scaled.Mu()) < 1e-9*mu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

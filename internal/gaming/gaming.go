// Package gaming synthesizes the paper's motivating workload: a cloud
// gaming provider (Sec. I cites GaiKai) dispatching play requests to
// GPU servers. Each game title demands a fixed share of a server's GPU;
// several instances share a server as long as the GPU is not saturated;
// sessions end when the player stops — unknown at start, exactly the
// MinUsageTime DBP model. No public trace of such a system exists, so
// this package generates synthetic sessions from a configurable title
// catalog with heavy-tailed session lengths (the documented substitution
// in DESIGN.md).
package gaming

import (
	"fmt"
	"math/rand"

	"dbp/internal/item"
	"dbp/internal/workload"
)

// Title is one game in the provider's catalog.
type Title struct {
	Name string
	// GPUShare is the fraction of one server's GPU a session needs.
	GPUShare float64
	// Session is the distribution of session lengths (minutes).
	Session workload.Dist
	// Popularity is the relative request rate of the title.
	Popularity float64
}

// DefaultCatalog models a provider with four tiers of games. Session
// lengths are bounded Pareto — most sessions are short, some run for
// hours — with a 5-minute minimum and a 300-minute cap, giving mu = 60.
func DefaultCatalog() []Title {
	session := func(alpha float64) workload.Dist {
		return workload.BoundedPareto{Alpha: alpha, Lo: 5, Hi: 300}
	}
	return []Title{
		{Name: "casual-puzzle", GPUShare: 0.125, Session: session(1.8), Popularity: 4},
		{Name: "indie-platformer", GPUShare: 0.25, Session: session(1.5), Popularity: 3},
		{Name: "aaa-shooter", GPUShare: 0.5, Session: session(1.2), Popularity: 2},
		{Name: "open-world-rpg", GPUShare: 0.75, Session: session(1.0), Popularity: 1},
	}
}

// Config describes a session-generation run.
type Config struct {
	Catalog []Title
	// Rate is the request arrival rate (sessions per minute), a Poisson
	// process across the whole catalog.
	Rate float64
	N    int
	Seed int64
}

// MuBound returns the max/min session length ratio over the catalog.
func (c Config) MuBound() float64 {
	lo, hi := 0.0, 0.0
	for i, t := range c.Catalog {
		tlo, thi := t.Session.Bounds()
		if i == 0 || tlo < lo {
			lo = tlo
		}
		if thi > hi {
			hi = thi
		}
	}
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// Sessions generates the play-request stream as a DBP instance: item size
// = the requested title's GPU share, item interval = the session.
// TitleOf reports which title each generated item plays.
func Sessions(c Config) (item.List, map[item.ID]string) {
	if len(c.Catalog) == 0 || c.N <= 0 || c.Rate <= 0 {
		panic(fmt.Sprintf("gaming: bad config %+v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var totalPop float64
	for _, t := range c.Catalog {
		totalPop += t.Popularity
	}
	l := make(item.List, c.N)
	titles := make(map[item.ID]string, c.N)
	now := 0.0
	for i := range l {
		now += rng.ExpFloat64() / c.Rate
		// Pick a title by popularity.
		x := rng.Float64() * totalPop
		t := c.Catalog[len(c.Catalog)-1]
		for _, cand := range c.Catalog {
			x -= cand.Popularity
			if x <= 0 {
				t = cand
				break
			}
		}
		dur := t.Session.Sample(rng)
		id := item.ID(i + 1)
		l[i] = item.Item{ID: id, Size: t.GPUShare, Arrival: now, Departure: now + dur}
		titles[id] = t.Name
	}
	return l, titles
}

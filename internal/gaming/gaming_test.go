package gaming

import (
	"testing"

	"dbp/internal/packing"
)

func TestDefaultCatalogShape(t *testing.T) {
	cat := DefaultCatalog()
	if len(cat) != 4 {
		t.Fatalf("catalog size %d", len(cat))
	}
	for _, title := range cat {
		if title.GPUShare <= 0 || title.GPUShare > 1 {
			t.Errorf("%s: GPU share %g out of range", title.Name, title.GPUShare)
		}
		lo, hi := title.Session.Bounds()
		if lo != 5 || hi != 300 {
			t.Errorf("%s: session bounds [%g, %g]", title.Name, lo, hi)
		}
	}
}

func TestSessionsValidAndDeterministic(t *testing.T) {
	cfg := Config{Catalog: DefaultCatalog(), Rate: 0.5, N: 300, Seed: 9}
	l, titles := Sessions(cfg)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l) != 300 || len(titles) != 300 {
		t.Fatalf("generated %d items, %d titles", len(l), len(titles))
	}
	if mu := l.Mu(); mu > cfg.MuBound() {
		t.Fatalf("realized mu %g exceeds catalog bound %g", mu, cfg.MuBound())
	}
	if cfg.MuBound() != 60 {
		t.Fatalf("default catalog mu bound = %g, want 60", cfg.MuBound())
	}
	l2, _ := Sessions(cfg)
	for i := range l {
		if l[i].ID != l2[i].ID || l[i].Size != l2[i].Size ||
			l[i].Arrival != l2[i].Arrival || l[i].Departure != l2[i].Departure {
			t.Fatal("same seed must reproduce sessions")
		}
	}
	// Sizes must come from the catalog.
	valid := map[float64]bool{0.125: true, 0.25: true, 0.5: true, 0.75: true}
	for _, it := range l {
		if !valid[it.Size] {
			t.Fatalf("item size %g not a catalog GPU share", it.Size)
		}
	}
}

func TestSessionsPopularityBias(t *testing.T) {
	l, titles := Sessions(Config{Catalog: DefaultCatalog(), Rate: 1, N: 4000, Seed: 4})
	counts := map[string]int{}
	for _, it := range l {
		counts[titles[it.ID]]++
	}
	if counts["casual-puzzle"] <= counts["open-world-rpg"] {
		t.Fatalf("popularity weighting broken: %v", counts)
	}
}

func TestSessionsDispatchable(t *testing.T) {
	l, _ := Sessions(Config{Catalog: DefaultCatalog(), Rate: 0.2, N: 200, Seed: 2})
	res, err := packing.Run(packing.NewFirstFit(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.NumBins() == 0 {
		t.Fatal("no servers used")
	}
}

func TestSessionsPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sessions(Config{})
}

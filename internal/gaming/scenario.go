package gaming

import (
	"fmt"

	"dbp/internal/item"
	"dbp/internal/workload"
)

// The gaming scenario registers itself with the workload registry from
// this package (not from workload, which it imports — the usual
// driver-registration pattern): any binary that imports gaming, directly
// or via cliutil, can select "gaming" by spec string.

type scenario struct{}

func (scenario) Name() string { return "gaming" }
func (scenario) Description() string {
	return "cloud-gaming sessions from the default GPU title catalog (mu fixed at 60 by the catalog)"
}
func (scenario) Kind() workload.ScenarioKind { return workload.KindStatistical }
func (scenario) Params() []workload.Param    { return nil }

func (scenario) Generate(req workload.Request) (item.List, error) {
	if req.Dim > 1 {
		return nil, workload.ErrScalarOnly
	}
	if req.N <= 0 || req.Rate <= 0 {
		return nil, fmt.Errorf("need n > 0 and rate > 0")
	}
	l, _ := Sessions(Config{Catalog: DefaultCatalog(), Rate: req.Rate, N: req.N, Seed: req.Seed})
	return l, nil
}

func init() { workload.Register(scenario{}) }

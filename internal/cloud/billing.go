// Package cloud maps packing results to money: the renting cost of the
// servers (bins) under pay-as-you-go billing. The paper's objective —
// total bin usage time — is the continuous idealization of per-hour
// billing on public clouds (Sec. I: on-demand instances "are normally
// charged according to their running hours"); this package quantizes each
// server's running time to a billing granularity and reports how far real
// invoices sit from the idealized usage-time objective (experiment E8).
package cloud

import (
	"fmt"
	"math"

	"dbp/internal/packing"
)

// BillingModel describes a pay-as-you-go price plan.
type BillingModel struct {
	// Granularity is the billing quantum in workload time units: each
	// server is charged for ceil(runtime/Granularity) quanta (every
	// started quantum is paid in full, as with per-hour billing).
	// Granularity 0 means continuous billing (pay exactly runtime).
	Granularity float64
	// Rate is the price per time unit of rented server time.
	Rate float64
}

// Hourly returns the classic per-hour plan, expressed in a workload whose
// time unit is unitsPerHour-th of an hour (e.g. pass 60 for minutes).
func Hourly(rate float64, unitsPerHour float64) BillingModel {
	return BillingModel{Granularity: unitsPerHour, Rate: rate / unitsPerHour}
}

// BilledTime returns the billed time for one server running for the given
// duration: the duration rounded up to whole quanta (or unchanged under
// continuous billing). Zero-duration rentals are free.
func (m BillingModel) BilledTime(runtime float64) float64 {
	if runtime <= 0 {
		return 0
	}
	if m.Granularity <= 0 {
		return runtime
	}
	return math.Ceil(runtime/m.Granularity-1e-12) * m.Granularity
}

// Invoice is the cost breakdown of one packing run under a billing model.
type Invoice struct {
	Model      BillingModel
	Servers    int
	UsageTime  float64 // the MinUsageTime objective (sum of runtimes)
	BilledTime float64 // sum of quantized runtimes
	Total      float64 // BilledTime * Rate
}

// Overhead returns the relative billing overhead (BilledTime/UsageTime -
// 1): how much the quantization inflates cost over the idealized
// objective. It is 0 under continuous billing and tends to 0 as runtimes
// grow long relative to the granularity.
func (iv Invoice) Overhead() float64 {
	if iv.UsageTime == 0 {
		return 0
	}
	return iv.BilledTime/iv.UsageTime - 1
}

// String renders the invoice.
func (iv Invoice) String() string {
	return fmt.Sprintf("%d servers, usage %.6g, billed %.6g (overhead %.2f%%), total %.6g",
		iv.Servers, iv.UsageTime, iv.BilledTime, 100*iv.Overhead(), iv.Total)
}

// Cost computes the invoice for a completed packing run.
func Cost(res *packing.Result, m BillingModel) Invoice {
	iv := Invoice{Model: m, Servers: res.NumBins(), UsageTime: res.TotalUsage}
	for _, b := range res.Bins {
		iv.BilledTime += m.BilledTime(b.Usage())
	}
	iv.Total = iv.BilledTime * m.Rate
	return iv
}

// TierRate prices one fleet capacity tier.
type TierRate struct {
	Capacity float64
	Rate     float64 // price per time unit for servers of this capacity
}

// RatePlan prices a heterogeneous fleet: each server is billed at its
// capacity tier's rate, quantized to Granularity like BillingModel.
// Real catalogs price sub-linearly in capacity (a 2x server costs less
// than 2x), which is exactly the tension experiment E14 measures.
type RatePlan struct {
	Granularity float64
	Tiers       []TierRate
}

// rateFor returns the rate of the tier matching the capacity (within the
// admission tolerance); unknown capacities fall back to linear
// interpolation against the largest tier, keeping misconfigured runs
// visible rather than free.
func (p RatePlan) rateFor(capacity float64) float64 {
	best := -1
	for i, t := range p.Tiers {
		if math.Abs(t.Capacity-capacity) < 1e-9 {
			return p.Tiers[i].Rate
		}
		if best < 0 || t.Capacity > p.Tiers[best].Capacity {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return p.Tiers[best].Rate * capacity / p.Tiers[best].Capacity
}

// CostFleet prices a heterogeneous-fleet run: per-server billed time at
// the server's tier rate.
func CostFleet(res *packing.Result, p RatePlan) Invoice {
	m := BillingModel{Granularity: p.Granularity}
	iv := Invoice{Model: m, Servers: res.NumBins(), UsageTime: res.TotalUsage}
	for _, b := range res.Bins {
		billed := m.BilledTime(b.Usage())
		iv.BilledTime += billed
		iv.Total += billed * p.rateFor(b.Capacity)
	}
	return iv
}

package cloud

import (
	"math"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

func TestBilledTimeQuantization(t *testing.T) {
	m := BillingModel{Granularity: 1, Rate: 1}
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.1, 1}, {1, 1}, {1.0001, 2}, {2.5, 3}, {3, 3},
	}
	for _, c := range cases {
		if got := m.BilledTime(c.in); got != c.want {
			t.Errorf("BilledTime(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	cont := BillingModel{Granularity: 0, Rate: 1}
	if got := cont.BilledTime(2.34); got != 2.34 {
		t.Errorf("continuous billing must be exact, got %g", got)
	}
}

func TestBilledTimeExactMultipleNoOvercharge(t *testing.T) {
	// Floating point must not push an exact 7*0.25 runtime into an 8th
	// quantum.
	m := BillingModel{Granularity: 0.25, Rate: 1}
	if got := m.BilledTime(7 * 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("BilledTime = %g, want 1.75", got)
	}
}

func TestHourly(t *testing.T) {
	// Time unit = minutes; $0.60/hour.
	m := Hourly(0.60, 60)
	if m.Granularity != 60 {
		t.Fatal("granularity must be one hour in minutes")
	}
	// 90 minutes -> billed 120 minutes -> $1.20.
	if got := m.BilledTime(90) * m.Rate; math.Abs(got-1.20) > 1e-12 {
		t.Fatalf("cost = %g, want 1.20", got)
	}
}

func TestCostInvoice(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 1, Arrival: 0, Departure: 1.5},
		{ID: 2, Size: 1, Arrival: 0, Departure: 2},
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	iv := Cost(res, BillingModel{Granularity: 1, Rate: 2})
	if iv.Servers != 2 || iv.UsageTime != 3.5 {
		t.Fatalf("invoice = %+v", iv)
	}
	if iv.BilledTime != 4 { // ceil(1.5)=2, ceil(2)=2
		t.Fatalf("billed = %g, want 4", iv.BilledTime)
	}
	if iv.Total != 8 {
		t.Fatalf("total = %g, want 8", iv.Total)
	}
	if math.Abs(iv.Overhead()-(4/3.5-1)) > 1e-12 {
		t.Fatalf("overhead = %g", iv.Overhead())
	}
	if iv.String() == "" {
		t.Fatal("empty String")
	}
}

func TestOverheadShrinksWithFinerGranularity(t *testing.T) {
	l := workload.Generate(workload.UniformConfig(200, 2, 6, 3))
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	var prev = math.Inf(1)
	for _, g := range []float64{2, 1, 0.25, 0.01, 0} {
		iv := Cost(res, BillingModel{Granularity: g, Rate: 1})
		if iv.Overhead() > prev+1e-9 {
			t.Fatalf("overhead must shrink with granularity %g: %g > %g", g, iv.Overhead(), prev)
		}
		prev = iv.Overhead()
		if iv.BilledTime < iv.UsageTime-1e-9 {
			t.Fatal("billing can never undercut usage")
		}
	}
	if math.Abs(prev) > 1e-12 {
		t.Fatalf("continuous billing overhead must vanish, got %g", prev)
	}
}

func TestZeroUsageInvoice(t *testing.T) {
	res := packing.MustRun(packing.NewFirstFit(), item.List{}, nil)
	iv := Cost(res, BillingModel{Granularity: 1, Rate: 1})
	if iv.Total != 0 || iv.Overhead() != 0 {
		t.Fatalf("empty invoice = %+v", iv)
	}
}

func TestRatePlanTierMatching(t *testing.T) {
	p := RatePlan{Granularity: 1, Tiers: []TierRate{
		{Capacity: 0.25, Rate: 0.3},
		{Capacity: 1.0, Rate: 1.0},
	}}
	if got := p.rateFor(0.25); got != 0.3 {
		t.Fatalf("rate = %g", got)
	}
	if got := p.rateFor(1.0); got != 1.0 {
		t.Fatalf("rate = %g", got)
	}
	// Unknown capacity: linear fallback against the largest tier.
	if got := p.rateFor(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fallback rate = %g, want 0.5", got)
	}
}

func TestCostFleetBillsPerTier(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.2, Arrival: 0, Departure: 1.5},
		{ID: 2, Size: 0.9, Arrival: 0, Departure: 1.5},
	}
	fleet := []packing.ServerType{
		{Name: "small", Capacity: 0.25},
		{Name: "large", Capacity: 1.0},
	}
	res, err := packing.RunFleet(packing.NewFirstFit(), l, fleet, packing.RightSize(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := RatePlan{Granularity: 1, Tiers: []TierRate{
		{Capacity: 0.25, Rate: 0.3},
		{Capacity: 1.0, Rate: 1.0},
	}}
	iv := CostFleet(res, p)
	// Both servers billed ceil(1.5) = 2: small 2*0.3 + large 2*1.0 = 2.6.
	if math.Abs(iv.Total-2.6) > 1e-12 {
		t.Fatalf("total = %g, want 2.6", iv.Total)
	}
	if iv.BilledTime != 4 {
		t.Fatalf("billed = %g", iv.BilledTime)
	}
}

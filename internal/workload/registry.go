package workload

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dbp/internal/item"
)

// The scenario registry (YCSB's Workloads-map pattern): every workload
// family this repo can generate — statistical shapes, the paper's
// adversarial constructions, and trace replay — registers itself here
// under a stable name with a one-line description and a typed parameter
// schema. Consumers (the load driver, the experiment tables, the five
// CLIs, the equivalence suite) select workloads exclusively by spec
// string, so a new family joins every pipeline by registration alone.
//
// A spec is "name" or "name:key=value,key=value"; the trace scenario
// uses "trace:<path>" (the remainder is the file path, .gz transparent).

// ErrScalarOnly is returned by Generate when a scenario has no
// vector-demand form and the request asks for Dim > 1. Sweeps over the
// registry use errors.Is to skip such scenarios rather than fail.
var ErrScalarOnly = errors.New("workload: scenario has no vector-demand form")

// ScenarioKind classifies a scenario for sweeps that want a family
// subset (e.g. E9 iterates the statistical families only — adversarial
// constructions would swamp a mean-ratio table by design).
type ScenarioKind int

const (
	// KindStatistical marks random-arrival families (seeded, rate/mu
	// driven) suitable for mean-ratio sweeps.
	KindStatistical ScenarioKind = iota
	// KindAdversarial marks the paper's lower-bound constructions:
	// deterministic, seed- and rate-insensitive.
	KindAdversarial
	// KindTrace marks replay of an external trace file.
	KindTrace
)

// String names the kind for listings.
func (k ScenarioKind) String() string {
	switch k {
	case KindStatistical:
		return "statistical"
	case KindAdversarial:
		return "adversarial"
	default:
		return "trace"
	}
}

// ParamKind types a scenario parameter.
type ParamKind int

const (
	ParamFloat ParamKind = iota
	ParamInt
	ParamString
)

// Param is one entry of a scenario's parameter schema: a named, typed,
// documented knob with a default, settable via "name:key=value,...".
type Param struct {
	Name    string
	Kind    ParamKind
	Default string
	Doc     string
}

// Request carries the common generation knobs every scenario receives
// plus the validated parameter values (defaults overlaid with the spec's
// key=value overrides).
type Request struct {
	N      int
	Rate   float64
	Mu     float64
	Seed   int64
	Dim    int
	params map[string]string
}

// Float returns a float parameter. The value was validated at Lookup
// time; asking for an undeclared parameter is a scenario bug and panics.
func (r Request) Float(name string) float64 {
	v, err := strconv.ParseFloat(r.param(name), 64)
	if err != nil {
		panic(fmt.Sprintf("workload: param %q is not a float: %v", name, err))
	}
	return v
}

// Int returns an integer parameter.
func (r Request) Int(name string) int {
	v, err := strconv.Atoi(r.param(name))
	if err != nil {
		panic(fmt.Sprintf("workload: param %q is not an int: %v", name, err))
	}
	return v
}

// Str returns a string parameter.
func (r Request) Str(name string) string { return r.param(name) }

func (r Request) param(name string) string {
	v, ok := r.params[name]
	if !ok {
		panic(fmt.Sprintf("workload: scenario read undeclared param %q", name))
	}
	return v
}

// Scenario is a named, self-describing workload family. Implementations
// must be deterministic given (Request.Seed, params) and must return
// ErrScalarOnly (wrapped is fine) when Dim > 1 is requested but
// unsupported.
type Scenario interface {
	Name() string
	Description() string
	Kind() ScenarioKind
	Params() []Param
	Generate(req Request) (item.List, error)
}

var registry = map[string]Scenario{}

// Register adds a scenario to the package registry. Duplicate names and
// malformed parameter defaults are programmer errors and panic; the
// package's own scenarios register from init, so any mistake fails the
// first test run.
func Register(s Scenario) {
	name := s.Name()
	if name == "" || strings.ContainsAny(name, ": ,=") {
		panic(fmt.Sprintf("workload: invalid scenario name %q", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: scenario %q registered twice", name))
	}
	for _, p := range s.Params() {
		if err := checkParamValue(p, p.Default); err != nil {
			panic(fmt.Sprintf("workload: scenario %q default: %v", name, err))
		}
	}
	registry[name] = s
}

// checkParamValue verifies a value parses as the parameter's kind.
func checkParamValue(p Param, v string) error {
	switch p.Kind {
	case ParamFloat:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("param %s=%q: not a float", p.Name, v)
		}
	case ParamInt:
		if _, err := strconv.Atoi(v); err != nil {
			return fmt.Errorf("param %s=%q: not an int", p.Name, v)
		}
	}
	return nil
}

// Scenarios returns every registered scenario sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Statistical returns the registered statistical scenarios sorted by
// name — the family the mean-ratio experiment sweeps iterate.
func Statistical() []Scenario {
	var out []Scenario
	for _, s := range Scenarios() {
		if s.Kind() == KindStatistical {
			out = append(out, s)
		}
	}
	return out
}

// Names returns the sorted registered scenario names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Instance binds a scenario to validated parameter values, ready to
// generate instances of any size.
type Instance struct {
	Scenario
	params map[string]string
}

// Lookup parses a spec string ("name" or "name:key=value,..." or
// "trace:<path>") against the registry. Unknown names and unknown or
// ill-typed parameters are errors; the unknown-name error enumerates the
// whole registry so a stale CLI invocation is self-correcting.
func Lookup(spec string) (Instance, error) {
	name, rest, hasRest := strings.Cut(spec, ":")
	s, ok := registry[name]
	if !ok {
		return Instance{}, fmt.Errorf("workload: unknown scenario %q; registered scenarios:\n%s", name, Describe())
	}
	schema := map[string]Param{}
	params := map[string]string{}
	for _, p := range s.Params() {
		schema[p.Name] = p
		params[p.Name] = p.Default
	}
	if s.Kind() == KindTrace {
		// The remainder of a trace spec is the file path verbatim (paths
		// may contain '=' and ','; they are not key=value lists).
		params["path"] = rest
		return Instance{Scenario: s, params: params}, nil
	}
	if hasRest && rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Instance{}, fmt.Errorf("workload: %s: malformed param %q (want key=value)", name, kv)
			}
			p, known := schema[k]
			if !known {
				return Instance{}, fmt.Errorf("workload: %s has no param %q (has: %s)", name, k, paramNames(s))
			}
			if err := checkParamValue(p, v); err != nil {
				return Instance{}, fmt.Errorf("workload: %s: %w", name, err)
			}
			params[k] = v
		}
	}
	return Instance{Scenario: s, params: params}, nil
}

// MustLookup is Lookup for specs known at compile time (experiment
// tables); it panics on error.
func MustLookup(spec string) Instance {
	in, err := Lookup(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// Generate produces an instance of the scenario: n jobs arriving at the
// given rate with duration ratio mu, seeded, with dim-dimensional
// demands (dim <= 1 is scalar). Adversarial scenarios interpret n as
// their construction parameter and ignore rate and seed.
func (in Instance) Generate(n int, rate, mu float64, seed int64, dim int) (item.List, error) {
	if dim < 1 {
		dim = 1
	}
	req := Request{N: n, Rate: rate, Mu: mu, Seed: seed, Dim: dim, params: in.params}
	l, err := in.Scenario.Generate(req)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", in.Name(), err)
	}
	return l, nil
}

// FromSpec is the one-call path every consumer uses: resolve the spec
// in the registry and generate.
func FromSpec(spec string, n int, rate, mu float64, seed int64, dim int) (item.List, error) {
	in, err := Lookup(spec)
	if err != nil {
		return nil, err
	}
	return in.Generate(n, rate, mu, seed, dim)
}

// Describe renders the registry as a self-documenting listing: one
// scenario per block with its kind, description, and parameter schema.
// This is the -list-workloads output and the unknown-name error body.
func Describe() string {
	var b strings.Builder
	for _, s := range Scenarios() {
		name := s.Name()
		if s.Kind() == KindTrace {
			name += ":<path>"
		}
		fmt.Fprintf(&b, "  %-16s %-12s %s\n", name, "["+s.Kind().String()+"]", s.Description())
		for _, p := range s.Params() {
			if s.Kind() == KindTrace && p.Name == "path" {
				continue // the path rides in the spec itself
			}
			fmt.Fprintf(&b, "  %-16s   %s=%s — %s\n", "", p.Name, p.Default, p.Doc)
		}
	}
	return b.String()
}

// paramNames lists a scenario's parameter names for error messages.
func paramNames(s Scenario) string {
	ps := s.Params()
	if len(ps) == 0 {
		return "none"
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

package workload_test

// Registry-level tests live in an external package so they can pull in
// scenario providers that themselves import internal/workload (the
// gaming catalog registers via init) and the analysis bounds.

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"dbp/internal/analysis"
	_ "dbp/internal/gaming" // registers the "gaming" scenario
	"dbp/internal/opt"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

const sampleTrace = "testdata/sample.csv.gz"

// specFor turns a registered scenario into a runnable spec (the trace
// scenario needs a path).
func specFor(s workload.Scenario) string {
	if s.Kind() == workload.KindTrace {
		return "trace:" + sampleTrace
	}
	return s.Name()
}

// TestRegistrySmoke generates a small instance from EVERY registered
// scenario at defaults and validates it — the check a new family must
// pass by registration alone. It also pins the self-description
// contract: every name appears in the Describe listing.
func TestRegistrySmoke(t *testing.T) {
	scens := workload.Scenarios()
	if len(scens) < 14 {
		t.Fatalf("registry has %d scenarios, want >= 14 (families missing?)", len(scens))
	}
	listing := workload.Describe()
	for _, s := range scens {
		if s.Description() == "" {
			t.Errorf("%s: empty description", s.Name())
		}
		if !strings.Contains(listing, s.Name()) {
			t.Errorf("Describe() does not list %s", s.Name())
		}
		l, err := workload.FromSpec(specFor(s), 60, 2, 8, 3, 1)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if len(l) == 0 {
			t.Errorf("%s: empty instance", s.Name())
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: invalid instance: %v", s.Name(), err)
		}
	}
}

// TestScenarioSeedDeterminism pins the reproducibility contract: the
// same (spec, seed) yields the identical instance, and for statistical
// scenarios a different seed yields a different one.
func TestScenarioSeedDeterminism(t *testing.T) {
	for _, s := range workload.Scenarios() {
		spec := specFor(s)
		a, err := workload.FromSpec(spec, 80, 2, 8, 42, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := workload.FromSpec(spec, 80, 2, 8, 42, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different instances", s.Name())
		}
		if s.Kind() != workload.KindStatistical {
			continue // adversaries and traces are seed-insensitive by design
		}
		c, err := workload.FromSpec(spec, 80, 2, 8, 43, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds, identical instances", s.Name())
		}
	}
}

// TestScalarOnlyScenarios pins the ErrScalarOnly contract sweeps rely
// on: scenarios without a vector form refuse Dim > 1 with the sentinel.
func TestScalarOnlyScenarios(t *testing.T) {
	if _, err := workload.FromSpec("bursty", 40, 2, 8, 1, 2); !errors.Is(err, workload.ErrScalarOnly) {
		t.Fatalf("bursty dim=2: got %v, want ErrScalarOnly", err)
	}
	if _, err := workload.FromSpec("uniform", 40, 2, 8, 1, 2); err != nil {
		t.Fatalf("uniform dim=2: %v", err)
	}
}

// TestUnknownScenarioError pins the self-correcting error contract:
// unknown names, unknown params, ill-typed and malformed params all
// fail loudly, and the unknown-name error carries the whole registry.
func TestUnknownScenarioError(t *testing.T) {
	_, err := workload.Lookup("nope")
	if err == nil {
		t.Fatal("unknown scenario must error")
	}
	for _, want := range []string{"zipfian", "hotspot", "nextfit-adv", "trace"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-name error does not enumerate %q: %v", want, err)
		}
	}
	for _, spec := range []string{"zipfian:bogus=1", "zipfian:alpha=abc", "zipfian:alpha", "uniform:x=1"} {
		if _, err := workload.Lookup(spec); err == nil {
			t.Errorf("Lookup(%q) must error", spec)
		}
	}
	// Params overlay defaults without mutating the registered schema.
	in := workload.MustLookup("zipfian:alpha=1.9,classes=8")
	l, err := in.Generate(50, 2, 4, 1, 1)
	if err != nil || len(l) != 50 {
		t.Fatalf("parameterized zipfian: %v (%d items)", err, len(l))
	}
}

// TestTraceScenario replays the committed sample through the registry
// path and checks the error cases.
func TestTraceScenario(t *testing.T) {
	l, err := workload.FromSpec("trace:"+sampleTrace, 0, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 40 {
		t.Fatalf("sample trace: %d items, want 40", len(l))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.FromSpec("trace", 0, 0, 0, 0, 1); err == nil {
		t.Fatal("trace without path must error")
	}
	if _, err := workload.FromSpec("trace:/does/not/exist.csv", 0, 0, 0, 0, 1); err == nil {
		t.Fatal("trace with missing file must error")
	}
}

// TestZipfianRankFrequency checks the advertised skew: the empirical
// rank-frequency curve of the sampled size classes follows a power law
// with exponent ~ -alpha (log-log least-squares slope).
func TestZipfianRankFrequency(t *testing.T) {
	c := workload.ZipfianConfig{
		Config:  workload.UniformConfig(20000, 5, 4, 2),
		Alpha:   1.1,
		Classes: 16,
		LoSize:  0.05, HiSize: 0.95,
	}
	l := workload.GenerateZipfian(c, 1)
	counts := make([]int, c.Classes+1)
	for _, it := range l {
		r := c.RankOfSize(it.Size)
		if r < 1 || r > c.Classes {
			t.Fatalf("item size %g maps to rank %d outside [1, %d]", it.Size, r, c.Classes)
		}
		counts[r]++
	}
	// Least squares on (log r, log freq) over ranks with samples.
	var sx, sy, sxx, sxy float64
	n := 0.0
	for r := 1; r <= c.Classes; r++ {
		if counts[r] == 0 {
			continue
		}
		x, y := math.Log(float64(r)), math.Log(float64(counts[r]))
		sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
		n++
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if math.Abs(slope-(-c.Alpha)) > 0.15 {
		t.Fatalf("rank-frequency slope %.3f, want ~ %.3f (+-0.15)", slope, -c.Alpha)
	}
}

// TestHotspotTenantShare checks the tenant-affinity encoding and the
// advertised skew: the hot tenant set receives at least (roughly) the
// configured traffic share, recovered from the job IDs alone.
func TestHotspotTenantShare(t *testing.T) {
	c := workload.HotspotConfig{
		Config:  workload.UniformConfig(20000, 5, 4, 3),
		Tenants: 50, HotFrac: 0.1, HotShare: 0.8,
	}
	l := workload.GenerateHotspot(c, 1)
	hot := c.HotTenants()
	if hot != 5 {
		t.Fatalf("HotTenants() = %d, want 5", hot)
	}
	hotJobs := 0
	for _, it := range l {
		tenant := workload.TenantOf(it.ID, c.Tenants)
		if tenant < 0 || tenant >= c.Tenants {
			t.Fatalf("job %d decodes to tenant %d outside [0, %d)", it.ID, tenant, c.Tenants)
		}
		if tenant < hot {
			hotJobs++
		}
	}
	share := float64(hotJobs) / float64(len(l))
	if share < 0.75 || share > 0.85 {
		t.Fatalf("hot tenant share %.3f, want ~0.8 (binomial noise band [0.75, 0.85])", share)
	}
}

// TestDiurnalPeakTrough checks the modulation actually lands in the
// arrival curve: with amplitude 0.8 the instantaneous rate ratio is 9x,
// so the quarter-cycle around the peak phase must see several times the
// arrivals of the quarter-cycle around the trough.
func TestDiurnalPeakTrough(t *testing.T) {
	c := workload.DiurnalConfig{
		Config:    workload.UniformConfig(20000, 10, 4, 4),
		Amplitude: 0.8,
	}
	l := workload.GenerateDiurnal(c, 1)
	period := c.EffectivePeriod()
	peak, trough := 0, 0
	for _, it := range l {
		phase := math.Mod(it.Arrival, period) / period
		switch {
		case phase >= 0.125 && phase < 0.375: // sin peak at phase 0.25
			peak++
		case phase >= 0.625 && phase < 0.875: // sin trough at phase 0.75
			trough++
		}
	}
	if trough == 0 || float64(peak)/float64(trough) < 3 {
		t.Fatalf("peak/trough arrivals %d/%d, want ratio >= 3 (theoretical 9x rate)", peak, trough)
	}
}

// TestEqualDurationBound checks the Masoori et al. regime: the
// equalduration scenario produces a unit-duration instance (mu = 1) and
// First Fit's measured conservative ratio stays under the equal-duration
// reference constant — far below Theorem 1's mu+4 = 5.
func TestEqualDurationBound(t *testing.T) {
	l, err := workload.FromSpec("equalduration", 300, 3, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range l {
		if d := it.Departure - it.Arrival; math.Abs(d-1) > 1e-12 {
			t.Fatalf("job %d duration %g, want exactly 1", it.ID, d)
		}
	}
	if mu := l.Mu(); math.Abs(mu-1) > 1e-9 {
		t.Fatalf("mu = %g, want 1", mu)
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	b := opt.Total(l, 48, 0)
	ratio := res.TotalUsage / b.Lower
	if bound := analysis.EqualDurationFirstFitBound(); ratio > bound {
		t.Fatalf("FF conservative ratio %.4f exceeds equal-duration reference %.4g", ratio, bound)
	}
}

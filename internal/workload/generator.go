package workload

import (
	"fmt"
	"math/rand"

	"dbp/internal/item"
)

// Config describes a random workload: N jobs arriving by a Poisson process
// of rate Rate (exponential inter-arrival gaps), each with a duration and
// size drawn independently from the given distributions.
type Config struct {
	N        int
	Rate     float64 // arrivals per unit time; must be > 0
	Size     Dist
	Duration Dist
	Seed     int64
}

// MuBound returns the a-priori duration ratio implied by the duration
// distribution's support — an upper bound on the realized mu of any
// generated instance.
func (c Config) MuBound() float64 {
	lo, hi := c.Duration.Bounds()
	return hi / lo
}

// String summarizes the configuration for experiment tables.
func (c Config) String() string {
	return fmt.Sprintf("n=%d rate=%g size=%v dur=%v seed=%d", c.N, c.Rate, c.Size, c.Duration, c.Seed)
}

// Generate produces the instance described by the configuration. Items
// are emitted in arrival order with IDs 1..N. It panics on non-positive N
// or Rate (caller bug, not data).
func Generate(c Config) item.List {
	if c.N <= 0 || c.Rate <= 0 {
		panic(fmt.Sprintf("workload: bad config %v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	l := make(item.List, c.N)
	t := 0.0
	for i := range l {
		t += rng.ExpFloat64() / c.Rate
		d := c.Duration.Sample(rng)
		s := clampSize(c.Size.Sample(rng))
		l[i] = item.Item{ID: item.ID(i + 1), Size: s, Arrival: t, Departure: t + d}
	}
	return l
}

// GenerateVec produces a d-dimensional instance: each job's demand vector
// has independent components from Size, with the scalar Size field set to
// the maximum component (the convention of item.Item). Used by the
// multi-dimensional extension experiment (E10).
func GenerateVec(c Config, d int) item.List {
	if d < 2 {
		panic("workload: GenerateVec needs d >= 2")
	}
	if c.N <= 0 || c.Rate <= 0 {
		panic(fmt.Sprintf("workload: bad config %v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	l := make(item.List, c.N)
	t := 0.0
	for i := range l {
		t += rng.ExpFloat64() / c.Rate
		dur := c.Duration.Sample(rng)
		vec := make([]float64, d)
		maxc := 0.0
		for k := range vec {
			vec[k] = clampSize(c.Size.Sample(rng))
			if vec[k] > maxc {
				maxc = vec[k]
			}
		}
		l[i] = item.Item{ID: item.ID(i + 1), Size: maxc, Sizes: vec, Arrival: t, Departure: t + dur}
	}
	return l
}

// clampSize forces a sampled size into the valid (0, 1] range; the
// distributions used by experiments are already in range, but defensive
// clamping keeps misconfigured sweeps from producing invalid instances.
func clampSize(s float64) float64 {
	if s <= 0 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}

// Presets for experiment sweeps: each returns a Config with the given
// load characteristics. Durations are pinned to [1, mu] so the realized
// duration ratio matches the experiment's x-axis.

// UniformConfig is the baseline workload: uniform sizes and uniform
// durations on [1, mu].
func UniformConfig(n int, rate, mu float64, seed int64) Config {
	return Config{
		N: n, Rate: rate, Seed: seed,
		Size:     Uniform{Lo: 0.05, Hi: 0.95},
		Duration: Uniform{Lo: 1, Hi: mu},
	}
}

// ParetoConfig models heavy-tailed session lengths on [1, mu].
func ParetoConfig(n int, rate, mu float64, seed int64) Config {
	return Config{
		N: n, Rate: rate, Seed: seed,
		Size:     Uniform{Lo: 0.05, Hi: 0.95},
		Duration: BoundedPareto{Alpha: 1.2, Lo: 1, Hi: mu},
	}
}

// BimodalConfig models a short/long job mix: 80% duration-1 jobs, 20%
// duration-mu jobs.
func BimodalConfig(n int, rate, mu float64, seed int64) Config {
	return Config{
		N: n, Rate: rate, Seed: seed,
		Size:     Uniform{Lo: 0.05, Hi: 0.95},
		Duration: Bimodal{A: Constant{V: 1}, B: Constant{V: mu}, PA: 0.8},
	}
}

// SmallItemConfig keeps all sizes at or below 1/2 (the paper's "small"
// class), the regime where First Fit consolidates aggressively.
func SmallItemConfig(n int, rate, mu float64, seed int64) Config {
	return Config{
		N: n, Rate: rate, Seed: seed,
		Size:     Uniform{Lo: 0.05, Hi: 0.5},
		Duration: Uniform{Lo: 1, Hi: mu},
	}
}

// BurstyConfig extends Config with a two-state Markov-modulated Poisson
// arrival process: the source alternates between a calm state (rate
// Config.Rate) and a burst state (rate Config.Rate * BurstFactor), with
// exponential sojourn times. Flash crowds are the regime where online
// dispatching decisions compound — a burst fills servers whose stragglers
// then linger.
type BurstyConfig struct {
	Config
	// BurstFactor multiplies the arrival rate during bursts (> 1).
	BurstFactor float64
	// MeanCalm and MeanBurst are the expected sojourn times in each state.
	MeanCalm, MeanBurst float64
}

// GenerateBursty produces the MMPP instance described by the
// configuration.
func GenerateBursty(c BurstyConfig) item.List {
	if c.N <= 0 || c.Rate <= 0 || c.BurstFactor <= 1 || c.MeanCalm <= 0 || c.MeanBurst <= 0 {
		panic(fmt.Sprintf("workload: bad bursty config %+v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	l := make(item.List, c.N)
	t := 0.0
	inBurst := false
	stateEnd := rng.ExpFloat64() * c.MeanCalm
	for i := range l {
		rate := c.Rate
		if inBurst {
			rate *= c.BurstFactor
		}
		t += rng.ExpFloat64() / rate
		for t > stateEnd {
			inBurst = !inBurst
			if inBurst {
				stateEnd += rng.ExpFloat64() * c.MeanBurst
			} else {
				stateEnd += rng.ExpFloat64() * c.MeanCalm
			}
		}
		d := c.Duration.Sample(rng)
		l[i] = item.Item{ID: item.ID(i + 1), Size: clampSize(c.Size.Sample(rng)), Arrival: t, Departure: t + d}
	}
	return l
}

// Package workload generates problem instances for the MinUsageTime DBP
// experiments: random cloud-like workloads (Poisson arrivals with
// configurable size and duration distributions) and the adversarial
// constructions behind the paper's lower bounds (Sec. VIII's Next Fit
// instance, the Any Fit gap-seal trap, and an adaptive Best Fit relay).
//
// All generation is deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a distribution over positive reals, sampled with an explicit
// random source so generators stay deterministic and parallel-safe.
type Dist interface {
	Sample(rng *rand.Rand) float64
	// Bounds returns the support [lo, hi] of the distribution (used to
	// compute the a-priori mu of a workload).
	Bounds() (lo, hi float64)
	String() string
}

// Constant is the degenerate distribution at V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Bounds implements Dist.
func (c Constant) Bounds() (float64, float64) { return c.V, c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Bounds implements Dist.
func (u Uniform) Bounds() (float64, float64) { return u.Lo, u.Hi }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g]", u.Lo, u.Hi) }

// TruncExp is an exponential distribution with the given Mean, truncated
// (by resampling) to [Lo, Hi] so the workload's duration ratio mu stays
// controlled — the paper's bounds are parameterized by max/min duration,
// so experiment workloads must pin both.
type TruncExp struct{ Mean, Lo, Hi float64 }

// Sample implements Dist.
func (e TruncExp) Sample(rng *rand.Rand) float64 {
	for i := 0; i < 1000; i++ {
		x := rng.ExpFloat64() * e.Mean
		if x >= e.Lo && x <= e.Hi {
			return x
		}
	}
	// Mean far outside [Lo, Hi]: fall back to clamping.
	return math.Min(math.Max(e.Mean, e.Lo), e.Hi)
}

// Bounds implements Dist.
func (e TruncExp) Bounds() (float64, float64) { return e.Lo, e.Hi }

func (e TruncExp) String() string { return fmt.Sprintf("exp(%g)|[%g,%g]", e.Mean, e.Lo, e.Hi) }

// BoundedPareto is a Pareto (power-law) distribution with shape Alpha on
// [Lo, Hi], the classic heavy-tailed model for session lengths: most jobs
// short, a few very long — exactly the regime where large mu matters.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi float64
}

// Sample implements Dist (inverse-CDF method).
func (p BoundedPareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
}

// Bounds implements Dist.
func (p BoundedPareto) Bounds() (float64, float64) { return p.Lo, p.Hi }

func (p BoundedPareto) String() string {
	return fmt.Sprintf("pareto(%g)|[%g,%g]", p.Alpha, p.Lo, p.Hi)
}

// Bimodal mixes two distributions: A with probability PA, otherwise B.
// Typical use: many short jobs, few long ones.
type Bimodal struct {
	A, B Dist
	PA   float64
}

// Sample implements Dist.
func (b Bimodal) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < b.PA {
		return b.A.Sample(rng)
	}
	return b.B.Sample(rng)
}

// Bounds implements Dist.
func (b Bimodal) Bounds() (float64, float64) {
	alo, ahi := b.A.Bounds()
	blo, bhi := b.B.Bounds()
	return math.Min(alo, blo), math.Max(ahi, bhi)
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(%.2f:%v, %v)", b.PA, b.A, b.B)
}

// Choice picks uniformly (or with Weights) from a fixed set of values —
// the natural model for a catalog of instance types or game titles with
// fixed resource demands.
type Choice struct {
	Values  []float64
	Weights []float64 // optional; uniform when nil
}

// Sample implements Dist.
func (c Choice) Sample(rng *rand.Rand) float64 {
	if len(c.Weights) == 0 {
		return c.Values[rng.Intn(len(c.Values))]
	}
	var total float64
	for _, w := range c.Weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range c.Weights {
		x -= w
		if x <= 0 {
			return c.Values[i]
		}
	}
	return c.Values[len(c.Values)-1]
}

// Bounds implements Dist.
func (c Choice) Bounds() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range c.Values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return lo, hi
}

func (c Choice) String() string { return fmt.Sprintf("choice(%v)", c.Values) }

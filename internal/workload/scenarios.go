package workload

import (
	"fmt"

	"dbp/internal/item"
	"dbp/internal/trace"
)

// scenarioDef is the concrete Scenario used for every family this
// package registers: a name, description, kind, schema, a vector-support
// flag, and the generate hook.
type scenarioDef struct {
	name, desc string
	kind       ScenarioKind
	params     []Param
	vector     bool
	gen        func(req Request) (item.List, error)
}

func (s *scenarioDef) Name() string        { return s.name }
func (s *scenarioDef) Description() string { return s.desc }
func (s *scenarioDef) Kind() ScenarioKind  { return s.kind }
func (s *scenarioDef) Params() []Param     { return append([]Param(nil), s.params...) }

func (s *scenarioDef) Generate(req Request) (item.List, error) {
	if req.Dim > 1 && !s.vector {
		return nil, ErrScalarOnly
	}
	return s.gen(req)
}

// fromConfig adapts the package's Config-based generators (scalar and
// vector paths) into a scenario generate hook.
func fromConfig(build func(req Request) Config) func(req Request) (item.List, error) {
	return func(req Request) (item.List, error) {
		c := build(req)
		if req.N <= 0 || req.Rate <= 0 {
			return nil, fmt.Errorf("need n > 0 and rate > 0 (got n=%d rate=%g)", req.N, req.Rate)
		}
		if req.Dim > 1 {
			return GenerateVec(c, req.Dim), nil
		}
		return Generate(c), nil
	}
}

func init() {
	Register(&scenarioDef{
		name: "uniform", kind: KindStatistical, vector: true,
		desc: "baseline: Poisson arrivals, uniform sizes [0.05,0.95], uniform durations [1,mu]",
		gen: fromConfig(func(req Request) Config {
			return UniformConfig(req.N, req.Rate, req.Mu, req.Seed)
		}),
	})
	Register(&scenarioDef{
		name: "pareto", kind: KindStatistical, vector: true,
		desc: "heavy-tailed session lengths: bounded Pareto(1.2) durations on [1,mu]",
		gen: fromConfig(func(req Request) Config {
			return ParetoConfig(req.N, req.Rate, req.Mu, req.Seed)
		}),
	})
	Register(&scenarioDef{
		name: "bimodal", kind: KindStatistical, vector: true,
		desc: "short/long job mix: 80% duration-1 jobs, 20% duration-mu jobs",
		gen: fromConfig(func(req Request) Config {
			return BimodalConfig(req.N, req.Rate, req.Mu, req.Seed)
		}),
	})
	Register(&scenarioDef{
		name: "smallitem", kind: KindStatistical, vector: true,
		desc: "all sizes <= 1/2 (the paper's small-item class, First Fit's consolidation regime)",
		gen: fromConfig(func(req Request) Config {
			return SmallItemConfig(req.N, req.Rate, req.Mu, req.Seed)
		}),
	})
	Register(&scenarioDef{
		name: "equalduration", kind: KindStatistical, vector: true,
		desc: "every job runs exactly 1 time unit (mu collapses to 1; Masoori et al. bounds apply)",
		gen: fromConfig(func(req Request) Config {
			return Config{
				N: req.N, Rate: req.Rate, Seed: req.Seed,
				Size:     Uniform{Lo: 0.05, Hi: 0.95},
				Duration: Constant{V: 1},
			}
		}),
	})
	Register(&scenarioDef{
		name: "bursty", kind: KindStatistical, vector: false,
		desc: "two-state MMPP arrivals: calm/burst flash crowds over uniform sizes and durations",
		params: []Param{
			{Name: "factor", Kind: ParamFloat, Default: "10", Doc: "burst-state rate multiplier (> 1)"},
			{Name: "calm", Kind: ParamFloat, Default: "30", Doc: "mean sojourn time in the calm state"},
			{Name: "burst", Kind: ParamFloat, Default: "3", Doc: "mean sojourn time in the burst state"},
		},
		gen: func(req Request) (item.List, error) {
			c := BurstyConfig{
				Config:      UniformConfig(req.N, req.Rate, req.Mu, req.Seed),
				BurstFactor: req.Float("factor"),
				MeanCalm:    req.Float("calm"),
				MeanBurst:   req.Float("burst"),
			}
			if req.N <= 0 || req.Rate <= 0 || c.BurstFactor <= 1 || c.MeanCalm <= 0 || c.MeanBurst <= 0 {
				return nil, fmt.Errorf("need n, rate > 0, factor > 1, calm, burst > 0 (got %+v)", c)
			}
			return GenerateBursty(c), nil
		},
	})
	Register(&scenarioDef{
		name: "diurnal", kind: KindStatistical, vector: true,
		desc: "sinusoid-modulated arrival curve (day/night cycle) over uniform sizes and durations",
		params: []Param{
			{Name: "amp", Kind: ParamFloat, Default: "0.8", Doc: "modulation depth in [0, 0.95]; 0.8 = 9x peak/trough"},
			{Name: "period", Kind: ParamFloat, Default: "0", Doc: "cycle length in time units (0 = auto: ~4 cycles per instance)"},
		},
		gen: func(req Request) (item.List, error) {
			c := DiurnalConfig{
				Config:    UniformConfig(req.N, req.Rate, req.Mu, req.Seed),
				Amplitude: req.Float("amp"),
				Period:    req.Float("period"),
			}
			if req.N <= 0 || req.Rate <= 0 || c.Amplitude < 0 || c.Amplitude > 0.95 {
				return nil, fmt.Errorf("need n, rate > 0 and amp in [0, 0.95]")
			}
			return GenerateDiurnal(c, req.Dim), nil
		},
	})
	Register(&scenarioDef{
		name: "zipfian", kind: KindStatistical, vector: true,
		desc: "Zipf-skewed size classes: a few small flavors dominate, large flavors are rare",
		params: []Param{
			{Name: "alpha", Kind: ParamFloat, Default: "1.1", Doc: "skew exponent (> 0); frequency of rank r ~ r^-alpha"},
			{Name: "classes", Kind: ParamInt, Default: "16", Doc: "number of size classes (>= 2)"},
		},
		gen: func(req Request) (item.List, error) {
			c := ZipfianConfig{
				Config:  UniformConfig(req.N, req.Rate, req.Mu, req.Seed),
				Alpha:   req.Float("alpha"),
				Classes: req.Int("classes"),
				LoSize:  0.05, HiSize: 0.95,
			}
			if req.N <= 0 || req.Rate <= 0 || c.Alpha <= 0 || c.Classes < 2 {
				return nil, fmt.Errorf("need n, rate > 0, alpha > 0, classes >= 2")
			}
			return GenerateZipfian(c, req.Dim), nil
		},
	})
	Register(&scenarioDef{
		name: "hotspot", kind: KindStatistical, vector: true,
		desc: "tenant skew: a few hot tenants carry most traffic; job IDs encode tenant affinity",
		params: []Param{
			{Name: "tenants", Kind: ParamInt, Default: "50", Doc: "tenant population (>= 2)"},
			{Name: "hot", Kind: ParamFloat, Default: "0.1", Doc: "fraction of tenants that are hot, in (0, 1)"},
			{Name: "share", Kind: ParamFloat, Default: "0.8", Doc: "fraction of traffic routed to hot tenants, in (0, 1]"},
		},
		gen: func(req Request) (item.List, error) {
			c := HotspotConfig{
				Config:   UniformConfig(req.N, req.Rate, req.Mu, req.Seed),
				Tenants:  req.Int("tenants"),
				HotFrac:  req.Float("hot"),
				HotShare: req.Float("share"),
			}
			if req.N <= 0 || req.Rate <= 0 || c.Tenants < 2 ||
				c.HotFrac <= 0 || c.HotFrac >= 1 || c.HotShare <= 0 || c.HotShare > 1 {
				return nil, fmt.Errorf("need n, rate > 0, tenants >= 2, hot in (0,1), share in (0,1]")
			}
			return GenerateHotspot(c, req.Dim), nil
		},
	})
	Register(&scenarioDef{
		name: "stress", kind: KindAdversarial, vector: false,
		desc: "First Fit small-item stress: deterministic overlapping waves that chain usage periods (E1/E7's workload)",
		params: []Param{
			{Name: "wave", Kind: ParamInt, Default: "12", Doc: "small items per wave; waves repeat every mu-1 time units"},
		},
		gen: func(req Request) (item.List, error) {
			w := req.Int("wave")
			if w < 1 || req.N < 1 || req.Mu <= 1 {
				return nil, fmt.Errorf("need wave >= 1, n >= 1, mu > 1")
			}
			rounds := req.N / w
			if rounds < 1 {
				rounds = 1
			}
			return FirstFitSmallItemStress(w, rounds, req.Mu), nil
		},
	})
	Register(&scenarioDef{
		name: "nextfit-adv", kind: KindAdversarial, vector: false,
		desc: "Sec. VIII construction: n half/sliver pairs forcing Next Fit to ratio ~2mu (n = pair count)",
		gen: func(req Request) (item.List, error) {
			if req.N < 3 || req.Mu < 1 {
				return nil, fmt.Errorf("need n >= 3 pairs and mu >= 1")
			}
			return NextFitAdversary(req.N, req.Mu), nil
		},
	})
	Register(&scenarioDef{
		name: "anyfit-trap", kind: KindAdversarial, vector: false,
		desc: "gap-seal trap pinning First/Best Fit near the universal lower bound mu (n = victim bins)",
		gen: func(req Request) (item.List, error) {
			if req.N < 2 || req.Mu < 1 {
				return nil, fmt.Errorf("need n >= 2 victims and mu >= 1")
			}
			return AnyFitTrap(req.N, req.Mu), nil
		},
	})
	Register(&scenarioDef{
		name: "bestfit-relay", kind: KindAdversarial, vector: false,
		desc: "adaptive relay degrading Best Fit toward k(mu-1)/(k+mu); needs mu >= 2 (n is ignored)",
		params: []Param{
			{Name: "victims", Kind: ParamInt, Default: "6", Doc: "victim bins k (>= 2)"},
			{Name: "rounds", Kind: ParamInt, Default: "4", Doc: "relay rounds (>= 1)"},
		},
		gen: func(req Request) (item.List, error) {
			k, rounds := req.Int("victims"), req.Int("rounds")
			if k < 2 || rounds < 1 || req.Mu < 2 {
				return nil, fmt.Errorf("need victims >= 2, rounds >= 1, mu >= 2")
			}
			return BestFitRelay(k, rounds, req.Mu), nil
		},
	})
	Register(&scenarioDef{
		name: "trace", kind: KindTrace, vector: false,
		desc: "replay a stored trace (CSV/JSON, .gz transparent); n, rate, mu, seed are ignored",
		params: []Param{
			{Name: "path", Kind: ParamString, Default: "", Doc: "trace file path"},
		},
		gen: func(req Request) (item.List, error) {
			path := req.Str("path")
			if path == "" {
				return nil, fmt.Errorf("trace scenario needs a path (spec: trace:<path>)")
			}
			return trace.ReadFile(path)
		},
	})
}

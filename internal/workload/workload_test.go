package workload

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
	"dbp/internal/opt"
	"dbp/internal/packing"
)

func TestDistributionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []Dist{
		Constant{V: 3},
		Uniform{Lo: 1, Hi: 5},
		TruncExp{Mean: 2, Lo: 1, Hi: 8},
		BoundedPareto{Alpha: 1.5, Lo: 1, Hi: 16},
		Bimodal{A: Constant{V: 1}, B: Constant{V: 9}, PA: 0.5},
		Choice{Values: []float64{0.25, 0.5, 1}},
		Choice{Values: []float64{0.25, 0.5}, Weights: []float64{9, 1}},
	}
	for _, d := range dists {
		lo, hi := d.Bounds()
		for i := 0; i < 2000; i++ {
			x := d.Sample(rng)
			if x < lo-1e-12 || x > hi+1e-12 {
				t.Fatalf("%v sampled %g outside [%g, %g]", d, x, lo, hi)
			}
		}
		if d.String() == "" {
			t.Errorf("%T has empty String", d)
		}
	}
}

func TestTruncExpDegenerateMean(t *testing.T) {
	// Mean far outside [Lo, Hi]: fallback clamp must stay in range.
	d := TruncExp{Mean: 1e9, Lo: 1, Hi: 2}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := d.Sample(rng)
		if x < 1 || x > 2 {
			t.Fatalf("sample %g out of range", x)
		}
	}
}

func TestChoiceWeights(t *testing.T) {
	d := Choice{Values: []float64{0.1, 0.9}, Weights: []float64{99, 1}}
	rng := rand.New(rand.NewSource(3))
	heavy := 0
	for i := 0; i < 10000; i++ {
		if d.Sample(rng) == 0.1 {
			heavy++
		}
	}
	if heavy < 9700 {
		t.Errorf("weight 99:1 produced only %d/10000 heavy samples", heavy)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	c := UniformConfig(500, 2.0, 8, 42)
	a := Generate(c)
	b := Generate(c)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !sameItem(a[i], b[i]) {
			t.Fatal("same seed must generate identical instances")
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatal("arrivals must be non-decreasing")
		}
	}
	if mu := a.Mu(); mu > c.MuBound()+1e-9 {
		t.Fatalf("realized mu %g exceeds bound %g", mu, c.MuBound())
	}
	diff := Generate(Config{N: 500, Rate: 2, Seed: 43, Size: c.Size, Duration: c.Duration})
	same := true
	for i := range a {
		if !sameItem(a[i], diff[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func sameItem(a, b item.Item) bool {
	return a.ID == b.ID && a.Size == b.Size && a.Arrival == b.Arrival && a.Departure == b.Departure
}

func TestGenerateVec(t *testing.T) {
	c := UniformConfig(100, 2.0, 4, 7)
	l := GenerateVec(c, 2)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, it := range l {
		if it.Dim() != 2 {
			t.Fatal("expected 2-D items")
		}
		if it.Size != math.Max(it.Sizes[0], it.Sizes[1]) {
			t.Fatal("Size must be max component")
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, c := range []Config{
		UniformConfig(50, 1, 4, 1),
		ParetoConfig(50, 1, 4, 1),
		BimodalConfig(50, 1, 4, 1),
		SmallItemConfig(50, 1, 4, 1),
	} {
		l := Generate(c)
		if err := l.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if c.MuBound() != 4 {
			t.Fatalf("%v: mu bound %g", c, c.MuBound())
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{N: 0, Rate: 1, Size: Constant{V: 0.5}, Duration: Constant{V: 1}})
}

func TestNextFitAdversaryExactPaperNumbers(t *testing.T) {
	for _, n := range []int{4, 10, 50} {
		for _, mu := range []float64{2, 8} {
			l := NextFitAdversary(n, mu)
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := l.Mu(); got != mu {
				t.Fatalf("instance mu = %g, want %g", got, mu)
			}
			nf := packing.MustRun(packing.NewNextFit(), l, nil)
			if nf.NumBins() != n {
				t.Fatalf("NF opened %d bins, want %d", nf.NumBins(), n)
			}
			if math.Abs(nf.TotalUsage-float64(n)*mu) > 1e-9 {
				t.Fatalf("NF usage = %g, want n*mu = %g", nf.TotalUsage, float64(n)*mu)
			}
			// Paper's optimal: n/2 + mu (n even).
			optTotal, ok := opt.TotalExact(l, 0)
			if !ok {
				t.Fatal("exact OPT did not finish")
			}
			want := float64(n)/2 + mu
			if math.Abs(optTotal-want) > 1e-9 {
				t.Fatalf("OPT = %g, want n/2 + mu = %g", optTotal, want)
			}
			ratio := nf.TotalUsage / optTotal
			if math.Abs(ratio-NextFitAdversaryRatioLimit(n, mu)) > 1e-9 {
				t.Fatalf("ratio %g != analytic %g", ratio, NextFitAdversaryRatioLimit(n, mu))
			}
		}
	}
}

func TestNextFitAdversaryRatioApproaches2Mu(t *testing.T) {
	mu := 8.0
	r1 := NextFitAdversaryRatioLimit(16, mu)
	r2 := NextFitAdversaryRatioLimit(4096, mu)
	if !(r1 < r2 && r2 < 2*mu) {
		t.Fatalf("ratio must increase toward 2mu: %g, %g", r1, r2)
	}
	if 2*mu-r2 > 0.1 {
		t.Fatalf("ratio %g not close to 2mu = %g at n=4096", r2, 2*mu)
	}
}

func TestAnyFitTrapPinsFFAndBF(t *testing.T) {
	n, mu := 10, 6.0
	l := AnyFitTrap(n, mu)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []packing.Algorithm{packing.NewFirstFit(), packing.NewBestFit()} {
		res := packing.MustRun(algo, l, nil)
		if res.NumBins() != n {
			t.Fatalf("%s opened %d bins, want %d", algo.Name(), res.NumBins(), n)
		}
		if math.Abs(res.TotalUsage-float64(n)*mu) > 1e-9 {
			t.Fatalf("%s usage = %g, want n*mu = %g", algo.Name(), res.TotalUsage, float64(n)*mu)
		}
	}
	optTotal, ok := opt.TotalExact(l, 0)
	if !ok {
		t.Fatal("exact OPT did not finish")
	}
	want := float64(n) + mu - 1
	if math.Abs(optTotal-want) > 1e-9 {
		t.Fatalf("OPT = %g, want n + mu - 1 = %g", optTotal, want)
	}
}

func TestAnyFitTrapWorstAndNextFitEscape(t *testing.T) {
	n, mu := 10, 6.0
	l := AnyFitTrap(n, mu)
	ff := packing.MustRun(packing.NewFirstFit(), l, nil)
	for _, algo := range []packing.Algorithm{packing.NewWorstFit(), packing.NewNextFit()} {
		res := packing.MustRun(algo, l, nil)
		if res.TotalUsage >= ff.TotalUsage {
			t.Fatalf("%s (%g) should escape the FF trap (%g)", algo.Name(), res.TotalUsage, ff.TotalUsage)
		}
	}
}

func TestAnyFitTrapRatioApproachesMu(t *testing.T) {
	mu := 8.0
	l := AnyFitTrap(200, mu)
	ff := packing.MustRun(packing.NewFirstFit(), l, nil)
	lb := opt.CombinedLowerBound(l)
	// OPT <= n + mu - 1 + (tiny mass corrections); use the analytic value.
	optTotal := float64(200) + mu - 1
	ratio := ff.TotalUsage / optTotal
	if ratio < mu*0.9 {
		t.Fatalf("trap ratio %g too far below mu = %g", ratio, mu)
	}
	if ratio > mu+1 {
		t.Fatalf("trap ratio %g above mu+1", ratio)
	}
	_ = lb
}

func TestBestFitRelayShape(t *testing.T) {
	k, rounds, mu := 8, 6, 4.0
	l := BestFitRelay(k, rounds, mu)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := l.Mu(); math.Abs(got-mu) > 1e-9 {
		t.Fatalf("instance mu = %g, want %g", got, mu)
	}
	bf := packing.MustRun(packing.NewBestFit(), l, nil)
	if err := bf.Verify(); err != nil {
		t.Fatal(err)
	}
	// The relay must keep the k victims alive for the whole horizon:
	// BF usage ~ k * horizon.
	horizon := l.PackingPeriod().Length()
	if bf.TotalUsage < 0.8*float64(k)*horizon {
		t.Fatalf("BF usage %g; relay failed to keep %d bins alive over %g", bf.TotalUsage, k, horizon)
	}
	// First Fit on the same instance is clearly cheaper (it is partially
	// caught by the spikes, but consolidates tinies into low bins).
	ff := packing.MustRun(packing.NewFirstFit(), l, nil)
	if ff.TotalUsage >= 0.75*bf.TotalUsage {
		t.Fatalf("FF usage %g not clearly better than BF %g on the BF adversary", ff.TotalUsage, bf.TotalUsage)
	}
}

func TestBestFitRelayRatioGrowsWithK(t *testing.T) {
	mu := 4.0
	var prev float64
	for _, k := range []int{4, 8, 16} {
		l := BestFitRelay(k, 6, mu)
		bf := packing.MustRun(packing.NewBestFit(), l, nil)
		// Heuristic bracket only (exactLimit 1): the spike segments make
		// exact per-instant packing expensive and the FFD upper bound is
		// tight enough here.
		b := opt.Total(l, 1, 1)
		ratio := bf.TotalUsage / b.Upper // conservative: against OPT's upper bracket
		if ratio <= prev {
			t.Fatalf("BF ratio did not grow with k: k=%d ratio=%g prev=%g", k, ratio, prev)
		}
		prev = ratio
	}
	if prev < 1.5 {
		t.Fatalf("BF relay ratio at k=16 only %g; construction ineffective", prev)
	}
}

func TestFirstFitSmallItemStress(t *testing.T) {
	l := FirstFitSmallItemStress(6, 5, 4)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.NumBins() < 2 {
		t.Fatal("stress instance should need multiple bins")
	}
}

func TestAdversaryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NextFitAdversary(2, 2) },
		func() { NextFitAdversary(4, 0.5) },
		func() { AnyFitTrap(1, 2) },
		func() { BestFitRelay(1, 1, 4) },
		func() { BestFitRelay(4, 1, 1.5) },
		func() { FirstFitSmallItemStress(0, 1, 4) },
		func() { GenerateVec(UniformConfig(10, 1, 2, 1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

var _ = item.List{} // keep the import meaningful if refactors drop uses

func TestGenerateBursty(t *testing.T) {
	c := BurstyConfig{
		Config:      UniformConfig(2000, 1, 4, 5),
		BurstFactor: 10,
		MeanCalm:    20,
		MeanBurst:   5,
	}
	l := GenerateBursty(c)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Burstiness shows up as a heavier tail of short inter-arrival gaps
	// than a plain Poisson stream of the same total count and span.
	plain := Generate(Config{N: 2000, Rate: float64(2000) / l.PackingPeriod().Length(),
		Size: c.Size, Duration: c.Duration, Seed: 5})
	burstShort := shortGapFraction(l, 0.05)
	plainShort := shortGapFraction(plain, 0.05)
	if burstShort <= plainShort {
		t.Fatalf("bursty stream not burstier: %.3f vs %.3f short-gap fraction", burstShort, plainShort)
	}
	l2 := GenerateBursty(c)
	for i := range l {
		if !sameItem(l[i], l2[i]) {
			t.Fatal("bursty generation must be deterministic")
		}
	}
}

func shortGapFraction(l item.List, cut float64) float64 {
	s := l.SortedByArrival()
	short := 0
	for i := 1; i < len(s); i++ {
		if s[i].Arrival-s[i-1].Arrival < cut {
			short++
		}
	}
	return float64(short) / float64(len(s)-1)
}

func TestGenerateBurstyPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateBursty(BurstyConfig{Config: UniformConfig(10, 1, 2, 1), BurstFactor: 0.5, MeanCalm: 1, MeanBurst: 1})
}

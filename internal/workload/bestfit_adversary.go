package workload

import (
	"fmt"
	"sort"

	"dbp/internal/bins"
	"dbp/internal/item"
	"dbp/internal/packing"
)

// BestFitRelay builds an adaptive adversarial instance against Best Fit,
// reproducing (in spirit) the paper's Sec. I remark — inherited from the
// authors' earlier work [5], [6] — that Best Fit's competitive ratio is
// not bounded by a small constant factor: Best Fit pays about a factor
// k*(mu-1)/(k+mu) more than the adversary for any number of victim bins
// k, approaching mu-1 as k grows, on instances where First Fit fares far
// better (experiment E4 measures both).
//
// Construction (adaptive — the generator simulates Best Fit online and
// derives item sizes from the live bin levels, which is exactly what a
// lower-bound adversary may do; Best Fit is deterministic, so replaying
// the emitted list through packing.Run(NewBestFit(), ...) reproduces the
// trajectory):
//
//   - Seed: a gap-seal trap opens k victim bins; after the seed bigs
//     depart at time 1 each victim holds one long tiny (duration mu).
//   - Rounds at times r*(mu-1), r = 1..rounds: the adversary walks the
//     victims from fullest to emptiest. For each victim it (a) emits a
//     fresh tiny (duration mu) — Best Fit places it in the fullest
//     unsealed bin, the current victim — then (b) emits a brief spike
//     filler (duration 1, the minimum) sized to the victim's remaining
//     gap minus half a tiny, which Best Fit also drops into that victim,
//     sealing it against the next tiny.
//
// Every victim is kept alive for the whole horizon by a relay of tinies
// (Best Fit pays ~k bin-time per time unit), while the adversary
// consolidates all tinies into one bin and pays for the spikes only
// briefly. Requires mu >= 2 so consecutive rounds overlap each tiny's
// lifetime.
func BestFitRelay(k, rounds int, mu float64) item.List {
	if k < 2 || rounds < 1 || mu < 2 {
		panic(fmt.Sprintf("workload: BestFitRelay needs k >= 2, rounds >= 1, mu >= 2 (got %d, %d, %g)", k, rounds, mu))
	}
	const sigma = 1.0 / 1024 // tiny size; k*sigma stays << 1 for sane k
	b := &relayBuilder{
		sim: packing.NewStream(packing.NewBestFit(), 0, 0),
		eta: (mu - 1) / 1e6,
	}

	// Seed trap at t=0+: k bigs (duration 1) with ascending gaps, then k
	// ascending tinies (duration mu) sealing them.
	delta := sigma / float64(k+1) // gaps all below sigma
	for i := 0; i < k; i++ {
		b.emit(1-float64(i+1)*delta, float64(i)*b.eta, 1)
	}
	for i := 0; i < k; i++ {
		b.emit(float64(i+1)*delta, float64(k+i)*b.eta, mu)
	}

	for r := 1; r <= rounds; r++ {
		base := float64(r) * (mu - 1)
		step := 0
		sealed := make(map[int]bool, k)
		for v := 0; v < k; v++ {
			t := base + float64(step)*b.eta
			b.flushUntil(t)
			target := fullestUnsealed(b.sim.Ledger().OpenBins(), sealed)
			if target == nil {
				break // defensive: every victim closed (cannot happen for mu >= 2)
			}
			if 1-target.Level() < 1.5*sigma {
				sealed[target.Index] = true
				continue
			}
			// (a) fresh tiny: Best Fit places it in target, the fullest
			// bin with room.
			b.emit(sigma, t, mu)
			step++
			// (b) spike filler sized to the remaining gap minus half a
			// tiny: lands in target and seals it against further tinies.
			t = base + float64(step)*b.eta
			b.flushUntil(t)
			if gap := 1 - target.Level(); gap > sigma/2 {
				b.emit(gap-sigma/2, t, 1)
				step++
			}
			sealed[target.Index] = true
		}
	}
	return b.list
}

// BestFitRelayRatioLimit returns the analytic ALG/OPT shape of the relay,
// k*(mu-1)/(k+mu-1): Best Fit pays k bins over the horizon while the
// adversary pays one bin plus k brief spike bins per round.
func BestFitRelayRatioLimit(k int, mu float64) float64 {
	return float64(k) * (mu - 1) / (float64(k) + mu - 1)
}

// relayBuilder feeds an internal Best Fit simulation while recording the
// emitted instance. Departures are flushed into the simulation in time
// order before each arrival, mirroring the main simulator's
// departure-before-arrival tie rule.
type relayBuilder struct {
	sim     *packing.Stream
	list    item.List
	pending []departure
	nextID  item.ID
	eta     float64
}

type departure struct {
	id item.ID
	t  float64
}

func (b *relayBuilder) emit(size, t, dur float64) {
	b.flushUntil(t)
	b.nextID++
	id := b.nextID
	b.list = append(b.list, item.Item{ID: id, Size: size, Arrival: t, Departure: t + dur})
	if _, _, err := b.sim.Arrive(id, size, nil, t); err != nil {
		panic(fmt.Sprintf("workload: BestFitRelay internal sim: %v", err))
	}
	b.pending = append(b.pending, departure{id: id, t: t + dur})
}

func (b *relayBuilder) flushUntil(t float64) {
	sort.Slice(b.pending, func(i, j int) bool { return b.pending[i].t < b.pending[j].t })
	i := 0
	for ; i < len(b.pending) && b.pending[i].t <= t; i++ {
		if _, _, err := b.sim.Depart(b.pending[i].id, b.pending[i].t); err != nil {
			panic(fmt.Sprintf("workload: BestFitRelay internal sim depart: %v", err))
		}
	}
	b.pending = append(b.pending[:0], b.pending[i:]...)
}

// fullestUnsealed mirrors Best Fit's own selection rule, including its Eps
// tolerance: floating-point residue from differing add/remove histories
// makes equal levels differ by ~1e-19, and the adversary must break those
// ties exactly as Best Fit does (earliest bin wins) or its bookkeeping
// diverges from the algorithm it is steering.
func fullestUnsealed(open []*bins.Bin, sealed map[int]bool) *bins.Bin {
	var best *bins.Bin
	for _, b := range open {
		if sealed[b.Index] {
			continue
		}
		if best == nil || b.Level() > best.Level()+bins.Eps {
			best = b
		}
	}
	return best
}

package workload

import (
	"fmt"

	"dbp/internal/item"
)

// NextFitAdversary builds the Section VIII construction verbatim: at time
// 0, n pairs of items arrive in sequence; the first item of each pair has
// size 1/2 and the second size 1/(2n). At time 1 all the size-1/2 items
// depart; at time mu all the size-1/(2n) items depart.
//
// Next Fit opens a bin per pair (the next pair's 1/2 does not fit a bin at
// level 1/2 + 1/(2n)), so NF_total = n*mu, while the optimal packing pairs
// the halves (n/2 bins for one time unit) and keeps all slivers in a
// single bin for mu: OPT_total = n/2 + mu. The ratio n*mu/(n/2+mu) tends
// to 2*mu as n grows, proving Next Fit's multiplicative factor 2 is
// inherent. Requires n >= 3 (as in the paper) and mu >= 1.
func NextFitAdversary(n int, mu float64) item.List {
	if n < 3 || mu < 1 {
		panic(fmt.Sprintf("workload: NextFitAdversary needs n >= 3, mu >= 1 (got %d, %g)", n, mu))
	}
	l := make(item.List, 0, 2*n)
	for i := 0; i < n; i++ {
		l = append(l,
			item.Item{ID: item.ID(2*i + 1), Size: 0.5, Arrival: 0, Departure: 1},
			item.Item{ID: item.ID(2*i + 2), Size: 1 / (2 * float64(n)), Arrival: 0, Departure: mu},
		)
	}
	return l
}

// NextFitAdversaryRatioLimit returns the analytic ratio n*mu/(n/2+mu) of
// the construction, the quantity experiment E2 compares measurements to.
func NextFitAdversaryRatioLimit(n int, mu float64) float64 {
	return float64(n) * mu / (float64(n)/2 + mu)
}

// AnyFitTrap builds the "gap seal" instance that forces gap-greedy Any Fit
// algorithms toward the universal lower bound mu: n big items of duration
// 1 with strictly increasing gaps g_i = (i+1)*delta arrive at time 0,
// immediately followed by n long tiny items in ascending size, the i-th
// sized exactly g_i. Each big opens its own bin (two bigs never fit
// together). First Fit pins tiny i to bin i (bins 0..i-1 are already
// sealed full, bin i is the first with room), and Best Fit pins it too
// (bin i is the fullest with room). Each of the n bins then stays open
// for the tinies' full duration: ALG = n*mu. The adversary repacks at
// time 1: bigs are gone and all tinies (total size 1/4) share one bin, so
// OPT = n + mu - 1, and the ratio approaches mu as n grows — an instance
// family realizing the paper's universal lower bound mu (Sec. I, proved
// formally in [12]/[6]) against FF and BF.
//
// Worst Fit and Next Fit escape this particular trap (they route tinies
// to the emptiest / most recently opened bin, consolidating them), which
// experiment E5 reports — escaping one adversary does not beat the bound,
// since the formal proof uses an adaptive adversary per algorithm.
func AnyFitTrap(n int, mu float64) item.List {
	if n < 2 || mu < 1 {
		panic(fmt.Sprintf("workload: AnyFitTrap needs n >= 2, mu >= 1 (got %d, %g)", n, mu))
	}
	// Gap of bin i: g_i = (i+1) * delta, strictly increasing, total < 1/2
	// so the adversary can consolidate every tiny into one bin.
	delta := 1.0 / (2.0 * float64(n) * float64(n+1))
	l := make(item.List, 0, 2*n)
	// Bigs first (sequence order at t=0): big i has size 1 - g_i.
	for i := 0; i < n; i++ {
		g := float64(i+1) * delta
		l = append(l, item.Item{ID: item.ID(i + 1), Size: 1 - g, Arrival: 0, Departure: 1})
	}
	// Tinies in ascending size: tiny i exactly seals bin i.
	for i := 0; i < n; i++ {
		g := float64(i+1) * delta
		l = append(l, item.Item{ID: item.ID(n + i + 1), Size: g, Arrival: 0, Departure: mu})
	}
	return l
}

// AnyFitTrapRatioLimit returns the analytic ALG/OPT ratio n*mu/(n+mu-1)
// of the trap (ignoring the o(1) tiny mass), which tends to mu.
func AnyFitTrapRatioLimit(n int, mu float64) float64 {
	return float64(n) * mu / (float64(n) + mu - 1)
}

// FirstFitSmallItemStress exercises the regime the paper's Sec. V–VII
// analysis is about: streams of small items (size < 1/2) whose arrivals
// are spaced so First Fit keeps re-filling old bins right before they
// would close. Waves of w small items of duration mu arrive every mu - 1
// time units for r rounds: each wave barely overlaps the previous one, so
// usage periods chain. This is not a lower-bound construction; it's the
// stress workload used by E7 (decomposition validation) and E1 (bound
// check), where l-subperiods and supplier bins actually materialize.
func FirstFitSmallItemStress(w, r int, mu float64) item.List {
	if w < 1 || r < 1 || mu <= 1 {
		panic("workload: FirstFitSmallItemStress needs w, r >= 1 and mu > 1")
	}
	var l item.List
	id := item.ID(1)
	size := 0.49 / float64((w+1)/2)
	for round := 0; round < r; round++ {
		t := float64(round) * (mu - 1)
		for j := 0; j < w; j++ {
			// Stagger arrivals inside the wave so selections differ.
			a := t + float64(j)*0.01
			l = append(l, item.Item{ID: id, Size: size, Arrival: a, Departure: a + mu})
			id++
		}
	}
	return l
}

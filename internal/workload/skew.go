package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dbp/internal/item"
)

// This file holds the skewed workload families motivated by the related
// work (ROADMAP "Pluggable scenario registry"): Zipf-skewed job sizes,
// hotspot tenant traffic, and diurnal (sinusoid-modulated) arrival
// curves. All are deterministic given a seed, like every generator in
// this package.

// zipfSampler draws 1-based ranks with P(r) proportional to r^-alpha
// over a finite rank set, by inverse CDF. math/rand's Zipf requires
// alpha > 1; experiment sweeps want the full range, so the finite-support
// sampler is implemented directly.
type zipfSampler struct {
	cum []float64 // cumulative unnormalized weights, cum[r-1] = sum_{i<=r} i^-alpha
}

func newZipfSampler(alpha float64, ranks int) *zipfSampler {
	cum := make([]float64, ranks)
	total := 0.0
	for r := 1; r <= ranks; r++ {
		total += math.Pow(float64(r), -alpha)
		cum[r-1] = total
	}
	return &zipfSampler{cum: cum}
}

// rank returns a 1-based rank.
func (z *zipfSampler) rank(rng *rand.Rand) int {
	x := rng.Float64() * z.cum[len(z.cum)-1]
	// Binary search for the first cumulative weight >= x.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// ZipfianConfig describes a workload whose job sizes come from a finite
// catalog of size classes with Zipf-skewed popularity: class rank 1 is
// the most frequent and the smallest, the tail classes are rare and
// large — the canonical shape of VM-type popularity in public cluster
// traces (a handful of small flavors dominate, big flavors are rare).
type ZipfianConfig struct {
	Config
	// Alpha is the skew exponent (> 0): frequency of rank r ~ r^-Alpha.
	Alpha float64
	// Classes is the number of size classes (>= 2).
	Classes int
	// LoSize and HiSize bound the class sizes; rank 1 maps to LoSize and
	// rank Classes to HiSize on a geometric grid.
	LoSize, HiSize float64
}

// SizeOfRank maps a 1-based popularity rank to its class size on the
// geometric grid from LoSize (rank 1) to HiSize (rank Classes).
func (c ZipfianConfig) SizeOfRank(r int) float64 {
	return c.LoSize * math.Pow(c.HiSize/c.LoSize, float64(r-1)/float64(c.Classes-1))
}

// RankOfSize inverts SizeOfRank (used by the rank-frequency statistics
// test to recover the sampled rank from an emitted item).
func (c ZipfianConfig) RankOfSize(s float64) int {
	r := 1 + float64(c.Classes-1)*math.Log(s/c.LoSize)/math.Log(c.HiSize/c.LoSize)
	return int(math.Round(r))
}

// GenerateZipfian produces a Poisson-arrival instance with Zipf-skewed
// size classes. dim > 1 draws an independent rank per dimension (scalar
// Size is the max component, the package convention).
func GenerateZipfian(c ZipfianConfig, dim int) item.List {
	if c.N <= 0 || c.Rate <= 0 || c.Alpha <= 0 || c.Classes < 2 ||
		c.LoSize <= 0 || c.HiSize <= c.LoSize || c.HiSize > 1 {
		panic(fmt.Sprintf("workload: bad zipfian config %+v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	z := newZipfSampler(c.Alpha, c.Classes)
	l := make(item.List, c.N)
	t := 0.0
	for i := range l {
		t += rng.ExpFloat64() / c.Rate
		d := c.Duration.Sample(rng)
		l[i] = item.Item{ID: item.ID(i + 1), Arrival: t, Departure: t + d}
		if dim > 1 {
			vec := make([]float64, dim)
			maxc := 0.0
			for k := range vec {
				vec[k] = c.SizeOfRank(z.rank(rng))
				maxc = math.Max(maxc, vec[k])
			}
			l[i].Size, l[i].Sizes = maxc, vec
		} else {
			l[i].Size = c.SizeOfRank(z.rank(rng))
		}
	}
	return l
}

// HotspotConfig describes multi-tenant traffic where a few hot tenants
// dominate: HotShare of all jobs belong to the HotFrac fraction of
// tenants (tenants 0..hot-1). Job IDs carry the tenant affinity —
// ID = seq*Tenants + tenant + 1 — so downstream layers (sharding,
// accounting) can recover the tenant with TenantOf without a side table.
type HotspotConfig struct {
	Config
	// Tenants is the tenant population size (>= 2).
	Tenants int
	// HotFrac is the fraction of tenants that are hot, in (0, 1).
	HotFrac float64
	// HotShare is the fraction of traffic routed to hot tenants, in (0, 1].
	HotShare float64
}

// HotTenants returns the number of hot tenants implied by the config
// (at least 1, at most Tenants-1).
func (c HotspotConfig) HotTenants() int {
	h := int(math.Round(c.HotFrac * float64(c.Tenants)))
	if h < 1 {
		h = 1
	}
	if h >= c.Tenants {
		h = c.Tenants - 1
	}
	return h
}

// TenantOf recovers the tenant index encoded in a hotspot job ID.
func TenantOf(id item.ID, tenants int) int {
	return int((int64(id) - 1) % int64(tenants))
}

// GenerateHotspot produces the multi-tenant instance: Poisson arrivals,
// each job assigned to a hot tenant with probability HotShare (uniform
// within the hot set), otherwise to a cold tenant. dim > 1 draws vector
// demands with independent components.
func GenerateHotspot(c HotspotConfig, dim int) item.List {
	if c.N <= 0 || c.Rate <= 0 || c.Tenants < 2 ||
		c.HotFrac <= 0 || c.HotFrac >= 1 || c.HotShare <= 0 || c.HotShare > 1 {
		panic(fmt.Sprintf("workload: bad hotspot config %+v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	hot := c.HotTenants()
	cold := c.Tenants - hot
	l := make(item.List, c.N)
	t := 0.0
	for i := range l {
		t += rng.ExpFloat64() / c.Rate
		d := c.Duration.Sample(rng)
		tenant := 0
		if rng.Float64() < c.HotShare {
			tenant = rng.Intn(hot)
		} else {
			tenant = hot + rng.Intn(cold)
		}
		id := item.ID(int64(i)*int64(c.Tenants) + int64(tenant) + 1)
		l[i] = item.Item{ID: id, Arrival: t, Departure: t + d}
		if dim > 1 {
			vec := make([]float64, dim)
			maxc := 0.0
			for k := range vec {
				vec[k] = clampSize(c.Size.Sample(rng))
				maxc = math.Max(maxc, vec[k])
			}
			l[i].Size, l[i].Sizes = maxc, vec
		} else {
			l[i].Size = clampSize(c.Size.Sample(rng))
		}
	}
	return l
}

// DiurnalConfig describes a sinusoid-modulated arrival curve: the
// instantaneous rate is Rate * (1 + Amplitude*sin(2*pi*t/Period)) — the
// day/night load cycle every production allocator rides. Amplitude 0.8
// gives a 9x peak-to-trough rate ratio.
type DiurnalConfig struct {
	Config
	// Amplitude is the relative modulation depth, in [0, 0.95].
	Amplitude float64
	// Period is the cycle length in workload time units; 0 picks one
	// automatically so the instance spans about four cycles.
	Period float64
}

// EffectivePeriod resolves Period = 0 to the automatic choice: the
// expected arrival span N/Rate divided into four cycles.
func (c DiurnalConfig) EffectivePeriod() float64 {
	if c.Period > 0 {
		return c.Period
	}
	return float64(c.N) / c.Rate / 4
}

// GenerateDiurnal produces the modulated-Poisson instance by thinning: a
// homogeneous candidate stream at the peak rate Rate*(1+Amplitude) is
// accepted with probability rate(t)/peak — the standard exact simulation
// of an inhomogeneous Poisson process, deterministic given the seed.
func GenerateDiurnal(c DiurnalConfig, dim int) item.List {
	if c.N <= 0 || c.Rate <= 0 || c.Amplitude < 0 || c.Amplitude > 0.95 {
		panic(fmt.Sprintf("workload: bad diurnal config %+v", c))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	period := c.EffectivePeriod()
	peak := c.Rate * (1 + c.Amplitude)
	l := make(item.List, c.N)
	t := 0.0
	for i := 0; i < c.N; {
		t += rng.ExpFloat64() / peak
		rate := c.Rate * (1 + c.Amplitude*math.Sin(2*math.Pi*t/period))
		if rng.Float64()*peak > rate {
			continue
		}
		d := c.Duration.Sample(rng)
		l[i] = item.Item{ID: item.ID(i + 1), Arrival: t, Departure: t + d}
		if dim > 1 {
			vec := make([]float64, dim)
			maxc := 0.0
			for k := range vec {
				vec[k] = clampSize(c.Size.Sample(rng))
				maxc = math.Max(maxc, vec[k])
			}
			l[i].Size, l[i].Sizes = maxc, vec
		} else {
			l[i].Size = clampSize(c.Size.Sample(rng))
		}
		i++
	}
	return l
}

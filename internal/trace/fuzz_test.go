package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never crashes the parser and
// that every successfully parsed trace is valid and round-trips exactly.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,size,arrival,departure\n1,0.5,0,1\n")
	f.Add("id,size,arrival,departure\n1,0.5,0,1\n2,0.25,0.5,3\n")
	f.Add("id,size,arrival,departure,size2\n1,0.5,0,1,0.25\n")
	f.Add("")
	f.Add("id,size,arrival,departure\n1,NaN,0,1\n")
	f.Add("id,size,arrival,departure\n1,1e309,0,1\n")
	f.Add("id,size,arrival,departure\n-9223372036854775808,0.5,0,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, l); werr != nil {
			t.Fatalf("write-back failed: %v", werr)
		}
		back, rerr := ReadCSV(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(back) != len(l) {
			t.Fatalf("round trip changed length: %d -> %d", len(l), len(back))
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON format.
func FuzzReadJSON(f *testing.F) {
	f.Add(`[{"id":1,"size":0.5,"arrival":0,"departure":1}]`)
	f.Add(`[]`)
	f.Add(`[{"id":1,"size":0.5,"sizes":[0.5,0.2],"arrival":0,"departure":1}]`)
	f.Add(`{"not":"a list"}`)
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid trace: %v", verr)
		}
	})
}

// Package trace reads and writes workload traces so instances can be
// generated once, stored, shared, and replayed — the workflow a cloud
// operator would use with real dispatch logs. Two formats are supported:
// a CSV with header "id,size,arrival,departure" (one item per row) and a
// JSON array of item objects. Both round-trip float64 values exactly
// (strconv 'g' with full precision).
package trace

import (
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dbp/internal/item"
	"dbp/internal/packing"
)

// csvHeader is the required first row of the CSV format. Vector demands
// use additional size columns "size2", "size3", ... when present.
var csvHeader = []string{"id", "size", "arrival", "departure"}

// ReadFile loads a trace from a file, picking the format from the
// extension (.json for JSON, anything else CSV) and decompressing
// gzip-compressed traces (.csv.gz / .json.gz) transparently — large
// public cluster traces ship and commit compressed.
func ReadFile(path string) (item.List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".json") {
		return ReadJSON(r)
	}
	return ReadCSV(r)
}

// WriteFile stores a trace, the mirror of ReadFile: format by extension,
// gzip-compressed when the path ends in .gz.
func WriteFile(path string, l item.List) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	name := path
	var zw *gzip.Writer
	if strings.HasSuffix(name, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
		name = strings.TrimSuffix(name, ".gz")
	}
	if strings.HasSuffix(name, ".json") {
		err = WriteJSON(w, l)
	} else {
		err = WriteCSV(w, l)
	}
	if err == nil && zw != nil {
		err = zw.Close()
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteCSV writes the list in CSV format, items sorted by (arrival, id).
func WriteCSV(w io.Writer, l item.List) error {
	cw := csv.NewWriter(w)
	dim := 1
	for _, it := range l {
		if it.Dim() > dim {
			dim = it.Dim()
		}
	}
	header := append([]string(nil), csvHeader...)
	for d := 2; d <= dim; d++ {
		header = append(header, fmt.Sprintf("size%d", d))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, it := range l.SortedByArrival() {
		// The "size" column carries the first demand component; for 1-D
		// items that is the item size, for vector items the reader
		// recomputes the scalar Size as the max over all components.
		vec := it.SizeVec()
		row := []string{
			strconv.FormatInt(int64(it.ID), 10),
			strconv.FormatFloat(vec[0], 'g', -1, 64),
			strconv.FormatFloat(it.Arrival, 'g', -1, 64),
			strconv.FormatFloat(it.Departure, 'g', -1, 64),
		}
		for d := 2; d <= dim; d++ {
			v := 0.0
			if d <= len(vec) {
				v = vec[d-1]
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace. The returned list is validated.
func ReadCSV(r io.Reader) (item.List, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	head := rows[0]
	if len(head) < 4 || head[0] != "id" || head[1] != "size" || head[2] != "arrival" || head[3] != "departure" {
		return nil, fmt.Errorf("trace: bad header %v (want id,size,arrival,departure[,size2...])", head)
	}
	extraDims := len(head) - 4
	l := make(item.List, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(head) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", i+2, len(row), len(head))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", i+2, err)
		}
		var f [3]float64
		for j := 0; j < 3; j++ {
			f[j], err = strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %s: %w", i+2, head[j+1], err)
			}
		}
		it := item.Item{ID: item.ID(id), Size: f[0], Arrival: f[1], Departure: f[2]}
		if extraDims > 0 {
			it.Sizes = make([]float64, extraDims+1)
			it.Sizes[0] = f[0]
			maxc := f[0]
			for d := 0; d < extraDims; d++ {
				v, err := strconv.ParseFloat(row[4+d], 64)
				if err != nil {
					return nil, fmt.Errorf("trace: row %d col %s: %w", i+2, head[4+d], err)
				}
				it.Sizes[d+1] = v
				if v > maxc {
					maxc = v
				}
			}
			it.Size = maxc
		}
		l = append(l, it)
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return l, nil
}

// jsonItem is the JSON wire format of one item.
type jsonItem struct {
	ID        int64     `json:"id"`
	Size      float64   `json:"size"`
	Sizes     []float64 `json:"sizes,omitempty"`
	Arrival   float64   `json:"arrival"`
	Departure float64   `json:"departure"`
}

// WriteJSON writes the list as a JSON array, sorted by (arrival, id).
func WriteJSON(w io.Writer, l item.List) error {
	out := make([]jsonItem, len(l))
	for i, it := range l.SortedByArrival() {
		out[i] = jsonItem{ID: int64(it.ID), Size: it.Size, Sizes: it.Sizes, Arrival: it.Arrival, Departure: it.Departure}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON parses a JSON trace. The returned list is validated.
func ReadJSON(r io.Reader) (item.List, error) {
	var in []jsonItem
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	l := make(item.List, len(in))
	for i, ji := range in {
		l[i] = item.Item{ID: item.ID(ji.ID), Size: ji.Size, Sizes: ji.Sizes, Arrival: ji.Arrival, Departure: ji.Departure}
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return l, nil
}

// Stats summarizes a trace for CLI reports.
type Stats struct {
	N           int
	Mu          float64
	Span        float64
	Demand      float64
	PeakLoad    float64
	MinDuration float64
	MaxDuration float64
	MeanSize    float64
}

// Summarize computes trace statistics.
func Summarize(l item.List) Stats {
	s := Stats{
		N:           len(l),
		Mu:          l.Mu(),
		Span:        l.Span(),
		Demand:      l.TotalDemand(),
		PeakLoad:    l.MaxConcurrentLoad(),
		MinDuration: l.MinDuration(),
		MaxDuration: l.MaxDuration(),
	}
	if len(l) > 0 {
		s.MeanSize = l.TotalSize() / float64(len(l))
	}
	return s
}

// String renders the stats for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mu=%.4g span=%.6g demand=%.6g peak-load=%.4g dur=[%.4g, %.4g] mean-size=%.4g",
		s.N, s.Mu, s.Span, s.Demand, s.PeakLoad, s.MinDuration, s.MaxDuration, s.MeanSize)
}

// WriteAssignment exports the outcome of a packing run as CSV with
// header "id,bin,size,arrival,departure": the per-job server assignment
// downstream tooling (plotters, accounting) consumes.
func WriteAssignment(w io.Writer, res *packing.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "bin", "size", "arrival", "departure"}); err != nil {
		return err
	}
	for _, it := range res.Items.SortedByArrival() {
		row := []string{
			strconv.FormatInt(int64(it.ID), 10),
			strconv.Itoa(res.Assignment[it.ID]),
			strconv.FormatFloat(it.Size, 'g', -1, 64),
			strconv.FormatFloat(it.Arrival, 'g', -1, 64),
			strconv.FormatFloat(it.Departure, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAssignment parses an assignment CSV (as written by
// WriteAssignment): it returns the instance and the item -> bin map.
func ReadAssignment(r io.Reader) (item.List, map[item.ID]int, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 || len(rows[0]) != 5 ||
		rows[0][0] != "id" || rows[0][1] != "bin" || rows[0][2] != "size" ||
		rows[0][3] != "arrival" || rows[0][4] != "departure" {
		return nil, nil, fmt.Errorf("trace: bad assignment header (want id,bin,size,arrival,departure)")
	}
	l := make(item.List, 0, len(rows)-1)
	assign := make(map[item.ID]int, len(rows)-1)
	for i, row := range rows[1:] {
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: row %d id: %w", i+2, err)
		}
		bin, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: row %d bin: %w", i+2, err)
		}
		var f [3]float64
		for j := 0; j < 3; j++ {
			f[j], err = strconv.ParseFloat(row[j+2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: row %d col %d: %w", i+2, j+2, err)
			}
		}
		l = append(l, item.Item{ID: item.ID(id), Size: f[0], Arrival: f[1], Departure: f[2]})
		assign[item.ID(id)] = bin
	}
	if err := l.Validate(); err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	return l, assign, nil
}

package trace

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
)

// randomList builds a seeded random instance locally: this package
// cannot import internal/workload (workload's trace scenario imports
// this package), and the codec tests only need plausible float values.
func randomList(n int, seed int64, dim int) item.List {
	rng := rand.New(rand.NewSource(seed))
	l := make(item.List, n)
	t := 0.0
	for i := range l {
		t += rng.ExpFloat64() / 2
		it := item.Item{
			ID:      item.ID(i + 1),
			Arrival: t, Departure: t + 1 + 6*rng.Float64(),
			Size: 0.05 + 0.9*rng.Float64(),
		}
		if dim > 1 {
			it.Sizes = make([]float64, dim)
			maxc := 0.0
			for k := range it.Sizes {
				it.Sizes[k] = 0.05 + 0.9*rng.Float64()
				maxc = math.Max(maxc, it.Sizes[k])
			}
			it.Size = maxc
		}
		l[i] = it
	}
	return l
}

func roundTripCSV(t *testing.T, l item.List) item.List {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func roundTripJSON(t *testing.T, l item.List) item.List {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func equalLists(a, b item.List) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := a.SortedByArrival(), b.SortedByArrival()
	for i := range as {
		x, y := as[i], bs[i]
		if x.ID != y.ID || x.Size != y.Size || x.Arrival != y.Arrival || x.Departure != y.Departure {
			return false
		}
		if len(x.Sizes) != len(y.Sizes) {
			return false
		}
		for d := range x.Sizes {
			if x.Sizes[d] != y.Sizes[d] {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTripExact(t *testing.T) {
	l := randomList(200, 11, 1)
	if !equalLists(l, roundTripCSV(t, l)) {
		t.Fatal("CSV round trip not exact")
	}
}

func TestJSONRoundTripExact(t *testing.T) {
	l := randomList(200, 12, 1)
	if !equalLists(l, roundTripJSON(t, l)) {
		t.Fatal("JSON round trip not exact")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	l := randomList(50, 2, 3)
	if !equalLists(l, roundTripCSV(t, l)) {
		t.Fatal("vector CSV round trip not exact")
	}
	if !equalLists(l, roundTripJSON(t, l)) {
		t.Fatal("vector JSON round trip not exact")
	}
}

// TestFileRoundTripGzip pins the transparent-compression contract of
// ReadFile/WriteFile: every extension combination — plain and gzipped
// CSV and JSON — round-trips exactly, including vector demands, and a
// .gz file is genuinely gzip on disk (magic bytes), not a renamed plain
// file.
func TestFileRoundTripGzip(t *testing.T) {
	dir := t.TempDir()
	l := randomList(80, 21, 2)
	for _, name := range []string{"t.csv", "t.json", "t.csv.gz", "t.json.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, l); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalLists(l, got) {
			t.Fatalf("%s: file round trip not exact", name)
		}
	}
	buf, err := os.ReadFile(filepath.Join(dir, "t.csv.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 2 || buf[0] != 0x1f || buf[1] != 0x8b {
		t.Fatal("t.csv.gz is not gzip-compressed on disk")
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/does/not/exist.csv"); err == nil {
		t.Fatal("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv.gz")
	if err := os.WriteFile(bad, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("corrupt gzip must error")
	}
}

func TestCSVFullPrecision(t *testing.T) {
	l := item.List{{ID: 1, Size: 1.0 / 3.0, Arrival: math.Pi, Departure: math.Pi + math.E}}
	got := roundTripCSV(t, l)
	if got[0].Size != 1.0/3.0 || got[0].Arrival != math.Pi {
		t.Fatal("precision lost")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                                  // empty
		"a,b,c,d\n1,0.5,0,1\n",                              // bad header
		"id,size,arrival,departure\nx,0.5,0,1\n",            // bad id
		"id,size,arrival,departure\n1,zap,0,1\n",            // bad float
		"id,size,arrival,departure\n1,0.5,5,1\n",            // invalid interval
		"id,size,arrival,departure\n1,1.5,0,1\n",            // oversize
		"id,size,arrival,departure\n1,0.5,0,1\n1,0.5,2,3\n", // dup id
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q must fail", c)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"id":1,"size":2,"arrival":0,"departure":1}]`)); err == nil {
		t.Fatal("invalid item must fail")
	}
}

func TestWriteCSVSortsByArrival(t *testing.T) {
	l := item.List{
		{ID: 2, Size: 0.5, Arrival: 5, Departure: 6},
		{ID: 1, Size: 0.5, Arrival: 1, Departure: 2},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[1], "1,") || !strings.HasPrefix(lines[2], "2,") {
		t.Fatalf("rows not sorted:\n%s", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.5, Arrival: 0, Departure: 2},
		{ID: 2, Size: 0.25, Arrival: 1, Departure: 5},
	}
	s := Summarize(l)
	if s.N != 2 || s.Mu != 2 || s.Span != 5 || s.MeanSize != 0.375 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	if z := Summarize(nil); z.N != 0 || z.MeanSize != 0 {
		t.Fatal("empty stats")
	}
}

func TestWriteAssignment(t *testing.T) {
	l := item.List{
		{ID: 2, Size: 0.5, Arrival: 1, Departure: 2},
		{ID: 1, Size: 0.5, Arrival: 0, Departure: 3},
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "id,bin,size,arrival,departure" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0,") || !strings.HasPrefix(lines[2], "2,0,") {
		t.Fatalf("rows:\n%s", buf.String())
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	l := randomList(60, 3, 1)
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, res); err != nil {
		t.Fatal(err)
	}
	l2, assign, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2) != len(l) || len(assign) != len(l) {
		t.Fatal("assignment round trip lost rows")
	}
	rep, err := packing.Replay(l2, assign)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUsage != res.TotalUsage {
		t.Fatalf("replayed usage %g != original %g", rep.TotalUsage, res.TotalUsage)
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	cases := []string{
		"",
		"id,bin\n1,0\n",
		"id,bin,size,arrival,departure\nx,0,0.5,0,1\n",
		"id,bin,size,arrival,departure\n1,z,0.5,0,1\n",
		"id,bin,size,arrival,departure\n1,0,2.5,0,1\n",
	}
	for _, c := range cases {
		if _, _, err := ReadAssignment(strings.NewReader(c)); err == nil {
			t.Errorf("input %q must fail", c)
		}
	}
}

// Package svgplot renders self-contained SVG line charts and Gantt
// charts with no dependencies — the figure generator behind cmd/dbpplot,
// which turns experiment series (Next Fit ratio vs n, keep-alive vs
// bill, ...) into the figures a paper reproduction ships.
package svgplot

import (
	"fmt"
	"math"
	"strings"

	"dbp/internal/packing"
)

// Series is one named line in a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a 2-D line chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX draws the x axis on a log10 scale (n sweeps span decades).
	LogX   bool
	Series []Series
	W, H   int // canvas size; 0 means 720x440
}

// palette holds distinguishable stroke colors; series cycle through it.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

const margin = 56.0

// Render produces the SVG document.
func (p *Plot) Render() string {
	w, h := float64(p.W), float64(p.H)
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}
	xmin, xmax, ymin, ymax := p.bounds()
	tx := func(x float64) float64 {
		if p.LogX {
			x = math.Log10(x)
		}
		lo, hi := xmin, xmax
		if p.LogX {
			lo, hi = math.Log10(xmin), math.Log10(xmax)
		}
		if hi == lo {
			return margin
		}
		return margin + (x-lo)/(hi-lo)*(w-2*margin)
	}
	ty := func(y float64) float64 {
		if ymax == ymin {
			return h - margin
		}
		return h - margin - (y-ymin)/(ymax-ymin)*(h-2*margin)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%g" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">%s</text>`+"\n", w/2, esc(p.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", margin, margin, margin, h-margin)
	fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n", w/2, h-12, esc(p.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %g)">%s</text>`+"\n", h/2, h/2, esc(p.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fy := ymin + (ymax-ymin)*float64(i)/4
		y := ty(fy)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n", margin, y, w-margin, y)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="end" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", margin-6, y+3, fy)

		var fx float64
		if p.LogX {
			fx = math.Pow(10, math.Log10(xmin)+(math.Log10(xmax)-math.Log10(xmin))*float64(i)/4)
		} else {
			fx = xmin + (xmax-xmin)*float64(i)/4
		}
		x := tx(fx)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", x, h-margin+16, fx)
	}

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", tx(s.X[i]), ty(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n", tx(s.X[i]), ty(s.Y[i]), color)
		}
		// Legend entry.
		ly := margin + float64(si)*18
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", w-margin-140, ly, w-margin-116, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n", w-margin-110, ly+4, esc(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	// Pad y a little so lines do not hug the frame.
	pad := (ymax - ymin) * 0.05
	if pad == 0 {
		pad = 1
	}
	ymin -= pad
	ymax += pad
	if ymin > 0 && ymin < pad*2 {
		ymin = 0
	}
	return xmin, xmax, ymin, ymax
}

// Gantt renders a packing run as an SVG Gantt chart: one row per bin,
// occupied stretches in color, lingering (keep-alive) tails in gray.
func Gantt(res *packing.Result, width int) string {
	if width == 0 {
		width = 900
	}
	rowH, top := 14.0, 40.0
	w := float64(width)
	h := top + rowH*float64(len(res.Bins)) + 30
	period := res.Items.PackingPeriod()
	lo, hi := period.Lo, period.Hi+res.KeepAlive
	if hi <= lo {
		hi = lo + 1
	}
	tx := func(t float64) float64 { return margin + (t-lo)/(hi-lo)*(w-2*margin) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%g" y="20" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n",
		w/2, esc(fmt.Sprintf("%s — usage %.5g over %d bins", res.Algorithm, res.TotalUsage, res.NumBins())))
	for k, b := range res.Bins {
		y := top + float64(k)*rowH
		u := b.UsagePeriod()
		fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#dddddd"/>`+"\n",
			tx(u.Lo), y, tx(u.Hi)-tx(u.Lo), rowH-3)
		for _, it := range b.Items() {
			fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.8"/>`+"\n",
				tx(it.Arrival), y, tx(it.Departure)-tx(it.Arrival), rowH-3, palette[k%len(palette)])
		}
		fmt.Fprintf(&sb, `<text x="%g" y="%.2f" text-anchor="end" font-family="sans-serif" font-size="9">%d</text>`+"\n",
			margin-4, y+rowH-5, b.Index)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"

	"dbp/internal/item"
	"dbp/internal/packing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title:  "ratio vs n",
		XLabel: "n",
		YLabel: "ratio",
		Series: []Series{
			{Name: "NextFit", X: []float64{4, 16, 64}, Y: []float64{3.2, 8, 12.8}},
			{Name: "FirstFit", X: []float64{4, 16, 64}, Y: []float64{1, 1, 1}},
		},
	}
	svg := p.Render()
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "NextFit", "FirstFit", "ratio vs n", "circle"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestPlotLogX(t *testing.T) {
	p := &Plot{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 2, 3, 4}},
		},
	}
	svg := p.Render()
	wellFormed(t, svg)
	// Log spacing: the gap between x(1) and x(10) equals x(10) to x(100).
	// Extract circle cx values.
	var cx []string
	for _, line := range strings.Split(svg, "\n") {
		if strings.HasPrefix(line, "<circle") {
			parts := strings.Split(line, `"`)
			cx = append(cx, parts[1])
		}
	}
	if len(cx) != 4 {
		t.Fatalf("expected 4 points, got %d", len(cx))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	wellFormed(t, p.Render())
}

func TestPlotEscapesXML(t *testing.T) {
	p := &Plot{Title: `a < b & "c"`, Series: []Series{{Name: "<s>", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	svg := p.Render()
	wellFormed(t, svg)
	if strings.Contains(svg, "a < b &") {
		t.Fatal("title not escaped")
	}
}

func TestGantt(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.9, Arrival: 0, Departure: 4},
		{ID: 2, Size: 0.9, Arrival: 2, Departure: 6},
	}
	res := packing.MustRun(packing.NewFirstFit(), l, nil)
	svg := Gantt(res, 0)
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 4 { // background + 2 usage + 2 items
		t.Fatalf("too few rects:\n%s", svg)
	}
	// Keep-alive run shows gray lingering beyond the items.
	ka := packing.MustRun(packing.NewFirstFit(), l, &packing.Options{KeepAlive: 2})
	wellFormed(t, Gantt(ka, 600))
}

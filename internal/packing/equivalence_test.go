package packing_test

// Cross-engine equivalence: the indexed engine (BinIndex queries) and the
// linear reference engine (O(B) scans with the same exact tie-breaking)
// must produce bit-identical packings for every standard policy. The
// linear engine is the executable specification; this suite is the oracle
// guarding the gap segment tree and the level-ordered index under both
// statistical (Poisson, MMPP) and adversarial workloads, with and
// without keep-alive — through the batch Run path and the online Stream
// path. External package: the workloads live in internal/workload, which
// itself imports packing.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"dbp/internal/event"
	_ "dbp/internal/gaming" // registers the "gaming" scenario
	"dbp/internal/item"
	"dbp/internal/packing"
	"dbp/internal/workload"
)

// sampleTrace is the committed instance the "trace" scenario replays in
// this suite (written by tracegen; gzip output is byte-deterministic).
const sampleTrace = "../workload/testdata/sample.csv.gz"

// equivWorkloads returns one scalar instance per REGISTERED scenario —
// statistical, adversarial, and trace replay alike — so any scenario
// joining the registry is automatically packed bit-identically on both
// engines. Sizes are modest: the point is coverage of placement
// decisions, not throughput. mu=8 satisfies every scenario's bounds
// (stress needs mu > 1, bestfit-relay mu >= 2); for the adversaries n
// is the construction parameter.
func equivWorkloads(t *testing.T) map[string]item.List {
	t.Helper()
	out := map[string]item.List{}
	for _, s := range workload.Scenarios() {
		spec := s.Name()
		if s.Kind() == workload.KindTrace {
			spec = "trace:" + sampleTrace
		}
		l, err := workload.FromSpec(spec, 240, 6, 8, 11, 1)
		if err != nil {
			t.Fatalf("scenario %s: %v", s.Name(), err)
		}
		out[s.Name()] = l
	}
	// One extra MMPP shape with short, violent bursts — historically the
	// best generator of keep-alive edge cases.
	out["mmpp-violent"] = workload.GenerateBursty(workload.BurstyConfig{
		Config:      workload.UniformConfig(400, 3, 8, 12),
		BurstFactor: 8, MeanCalm: 4, MeanBurst: 1,
	})
	return out
}

func sameRun(t *testing.T, label string, a, b *packing.Result) {
	t.Helper()
	if a.TotalUsage != b.TotalUsage {
		t.Fatalf("%s: usage %g (indexed) != %g (linear)", label, a.TotalUsage, b.TotalUsage)
	}
	if a.NumBins() != b.NumBins() || a.MaxConcurrentOpen != b.MaxConcurrentOpen {
		t.Fatalf("%s: fleet shape %d/%d (indexed) != %d/%d (linear)",
			label, a.NumBins(), a.MaxConcurrentOpen, b.NumBins(), b.MaxConcurrentOpen)
	}
	if len(a.Assignment) != len(b.Assignment) {
		t.Fatalf("%s: %d vs %d assignments", label, len(a.Assignment), len(b.Assignment))
	}
	for id, bin := range a.Assignment {
		if other, ok := b.Assignment[id]; !ok || other != bin {
			t.Fatalf("%s: job %d -> bin %d (indexed) vs %d (linear)", label, id, bin, other)
		}
	}
}

// equivVectorWorkloads returns the d-dimensional instances. At d=2 it
// sweeps EVERY registered scenario with a vector-demand form (scalar-only
// ones are skipped via ErrScalarOnly); at higher d it keeps a Poisson
// trace with independent vector demands. Both dimensions add a
// complementary-demand adversary — job i is heavy (0.6) in dimension
// i mod d and light (0.05) everywhere else, with staggered lifetimes —
// built so that which server fits is decided by a DIFFERENT dimension
// from one arrival to the next, the worst case for any per-dimension
// pruning structure that dares to cut a subtree it shouldn't.
func equivVectorWorkloads(t *testing.T, d int) map[string]item.List {
	t.Helper()
	out := map[string]item.List{}
	if d == 2 {
		for _, s := range workload.Scenarios() {
			spec := s.Name()
			if s.Kind() == workload.KindTrace {
				spec = "trace:" + sampleTrace
			}
			l, err := workload.FromSpec(spec, 160, 5, 8, int64(17+d), d)
			if errors.Is(err, workload.ErrScalarOnly) {
				continue
			}
			if err != nil {
				t.Fatalf("scenario %s (d=%d): %v", s.Name(), d, err)
			}
			out[s.Name()] = l
		}
	} else {
		out["vecpoisson"] = workload.GenerateVec(workload.UniformConfig(300, 5, 8, int64(17+d)), d)
	}
	adv := make(item.List, 0, 120)
	for i := 0; i < 120; i++ {
		sizes := make([]float64, d)
		for k := range sizes {
			sizes[k] = 0.05
		}
		sizes[i%d] = 0.6
		arr := float64(i) * 0.25
		adv = append(adv, item.Item{
			ID: item.ID(i + 1), Size: 0.6, Sizes: sizes,
			Arrival: arr, Departure: arr + 3 + float64(i%7),
		})
	}
	out["complement"] = adv
	return out
}

// equivPolicies is every policy the oracle covers: the standard scalar
// family plus the DVBP vector family (all of which accept both scalar
// and vector demands).
func equivPolicies() map[string]packing.Algorithm {
	m := packing.Standard()
	for k, v := range packing.Vector() {
		m[k] = v
	}
	return m
}

// TestEnginesEquivalentAcrossPolicies is the batch-path half of the
// oracle: packing.Run on both engines, every Standard policy, every
// workload, keep-alive off and on.
func TestEnginesEquivalentAcrossPolicies(t *testing.T) {
	for wname, jobs := range equivWorkloads(t) {
		for _, keepAlive := range []float64{0, 0.7} {
			for pname, algo := range packing.Standard() {
				label := fmt.Sprintf("%s/%s/ka=%g", wname, pname, keepAlive)
				idx, err := packing.Run(algo, jobs, &packing.Options{
					KeepAlive: keepAlive, Engine: packing.EngineIndexed, Validate: true,
				})
				if err != nil {
					t.Fatalf("%s indexed: %v", label, err)
				}
				lin, err := packing.Run(algo, jobs, &packing.Options{
					KeepAlive: keepAlive, Engine: packing.EngineLinear, Validate: true,
				})
				if err != nil {
					t.Fatalf("%s linear: %v", label, err)
				}
				sameRun(t, label, idx, lin)
			}
		}
	}
}

// TestStreamEnginesEquivalentAcrossPolicies is the online-path half:
// both engines fed the identical event sequence through Stream must
// agree on every per-event decision — server id, open/close actions —
// not just the final aggregates.
func TestStreamEnginesEquivalentAcrossPolicies(t *testing.T) {
	for wname, jobs := range equivWorkloads(t) {
		for _, keepAlive := range []float64{0, 0.7} {
			// The two streams run interleaved, so stateful policies (Next
			// Fit's current bin, Hybrid's class maps) need one instance per
			// stream; Standard() returns fresh instances on every call.
			linAlgos := packing.Standard()
			for pname, algo := range packing.Standard() {
				label := fmt.Sprintf("%s/%s/ka=%g", wname, pname, keepAlive)
				idx, err := packing.NewStreamEngine(algo, 0, 0, keepAlive, packing.EngineIndexed)
				if err != nil {
					t.Fatal(err)
				}
				lin, err := packing.NewStreamEngine(linAlgos[pname], 0, 0, keepAlive, packing.EngineLinear)
				if err != nil {
					t.Fatal(err)
				}
				q := event.NewFromList(jobs)
				for q.Len() > 0 {
					e := q.Pop()
					if e.Kind == event.Arrive {
						s1, o1, err1 := idx.Arrive(e.Item.ID, e.Item.Size, e.Item.Sizes, e.Time)
						s2, o2, err2 := lin.Arrive(e.Item.ID, e.Item.Size, e.Item.Sizes, e.Time)
						if err1 != nil || err2 != nil {
							t.Fatalf("%s: arrive errors %v / %v", label, err1, err2)
						}
						if s1 != s2 || o1 != o2 {
							t.Fatalf("%s: job %d -> server %d opened=%v (indexed) vs %d opened=%v (linear)",
								label, e.Item.ID, s1, o1, s2, o2)
						}
					} else {
						s1, c1, err1 := idx.Depart(e.Item.ID, e.Time)
						s2, c2, err2 := lin.Depart(e.Item.ID, e.Time)
						if err1 != nil || err2 != nil {
							t.Fatalf("%s: depart errors %v / %v", label, err1, err2)
						}
						if s1 != s2 || c1 != c2 {
							t.Fatalf("%s: job %d departed server %d closed=%v vs %d closed=%v",
								label, e.Item.ID, s1, c1, s2, c2)
						}
					}
				}
				idx.Shutdown()
				lin.Shutdown()
				end := jobs.PackingPeriod().Hi + keepAlive
				u1, u2 := idx.AccumulatedUsage(end), lin.AccumulatedUsage(end)
				if math.Abs(u1-u2) > 0 {
					t.Fatalf("%s: usage %g (indexed) != %g (linear)", label, u1, u2)
				}
				if idx.ServersUsed() != lin.ServersUsed() || idx.PeakServers() != lin.PeakServers() {
					t.Fatalf("%s: fleet shape mismatch", label)
				}
			}
		}
	}
}

// TestEnginesEquivalentVector is the d-dimensional batch-path oracle:
// the vector index (per-dimension gap trees + dominant-resource treap)
// against the linear reference, for every standard AND vector policy,
// d in {2, 4}, keep-alive off and on.
func TestEnginesEquivalentVector(t *testing.T) {
	for _, d := range []int{2, 4} {
		for wname, jobs := range equivVectorWorkloads(t, d) {
			for _, keepAlive := range []float64{0, 0.7} {
				for pname, algo := range equivPolicies() {
					label := fmt.Sprintf("d=%d/%s/%s/ka=%g", d, wname, pname, keepAlive)
					idx, err := packing.Run(algo, jobs, &packing.Options{
						KeepAlive: keepAlive, Engine: packing.EngineIndexed, Validate: true,
					})
					if err != nil {
						t.Fatalf("%s indexed: %v", label, err)
					}
					lin, err := packing.Run(algo, jobs, &packing.Options{
						KeepAlive: keepAlive, Engine: packing.EngineLinear, Validate: true,
					})
					if err != nil {
						t.Fatalf("%s linear: %v", label, err)
					}
					sameRun(t, label, idx, lin)
				}
			}
		}
	}
}

// TestStreamEnginesEquivalentVector is the d-dimensional online-path
// oracle: identical per-event decisions from both engines for every
// standard and vector policy on the vector workloads.
func TestStreamEnginesEquivalentVector(t *testing.T) {
	for _, d := range []int{2, 4} {
		for wname, jobs := range equivVectorWorkloads(t, d) {
			for _, keepAlive := range []float64{0, 0.7} {
				linAlgos := equivPolicies()
				for pname, algo := range equivPolicies() {
					label := fmt.Sprintf("d=%d/%s/%s/ka=%g", d, wname, pname, keepAlive)
					idx, err := packing.NewStreamEngine(algo, 0, d, keepAlive, packing.EngineIndexed)
					if err != nil {
						t.Fatal(err)
					}
					lin, err := packing.NewStreamEngine(linAlgos[pname], 0, d, keepAlive, packing.EngineLinear)
					if err != nil {
						t.Fatal(err)
					}
					q := event.NewFromList(jobs)
					for q.Len() > 0 {
						e := q.Pop()
						if e.Kind == event.Arrive {
							s1, o1, err1 := idx.Arrive(e.Item.ID, e.Item.Size, e.Item.Sizes, e.Time)
							s2, o2, err2 := lin.Arrive(e.Item.ID, e.Item.Size, e.Item.Sizes, e.Time)
							if err1 != nil || err2 != nil {
								t.Fatalf("%s: arrive errors %v / %v", label, err1, err2)
							}
							if s1 != s2 || o1 != o2 {
								t.Fatalf("%s: job %d -> server %d opened=%v (indexed) vs %d opened=%v (linear)",
									label, e.Item.ID, s1, o1, s2, o2)
							}
						} else {
							s1, c1, err1 := idx.Depart(e.Item.ID, e.Time)
							s2, c2, err2 := lin.Depart(e.Item.ID, e.Time)
							if err1 != nil || err2 != nil {
								t.Fatalf("%s: depart errors %v / %v", label, err1, err2)
							}
							if s1 != s2 || c1 != c2 {
								t.Fatalf("%s: job %d departed server %d closed=%v vs %d closed=%v",
									label, e.Item.ID, s1, c1, s2, c2)
							}
						}
					}
					idx.Shutdown()
					lin.Shutdown()
					end := jobs.PackingPeriod().Hi + keepAlive
					if u1, u2 := idx.AccumulatedUsage(end), lin.AccumulatedUsage(end); u1 != u2 {
						t.Fatalf("%s: usage %g (indexed) != %g (linear)", label, u1, u2)
					}
					if idx.ServersUsed() != lin.ServersUsed() || idx.PeakServers() != lin.PeakServers() {
						t.Fatalf("%s: fleet shape mismatch", label)
					}
				}
			}
		}
	}
}

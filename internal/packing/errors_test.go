package packing

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dbp/internal/item"
)

// TestStreamErrorClasses checks that every Stream rejection unwraps to
// exactly one sentinel via errors.Is and that the diagnostic messages
// kept their pre-sentinel text (the service layer matches classes, but
// humans still read the messages).
func TestStreamErrorClasses(t *testing.T) {
	sentinels := []error{ErrDuplicateJob, ErrUnknownJob, ErrTimeRegression, ErrBadDemand, ErrPolicyMisplace}
	cases := []struct {
		name    string
		trigger func(s *Stream) error
		want    error
		msg     string
	}{
		{
			name: "duplicate arrive",
			trigger: func(s *Stream) error {
				s.Arrive(1, 0.5, nil, 0)
				_, _, err := s.Arrive(1, 0.5, nil, 1)
				return err
			},
			want: ErrDuplicateJob,
			msg:  "already running",
		},
		{
			name: "depart unknown",
			trigger: func(s *Stream) error {
				_, _, err := s.Depart(99, 0)
				return err
			},
			want: ErrUnknownJob,
			msg:  "is not running",
		},
		{
			name: "time regression",
			trigger: func(s *Stream) error {
				s.Arrive(1, 0.5, nil, 5)
				_, _, err := s.Arrive(2, 0.5, nil, 4)
				return err
			},
			want: ErrTimeRegression,
			msg:  "time went backwards",
		},
		{
			name: "non-finite time",
			trigger: func(s *Stream) error {
				_, _, err := s.Arrive(1, 0.5, nil, math.NaN())
				return err
			},
			want: ErrTimeRegression,
			msg:  "non-finite time",
		},
		{
			name: "oversized job",
			trigger: func(s *Stream) error {
				_, _, err := s.Arrive(1, 1.5, nil, 0)
				return err
			},
			want: ErrBadDemand,
			msg:  "cannot fit any server",
		},
		{
			name: "non-positive size",
			trigger: func(s *Stream) error {
				_, _, err := s.Arrive(1, 0, nil, 0)
				return err
			},
			want: ErrBadDemand,
			msg:  "cannot fit any server",
		},
		{
			name: "dimension mismatch",
			trigger: func(s *Stream) error {
				_, _, err := s.Arrive(1, 0.5, []float64{0.5, 0.5}, 0)
				return err
			},
			want: ErrBadDemand,
			msg:  "has dim",
		},
		{
			name: "oversized vector component",
			trigger: func(s *Stream) error {
				s2 := NewStream(NewFirstFit(), 1, 2)
				_, _, err := s2.Arrive(1, 0.5, []float64{0.5, 1.5}, 0)
				return err
			},
			want: ErrBadDemand,
			msg:  "cannot fit any server",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.trigger(NewStream(NewFirstFit(), 1, 1))
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.want)
			}
			for _, s := range sentinels {
				if s != tc.want && errors.Is(err, s) {
					t.Errorf("error %v also matches unrelated sentinel %v", err, s)
				}
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("message %q lost its diagnostic %q", err, tc.msg)
			}
			if !strings.HasPrefix(err.Error(), "packing: ") {
				t.Errorf("message %q lost its package prefix", err)
			}
		})
	}
}

// TestRunSharesStreamSentinels: Run routes demand validation and the
// misplace check through the same engine core as Stream, so batch runs
// reject impossible demands and policy bugs with the identical typed
// sentinels instead of panicking mid-simulation (the simulator used to
// lack Stream's vector-demand validation entirely).
func TestRunSharesStreamSentinels(t *testing.T) {
	// Scalar demand exceeding a sub-unit fleet capacity.
	over := item.List{{ID: 1, Size: 0.9, Arrival: 0, Departure: 1}}
	if _, err := Run(NewFirstFit(), over, &Options{Capacity: 0.5}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("oversized scalar: err = %v, want ErrBadDemand", err)
	}
	// Vector demand with a component exceeding capacity.
	vec := item.List{{ID: 1, Size: 0.9, Sizes: []float64{0.2, 0.9}, Arrival: 0, Departure: 1}}
	if _, err := Run(NewFirstFit(), vec, &Options{Capacity: 0.5, Dim: 2}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("oversized vector: err = %v, want ErrBadDemand", err)
	}
	// A policy returning a non-fitting bin aborts with ErrPolicyMisplace.
	clash := item.List{
		{ID: 1, Size: 0.9, Arrival: 0, Departure: 10},
		{ID: 2, Size: 0.9, Arrival: 1, Departure: 10},
	}
	if _, err := Run(faultyFullBin{}, clash, nil); !errors.Is(err, ErrPolicyMisplace) {
		t.Fatalf("misplacing policy: err = %v, want ErrPolicyMisplace", err)
	}
}

// TestSnapshotAccessors exercises UsageTime and Snapshot against the
// stream's existing accessors on a small deterministic run.
func TestSnapshotAccessors(t *testing.T) {
	s := NewStream(NewFirstFit(), 1, 1)
	s.Arrive(1, 0.625, nil, 0)
	s.Arrive(2, 0.625, nil, 1) // does not fit with job 1: second server
	s.Arrive(3, 0.25, nil, 2)  // first-fits onto server 0
	s.Depart(1, 4)

	snap := s.Snapshot()
	if snap.Now != 4 || snap.Events != 4 {
		t.Fatalf("snapshot clock/events = %g/%d, want 4/4", snap.Now, snap.Events)
	}
	if snap.OpenServers != 2 || snap.ServersUsed != 2 || snap.PeakServers != 2 {
		t.Fatalf("snapshot servers = %+v", snap)
	}
	// Server 0 open [0,4) so far, server 1 open [1,4): usage 4 + 3.
	if want := 7.0; snap.UsageTime != want || s.UsageTime() != want {
		t.Fatalf("usage = %g / %g, want %g", snap.UsageTime, s.UsageTime(), want)
	}
	if s.UsageTime() != s.AccumulatedUsage(s.Now()) {
		t.Fatal("UsageTime disagrees with AccumulatedUsage(Now)")
	}
	if len(snap.Servers) != 2 {
		t.Fatalf("got %d server states, want 2", len(snap.Servers))
	}
	s0, s1 := snap.Servers[0], snap.Servers[1]
	if s0.Index != 0 || s0.Level != 0.25 || s0.Jobs != 1 || s0.OpenedAt != 0 {
		t.Fatalf("server 0 state = %+v", s0)
	}
	if s1.Index != 1 || s1.Level != 0.625 || s1.Jobs != 1 || s1.OpenedAt != 1 {
		t.Fatalf("server 1 state = %+v", s1)
	}
	// The snapshot must be detached from the live stream.
	s.Depart(2, 5)
	if snap.OpenServers != 2 || len(snap.Servers) != 2 {
		t.Fatal("snapshot mutated by later stream events")
	}
}

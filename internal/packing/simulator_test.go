package packing

import (
	"math/rand"
	"testing"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// binsBin aliases bins.Bin so the faulty policy below matches Algorithm.
type binsBin = bins.Bin

func TestRunRejectsInvalidInstance(t *testing.T) {
	bad := item.List{mk(1, 1.5, 0, 1)}
	if _, err := Run(NewFirstFit(), bad, nil); err == nil {
		t.Fatal("oversize item must be rejected")
	}
	dup := item.List{mk(1, 0.5, 0, 1), mk(1, 0.5, 2, 3)}
	if _, err := Run(NewFirstFit(), dup, nil); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

func TestRunRejectsMixedDims(t *testing.T) {
	l := item.List{
		mk(1, 0.5, 0, 1),
		{ID: 2, Size: 0.5, Sizes: []float64{0.5, 0.5}, Arrival: 0, Departure: 1},
	}
	if _, err := Run(NewFirstFit(), l, nil); err == nil {
		t.Fatal("mixed dimensionality must be rejected")
	}
}

func TestRunEmptyInstance(t *testing.T) {
	res := MustRun(NewFirstFit(), item.List{}, nil)
	if res.TotalUsage != 0 || res.NumBins() != 0 || res.MaxConcurrentOpen != 0 {
		t.Fatalf("empty run = %v", res)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleItem(t *testing.T) {
	res := MustRun(NewFirstFit(), item.List{mk(1, 1.0, 3, 8)}, nil)
	if res.TotalUsage != 5 || res.NumBins() != 1 {
		t.Fatalf("got %v", res)
	}
}

// A bin freed by a departure at time t must be usable by an arrival at the
// same t (half-open intervals, departures first).
func TestDepartureFreesCapacitySameInstant(t *testing.T) {
	l := item.List{
		mk(1, 1.0, 0, 5),
		mk(2, 1.0, 5, 9),
	}
	res := MustRun(NewFirstFit(), l, nil)
	// Item 1 departs at 5, closing bin 0; item 2 arrives at 5 and must
	// open a new bin (bin 0 closed at that very instant).
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2", res.NumBins())
	}
	if res.TotalUsage != 9 {
		t.Fatalf("usage = %g, want 9", res.TotalUsage)
	}
	// But if a *smaller* item remains, the bin stays open and receives
	// the arrival.
	l2 := item.List{
		mk(1, 0.9, 0, 5),
		mk(2, 0.1, 0, 9),
		mk(3, 0.9, 5, 9),
	}
	res2 := MustRun(NewFirstFit(), l2, nil)
	if res2.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1 (capacity freed at t=5 must be reusable at t=5)", res2.NumBins())
	}
}

func TestRunWithValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := randomInstance(rng, 200, 8)
	res, err := Run(NewFirstFit(), l, &Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomCapacity(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1), mk(2, 0.5, 0, 1), mk(3, 0.5, 0, 1)}
	// Capacity 2: all three fit one bin.
	res := MustRun(NewFirstFit(), l, &Options{Capacity: 2})
	if res.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1 at capacity 2", res.NumBins())
	}
}

func TestRunVectorItems(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.8, Sizes: []float64{0.8, 0.1}, Arrival: 0, Departure: 5},
		{ID: 2, Size: 0.8, Sizes: []float64{0.1, 0.8}, Arrival: 0, Departure: 5},
		{ID: 3, Size: 0.8, Sizes: []float64{0.8, 0.8}, Arrival: 0, Departure: 5},
	}
	res := MustRun(NewFirstFit(), l, nil)
	// Items 1 and 2 share a bin (0.9, 0.9); item 3 needs its own.
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2", res.NumBins())
	}
	if res.Assignment[1] != res.Assignment[2] {
		t.Fatal("complementary vector items must share a bin under FF")
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// faultyFullBin always returns the first open bin, fitting or not, to
// exercise the simulator's policy-bug detection.
type faultyFullBin struct{}

func (faultyFullBin) Name() string       { return "faulty" }
func (faultyFullBin) Reset()             {}
func (faultyFullBin) BinOpened(*binsBin) {}
func (faultyFullBin) Place(a Arrival, f Fleet) *binsBin {
	if open := f.Open(); len(open) > 0 {
		return open[0]
	}
	return nil
}

func TestRunDetectsPolicyBug(t *testing.T) {
	l := item.List{
		mk(1, 0.9, 0, 10),
		mk(2, 0.9, 1, 10), // does not fit bin 0, but faulty returns bin 0
	}
	if _, err := Run(faultyFullBin{}, l, nil); err == nil {
		t.Fatal("simulator must reject a non-fitting placement")
	}
}

func randomInstance(rng *rand.Rand, n int, horizon float64) item.List {
	l := make(item.List, n)
	for i := range l {
		a := rng.Float64() * horizon
		l[i] = mk(item.ID(i+1), 0.05+rng.Float64()*0.95, a, a+0.5+rng.Float64()*2)
	}
	return l
}

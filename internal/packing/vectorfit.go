package packing

import "dbp/internal/bins"

// The DVBP (Dynamic Vector Bin Packing) policy family: placement
// heuristics whose scoring is genuinely d-dimensional, after Murhekar,
// Arbour, Sarpatwar & Schieber ("Dynamic Vector Bin Packing for Online
// Resource Allocation in the Cloud", SPAA 2023) and the heuristics
// evaluated for VM placement by Lee & Tang and by Panigrahy et al.
// ("Heuristics for Vector Bin Packing"). Each treats a job's demand as
// the vector of its per-resource requirements (CPU, memory, network,
// disk, ...) and a server's state as its per-resource remaining
// capacities (gaps); scalar jobs degenerate to the corresponding 1-D
// classical rule.
//
// All five are stateless Any Fit policies — they never open a new server
// while some open server fits — and engine-agnostic: they place through
// the Fleet's vector queries, which the indexed engine answers from the
// d-dimensional bins.Index (pruned per-dimension max-gap descent and the
// dominant-resource treap) and the linear engine answers with reference
// scans. Ties always break toward the earliest-opened server, the same
// lexicographic rule as the scalar policies, so cross-engine packings
// are bit-identical.

// VectorFirstFit is First Fit on vector demands: the earliest-opened
// server that fits the demand in every dimension. It is the DVBP
// anchor policy — the rule whose MinUsageTime behaviour the paper's
// scalar FF analysis is closest to — named explicitly so vector
// experiment configurations can select the family uniformly. Its
// placements coincide with FirstFit's (which handles vector demands by
// the same rule); both run on the d-dimensional index.
type VectorFirstFit struct{}

// NewVectorFirstFit returns a vector First Fit policy.
func NewVectorFirstFit() *VectorFirstFit { return &VectorFirstFit{} }

// Name implements Algorithm.
func (*VectorFirstFit) Name() string { return "VectorFirstFit" }

// Place returns the lowest-indexed open server fitting every dimension.
func (*VectorFirstFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) == 0 {
		return f.FirstFitting(a.need())
	}
	return f.FirstFittingVec(a.Sizes)
}

// BinOpened implements Algorithm; stateless.
func (*VectorFirstFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; stateless.
func (*VectorFirstFit) Reset() {}

// VectorBestFit is Best Fit under the total-residual scalarization:
// among fitting servers it minimizes the SUM of per-dimension gaps (the
// L1 norm of the remaining-capacity vector), ties toward the earliest
// opened. For scalar jobs the sum is the gap itself and the rule is
// classical Best Fit.
type VectorBestFit struct{}

// NewVectorBestFit returns a vector Best Fit policy.
func NewVectorBestFit() *VectorBestFit { return &VectorBestFit{} }

// Name implements Algorithm.
func (*VectorBestFit) Name() string { return "VectorBestFit" }

// Place returns the fitting server with minimal total gap.
func (*VectorBestFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) == 0 {
		return f.TightestFitting(a.need())
	}
	var (
		best      *bins.Bin
		bestScore float64
	)
	f.EachFitting(a.Sizes, func(b *bins.Bin) bool {
		score := 0.0
		for d := range a.Sizes {
			score += b.GapAt(d)
		}
		if best == nil || score < bestScore {
			best, bestScore = b, score
		}
		return true
	})
	return best
}

// BinOpened implements Algorithm; stateless.
func (*VectorBestFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; stateless.
func (*VectorBestFit) Reset() {}

// DotProductFit is the dot-product heuristic of Panigrahy et al.: among
// fitting servers it maximizes the dot product of the demand vector and
// the server's remaining-capacity vector, ties toward the earliest
// opened — steering each job toward servers whose abundance profile
// aligns with the job's demand profile, so complementary jobs share
// servers. For scalar jobs it degenerates to Worst Fit (size * gap is
// maximal where gap is).
type DotProductFit struct{}

// NewDotProductFit returns a dot-product placement policy.
func NewDotProductFit() *DotProductFit { return &DotProductFit{} }

// Name implements Algorithm.
func (*DotProductFit) Name() string { return "DotProductFit" }

// Place returns the fitting server maximizing demand . gaps.
func (*DotProductFit) Place(a Arrival, f Fleet) *bins.Bin {
	sizes := a.sizeVec()
	var (
		best      *bins.Bin
		bestScore float64
	)
	f.EachFitting(sizes, func(b *bins.Bin) bool {
		score := 0.0
		for d, s := range sizes {
			score += s * b.GapAt(d)
		}
		if best == nil || score > bestScore {
			best, bestScore = b, score
		}
		return true
	})
	return best
}

// BinOpened implements Algorithm; stateless.
func (*DotProductFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; stateless.
func (*DotProductFit) Reset() {}

// NormBestFit is norm-based Best Fit (the "norm2" heuristic of the VM
// placement literature): among fitting servers it minimizes the squared
// L2 distance between the demand vector and the remaining-capacity
// vector — the residual capacity left stranded if the job were placed —
// ties toward the earliest opened. For scalar jobs it coincides with
// Best Fit (the closest gap at least the size is the smallest such gap).
type NormBestFit struct{}

// NewNormBestFit returns a norm-based Best Fit policy.
func NewNormBestFit() *NormBestFit { return &NormBestFit{} }

// Name implements Algorithm.
func (*NormBestFit) Name() string { return "NormBestFit" }

// Place returns the fitting server minimizing ||gaps - demand||^2.
func (*NormBestFit) Place(a Arrival, f Fleet) *bins.Bin {
	sizes := a.sizeVec()
	var (
		best      *bins.Bin
		bestScore float64
	)
	f.EachFitting(sizes, func(b *bins.Bin) bool {
		score := 0.0
		for d, s := range sizes {
			r := b.GapAt(d) - s
			score += r * r
		}
		if best == nil || score < bestScore {
			best, bestScore = b, score
		}
		return true
	})
	return best
}

// BinOpened implements Algorithm; stateless.
func (*NormBestFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; stateless.
func (*NormBestFit) Reset() {}

// DRWorstFit is dominant-resource Worst Fit: among fitting servers it
// maximizes the remaining capacity of the server's dominant (most
// loaded) resource — min over dimensions of gap — ties toward the
// earliest opened. This is the d-dimensional reading of Worst Fit's
// "emptiest server" rule (a server is as empty as its scarcest
// resource), the scalarization the dominant-resource treap in
// bins.Index answers in O(log B) per group. For scalar jobs MinGap is
// the gap and the rule is classical Worst Fit.
type DRWorstFit struct{}

// NewDRWorstFit returns a dominant-resource Worst Fit policy.
func NewDRWorstFit() *DRWorstFit { return &DRWorstFit{} }

// Name implements Algorithm.
func (*DRWorstFit) Name() string { return "DRWorstFit" }

// Place returns the fitting server with maximal min-dimension gap.
func (*DRWorstFit) Place(a Arrival, f Fleet) *bins.Bin {
	return f.MaxMinGapFitting(a.sizeVec())
}

// BinOpened implements Algorithm; stateless.
func (*DRWorstFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; stateless.
func (*DRWorstFit) Reset() {}

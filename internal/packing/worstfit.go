package packing

import "dbp/internal/bins"

// WorstFit places each item into the fitting open bin with the most
// remaining capacity (lowest level), breaking ties toward the earliest
// opened bin. Like Best Fit and First Fit it is a member of the Any Fit
// family (it never opens a new bin while some open bin fits), so the
// paper's mu+1 Any-Fit lower bound applies to it (Experiment E3).
type WorstFit struct{}

// NewWorstFit returns a Worst Fit policy.
func NewWorstFit() *WorstFit { return &WorstFit{} }

// Name implements Algorithm.
func (*WorstFit) Name() string { return "WorstFit" }

// Place returns the fitting bin with maximal gap (ties: lowest index).
func (*WorstFit) Place(a Arrival, open []*bins.Bin) *bins.Bin {
	var best *bins.Bin
	bestGap := 0.0
	for _, b := range open {
		if !fits(b, a) {
			continue
		}
		if best == nil || b.Gap() > bestGap+bins.Eps {
			best, bestGap = b, b.Gap()
		}
	}
	return best
}

// Reset implements Algorithm; Worst Fit is stateless.
func (*WorstFit) Reset() {}

package packing

import "dbp/internal/bins"

// WorstFit places each item into the fitting open bin with the most
// remaining capacity (largest gap), breaking ties toward the earliest
// opened bin. Like Best Fit and First Fit it is a member of the Any Fit
// family (it never opens a new bin while some open bin fits), so the
// paper's mu+1 Any-Fit lower bound applies to it (Experiment E3).
type WorstFit struct{}

// NewWorstFit returns a Worst Fit policy.
func NewWorstFit() *WorstFit { return &WorstFit{} }

// Name implements Algorithm.
func (*WorstFit) Name() string { return "WorstFit" }

// Place returns the fitting bin with maximal gap (ties: lowest index).
func (*WorstFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) > 0 {
		// Vector demand: same historical scalar scoring (largest
		// first-dimension gap) over the pruned fitting enumeration. For
		// the dominant-resource vector rule see DRWorstFit.
		var best *bins.Bin
		f.EachFitting(a.Sizes, func(b *bins.Bin) bool {
			if best == nil || b.Gap() > best.Gap() {
				best = b
			}
			return true
		})
		return best
	}
	return f.EmptiestFitting(a.need())
}

// BinOpened implements Algorithm; Worst Fit tracks no bin state.
func (*WorstFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; Worst Fit is stateless.
func (*WorstFit) Reset() {}

package packing

import "dbp/internal/bins"

// LastFit places each item into the most recently opened bin that fits
// (highest index) — the mirror image of First Fit, included as an Any Fit
// baseline for the algorithm-comparison experiments. Intuition from the
// paper's analysis says this should be worse than First Fit: First Fit
// drains old bins' remaining life by always preferring them, while Last
// Fit keeps old, nearly-empty bins alive.
type LastFit struct{}

// NewLastFit returns a Last Fit policy.
func NewLastFit() *LastFit { return &LastFit{} }

// Name implements Algorithm.
func (*LastFit) Name() string { return "LastFit" }

// Place returns the highest-indexed open bin that fits, or nil.
func (*LastFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) > 0 {
		return f.LastFittingVec(a.Sizes)
	}
	return f.LastFitting(a.need())
}

// BinOpened implements Algorithm; Last Fit tracks no bin state.
func (*LastFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; Last Fit is stateless.
func (*LastFit) Reset() {}

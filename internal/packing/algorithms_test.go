package packing

import (
	"strings"
	"testing"

	"dbp/internal/item"
)

func mk(id item.ID, size, a, d float64) item.Item {
	return item.Item{ID: id, Size: size, Arrival: a, Departure: d}
}

// handInstance: A(0.5,[0,2)), B(0.6,[1,3)), C(0.4,[1,4)) distinguishes
// First Fit from Best Fit (hand-computed usages 6 vs 5).
func handInstance() item.List {
	return item.List{
		mk(1, 0.5, 0, 2),
		mk(2, 0.6, 1, 3),
		mk(3, 0.4, 1, 4),
	}
}

func TestFirstFitHandExample(t *testing.T) {
	res := MustRun(NewFirstFit(), handInstance(), nil)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2", res.NumBins())
	}
	// C (0.4) fits bin 0 (level 0.5 at t=1), so FF puts it there.
	if res.Assignment[3] != 0 {
		t.Fatalf("FF put item 3 in bin %d, want 0", res.Assignment[3])
	}
	if res.TotalUsage != 6 {
		t.Fatalf("FF usage = %g, want 6 (bin0 [0,4), bin1 [1,3))", res.TotalUsage)
	}
	if res.MaxConcurrentOpen != 2 {
		t.Fatalf("peak open = %d, want 2", res.MaxConcurrentOpen)
	}
}

func TestBestFitHandExample(t *testing.T) {
	res := MustRun(NewBestFit(), handInstance(), nil)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// At t=1 gaps are bin0: 0.5, bin1: 0.4; Best Fit prefers the tighter
	// bin 1 for C (0.4).
	if res.Assignment[3] != 1 {
		t.Fatalf("BF put item 3 in bin %d, want 1", res.Assignment[3])
	}
	if res.TotalUsage != 5 {
		t.Fatalf("BF usage = %g, want 5 (bin0 [0,2), bin1 [1,4))", res.TotalUsage)
	}
}

func TestWorstFitPrefersEmptiest(t *testing.T) {
	// Bin 0 filled to 0.8, bin 1 to 0.2; a 0.1 item goes to bin 1 under
	// Worst Fit, bin 0 under Best Fit, bin 0 under First Fit.
	l := item.List{
		mk(1, 0.8, 0, 10),
		mk(2, 0.9, 0, 10), // forces bin 1 open
		mk(3, 0.1, 1, 10), // WF target probe — placed after bin levels drop
	}
	// Drop bin 1's level to 0.2 by replacing the big item: use departures.
	l = item.List{
		mk(1, 0.8, 0, 10),
		mk(2, 0.9, 0, 2),
		mk(4, 0.2, 1, 10), // joins bin 1 under any policy? No: FF puts it in bin 0? 0.8+0.2=1.0 fits bin 0.
	}
	_ = l
	// Simpler deterministic construction: two bins opened by oversize
	// pairs, then probe.
	l = item.List{
		mk(1, 0.8, 0, 10), // bin 0
		mk(2, 0.3, 0, 10), // does not fit bin 0 -> bin 1
		mk(3, 0.1, 1, 10), // fits both; gaps: bin0 0.2, bin1 0.7
	}
	wf := MustRun(NewWorstFit(), l, nil)
	if wf.Assignment[3] != 1 {
		t.Fatalf("WF put probe in bin %d, want 1", wf.Assignment[3])
	}
	ff := MustRun(NewFirstFit(), l, nil)
	if ff.Assignment[3] != 0 {
		t.Fatalf("FF put probe in bin %d, want 0", ff.Assignment[3])
	}
	bf := MustRun(NewBestFit(), l, nil)
	if bf.Assignment[3] != 0 {
		t.Fatalf("BF put probe in bin %d, want 0", bf.Assignment[3])
	}
}

func TestLastFitPrefersNewest(t *testing.T) {
	l := item.List{
		mk(1, 0.6, 0, 10), // bin 0
		mk(2, 0.6, 0, 10), // bin 1
		mk(3, 0.2, 1, 10), // fits both; LF -> bin 1, FF -> bin 0
	}
	lf := MustRun(NewLastFit(), l, nil)
	if lf.Assignment[3] != 1 {
		t.Fatalf("LF put probe in bin %d, want 1", lf.Assignment[3])
	}
}

func TestNextFitNeverRevisits(t *testing.T) {
	// Item 2 does not fit bin 0, so bin 0 becomes unavailable forever;
	// item 3 would fit bin 0 but Next Fit must open/use the available bin.
	l := item.List{
		mk(1, 0.5, 0, 10),
		mk(2, 0.7, 1, 10), // forces new available bin 1
		mk(3, 0.2, 2, 10), // fits bin 0 (0.5) and bin 1 (0.7): NF -> bin 1
	}
	nf := MustRun(NewNextFit(), l, nil)
	if nf.Assignment[3] != 1 {
		t.Fatalf("NF put item 3 in bin %d, want 1 (bin 0 is unavailable)", nf.Assignment[3])
	}
	ff := MustRun(NewFirstFit(), l, nil)
	if ff.Assignment[3] != 0 {
		t.Fatalf("FF put item 3 in bin %d, want 0", ff.Assignment[3])
	}
}

func TestNextFitAvailableBinCloses(t *testing.T) {
	// The available bin closes by departures; the next arrival must open a
	// fresh bin without crashing on the stale reference.
	l := item.List{
		mk(1, 0.5, 0, 1),
		mk(2, 0.5, 2, 3),
	}
	nf := MustRun(NewNextFit(), l, nil)
	if nf.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2", nf.NumBins())
	}
	if nf.TotalUsage != 2 {
		t.Fatalf("usage = %g, want 2", nf.TotalUsage)
	}
}

func TestNextFitPaperConstructionSmall(t *testing.T) {
	// Section VIII with n=3, mu=4: pairs (1/2, 1/(2n)) arriving in
	// sequence at t=0; halves depart at 1, slivers at mu.
	n, mu := 3, 4.0
	var l item.List
	for i := 0; i < n; i++ {
		l = append(l,
			mk(item.ID(2*i+1), 0.5, 0, 1),
			mk(item.ID(2*i+2), 1.0/(2.0*float64(n)), 0, mu),
		)
	}
	nf := MustRun(NewNextFit(), l, nil)
	// Each pair opens its own bin: the next pair's 1/2 does not fit in a
	// bin at level 1/2 + 1/(2n) ... it would: 0.5+0.5+1/6 > 1. Right.
	if nf.NumBins() != n {
		t.Fatalf("NF bins = %d, want %d", nf.NumBins(), n)
	}
	if nf.TotalUsage != float64(n)*mu {
		t.Fatalf("NF usage = %g, want n*mu = %g", nf.TotalUsage, float64(n)*mu)
	}
	// First Fit on the same instance packs all slivers with the first
	// pair's bin and pairs of halves together? FF: item1(0.5)->bin0;
	// item2(1/6)->bin0; item3(0.5)->bin1 (0.5+1/6+0.5 > 1); item4->bin0?
	// level 2/3, +1/6 = 5/6 fits -> bin0... FF does far better than NF.
	ff := MustRun(NewFirstFit(), l, nil)
	if ff.TotalUsage >= nf.TotalUsage {
		t.Fatalf("FF usage %g must beat NF usage %g on the NF adversary", ff.TotalUsage, nf.TotalUsage)
	}
}

func TestHybridFirstFitClassSeparation(t *testing.T) {
	// A large (0.6) and a small (0.3) item that would share a bin under
	// plain FF must occupy distinct bins under HybridFF(k=2).
	l := item.List{
		mk(1, 0.6, 0, 10),
		mk(2, 0.3, 0, 10),
	}
	h := MustRun(NewHybridFirstFit(2), l, nil)
	if h.NumBins() != 2 {
		t.Fatalf("HFF bins = %d, want 2 (classes must not mix)", h.NumBins())
	}
	ff := MustRun(NewFirstFit(), l, nil)
	if ff.NumBins() != 1 {
		t.Fatalf("FF bins = %d, want 1", ff.NumBins())
	}
	// Small items still share their class bin.
	l2 := item.List{
		mk(1, 0.3, 0, 10),
		mk(2, 0.3, 0, 10),
		mk(3, 0.6, 0, 10),
		mk(4, 0.4, 0, 10), // large class: > 1/2? 0.4 <= 1/2 -> small class; fits with the 0.3s? 0.3+0.3+0.4=1.0 yes
	}
	h2 := MustRun(NewHybridFirstFit(2), l2, nil)
	if h2.NumBins() != 2 {
		t.Fatalf("HFF bins = %d, want 2", h2.NumBins())
	}
	if h2.Assignment[1] != h2.Assignment[2] || h2.Assignment[1] != h2.Assignment[4] {
		t.Fatal("small items must share the small-class bin")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		size float64
		k    int
		want int
	}{
		{0.9, 2, 0}, {0.51, 2, 0}, {0.5, 2, 1}, {0.1, 2, 1},
		{0.9, 3, 0}, {0.5, 3, 1}, {0.4, 3, 1}, {1.0 / 3.0, 3, 2}, {0.1, 3, 2},
	}
	for _, c := range cases {
		if got := classify(c.size, c.k); got != c.want {
			t.Errorf("classify(%g, %d) = %d, want %d", c.size, c.k, got, c.want)
		}
	}
}

func TestHybridNextFitClassSeparation(t *testing.T) {
	l := item.List{
		mk(1, 0.6, 0, 10),
		mk(2, 0.3, 0, 10),
		mk(3, 0.3, 0, 10),
	}
	h := MustRun(NewHybridNextFit(2), l, nil)
	if h.NumBins() != 2 {
		t.Fatalf("HNF bins = %d, want 2", h.NumBins())
	}
	if h.Assignment[2] != h.Assignment[3] {
		t.Fatal("small items must share the small-class available bin")
	}
}

func TestRandomFitReproducible(t *testing.T) {
	l := make(item.List, 0, 60)
	for i := 0; i < 60; i++ {
		l = append(l, mk(item.ID(i), 0.2, float64(i%7), float64(i%7)+5))
	}
	a := MustRun(NewRandomFit(7), l, nil)
	b := MustRun(NewRandomFit(7), l, nil)
	for id, ba := range a.Assignment {
		if b.Assignment[id] != ba {
			t.Fatal("same seed must reproduce the same packing")
		}
	}
	c := MustRun(NewRandomFit(8), l, nil)
	diff := false
	for id := range a.Assignment {
		if c.Assignment[id] != a.Assignment[id] {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("different seeds produced identical packings (possible but unlikely)")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 standard algorithms, got %v", names)
	}
	for _, n := range names {
		a, err := ByName(strings.ToUpper(n))
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if a == nil {
			t.Fatalf("ByName(%q) returned nil", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestHybridPanicsOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { NewHybridFirstFit(1) },
		func() { NewHybridNextFit(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for k < 2")
				}
			}()
			f()
		}()
	}
}

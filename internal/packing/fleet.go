package packing

import (
	"fmt"
	"math"
	"sort"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// Heterogeneous fleets: real clouds offer several instance sizes. The
// paper normalizes all servers to unit capacity; this extension lets a
// run draw servers from a catalog of capacity tiers (all <= 1, the
// largest conventionally 1.0 so item sizes keep their (0, 1] meaning).
// The packing policy is unchanged — First Fit et al. already consult
// each bin's own capacity — only the decision "what size server to open
// when nothing fits" is new, made by a TypeChooser.

// ServerType is one tier of the fleet catalog.
type ServerType struct {
	Name     string
	Capacity float64 // in (0, 1]
}

// TypeChooser picks the fleet tier (index into fleet) to open for an
// arrival no open server could take. Implementations must return a tier
// whose capacity fits the arrival; the simulator validates.
type TypeChooser func(a Arrival, fleet []ServerType) int

// RightSize returns the chooser that opens the smallest tier fitting the
// arrival — cost-conscious, fragmentation-prone.
func RightSize() TypeChooser {
	return func(a Arrival, fleet []ServerType) int {
		best := -1
		for i, t := range fleet {
			if t.Capacity+bins.Eps >= a.Size && (best < 0 || t.Capacity < fleet[best].Capacity) {
				best = i
			}
		}
		return best
	}
}

// LargestType returns the chooser that always opens the biggest tier —
// consolidation-friendly, pays for headroom.
func LargestType() TypeChooser {
	return func(a Arrival, fleet []ServerType) int {
		best := 0
		for i, t := range fleet {
			if t.Capacity > fleet[best].Capacity {
				best = i
			}
		}
		return best
	}
}

// validateFleet checks a fleet catalog: at least one tier, capacities in
// (0, 1], sorted copies returned for deterministic reporting.
func validateFleet(fleet []ServerType) ([]ServerType, error) {
	if len(fleet) == 0 {
		return nil, fmt.Errorf("packing: empty fleet")
	}
	out := append([]ServerType(nil), fleet...)
	maxCap := 0.0
	for _, t := range out {
		if !(t.Capacity > 0) || t.Capacity > 1 {
			return nil, fmt.Errorf("packing: fleet tier %q capacity %g outside (0, 1]", t.Name, t.Capacity)
		}
		maxCap = math.Max(maxCap, t.Capacity)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Capacity < out[j].Capacity })
	return out, nil
}

// RunFleet simulates the online packing with a heterogeneous fleet: when
// the policy opens a server, chooser picks the tier. opt.Capacity and
// opt.Dim are ignored (fleet runs are scalar); the other options apply.
// Items larger than every tier are rejected up front.
func RunFleet(algo Algorithm, l item.List, fleet []ServerType, chooser TypeChooser, opt *Options) (*Result, error) {
	fleetSorted, err := validateFleet(fleet)
	if err != nil {
		return nil, err
	}
	if chooser == nil {
		chooser = RightSize()
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("packing: invalid instance: %w", err)
	}
	maxCap := fleetSorted[len(fleetSorted)-1].Capacity
	for _, it := range l {
		if it.Dim() != 1 {
			return nil, fmt.Errorf("packing: fleet runs are 1-D; item %d has dim %d", it.ID, it.Dim())
		}
		if it.Size > maxCap+bins.Eps {
			return nil, fmt.Errorf("packing: item %d (size %g) exceeds the largest tier (%g)", it.ID, it.Size, maxCap)
		}
	}
	return runCore(algo, l, opt, func(a Arrival) (float64, error) {
		idx := chooser(a, fleetSorted)
		if idx < 0 || idx >= len(fleetSorted) {
			return 0, fmt.Errorf("packing: type chooser returned invalid tier %d for item %d", idx, a.ID)
		}
		t := fleetSorted[idx]
		if t.Capacity+bins.Eps < a.Size {
			return 0, fmt.Errorf("packing: chooser picked tier %q (cap %g) too small for item %d (size %g)",
				t.Name, t.Capacity, a.ID, a.Size)
		}
		return t.Capacity, nil
	})
}

package packing

import (
	"fmt"

	"dbp/internal/bins"
)

// NextFit is the Next Fit packing algorithm as defined in Sec. VIII of the
// paper: exactly one bin is "available" for receiving new items at any
// time. If an incoming item does not fit in the available bin, that bin is
// marked unavailable forever and a new bin is opened (and becomes
// available). Unavailable bins close when their items depart but never
// receive further items.
//
// Kamali & López-Ortiz proved Next Fit is at most (2mu+1)-competitive; the
// paper's Sec. VIII construction shows it is at least 2mu-competitive, so
// the multiplicative factor 2 for mu is inherent — whereas First Fit
// achieves factor 1 (Theorem 1). Experiment E2 reproduces the
// construction.
//
// Next Fit inspects only its one retained bin — O(1) per event, no index
// queries at all.
type NextFit struct {
	available *bins.Bin
}

// NewNextFit returns a Next Fit policy.
func NewNextFit() *NextFit { return &NextFit{} }

// Name implements Algorithm.
func (*NextFit) Name() string { return "NextFit" }

// Place puts the arrival in the available bin if it fits; otherwise it
// requests a new bin (which the engine reports via BinOpened, making it
// the new available bin).
func (nf *NextFit) Place(a Arrival, f Fleet) *bins.Bin {
	if nf.available != nil && nf.available.IsOpen() && fits(nf.available, a) {
		return nf.available
	}
	// Either no available bin, it closed on its own, or the item does not
	// fit: mark it unavailable (drop the reference) and open a new bin.
	nf.available = nil
	return nil
}

// BinOpened records the freshly opened bin as the available bin.
// The engine calls it whenever Place returned nil and a bin was opened.
func (nf *NextFit) BinOpened(b *bins.Bin) { nf.available = b }

// Reset implements Algorithm.
func (nf *NextFit) Reset() { nf.available = nil }

// SaveState implements StatefulAlgorithm: the available bin's index, or
// nothing. A closed available bin is saved as nothing — Place treats the
// two identically (first branch fails, bin goes unavailable forever).
func (nf *NextFit) SaveState() PolicyState {
	st := PolicyState{}
	if nf.available != nil && nf.available.IsOpen() {
		st.Bins = []int{nf.available.Index}
	}
	return st
}

// RestoreState implements StatefulAlgorithm.
func (nf *NextFit) RestoreState(st PolicyState, bin func(int) *bins.Bin) error {
	nf.available = nil
	switch len(st.Bins) {
	case 0:
		return nil
	case 1:
		b := bin(st.Bins[0])
		if b == nil {
			return fmt.Errorf("NextFit state names unknown open server %d", st.Bins[0])
		}
		nf.available = b
		return nil
	default:
		return fmt.Errorf("NextFit state lists %d available servers, want at most 1", len(st.Bins))
	}
}

package packing

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dbp/internal/item"
)

// testEv is one scripted stream event for the restore property tests.
type testEv struct {
	kind  string // "arrive" | "depart"
	id    item.ID
	size  float64
	sizes []float64
	t     float64
}

// genEvents scripts a keep-alive-exercising workload with deliberate
// rejections mixed in (duplicate arrivals, unknown departures, oversized
// demands) — rejected events still advance the stream clock, so a
// restore that mishandled them would show up as a state divergence.
func genEvents(seed int64, n, dim int) []testEv {
	rng := rand.New(rand.NewSource(seed))
	var evs []testEv
	var live []item.ID
	next := item.ID(1)
	now := 0.0
	for len(evs) < n {
		if rng.Intn(4) > 0 {
			now += rng.Float64() * 0.8
		}
		switch r := rng.Float64(); {
		case r < 0.05 && len(live) > 0: // duplicate arrive: rejected
			evs = append(evs, testEv{kind: "arrive", id: live[rng.Intn(len(live))], size: 0.2, t: now})
		case r < 0.10: // unknown depart: rejected
			evs = append(evs, testEv{kind: "depart", id: 1 << 40, t: now})
		case r < 0.13 && dim == 1: // oversized arrive: rejected
			evs = append(evs, testEv{kind: "arrive", id: next, size: 1.7, t: now})
			next++
		case r < 0.55 || len(live) == 0: // fresh arrive
			ev := testEv{kind: "arrive", id: next, size: 0.05 + rng.Float64()*0.6, t: now}
			if dim > 1 {
				ev.sizes = make([]float64, dim)
				ev.sizes[0] = ev.size
				for d := 1; d < dim; d++ {
					ev.sizes[d] = rng.Float64() * ev.size
				}
			}
			evs = append(evs, ev)
			live = append(live, next)
			next++
		default: // depart a live job
			i := rng.Intn(len(live))
			evs = append(evs, testEv{kind: "depart", id: live[i], t: now})
			live = append(live[:i], live[i+1:]...)
		}
		if rng.Intn(40) == 0 {
			now += 3 // jump past several keep-alive expiries at once
		}
	}
	return evs
}

// errClass collapses an error to its sentinel class for comparison.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDuplicateJob):
		return "duplicate"
	case errors.Is(err, ErrUnknownJob):
		return "unknown"
	case errors.Is(err, ErrBadDemand):
		return "demand"
	case errors.Is(err, ErrTimeRegression):
		return "time"
	case errors.Is(err, ErrPolicyMisplace):
		return "misplace"
	}
	return "other"
}

func applyEv(s *Stream, ev testEv) (srv int, flag bool, class string) {
	if ev.kind == "arrive" {
		srv, opened, err := s.Arrive(ev.id, ev.size, ev.sizes, ev.t)
		return srv, opened, errClass(err)
	}
	srv, closed, err := s.Depart(ev.id, ev.t)
	return srv, closed, errClass(err)
}

// roundTrip pushes a snapshot through JSON, as the durable snapshot
// files do; float64 survives encoding/json bit-exactly.
func roundTrip(t *testing.T, snap Snapshot) Snapshot {
	t.Helper()
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var out Snapshot
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return out
}

// TestRestoreStreamBitIdentical is the restore property test: for every
// standard policy, run a workload to a midpoint, snapshot, restore a
// fresh stream from the JSON round-tripped snapshot, then drive both
// streams through the identical suffix. Every result (server index,
// opened/closed flag, error class) and the final drained snapshots must
// match bit for bit.
func TestRestoreStreamBitIdentical(t *testing.T) {
	names := make([]string, 0, 20)
	for name := range Standard() {
		names = append(names, name)
	}
	for name := range Vector() {
		names = append(names, name)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, tc := range []struct {
				label     string
				dim       int
				keepAlive float64
			}{
				{"scalar", 1, 0},
				{"keepalive", 1, 0.6},
				{"vector", 2, 0.6},
				{"vector4", 4, 0.3},
			} {
				algo, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				ref := NewStreamKeepAlive(algo, 1, tc.dim, tc.keepAlive)
				evs := genEvents(11+int64(len(name)), 400, tc.dim)
				mid := len(evs) * 3 / 5
				for _, ev := range evs[:mid] {
					applyEv(ref, ev)
				}
				snap := ref.Snapshot()

				fresh, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				restored, err := RestoreStream(fresh, roundTrip(t, snap))
				if err != nil {
					t.Fatalf("%s: RestoreStream: %v", tc.label, err)
				}
				if got := restored.Snapshot(); !reflect.DeepEqual(got, snap) {
					t.Fatalf("%s: restored snapshot differs:\n got %+v\nwant %+v", tc.label, got, snap)
				}
				for k, ev := range evs[mid:] {
					rs, rf, rc := applyEv(ref, ev)
					gs, gf, gc := applyEv(restored, ev)
					if rs != gs || rf != gf || rc != gc {
						t.Fatalf("%s: suffix event %d (%+v): ref (%d,%v,%q) != restored (%d,%v,%q)",
							tc.label, k, ev, rs, rf, rc, gs, gf, gc)
					}
				}
				ref.Shutdown()
				restored.Shutdown()
				if a, b := ref.Snapshot(), restored.Snapshot(); !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: drained snapshots differ:\n ref      %+v\n restored %+v", tc.label, a, b)
				}
				if err := ref.Ledger().CheckInvariants(); err != nil {
					t.Fatalf("%s: reference invariants: %v", tc.label, err)
				}
				if err := restored.Ledger().CheckInvariants(); err != nil {
					t.Fatalf("%s: restored invariants: %v", tc.label, err)
				}
			}
		})
	}
}

// TestRestoreStreamLinearEngine pins restore on the linear reference
// engine (no index to rebuild, same exact semantics).
func TestRestoreStreamLinearEngine(t *testing.T) {
	ref, err := NewStreamEngine(NewFirstFit(), 1, 1, 0.5, EngineLinear)
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(7, 300, 1)
	mid := len(evs) / 2
	for _, ev := range evs[:mid] {
		applyEv(ref, ev)
	}
	snap := ref.Snapshot()
	if snap.Engine != string(EngineLinear) {
		t.Fatalf("snapshot engine = %q", snap.Engine)
	}
	restored, err := RestoreStream(NewFirstFit(), roundTrip(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	for k, ev := range evs[mid:] {
		rs, rf, rc := applyEv(ref, ev)
		gs, gf, gc := applyEv(restored, ev)
		if rs != gs || rf != gf || rc != gc {
			t.Fatalf("suffix event %d: ref (%d,%v,%q) != restored (%d,%v,%q)", k, rs, rf, rc, gs, gf, gc)
		}
	}
	if a, b := ref.Snapshot(), restored.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n ref      %+v\n restored %+v", a, b)
	}
}

// TestAdvanceMatchesRejectedEvent pins the tick-replay contract the WAL
// relies on: an event that was rejected after advancing the clock
// (duplicate, unknown, bad demand) mutates the stream exactly like a
// bare Advance at the same time.
func TestAdvanceMatchesRejectedEvent(t *testing.T) {
	mk := func() *Stream {
		s := NewStreamKeepAlive(NewFirstFit(), 1, 1, 0.5)
		s.Arrive(1, 0.4, nil, 0)
		s.Arrive(2, 0.9, nil, 1)
		s.Depart(2, 2) // server 1 lingers until 2.5
		return s
	}
	a, b := mk(), mk()
	if _, _, err := a.Arrive(1, 0.3, nil, 3); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("want duplicate rejection, got %v", err)
	}
	if err := b.Advance(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Depart(77, 3.5); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("want unknown rejection, got %v", err)
	}
	if err := b.Advance(3.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Arrive(9, 42, nil, 4); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("want demand rejection, got %v", err)
	}
	if err := b.Advance(4); err != nil {
		t.Fatal(err)
	}
	// A rejected regression mutates nothing and must not be replayed.
	if _, _, err := a.Arrive(9, 0.1, nil, 1); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("want time rejection, got %v", err)
	}
	if err := b.Advance(1); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("Advance(1): want time rejection, got %v", err)
	}
	if x, y := a.Snapshot(), b.Snapshot(); !reflect.DeepEqual(x, y) {
		t.Fatalf("snapshots diverged:\n rejected %+v\n ticked   %+v", x, y)
	}
}

// TestRestoreStreamCopiesSnapshot is the aliasing regression test: a
// restored stream must own its float state outright, so a caller that
// mutates (or reuses as scratch) the snapshot's Levels and Sizes slices
// AFTER RestoreStream returns must not perturb the stream. The bug this
// pins: RestoreStream handing sv.Levels/jb.Sizes straight through to
// bins.RestoreLedger, which adopts them — scribbling the snapshot then
// corrupted live server levels and resident jobs' demand vectors, so
// later departs subtracted garbage.
func TestRestoreStreamCopiesSnapshot(t *testing.T) {
	evs := genEvents(23, 300, 2)
	mid := len(evs) * 3 / 5
	ref := NewStreamKeepAlive(NewFirstFit(), 1, 2, 0.6)
	for _, ev := range evs[:mid] {
		applyEv(ref, ev)
	}
	snap := ref.Snapshot()

	restored, err := RestoreStream(NewFirstFit(), snap)
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over every float slice the snapshot holds, as a caller
	// recycling the snapshot's buffers would.
	scribbled := false
	for i := range snap.Servers {
		for d := range snap.Servers[i].Levels {
			snap.Servers[i].Levels[d] = 17.5
			scribbled = true
		}
		for j := range snap.Servers[i].Active {
			for d := range snap.Servers[i].Active[j].Sizes {
				snap.Servers[i].Active[j].Sizes[d] = -3.25
				scribbled = true
			}
		}
	}
	if !scribbled {
		t.Fatal("workload left no open servers at the midpoint; nothing exercised")
	}
	if err := restored.Ledger().CheckInvariants(); err != nil {
		t.Fatalf("invariants broken by snapshot mutation: %v", err)
	}
	// The restored stream must now track the reference bit for bit
	// through the suffix — including departs, which subtract each
	// resident job's Sizes from its server's levels.
	for k, ev := range evs[mid:] {
		rs, rf, rc := applyEv(ref, ev)
		gs, gf, gc := applyEv(restored, ev)
		if rs != gs || rf != gf || rc != gc {
			t.Fatalf("suffix event %d (%+v): ref (%d,%v,%q) != restored (%d,%v,%q)",
				k, ev, rs, rf, rc, gs, gf, gc)
		}
	}
	if a, b := ref.Snapshot(), restored.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots diverged after snapshot scribble:\n ref      %+v\n restored %+v", a, b)
	}
}

// TestRestoreStreamRejectsMismatch covers the refusal paths: wrong
// policy, inconsistent open-server count, and a usage total that does
// not reproduce from the restored accumulators.
func TestRestoreStreamRejectsMismatch(t *testing.T) {
	s := NewStream(NewFirstFit(), 1, 1)
	s.Arrive(1, 0.5, nil, 0)
	s.Arrive(2, 0.7, nil, 1)
	snap := s.Snapshot()

	if _, err := RestoreStream(NewBestFit(), snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("wrong policy: got %v", err)
	}
	bad := snap
	bad.OpenServers = 3
	if _, err := RestoreStream(NewFirstFit(), bad); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("bad open count: got %v", err)
	}
	bad = snap
	bad.UsageTime += 0.125
	if _, err := RestoreStream(NewFirstFit(), bad); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("bad usage: got %v", err)
	}
	bad = snap
	bad.PeakServers = 1
	if _, err := RestoreStream(NewFirstFit(), bad); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("bad peak: got %v", err)
	}
	if _, err := RestoreStream(NewFirstFit(), Snapshot{Engine: "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

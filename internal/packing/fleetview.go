package packing

import "dbp/internal/bins"

// The two Fleet backends. indexedFleet delegates every query to the
// ledger-maintained bins.Index (O(log B)); linearFleet answers the same
// queries by scanning the open list (O(B)) with identical exact
// semantics. The linear backend is the executable specification the
// indexed one is tested against, and the baseline cmd/dbpbench measures
// the index against.

type indexedFleet struct {
	ledger *bins.Ledger
}

func (f indexedFleet) Open() []*bins.Bin { return f.ledger.OpenBins() }
func (f indexedFleet) FirstFitting(need float64) *bins.Bin {
	return f.ledger.Index().FirstFitting(need)
}
func (f indexedFleet) LastFitting(need float64) *bins.Bin {
	return f.ledger.Index().LastFitting(need)
}
func (f indexedFleet) TightestFitting(need float64) *bins.Bin {
	return f.ledger.Index().TightestFitting(need)
}
func (f indexedFleet) EmptiestFitting(need float64) *bins.Bin {
	return f.ledger.Index().EmptiestFitting(need)
}
func (f indexedFleet) SecondEmptiestFitting(need float64) *bins.Bin {
	return f.ledger.Index().SecondEmptiestFitting(need)
}
func (f indexedFleet) FirstFittingVec(sizes []float64) *bins.Bin {
	return f.ledger.Index().FirstFittingVec(sizes)
}
func (f indexedFleet) LastFittingVec(sizes []float64) *bins.Bin {
	return f.ledger.Index().LastFittingVec(sizes)
}
func (f indexedFleet) EachFitting(sizes []float64, visit func(*bins.Bin) bool) {
	f.ledger.Index().EachFitting(sizes, visit)
}
func (f indexedFleet) MaxMinGapFitting(sizes []float64) *bins.Bin {
	return f.ledger.Index().MaxMinGapFitting(sizes)
}

type linearFleet struct {
	ledger *bins.Ledger
}

func (f linearFleet) Open() []*bins.Bin { return f.ledger.OpenBins() }

func (f linearFleet) FirstFitting(need float64) *bins.Bin {
	for _, b := range f.ledger.OpenBins() {
		if b.Gap() >= need {
			return b
		}
	}
	return nil
}

func (f linearFleet) LastFitting(need float64) *bins.Bin {
	open := f.ledger.OpenBins()
	for i := len(open) - 1; i >= 0; i-- {
		if open[i].Gap() >= need {
			return open[i]
		}
	}
	return nil
}

func (f linearFleet) TightestFitting(need float64) *bins.Bin {
	var best *bins.Bin
	for _, b := range f.ledger.OpenBins() {
		if b.Gap() < need {
			continue
		}
		if best == nil || b.Gap() < best.Gap() {
			best = b
		}
	}
	return best
}

func (f linearFleet) EmptiestFitting(need float64) *bins.Bin {
	var best *bins.Bin
	for _, b := range f.ledger.OpenBins() {
		if b.Gap() < need {
			continue
		}
		if best == nil || b.Gap() > best.Gap() {
			best = b
		}
	}
	return best
}

func (f linearFleet) SecondEmptiestFitting(need float64) *bins.Bin {
	var first, second *bins.Bin
	for _, b := range f.ledger.OpenBins() {
		if b.Gap() < need {
			continue
		}
		switch {
		case first == nil:
			first = b
		case b.Gap() > first.Gap():
			second = first
			first = b
		case second == nil || b.Gap() > second.Gap():
			second = b
		}
	}
	return second
}

// The vector queries share one admission comparison with the indexed
// backend — bins.Bin.FitsDemand — so the two engines cannot disagree on
// a borderline demand; only the search strategy differs (scan vs pruned
// tree descent).

func (f linearFleet) FirstFittingVec(sizes []float64) *bins.Bin {
	for _, b := range f.ledger.OpenBins() {
		if b.FitsDemand(sizes) {
			return b
		}
	}
	return nil
}

func (f linearFleet) LastFittingVec(sizes []float64) *bins.Bin {
	open := f.ledger.OpenBins()
	for i := len(open) - 1; i >= 0; i-- {
		if open[i].FitsDemand(sizes) {
			return open[i]
		}
	}
	return nil
}

func (f linearFleet) EachFitting(sizes []float64, visit func(*bins.Bin) bool) {
	for _, b := range f.ledger.OpenBins() {
		if b.FitsDemand(sizes) && !visit(b) {
			return
		}
	}
}

func (f linearFleet) MaxMinGapFitting(sizes []float64) *bins.Bin {
	var best *bins.Bin
	for _, b := range f.ledger.OpenBins() {
		if !b.FitsDemand(sizes) {
			continue
		}
		if best == nil || b.MinGap() > best.MinGap() {
			best = b
		}
	}
	return best
}

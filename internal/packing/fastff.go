package packing

import (
	"math"

	"dbp/internal/bins"
)

// FastFirstFit is First Fit with a max-gap segment tree over bins in
// opening order: finding the earliest-opened bin that fits an item takes
// O(log B) instead of the naive O(B) scan, which makes large-fleet
// simulations near-linear instead of quadratic. It produces *identical*
// packings to FirstFit — a property the tests assert — and exists as the
// high-performance engine for big sweeps.
//
// The tree stays coherent through the simulator's placement hooks
// (ItemPlaced/ItemRemoved fire on every level change), so each event
// costs O(log B). For vector (multi-dimensional) runs per-dimension gaps
// are not representable in a scalar tree and the policy transparently
// falls back to the linear scan.
type FastFirstFit struct {
	tree gapTree
}

// NewFastFirstFit returns a First Fit policy backed by a segment tree.
func NewFastFirstFit() *FastFirstFit { return &FastFirstFit{} }

// Name implements Algorithm. It reports plain "FirstFit": the packing is
// identical by construction and results remain comparable across engines.
func (*FastFirstFit) Name() string { return "FirstFit" }

// Place returns the lowest-indexed open bin that fits, or nil.
func (f *FastFirstFit) Place(a Arrival, open []*bins.Bin) *bins.Bin {
	if len(a.Sizes) > 0 {
		// Vector demand: use the exact linear rule.
		for _, b := range open {
			if fits(b, a) {
				return b
			}
		}
		return nil
	}
	need := a.Size - bins.Eps
	for {
		idx := f.tree.firstWithGap(need)
		if idx < 0 {
			return nil
		}
		b := f.tree.bin(idx)
		// Defensive coherence: tombstone closed bins and refresh stale
		// gaps (cannot happen when the hooks fire, but keeps the policy
		// safe under exotic harnesses).
		switch {
		case !b.IsOpen():
			f.tree.update(idx, math.Inf(-1))
		case b.Gap() != f.tree.cached[idx]:
			f.tree.update(idx, b.Gap())
		default:
			return b
		}
	}
}

// BinOpened tracks the new bin in the tree.
func (f *FastFirstFit) BinOpened(b *bins.Bin) { f.tree.add(b) }

// ItemPlaced refreshes the bin's gap after a placement (simulator hook).
func (f *FastFirstFit) ItemPlaced(b *bins.Bin) {
	if b.Index < len(f.tree.bins) {
		f.tree.update(b.Index, b.Gap())
	}
}

// ItemRemoved refreshes (or tombstones) the bin after a departure
// (simulator hook).
func (f *FastFirstFit) ItemRemoved(b *bins.Bin) {
	if b.Index >= len(f.tree.bins) {
		return
	}
	if b.IsOpen() {
		f.tree.update(b.Index, b.Gap())
	} else {
		f.tree.update(b.Index, math.Inf(-1))
	}
}

// Reset implements Algorithm.
func (f *FastFirstFit) Reset() { f.tree = gapTree{} }

// gapTree is a segment tree over bins by index storing the maximum gap in
// each range, supporting "first index with gap >= s" queries in O(log n).
type gapTree struct {
	bins   []*bins.Bin // by tree position == bin index
	cached []float64   // last gap written into the tree
	node   []float64   // segment tree over cached (max)
	size   int         // power-of-two leaf count
}

func (t *gapTree) add(b *bins.Bin) {
	if b.Index != len(t.bins) {
		// Bins open in index order; anything else is a harness bug.
		panic("packing: FastFirstFit observed out-of-order bin open")
	}
	t.bins = append(t.bins, b)
	t.cached = append(t.cached, math.Inf(-1))
	if len(t.bins) > t.size {
		t.grow()
	}
	t.update(b.Index, b.Gap())
}

// grow doubles the leaf capacity and rebuilds the tree in O(n).
func (t *gapTree) grow() {
	size := 1
	for size < len(t.bins) {
		size *= 2
	}
	t.size = size
	t.node = make([]float64, 2*size)
	for i := range t.node {
		t.node[i] = math.Inf(-1)
	}
	for i, b := range t.bins {
		g := math.Inf(-1)
		if b.IsOpen() {
			g = b.Gap()
		}
		t.cached[i] = g
		t.node[size+i] = g
	}
	for i := size - 1; i >= 1; i-- {
		t.node[i] = math.Max(t.node[2*i], t.node[2*i+1])
	}
}

func (t *gapTree) update(i int, gap float64) {
	t.cached[i] = gap
	p := t.size + i
	t.node[p] = gap
	for p >>= 1; p >= 1; p >>= 1 {
		t.node[p] = math.Max(t.node[2*p], t.node[2*p+1])
	}
}

// firstWithGap returns the smallest index whose gap >= s, or -1.
func (t *gapTree) firstWithGap(s float64) int {
	if t.size == 0 || t.node[1] < s {
		return -1
	}
	p := 1
	for p < t.size {
		if t.node[2*p] >= s {
			p = 2 * p
		} else {
			p = 2*p + 1
		}
	}
	idx := p - t.size
	if idx >= len(t.bins) {
		return -1
	}
	return idx
}

func (t *gapTree) bin(i int) *bins.Bin { return t.bins[i] }

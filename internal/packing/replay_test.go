package packing

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
)

// Replaying a policy's own assignment must reproduce its result exactly.
func TestReplayRoundTripsPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 6; trial++ {
		l := randomInstance(rng, 100, 8)
		for name, algo := range Standard() {
			res := MustRun(algo, l, nil)
			rep, err := Replay(l, res.Assignment)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rep.TotalUsage != res.TotalUsage || rep.NumBins() != res.NumBins() ||
				rep.MaxConcurrentOpen != res.MaxConcurrentOpen {
				t.Fatalf("%s: replay %g/%d/%d != original %g/%d/%d", name,
					rep.TotalUsage, rep.NumBins(), rep.MaxConcurrentOpen,
					res.TotalUsage, res.NumBins(), res.MaxConcurrentOpen)
			}
			if err := rep.Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestReplayRejectsOverfullAssignment(t *testing.T) {
	l := item.List{
		mk(1, 0.7, 0, 2),
		mk(2, 0.7, 1, 3),
	}
	if _, err := Replay(l, map[item.ID]int{1: 0, 2: 0}); err == nil {
		t.Fatal("over-capacity assignment must be rejected")
	}
}

func TestReplayRejectsMissingAssignment(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1)}
	if _, err := Replay(l, map[item.ID]int{}); err == nil {
		t.Fatal("missing assignment must be rejected")
	}
}

func TestReplayAcceptsArbitraryLabelsAndReuse(t *testing.T) {
	// Labels need not be contiguous, and a label may be reused after its
	// bin closes (a fresh server is opened).
	l := item.List{
		mk(1, 0.9, 0, 1),
		mk(2, 0.9, 5, 6),
	}
	rep, err := Replay(l, map[item.ID]int{1: 42, 2: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2 (label reuse after close)", rep.NumBins())
	}
	if rep.TotalUsage != 2 {
		t.Fatalf("usage = %g", rep.TotalUsage)
	}
}

// An external "better" assignment is accepted and measured: pack two
// compatible items together even though Worst Fit would split them.
func TestReplayMeasuresExternalPacking(t *testing.T) {
	l := item.List{
		mk(1, 0.5, 0, 4),
		mk(2, 0.5, 0, 4),
		mk(3, 0.5, 0, 4),
		mk(4, 0.5, 0, 4),
	}
	rep, err := Replay(l, map[item.ID]int{1: 0, 2: 0, 3: 1, 4: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumBins() != 2 || rep.TotalUsage != 8 {
		t.Fatalf("replay = %d bins, usage %g", rep.NumBins(), rep.TotalUsage)
	}
}

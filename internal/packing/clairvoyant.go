package packing

import (
	"fmt"
	"math"

	"dbp/internal/bins"
)

// Clairvoyant baselines: policies that see each item's departure time at
// placement (run with Options.Clairvoyant). They are NOT online
// algorithms in the paper's model; they quantify how much of the online
// penalty comes from not knowing departures — the gap the paper draws to
// interval scheduling (Sec. II), where ending times are known yet
// minimizing busy time is still hard. Their decisions depend on per-bin
// departure horizons, which the shared index does not track, so they
// scan the open list (the linear path).

// AlignFit places each item into the fitting bin whose closing horizon
// (latest departure among resident items) is closest to the item's own
// departure — aligning departures so bins close promptly instead of
// being kept alive by one straggler. Preference order: the bin with the
// minimum |horizon - departure|, ties toward the earlier bin.
type AlignFit struct{}

// NewAlignFit returns an AlignFit policy (requires a clairvoyant run).
func NewAlignFit() *AlignFit { return &AlignFit{} }

// Name implements Algorithm.
func (*AlignFit) Name() string { return "AlignFit(clairvoyant)" }

// Place implements Algorithm; it panics if the run is not clairvoyant
// (misconfiguration, not data).
func (*AlignFit) Place(a Arrival, f Fleet) *bins.Bin {
	if math.IsNaN(a.Departure) {
		panic(fmt.Sprintf("packing: AlignFit requires Options.Clairvoyant (item %d)", a.ID))
	}
	var best *bins.Bin
	bestDiff := math.Inf(1)
	for _, b := range f.Open() {
		if !fits(b, a) {
			continue
		}
		diff := math.Abs(horizon(b) - a.Departure)
		if diff < bestDiff-bins.Eps {
			best, bestDiff = b, diff
		}
	}
	return best
}

// BinOpened implements Algorithm; AlignFit tracks no bin state.
func (*AlignFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; AlignFit is stateless.
func (*AlignFit) Reset() {}

// NoExtendFit is a stricter clairvoyant rule: it only joins a bin if the
// item would NOT extend the bin's closing horizon (departure <= current
// horizon), preferring the fullest such bin; if no bin can absorb the
// item for free, it prefers First Fit among the rest. Joining a bin
// without extending its horizon adds zero usage time, so every such
// placement is individually optimal.
type NoExtendFit struct{}

// NewNoExtendFit returns a NoExtendFit policy (requires a clairvoyant
// run).
func NewNoExtendFit() *NoExtendFit { return &NoExtendFit{} }

// Name implements Algorithm.
func (*NoExtendFit) Name() string { return "NoExtendFit(clairvoyant)" }

// Place implements Algorithm.
func (*NoExtendFit) Place(a Arrival, f Fleet) *bins.Bin {
	if math.IsNaN(a.Departure) {
		panic(fmt.Sprintf("packing: NoExtendFit requires Options.Clairvoyant (item %d)", a.ID))
	}
	open := f.Open()
	// Pass 1: fullest bin the item fits without extending its horizon.
	var free *bins.Bin
	for _, b := range open {
		if !fits(b, a) || a.Departure > horizon(b) {
			continue
		}
		if free == nil || b.Level() > free.Level()+bins.Eps {
			free = b
		}
	}
	if free != nil {
		return free
	}
	// Pass 2: First Fit among the rest.
	for _, b := range open {
		if fits(b, a) {
			return b
		}
	}
	return nil
}

// BinOpened implements Algorithm; NoExtendFit tracks no bin state.
func (*NoExtendFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; NoExtendFit is stateless.
func (*NoExtendFit) Reset() {}

// horizon returns the latest departure among a bin's resident items.
// In a clairvoyant run the true departures are available in bin state.
func horizon(b *bins.Bin) float64 {
	h := math.Inf(-1)
	for _, it := range b.ActiveItems() {
		if it.Departure > h {
			h = it.Departure
		}
	}
	return h
}

package packing

import (
	"fmt"

	"dbp/internal/bins"
)

// NextKFit generalizes Next Fit to k simultaneously available bins (the
// classical bounded-space "Next-k Fit"): an arriving item is placed in
// the first available bin that fits (lowest index among the available
// set); if none fits, the oldest available bin is retired forever and a
// new bin is opened. NextKFit(1) behaves exactly like Next Fit; larger k
// interpolates toward First Fit's behaviour while keeping bounded state —
// useful for charting how much of Next Fit's 2*mu penalty (Sec. VIII) is
// due to its single-bin memory. Like Next Fit, it inspects only its own
// O(k) retained bins, never the full fleet.
type NextKFit struct {
	k         int
	available []*bins.Bin // FIFO by opening, oldest first
}

// NewNextKFit returns a Next-k Fit policy with k >= 1 available bins.
func NewNextKFit(k int) *NextKFit {
	if k < 1 {
		panic("packing: NextKFit needs k >= 1")
	}
	return &NextKFit{k: k}
}

// Name implements Algorithm.
func (nk *NextKFit) Name() string { return fmt.Sprintf("NextKFit(k=%d)", nk.k) }

// Place puts the arrival in the lowest-indexed available bin that fits;
// otherwise it retires the oldest available bin and requests a new one.
func (nk *NextKFit) Place(a Arrival, f Fleet) *bins.Bin {
	// Drop available bins that closed on their own.
	live := nk.available[:0]
	for _, b := range nk.available {
		if b.IsOpen() {
			live = append(live, b)
		}
	}
	nk.available = live
	for _, b := range nk.available {
		if fits(b, a) {
			return b
		}
	}
	if len(nk.available) >= nk.k {
		// Retire the oldest to make room for the new bin.
		nk.available = append(nk.available[:0], nk.available[1:]...)
	}
	return nil
}

// BinOpened records the freshly opened bin as the newest available bin.
func (nk *NextKFit) BinOpened(b *bins.Bin) { nk.available = append(nk.available, b) }

// Reset implements Algorithm.
func (nk *NextKFit) Reset() { nk.available = nil }

// SaveState implements StatefulAlgorithm: the FIFO of still-open
// available bins by index. Closed bins are dropped, exactly as Place's
// own liveness sweep would drop them on the next arrival.
func (nk *NextKFit) SaveState() PolicyState {
	st := PolicyState{}
	for _, b := range nk.available {
		if b.IsOpen() {
			st.Bins = append(st.Bins, b.Index)
		}
	}
	return st
}

// RestoreState implements StatefulAlgorithm.
func (nk *NextKFit) RestoreState(st PolicyState, bin func(int) *bins.Bin) error {
	if len(st.Bins) > nk.k {
		return fmt.Errorf("NextKFit(k=%d) state lists %d available servers", nk.k, len(st.Bins))
	}
	nk.available = nil
	for _, i := range st.Bins {
		b := bin(i)
		if b == nil {
			return fmt.Errorf("NextKFit state names unknown open server %d", i)
		}
		nk.available = append(nk.available, b)
	}
	return nil
}

// AlmostWorstFit places each item into the second-emptiest fitting bin
// (falling back to the emptiest when only one fits) — the classical
// Almost Worst Fit rule, a standard Any Fit baseline whose behaviour
// sits between Worst Fit and Best Fit. "Second-emptiest" is the runner-
// up under the exact (descending gap, ascending index) order.
type AlmostWorstFit struct{}

// NewAlmostWorstFit returns an Almost Worst Fit policy.
func NewAlmostWorstFit() *AlmostWorstFit { return &AlmostWorstFit{} }

// Name implements Algorithm.
func (*AlmostWorstFit) Name() string { return "AlmostWorstFit" }

// Place returns the second-emptiest fitting bin (ties toward lower
// index), or the emptiest if only one fits, or nil if none fits.
func (*AlmostWorstFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) > 0 {
		var first, second *bins.Bin // emptiest and second-emptiest fitting
		f.EachFitting(a.Sizes, func(b *bins.Bin) bool {
			switch {
			case first == nil:
				first = b
			case b.Gap() > first.Gap():
				second = first
				first = b
			case second == nil || b.Gap() > second.Gap():
				second = b
			}
			return true
		})
		if second != nil {
			return second
		}
		return first
	}
	need := a.need()
	if second := f.SecondEmptiestFitting(need); second != nil {
		return second
	}
	return f.EmptiestFitting(need)
}

// BinOpened implements Algorithm; Almost Worst Fit tracks no bin state.
func (*AlmostWorstFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; Almost Worst Fit is stateless.
func (*AlmostWorstFit) Reset() {}

package packing

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func TestPredictiveFitZeroNoiseEqualsNoExtendFit(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 8; trial++ {
		l := randomInstance(rng, 150, 10)
		exact := MustRun(NewNoExtendFit(), l, &Options{Clairvoyant: true})
		pred := MustRun(NewPredictiveFit(0, 1), l, &Options{Clairvoyant: true})
		if exact.TotalUsage != pred.TotalUsage {
			t.Fatalf("sigma=0 must reproduce NoExtendFit: %g vs %g", pred.TotalUsage, exact.TotalUsage)
		}
		for id, b := range exact.Assignment {
			if pred.Assignment[id] != b {
				t.Fatal("assignments differ at sigma=0")
			}
		}
	}
}

func TestPredictiveFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	l := randomInstance(rng, 100, 8)
	a := MustRun(NewPredictiveFit(0.5, 7), l, &Options{Clairvoyant: true})
	b := MustRun(NewPredictiveFit(0.5, 7), l, &Options{Clairvoyant: true})
	if a.TotalUsage != b.TotalUsage {
		t.Fatal("same sigma+seed must reproduce")
	}
	c := MustRun(NewPredictiveFit(0.5, 8), l, &Options{Clairvoyant: true})
	_ = c // different seed may or may not differ; just must be valid
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictiveFitRequiresClairvoyance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustRun(NewPredictiveFit(0.1, 1), item.List{mk(1, 0.5, 0, 1)}, nil)
}

func TestPredictiveFitPanicsOnNegativeSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPredictiveFit(-1, 0)
}

// Prediction quality should matter: perfect predictions should (weakly)
// beat heavily-noised ones on average over a bimodal workload.
func TestPredictionQualityMatters(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	var perfect, noisy float64
	for trial := 0; trial < 10; trial++ {
		var l item.List
		for i := 0; i < 150; i++ {
			a := rng.Float64() * 20
			dur := 1.0
			if rng.Float64() < 0.3 {
				dur = 10
			}
			l = append(l, mk(item.ID(i+1), 0.05+rng.Float64()*0.45, a, a+dur))
		}
		perfect += MustRun(NewPredictiveFit(0, 1), l, &Options{Clairvoyant: true}).TotalUsage
		noisy += MustRun(NewPredictiveFit(3, 1), l, &Options{Clairvoyant: true}).TotalUsage
	}
	if perfect > noisy*1.02 {
		t.Fatalf("perfect predictions (%g) clearly worse than sigma=3 noise (%g)?", perfect, noisy)
	}
}

package packing

import (
	"math"
	"sort"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// PolicyState is the serializable retained state of a bounded-state
// policy: which open servers it holds references to, keyed by server
// index (the only stable cross-process name for a bin), plus a draw
// counter for seeded randomized policies. Which fields are meaningful
// depends on the policy; see each SaveState.
type PolicyState struct {
	// Bins is an ordered list of open-server indices (Next Fit's one
	// available server, Next-k Fit's FIFO, Hybrid Next Fit's per-class
	// slot with -1 for "none").
	Bins []int `json:"bins,omitempty"`
	// Class maps open-server index to size class (Hybrid First Fit).
	Class map[int]int `json:"class,omitempty"`
	// Draws counts consumed random draws (Random Fit).
	Draws uint64 `json:"draws,omitempty"`
}

// StatefulAlgorithm is implemented by policies whose placement decisions
// depend on retained references to specific bins (or other evolving
// state), so that a snapshot can carry the policy along with the fleet.
// Stateless policies (First Fit, Best Fit, ...) place from the fleet
// alone and need no save/restore.
type StatefulAlgorithm interface {
	Algorithm

	// SaveState captures the policy's current state. References to bins
	// that have closed are dropped: every policy here treats a closed
	// retained bin exactly like no bin at all on its next Place, so the
	// omission is behaviorally invisible.
	SaveState() PolicyState

	// RestoreState rewinds the policy to a saved state. bin resolves an
	// open server index to its restored *bins.Bin, returning nil for
	// unknown indices (which makes RestoreState fail: a saved state may
	// only reference servers the snapshot listed as open).
	RestoreState(st PolicyState, bin func(index int) *bins.Bin) error
}

// RestoreStream rebuilds a stream from a restorable Snapshot so that it
// continues bit-identically to the stream the snapshot was taken from:
// identical placements, identical error results, and an identical
// Snapshot after any common suffix of events. algo must be a fresh
// instance of the policy named by snap.Policy (it is Reset and then
// handed snap.PolicyState).
//
// Bit-identity holds because nothing float-bearing is recomputed: server
// levels, the closed-usage accumulator, and every timestamp are restored
// verbatim, and the one history-dependent ordering (closing several
// expired servers in one clock advance) is canonicalized by the ledger
// (see bins.Ledger.CloseExpired).
func RestoreStream(algo Algorithm, snap Snapshot) (*Stream, error) {
	kind := EngineKind(snap.Engine)
	if !kind.valid() {
		return nil, badEngine(kind)
	}
	if kind == "" {
		kind = EngineIndexed
	}
	if snap.Policy != "" && snap.Policy != algo.Name() {
		return nil, failf(ErrSnapshotMismatch,
			"packing: snapshot was taken under policy %s, restoring with %s", snap.Policy, algo.Name())
	}
	capacity := snap.Capacity
	if capacity == 0 {
		capacity = 1
	}
	dim := snap.Dim
	if dim == 0 {
		dim = 1
	}
	if len(snap.Servers) != snap.OpenServers {
		return nil, failf(ErrSnapshotMismatch,
			"packing: snapshot lists %d servers but claims %d open", len(snap.Servers), snap.OpenServers)
	}
	if snap.Events > 0 && (math.IsNaN(snap.Now) || math.IsInf(snap.Now, 0)) {
		return nil, failf(ErrSnapshotMismatch, "packing: snapshot clock %g is not finite", snap.Now)
	}
	open := make([]bins.BinRestore, len(snap.Servers))
	for i, sv := range snap.Servers {
		// The snapshot stays caller-owned: copy every float slice handed
		// down, since bins.RestoreLedger adopts what it is given. Without
		// these copies a caller mutating (or reusing) the snapshot after a
		// successful restore would silently corrupt live server levels and
		// resident jobs' demand vectors.
		br := bins.BinRestore{
			Index:     sv.Index,
			OpenedAt:  sv.OpenedAt,
			Lingering: sv.Lingering,
			Levels:    append([]float64(nil), sv.Levels...),
		}
		if sv.Lingering {
			br.EmptySince = sv.EmptySince
		}
		if len(sv.Active) > 0 {
			br.Jobs = make([]bins.RestoredJob, len(sv.Active))
			for j, jb := range sv.Active {
				br.Jobs[j] = bins.RestoredJob{
					ID:      item.ID(jb.ID),
					Size:    jb.Size,
					Sizes:   append([]float64(nil), jb.Sizes...),
					Arrival: jb.Arrival,
				}
			}
		}
		open[i] = br
	}
	ledger, err := bins.RestoreLedger(capacity, dim, snap.KeepAlive, kind != EngineLinear,
		snap.ServersUsed, snap.PeakServers, snap.ClosedUsage, open)
	if err != nil {
		return nil, failf(ErrSnapshotMismatch, "packing: %v", err)
	}
	// The snapshot's own objective total must reproduce from the restored
	// accumulators — a cheap end-to-end check that nothing drifted.
	if got := ledger.TotalUsage(snap.Now); snap.Events > 0 && got != snap.UsageTime {
		return nil, failf(ErrSnapshotMismatch,
			"packing: restored usage %v != snapshot usage %v", got, snap.UsageTime)
	}
	algo.Reset()
	e := &engine{algo: algo, ledger: ledger, kind: kind}
	if kind == EngineLinear {
		e.fleet = linearFleet{ledger: ledger}
	} else {
		e.fleet = indexedFleet{ledger: ledger}
	}
	if snap.PolicyState != nil {
		sa, ok := algo.(StatefulAlgorithm)
		if !ok {
			return nil, failf(ErrSnapshotMismatch,
				"packing: snapshot carries policy state but %s retains none", algo.Name())
		}
		bs := ledger.OpenBins()
		lookup := func(index int) *bins.Bin {
			i := sort.Search(len(bs), func(i int) bool { return bs[i].Index >= index })
			if i < len(bs) && bs[i].Index == index {
				return bs[i]
			}
			return nil
		}
		if err := sa.RestoreState(*snap.PolicyState, lookup); err != nil {
			return nil, failf(ErrSnapshotMismatch, "packing: %v", err)
		}
	}
	return &Stream{eng: e, now: snap.Now, nEvent: snap.Events}, nil
}

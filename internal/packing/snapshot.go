package packing

// Snapshot is a point-in-time view of a Stream's state: the running
// objective totals plus one entry per open server. It is a deep copy —
// safe to retain, serialize, or inspect after the stream has moved on —
// which is what the allocation service publishes on its stats endpoint.
type Snapshot struct {
	// Now is the time of the last event fed to the stream.
	Now float64 `json:"now"`
	// Events is the number of events (arrivals + departures) accepted.
	Events int `json:"events"`
	// OpenServers is the number of currently running servers.
	OpenServers int `json:"open_servers"`
	// ServersUsed is the total number of servers ever opened.
	ServersUsed int `json:"servers_used"`
	// PeakServers is the maximum number of simultaneously open servers.
	PeakServers int `json:"peak_servers"`
	// UsageTime is the accumulated server usage time up to Now — the
	// MinUsageTime objective, what the tenant pays for.
	UsageTime float64 `json:"usage_time"`
	// Servers describes each currently open server, ascending by Index.
	Servers []ServerState `json:"servers,omitempty"`
}

// ServerState describes one open server inside a Snapshot.
type ServerState struct {
	// Index is the server's position in opening order (stream-wide).
	Index int `json:"index"`
	// Level is the scalar utilization (first dimension for vector jobs).
	Level float64 `json:"level"`
	// Levels is the per-dimension utilization vector.
	Levels []float64 `json:"levels,omitempty"`
	// Jobs is the number of jobs currently on the server.
	Jobs int `json:"jobs"`
	// OpenedAt is the time the server was opened.
	OpenedAt float64 `json:"opened_at"`
	// Lingering reports a keep-alive server that is empty but still
	// open (and billing) awaiting reuse or expiry.
	Lingering bool `json:"lingering,omitempty"`
}

// UsageTime returns the accumulated server usage time up to the last
// event fed to the stream — AccumulatedUsage(Now()). Open servers
// accrue usage up to the stream clock.
func (s *Stream) UsageTime() float64 { return s.eng.ledger.TotalUsage(s.now) }

// Events returns the number of events (arrivals + departures, including
// any that advanced the clock) accepted so far.
func (s *Stream) Events() int { return s.nEvent }

// Snapshot captures the stream's current totals and per-server state.
// The result shares no memory with the stream.
func (s *Stream) Snapshot() Snapshot {
	open := s.eng.ledger.OpenBins()
	snap := Snapshot{
		Now:         s.now,
		Events:      s.nEvent,
		OpenServers: len(open),
		ServersUsed: s.eng.ledger.NumOpened(),
		PeakServers: s.eng.ledger.MaxConcurrentOpen(),
		UsageTime:   s.eng.ledger.TotalUsage(s.now),
	}
	if len(open) > 0 {
		snap.Servers = make([]ServerState, len(open))
		for i, b := range open {
			snap.Servers[i] = ServerState{
				Index:     b.Index,
				Level:     b.Level(),
				Levels:    b.LevelVec(),
				Jobs:      b.NumActive(),
				OpenedAt:  b.OpenedAt(),
				Lingering: b.Lingering(),
			}
		}
	}
	return snap
}

package packing

import "sort"

// Snapshot is a point-in-time view of a Stream's state: the running
// objective totals plus one entry per open server. It is a deep copy —
// safe to retain, serialize, or inspect after the stream has moved on —
// which is what the allocation service publishes on its stats endpoint.
type Snapshot struct {
	// Now is the time of the last event fed to the stream.
	Now float64 `json:"now"`
	// Events is the number of events (arrivals + departures) accepted.
	Events int `json:"events"`
	// OpenServers is the number of currently running servers.
	OpenServers int `json:"open_servers"`
	// ServersUsed is the total number of servers ever opened.
	ServersUsed int `json:"servers_used"`
	// PeakServers is the maximum number of simultaneously open servers.
	PeakServers int `json:"peak_servers"`
	// UsageTime is the accumulated server usage time up to Now — the
	// MinUsageTime objective, what the tenant pays for.
	UsageTime float64 `json:"usage_time"`

	// The fields below make the snapshot restorable (RestoreStream):
	// enough configuration and exact accumulator state that a stream
	// rebuilt from it continues bit-identically to the original.

	// Policy is the placement policy's name; Engine the engine kind.
	Policy string `json:"policy,omitempty"`
	Engine string `json:"engine,omitempty"`
	// Capacity, Dim, KeepAlive are the stream's fleet configuration.
	Capacity  float64 `json:"capacity,omitempty"`
	Dim       int     `json:"dim,omitempty"`
	KeepAlive float64 `json:"keep_alive,omitempty"`
	// ClosedUsage is the exact usage accumulated by servers that have
	// closed — the live float accumulator verbatim, never recomputed
	// (summation order would change its low bits).
	ClosedUsage float64 `json:"closed_usage,omitempty"`
	// PolicyState carries bounded-state policies' retained references
	// (Next Fit's available server, Hybrid's class tags, Random Fit's
	// draw counter). Nil for stateless policies.
	PolicyState *PolicyState `json:"policy_state,omitempty"`

	// Servers describes each currently open server, ascending by Index.
	Servers []ServerState `json:"servers,omitempty"`
}

// ServerState describes one open server inside a Snapshot.
type ServerState struct {
	// Index is the server's position in opening order (stream-wide).
	Index int `json:"index"`
	// Level is the scalar utilization (first dimension for vector jobs).
	Level float64 `json:"level"`
	// Levels is the per-dimension utilization vector.
	Levels []float64 `json:"levels,omitempty"`
	// Jobs is the number of jobs currently on the server.
	Jobs int `json:"jobs"`
	// OpenedAt is the time the server was opened.
	OpenedAt float64 `json:"opened_at"`
	// Lingering reports a keep-alive server that is empty but still
	// open (and billing) awaiting reuse or expiry.
	Lingering bool `json:"lingering,omitempty"`
	// EmptySince is the time a lingering server last emptied — the base
	// of its keep-alive expiry. Meaningful only when Lingering.
	EmptySince float64 `json:"empty_since,omitempty"`
	// Active lists the jobs resident on the server, ascending by ID, so
	// a restored stream can route their departures.
	Active []JobState `json:"active,omitempty"`
}

// JobState describes one resident job inside a ServerState. Departure is
// absent by construction: the stream is the online model, where a job's
// departure is unknown until it happens.
type JobState struct {
	ID      int64     `json:"id"`
	Size    float64   `json:"size"`
	Sizes   []float64 `json:"sizes,omitempty"`
	Arrival float64   `json:"arrival"`
}

// UsageTime returns the accumulated server usage time up to the last
// event fed to the stream — AccumulatedUsage(Now()). Open servers
// accrue usage up to the stream clock.
func (s *Stream) UsageTime() float64 { return s.eng.ledger.TotalUsage(s.now) }

// Events returns the number of events (arrivals + departures, including
// any that advanced the clock) accepted so far.
func (s *Stream) Events() int { return s.nEvent }

// Snapshot captures the stream's current totals and per-server state —
// including everything RestoreStream needs to rebuild a stream that
// continues bit-identically. The result shares no memory with the stream.
func (s *Stream) Snapshot() Snapshot {
	open := s.eng.ledger.OpenBins()
	snap := Snapshot{
		Now:         s.now,
		Events:      s.nEvent,
		OpenServers: len(open),
		ServersUsed: s.eng.ledger.NumOpened(),
		PeakServers: s.eng.ledger.MaxConcurrentOpen(),
		UsageTime:   s.eng.ledger.TotalUsage(s.now),
		Policy:      s.eng.algo.Name(),
		Engine:      string(s.eng.kind),
		Capacity:    s.eng.ledger.Capacity(),
		Dim:         s.eng.ledger.Dim(),
		KeepAlive:   s.eng.ledger.KeepAlive(),
		ClosedUsage: s.eng.ledger.ClosedUsage(),
	}
	if sa, ok := s.eng.algo.(StatefulAlgorithm); ok {
		st := sa.SaveState()
		snap.PolicyState = &st
	}
	if len(open) > 0 {
		snap.Servers = make([]ServerState, len(open))
		for i, b := range open {
			sv := ServerState{
				Index:     b.Index,
				Level:     b.Level(),
				Levels:    b.LevelVec(),
				Jobs:      b.NumActive(),
				OpenedAt:  b.OpenedAt(),
				Lingering: b.Lingering(),
			}
			if sv.Lingering {
				sv.EmptySince = b.EmptySince()
			}
			if sv.Jobs > 0 {
				items := b.ActiveItems()
				sv.Active = make([]JobState, len(items))
				for j, it := range items {
					sv.Active[j] = JobState{
						ID:      int64(it.ID),
						Size:    it.Size,
						Sizes:   append([]float64(nil), it.Sizes...),
						Arrival: it.Arrival,
					}
				}
				sort.Slice(sv.Active, func(a, b int) bool { return sv.Active[a].ID < sv.Active[b].ID })
			}
			snap.Servers[i] = sv
		}
	}
	return snap
}

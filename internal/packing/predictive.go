package packing

import (
	"fmt"
	"math"
	"math/rand"

	"dbp/internal/bins"
)

// PredictiveFit is a learning-augmented baseline: it behaves like the
// clairvoyant NoExtendFit, but sees only a *noisy prediction* of each
// item's departure — the true departure multiplied by a lognormal factor
// exp(sigma * N(0,1)). sigma = 0 is full clairvoyance; large sigma decays
// toward uninformed placement. It interpolates between the paper's
// online model (departures unknown) and interval scheduling (departures
// known), quantifying how accurate a duration predictor must be before
// it beats plain First Fit (experiment E13d).
//
// Runs require Options.Clairvoyant (the simulator supplies the true
// departure; the policy perturbs it deterministically per item and seed,
// so the policy itself never acts on exact information when sigma > 0).
// Horizon-driven like NoExtendFit, it scans the open list (linear path).
type PredictiveFit struct {
	sigma float64
	seed  int64
}

// NewPredictiveFit returns a predictive policy with lognormal prediction
// noise sigma (>= 0) and a seed for the deterministic noise stream.
func NewPredictiveFit(sigma float64, seed int64) *PredictiveFit {
	if sigma < 0 {
		panic("packing: negative prediction noise")
	}
	return &PredictiveFit{sigma: sigma, seed: seed}
}

// Name implements Algorithm.
func (p *PredictiveFit) Name() string {
	return fmt.Sprintf("PredictiveFit(sigma=%g)", p.sigma)
}

// Place implements Algorithm: NoExtendFit's rule driven by the predicted
// departure.
func (p *PredictiveFit) Place(a Arrival, f Fleet) *bins.Bin {
	if math.IsNaN(a.Departure) {
		panic(fmt.Sprintf("packing: PredictiveFit requires Options.Clairvoyant (item %d)", a.ID))
	}
	pred := p.predict(a)
	open := f.Open()
	var free *bins.Bin
	for _, b := range open {
		if !fits(b, a) || pred > horizon(b) {
			continue
		}
		if free == nil || b.Level() > free.Level()+bins.Eps {
			free = b
		}
	}
	if free != nil {
		return free
	}
	for _, b := range open {
		if fits(b, a) {
			return b
		}
	}
	return nil
}

// predict perturbs the item's true remaining duration with per-item
// deterministic lognormal noise: the same item always gets the same
// prediction under the same seed, so runs are reproducible.
func (p *PredictiveFit) predict(a Arrival) float64 {
	if p.sigma == 0 {
		return a.Departure
	}
	rng := rand.New(rand.NewSource(p.seed ^ int64(a.ID)*-0x61c8864680b583eb))
	dur := a.Departure - a.At
	return a.At + dur*math.Exp(p.sigma*rng.NormFloat64())
}

// BinOpened implements Algorithm; PredictiveFit tracks no bin state.
func (*PredictiveFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; the noise stream is keyed per item, so
// there is no run state to clear.
func (*PredictiveFit) Reset() {}

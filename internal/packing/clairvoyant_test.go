package packing

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func TestNextKFitOneEqualsNextFit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		l := randomInstance(rng, 120, 8)
		nf := MustRun(NewNextFit(), l, nil)
		nk := MustRun(NewNextKFit(1), l, nil)
		if nf.TotalUsage != nk.TotalUsage || nf.NumBins() != nk.NumBins() {
			t.Fatalf("NextKFit(1) != NextFit: usage %g vs %g", nk.TotalUsage, nf.TotalUsage)
		}
		for id, b := range nf.Assignment {
			if nk.Assignment[id] != b {
				t.Fatal("assignments differ")
			}
		}
	}
}

func TestNextKFitInterpolatesTowardFirstFit(t *testing.T) {
	// On the Section VIII-style instance, more available bins means the
	// slivers can keep joining earlier bins.
	var l item.List
	n := 12
	for i := 0; i < n; i++ {
		l = append(l,
			mk(item.ID(2*i+1), 0.5, 0, 1),
			mk(item.ID(2*i+2), 1.0/(2.0*float64(n)), 0, 8),
		)
	}
	u1 := MustRun(NewNextKFit(1), l, nil).TotalUsage
	u4 := MustRun(NewNextKFit(4), l, nil).TotalUsage
	ff := MustRun(NewFirstFit(), l, nil).TotalUsage
	if !(ff <= u4 && u4 < u1) {
		t.Fatalf("expected FF (%g) <= NF4 (%g) < NF1 (%g)", ff, u4, u1)
	}
}

func TestNextKFitRetiresOldest(t *testing.T) {
	l := item.List{
		mk(1, 0.6, 0, 10), // bin 0 (available)
		mk(2, 0.6, 1, 10), // bin 1 (available; k=2)
		mk(3, 0.6, 2, 10), // fits neither -> retire bin 0, open bin 2
		mk(4, 0.3, 3, 10), // fits bin 1 (0.9) and bin 2 (0.9); bin 0 retired
	}
	res := MustRun(NewNextKFit(2), l, nil)
	if res.Assignment[4] != 1 {
		t.Fatalf("item 4 in bin %d, want 1 (bin 0 must be retired)", res.Assignment[4])
	}
}

func TestAlmostWorstFit(t *testing.T) {
	l := item.List{
		mk(1, 0.8, 0, 10), // bin 0, gap 0.2
		mk(2, 0.5, 0, 10), // bin 1, gap 0.5
		mk(3, 0.3, 0, 10), // fits neither? 0.8+0.3>1; 0.5+0.3<=1 -> bin 1 only... need 3 bins for a clean test
	}
	l = item.List{
		mk(1, 0.7, 0, 10), // bin 0, gap 0.3
		mk(2, 0.5, 0, 10), // bin 1, gap 0.5
		mk(3, 0.6, 0, 10), // bin 2 (fits none), gap 0.4
		mk(4, 0.2, 1, 10), // fits all: gaps 0.3, 0.5, 0.4 -> emptiest bin1, second bin2
	}
	res := MustRun(NewAlmostWorstFit(), l, nil)
	if res.Assignment[4] != 2 {
		t.Fatalf("AWF put probe in bin %d, want 2 (second-emptiest)", res.Assignment[4])
	}
	// Single fitting bin: fall back to it.
	l2 := item.List{
		mk(1, 0.9, 0, 10),
		mk(2, 0.05, 1, 10),
	}
	res2 := MustRun(NewAlmostWorstFit(), l2, nil)
	if res2.Assignment[2] != 0 {
		t.Fatal("AWF must fall back to the only fitting bin")
	}
}

func TestAlignFitRequiresClairvoyance(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1)}
	defer func() {
		if recover() == nil {
			t.Fatal("AlignFit must panic without Options.Clairvoyant")
		}
	}()
	// First item opens a bin (Place not called... Place IS called with
	// empty open list; the panic must fire on the NaN departure).
	MustRun(NewAlignFit(), l, nil)
}

func TestAlignFitAlignsDepartures(t *testing.T) {
	l := item.List{
		mk(1, 0.4, 0, 10), // bin 0, horizon 10
		mk(2, 0.4, 0, 3),  // placed by align: no bins fit both? bin0 fits (0.8): |10-3|=7; new bin? Align only picks among fitting -> joins bin 0.
	}
	// Construct a discriminating case: two open bins with different
	// horizons, a new item whose departure matches the second.
	l = item.List{
		mk(1, 0.6, 0, 10), // bin 0, horizon 10
		mk(2, 0.6, 0, 3),  // bin 1 (0.6+0.6 > 1), horizon 3
		mk(3, 0.3, 1, 3),  // fits both; |10-3|=7 vs |3-3|=0 -> bin 1
	}
	res := MustRun(NewAlignFit(), l, &Options{Clairvoyant: true})
	if res.Assignment[3] != 1 {
		t.Fatalf("AlignFit put item in bin %d, want 1", res.Assignment[3])
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNoExtendFitPrefersFreeRides(t *testing.T) {
	l := item.List{
		mk(1, 0.6, 0, 10), // bin 0, horizon 10
		mk(2, 0.6, 0, 3),  // bin 1, horizon 3
		mk(3, 0.3, 1, 5),  // extends bin 1 (5 > 3) but not bin 0 (5 <= 10) -> bin 0
	}
	res := MustRun(NewNoExtendFit(), l, &Options{Clairvoyant: true})
	if res.Assignment[3] != 0 {
		t.Fatalf("NoExtendFit put item in bin %d, want 0 (free ride)", res.Assignment[3])
	}
	// When every placement extends, fall back to First Fit.
	l2 := item.List{
		mk(1, 0.6, 0, 2),
		mk(2, 0.3, 1, 9), // extends bin 0; no alternative -> bin 0 anyway
	}
	res2 := MustRun(NewNoExtendFit(), l2, &Options{Clairvoyant: true})
	if res2.Assignment[2] != 0 {
		t.Fatal("fallback must use First Fit")
	}
}

// Clairvoyant baselines should (usually) beat online policies on bimodal
// workloads where aligning departures matters.
func TestClairvoyanceHelpsOnBimodalWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	better := 0
	trials := 12
	for trial := 0; trial < trials; trial++ {
		var l item.List
		for i := 0; i < 150; i++ {
			a := rng.Float64() * 20
			dur := 1.0
			if rng.Float64() < 0.3 {
				dur = 10
			}
			l = append(l, mk(item.ID(i+1), 0.05+rng.Float64()*0.45, a, a+dur))
		}
		ff := MustRun(NewFirstFit(), l, nil)
		cl := MustRun(NewNoExtendFit(), l, &Options{Clairvoyant: true})
		if err := cl.Verify(); err != nil {
			t.Fatal(err)
		}
		if cl.TotalUsage <= ff.TotalUsage {
			better++
		}
	}
	if better < trials/2 {
		t.Fatalf("clairvoyant baseline beat FF only %d/%d times", better, trials)
	}
}

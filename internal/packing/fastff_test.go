package packing

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
)

// The defining property: FastFirstFit produces bit-identical packings to
// the naive FirstFit on every instance.
func TestFastFirstFitMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(300)
		l := randomInstance(rng, n, 4+rng.Float64()*12)
		naive := MustRun(NewFirstFit(), l, nil)
		fast := MustRun(NewFastFirstFit(), l, nil)
		if naive.TotalUsage != fast.TotalUsage || naive.NumBins() != fast.NumBins() {
			t.Fatalf("trial %d: naive usage %g/%d bins, fast %g/%d bins",
				trial, naive.TotalUsage, naive.NumBins(), fast.TotalUsage, fast.NumBins())
		}
		for id, b := range naive.Assignment {
			if fast.Assignment[id] != b {
				t.Fatalf("trial %d: item %d assigned to %d (naive) vs %d (fast)",
					trial, id, b, fast.Assignment[id])
			}
		}
		if err := fast.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFastFirstFitOnAdversaries(t *testing.T) {
	// The gap-seal trap exercises exact-gap queries (item size == gap).
	for _, mu := range []float64{2, 8} {
		for _, n := range []int{8, 64} {
			l := trapInstance(n, mu)
			naive := MustRun(NewFirstFit(), l, nil)
			fast := MustRun(NewFastFirstFit(), l, nil)
			if naive.TotalUsage != fast.TotalUsage {
				t.Fatalf("n=%d mu=%g: usage %g vs %g", n, mu, naive.TotalUsage, fast.TotalUsage)
			}
			for id, b := range naive.Assignment {
				if fast.Assignment[id] != b {
					t.Fatalf("n=%d mu=%g: item %d differs", n, mu, id)
				}
			}
		}
	}
}

// trapInstance mirrors workload.AnyFitTrap without the import cycle risk
// (workload imports packing).
func trapInstance(n int, mu float64) item.List {
	delta := 1.0 / (2.0 * float64(n) * float64(n+1))
	l := make(item.List, 0, 2*n)
	for i := 0; i < n; i++ {
		g := float64(i+1) * delta
		l = append(l, mk(item.ID(i+1), 1-g, 0, 1))
	}
	for i := 0; i < n; i++ {
		g := float64(i+1) * delta
		l = append(l, mk(item.ID(n+i+1), g, 0, mu))
	}
	return l
}

func TestFastFirstFitWithKeepAlive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := randomInstance(rng, 200, 8)
	naive := MustRun(NewFirstFit(), l, &Options{KeepAlive: 0.7})
	fast := MustRun(NewFastFirstFit(), l, &Options{KeepAlive: 0.7})
	if naive.TotalUsage != fast.TotalUsage || naive.NumBins() != fast.NumBins() {
		t.Fatalf("keep-alive: naive %g/%d vs fast %g/%d",
			naive.TotalUsage, naive.NumBins(), fast.TotalUsage, fast.NumBins())
	}
}

func TestFastFirstFitVectorFallback(t *testing.T) {
	l := item.List{
		{ID: 1, Size: 0.8, Sizes: []float64{0.8, 0.1}, Arrival: 0, Departure: 5},
		{ID: 2, Size: 0.8, Sizes: []float64{0.1, 0.8}, Arrival: 0, Departure: 5},
		{ID: 3, Size: 0.8, Sizes: []float64{0.8, 0.8}, Arrival: 0, Departure: 5},
	}
	naive := MustRun(NewFirstFit(), l, nil)
	fast := MustRun(NewFastFirstFit(), l, nil)
	if naive.NumBins() != fast.NumBins() {
		t.Fatalf("vector fallback: %d vs %d bins", naive.NumBins(), fast.NumBins())
	}
}

func TestGapTreeQueries(t *testing.T) {
	var f FastFirstFit
	// Empty tree.
	if got := f.tree.firstWithGap(0.1); got != -1 {
		t.Fatalf("empty tree returned %d", got)
	}
	// Direct tree exercises via a tiny run.
	l := item.List{
		mk(1, 0.9, 0, 10), // bin 0, gap 0.1
		mk(2, 0.5, 0, 10), // bin 1, gap 0.5
		mk(3, 0.7, 0, 10), // bin 2, gap 0.3
		mk(4, 0.4, 1, 10), // first bin with gap >= 0.4: bin 1
	}
	res := MustRun(NewFastFirstFit(), l, nil)
	if res.Assignment[4] != 1 {
		t.Fatalf("item 4 in bin %d, want 1", res.Assignment[4])
	}
	if math.IsNaN(res.TotalUsage) {
		t.Fatal("NaN usage")
	}
}

// Soak: a large instance through the segment-tree engine with full
// verification (guarded by -short).
func TestFastFirstFitSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2027))
	l := make(item.List, 50000)
	for i := range l {
		a := rng.Float64() * 2000
		l[i] = mk(item.ID(i+1), 0.02+rng.Float64()*0.9, a, a+0.5+rng.Float64()*15)
	}
	res := MustRun(NewFastFirstFit(), l, nil)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.NumBins() == 0 || res.TotalUsage <= l.Span() {
		t.Fatalf("implausible soak result: %v", res)
	}
}

package packing

import (
	"fmt"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// EngineKind selects the Fleet backend placements run against.
type EngineKind string

const (
	// EngineIndexed answers policy queries from the ledger-maintained
	// bins.Index in O(log B) per event — the default for every caller.
	EngineIndexed EngineKind = "indexed"
	// EngineLinear answers the same queries with O(B) scans of identical
	// exact semantics. It is the executable reference the equivalence
	// suite pins the index against, and the baseline dbpbench measures.
	EngineLinear EngineKind = "linear"
)

// valid reports whether k names a known engine ("" means indexed).
func (k EngineKind) valid() bool {
	return k == "" || k == EngineIndexed || k == EngineLinear
}

// engine is the shared placement core both the batch simulator (Run,
// RunFleet) and the streaming dispatcher (Stream) drive: one validation
// path, one placement/misplace check, one bin-open notification. The two
// front ends differ only in where events come from (a pre-sorted queue
// vs. live calls) and in bookkeeping around the loop.
type engine struct {
	algo        Algorithm
	ledger      *bins.Ledger
	fleet       Fleet
	kind        EngineKind
	clairvoyant bool
}

// newEngine builds an engine over a fresh ledger. capacity <= 0 means
// unit capacity; dim <= 0 means scalar. The algorithm is Reset.
func newEngine(algo Algorithm, capacity float64, dim int, keepAlive float64, kind EngineKind, clairvoyant bool) *engine {
	if capacity <= 0 {
		capacity = 1
	}
	if dim <= 0 {
		dim = 1
	}
	if kind == "" {
		kind = EngineIndexed
	}
	algo.Reset()
	ledger := bins.NewLedgerKeepAlive(capacity, dim, keepAlive)
	e := &engine{algo: algo, ledger: ledger, kind: kind, clairvoyant: clairvoyant}
	if kind == EngineLinear {
		e.fleet = linearFleet{ledger: ledger}
	} else {
		ledger.EnableIndex()
		e.fleet = indexedFleet{ledger: ledger}
	}
	return e
}

// checkDemand is the single admission gate for arriving demands, shared
// verbatim by Run and Stream (the satellite bugfix: the batch simulator
// used to skip the per-dimension vector checks, letting negative/NaN/
// oversized components panic deep inside Bin.Place). Every rejection
// wraps ErrBadDemand.
func (e *engine) checkDemand(it item.Item) error {
	cap := e.ledger.Capacity()
	if !(it.Size > 0) || it.Size > cap+bins.Eps {
		return failf(ErrBadDemand, "packing: job %d size %g cannot fit any server of capacity %g", it.ID, it.Size, cap)
	}
	if it.Dim() != e.ledger.Dim() {
		return failf(ErrBadDemand, "packing: job %d has dim %d, fleet has dim %d", it.ID, it.Dim(), e.ledger.Dim())
	}
	// The scalar check above only constrains Size; a vector demand with a
	// single oversized (or negative / NaN) component would sail past it
	// and panic inside Bin.Place, so admit per dimension here.
	for d, c := range it.Sizes {
		if !(c >= 0) || c > cap+bins.Eps {
			return failf(ErrBadDemand, "packing: job %d demand %g in dim %d cannot fit any server of capacity %g", it.ID, c, d, cap)
		}
	}
	return nil
}

// arrive validates the demand, asks the policy for a bin, and commits the
// placement — opening a new bin (capacityFor picks its size; nil means
// the ledger's homogeneous capacity) when the policy returns nil. A
// policy returning a closed or non-fitting bin fails with
// ErrPolicyMisplace.
func (e *engine) arrive(it item.Item, t float64, capacityFor func(Arrival) (float64, error)) (b *bins.Bin, opened bool, err error) {
	if err := e.checkDemand(it); err != nil {
		return nil, false, err
	}
	a := view(it, t)
	if e.clairvoyant {
		a.Departure = it.Departure
	}
	b = e.algo.Place(a, e.fleet)
	if b == nil {
		capacity := e.ledger.Capacity()
		if capacityFor != nil {
			capacity, err = capacityFor(a)
			if err != nil {
				return nil, false, err
			}
		}
		b = e.ledger.OpenNewCap(it, t, capacity)
		e.algo.BinOpened(b)
		return b, true, nil
	}
	if !b.IsOpen() || !b.Fits(it) {
		return nil, false, failf(ErrPolicyMisplace, "packing: policy %s returned unusable bin %d for job %d", e.algo.Name(), b.Index, it.ID)
	}
	e.ledger.PlaceIn(b, it, t)
	return b, false, nil
}

// depart removes the item from its bin. The caller guarantees the item
// is resident (Stream pre-checks Locate; the simulator's event queue is
// consistent by construction).
func (e *engine) depart(id item.ID, t float64) (b *bins.Bin, closed bool) {
	return e.ledger.Remove(id, t)
}

// validate runs the ledger's invariant checks (Options.Validate, tests).
func (e *engine) validate() error { return e.ledger.CheckInvariants() }

func badEngine(kind EngineKind) error {
	return fmt.Errorf("packing: unknown engine %q (valid: %s, %s)", kind, EngineIndexed, EngineLinear)
}

package packing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbp/internal/item"
)

// allPolicies returns fresh instances of every standard policy for
// property testing.
func allPolicies() []Algorithm {
	out := make([]Algorithm, 0, 10)
	for _, a := range Standard() {
		out = append(out, a)
	}
	return out
}

// Property: every policy produces a physically valid packing on random
// instances (Verify passes), with the universal objective bounds:
// span <= usage, usage <= sum of item durations (each item alone can keep
// at most its own duration of bin time alive... not true in general — a
// bin can outlive any single item only by containing others, so the sum of
// durations bounds total usage only for Any Fit? No: a bin's usage is at
// most the sum of its items' durations (its usage period is covered by
// their intervals since the bin is never empty while open). That holds for
// every algorithm.)
func TestAllPoliciesValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		l := randomInstance(rng, 120, 10)
		span := l.Span()
		var sumDur float64
		for _, it := range l {
			sumDur += it.Duration()
		}
		for _, algo := range allPolicies() {
			res, err := Run(algo, l, &Options{Validate: trial == 0})
			if err != nil {
				t.Fatalf("%s: %v", algo.Name(), err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("%s: %v", algo.Name(), err)
			}
			if res.TotalUsage < span-1e-9 {
				t.Fatalf("%s: usage %g below span %g", algo.Name(), res.TotalUsage, span)
			}
			if res.TotalUsage > sumDur+1e-9 {
				t.Fatalf("%s: usage %g above total item duration %g", algo.Name(), res.TotalUsage, sumDur)
			}
			if res.NumBins() > len(l) {
				t.Fatalf("%s: more bins than items", algo.Name())
			}
			if res.MaxConcurrentOpen > res.NumBins() {
				t.Fatalf("%s: peak open exceeds bins used", algo.Name())
			}
		}
	}
}

// Property: each bin's usage period is covered by its items' active
// intervals (a bin is never open while empty).
func TestBinNeverOpenWhileEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		l := randomInstance(rng, 100, 6)
		for _, algo := range allPolicies() {
			res := MustRun(algo, l, nil)
			for _, b := range res.Bins {
				var coverage float64
				ivs := b.Items()
				cov := ivs.Span()
				if math.Abs(cov-b.Usage()) > 1e-9 {
					t.Fatalf("%s bin %d: usage %g but items span %g", algo.Name(), b.Index, b.Usage(), cov)
				}
				_ = coverage
			}
		}
	}
}

// Property: Any Fit algorithms (FF, BF, WF, LF, RF) open a new bin only
// when no open bin fits. Verified post-hoc: whenever an item opened bin k,
// every other bin open at that instant lacked room for it.
func TestAnyFitNeverOpensNeedlessly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	anyFit := []Algorithm{NewFirstFit(), NewBestFit(), NewWorstFit(), NewLastFit(), NewRandomFit(3)}
	for trial := 0; trial < 10; trial++ {
		l := randomInstance(rng, 120, 8)
		for _, algo := range anyFit {
			res := MustRun(algo, l, nil)
			for _, b := range res.Bins {
				first := b.Placements()[0]
				t0 := first.At
				for _, other := range res.Bins {
					if other == b || !other.UsagePeriod().Contains(t0) {
						continue
					}
					// other was open when b was opened for first.Item;
					// it must not have had room.
					if other.LevelAt(t0)+first.Item.Size <= 1.0-1e-9 {
						// Careful: other.LevelAt(t0) includes items that
						// arrived at t0 *after* this placement. Recompute
						// using only items placed strictly before.
						var lv float64
						for _, p := range other.Placements() {
							if p.At < t0 || (p.At == t0 && p.Item.ID < first.Item.ID) {
								if p.Item.Interval().Contains(t0) {
									lv += p.Item.Size
								}
							}
						}
						if lv+first.Item.Size <= 1.0-1e-9 {
							t.Fatalf("%s: bin %d opened at t=%g for item %d though bin %d had level %g",
								algo.Name(), b.Index, t0, first.Item.ID, other.Index, lv)
						}
					}
				}
			}
		}
	}
}

// Property: First Fit places each item in the lowest-indexed bin that had
// room, verified post-hoc from the placement history.
func TestFirstFitLowestIndexInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		l := randomInstance(rng, 150, 8)
		res := MustRun(NewFirstFit(), l, nil)
		for _, b := range res.Bins {
			for _, p := range b.Placements() {
				for _, lower := range res.Bins {
					if lower.Index >= b.Index {
						break
					}
					if !lower.UsagePeriod().Contains(p.At) {
						continue
					}
					var lv float64
					for _, q := range lower.Placements() {
						if (q.At < p.At || (q.At == p.At && q.Item.ID < p.Item.ID)) && q.Item.Interval().Contains(p.At) {
							lv += q.Item.Size
						}
					}
					if lv+p.Item.Size <= 1.0-1e-9 {
						t.Fatalf("FF violated: item %d went to bin %d though bin %d (level %g) fit at t=%g",
							p.Item.ID, b.Index, lower.Index, lv, p.At)
					}
				}
			}
		}
	}
}

// Property: objectives are invariant under uniform time scaling.
func TestUsageScalesLinearlyWithTime(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomInstance(rng, 60, 5)
		k := 1 + rng.Float64()*7
		base := MustRun(NewFirstFit(), l, nil)
		scaled := MustRun(NewFirstFit(), l.Scale(k), nil)
		if math.Abs(scaled.TotalUsage-k*base.TotalUsage) > 1e-6*(1+scaled.TotalUsage) {
			return false
		}
		return scaled.NumBins() == base.NumBins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: with all items arriving and departing together, First Fit
// usage equals (number of classical FF bins) * duration.
func TestDegenerateSimultaneousBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		l := make(item.List, n)
		for i := range l {
			l[i] = mk(item.ID(i+1), 0.05+rng.Float64()*0.95, 0, 7)
		}
		res := MustRun(NewFirstFit(), l, nil)
		if math.Abs(res.TotalUsage-float64(res.NumBins())*7) > 1e-9 {
			t.Fatalf("usage %g != bins %d * 7", res.TotalUsage, res.NumBins())
		}
		if res.MaxConcurrentOpen != res.NumBins() {
			t.Fatal("all bins must be concurrently open in the batch case")
		}
	}
}

package packing

import (
	"errors"
	"fmt"
)

// Typed failure classes for the streaming dispatcher. Stream.Arrive and
// Stream.Depart wrap every rejection in exactly one of these sentinels,
// so callers (notably the allocation service in internal/serve) can
// classify failures with errors.Is instead of string matching and map
// them onto protocol-level responses (409, 404, 422, ...). The wrapped
// errors keep their full diagnostic messages.
var (
	// ErrDuplicateJob: Arrive for a job ID that is already running.
	ErrDuplicateJob = errors.New("duplicate job")
	// ErrUnknownJob: Depart for a job ID that is not running.
	ErrUnknownJob = errors.New("unknown job")
	// ErrTimeRegression: an event timestamp earlier than the previous
	// event's, or a non-finite timestamp. The stream's clock only moves
	// forward.
	ErrTimeRegression = errors.New("time regression")
	// ErrBadDemand: a job demand no server could ever satisfy —
	// non-positive, NaN, over capacity in some dimension, or of the
	// wrong dimensionality for the stream.
	ErrBadDemand = errors.New("bad demand")
	// ErrPolicyMisplace: the placement policy returned a closed or
	// overfull bin. This is a policy implementation bug, not a caller
	// error.
	ErrPolicyMisplace = errors.New("policy misplacement")
	// ErrSnapshotMismatch: RestoreStream was handed a snapshot that is
	// internally inconsistent or does not match the policy/configuration
	// it is being restored under (durable recovery refuses to guess).
	ErrSnapshotMismatch = errors.New("snapshot mismatch")
)

// streamError carries a fully formatted diagnostic message while
// unwrapping to its sentinel class, so errors.Is(err, ErrX) works
// without the sentinel's text leaking into the message.
type streamError struct {
	kind error
	msg  string
}

func (e *streamError) Error() string { return e.msg }
func (e *streamError) Unwrap() error { return e.kind }

// failf builds a streamError of the given class with a printf-style
// message (identical to the former fmt.Errorf text).
func failf(kind error, format string, args ...any) error {
	return &streamError{kind: kind, msg: fmt.Sprintf(format, args...)}
}

package packing

import (
	"fmt"

	"dbp/internal/bins"
	"dbp/internal/event"
	"dbp/internal/item"
)

// Replay reconstructs a packing from an externally-supplied assignment
// (item -> bin index) and verifies its physical legality along the way:
// every item placed in its assigned bin at its arrival, capacity
// respected at every instant. It returns the full Result (usage time,
// peak, placement history) for the external packing, enabling
// apples-to-apples comparison of third-party dispatchers against the
// policies implemented here (cmd/dbpverify -assign consumes this).
//
// Bin indices in the assignment are labels: they are normalized to
// opening order (the order bins first receive an item), so any distinct
// labeling is accepted.
func Replay(l item.List, assign map[item.ID]int) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("packing: invalid instance: %w", err)
	}
	dim := (&Options{}).dim(l)
	for _, it := range l {
		if _, ok := assign[it.ID]; !ok {
			return nil, fmt.Errorf("packing: item %d has no assignment", it.ID)
		}
	}
	ledger := bins.NewLedger(1.0, dim)
	label2bin := make(map[int]*bins.Bin)
	assignment := make(map[item.ID]int, len(l))
	q := event.NewFromList(l)
	for q.Len() > 0 {
		e := q.Pop()
		switch e.Kind {
		case event.Depart:
			ledger.Remove(e.Item.ID, e.Time)
		case event.Arrive:
			label := assign[e.Item.ID]
			b := label2bin[label]
			if b != nil && !b.IsOpen() {
				// The label's previous bin closed; the external packing
				// reuses the label for a fresh server.
				b = nil
			}
			if b == nil {
				b = ledger.OpenNew(e.Item, e.Time)
				label2bin[label] = b
			} else {
				if !b.Fits(e.Item) {
					return nil, fmt.Errorf("packing: replay places item %d (size %g) in bin %d over capacity (level %g) at t=%g",
						e.Item.ID, e.Item.Size, label, b.Level(), e.Time)
				}
				ledger.PlaceIn(b, e.Item, e.Time)
			}
			assignment[e.Item.ID] = b.Index
		}
	}
	if n := ledger.NumOpen(); n != 0 {
		return nil, fmt.Errorf("packing: %d bins still open after replay", n)
	}
	return &Result{
		Algorithm:         "Replay",
		Items:             l,
		Bins:              ledger.AllBins(),
		Assignment:        assignment,
		TotalUsage:        ledger.TotalUsage(0),
		MaxConcurrentOpen: ledger.MaxConcurrentOpen(),
	}, nil
}

package packing

import (
	"fmt"

	"dbp/internal/event"
	"dbp/internal/item"
)

// Options configures a simulation run. The zero value means: unit
// capacity, dimensionality inferred from the items, indexed engine, no
// per-event validation.
type Options struct {
	// Capacity is the per-dimension bin capacity; 0 means 1.0 (the
	// paper's normalization — item sizes are fractions of a server).
	Capacity float64
	// Dim forces the resource dimensionality; 0 infers it from the items
	// (1 unless some item carries a vector demand).
	Dim int
	// Engine selects the Fleet backend: EngineIndexed ("" = default)
	// answers policy queries from the ledger-maintained index in
	// O(log B); EngineLinear uses the O(B) reference scans. The two
	// produce bit-identical packings (the equivalence suite asserts it);
	// linear exists as the executable specification and benchmark
	// baseline.
	Engine EngineKind
	// Validate runs ledger invariant checks after every event. Slow;
	// meant for tests.
	Validate bool
	// Clairvoyant reveals each item's departure time to the policy
	// (Arrival.Departure). This leaves the paper's online model; it
	// exists for baseline policies that quantify the value of knowing
	// departures (cf. interval scheduling, Sec. II).
	Clairvoyant bool
	// KeepAlive keeps emptied bins open (lingering, reusable) for this
	// many time units before shutting them down — the cloud keep-alive
	// model, where a server whose billed hour is already paid may as
	// well stay available. 0 closes bins the moment they empty (the
	// paper's model). Lingering time counts toward TotalUsage.
	KeepAlive float64
	// ArrivalsFirst flips the same-timestamp event order so arrivals are
	// processed before departures — an ablation of the half-open
	// interval convention (DESIGN.md §6). Under it, capacity freed at
	// time t cannot serve an arrival at t.
	ArrivalsFirst bool
}

func (o *Options) capacity() float64 {
	if o == nil || o.Capacity == 0 {
		return 1.0
	}
	return o.Capacity
}

func (o *Options) engine() EngineKind {
	if o == nil {
		return EngineIndexed
	}
	return o.Engine
}

func (o *Options) dim(l item.List) int {
	if o != nil && o.Dim > 0 {
		return o.Dim
	}
	d := 1
	for _, it := range l {
		if it.Dim() > d {
			d = it.Dim()
		}
	}
	return d
}

// Run simulates the online packing of the item list under the given
// algorithm and returns the complete packing outcome. The algorithm is
// Reset before the run. Run returns an error if the item list is invalid,
// some demand can never be served (ErrBadDemand — the same typed sentinel
// and validation path Stream.Arrive uses), or the algorithm returns an
// unusable placement (ErrPolicyMisplace, a policy bug that aborts the
// run).
func Run(algo Algorithm, l item.List, opt *Options) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("packing: invalid instance: %w", err)
	}
	dim := opt.dim(l)
	for _, it := range l {
		if it.Dim() != dim {
			return nil, fmt.Errorf("packing: item %d has dim %d, run has dim %d", it.ID, it.Dim(), dim)
		}
	}
	return runCore(algo, l, opt, nil)
}

// runCore is the event loop shared by Run (homogeneous capacity) and
// RunFleet (per-opening capacity via capacityFor, nil for homogeneous).
// The instance must already be validated. All placement mechanics —
// demand validation, policy query, misplace check, bin-open notification
// — live in the engine, the same core Stream drives.
func runCore(algo Algorithm, l item.List, opt *Options, capacityFor func(a Arrival) (float64, error)) (*Result, error) {
	if !opt.engine().valid() {
		return nil, badEngine(opt.engine())
	}
	keepAlive := 0.0
	if opt != nil {
		if opt.KeepAlive < 0 {
			return nil, fmt.Errorf("packing: negative keep-alive %g", opt.KeepAlive)
		}
		keepAlive = opt.KeepAlive
	}
	eng := newEngine(algo, opt.capacity(), opt.dim(l), keepAlive, opt.engine(), opt != nil && opt.Clairvoyant)
	q := event.NewFromListOrder(l, opt != nil && opt.ArrivalsFirst)
	assignment := make(map[item.ID]int, len(l))

	for q.Len() > 0 {
		e := q.Pop()
		eng.ledger.CloseExpired(e.Time)
		switch e.Kind {
		case event.Depart:
			eng.depart(e.Item.ID, e.Time)
		case event.Arrive:
			b, _, err := eng.arrive(e.Item, e.Time, capacityFor)
			if err != nil {
				return nil, err
			}
			assignment[e.Item.ID] = b.Index
		}
		if opt != nil && opt.Validate {
			if err := eng.validate(); err != nil {
				return nil, fmt.Errorf("packing: invariant violated after %v of item %d at t=%g: %w",
					e.Kind, e.Item.ID, e.Time, err)
			}
		}
	}

	eng.ledger.CloseAllLingering()
	if n := eng.ledger.NumOpen(); n != 0 {
		return nil, fmt.Errorf("packing: %d bins still open after drain", n)
	}
	return &Result{
		Algorithm:         algo.Name(),
		Items:             l,
		Bins:              eng.ledger.AllBins(),
		Assignment:        assignment,
		TotalUsage:        eng.ledger.TotalUsage(0),
		MaxConcurrentOpen: eng.ledger.MaxConcurrentOpen(),
		KeepAlive:         keepAlive,
	}, nil
}

// MustRun is Run for known-good inputs (tests, benchmarks, examples); it
// panics on error.
func MustRun(algo Algorithm, l item.List, opt *Options) *Result {
	res, err := Run(algo, l, opt)
	if err != nil {
		panic(err)
	}
	return res
}

package packing

import (
	"fmt"

	"dbp/internal/bins"
	"dbp/internal/event"
	"dbp/internal/item"
)

// binOpenObserver is implemented by algorithms that need to learn the
// identity of the bin opened after Place returned nil (Next Fit keeps it
// as the available bin; Hybrid variants tag it with a size class).
type binOpenObserver interface {
	BinOpened(b *bins.Bin)
}

// levelObserver is implemented by algorithms that maintain indexed state
// over bin levels (FastFirstFit's segment tree): the simulator notifies
// every level change so the index stays coherent in O(log B) per event.
type levelObserver interface {
	ItemPlaced(b *bins.Bin)
	ItemRemoved(b *bins.Bin)
}

// Options configures a simulation run. The zero value means: unit
// capacity, dimensionality inferred from the items, no per-event
// validation.
type Options struct {
	// Capacity is the per-dimension bin capacity; 0 means 1.0 (the
	// paper's normalization — item sizes are fractions of a server).
	Capacity float64
	// Dim forces the resource dimensionality; 0 infers it from the items
	// (1 unless some item carries a vector demand).
	Dim int
	// Validate runs ledger invariant checks after every event. Slow;
	// meant for tests.
	Validate bool
	// Clairvoyant reveals each item's departure time to the policy
	// (Arrival.Departure). This leaves the paper's online model; it
	// exists for baseline policies that quantify the value of knowing
	// departures (cf. interval scheduling, Sec. II).
	Clairvoyant bool
	// KeepAlive keeps emptied bins open (lingering, reusable) for this
	// many time units before shutting them down — the cloud keep-alive
	// model, where a server whose billed hour is already paid may as
	// well stay available. 0 closes bins the moment they empty (the
	// paper's model). Lingering time counts toward TotalUsage.
	KeepAlive float64
	// ArrivalsFirst flips the same-timestamp event order so arrivals are
	// processed before departures — an ablation of the half-open
	// interval convention (DESIGN.md §6). Under it, capacity freed at
	// time t cannot serve an arrival at t.
	ArrivalsFirst bool
}

func (o *Options) capacity() float64 {
	if o == nil || o.Capacity == 0 {
		return 1.0
	}
	return o.Capacity
}

func (o *Options) dim(l item.List) int {
	if o != nil && o.Dim > 0 {
		return o.Dim
	}
	d := 1
	for _, it := range l {
		if it.Dim() > d {
			d = it.Dim()
		}
	}
	return d
}

// Run simulates the online packing of the item list under the given
// algorithm and returns the complete packing outcome. The algorithm is
// Reset before the run. Run returns an error if the item list is invalid
// or the algorithm returns an unusable placement (a closed or non-fitting
// bin) — the latter indicates a policy bug and aborts the run.
func Run(algo Algorithm, l item.List, opt *Options) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("packing: invalid instance: %w", err)
	}
	dim := opt.dim(l)
	for _, it := range l {
		if it.Dim() != dim {
			return nil, fmt.Errorf("packing: item %d has dim %d, run has dim %d", it.ID, it.Dim(), dim)
		}
	}
	capacity := opt.capacity()
	return runCore(algo, l, opt, func(Arrival) (float64, error) { return capacity, nil })
}

// runCore is the event loop shared by Run (homogeneous capacity) and
// RunFleet (per-opening capacity via capacityFor). The instance must
// already be validated.
func runCore(algo Algorithm, l item.List, opt *Options, capacityFor func(a Arrival) (float64, error)) (*Result, error) {
	dim := opt.dim(l)
	algo.Reset()
	keepAlive := 0.0
	if opt != nil {
		if opt.KeepAlive < 0 {
			return nil, fmt.Errorf("packing: negative keep-alive %g", opt.KeepAlive)
		}
		keepAlive = opt.KeepAlive
	}
	ledger := bins.NewLedgerKeepAlive(opt.capacity(), dim, keepAlive)
	q := event.NewFromListOrder(l, opt != nil && opt.ArrivalsFirst)
	assignment := make(map[item.ID]int, len(l))

	lobs, _ := algo.(levelObserver)
	for q.Len() > 0 {
		e := q.Pop()
		ledger.CloseExpired(e.Time)
		switch e.Kind {
		case event.Depart:
			b, _ := ledger.Remove(e.Item.ID, e.Time)
			if lobs != nil {
				lobs.ItemRemoved(b)
			}
		case event.Arrive:
			a := view(e.Item, e.Time)
			if opt != nil && opt.Clairvoyant {
				a.Departure = e.Item.Departure
			}
			b := algo.Place(a, ledger.OpenBins())
			if b == nil {
				capacity, err := capacityFor(a)
				if err != nil {
					return nil, err
				}
				b = ledger.OpenNewCap(e.Item, e.Time, capacity)
				if obs, ok := algo.(binOpenObserver); ok {
					obs.BinOpened(b)
				}
				if lobs != nil {
					lobs.ItemPlaced(b)
				}
			} else {
				if !b.IsOpen() {
					return nil, fmt.Errorf("packing: %s placed item %d in closed bin %d", algo.Name(), e.Item.ID, b.Index)
				}
				if !b.Fits(e.Item) {
					return nil, fmt.Errorf("packing: %s placed item %d (size %g) in bin %d with insufficient capacity (level %g)",
						algo.Name(), e.Item.ID, e.Item.Size, b.Index, b.Level())
				}
				ledger.PlaceIn(b, e.Item, e.Time)
				if lobs != nil {
					lobs.ItemPlaced(b)
				}
			}
			assignment[e.Item.ID] = b.Index
		}
		if opt != nil && opt.Validate {
			if err := ledger.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("packing: invariant violated after %v of item %d at t=%g: %w",
					e.Kind, e.Item.ID, e.Time, err)
			}
		}
	}

	ledger.CloseAllLingering()
	if n := ledger.NumOpen(); n != 0 {
		return nil, fmt.Errorf("packing: %d bins still open after drain", n)
	}
	return &Result{
		Algorithm:         algo.Name(),
		Items:             l,
		Bins:              ledger.AllBins(),
		Assignment:        assignment,
		TotalUsage:        ledger.TotalUsage(0),
		MaxConcurrentOpen: ledger.MaxConcurrentOpen(),
		KeepAlive:         keepAlive,
	}, nil
}

// MustRun is Run for known-good inputs (tests, benchmarks, examples); it
// panics on error.
func MustRun(algo Algorithm, l item.List, opt *Options) *Result {
	res, err := Run(algo, l, opt)
	if err != nil {
		panic(err)
	}
	return res
}

package packing

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// Result is the complete outcome of one packing run: the objective values
// and the full placement history, sufficient to reconstruct the state of
// every bin at any time (used by the analysis package to re-derive the
// paper's proof decomposition on concrete runs).
type Result struct {
	Algorithm string
	Items     item.List
	// Bins holds every bin ever opened, in opening order; all are closed.
	Bins []*bins.Bin
	// Assignment maps each item to the index of the bin that served it.
	Assignment map[item.ID]int
	// TotalUsage is the MinUsageTime objective: sum over bins of usage
	// period length (server renting time under pay-as-you-go billing).
	TotalUsage float64
	// MaxConcurrentOpen is the classical DBP objective: the peak number of
	// simultaneously open bins (lingering bins count: they are rented).
	MaxConcurrentOpen int
	// KeepAlive is the keep-alive duration the run used (0 = the paper's
	// model: bins close the instant they empty).
	KeepAlive float64
}

// NumBins returns the total number of bins opened during the run.
func (r *Result) NumBins() int { return len(r.Bins) }

// BinOf returns the bin that served the item, or nil if the item is
// unknown.
func (r *Result) BinOf(id item.ID) *bins.Bin {
	idx, ok := r.Assignment[id]
	if !ok {
		return nil
	}
	return r.Bins[idx]
}

// OpenAt reconstructs the bins whose usage period contains time t, in
// opening order.
func (r *Result) OpenAt(t float64) []*bins.Bin {
	var out []*bins.Bin
	for _, b := range r.Bins {
		if b.UsagePeriod().Contains(t) {
			out = append(out, b)
		}
	}
	return out
}

// Verify re-checks the physical validity of the packing from the recorded
// placements, independently of the simulator's bookkeeping: every item
// placed exactly once, capacity respected in every bin at every event
// time, bin usage periods spanning exactly their items' activity, and the
// recomputed objectives matching the reported ones. Tests call this after
// every run; it is the ground truth the experiments rest on.
func (r *Result) Verify() error {
	placed := make(map[item.ID]int)
	var usage float64
	for _, b := range r.Bins {
		items := b.Items()
		if len(items) == 0 {
			return fmt.Errorf("bin %d served no items", b.Index)
		}
		var lo, hi = math.Inf(1), math.Inf(-1)
		ts := make([]float64, 0, 2*len(items))
		for _, it := range items {
			if prev, dup := placed[it.ID]; dup {
				return fmt.Errorf("item %d placed in bins %d and %d", it.ID, prev, b.Index)
			}
			placed[it.ID] = b.Index
			lo = math.Min(lo, it.Arrival)
			hi = math.Max(hi, it.Departure)
			ts = append(ts, it.Arrival, it.Departure)
		}
		wantHi := hi + r.KeepAlive // bins linger keepAlive past their last departure
		// Both endpoints tolerate float accumulation error; an exact Lo
		// comparison would false-fail legitimate packings whose arrival
		// times are not exactly representable.
		if math.Abs(b.UsagePeriod().Lo-lo) > 1e-9 || math.Abs(b.UsagePeriod().Hi-wantHi) > 1e-9 {
			return fmt.Errorf("bin %d usage period %v does not match items' hull [%g, %g)", b.Index, b.UsagePeriod(), lo, wantHi)
		}
		sort.Float64s(ts)
		lv := make([]float64, b.Dim())
		for _, t := range ts {
			for d := range lv {
				lv[d] = 0
			}
			for _, it := range items {
				if it.Interval().Contains(t) {
					for d, s := range it.SizeVec() {
						lv[d] += s
					}
				}
			}
			for d := range lv {
				if lv[d] > b.Capacity+bins.Eps {
					return fmt.Errorf("bin %d over capacity in dim %d at t=%g: level %g", b.Index, d, t, lv[d])
				}
			}
		}
		usage += b.Usage()
	}
	for _, it := range r.Items {
		idx, ok := placed[it.ID]
		if !ok {
			return fmt.Errorf("item %d never placed", it.ID)
		}
		if r.Assignment[it.ID] != idx {
			return fmt.Errorf("assignment map disagrees for item %d", it.ID)
		}
	}
	if len(placed) != len(r.Items) {
		return fmt.Errorf("placed %d items, instance has %d", len(placed), len(r.Items))
	}
	if math.Abs(usage-r.TotalUsage) > 1e-6*(1+math.Abs(usage)) {
		return fmt.Errorf("recomputed usage %g != reported %g", usage, r.TotalUsage)
	}
	return nil
}

// String renders a one-line summary of the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d items, %d bins, usage %.6g, peak open %d",
		r.Algorithm, len(r.Items), r.NumBins(), r.TotalUsage, r.MaxConcurrentOpen)
}

// Describe renders a multi-line report of the packing, bin by bin, for the
// CLI tools and examples.
func (r *Result) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.String())
	for _, b := range r.Bins {
		fmt.Fprintf(&sb, "  bin %3d  usage %v (%.6g)  items:", b.Index, b.UsagePeriod(), b.Usage())
		for _, it := range b.Items() {
			fmt.Fprintf(&sb, " %d(%.3g)", it.ID, it.Size)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

package packing

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func TestKeepAliveExtendsUsage(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1)}
	res := MustRun(NewFirstFit(), l, &Options{KeepAlive: 2})
	if res.TotalUsage != 3 {
		t.Fatalf("usage = %g, want 3 (1 active + 2 lingering)", res.TotalUsage)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestKeepAliveEnablesReuse(t *testing.T) {
	l := item.List{
		mk(1, 1.0, 0, 1),
		mk(2, 1.0, 2.5, 4), // arrives while bin 0 lingers (expiry at 1+2=3)
	}
	res := MustRun(NewFirstFit(), l, &Options{KeepAlive: 2})
	if res.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1 (reuse of lingering bin)", res.NumBins())
	}
	// Bin usage [0, 4+2) = 6.
	if res.TotalUsage != 6 {
		t.Fatalf("usage = %g, want 6", res.TotalUsage)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// Without keep-alive: two bins, usage 1 + 1.5 = 2.5.
	plain := MustRun(NewFirstFit(), l, nil)
	if plain.NumBins() != 2 || plain.TotalUsage != 2.5 {
		t.Fatalf("plain run: %d bins, usage %g", plain.NumBins(), plain.TotalUsage)
	}
}

func TestKeepAliveExpiryIsHalfOpen(t *testing.T) {
	// Bin empties at 1, keep-alive 1 -> closes at 2; an arrival at
	// exactly 2 must open a new bin.
	l := item.List{
		mk(1, 1.0, 0, 1),
		mk(2, 1.0, 2, 3),
	}
	res := MustRun(NewFirstFit(), l, &Options{KeepAlive: 1})
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2 (expiry at 2 precedes arrival at 2)", res.NumBins())
	}
	if res.Bins[0].UsagePeriod().Hi != 2 {
		t.Fatalf("bin 0 closed at %g, want 2", res.Bins[0].UsagePeriod().Hi)
	}
	// Arrival just before expiry reuses.
	l[1].Arrival = 1.999
	res2 := MustRun(NewFirstFit(), l, &Options{KeepAlive: 1})
	if res2.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1", res2.NumBins())
	}
}

func TestKeepAliveChainReuseSavesBins(t *testing.T) {
	// Three spaced jobs chained through one lingering server.
	l := item.List{
		mk(1, 1.0, 0, 10),
		mk(2, 1.0, 15, 25),
		mk(3, 1.0, 30, 40),
	}
	res := MustRun(NewFirstFit(), l, &Options{KeepAlive: 10})
	if res.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1", res.NumBins())
	}
	if res.TotalUsage != 50 {
		t.Fatalf("usage = %g, want 50 ([0, 40+10))", res.TotalUsage)
	}
	if res.MaxConcurrentOpen != 1 {
		t.Fatal("peak must stay 1")
	}
}

func TestKeepAliveRejectsNegative(t *testing.T) {
	if _, err := Run(NewFirstFit(), item.List{mk(1, 0.5, 0, 1)}, &Options{KeepAlive: -1}); err == nil {
		t.Fatal("negative keep-alive must be rejected")
	}
}

func TestKeepAliveVerifyAcrossPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		l := randomInstance(rng, 100, 10)
		for name, algo := range Standard() {
			res, err := Run(algo, l, &Options{KeepAlive: 0.5, Validate: trial == 0})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Usage must grow versus the plain run by at least one tail
			// and at most bins * keepAlive... exactly: each bin adds one
			// keepAlive tail plus any lingering gaps it bridged, so:
			plain := MustRun(algo, l, nil)
			minExtra := float64(res.NumBins()) * 0.5
			if res.TotalUsage < plain.TotalUsage-1e-9 {
				t.Fatalf("%s: keep-alive reduced usage?!", name)
			}
			if res.TotalUsage+1e-9 < minExtra {
				t.Fatalf("%s: usage %g below minimum tails %g", name, res.TotalUsage, minExtra)
			}
		}
	}
}

func TestKeepAliveLingeringCountsInUsageMidRun(t *testing.T) {
	// Stream variant sanity: usage accrues while lingering.
	l := item.List{
		mk(1, 0.5, 0, 1),
		mk(2, 0.5, 5, 6), // far beyond expiry (1+2=3)
	}
	res := MustRun(NewFirstFit(), l, &Options{KeepAlive: 2})
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d", res.NumBins())
	}
	if math.Abs(res.TotalUsage-(3+3)) > 1e-12 {
		t.Fatalf("usage = %g, want 6", res.TotalUsage)
	}
}

func TestArrivalsFirstAblationChangesReuse(t *testing.T) {
	// Under the default order, item 2 reuses the capacity freed at t=5;
	// under arrivals-first it cannot.
	l := item.List{
		mk(1, 1.0, 0, 5),
		mk(2, 1.0, 5, 9),
	}
	def := MustRun(NewFirstFit(), l, nil)
	abl := MustRun(NewFirstFit(), l, &Options{ArrivalsFirst: true})
	if def.NumBins() != 2 {
		t.Fatalf("default bins = %d (bin closes at 5, arrival at 5 opens new)", def.NumBins())
	}
	if abl.NumBins() != 2 {
		t.Fatalf("ablation bins = %d", abl.NumBins())
	}
	// The discriminating case: a smaller item keeps the bin open.
	l2 := item.List{
		mk(1, 0.9, 0, 5),
		mk(2, 0.1, 0, 9),
		mk(3, 0.9, 5, 9),
	}
	def2 := MustRun(NewFirstFit(), l2, nil)
	abl2 := MustRun(NewFirstFit(), l2, &Options{ArrivalsFirst: true})
	if def2.NumBins() != 1 {
		t.Fatalf("default bins = %d, want 1", def2.NumBins())
	}
	if abl2.NumBins() != 2 {
		t.Fatalf("arrivals-first bins = %d, want 2 (capacity freed at 5 unusable at 5)", abl2.NumBins())
	}
	if err := abl2.Verify(); err != nil {
		t.Fatal(err)
	}
}

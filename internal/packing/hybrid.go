package packing

import (
	"fmt"

	"dbp/internal/bins"
)

// classify returns the size class of an arrival under harmonic-style
// boundaries with k classes: class i (0-based, i < k-1) holds sizes in
// (1/(i+2), 1/(i+1)], and the last class holds all remaining small sizes
// in (0, 1/k]. With k = 2 this is the large/small split at 1/2 used by the
// paper's analysis (Sec. V classifies items at size 1/2).
func classify(size float64, k int) int {
	for i := 0; i < k-1; i++ {
		if size > 1.0/float64(i+2) {
			return i
		}
	}
	return k - 1
}

// HybridFirstFit is the size-classifying First Fit family from the
// authors' earlier work (Li, Tang, Cai, SPAA'14 / TPDS'16), cited by the
// paper for its 8/7*mu + O(1) competitive ratio. Items are partitioned
// into k size classes with harmonic boundaries (k=2: large > 1/2 vs small
// <= 1/2); each class is packed by First Fit into its own pool of bins, so
// bins never mix classes. Classifying by size bounds the wasted capacity
// of each bin: a bin of class i (holding sizes in (1/(i+2), 1/(i+1)])
// reaches level > (i+1)/(i+2) whenever it refuses an item of its class.
//
// The per-class membership is policy state the shared index knows nothing
// about, so Place scans the open list — the linear path — filtering by
// class.
//
// The variant is semi-online in the same sense as the paper's Sec. II
// remark: choosing k to optimize the bound requires knowing mu a priori.
// This implementation documents itself as the classification scheme; the
// exact constant of [5]'s analysis is not claimed.
type HybridFirstFit struct {
	k     int
	class map[*bins.Bin]int
	// pending remembers the class of the arrival for which Place returned
	// nil, so BinOpened can tag the new bin.
	pending int
}

// NewHybridFirstFit returns a Hybrid First Fit policy with k >= 2 size
// classes. k = 2 reproduces the large/small split at 1/2.
func NewHybridFirstFit(k int) *HybridFirstFit {
	if k < 2 {
		panic("packing: HybridFirstFit needs k >= 2 classes")
	}
	return &HybridFirstFit{k: k, class: make(map[*bins.Bin]int), pending: -1}
}

// Name implements Algorithm.
func (h *HybridFirstFit) Name() string { return fmt.Sprintf("HybridFirstFit(k=%d)", h.k) }

// Place applies First Fit within the arrival's size class.
func (h *HybridFirstFit) Place(a Arrival, f Fleet) *bins.Bin {
	c := classify(a.Size, h.k)
	for _, b := range f.Open() {
		if h.class[b] == c && fits(b, a) {
			return b
		}
	}
	h.pending = c
	return nil
}

// BinOpened tags the freshly opened bin with the pending arrival's class.
func (h *HybridFirstFit) BinOpened(b *bins.Bin) {
	h.class[b] = h.pending
	h.pending = -1
}

// Reset implements Algorithm.
func (h *HybridFirstFit) Reset() {
	h.class = make(map[*bins.Bin]int)
	h.pending = -1
}

// HybridNextFit applies Next Fit within each of k harmonic size classes —
// the classify-then-Next-Fit scheme Kamali & López-Ortiz analyze (cited in
// Sec. II of the paper as achieving 2mu + O(1) semi-online). One bin per
// class is available at any time.
type HybridNextFit struct {
	k         int
	available []*bins.Bin
	pending   int
}

// NewHybridNextFit returns a Hybrid Next Fit policy with k >= 2 classes.
func NewHybridNextFit(k int) *HybridNextFit {
	if k < 2 {
		panic("packing: HybridNextFit needs k >= 2 classes")
	}
	return &HybridNextFit{k: k, available: make([]*bins.Bin, k), pending: -1}
}

// Name implements Algorithm.
func (h *HybridNextFit) Name() string { return fmt.Sprintf("HybridNextFit(k=%d)", h.k) }

// Place puts the arrival in its class's available bin if possible.
func (h *HybridNextFit) Place(a Arrival, f Fleet) *bins.Bin {
	c := classify(a.Size, h.k)
	if b := h.available[c]; b != nil && b.IsOpen() && fits(b, a) {
		return b
	}
	h.available[c] = nil
	h.pending = c
	return nil
}

// BinOpened records the new bin as its class's available bin.
func (h *HybridNextFit) BinOpened(b *bins.Bin) {
	h.available[h.pending] = b
	h.pending = -1
}

// Reset implements Algorithm.
func (h *HybridNextFit) Reset() {
	h.available = make([]*bins.Bin, h.k)
	h.pending = -1
}
